package duet_test

import (
	"fmt"
	"log"

	"duet"
	"duet/internal/tasks/scrub"
)

// Example demonstrates the opportunistic scrubbing flow from the README:
// a foreground reader warms part of the cache, and the Duet-enabled
// scrubber skips every block the reads already verified. The simulation
// is deterministic, so the output is exact.
func Example() {
	m, err := duet.NewMachine(duet.MachineConfig{
		Seed:         42,
		DeviceBlocks: 1 << 16, // 256 MiB device
		CachePages:   2048,    // 8 MiB cache
	})
	if err != nil {
		log.Fatal(err)
	}
	files, err := m.Populate(duet.DefaultPopulateSpec("/data", 4096))
	if err != nil {
		log.Fatal(err)
	}

	s := duet.NewOpportunisticScrubber(m, scrub.DefaultConfig())
	m.Eng.Go("main", func(p *duet.Proc) {
		defer m.Eng.Stop()
		// A reader touches half the files; each read verifies checksums.
		for i, f := range files {
			if i%2 != 0 {
				continue
			}
			if err := m.FS.ReadFile(p, f.Ino, duet.ClassNormal, "reader"); err != nil {
				log.Fatal(err)
			}
		}
		if err := s.Run(p); err != nil {
			log.Fatal(err)
		}
	})
	if err := m.Eng.Run(); err != nil {
		log.Fatal(err)
	}

	r := s.Report
	fmt.Printf("scrubbed %v blocks, completed: %v\n", r.WorkDone >= r.WorkTotal, r.Completed)
	fmt.Printf("saved more than a third: %v\n", r.SavedFraction() > 0.33)
	// Output:
	// scrubbed true blocks, completed: true
	// saved more than a third: true
}
