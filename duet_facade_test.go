package duet_test

// End-to-end tests of the public facade: a downstream user's view of the
// library, exercising the documented flows from README and the examples.

import (
	"testing"

	"duet"
	"duet/internal/tasks/backup"
	"duet/internal/tasks/defrag"
	"duet/internal/tasks/rsync"
	"duet/internal/tasks/scrub"
)

func newMachine(t *testing.T) (*duet.Machine, []*duet.CowInode) {
	t.Helper()
	m, err := duet.NewMachine(duet.MachineConfig{
		Seed:         11,
		DeviceBlocks: 1 << 17, // 512 MiB
		CachePages:   2048,    // 8 MiB
	})
	if err != nil {
		t.Fatal(err)
	}
	files, err := m.Populate(duet.DefaultPopulateSpec("/data", 8192))
	if err != nil {
		t.Fatal(err)
	}
	return m, files
}

func TestFacadeQuickstartFlow(t *testing.T) {
	m, files := newMachine(t)
	sess, err := m.Duet.RegisterBlock(m.Adapter, duet.EvtAdded|duet.EvtDirtied)
	if err != nil {
		t.Fatal(err)
	}
	var items []duet.Item
	m.Eng.Go("reader", func(p *duet.Proc) {
		if err := m.FS.ReadFile(p, files[0].Ino, duet.ClassNormal, "reader"); err != nil {
			t.Error(err)
		}
		items = sess.Fetch(256)
		m.Eng.Stop()
	})
	if err := m.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	if int64(len(items)) != files[0].SizePg {
		t.Fatalf("items = %d, want %d", len(items), files[0].SizePg)
	}
	for _, it := range items {
		if !it.Flags.Has(duet.EvtAdded) {
			t.Errorf("item %+v missing Added", it)
		}
	}
}

func TestFacadeMaintenancePipeline(t *testing.T) {
	// Workload + snapshot + all three COW tasks, opportunistic, as the
	// concurrent-maintenance example does.
	m, files := newMachine(t)
	gen, err := duet.NewWorkload(m, files, duet.WorkloadConfig{
		Personality: duet.Webserver,
		Dir:         "/data",
		OpsPerSec:   50,
	})
	if err != nil {
		t.Fatal(err)
	}
	root, err := m.FS.Lookup("/data")
	if err != nil {
		t.Fatal(err)
	}
	var sc *duet.Scrubber
	var bk *duet.Backup
	var df *duet.Defrag
	m.Eng.Go("main", func(p *duet.Proc) {
		snap, err := m.FS.CreateSnapshot(p, "/data", "/snap")
		if err != nil {
			t.Error(err)
			m.Eng.Stop()
			return
		}
		gen.Start(m.Eng)
		sc = duet.NewOpportunisticScrubber(m, scrub.DefaultConfig())
		bk = duet.NewOpportunisticBackup(m, snap, backup.DefaultConfig())
		df = duet.NewOpportunisticDefrag(m, root.Ino, defrag.DefaultConfig())
		remaining := 3
		finish := func() {
			remaining--
			if remaining == 0 {
				m.Eng.Stop()
			}
		}
		m.Eng.Go("scrub", func(tp *duet.Proc) { _ = sc.Run(tp); finish() })
		m.Eng.Go("backup", func(tp *duet.Proc) { _ = bk.Run(tp); finish() })
		m.Eng.Go("defrag", func(tp *duet.Proc) { _ = df.Run(tp); finish() })
	})
	if err := m.Eng.RunFor(10 * duet.Minute); err != nil {
		t.Fatal(err)
	}
	for _, r := range []duet.TaskReport{sc.Report, bk.Report, df.Report} {
		if !r.Completed {
			t.Errorf("%s did not complete: %d/%d", r.Name, r.WorkDone, r.WorkTotal)
		}
	}
	// Concurrency must produce cross-task savings even at this small size.
	if sc.Report.Saved+bk.Report.Saved == 0 {
		t.Error("no opportunistic savings at all")
	}
	if gen.Stats().Ops == 0 {
		t.Error("workload idle")
	}
}

func TestFacadeRsync(t *testing.T) {
	m, _ := newMachine(t)
	dst, _, err := m.AddCowFS("sdb", 1<<17, duet.HDD)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dst.MkdirAll("/backup"); err != nil {
		t.Fatal(err)
	}
	root, err := m.FS.Lookup("/data")
	if err != nil {
		t.Fatal(err)
	}
	r := duet.NewOpportunisticRsync(m, root.Ino, dst, "/backup", rsync.DefaultConfig())
	m.Eng.Go("rsync", func(p *duet.Proc) {
		if err := r.Run(p); err != nil {
			t.Error(err)
		}
		m.Eng.Stop()
	})
	if err := m.Eng.RunFor(duet.Hour); err != nil {
		t.Fatal(err)
	}
	if !r.Report.Completed {
		t.Fatal("rsync incomplete")
	}
	// Destination holds the same data volume.
	dstRoot, err := dst.Lookup("/backup")
	if err != nil {
		t.Fatal(err)
	}
	var pages int64
	for _, f := range dst.FilesUnder(dstRoot.Ino) {
		pages += f.SizePg
	}
	if pages != r.Report.WorkTotal {
		t.Errorf("dst pages %d != src %d", pages, r.Report.WorkTotal)
	}
}

func TestFacadeDeterminism(t *testing.T) {
	run := func() (int64, duet.Time) {
		m, files := newMachine(t)
		var saved int64
		m.Eng.Go("main", func(p *duet.Proc) {
			for i, f := range files {
				if i%2 == 0 {
					if err := m.FS.ReadFile(p, f.Ino, duet.ClassNormal, "w"); err != nil {
						t.Error(err)
					}
				}
			}
			s := duet.NewOpportunisticScrubber(m, scrub.DefaultConfig())
			if err := s.Run(p); err != nil {
				t.Error(err)
			}
			saved = s.Report.Saved
			m.Eng.Stop()
		})
		if err := m.Eng.Run(); err != nil {
			t.Fatal(err)
		}
		return saved, m.Eng.Now()
	}
	s1, t1 := run()
	s2, t2 := run()
	if s1 != s2 || t1 != t2 {
		t.Errorf("nondeterministic: (%d,%v) vs (%d,%v)", s1, t1, s2, t2)
	}
	if s1 == 0 {
		t.Error("no savings")
	}
}
