// Quickstart: build a simulated machine, watch Duet page events, and run
// an opportunistic scrubber that skips every block a foreground reader
// has already verified.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"duet"
	"duet/internal/tasks/scrub"
)

func main() {
	// A 1 GiB disk with a 16 MiB page cache. Same seed, same run — the
	// whole simulation is deterministic.
	m, err := duet.NewMachine(duet.MachineConfig{
		Seed:         42,
		DeviceBlocks: 1 << 18, // 4 KiB blocks
		CachePages:   4096,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Populate /data with ~64 MiB of files (no simulated I/O: this is the
	// state after a fill-and-remount).
	files, err := m.Populate(duet.DefaultPopulateSpec("/data", 16384))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("populated %d files, %d blocks allocated\n", len(files), m.FS.AllocatedBlocks())

	// Register a Duet session the way a task would (duet_register with a
	// notification mask, §3.2 of the paper) and print the first few
	// events as a foreground reader touches files.
	sess, err := m.Duet.RegisterBlock(m.Adapter, duet.EvtAdded|duet.EvtDirtied)
	if err != nil {
		log.Fatal(err)
	}
	m.Eng.Go("reader", func(p *duet.Proc) {
		for _, f := range files[:3] {
			if err := m.FS.ReadFile(p, f.Ino, duet.ClassNormal, "reader"); err != nil {
				log.Fatal(err)
			}
		}
		items := sess.Fetch(8)
		fmt.Printf("\nfirst %d events fetched from Duet:\n", len(items))
		for _, it := range items {
			fmt.Printf("  block %6d  flags=%-14s (page ino=%d idx=%d)\n",
				it.ID, it.Flags, it.PageIno, it.PageIdx)
		}
		if err := sess.Close(); err != nil {
			log.Fatal(err)
		}

		// Now the headline mechanism: warm a third of the files the way a
		// workload would, then scrub opportunistically. Every page the
		// reads brought into memory was checksum-verified on the way in,
		// so the scrubber skips those blocks entirely.
		for i, f := range files {
			if i%3 != 0 {
				continue
			}
			if err := m.FS.ReadFile(p, f.Ino, duet.ClassNormal, "reader"); err != nil {
				log.Fatal(err)
			}
		}
		s := duet.NewOpportunisticScrubber(m, scrub.DefaultConfig())
		if err := s.Run(p); err != nil {
			log.Fatal(err)
		}
		r := s.Report
		fmt.Printf("\nopportunistic scrub: verified %d blocks, skipped %d (%.1f%% I/O saved), read %d from disk in %v\n",
			r.WorkDone, r.Saved, 100*r.SavedFraction(), r.ReadBlocks, r.Duration())
		m.Eng.Stop()
	})

	if err := m.Eng.Run(); err != nil {
		log.Fatal(err)
	}
}
