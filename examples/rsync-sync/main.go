// Rsync: synchronise a populated tree to a second disk while an
// unthrottled foreground workload reads the source (§5.5, Figure 4). The
// opportunistic sender transfers files with the most pages in memory out
// of order, saving source reads and finishing sooner.
//
// Run with:
//
//	go run ./examples/rsync-sync
package main

import (
	"fmt"
	"log"

	"duet"
	"duet/internal/tasks/rsync"
)

// transfer builds a fresh machine (so both modes start from an identical,
// cold state), runs rsync against a live workload, and returns the report.
func transfer(opportunistic bool) duet.TaskReport {
	m, err := duet.NewMachine(duet.MachineConfig{
		Seed:         3,
		DeviceBlocks: 1 << 18, // 1 GiB source disk
		CachePages:   4096,    // 16 MiB cache
	})
	if err != nil {
		log.Fatal(err)
	}
	files, err := m.Populate(duet.DefaultPopulateSpec("/data", 32768)) // 128 MiB
	if err != nil {
		log.Fatal(err)
	}
	root, err := m.FS.Lookup("/data")
	if err != nil {
		log.Fatal(err)
	}
	dst, _, err := m.AddCowFS("sdb", 1<<18, duet.HDD)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := dst.MkdirAll("/backup"); err != nil {
		log.Fatal(err)
	}
	gen, err := duet.NewWorkload(m, files, duet.WorkloadConfig{
		Personality: duet.Webserver,
		Dir:         "/data",
		// No OpsPerSec: unthrottled, as in the paper's rsync experiment.
	})
	if err != nil {
		log.Fatal(err)
	}

	var r *duet.Rsync
	if opportunistic {
		r = duet.NewOpportunisticRsync(m, root.Ino, dst, "/backup", rsync.DefaultConfig())
	} else {
		r = duet.NewRsync(m.FS, root.Ino, dst, "/backup", rsync.DefaultConfig())
	}
	gen.Start(m.Eng)
	m.Eng.Go("rsync", func(p *duet.Proc) {
		if err := r.Run(p); err != nil {
			log.Fatal(err)
		}
		m.Eng.Stop()
	})
	if err := m.Eng.RunFor(duet.Hour); err != nil {
		log.Fatal(err)
	}
	if !r.Report.Completed {
		log.Fatal("rsync did not complete")
	}
	return r.Report
}

func main() {
	base := transfer(false)
	opp := transfer(true)
	fmt.Printf("baseline rsync:      %7.1fs, saved %6d of %6d source page reads\n",
		base.Duration().Seconds(), base.Saved, base.WorkTotal)
	fmt.Printf("opportunistic rsync: %7.1fs, saved %6d of %6d source page reads\n",
		opp.Duration().Seconds(), opp.Saved, opp.WorkTotal)
	fmt.Printf("speedup: %.2fx\n", float64(base.Duration())/float64(opp.Duration()))
}
