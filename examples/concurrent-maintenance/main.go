// Concurrent maintenance: the paper's headline scenario (§6.3). Scrubbing,
// snapshot backup, and defragmentation run at idle I/O priority while a
// webserver workload keeps the device ~50% busy. With Duet the three
// tasks implicitly share one pass over the data — whichever task (or the
// workload) reads a block first covers the others.
//
// Run with:
//
//	go run ./examples/concurrent-maintenance [-duet=false]
package main

import (
	"flag"
	"fmt"
	"log"

	"duet"
	"duet/internal/tasks/backup"
	"duet/internal/tasks/defrag"
	"duet/internal/tasks/scrub"
)

func main() {
	useDuet := flag.Bool("duet", true, "run the Duet-enabled task versions")
	flag.Parse()

	m, err := duet.NewMachine(duet.MachineConfig{
		Seed:         7,
		DeviceBlocks: 1 << 18, // 1 GiB
		CachePages:   4096,    // 16 MiB
	})
	if err != nil {
		log.Fatal(err)
	}
	spec := duet.DefaultPopulateSpec("/data", 65536) // 256 MiB
	spec.FragmentedFrac = 0.1                        // the paper's 10% fragmented fs
	files, err := m.Populate(spec)
	if err != nil {
		log.Fatal(err)
	}
	dataRoot, err := m.FS.Lookup("/data")
	if err != nil {
		log.Fatal(err)
	}

	// Webserver workload: read-mostly, 10:1, throttled to keep the device
	// moderately busy.
	gen, err := duet.NewWorkload(m, files, duet.WorkloadConfig{
		Personality: duet.Webserver,
		Dir:         "/data",
		OpsPerSec:   40,
	})
	if err != nil {
		log.Fatal(err)
	}

	var sc *duet.Scrubber
	var bk *duet.Backup
	var df *duet.Defrag

	m.Eng.Go("main", func(p *duet.Proc) {
		// Backup works on a consistent snapshot (Btrfs-style, §5.2).
		snap, err := m.FS.CreateSnapshot(p, "/data", "/snap")
		if err != nil {
			log.Fatal(err)
		}
		gen.Start(m.Eng)

		if *useDuet {
			sc = duet.NewOpportunisticScrubber(m, scrub.DefaultConfig())
			bk = duet.NewOpportunisticBackup(m, snap, backup.DefaultConfig())
			df = duet.NewOpportunisticDefrag(m, dataRoot.Ino, defrag.DefaultConfig())
		} else {
			sc = duet.NewScrubber(m.FS, scrub.DefaultConfig())
			bk = duet.NewBackup(m.FS, snap, backup.DefaultConfig())
			df = duet.NewDefrag(m.FS, dataRoot.Ino, defrag.DefaultConfig())
		}

		remaining := 3
		finish := func() {
			remaining--
			if remaining == 0 {
				m.Eng.Stop()
			}
		}
		m.Eng.Go("scrub", func(tp *duet.Proc) { check(sc.Run(tp)); finish() })
		m.Eng.Go("backup", func(tp *duet.Proc) { check(bk.Run(tp)); finish() })
		m.Eng.Go("defrag", func(tp *duet.Proc) { check(df.Run(tp)); finish() })
	})

	// The paper's window is 30 minutes; a quarter of that suffices here.
	if err := m.Eng.RunFor(8 * duet.Minute); err != nil {
		log.Fatal(err)
	}

	mode := "baseline"
	if *useDuet {
		mode = "Duet"
	}
	fmt.Printf("mode: %s, virtual time: %v\n\n", mode, m.Eng.Now())
	var saved, total int64
	for _, r := range []duet.TaskReport{sc.Report, bk.Report, df.Report} {
		fmt.Printf("%-7s done %7d/%7d blocks, saved %6d, device reads %6d, completed=%v\n",
			r.Name, r.WorkDone, r.WorkTotal, r.Saved, r.ReadBlocks, r.Completed)
		saved += r.Saved
		total += r.WorkTotal
		if r.Name == "defrag" {
			total += r.WorkTotal // defrag pays reads and writes
		}
	}
	fmt.Printf("\ncombined maintenance I/O saved: %.1f%%\n", 100*float64(saved)/float64(total))
	ws := gen.Stats()
	fmt.Printf("workload: %d ops, mean latency %.2f ms\n", ws.Ops, ws.MeanLatency().Milliseconds())
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
