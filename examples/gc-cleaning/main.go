// GC cleaning: an F2fs-style log-structured filesystem under a fileserver
// workload, comparing the baseline segment cleaner with the Duet-enabled
// one whose victim cost is valid − cached/2 (§5.4, Table 6).
//
// Run with:
//
//	go run ./examples/gc-cleaning
package main

import (
	"fmt"
	"log"

	"duet"
	"duet/internal/lfs"
	"duet/internal/workload"
)

const (
	deviceBlocks = 1 << 16 // 256 MiB
	filePages    = 384     // 1.5 MiB files
	numFiles     = 110     // ~70% fill
)

// run builds an aged log-structured filesystem, starts the fileserver
// workload and the chosen cleaner, and reports cleaning statistics.
func run(opportunistic bool) (*duet.GC, *lfs.Stats) {
	m, err := duet.NewLFSMachine(duet.MachineConfig{
		Seed:         5,
		DeviceBlocks: deviceBlocks,
		CachePages:   4096,
	}, lfs.Config{SegBlocks: 512, ReservedSegs: 8})
	if err != nil {
		log.Fatal(err)
	}

	var gc *duet.GC
	m.Eng.Go("main", func(p *duet.Proc) {
		// Fill the log with files, then age it with random overwrites so
		// segments hold a mix of valid and invalid blocks.
		var files []*lfs.Inode
		for i := 0; i < numFiles; i++ {
			f, err := m.FS.Create(fmt.Sprintf("f%03d", i))
			if err != nil {
				log.Fatal(err)
			}
			if err := m.FS.Write(p, f.Ino, 0, filePages); err != nil {
				log.Fatal(err)
			}
			files = append(files, f)
			if i%8 == 7 {
				m.FS.Sync(p)
			}
		}
		m.FS.Sync(p)
		rng := m.Eng.DeriveRand("age")
		for i := 0; i < 2*numFiles; i++ {
			f := files[rng.Intn(len(files))]
			if err := m.FS.Write(p, f.Ino, rng.Int63n(filePages-8), 8); err != nil {
				log.Fatal(err)
			}
			if i%16 == 15 {
				m.FS.Sync(p)
			}
		}
		m.FS.Sync(p)
		for _, f := range files {
			m.Cache.RemoveFile(m.FS.ID(), uint64(f.Ino))
		}

		// Fileserver workload (the only personality that overwrites and
		// deletes, §6.2) at a moderate rate.
		gen, err := workload.NewLFS(m.Eng, m.FS, files, workload.Config{
			Personality: duet.Fileserver,
			OpsPerSec:   25,
		})
		if err != nil {
			log.Fatal(err)
		}
		gen.Start(m.Eng)

		cfg := lfs.GCConfig{
			Interval:  100 * duet.Millisecond,
			IdleAfter: 5 * duet.Millisecond,
		}
		if opportunistic {
			gc, _, err = duet.StartOpportunisticGC(m, cfg)
			if err != nil {
				log.Fatal(err)
			}
		} else {
			gc = m.FS.StartGC(cfg)
		}
		p.Sleep(2 * duet.Minute)
		m.Eng.Stop()
	})
	if err := m.Eng.Run(); err != nil {
		log.Fatal(err)
	}
	return gc, m.FS.Stats()
}

func main() {
	for _, opportunistic := range []bool{false, true} {
		name := "baseline"
		if opportunistic {
			name = "duet    "
		}
		gc, st := run(opportunistic)
		fmt.Printf("%s: %3d segments cleaned, mean cleaning time %6.1f ms, "+
			"blocks read %5d / cached %5d\n",
			name, len(gc.Records), gc.MeanCleanTime().Milliseconds(),
			st.GCBlocksRead, st.GCBlocksCached)
	}
}
