package duet_test

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, as indexed in DESIGN.md. Each benchmark runs the
// corresponding experiment at a reduced sweep (ScaleSmall geometry, a
// coarser utilization step, one seed) and logs the rows/series it
// produced; `go run ./cmd/duetbench` regenerates them at the full small
// or paper scale.
//
// The reported ns/op is the real compute cost of reproducing the item —
// a regression canary for the simulator, not a claim about storage
// hardware.

import (
	"bytes"
	"testing"

	"duet/internal/experiments"
)

// benchScale trims the sweep so the whole suite stays in CI territory.
func benchScale() experiments.Scale {
	s := experiments.ScaleSmall
	s.Seeds = 1
	s.UtilStep = 0.25 // sweep 0, 25, 50, 75, 100%
	return s
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.Lookup(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	s := benchScale()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := e.Run(s, &buf); err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", buf.String())
		}
	}
}

func BenchmarkFig1AccessDistributions(b *testing.B)   { runExperiment(b, "fig1") }
func BenchmarkFig2ScrubIOSaved(b *testing.B)          { runExperiment(b, "fig2") }
func BenchmarkFig3BackupIOSaved(b *testing.B)         { runExperiment(b, "fig3") }
func BenchmarkFig4RsyncSpeedup(b *testing.B)          { runExperiment(b, "fig4") }
func BenchmarkFig5ScrubBackupIOSaved(b *testing.B)    { runExperiment(b, "fig5") }
func BenchmarkFig6ScrubBackupCompletion(b *testing.B) { runExperiment(b, "fig6") }
func BenchmarkFig7ThreeTasksIOSaved(b *testing.B)     { runExperiment(b, "fig7") }
func BenchmarkFig8ThreeTasksCompletion(b *testing.B)  { runExperiment(b, "fig8") }
func BenchmarkFig9CPUOverhead(b *testing.B)           { runExperiment(b, "fig9") }
func BenchmarkFig10SSDIOSaved(b *testing.B)           { runExperiment(b, "fig10") }
func BenchmarkTab5MaxUtilization(b *testing.B)        { runExperiment(b, "tab5") }
func BenchmarkTab6GCCleaningTime(b *testing.B)        { runExperiment(b, "tab6") }
func BenchmarkLatencyImpact(b *testing.B)             { runExperiment(b, "lat") }
func BenchmarkMemOverhead(b *testing.B)               { runExperiment(b, "mem") }

// Ablation benches for the design choices DESIGN.md calls out.
func BenchmarkAblationScheduler(b *testing.B)   { runExperiment(b, "ab-sched") }
func BenchmarkAblationFetchRate(b *testing.B)   { runExperiment(b, "ab-fetch") }
func BenchmarkAblationQueuePolicy(b *testing.B) { runExperiment(b, "ab-policy") }
func BenchmarkAblationDoneFilter(b *testing.B)  { runExperiment(b, "ab-done") }
