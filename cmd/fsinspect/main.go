// Command fsinspect builds a machine, optionally runs a workload over it,
// and dumps the simulated state: filesystem layout and fragmentation,
// page cache composition, device accounting, and Duet framework counters.
// Useful for eyeballing what the substrates are doing.
//
// Usage:
//
//	fsinspect [-data-mb N] [-cache-mb N] [-warm seconds] [-top N]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"duet/internal/core"
	"duet/internal/machine"
	"duet/internal/metrics"
	"duet/internal/obs"
	"duet/internal/sim"
	"duet/internal/storage"
	"duet/internal/workload"
)

func main() {
	var (
		dataMB  = flag.Int64("data-mb", 128, "populated data size")
		cacheMB = flag.Int64("cache-mb", 8, "page cache size")
		warm    = flag.Int("warm", 10, "virtual seconds of webserver workload before the dump")
		top     = flag.Int("top", 10, "how many files to list")
		seed    = flag.Int64("seed", 1, "simulation seed")
		showMet = flag.Bool("metrics", false, "run with observability on and dump the metrics registry")
	)
	flag.Parse()

	var o *obs.Obs
	if *showMet {
		o = &obs.Obs{Metrics: obs.NewRegistry()}
	}
	m, err := machine.New(machine.Config{
		Seed:         *seed,
		DeviceBlocks: *dataMB * 256 * 4,
		CachePages:   int(*cacheMB * 256),
		Obs:          o,
	})
	fatal(err)
	files, err := m.Populate(machine.DefaultPopulateSpec("/data", *dataMB*256))
	fatal(err)

	// Attach an observer session so Duet counters move.
	sess, err := m.Duet.RegisterBlock(m.Adapter, core.StateBits)
	fatal(err)

	if *warm > 0 {
		gen, err := workload.New(m.Eng, m.FS, files, workload.Config{
			Personality: workload.Webserver, Dir: "/data", OpsPerSec: 50,
		})
		fatal(err)
		gen.Start(m.Eng)
		m.Eng.Go("drain", func(p *sim.Proc) {
			buf := make([]core.Item, 256)
			for {
				p.Sleep(20 * sim.Millisecond)
				for sess.FetchInto(buf) == len(buf) {
				}
			}
		})
		fatal(m.Eng.RunFor(sim.Time(*warm) * sim.Second))
	}

	fmt.Printf("== machine (seed %d, virtual time %v)\n", *seed, m.Eng.Now())
	fmt.Printf("device: %d blocks (%d MiB), cache: %d pages (%d MiB)\n\n",
		m.Disk.Blocks(), m.Disk.Blocks()/256, m.Cache.Config().CapacityPages, int64(m.Cache.Config().CapacityPages)/256)

	fmt.Println("== filesystem")
	fmt.Printf("files: %d, allocated blocks: %d, free blocks: %d, generation: %d\n",
		len(files), m.FS.AllocatedBlocks(), m.FS.FreeBlocks(), m.FS.Generation())
	dataRoot, err := m.FS.Lookup("/data")
	fatal(err)
	frag := m.FS.FragmentedFiles(dataRoot.Ino)
	fmt.Printf("fragmented files: %d\n\n", len(frag))

	// Fragmentation histogram: how many files have 1, 2-3, 4-7, ... extents.
	// Buckets are powers of two, like the free-space classes below.
	var histo [16]int
	maxBucket := 0
	for _, f := range m.FS.FilesUnder(dataRoot.Ino) {
		b := 0
		for n := len(f.Extents); n > 1; n >>= 1 {
			b++
		}
		if b >= len(histo) {
			b = len(histo) - 1
		}
		histo[b]++
		if b > maxBucket {
			maxBucket = b
		}
	}
	fmt.Println("== fragmentation histogram (files by extent count)")
	hrows := [][]string{}
	for b := 0; b <= maxBucket; b++ {
		lo := 1 << b
		hi := 1<<(b+1) - 1
		label := fmt.Sprintf("%d", lo)
		if hi > lo {
			label = fmt.Sprintf("%d-%d", lo, hi)
		}
		bar := ""
		for k := 0; k < histo[b] && k < 40; k++ {
			bar += "#"
		}
		hrows = append(hrows, []string{label, fmt.Sprint(histo[b]), bar})
	}
	metrics.RenderTable(os.Stdout, []string{"extents", "files", ""}, hrows)

	// Free-space index occupancy: runs and blocks per size class. A
	// healthy layout keeps most free blocks in large classes; churn
	// shifts them toward class 0 (single-block holes).
	fmt.Printf("\n== free-space index (%d runs, %d free blocks)\n", m.FS.FreeRuns(), m.FS.FreeBlocks())
	brows := [][]string{}
	for _, st := range m.FS.FreeSpaceBuckets() {
		lo := int64(1) << st.Class
		hi := int64(1)<<(st.Class+1) - 1
		label := fmt.Sprintf("%d", lo)
		if hi > lo {
			label = fmt.Sprintf("%d-%d", lo, hi)
		}
		brows = append(brows, []string{label, fmt.Sprint(st.Runs), fmt.Sprint(st.Blocks)})
	}
	metrics.RenderTable(os.Stdout, []string{"run-len", "runs", "blocks"}, brows)
	fmt.Println()

	// Top files by cached pages.
	type fileInfo struct {
		path    string
		sizePg  int64
		extents int
		cached  int
	}
	var infos []fileInfo
	for _, f := range files {
		path, _ := m.FS.PathOf(f.Ino)
		infos = append(infos, fileInfo{
			path:    path,
			sizePg:  f.SizePg,
			extents: len(f.Extents),
			cached:  m.Cache.FilePages(m.FS.ID(), uint64(f.Ino)),
		})
	}
	sort.Slice(infos, func(a, b int) bool { return infos[a].cached > infos[b].cached })
	rows := [][]string{}
	for i, fi := range infos {
		if i >= *top {
			break
		}
		rows = append(rows, []string{
			fi.path,
			fmt.Sprint(fi.sizePg),
			fmt.Sprint(fi.extents),
			fmt.Sprint(fi.cached),
		})
	}
	fmt.Printf("== top %d files by cached pages\n", *top)
	metrics.RenderTable(os.Stdout, []string{"path", "pages", "extents", "cached"}, rows)

	cs := m.Cache.Stats()
	fmt.Printf("\n== page cache\nresident: %d pages (%d dirty), hits: %d, misses: %d, evictions: %d, writeback: %d pages\n",
		m.Cache.Len(), m.Cache.DirtyLen(), cs.Hits, cs.Misses, cs.Evictions, cs.WritebackPages)

	ds := m.Disk.Stats()
	fmt.Printf("\n== device\nrequests: %d, busy: %v", ds.Requests, ds.BusyTime)
	fmt.Printf(" (normal %v, idle %v)\n", ds.ByClassBusy[storage.ClassNormal], ds.ByClassBusy[storage.ClassIdle])
	owners := make([]string, 0, len(ds.ByOwner))
	for o := range ds.ByOwner {
		owners = append(owners, o)
	}
	sort.Strings(owners)
	orows := [][]string{}
	for _, o := range owners {
		os := ds.ByOwner[o]
		orows = append(orows, []string{
			o, fmt.Sprint(os.Reads), fmt.Sprint(os.Writes),
			fmt.Sprint(os.BlocksRead), fmt.Sprint(os.BlocksWritten),
			fmt.Sprintf("%.2f ms", os.AvgLatency().Milliseconds()),
		})
	}
	metrics.RenderTable(os.Stdout, []string{"owner", "reads", "writes", "blk-rd", "blk-wr", "avg-lat"}, orows)

	st := m.Duet.Stats()
	fmt.Printf("\n== duet\nhook calls: %d, items fetched: %d, descriptors: %d (peak %d), dropped: %d, memory: %d B\n",
		st.HookCalls, st.ItemsFetched, st.CurDescs, st.PeakDescs, st.EventsDropped, m.Duet.MemBytes())

	if o != nil {
		m.CollectMetrics(o.Metrics)
		fmt.Println("\n== metrics")
		rows := [][]string{}
		for _, row := range o.Metrics.Rows() {
			rows = append(rows, []string{row[0], row[1]})
		}
		metrics.RenderTable(os.Stdout, []string{"metric", "value"}, rows)
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "fsinspect:", err)
		os.Exit(1)
	}
}
