// Command duetsim runs one ad-hoc maintenance scenario from flags and
// prints the task reports: which tasks ran, how much work they did, how
// much I/O Duet saved, and how the workload fared.
//
// Example:
//
//	duetsim -tasks scrub,backup -duet -personality webserver -rate 50 \
//	        -data-mb 256 -cache-mb 16 -window 60s
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"duet/internal/cowfs"
	"duet/internal/machine"
	"duet/internal/metrics"
	"duet/internal/obs"
	"duet/internal/sim"
	"duet/internal/storage"
	"duet/internal/tasks"
	"duet/internal/tasks/avscan"
	"duet/internal/tasks/backup"
	"duet/internal/tasks/defrag"
	"duet/internal/tasks/scrub"
	"duet/internal/trace"
	"duet/internal/workload"
)

func main() {
	var (
		taskList    = flag.String("tasks", "scrub", "comma-separated: scrub, backup, defrag, avscan")
		duet        = flag.Bool("duet", true, "use the Duet-enabled (opportunistic) task versions")
		personality = flag.String("personality", "webserver", "workload: webserver, webproxy, fileserver, none")
		dist        = flag.String("dist", "uniform", "file access distribution: uniform, ms-dev0/1/2")
		coverage    = flag.Float64("coverage", 1.0, "fraction of files the workload touches (data overlap)")
		rate        = flag.Float64("rate", 50, "workload operations per second (0 = unthrottled)")
		dataMB      = flag.Int64("data-mb", 256, "populated data size")
		deviceMB    = flag.Int64("device-mb", 1024, "device size")
		cacheMB     = flag.Int64("cache-mb", 16, "page cache size")
		device      = flag.String("device", "hdd", "device model: hdd or ssd")
		sched       = flag.String("sched", "cfq", "I/O scheduler: cfq, deadline, noop")
		window      = flag.Duration("window", 60*time.Second, "experiment window (virtual)")
		seed        = flag.Int64("seed", 1, "simulation seed")
		domainJ     = flag.Int("dj", 1, "intra-simulation worker count (only affects multi-domain engines; output is identical at any value)")
		windowMode  = flag.String("window-mode", "adaptive", "barrier protocol for multi-domain engines: adaptive or fixed (output is identical under both)")
		traceOut    = flag.String("trace", "", "write a Chrome trace-event JSON (Perfetto-loadable) to this file")
		metricsOut  = flag.String("metrics", "", "write the metrics registry to this file (.json for JSON, otherwise text)")
	)
	flag.Parse()

	var o *obs.Obs
	if *traceOut != "" || *metricsOut != "" {
		o = &obs.Obs{Metrics: obs.NewRegistry()}
		if *traceOut != "" {
			o.Trace = obs.NewTracer(obs.DefaultTraceEvents)
		}
	}
	m, err := machine.New(machine.Config{
		Seed:         *seed,
		DeviceBlocks: *deviceMB * 256, // MB -> 4 KiB blocks
		Device:       machine.DeviceKind(*device),
		Scheduler:    *sched,
		CachePages:   int(*cacheMB * 256),
		Obs:          o,
	})
	fatal(err)
	m.Eng.SetWorkers(*domainJ)
	wm, ok := sim.WindowModeByName(*windowMode)
	if !ok {
		fmt.Fprintf(os.Stderr, "duetsim: unknown -window-mode %q (want adaptive or fixed)\n", *windowMode)
		os.Exit(2)
	}
	m.Eng.SetWindowMode(wm)
	files, err := m.Populate(machine.DefaultPopulateSpec("/data", *dataMB*256))
	fatal(err)
	dataRoot, err := m.FS.Lookup("/data")
	fatal(err)

	var gen *workload.Generator
	if *personality != "none" {
		gen, err = workload.New(m.Eng, m.FS, files, workload.Config{
			Personality: workload.Personality(*personality),
			Dir:         "/data",
			Coverage:    *coverage,
			Dist:        trace.ByName(*dist),
			OpsPerSec:   *rate,
		})
		fatal(err)
	}

	reports := map[string]*tasks.Report{}
	wg := sim.NewWaitGroup(m.Eng)
	var taskErr error

	m.Eng.Go("main", func(p *sim.Proc) {
		var snap *cowfs.Snapshot
		for _, t := range strings.Split(*taskList, ",") {
			if strings.TrimSpace(t) == "backup" {
				snap, err = m.FS.CreateSnapshot(p, "/data", "/snap")
				if err != nil {
					taskErr = err
					m.Eng.Stop()
					return
				}
			}
		}
		if gen != nil {
			gen.Start(m.Eng)
		}
		for _, t := range strings.Split(*taskList, ",") {
			t := strings.TrimSpace(t)
			wg.Add(1)
			switch t {
			case "scrub":
				var s *scrub.Scrubber
				if *duet {
					s = scrub.NewOpportunistic(m.FS, scrub.DefaultConfig(), m.Duet, m.Adapter)
				} else {
					s = scrub.New(m.FS, scrub.DefaultConfig())
				}
				reports[t] = &s.Report
				m.Eng.Go("scrub", func(tp *sim.Proc) { defer wg.Done(); check(&taskErr, s.Run(tp)) })
			case "backup":
				var b *backup.Backup
				if *duet {
					b = backup.NewOpportunistic(m.FS, snap, backup.DefaultConfig(), m.Duet, m.Adapter)
				} else {
					b = backup.New(m.FS, snap, backup.DefaultConfig())
				}
				reports[t] = &b.Report
				m.Eng.Go("backup", func(tp *sim.Proc) { defer wg.Done(); check(&taskErr, b.Run(tp)) })
			case "defrag":
				var d *defrag.Defrag
				if *duet {
					d = defrag.NewOpportunistic(m.FS, dataRoot.Ino, defrag.DefaultConfig(), m.Duet, m.Adapter)
				} else {
					d = defrag.New(m.FS, dataRoot.Ino, defrag.DefaultConfig())
				}
				reports[t] = &d.Report
				m.Eng.Go("defrag", func(tp *sim.Proc) { defer wg.Done(); check(&taskErr, d.Run(tp)) })
			case "avscan":
				var a *avscan.Scanner
				if *duet {
					a = avscan.NewOpportunistic(m.FS, dataRoot.Ino, avscan.DefaultConfig(), m.Duet, m.Adapter)
				} else {
					a = avscan.New(m.FS, dataRoot.Ino, avscan.DefaultConfig())
				}
				reports[t] = &a.Report
				m.Eng.Go("avscan", func(tp *sim.Proc) { defer wg.Done(); check(&taskErr, a.Run(tp)) })
			default:
				fmt.Fprintf(os.Stderr, "duetsim: unknown task %q\n", t)
				os.Exit(2)
			}
		}
		wg.Wait(p)
		m.Eng.Stop()
	})

	before := m.Disk.Snapshot()
	fatal(m.Eng.RunFor(sim.FromDuration(*window)))
	fatal(taskErr)
	after := m.Disk.Snapshot()

	fmt.Printf("virtual time: %v, device util: %.1f%% (workload %.1f%%)\n\n",
		m.Eng.Now(), 100*storage.UtilBetween(before, after),
		100*storage.UtilClassBetween(before, after, storage.ClassNormal))

	headers := []string{"task", "mode", "done/total", "saved", "reads", "completed", "duration"}
	var rows [][]string
	for _, name := range []string{"scrub", "backup", "defrag", "avscan"} {
		r := reports[name]
		if r == nil {
			continue
		}
		mode := "baseline"
		if r.Opportunistic {
			mode = "duet"
		}
		rows = append(rows, []string{
			r.Name, mode,
			fmt.Sprintf("%d/%d", r.WorkDone, r.WorkTotal),
			fmt.Sprintf("%d (%.1f%%)", r.Saved, 100*r.SavedFraction()),
			fmt.Sprint(r.ReadBlocks),
			fmt.Sprint(r.Completed),
			r.Duration().String(),
		})
	}
	metrics.RenderTable(os.Stdout, headers, rows)

	if gen != nil {
		s := gen.Stats()
		fmt.Printf("\nworkload: %d ops (%d reads, %d writes), mean latency %.2f ms, errors %d\n",
			s.Ops, s.Reads, s.Writes, s.MeanLatency().Milliseconds(), s.Errors)
	}
	ds := m.Duet.Stats()
	fmt.Printf("duet: %d hook calls, %d items fetched, %d descriptors peak, %d dropped\n",
		ds.HookCalls, ds.ItemsFetched, ds.PeakDescs, ds.EventsDropped)

	if o != nil {
		for _, name := range []string{"scrub", "backup", "defrag", "avscan"} {
			if r := reports[name]; r != nil {
				tasks.ObserveRun(o, *r)
			}
		}
		m.CollectMetrics(o.Metrics)
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			fatal(err)
			fatal(obs.WriteTrace(f, "duetsim", o.Trace))
			fatal(f.Close())
			fmt.Fprintf(os.Stderr, "duetsim: wrote %s\n", *traceOut)
		}
		if *metricsOut != "" {
			f, err := os.Create(*metricsOut)
			fatal(err)
			if strings.HasSuffix(*metricsOut, ".json") {
				fatal(obs.WriteMetricsJSON(f, o.Metrics))
			} else {
				fatal(obs.WriteMetricsText(f, o.Metrics))
			}
			fatal(f.Close())
			fmt.Fprintf(os.Stderr, "duetsim: wrote %s\n", *metricsOut)
		}
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "duetsim:", err)
		os.Exit(1)
	}
}

func check(dst *error, err error) {
	if err != nil && *dst == nil {
		*dst = err
	}
}
