// Command duetbench regenerates the tables and figures of the paper's
// evaluation (§6). Each experiment prints the same rows/series the paper
// reports, as aligned text.
//
// Usage:
//
//	duetbench [-scale tiny|small|medium|full] [-seeds N] [-j N] [-dj N] [-experiment id[,id...]]
//	          [-list] [-bench-out file] [-cpuprofile file] [-memprofile file] [-trace file] [-metrics file]
//
// The default small scale reproduces the paper's ratios at laptop cost
// (see internal/experiments); -scale full approximates the paper's
// absolute setup and takes hours.
//
// -j sets the worker count for the experiment grid (default: all CPUs);
// -dj sets the worker count *inside* multi-domain simulations (the
// sharded-machine experiment; default 1). Output — stdout, traces, and
// metrics alike — is byte-identical at any -j and -dj: cells are
// reassembled in input order, trace slots are reserved in input order,
// and the domain-sharded engine delivers cross-domain messages in a
// canonical order at conservative time-window barriers, so parallelism
// only changes wall-clock time. Alongside the text output, a
// machine-readable BENCH_<scale>.json records per-experiment wall-clock
// seconds, cells run, and the worker counts, so the performance
// trajectory is trackable across changes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"duet/internal/experiments"
	"duet/internal/machine"
	"duet/internal/obs"
	"duet/internal/sim"
)

// benchRecord is one experiment's entry in the BENCH json.
type benchRecord struct {
	ID      string  `json:"id"`
	Seconds float64 `json:"seconds"`
	Cells   int64   `json:"cells"`
}

// benchFile is the machine-readable timing summary. GoMaxProcs, Cpus,
// and Parallel are provenance: a -dj N wall-clock number only measures
// a parallel speedup when N goroutines could actually run on N cores,
// so Parallel is false (with a stderr warning) whenever dj exceeds
// GOMAXPROCS or the machine's CPU count — on such a run the dj pair
// bounds barrier overhead, nothing more.
type benchFile struct {
	Scale        string        `json:"scale"`
	Seeds        int           `json:"seeds"`
	Workers      int           `json:"workers"`
	DomainJ      int           `json:"dj"`
	GoMaxProcs   int           `json:"gomaxprocs"`
	Cpus         int           `json:"cpus"`
	WindowMode   string        `json:"window"`
	ExecMode     string        `json:"exec"`
	Parallel     bool          `json:"parallel_speedup"`
	Experiments  []benchRecord `json:"experiments"`
	TotalSeconds float64       `json:"total_seconds"`
	TotalCells   int64         `json:"total_cells"`
	// Robustness aggregates the fault-injection sweep's counters (absent
	// when the faults experiment did not run).
	Robustness *machine.Robustness `json:"robustness,omitempty"`
}

func main() {
	scaleName := flag.String("scale", "small", "experiment scale: tiny, small, medium, or full")
	seeds := flag.Int("seeds", 0, "override the number of repetitions (0 = scale default)")
	workers := flag.Int("j", runtime.GOMAXPROCS(0), "grid worker count (output is identical at any value)")
	domainJ := flag.Int("dj", 1, "intra-simulation worker count for multi-domain cells (output is identical at any value)")
	windowFlag := flag.String("window", "adaptive", "barrier protocol for multi-domain cells: adaptive or fixed (output is identical under both)")
	execFlag := flag.String("exec", "callback", "executor mode: callback (inline, goroutine-free hot path) or proc (legacy goroutine executors; output is identical under both)")
	expFlag := flag.String("experiment", "", "comma-separated experiment IDs (default: all)")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	benchOut := flag.String("bench-out", "", "timing json path (default BENCH_<scale>.json, \"-\" to disable)")
	quiet := flag.Bool("q", false, "suppress the progress line on stderr")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON (Perfetto-loadable) of every cell to this file")
	metricsOut := flag.String("metrics", "", "write the merged metrics registry to this file (.json for JSON, otherwise text)")
	flag.Parse()

	if *list {
		for _, e := range experiments.All {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}

	scale, ok := experiments.ByName(*scaleName)
	if !ok {
		fmt.Fprintf(os.Stderr, "duetbench: unknown scale %q\n", *scaleName)
		os.Exit(2)
	}
	if *seeds > 0 {
		scale.Seeds = *seeds
	}
	experiments.Workers = *workers
	experiments.DomainWorkers = *domainJ
	windowMode, ok := sim.WindowModeByName(*windowFlag)
	if !ok {
		fmt.Fprintf(os.Stderr, "duetbench: unknown -window %q (want adaptive or fixed)\n", *windowFlag)
		os.Exit(2)
	}
	experiments.WindowMode = windowMode
	switch *execFlag {
	case "callback":
		experiments.LegacyExec = false
	case "proc":
		experiments.LegacyExec = true
	default:
		fmt.Fprintf(os.Stderr, "duetbench: unknown -exec %q (want callback or proc)\n", *execFlag)
		os.Exit(2)
	}
	if !*quiet {
		experiments.Progress = os.Stderr
	}
	if *traceOut != "" || *metricsOut != "" {
		experiments.EnableObs(*traceOut != "")
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "duetbench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "duetbench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "duetbench: -memprofile: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "duetbench: -memprofile: %v\n", err)
				os.Exit(1)
			}
		}()
	}

	var ids []string
	if *expFlag == "" {
		ids = experiments.IDs()
	} else {
		ids = strings.Split(*expFlag, ",")
	}

	bench := benchFile{
		Scale:      scale.Name,
		Seeds:      scale.Seeds,
		Workers:    *workers,
		DomainJ:    *domainJ,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Cpus:       runtime.NumCPU(),
		WindowMode: windowMode.String(),
		ExecMode:   *execFlag,
	}
	bench.Parallel = *domainJ <= bench.GoMaxProcs && *domainJ <= bench.Cpus
	if *domainJ > 1 && !bench.Parallel {
		fmt.Fprintf(os.Stderr,
			"duetbench: -dj %d exceeds GOMAXPROCS (%d) or CPUs (%d): recording parallel_speedup=false — this run bounds barrier overhead, it is not a parallel speedup\n",
			*domainJ, bench.GoMaxProcs, bench.Cpus)
	}
	totalStart := time.Now()
	for _, id := range ids {
		e, ok := experiments.Lookup(strings.TrimSpace(id))
		if !ok {
			fmt.Fprintf(os.Stderr, "duetbench: unknown experiment %q (try -list)\n", id)
			os.Exit(2)
		}
		fmt.Printf("==> %s: %s (scale %s, %d seed(s))\n", e.ID, e.Title, scale.Name, scale.Seeds)
		start := time.Now()
		cellsBefore := experiments.CellsRun()
		if err := e.Run(scale, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "duetbench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		elapsed := time.Since(start)
		bench.Experiments = append(bench.Experiments, benchRecord{
			ID:      e.ID,
			Seconds: elapsed.Seconds(),
			Cells:   experiments.CellsRun() - cellsBefore,
		})
		// Timing goes to stderr (and the BENCH json): stdout must be
		// byte-identical across runs and worker counts.
		fmt.Fprintf(os.Stderr, "duetbench: %s done in %s\n", e.ID, elapsed.Round(time.Millisecond))
		fmt.Println()
	}
	bench.TotalSeconds = time.Since(totalStart).Seconds()
	bench.TotalCells = experiments.CellsRun()
	bench.Robustness = experiments.RobustnessSummary()

	if *benchOut != "-" {
		path := *benchOut
		if path == "" {
			path = fmt.Sprintf("BENCH_%s.json", scale.Name)
		}
		buf, err := json.MarshalIndent(bench, "", "  ")
		if err == nil {
			buf = append(buf, '\n')
			err = os.WriteFile(path, buf, 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "duetbench: writing %s: %v\n", path, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "duetbench: wrote %s (%.1fs over %d cells, %d workers)\n",
			path, bench.TotalSeconds, bench.TotalCells, bench.Workers)
	}

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err == nil {
			err = obs.WriteTraceMulti(f, experiments.CellTraces())
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "duetbench: -trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "duetbench: wrote %s (%d cells)\n", *traceOut, len(experiments.CellTraces()))
	}
	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err == nil {
			reg := experiments.ObsRegistry()
			if strings.HasSuffix(*metricsOut, ".json") {
				err = obs.WriteMetricsJSON(f, reg)
			} else {
				err = obs.WriteMetricsText(f, reg)
			}
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "duetbench: -metrics: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "duetbench: wrote %s\n", *metricsOut)
	}
}
