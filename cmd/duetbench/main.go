// Command duetbench regenerates the tables and figures of the paper's
// evaluation (§6). Each experiment prints the same rows/series the paper
// reports, as aligned text.
//
// Usage:
//
//	duetbench [-scale tiny|small|full] [-seeds N] [-experiment id[,id...]] [-list]
//
// The default small scale reproduces the paper's ratios at laptop cost
// (see internal/experiments); -scale full approximates the paper's
// absolute setup and takes hours.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"duet/internal/experiments"
)

func main() {
	scaleName := flag.String("scale", "small", "experiment scale: tiny, small, or full")
	seeds := flag.Int("seeds", 0, "override the number of repetitions (0 = scale default)")
	expFlag := flag.String("experiment", "", "comma-separated experiment IDs (default: all)")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	flag.Parse()

	if *list {
		for _, e := range experiments.All {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}

	scale, ok := experiments.ByName(*scaleName)
	if !ok {
		fmt.Fprintf(os.Stderr, "duetbench: unknown scale %q\n", *scaleName)
		os.Exit(2)
	}
	if *seeds > 0 {
		scale.Seeds = *seeds
	}

	var ids []string
	if *expFlag == "" {
		ids = experiments.IDs()
	} else {
		ids = strings.Split(*expFlag, ",")
	}

	for _, id := range ids {
		e, ok := experiments.Lookup(strings.TrimSpace(id))
		if !ok {
			fmt.Fprintf(os.Stderr, "duetbench: unknown experiment %q (try -list)\n", id)
			os.Exit(2)
		}
		fmt.Printf("==> %s: %s (scale %s, %d seed(s))\n", e.ID, e.Title, scale.Name, scale.Seeds)
		start := time.Now()
		if err := e.Run(scale, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "duetbench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("    (%s)\n\n", time.Since(start).Round(time.Millisecond))
	}
}
