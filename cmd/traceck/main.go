// Command traceck validates a Chrome trace-event JSON file produced by
// the observability subsystem (duetbench -trace / duetsim -trace): it
// checks the schema (required fields, known phases, non-negative
// timestamps and durations) and the engine's window protocol as
// witnessed by the trace (per domain, barrier "window" slices open
// strictly later than their predecessor and never overlap it; no
// engine-level slice ends before its domain's window opened), then
// prints a one-line summary. A violation exits non-zero, which is how
// CI gates the trace artifact.
//
// Usage:
//
//	traceck file.json
package main

import (
	"fmt"
	"os"

	"duet/internal/obs"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: traceck file.json")
		os.Exit(2)
	}
	f, err := os.Open(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "traceck:", err)
		os.Exit(1)
	}
	defer f.Close()
	sum, err := obs.ValidateTrace(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "traceck:", err)
		os.Exit(1)
	}
	fmt.Printf("%s: ok (%d events, %d metadata, %d processes, %d tracks, %d windows)\n",
		os.Args[1], sum.Events, sum.Metadata, len(sum.Processes), sum.Tracks, sum.Windows)
}
