module duet

go 1.22
