// Package duet is a faithful, simulation-backed reproduction of Duet, the
// opportunistic storage maintenance framework of
//
//	George Amvrosiadis, Angela Demke Brown, Ashvin Goel.
//	"Opportunistic Storage Maintenance". SOSP 2015.
//
// Duet hooks into the page cache and notifies maintenance tasks —
// scrubbing, backup, defragmentation, garbage collection, rsync — about
// page-level events (a page added, removed, dirtied, or flushed), so
// tasks can process data that is already in memory out of order and skip
// the corresponding device I/O.
//
// The original system lives inside the Linux kernel. This module rebuilds
// the entire stack as a deterministic discrete-event simulation: virtual
// time, HDD/SSD device models behind a CFQ-like scheduler with an idle
// class, an LRU page cache with writeback, a Btrfs-like copy-on-write
// filesystem with checksums and snapshots, an F2fs-like log-structured
// filesystem with segment cleaning, Filebench-like workload generators —
// and Duet itself, hooked into the simulated cache exactly as the paper
// describes (§4).
//
// # Quick start
//
//	m, err := duet.NewMachine(duet.MachineConfig{
//		Seed:         1,
//		DeviceBlocks: 1 << 18, // 1 GiB device, 4 KiB blocks
//		CachePages:   4096,    // 16 MiB page cache
//	})
//	// populate a tree, register a Duet session, run a task...
//
// See examples/quickstart for a complete program, DESIGN.md for the
// system inventory, and internal/experiments for the reproduction of
// every table and figure in the paper's evaluation.
package duet

import (
	"duet/internal/core"
	"duet/internal/cowfs"
	"duet/internal/lfs"
	"duet/internal/machine"
	"duet/internal/metrics"
	"duet/internal/pagecache"
	"duet/internal/sim"
	"duet/internal/storage"
	"duet/internal/tasks"
	"duet/internal/tasks/avscan"
	"duet/internal/tasks/backup"
	"duet/internal/tasks/defrag"
	"duet/internal/tasks/gcduet"
	"duet/internal/tasks/rsync"
	"duet/internal/tasks/scrub"
	"duet/internal/trace"
	"duet/internal/workload"
)

// --- simulation kernel -------------------------------------------------------

// Time is virtual time in nanoseconds.
type Time = sim.Time

// Common durations.
const (
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
	Minute      = sim.Minute
	Hour        = sim.Hour
)

// Engine is the discrete-event scheduler every machine runs on.
type Engine = sim.Engine

// Proc is a simulated process.
type Proc = sim.Proc

// --- machine assembly --------------------------------------------------------

// MachineConfig describes a simulated machine.
type MachineConfig = machine.Config

// Machine is a complete simulated host: device, scheduler, page cache,
// COW filesystem, and a Duet instance hooked into the cache.
type Machine = machine.Machine

// LFSMachine is a machine whose filesystem is log-structured.
type LFSMachine = machine.LFSMachine

// PopulateSpec describes a synthetic file tree.
type PopulateSpec = machine.PopulateSpec

// Device kinds.
const (
	HDD = machine.HDD
	SSD = machine.SSD
)

// NewMachine builds a machine with a COW filesystem.
func NewMachine(cfg MachineConfig) (*Machine, error) { return machine.New(cfg) }

// NewLFSMachine builds a machine with a log-structured filesystem.
func NewLFSMachine(cfg MachineConfig, fscfg lfs.Config) (*LFSMachine, error) {
	return machine.NewLFS(cfg, fscfg)
}

// DefaultPopulateSpec sizes a Filebench-like tree of roughly totalPages.
func DefaultPopulateSpec(dir string, totalPages int64) PopulateSpec {
	return machine.DefaultPopulateSpec(dir, totalPages)
}

// --- the Duet framework (the paper's API, Table 1) ---------------------------

// Framework is the Duet instance: it receives page-cache events and
// distributes them to sessions.
type Framework = core.Duet

// Session is one task's registration (duet_register .. duet_deregister).
type Session = core.Session

// Item is one fetched notification: (item_id, offset, flag) plus the page
// identity that produced it.
type Item = core.Item

// Mask selects notification types and is the per-item flag word.
type Mask = core.Mask

// Notification bits (Table 2 of the paper).
const (
	EvtAdded   = core.EvtAdded
	EvtRemoved = core.EvtRemoved
	EvtDirtied = core.EvtDirtied
	EvtFlushed = core.EvtFlushed
	StExists   = core.StExists
	StModified = core.StModified
	EventBits  = core.EventBits
	StateBits  = core.StateBits
)

// --- filesystems --------------------------------------------------------------

// CowFS is the Btrfs-like copy-on-write filesystem.
type CowFS = cowfs.FS

// CowInode is a cowfs file or directory.
type CowInode = cowfs.Inode

// Snapshot is a cowfs snapshot (shares blocks with the live tree).
type Snapshot = cowfs.Snapshot

// LFS is the F2fs-like log-structured filesystem.
type LFS = lfs.FS

// --- storage -------------------------------------------------------------------

// Disk is a simulated block device.
type Disk = storage.Disk

// I/O priority classes.
const (
	ClassNormal = storage.ClassNormal
	ClassIdle   = storage.ClassIdle
)

// --- maintenance tasks (§5) ----------------------------------------------------

// TaskReport summarises a maintenance run (work done, I/O saved, ...).
type TaskReport = tasks.Report

// Scrubber is the checksum scrubber (§5.1).
type Scrubber = scrub.Scrubber

// NewScrubber returns a baseline scrubber.
func NewScrubber(fs *CowFS, cfg scrub.Config) *Scrubber { return scrub.New(fs, cfg) }

// NewOpportunisticScrubber returns a Duet-enabled scrubber.
func NewOpportunisticScrubber(m *Machine, cfg scrub.Config) *Scrubber {
	return scrub.NewOpportunistic(m.FS, cfg, m.Duet, m.Adapter)
}

// Backup is the snapshot-based backup tool (§5.2).
type Backup = backup.Backup

// NewBackup returns a baseline backup of the snapshot.
func NewBackup(fs *CowFS, snap *Snapshot, cfg backup.Config) *Backup {
	return backup.New(fs, snap, cfg)
}

// NewOpportunisticBackup returns a Duet-enabled backup.
func NewOpportunisticBackup(m *Machine, snap *Snapshot, cfg backup.Config) *Backup {
	return backup.NewOpportunistic(m.FS, snap, cfg, m.Duet, m.Adapter)
}

// Defrag is the file defragmenter (§5.3).
type Defrag = defrag.Defrag

// NewDefrag returns a baseline defragmenter for the subtree at root.
func NewDefrag(fs *CowFS, root cowfs.Ino, cfg defrag.Config) *Defrag {
	return defrag.New(fs, root, cfg)
}

// NewOpportunisticDefrag returns a Duet-enabled defragmenter.
func NewOpportunisticDefrag(m *Machine, root cowfs.Ino, cfg defrag.Config) *Defrag {
	return defrag.NewOpportunistic(m.FS, root, cfg, m.Duet, m.Adapter)
}

// GC is the lfs segment cleaner (§5.4); GCTracker holds the Duet-derived
// per-segment cache counters for the opportunistic cost function.
type (
	GC        = lfs.GC
	GCTracker = gcduet.Tracker
)

// StartOpportunisticGC launches the Duet-enabled cleaner on an lfs
// machine.
func StartOpportunisticGC(m *LFSMachine, cfg lfs.GCConfig) (*GC, *GCTracker, error) {
	return gcduet.StartGC(m.Eng, m.Duet, m.Adapter, m.FS, cfg)
}

// AVScanner is the anti-virus style scanner (an extension motivated by
// the paper's introduction; see internal/tasks/avscan).
type AVScanner = avscan.Scanner

// NewAVScanner returns a baseline scanner over the subtree at root.
func NewAVScanner(fs *CowFS, root cowfs.Ino, cfg avscan.Config) *AVScanner {
	return avscan.New(fs, root, cfg)
}

// NewOpportunisticAVScanner returns a Duet-enabled scanner.
func NewOpportunisticAVScanner(m *Machine, root cowfs.Ino, cfg avscan.Config) *AVScanner {
	return avscan.NewOpportunistic(m.FS, root, cfg, m.Duet, m.Adapter)
}

// Rsync is the three-process rsync model (§5.5).
type Rsync = rsync.Rsync

// NewRsync returns a baseline rsync from srcRoot (on src) into dstDir.
func NewRsync(src *CowFS, srcRoot cowfs.Ino, dst *CowFS, dstDir string, cfg rsync.Config) *Rsync {
	return rsync.New(src, srcRoot, dst, dstDir, cfg)
}

// NewOpportunisticRsync returns a Duet-enabled rsync.
func NewOpportunisticRsync(m *Machine, srcRoot cowfs.Ino, dst *CowFS, dstDir string, cfg rsync.Config) *Rsync {
	return rsync.NewOpportunistic(m.FS, srcRoot, dst, dstDir, cfg, m.Duet, m.Adapter)
}

// --- workload generation (§6.1.1) ----------------------------------------------

// Workload drives Filebench-like foreground I/O.
type Workload = workload.Generator

// WorkloadConfig selects personality, coverage, distribution, and rate.
type WorkloadConfig = workload.Config

// Personalities.
const (
	Webserver  = workload.Webserver
	Webproxy   = workload.Webproxy
	Fileserver = workload.Fileserver
)

// NewWorkload builds a generator over a cowfs population.
func NewWorkload(m *Machine, files []*CowInode, cfg WorkloadConfig) (*Workload, error) {
	return workload.New(m.Eng, m.FS, files, cfg)
}

// AccessDistribution picks files by popularity (uniform or skewed).
type AccessDistribution = trace.Distribution

// DistributionByName resolves "uniform" or "ms-dev0/1/2".
func DistributionByName(name string) AccessDistribution { return trace.ByName(name) }

// --- metrics -------------------------------------------------------------------

// Figure is a renderable set of series (the experiment harness's output).
type Figure = metrics.Figure

// UtilBetween computes device utilization between two snapshots.
func UtilBetween(a, b storage.Snapshot) float64 { return storage.UtilBetween(a, b) }

// Ensure the pagecache package's types stay reachable for advanced use.
type (
	// Page is a cached page.
	Page = pagecache.Page
	// PageCache is the simulated page cache Duet hooks into.
	PageCache = pagecache.Cache
)
