package lfs

import (
	"duet/internal/obs"
)

// Observability (internal/obs). The cleaner is the interesting actor in
// a log-structured filesystem: each completed GC pass becomes one
// virtual-time slice tagged with the blocks it migrated, and abandoned
// passes (device read failures) are marked with an instant event.
// Cumulative Stats are absorbed by PublishMetrics.

// lfsObs holds the pre-resolved instruments; nil on fs.obs disables
// everything.
type lfsObs struct {
	tr  *obs.Tracer
	tid int32
}

// EnableObs attaches observability to the filesystem. Call once at
// machine assembly, before the simulation runs.
func (fs *FS) EnableObs(o *obs.Obs) {
	if o == nil || o.Trace == nil {
		return
	}
	fs.obs = &lfsObs{tr: o.Trace, tid: o.Trace.Track("lfs")}
}

// PublishMetrics absorbs the filesystem's cumulative counters into the
// registry under "lfs.*". Safe to call repeatedly; values are absolute
// so re-absorption cannot double-count.
func (fs *FS) PublishMetrics(r *obs.Registry) {
	if r == nil {
		return
	}
	s := &fs.stats
	r.SetCounter("lfs.writes_pages", s.WritesPages)
	r.SetCounter("lfs.reads_pages", s.ReadsPages)
	r.SetCounter("lfs.miss_pages", s.MissPages)
	r.SetCounter("lfs.writeback_pages", s.WritebackPages)
	r.SetCounter("lfs.writeback_errors", s.WritebackErrors)
	r.SetCounter("lfs.invalidations", s.Invalidations)
	r.SetCounter("lfs.segs_freed", s.SegsFreed)
	r.SetCounter("lfs.segs_cleaned", s.SegsCleaned)
	r.SetCounter("lfs.gc_blocks_moved", s.GCBlocksMoved)
	r.SetCounter("lfs.gc_blocks_read", s.GCBlocksRead)
	r.SetCounter("lfs.gc_blocks_cached", s.GCBlocksCached)
	r.SetCounter("lfs.in_place_writes", s.InPlaceWrites)
	r.SetCounter("lfs.gc_sync_errors", s.GCSyncErrors)
	r.SetCounter("lfs.gc_read_errors", s.GCReadErrors)
	r.SetCounter("lfs.commits", s.Commits)
	r.SetCounter("lfs.segs_pinned", s.SegsPinned)
	r.SetCounter("lfs.rolled_forward", s.RolledForward)
	r.Gauge("lfs.free_segments").Set(int64(fs.FreeSegments()))
}
