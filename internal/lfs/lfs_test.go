package lfs

import (
	"errors"
	"testing"

	"duet/internal/iosched"
	"duet/internal/pagecache"
	"duet/internal/sim"
	"duet/internal/storage"
)

// Small geometry so tests exercise segment transitions quickly.
const (
	testSegBlocks = 16
	testSegs      = 32
	testBlocks    = testSegBlocks * testSegs
)

type env struct {
	e     *sim.Engine
	disk  *storage.Disk
	cache *pagecache.Cache
	fs    *FS
}

func newEnv(cachePages int) *env {
	e := sim.New(1)
	disk := storage.NewDisk(e, "nvme0", storage.DefaultSSD(testBlocks), iosched.NewCFQ())
	// A quiet flusher (no dirty-background kicks) keeps log placement
	// exactly as the tests' explicit Sync calls dictate.
	cc := pagecache.DefaultConfig(cachePages)
	cc.DirtyBackgroundRatio = 1.0
	cache := pagecache.New(e, cc)
	fs := New(e, 2, disk, cache, Config{SegBlocks: testSegBlocks, ReservedSegs: 2})
	return &env{e: e, disk: disk, cache: cache, fs: fs}
}

func (v *env) in(t *testing.T, fn func(p *sim.Proc)) {
	t.Helper()
	v.e.Go("test", func(p *sim.Proc) {
		// Stop via defer so a t.Fatal inside fn still ends the run.
		defer v.e.Stop()
		fn(p)
	})
	if err := v.e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCreateLookupDelete(t *testing.T) {
	v := newEnv(256)
	f, err := v.fs.Create("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.fs.Create("a"); !errors.Is(err, ErrExists) {
		t.Errorf("dup create: %v", err)
	}
	got, err := v.fs.Lookup("a")
	if err != nil || got.Ino != f.Ino {
		t.Errorf("lookup: %v %v", got, err)
	}
	if err := v.fs.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := v.fs.Lookup("a"); !errors.Is(err, ErrNotFound) {
		t.Errorf("lookup after delete: %v", err)
	}
}

func TestWriteFlushPlacesInLog(t *testing.T) {
	v := newEnv(256)
	f, _ := v.fs.Create("a")
	v.in(t, func(p *sim.Proc) {
		if err := v.fs.Write(p, f.Ino, 0, 8); err != nil {
			t.Fatal(err)
		}
		// Before flush: no on-device placement.
		if _, ok := v.fs.Fibmap(f.Ino, 0); ok {
			t.Error("page mapped before flush")
		}
		v.fs.Sync(p)
	})
	// After flush: pages 0..7 occupy the first log segment sequentially.
	for idx := int64(0); idx < 8; idx++ {
		b, ok := v.fs.Fibmap(f.Ino, idx)
		if !ok || b != idx {
			t.Errorf("page %d at block %d (ok=%v), want %d", idx, b, ok, idx)
		}
	}
	seg := v.fs.Segment(0)
	if seg.Valid != 8 || seg.State != SegOpen {
		t.Errorf("segment 0: valid=%d state=%d", seg.Valid, seg.State)
	}
	if ino, idx, ok := v.fs.SlotOwner(3); !ok || ino != f.Ino || idx != 3 {
		t.Errorf("SlotOwner(3) = %d,%d,%v", ino, idx, ok)
	}
}

func TestOverwriteInvalidatesOldCopy(t *testing.T) {
	v := newEnv(256)
	f, _ := v.fs.Create("a")
	v.in(t, func(p *sim.Proc) {
		if err := v.fs.Write(p, f.Ino, 0, testSegBlocks); err != nil {
			t.Fatal(err)
		}
		v.fs.Sync(p) // fills segment 0 exactly
		if err := v.fs.Write(p, f.Ino, 0, 4); err != nil {
			t.Fatal(err)
		}
		v.fs.Sync(p) // new copies appended to segment 1
	})
	if got := v.fs.Stats().Invalidations; got != 4 {
		t.Errorf("Invalidations = %d, want 4", got)
	}
	if v.fs.Segment(0).Valid != testSegBlocks-4 {
		t.Errorf("segment 0 valid = %d", v.fs.Segment(0).Valid)
	}
	b, _ := v.fs.Fibmap(f.Ino, 0)
	if v.fs.SegOf(b) != 1 {
		t.Errorf("rewritten page landed in segment %d, want 1", v.fs.SegOf(b))
	}
}

func TestSegmentFreesWhenEmptied(t *testing.T) {
	v := newEnv(256)
	f, _ := v.fs.Create("a")
	v.in(t, func(p *sim.Proc) {
		if err := v.fs.Write(p, f.Ino, 0, testSegBlocks); err != nil {
			t.Fatal(err)
		}
		v.fs.Sync(p)
		freeBefore := v.fs.FreeSegments()
		// Rewrite everything: all of segment 0 becomes invalid.
		if err := v.fs.Write(p, f.Ino, 0, testSegBlocks); err != nil {
			t.Fatal(err)
		}
		v.fs.Sync(p)
		if v.fs.Segment(0).State != SegFree {
			t.Errorf("segment 0 state = %d, want free", v.fs.Segment(0).State)
		}
		if v.fs.FreeSegments() != freeBefore {
			t.Errorf("free segments = %d, want %d", v.fs.FreeSegments(), freeBefore)
		}
	})
	if v.fs.Stats().SegsFreed == 0 {
		t.Error("no segment was freed")
	}
}

func TestReadBackContent(t *testing.T) {
	v := newEnv(256)
	f, _ := v.fs.Create("a")
	v.in(t, func(p *sim.Proc) {
		if err := v.fs.Write(p, f.Ino, 0, 10); err != nil {
			t.Fatal(err)
		}
		v.fs.Sync(p)
		v.cache.RemoveFile(v.fs.ID(), uint64(f.Ino))
		if err := v.fs.ReadFile(p, f.Ino, storage.ClassNormal, "t"); err != nil {
			t.Fatal(err)
		}
		for idx := int64(0); idx < 10; idx++ {
			pg, ok := v.cache.Peek(v.fs.pageKey(f.Ino, idx))
			if !ok || pg.Version != f.vers[idx] {
				t.Errorf("page %d: cached=%v version mismatch", idx, ok)
			}
		}
	})
}

func TestHoleRead(t *testing.T) {
	v := newEnv(256)
	f, _ := v.fs.Create("a")
	v.in(t, func(p *sim.Proc) {
		if err := v.fs.Write(p, f.Ino, 5, 1); err != nil {
			t.Fatal(err)
		}
		before := v.disk.Stats().Owner("t").BlocksRead
		if err := v.fs.Read(p, f.Ino, 0, 5, storage.ClassNormal, "t"); err != nil {
			t.Fatal(err)
		}
		if v.disk.Stats().Owner("t").BlocksRead != before {
			t.Error("hole read performed I/O")
		}
	})
}

func TestDeleteInvalidates(t *testing.T) {
	v := newEnv(256)
	f, _ := v.fs.Create("a")
	v.in(t, func(p *sim.Proc) {
		if err := v.fs.Write(p, f.Ino, 0, 8); err != nil {
			t.Fatal(err)
		}
		v.fs.Sync(p)
		if err := v.fs.Delete("a"); err != nil {
			t.Fatal(err)
		}
	})
	if v.fs.Segment(0).Valid != 0 {
		t.Errorf("segment 0 valid = %d after delete", v.fs.Segment(0).Valid)
	}
}

// fillFS writes files to bring segment occupancy up, then invalidates a
// portion by rewriting, creating cleanable segments.
func fillFS(t *testing.T, v *env, p *sim.Proc, files, pagesEach int) []*Inode {
	t.Helper()
	var inodes []*Inode
	for i := 0; i < files; i++ {
		f, err := v.fs.Create(string(rune('a' + i)))
		if err != nil {
			t.Fatal(err)
		}
		if err := v.fs.Write(p, f.Ino, 0, int64(pagesEach)); err != nil {
			t.Fatal(err)
		}
		inodes = append(inodes, f)
	}
	v.fs.Sync(p)
	return inodes
}

func TestGCCleansSparsestSegment(t *testing.T) {
	v := newEnv(256)
	var gc *GC
	v.in(t, func(p *sim.Proc) {
		files := fillFS(t, v, p, 4, testSegBlocks) // fills segments 0..3
		// Invalidate most of file 1's segment (segment 1).
		if err := v.fs.Write(p, files[1].Ino, 0, testSegBlocks-2); err != nil {
			t.Fatal(err)
		}
		v.fs.Sync(p)
		gc = v.fs.StartGC(GCConfig{
			Interval:       50 * sim.Millisecond,
			IdleAfter:      5 * sim.Millisecond,
			UrgentFreeSegs: 0,
			WindowSegs:     4096,
		})
		p.Sleep(40 * sim.Second) // idle: GC gets plenty of turns; flusher runs
	})
	if len(gc.Records) == 0 {
		t.Fatal("GC never cleaned")
	}
	first := gc.Records[0]
	if first.SegIdx != 1 {
		t.Errorf("first victim = segment %d, want 1 (sparsest)", first.SegIdx)
	}
	if first.BlocksMoved != 2 {
		t.Errorf("moved %d blocks, want 2", first.BlocksMoved)
	}
}

func TestGCUsesCachedBlocks(t *testing.T) {
	v := newEnv(256)
	v.in(t, func(p *sim.Proc) {
		files := fillFS(t, v, p, 2, testSegBlocks)
		// Invalidate half of segment 0, then cache the remaining valid
		// blocks by reading them.
		if err := v.fs.Write(p, files[0].Ino, 0, testSegBlocks/2); err != nil {
			t.Fatal(err)
		}
		v.fs.Sync(p)
		if err := v.fs.Read(p, files[0].Ino, testSegBlocks/2, testSegBlocks/2, storage.ClassNormal, "w"); err != nil {
			t.Fatal(err)
		}
		if got := v.fs.CachedValidBlocks(0); got != testSegBlocks/2 {
			t.Fatalf("CachedValidBlocks = %d", got)
		}
		gc := v.fs.StartGC(GCConfig{Interval: 50 * sim.Millisecond, IdleAfter: 5 * sim.Millisecond})
		p.Sleep(10 * sim.Second)
		if len(gc.Records) == 0 {
			t.Fatal("GC never ran")
		}
		r := gc.Records[0]
		if r.SegIdx != 0 {
			t.Fatalf("victim = %d", r.SegIdx)
		}
		if r.BlocksCached != testSegBlocks/2 || r.BlocksRead != 0 {
			t.Errorf("cached=%d read=%d; all valid blocks were cached", r.BlocksCached, r.BlocksRead)
		}
	})
}

func TestGCIdleGating(t *testing.T) {
	v := newEnv(256)
	v.in(t, func(p *sim.Proc) {
		files := fillFS(t, v, p, 2, testSegBlocks)
		if err := v.fs.Write(p, files[0].Ino, 0, 4); err != nil {
			t.Fatal(err)
		}
		v.fs.Sync(p)
		gc := v.fs.StartGC(GCConfig{Interval: 20 * sim.Millisecond, IdleAfter: 50 * sim.Millisecond, UrgentFreeSegs: 0})
		// Keep the device busy with normal I/O; GC must not run.
		for i := 0; i < 200; i++ {
			if err := v.fs.ReadFile(p, files[1].Ino, storage.ClassNormal, "w"); err != nil {
				t.Fatal(err)
			}
			v.cache.RemoveFile(v.fs.ID(), uint64(files[1].Ino)) // force misses
			p.Sleep(5 * sim.Millisecond)
		}
		if len(gc.Records) != 0 {
			t.Errorf("GC ran %d times under load", len(gc.Records))
		}
		// Go idle: GC should clean.
		p.Sleep(5 * sim.Second)
		if len(gc.Records) == 0 {
			t.Error("GC never ran when idle")
		}
	})
}

func TestGCCustomCost(t *testing.T) {
	v := newEnv(256)
	v.in(t, func(p *sim.Proc) {
		files := fillFS(t, v, p, 3, testSegBlocks)
		// Make segments 0 and 1 equally sparse.
		if err := v.fs.Write(p, files[0].Ino, 0, 8); err != nil {
			t.Fatal(err)
		}
		if err := v.fs.Write(p, files[1].Ino, 0, 8); err != nil {
			t.Fatal(err)
		}
		v.fs.Sync(p)
		// Custom cost prefers segment 1 strongly.
		cost := func(fs *FS, si int) float64 {
			if si == 1 {
				return 0
			}
			return float64(fs.Segment(si).Valid)
		}
		gc := v.fs.StartGC(GCConfig{Interval: 50 * sim.Millisecond, IdleAfter: 5 * sim.Millisecond, Cost: cost})
		p.Sleep(5 * sim.Second)
		if len(gc.Records) == 0 || gc.Records[0].SegIdx != 1 {
			t.Errorf("records = %+v, want segment 1 first", gc.Records)
		}
	})
}

func TestUrgentCleaningUnderPressure(t *testing.T) {
	v := newEnv(1024)
	v.in(t, func(p *sim.Proc) {
		// Nearly fill the device, then keep rewriting with immediate
		// flushes: without cleaning the log would run out of free
		// segments. The GC is idle-gated out (IdleAfter: 1h), so only the
		// urgent free-segment watermark can save it.
		f, _ := v.fs.Create("big")
		total := int64(testBlocks * 13 / 16)
		if err := v.fs.Write(p, f.Ino, 0, total); err != nil {
			t.Fatal(err)
		}
		v.fs.Sync(p)
		gc := v.fs.StartGC(GCConfig{Interval: 10 * sim.Millisecond, IdleAfter: sim.Hour, UrgentFreeSegs: 4})
		rng := p.Rand()
		for i := 0; i < 400; i++ {
			off := rng.Int63n(total - 8)
			if err := v.fs.Write(p, f.Ino, off, 8); err != nil {
				t.Fatal(err)
			}
			v.fs.Sync(p)
			p.Sleep(20 * sim.Millisecond)
		}
		if len(gc.Records) == 0 {
			t.Error("urgent GC never triggered")
		}
		urgent := 0
		for _, r := range gc.Records {
			if r.Urgent {
				urgent++
			}
		}
		if urgent == 0 {
			t.Error("no urgent cleanings despite idle-gated config")
		}
	})
}

func TestMeanCleanTime(t *testing.T) {
	g := &GC{}
	if g.MeanCleanTime() != 0 {
		t.Error("empty mean should be 0")
	}
	g.Records = []CleanRecord{{Duration: 2 * sim.Millisecond}, {Duration: 4 * sim.Millisecond}}
	if g.MeanCleanTime() != 3*sim.Millisecond {
		t.Errorf("mean = %v", g.MeanCleanTime())
	}
}

func TestValidBlockAccounting(t *testing.T) {
	v := newEnv(1024)
	v.in(t, func(p *sim.Proc) {
		f, _ := v.fs.Create("f")
		rng := p.Rand()
		for i := 0; i < 100; i++ {
			off := rng.Int63n(64)
			if err := v.fs.Write(p, f.Ino, off, 1+rng.Int63n(4)); err != nil {
				t.Fatal(err)
			}
			if i%10 == 0 {
				v.fs.Sync(p)
			}
		}
		v.fs.Sync(p)
		// Invariant: sum of segment Valid counts equals the number of
		// mapped file pages.
		valid := 0
		for i := 0; i < v.fs.Segments(); i++ {
			valid += v.fs.Segment(i).Valid
		}
		mapped := 0
		for idx := int64(0); idx < f.SizePg; idx++ {
			if _, ok := v.fs.Fibmap(f.Ino, idx); ok {
				mapped++
			}
		}
		if valid != mapped {
			t.Errorf("segment valid sum %d != mapped pages %d", valid, mapped)
		}
	})
}
