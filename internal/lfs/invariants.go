package lfs

import "fmt"

// CheckInvariants is a debug walk over the filesystem's accounting
// structures. It cross-checks the inode block maps against the segment
// slot tables, valid counts, state machine, valid-count buckets, and the
// free/partial bitmaps, so a leaked slot, stale bucket entry, or
// double-claimed block cannot hide. Tests and crash recovery call it; it
// is O(blocks) and allocates, so it must never run on a simulation hot
// path.
func (fs *FS) CheckInvariants() error {
	nb := fs.disk.Blocks()

	// Pass 1: every mapped file page must own exactly one valid slot that
	// points back at it.
	type ownerRec struct {
		ino Ino
		idx int64
	}
	owner := make(map[int64]ownerRec, 64)
	for ino, i := range fs.inodes {
		if int64(len(i.blocks)) != i.SizePg || int64(len(i.vers)) != i.SizePg {
			return fmt.Errorf("lfs: inode %d maps %d blocks / %d vers for size %d", ino, len(i.blocks), len(i.vers), i.SizePg)
		}
		for idx, b := range i.blocks {
			if b == NoBlock {
				continue
			}
			if b < 0 || b >= nb {
				return fmt.Errorf("lfs: inode %d page %d outside device: block %d", ino, idx, b)
			}
			if prev, ok := owner[b]; ok {
				return fmt.Errorf("lfs: block %d claimed by inode %d page %d and inode %d page %d",
					b, prev.ino, prev.idx, ino, idx)
			}
			owner[b] = ownerRec{ino: ino, idx: int64(idx)}
			seg := fs.segs[fs.SegOf(b)]
			s := seg.slots[int(b)%fs.cfg.SegBlocks]
			if !s.valid || s.ino != ino || s.idx != int64(idx) {
				return fmt.Errorf("lfs: block %d slot %+v does not match owner inode %d page %d", b, s, ino, idx)
			}
		}
	}

	// Pass 2: per-segment — valid counts match the slot tables, no valid
	// slot is orphaned, and each state agrees with the bitmaps.
	pinned := make(map[int]bool, len(fs.pinnedSegs))
	for _, si := range fs.pinnedSegs {
		if pinned[si] {
			return fmt.Errorf("lfs: segment %d pinned twice", si)
		}
		pinned[si] = true
	}
	for si, seg := range fs.segs {
		valid := 0
		for k, s := range seg.slots {
			if !s.valid {
				continue
			}
			valid++
			b := int64(si*fs.cfg.SegBlocks + k)
			o, ok := owner[b]
			if !ok || o.ino != s.ino || o.idx != s.idx {
				return fmt.Errorf("lfs: segment %d slot %d valid for inode %d page %d, but no file maps it", si, k, s.ino, s.idx)
			}
		}
		if valid != seg.Valid {
			return fmt.Errorf("lfs: segment %d Valid=%d but %d valid slots", si, seg.Valid, valid)
		}
		free := fs.freeSegs.Test(uint64(si))
		switch seg.State {
		case SegFree:
			if seg.Valid != 0 || !free {
				return fmt.Errorf("lfs: free segment %d has Valid=%d, freeSegs=%v", si, seg.Valid, free)
			}
			if fs.partial.Test(uint64(si)) {
				return fmt.Errorf("lfs: free segment %d marked partial", si)
			}
		case SegOpen:
			if si != fs.curSeg {
				return fmt.Errorf("lfs: segment %d open but curSeg=%d", si, fs.curSeg)
			}
			if free || fs.partial.Test(uint64(si)) {
				return fmt.Errorf("lfs: open segment %d in free/partial sets", si)
			}
		case SegFull:
			if free {
				return fmt.Errorf("lfs: full segment %d in free set", si)
			}
			if pinned[si] {
				if seg.Valid != 0 && !fs.segPinned(si) {
					return fmt.Errorf("lfs: segment %d pinned but revived without checkpoint references", si)
				}
				if fs.partial.Test(uint64(si)) && seg.Valid == 0 {
					return fmt.Errorf("lfs: pinned segment %d marked partial", si)
				}
				continue
			}
			if seg.Valid == 0 {
				return fmt.Errorf("lfs: full segment %d has no valid blocks and is not pinned", si)
			}
			wantPartial := seg.Valid < fs.cfg.SegBlocks
			if fs.partial.Test(uint64(si)) != wantPartial {
				return fmt.Errorf("lfs: segment %d (Valid=%d) partial bit %v", si, seg.Valid, !wantPartial)
			}
		}
	}
	if fs.curSeg >= 0 && fs.segs[fs.curSeg].State != SegOpen {
		return fmt.Errorf("lfs: curSeg=%d but its state is %d", fs.curSeg, fs.segs[fs.curSeg].State)
	}

	// Pass 3: bucket lists — every linked segment is SegFull, unpinned,
	// with matching Valid; every such segment is linked exactly once.
	linked := make(map[int]bool, len(fs.segs))
	for v, head := range fs.validBkt {
		for si := head; si >= 0; si = fs.segs[si].bktNext {
			seg := fs.segs[si]
			if linked[int(si)] {
				return fmt.Errorf("lfs: segment %d linked into buckets twice", si)
			}
			linked[int(si)] = true
			if seg.State != SegFull || seg.Valid != v || pinned[int(si)] {
				return fmt.Errorf("lfs: bucket %d holds segment %d (state %d, Valid=%d, pinned %v)",
					v, si, seg.State, seg.Valid, pinned[int(si)])
			}
		}
	}
	for si, seg := range fs.segs {
		if seg.State == SegFull && !pinned[si] && !linked[si] {
			return fmt.Errorf("lfs: full segment %d (Valid=%d) missing from buckets", si, seg.Valid)
		}
	}

	// Pass 4 (durability): checkpoint-referenced blocks must exist on the
	// device, and pinned segments must actually hold at least one.
	if fs.durable != nil {
		bad := error(nil)
		fs.cpRef.IterateSet(func(b uint64) bool {
			if int64(b) >= nb {
				bad = fmt.Errorf("lfs: checkpoint references block %d outside device", b)
				return false
			}
			return true
		})
		if bad != nil {
			return bad
		}
		for _, si := range fs.pinnedSegs {
			if fs.segs[si].Valid == 0 && !fs.segPinned(si) {
				return fmt.Errorf("lfs: segment %d pinned without checkpoint references", si)
			}
		}
	}
	return nil
}
