package lfs

import (
	"testing"

	"duet/internal/sim"
)

// lfsCycle overwrites a fixed page range and syncs: writeback appends to
// the log, invalidates the previous copies (moving segments between
// valid-count buckets), and frees fully-invalidated segments — the
// steady-state churn of every GC experiment. It must not allocate once
// the staging pools and segment bitmaps are warm.
func lfsCycle(p *sim.Proc, v *env, ino Ino) {
	const pages = 4 * testSegBlocks
	if err := v.fs.Write(p, ino, 0, pages); err != nil {
		panic(err)
	}
	v.fs.Sync(p)
}

// BenchmarkWritebackChurn measures the log-append + invalidate cycle.
func BenchmarkWritebackChurn(b *testing.B) {
	v := newEnv(1024)
	f, err := v.fs.Create("f")
	if err != nil {
		b.Fatal(err)
	}
	v.e.Go("bench", func(p *sim.Proc) {
		defer v.e.Stop()
		for i := 0; i < 64; i++ {
			lfsCycle(p, v, f.Ino)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			lfsCycle(p, v, f.Ino)
		}
	})
	if err := v.e.Run(); err != nil {
		b.Fatal(err)
	}
}

// gcEnv builds a filesystem whose segments have a spread of valid counts:
// a large file fills most segments, then every third page of the front
// half is overwritten so those segments land in different valid-count
// buckets.
func gcEnv(t testing.TB) (*env, *GC) {
	v := newEnv(1024)
	f, err := v.fs.Create("f")
	if err != nil {
		t.Fatal(err)
	}
	v.in2(t, func(p *sim.Proc) {
		const pages = 24 * testSegBlocks
		if err := v.fs.Write(p, f.Ino, 0, pages); err != nil {
			t.Error(err)
			return
		}
		v.fs.Sync(p)
		for idx := int64(0); idx < 12*testSegBlocks; idx += 3 {
			if err := v.fs.Write(p, f.Ino, idx, 1); err != nil {
				t.Error(err)
				return
			}
		}
		v.fs.Sync(p)
	})
	g := &GC{fs: v.fs, cfg: GCConfig{
		WindowSegs:   4096,
		MaxValidFrac: 0.95,
		Cost:         BaselineCost,
		Owner:        "gc",
	}}
	return v, g
}

// in2 is env.in for benchmarks as well as tests.
func (v *env) in2(t testing.TB, fn func(p *sim.Proc)) {
	v.e.Go("setup", func(p *sim.Proc) {
		defer v.e.Stop()
		fn(p)
	})
	if err := v.e.Run(); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkGCVictimPick measures victim selection over the valid-count
// buckets. The pass must touch only cleanable candidates and never
// allocate.
func BenchmarkGCVictimPick(b *testing.B) {
	_, g := gcEnv(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.cursor = 0
		if _, ok := g.pickVictim(); !ok {
			b.Fatal("no victim found")
		}
	}
}

// TestLfsHotPathAllocFree is the CI regression gate: zero allocations
// per writeback cycle and per victim pick once pools are warm (see
// .github/workflows/ci.yml).
func TestLfsHotPathAllocFree(t *testing.T) {
	t.Run("writeback-churn", func(t *testing.T) {
		v := newEnv(1024)
		f, err := v.fs.Create("f")
		if err != nil {
			t.Fatal(err)
		}
		var avg float64
		v.e.Go("alloc-test", func(p *sim.Proc) {
			defer v.e.Stop()
			for i := 0; i < 64; i++ {
				lfsCycle(p, v, f.Ino)
			}
			avg = testing.AllocsPerRun(100, func() {
				lfsCycle(p, v, f.Ino)
			})
		})
		if err := v.e.Run(); err != nil {
			t.Fatal(err)
		}
		if avg != 0 {
			t.Errorf("writeback churn allocates %.1f allocs/op, want 0", avg)
		}
	})
	t.Run("victim-pick", func(t *testing.T) {
		_, g := gcEnv(t)
		avg := testing.AllocsPerRun(200, func() {
			g.cursor = 0
			if _, ok := g.pickVictim(); !ok {
				t.Fatal("no victim found")
			}
		})
		if avg != 0 {
			t.Errorf("victim pick allocates %.1f allocs/op, want 0", avg)
		}
	})
}
