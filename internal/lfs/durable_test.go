package lfs

import (
	"testing"

	"duet/internal/sim"
	"duet/internal/storage"
)

// sync flushes one file's dirty pages into the log.
func sync(t *testing.T, v *env, p *sim.Proc, ino Ino) {
	t.Helper()
	if err := v.cache.SyncFile(p, 2, uint64(ino)); err != nil {
		t.Fatal(err)
	}
}

func lfsTestConfig() Config {
	return Config{SegBlocks: testSegBlocks, ReservedSegs: 2}
}

func TestCommitCrashRemountRoundTrip(t *testing.T) {
	v := newEnv(256)
	a, err := v.fs.Create("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := v.fs.Create("b")
	if err != nil {
		t.Fatal(err)
	}
	v.in(t, func(p *sim.Proc) {
		if err := v.fs.Write(p, a.Ino, 0, 8); err != nil {
			t.Fatal(err)
		}
		sync(t, v, p, a.Ino)
		v.fs.EnableDurability()
		if err := v.fs.Commit(p); err != nil {
			t.Fatal(err)
		}
		// Post-commit data on file b: flushed but never checkpointed as a
		// file — b was created before the checkpoint but is empty there.
		if err := v.fs.Write(p, b.Ino, 0, 4); err != nil {
			t.Fatal(err)
		}
	})

	img := v.fs.CrashImage()
	v2 := newEnv(256)
	fs2, err := Remount(v2.e, 2, v2.disk, v2.cache, lfsTestConfig(), img)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	a2, err := fs2.Lookup("a")
	if err != nil {
		t.Fatalf("committed file lost: %v", err)
	}
	if a2.SizePg != 8 {
		t.Errorf("recovered size %d, want 8", a2.SizePg)
	}
	// b's write never hit the medium (dirty in cache at the crash): its
	// checkpointed view is the empty file.
	b2, err := fs2.Lookup("b")
	if err != nil {
		t.Fatalf("committed (empty) file lost: %v", err)
	}
	if b2.SizePg != 0 {
		t.Errorf("uncommitted cached write resurrected: size %d", b2.SizePg)
	}
	v2.e.Go("check", func(p *sim.Proc) {
		defer v2.e.Stop()
		if err := fs2.ReadFile(p, a2.Ino, storage.ClassNormal, "check"); err != nil {
			t.Errorf("read after recovery: %v", err)
		}
	})
	if err := v2.e.Run(); err != nil {
		t.Fatal(err)
	}
	if err := fs2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Writes that reached the device after the last checkpoint are rolled
// forward from the durable summary log on remount (F2FS-style recovery):
// the checkpointed file picks up its newer on-medium blocks.
func TestRollForwardRecoversPostCheckpointWrites(t *testing.T) {
	v := newEnv(256)
	a, err := v.fs.Create("a")
	if err != nil {
		t.Fatal(err)
	}
	v.in(t, func(p *sim.Proc) {
		if err := v.fs.Write(p, a.Ino, 0, 8); err != nil {
			t.Fatal(err)
		}
		sync(t, v, p, a.Ino)
		v.fs.EnableDurability()
		if err := v.fs.Commit(p); err != nil {
			t.Fatal(err)
		}
		// Overwrite half the file; the flush reaches the device (and the
		// summary log), but no commit follows.
		if err := v.fs.Write(p, a.Ino, 0, 4); err != nil {
			t.Fatal(err)
		}
		sync(t, v, p, a.Ino)
	})
	wantBlocks := make([]int64, 4)
	for i := int64(0); i < 4; i++ {
		blk, ok := v.fs.Fibmap(a.Ino, i)
		if !ok {
			t.Fatalf("fibmap %d", i)
		}
		wantBlocks[i] = blk
	}

	img := v.fs.CrashImage()
	v2 := newEnv(256)
	fs2, err := Remount(v2.e, 2, v2.disk, v2.cache, lfsTestConfig(), img)
	if err != nil {
		t.Fatal(err)
	}
	if fs2.Stats().RolledForward != 4 {
		t.Errorf("RolledForward = %d, want 4", fs2.Stats().RolledForward)
	}
	a2, err := fs2.Lookup("a")
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 4; i++ {
		blk, ok := fs2.Fibmap(a2.Ino, i)
		if !ok || blk != wantBlocks[i] {
			t.Errorf("page %d at block %d (ok=%v), want rolled-forward %d", i, blk, ok, wantBlocks[i])
		}
	}
	if err := fs2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	v2.e.Go("check", func(p *sim.Proc) {
		defer v2.e.Stop()
		if err := fs2.ReadFile(p, a2.Ino, storage.ClassNormal, "check"); err != nil {
			t.Errorf("read after roll-forward: %v", err)
		}
	})
	if err := v2.e.Run(); err != nil {
		t.Fatal(err)
	}
}

// Segments holding only checkpoint-referenced (but invalidated) blocks
// are pinned instead of freed — the crash image must stay intact until
// the next commit releases it.
func TestCheckpointPinsSegments(t *testing.T) {
	v := newEnv(256)
	a, err := v.fs.Create("a")
	if err != nil {
		t.Fatal(err)
	}
	v.in(t, func(p *sim.Proc) {
		// Fill a whole segment, checkpoint it, then invalidate every block
		// by overwriting. Without pinning the segment would be freed and
		// its blocks reused, destroying the checkpointed image.
		if err := v.fs.Write(p, a.Ino, 0, int64(testSegBlocks)); err != nil {
			t.Fatal(err)
		}
		sync(t, v, p, a.Ino)
		v.fs.EnableDurability()
		if err := v.fs.Commit(p); err != nil {
			t.Fatal(err)
		}
		if err := v.fs.Write(p, a.Ino, 0, int64(testSegBlocks)); err != nil {
			t.Fatal(err)
		}
		sync(t, v, p, a.Ino)
		if v.fs.Stats().SegsPinned == 0 {
			t.Fatal("no segment pinned despite fully-invalidated checkpointed segment")
		}
		if err := v.fs.CheckInvariants(); err != nil {
			t.Fatal(err)
		}

		// The next commit releases the pin: the old image is no longer
		// referenced, the segment returns to the free pool.
		freeBefore := v.fs.FreeSegments()
		if err := v.fs.Commit(p); err != nil {
			t.Fatal(err)
		}
		if v.fs.FreeSegments() <= freeBefore {
			t.Error("commit did not release the pinned segment")
		}
	})
	if err := v.fs.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
