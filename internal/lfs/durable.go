package lfs

import (
	"fmt"
	"sort"

	"duet/internal/bitmap"
	"duet/internal/pagecache"
	"duet/internal/sim"
	"duet/internal/storage"
)

// Crash-consistent durability for the log-structured filesystem,
// modeled on F2fs: a checkpoint records the inode table as of the last
// durability barrier, and per-block segment summaries — written with
// the data itself — allow roll-forward of writes that hit the medium
// after the checkpoint. Two rules make the checkpoint recoverable at
// any crash instant:
//
//  1. Segments holding checkpoint-referenced blocks are never reused:
//     they stay pinned (unfreed) even at zero valid count, and in-place
//     allocation skips their slots, until a later checkpoint stops
//     referencing them.
//  2. A durable summary record is appended only when the device write
//     completes, so roll-forward sees exactly what a real segment
//     summary block would contain.
//
// Durability is opt-in (EnableDurability); without it nothing here runs
// and behavior is bit-for-bit the historical one.

// durRec is one durable segment-summary record: at sequence seq, block
// held version ver of file page (ino, idx).
type durRec struct {
	seq   uint64
	ino   Ino
	idx   int64
	block int64
	ver   uint64
}

// cpFile is one file's committed metadata.
type cpFile struct {
	ino    Ino
	name   string
	sizePg int64
	blocks []int64
	vers   []uint64
}

// lfsCheckpoint is the durable metadata image.
type lfsCheckpoint struct {
	seq     uint64 // summary records <= seq are folded into the table
	nextIno Ino
	files   map[Ino]*cpFile
}

func snapshotFile(i *Inode) *cpFile {
	f := &cpFile{ino: i.Ino, name: i.Name, sizePg: i.SizePg}
	f.blocks = append(f.blocks, i.blocks...)
	f.vers = append(f.vers, i.vers...)
	return f
}

// EnableDurability arms checkpointing, summary logging, and segment
// pinning, taking the initial checkpoint from the current state.
func (fs *FS) EnableDurability() {
	if fs.durable != nil {
		return
	}
	fs.cpRef = bitmap.New()
	fs.durable = fs.takeCheckpoint()
	fs.rebuildCpRef()
}

// DurabilityEnabled reports whether the filesystem checkpoints.
func (fs *FS) DurabilityEnabled() bool { return fs.durable != nil }

// logDurable records a completed device write in the summary log.
func (fs *FS) logDurable(ino Ino, idx, block int64, ver uint64) {
	if fs.durable == nil {
		return
	}
	fs.durSeq++
	fs.durLog = append(fs.durLog, durRec{seq: fs.durSeq, ino: ino, idx: idx, block: block, ver: ver})
}

// fileDirty reports whether any page of the file is dirty in cache.
func (fs *FS) fileDirty(ino Ino) bool {
	dirty := false
	fs.cache.IterateFile(fs.id, uint64(ino), func(pg *pagecache.Page) bool {
		if pg.Dirty {
			dirty = true
			return false
		}
		return true
	})
	return dirty
}

// takeCheckpoint snapshots every fully-clean file; files with dirty (or
// quarantined) pages keep their previous committed entry — their old
// blocks are pinned, so that entry is still reproducible from the
// medium.
func (fs *FS) takeCheckpoint() *lfsCheckpoint {
	cp := &lfsCheckpoint{seq: fs.durSeq, nextIno: fs.nextIno, files: make(map[Ino]*cpFile, len(fs.inodes))}
	for ino, i := range fs.inodes {
		if fs.fileDirty(ino) {
			if fs.durable != nil {
				if old, ok := fs.durable.files[ino]; ok {
					cp.files[ino] = old
				}
			}
			continue
		}
		cp.files[ino] = snapshotFile(i)
	}
	return cp
}

// rebuildCpRef recomputes the set of checkpoint-referenced blocks.
func (fs *FS) rebuildCpRef() {
	fs.cpRef = bitmap.New()
	for _, f := range fs.durable.files {
		for _, b := range f.blocks {
			if b != NoBlock {
				fs.cpRef.Set(uint64(b))
			}
		}
	}
}

// segPinned reports whether a segment holds checkpoint-referenced
// blocks and therefore must not be reused yet.
func (fs *FS) segPinned(si int) bool {
	base := uint64(si * fs.cfg.SegBlocks)
	for k := uint64(0); k < uint64(fs.cfg.SegBlocks); k++ {
		if fs.cpRef.Test(base + k) {
			return true
		}
	}
	return false
}

// pinSegment parks a zero-valid segment instead of freeing it. It stays
// SegFull, out of the buckets and the partial set, until a commit drops
// the last checkpoint reference into it.
func (fs *FS) pinSegment(si int) {
	fs.partial.Unset(uint64(si))
	fs.pinnedSegs = append(fs.pinnedSegs, si)
	fs.stats.SegsPinned++
}

// drainPinned frees pinned segments the new checkpoint no longer
// references (they must still be zero-valid; a segment revived by
// in-place writes just unpins).
func (fs *FS) drainPinned() {
	kept := fs.pinnedSegs[:0]
	for _, si := range fs.pinnedSegs {
		seg := fs.segs[si]
		if seg.Valid > 0 {
			continue // revived: normal lifecycle owns it again
		}
		if fs.segPinned(si) {
			kept = append(kept, si)
			continue
		}
		fs.freeSegment(si)
	}
	fs.pinnedSegs = kept
}

// Commit is the durability barrier: flush, checkpoint, re-pin, release.
// It refuses to acknowledge anything while pages of this filesystem are
// quarantined (their data exists only in memory).
func (fs *FS) Commit(p *sim.Proc) error {
	if fs.durable == nil {
		return fmt.Errorf("lfs: Commit without EnableDurability")
	}
	inos := make([]Ino, 0, len(fs.inodes))
	for ino := range fs.inodes {
		inos = append(inos, ino)
	}
	sort.Slice(inos, func(a, b int) bool { return inos[a] < inos[b] })
	var firstErr error
	for _, ino := range inos {
		if err := fs.cache.SyncFile(p, fs.id, uint64(ino)); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if n := fs.quarantinedPages(); n > 0 {
		if firstErr == nil {
			firstErr = fmt.Errorf("lfs: %d pages quarantined", n)
		}
		return fmt.Errorf("lfs: commit aborted: %w", firstErr)
	}
	cp := fs.takeCheckpoint()
	if err := fs.disk.Write(p, 0, 1, storage.ClassNormal, "commit"); err != nil {
		return fmt.Errorf("lfs: checkpoint write: %w", err)
	}
	fs.durable = cp
	fs.durLog = fs.durLog[:0] // summaries <= cp.seq are folded into the table
	fs.rebuildCpRef()
	fs.drainPinned()
	fs.stats.Commits++
	return nil
}

// quarantinedPages counts quarantined pages belonging to this fs.
func (fs *FS) quarantinedPages() int {
	fs.quarScratch = fs.cache.Quarantined(fs.quarScratch[:0])
	n := 0
	for _, k := range fs.quarScratch {
		if k.FS == fs.id {
			n++
		}
	}
	return n
}

// CrashImage is what survives a power cut: the checkpoint, the summary
// log (both live in the device's metadata areas), and the medium.
type CrashImage struct {
	cp        *lfsCheckpoint
	log       []durRec
	diskVer   []uint64
	badBlocks []int64
}

// CrashImage captures the durable state. The engine must be stopped:
// the image aliases arrays of the dead instance.
func (fs *FS) CrashImage() *CrashImage {
	if fs.durable == nil {
		panic("lfs: CrashImage without EnableDurability")
	}
	return &CrashImage{
		cp:        fs.durable,
		log:       fs.durLog,
		diskVer:   fs.diskVer,
		badBlocks: fs.disk.BadBlocks(),
	}
}

// Remount rebuilds a filesystem from a crash image on a fresh engine,
// disk, and cache: restore the checkpointed inode table, roll forward
// the summary log (latest record per page wins, provided its block was
// not subsequently reused and the medium still holds that version),
// then rebuild every segment's slots, counts, buckets, and bitmaps from
// the recovered block maps. The caller should then run CheckInvariants
// (machine.Recover does).
func Remount(e sim.Host, id pagecache.FSID, disk *storage.Disk, cache *pagecache.Cache, cfg Config, img *CrashImage) (*FS, error) {
	nb := disk.Blocks()
	if int64(len(img.diskVer)) != nb {
		return nil, fmt.Errorf("lfs: remount on %d-block device, image has %d", nb, len(img.diskVer))
	}
	fs := New(e, id, disk, cache, cfg)
	cp := img.cp
	fs.nextIno = cp.nextIno

	inos := make([]Ino, 0, len(cp.files))
	for ino := range cp.files {
		inos = append(inos, ino)
	}
	sort.Slice(inos, func(a, b int) bool { return inos[a] < inos[b] })
	for _, ino := range inos {
		f := cp.files[ino]
		i := &Inode{Ino: f.ino, Name: f.name, SizePg: f.sizePg}
		i.blocks = append(i.blocks, f.blocks...)
		i.vers = append(i.vers, f.vers...)
		fs.inodes[ino] = i
		fs.byName[f.name] = ino
	}

	// Roll-forward: fold in post-checkpoint summary records. A record
	// applies only if it is the last write to its block (the block was
	// not reused by a later append), the file and page existed at the
	// checkpoint (later creations and extensions were never
	// acknowledged), it is newer than the checkpointed version, and the
	// medium still holds exactly that version.
	lastByBlock := make(map[int64]durRec, len(img.log))
	for _, r := range img.log {
		lastByBlock[r.block] = r
	}
	latest := make(map[Ino]map[int64]durRec)
	for _, r := range img.log {
		m := latest[r.ino]
		if m == nil {
			m = make(map[int64]durRec)
			latest[r.ino] = m
		}
		if prev, ok := m[r.idx]; !ok || r.seq > prev.seq {
			m[r.idx] = r
		}
	}
	rolled := 0
	for _, ino := range inos {
		i := fs.inodes[ino]
		m := latest[ino]
		if m == nil {
			continue
		}
		idxs := make([]int64, 0, len(m))
		for idx := range m {
			idxs = append(idxs, idx)
		}
		sort.Slice(idxs, func(a, b int) bool { return idxs[a] < idxs[b] })
		for _, idx := range idxs {
			r := m[idx]
			if idx >= int64(len(i.blocks)) {
				continue // post-checkpoint extension: unacknowledged
			}
			if lb, ok := lastByBlock[r.block]; !ok || lb != r {
				continue // block reused by a later write
			}
			if r.ver <= i.vers[idx] || img.diskVer[r.block] != r.ver {
				continue
			}
			i.blocks[idx] = r.block
			i.vers[idx] = r.ver
			rolled++
		}
	}
	fs.stats.RolledForward = int64(rolled)

	// Rebuild segment state from the recovered block maps: every mapped
	// block becomes a valid slot; segments with valid data are SegFull
	// (the log head is re-opened lazily by the next writeback), the rest
	// are free.
	for _, ino := range inos {
		i := fs.inodes[ino]
		for idx, b := range i.blocks {
			if b == NoBlock {
				continue
			}
			si := fs.SegOf(b)
			seg := fs.segs[si]
			slot := &seg.slots[int(b)%fs.cfg.SegBlocks]
			if slot.valid {
				return nil, fmt.Errorf("lfs: remount found block %d claimed twice", b)
			}
			*slot = slotInfo{ino: ino, idx: int64(idx), valid: true}
			seg.Valid++
		}
	}
	for si, seg := range fs.segs {
		if seg.Valid == 0 {
			continue
		}
		fs.freeSegs.Unset(uint64(si))
		seg.State = SegFull
		seg.Mtime = e.Now()
		fs.bucketAdd(si)
	}

	copy(fs.diskVer, img.diskVer)
	for _, b := range img.badBlocks {
		disk.InjectBadBlock(b)
	}
	fs.cpRef = bitmap.New()
	fs.durable = fs.takeCheckpoint()
	fs.rebuildCpRef()
	return fs, nil
}
