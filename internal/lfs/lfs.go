// Package lfs simulates a log-structured filesystem in the style of F2fs
// (Lee et al., FAST 2015), the substrate for the paper's garbage
// collection experiments (§5.4, Table 6).
//
// The device is divided into fixed-size segments. Dirty pages are
// appended to the open log segment at writeback time; the previous copy
// of each page is invalidated in place. Segments whose valid-block count
// reaches zero are freed. A background garbage collector (gc.go) cleans
// partially-valid segments by reading their remaining valid blocks —
// through the page cache, which is where Duet's opportunity lies — and
// re-dirtying them so writeback migrates them to the log head.
//
// The namespace is flat (files by name): the GC experiments exercise
// block lifetimes, not directory trees.
package lfs

import (
	"errors"
	"fmt"
	"sort"

	"duet/internal/pagecache"
	"duet/internal/sim"
	"duet/internal/storage"
)

// Ino is an inode number. 0 is never used.
type Ino uint64

// NoBlock marks a page with no on-device location (dirty-only or hole).
const NoBlock int64 = -1

// Sentinel errors.
var (
	ErrNotFound = errors.New("lfs: no such file")
	ErrExists   = errors.New("lfs: file exists")
	ErrNoSpace  = errors.New("lfs: no free segments")
)

// SegState is the lifecycle state of a segment.
type SegState uint8

const (
	// SegFree segments contain no valid data and can become log heads.
	SegFree SegState = iota
	// SegOpen is the segment currently receiving log appends.
	SegOpen
	// SegFull segments have been written end to end; they become free
	// again when every block in them is invalidated.
	SegFull
)

type slotInfo struct {
	ino   Ino
	idx   int64
	valid bool
}

// Segment is the unit of log allocation and cleaning.
type Segment struct {
	State SegState
	Valid int      // number of valid blocks
	Mtime sim.Time // time of last append (the "age" input to victim cost)
	slots []slotInfo
}

// Inode is a (flat-namespace) file.
type Inode struct {
	Ino    Ino
	Name   string
	SizePg int64
	blocks []int64  // page -> device block, NoBlock if not on device
	vers   []uint64 // page -> content version
}

// Stats counts filesystem and cleaner activity.
type Stats struct {
	WritesPages    int64
	ReadsPages     int64
	MissPages      int64
	WritebackPages int64
	Invalidations  int64
	SegsFreed      int64
	SegsCleaned    int64
	GCBlocksMoved  int64
	GCBlocksRead   int64 // valid blocks the cleaner had to read from disk
	GCBlocksCached int64 // valid blocks the cleaner found in cache
	InPlaceWrites  int64 // writes forced into scattered invalid slots
}

// Config holds filesystem geometry.
type Config struct {
	// SegBlocks is the segment size in blocks (F2fs default 2 MiB = 512).
	SegBlocks int
	// ReservedSegs are kept free for cleaning headroom (overprovisioning).
	ReservedSegs int
}

// DefaultConfig returns F2fs-like geometry.
func DefaultConfig() Config { return Config{SegBlocks: 512, ReservedSegs: 8} }

// FS is the simulated log-structured filesystem.
type FS struct {
	eng   *sim.Engine
	id    pagecache.FSID
	disk  *storage.Disk
	cache *pagecache.Cache
	cfg   Config

	inodes  map[Ino]*Inode
	byName  map[string]Ino
	nextIno Ino

	segs     []*Segment
	freeSegs []int // free segment indices, ascending
	curSeg   int   // open log segment (-1 if none)
	curOff   int   // next slot in the open segment

	diskVer []uint64 // content version on the medium, per block
	stats   Stats
}

// New creates a log-structured filesystem spanning the device.
func New(e *sim.Engine, id pagecache.FSID, disk *storage.Disk, cache *pagecache.Cache, cfg Config) *FS {
	if cfg.SegBlocks <= 0 {
		cfg = DefaultConfig()
	}
	n := int(disk.Blocks()) / cfg.SegBlocks
	fs := &FS{
		eng:     e,
		id:      id,
		disk:    disk,
		cache:   cache,
		cfg:     cfg,
		inodes:  make(map[Ino]*Inode),
		byName:  make(map[string]Ino),
		nextIno: 1,
		segs:    make([]*Segment, n),
		curSeg:  -1,
		diskVer: make([]uint64, disk.Blocks()),
	}
	for i := range fs.segs {
		fs.segs[i] = &Segment{State: SegFree, slots: make([]slotInfo, cfg.SegBlocks)}
		fs.freeSegs = append(fs.freeSegs, i)
	}
	cache.RegisterFS(id, fs)
	return fs
}

// ID returns the page-cache filesystem identifier.
func (fs *FS) ID() pagecache.FSID { return fs.id }

// Disk returns the underlying device.
func (fs *FS) Disk() *storage.Disk { return fs.disk }

// Cache returns the page cache.
func (fs *FS) Cache() *pagecache.Cache { return fs.cache }

// Stats returns live statistics.
func (fs *FS) Stats() *Stats { return &fs.stats }

// Config returns the geometry.
func (fs *FS) Config() Config { return fs.cfg }

// Segments returns the number of segments.
func (fs *FS) Segments() int { return len(fs.segs) }

// Segment returns segment metadata (read-only view).
func (fs *FS) Segment(i int) *Segment { return fs.segs[i] }

// FreeSegments returns the count of free segments.
func (fs *FS) FreeSegments() int { return len(fs.freeSegs) }

// SegOf maps a device block to its segment index.
func (fs *FS) SegOf(block int64) int { return int(block) / fs.cfg.SegBlocks }

// Fibmap translates a file page to its device block.
func (fs *FS) Fibmap(ino Ino, idx int64) (int64, bool) {
	i, ok := fs.inodes[ino]
	if !ok || idx < 0 || idx >= int64(len(i.blocks)) || i.blocks[idx] == NoBlock {
		return 0, false
	}
	return i.blocks[idx], true
}

// SlotOwner returns the file page stored in a block, if valid.
func (fs *FS) SlotOwner(block int64) (Ino, int64, bool) {
	seg := fs.segs[fs.SegOf(block)]
	s := seg.slots[int(block)%fs.cfg.SegBlocks]
	if !s.valid {
		return 0, 0, false
	}
	return s.ino, s.idx, true
}

// --- namespace ------------------------------------------------------------

// Create makes an empty file.
func (fs *FS) Create(name string) (*Inode, error) {
	if _, ok := fs.byName[name]; ok {
		return nil, fmt.Errorf("%w: %s", ErrExists, name)
	}
	i := &Inode{Ino: fs.nextIno, Name: name}
	fs.nextIno++
	fs.inodes[i.Ino] = i
	fs.byName[name] = i.Ino
	return i, nil
}

// Lookup finds a file by name.
func (fs *FS) Lookup(name string) (*Inode, error) {
	ino, ok := fs.byName[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return fs.inodes[ino], nil
}

// Inode returns a file by number.
func (fs *FS) Inode(ino Ino) (*Inode, bool) {
	i, ok := fs.inodes[ino]
	return i, ok
}

// Delete removes a file, invalidating its blocks and dropping its pages.
func (fs *FS) Delete(name string) error {
	i, err := fs.Lookup(name)
	if err != nil {
		return err
	}
	for _, b := range i.blocks {
		if b != NoBlock {
			fs.invalidate(b)
		}
	}
	fs.cache.RemoveFile(fs.id, uint64(i.Ino))
	delete(fs.byName, name)
	delete(fs.inodes, i.Ino)
	return nil
}

// Files returns all file names, sorted.
func (fs *FS) Files() []string {
	names := make([]string, 0, len(fs.byName))
	for n := range fs.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// --- data path -------------------------------------------------------------

func (fs *FS) pageKey(ino Ino, idx int64) pagecache.PageKey {
	return pagecache.PageKey{FS: fs.id, Ino: uint64(ino), Index: uint64(idx)}
}

// Write dirties n pages at page offset off, extending the file if needed.
// Log placement happens at writeback, as in any LFS.
func (fs *FS) Write(p *sim.Proc, ino Ino, off, n int64) error {
	i, ok := fs.inodes[ino]
	if !ok {
		return fmt.Errorf("%w: inode %d", ErrNotFound, ino)
	}
	if n <= 0 {
		return nil
	}
	if off+n > i.SizePg {
		i.SizePg = off + n
	}
	for int64(len(i.blocks)) < i.SizePg {
		i.blocks = append(i.blocks, NoBlock)
		i.vers = append(i.vers, 0)
	}
	for idx := off; idx < off+n; idx++ {
		i.vers[idx]++
		key := fs.pageKey(ino, idx)
		pg, cached := fs.cache.Lookup(key)
		if !cached {
			pg = fs.cache.Insert(p, key, i.vers[idx])
		}
		fs.cache.MarkDirty(pg, i.vers[idx])
	}
	fs.stats.WritesPages += n
	return nil
}

// Append adds n pages at the end of the file.
func (fs *FS) Append(p *sim.Proc, ino Ino, n int64) error {
	i, ok := fs.inodes[ino]
	if !ok {
		return fmt.Errorf("%w: inode %d", ErrNotFound, ino)
	}
	return fs.Write(p, ino, i.SizePg, n)
}

// Read brings n pages at offset off into the cache.
func (fs *FS) Read(p *sim.Proc, ino Ino, off, n int64, class storage.Class, owner string) error {
	i, ok := fs.inodes[ino]
	if !ok {
		return fmt.Errorf("%w: inode %d", ErrNotFound, ino)
	}
	if off+n > i.SizePg {
		n = i.SizePg - off
	}
	if n <= 0 {
		return nil
	}
	fs.stats.ReadsPages += n
	type miss struct{ idx, block int64 }
	var misses []miss
	for idx := off; idx < off+n; idx++ {
		key := fs.pageKey(ino, idx)
		if fs.cache.Contains(key) {
			fs.cache.Lookup(key)
			continue
		}
		b := i.blocks[idx]
		if b == NoBlock {
			fs.cache.Insert(p, key, 0)
			continue
		}
		misses = append(misses, miss{idx, b})
	}
	fs.stats.MissPages += int64(len(misses))
	sort.Slice(misses, func(a, b int) bool { return misses[a].block < misses[b].block })
	for s := 0; s < len(misses); {
		e := s + 1
		for e < len(misses) && misses[e].block == misses[e-1].block+1 {
			e++
		}
		if err := fs.disk.Read(p, misses[s].block, e-s, class, owner); err != nil {
			return fmt.Errorf("lfs read inode %d: %w", ino, err)
		}
		for k := s; k < e; k++ {
			fs.cache.Insert(p, fs.pageKey(ino, misses[k].idx), fs.diskVer[misses[k].block])
		}
		s = e
	}
	return nil
}

// ReadFile brings the whole file into the cache.
func (fs *FS) ReadFile(p *sim.Proc, ino Ino, class storage.Class, owner string) error {
	i, ok := fs.inodes[ino]
	if !ok {
		return fmt.Errorf("%w: inode %d", ErrNotFound, ino)
	}
	return fs.Read(p, ino, 0, i.SizePg, class, owner)
}

// invalidate marks a block's slot invalid, freeing the segment when it
// empties.
func (fs *FS) invalidate(b int64) {
	si := fs.SegOf(b)
	seg := fs.segs[si]
	slot := &seg.slots[int(b)%fs.cfg.SegBlocks]
	if !slot.valid {
		return
	}
	slot.valid = false
	seg.Valid--
	fs.stats.Invalidations++
	if seg.Valid == 0 && seg.State == SegFull {
		fs.freeSegment(si)
	}
}

func (fs *FS) freeSegment(si int) {
	seg := fs.segs[si]
	seg.State = SegFree
	for k := range seg.slots {
		seg.slots[k] = slotInfo{}
	}
	pos := sort.SearchInts(fs.freeSegs, si)
	fs.freeSegs = append(fs.freeSegs, 0)
	copy(fs.freeSegs[pos+1:], fs.freeSegs[pos:])
	fs.freeSegs[pos] = si
	fs.stats.SegsFreed++
}

// openSegment makes a free segment the log head. It returns false when no
// free segment exists (the caller falls back to in-place writes).
func (fs *FS) openSegment() bool {
	if len(fs.freeSegs) == 0 {
		return false
	}
	si := fs.freeSegs[0]
	fs.freeSegs = fs.freeSegs[1:]
	fs.segs[si].State = SegOpen
	fs.curSeg = si
	fs.curOff = 0
	return true
}

// logAlloc assigns the next log slot, returning the block number, or
// NoBlock when the log is full (no free segments).
func (fs *FS) logAlloc() int64 {
	if fs.curSeg < 0 || fs.curOff >= fs.cfg.SegBlocks {
		if fs.curSeg >= 0 {
			seg := fs.segs[fs.curSeg]
			seg.State = SegFull
			if seg.Valid == 0 {
				fs.freeSegment(fs.curSeg)
			}
			fs.curSeg = -1
		}
		if !fs.openSegment() {
			return NoBlock
		}
	}
	b := int64(fs.curSeg*fs.cfg.SegBlocks + fs.curOff)
	fs.curOff++
	return b
}

// inPlaceAlloc finds an invalid slot in some non-free segment — the
// degraded mode F2fs enters when clean segments run out, which the paper
// measured as a 57% latency increase (§6.2).
func (fs *FS) inPlaceAlloc() int64 {
	for si, seg := range fs.segs {
		if seg.State != SegFull {
			continue
		}
		for k, s := range seg.slots {
			if !s.valid {
				fs.stats.InPlaceWrites++
				return int64(si*fs.cfg.SegBlocks + k)
			}
		}
	}
	return NoBlock
}

// WritebackPages implements pagecache.Backend: dirty pages are appended
// to the log (or written in place under segment pressure), and their old
// locations are invalidated.
func (fs *FS) WritebackPages(p *sim.Proc, inoN uint64, indices []uint64) error {
	ino := Ino(inoN)
	i, ok := fs.inodes[ino]
	if !ok {
		return nil // deleted while dirty
	}
	type placed struct {
		idx   int64
		block int64
		ver   uint64
	}
	var out []placed
	for _, idxU := range indices {
		idx := int64(idxU)
		if idx >= int64(len(i.blocks)) {
			continue
		}
		b := fs.logAlloc()
		if b == NoBlock {
			b = fs.inPlaceAlloc()
		}
		if b == NoBlock {
			return fmt.Errorf("%w: writeback of inode %d", ErrNoSpace, ino)
		}
		old := i.blocks[idx]
		seg := fs.segs[fs.SegOf(b)]
		seg.slots[int(b)%fs.cfg.SegBlocks] = slotInfo{ino: ino, idx: idx, valid: true}
		seg.Valid++
		seg.Mtime = fs.eng.Now()
		i.blocks[idx] = b
		if old != NoBlock {
			fs.invalidate(old)
		}
		out = append(out, placed{idx: idx, block: b, ver: i.vers[idx]})
	}
	// Device writes: coalesce physically contiguous placements (log
	// appends are naturally sequential; in-place writes are scattered).
	sort.Slice(out, func(a, b int) bool { return out[a].block < out[b].block })
	for s := 0; s < len(out); {
		e := s + 1
		for e < len(out) && out[e].block == out[e-1].block+1 {
			e++
		}
		if err := fs.disk.Write(p, out[s].block, e-s, storage.ClassNormal, "writeback"); err != nil {
			return err
		}
		s = e
	}
	for _, pl := range out {
		if i.blocks[pl.idx] == pl.block {
			fs.diskVer[pl.block] = pl.ver
		}
	}
	fs.stats.WritebackPages += int64(len(out))
	return nil
}

// Sync writes back all dirty pages.
func (fs *FS) Sync(p *sim.Proc) { fs.cache.Sync(p) }

// Utilization returns the fraction of non-free segments' blocks that are
// valid (a space-efficiency view used by tests).
func (fs *FS) Utilization() float64 {
	var used, valid int
	for _, s := range fs.segs {
		if s.State != SegFree {
			used += fs.cfg.SegBlocks
			valid += s.Valid
		}
	}
	if used == 0 {
		return 0
	}
	return float64(valid) / float64(used)
}
