// Package lfs simulates a log-structured filesystem in the style of F2fs
// (Lee et al., FAST 2015), the substrate for the paper's garbage
// collection experiments (§5.4, Table 6).
//
// The device is divided into fixed-size segments. Dirty pages are
// appended to the open log segment at writeback time; the previous copy
// of each page is invalidated in place. Segments whose valid-block count
// reaches zero are freed. A background garbage collector (gc.go) cleans
// partially-valid segments by reading their remaining valid blocks —
// through the page cache, which is where Duet's opportunity lies — and
// re-dirtying them so writeback migrates them to the log head.
//
// The namespace is flat (files by name): the GC experiments exercise
// block lifetimes, not directory trees.
package lfs

import (
	"cmp"
	"errors"
	"fmt"
	"slices"
	"sort"

	"duet/internal/bitmap"
	"duet/internal/pagecache"
	"duet/internal/sim"
	"duet/internal/storage"
)

// Ino is an inode number. 0 is never used.
type Ino uint64

// NoBlock marks a page with no on-device location (dirty-only or hole).
const NoBlock int64 = -1

// Sentinel errors.
var (
	ErrNotFound = errors.New("lfs: no such file")
	ErrExists   = errors.New("lfs: file exists")
	ErrNoSpace  = errors.New("lfs: no free segments")
)

// SegState is the lifecycle state of a segment.
type SegState uint8

const (
	// SegFree segments contain no valid data and can become log heads.
	SegFree SegState = iota
	// SegOpen is the segment currently receiving log appends.
	SegOpen
	// SegFull segments have been written end to end; they become free
	// again when every block in them is invalidated.
	SegFull
)

type slotInfo struct {
	ino   Ino
	idx   int64
	valid bool
}

// Segment is the unit of log allocation and cleaning.
type Segment struct {
	State SegState
	Valid int      // number of valid blocks
	Mtime sim.Time // time of last append (the "age" input to victim cost)
	slots []slotInfo

	// bktNext/bktPrev link SegFull segments into the valid-count bucket
	// for their current Valid value (-1 terminates). The buckets let the
	// cleaner enumerate cleanable candidates without scanning every
	// segment.
	bktNext, bktPrev int32
}

// Inode is a (flat-namespace) file.
type Inode struct {
	Ino    Ino
	Name   string
	SizePg int64
	blocks []int64  // page -> device block, NoBlock if not on device
	vers   []uint64 // page -> content version
}

// Stats counts filesystem and cleaner activity.
type Stats struct {
	WritesPages     int64
	ReadsPages      int64
	MissPages       int64
	WritebackPages  int64
	WritebackErrors int64 // writeback device errors (partial or total)
	Invalidations   int64
	SegsFreed       int64
	SegsCleaned     int64
	GCBlocksMoved   int64
	GCBlocksRead    int64 // valid blocks the cleaner had to read from disk
	GCBlocksCached  int64 // valid blocks the cleaner found in cache
	InPlaceWrites   int64 // writes forced into scattered invalid slots
	GCSyncErrors    int64 // cleaner urgent-sync failures (data left dirty)
	GCReadErrors    int64 // cleaner device-read failures (pass abandoned)
	Commits         int64 // durability barriers completed
	SegsPinned      int64 // zero-valid segments parked for checkpoint safety
	RolledForward   int64 // pages recovered from the summary log at remount
}

// Config holds filesystem geometry.
type Config struct {
	// SegBlocks is the segment size in blocks (F2fs default 2 MiB = 512).
	SegBlocks int
	// ReservedSegs are kept free for cleaning headroom (overprovisioning).
	ReservedSegs int
}

// DefaultConfig returns F2fs-like geometry.
func DefaultConfig() Config { return Config{SegBlocks: 512, ReservedSegs: 8} }

// FS is the simulated log-structured filesystem.
type FS struct {
	eng   sim.Host
	id    pagecache.FSID
	disk  *storage.Disk
	cache *pagecache.Cache
	cfg   Config

	inodes  map[Ino]*Inode
	byName  map[string]Ino
	nextIno Ino

	segs     []*Segment
	freeSegs *bitmap.Sparse // free segment indices
	curSeg   int            // open log segment (-1 if none)
	curOff   int            // next slot in the open segment

	// validBkt[v] heads an intrusive list of SegFull segments with Valid
	// == v, maintained incrementally on every block invalidation and
	// placement so GC victim selection only touches actual candidates.
	validBkt []int32
	// partial marks SegFull segments with at least one invalid slot —
	// the candidates for degraded in-place writes.
	partial *bitmap.Sparse

	diskVer []uint64 // content version on the medium, per block
	stats   Stats
	obs     *lfsObs // nil unless observability is on (see obs.go)

	// Pooled staging buffers for the read and writeback paths (holders
	// block on device I/O, so several can be live in virtual time).
	missBufs   *missBuf
	placedBufs *placedBuf

	// Durability state (nil/empty unless EnableDurability; see durable.go).
	durable     *lfsCheckpoint
	durLog      []durRec
	durSeq      uint64
	cpRef       *bitmap.Sparse // blocks the last checkpoint references
	pinnedSegs  []int          // zero-valid segments kept unfree (cpRef inside)
	quarScratch []pagecache.PageKey
}

// New creates a log-structured filesystem spanning the device.
func New(e sim.Host, id pagecache.FSID, disk *storage.Disk, cache *pagecache.Cache, cfg Config) *FS {
	if cfg.SegBlocks <= 0 {
		cfg = DefaultConfig()
	}
	n := int(disk.Blocks()) / cfg.SegBlocks
	fs := &FS{
		eng:     e,
		id:      id,
		disk:    disk,
		cache:   cache,
		cfg:     cfg,
		inodes:  make(map[Ino]*Inode),
		byName:  make(map[string]Ino),
		nextIno: 1,
		segs:    make([]*Segment, n),
		curSeg:  -1,
		diskVer: make([]uint64, disk.Blocks()),
	}
	fs.freeSegs = bitmap.New()
	fs.partial = bitmap.New()
	fs.validBkt = make([]int32, cfg.SegBlocks+1)
	for v := range fs.validBkt {
		fs.validBkt[v] = -1
	}
	for i := range fs.segs {
		fs.segs[i] = &Segment{State: SegFree, slots: make([]slotInfo, cfg.SegBlocks), bktNext: -1, bktPrev: -1}
		fs.freeSegs.Set(uint64(i))
	}
	cache.RegisterFS(id, fs)
	return fs
}

// bucketAdd links a SegFull segment into the valid-count bucket for its
// current Valid value and updates the in-place candidate set.
func (fs *FS) bucketAdd(si int) {
	seg := fs.segs[si]
	v := seg.Valid
	seg.bktPrev = -1
	seg.bktNext = fs.validBkt[v]
	if seg.bktNext >= 0 {
		fs.segs[seg.bktNext].bktPrev = int32(si)
	}
	fs.validBkt[v] = int32(si)
	if v < fs.cfg.SegBlocks {
		fs.partial.Set(uint64(si))
	} else {
		fs.partial.Unset(uint64(si))
	}
}

// bucketRemove unlinks a SegFull segment from the bucket for value v (its
// Valid count at link time).
func (fs *FS) bucketRemove(si, v int) {
	seg := fs.segs[si]
	if seg.bktPrev >= 0 {
		fs.segs[seg.bktPrev].bktNext = seg.bktNext
	} else {
		fs.validBkt[v] = seg.bktNext
	}
	if seg.bktNext >= 0 {
		fs.segs[seg.bktNext].bktPrev = seg.bktPrev
	}
	seg.bktNext, seg.bktPrev = -1, -1
}

// miss and placed are the staging entries of the read and writeback
// paths. Their backing slices live in small free lists on the FS: a
// holder blocks on device I/O mid-use, so a single scratch slice would
// be clobbered by the next process entering the same path in virtual
// time. The lists grow to the maximum concurrency ever seen and are
// reused forever after.
type miss struct{ idx, block int64 }

type missBuf struct {
	m    []miss
	next *missBuf
}

func (fs *FS) getMissBuf() *missBuf {
	if b := fs.missBufs; b != nil {
		fs.missBufs = b.next
		b.next = nil
		b.m = b.m[:0]
		return b
	}
	return &missBuf{}
}

func (fs *FS) putMissBuf(b *missBuf) {
	b.next = fs.missBufs
	fs.missBufs = b
}

// placed is a writeback staging record. pos is the record's position in
// the caller's index slice (so the persisted prefix survives the
// by-block sort); ok marks records whose device write completed.
type placed struct {
	idx   int64
	block int64
	ver   uint64
	pos   int
	ok    bool
}

type placedBuf struct {
	p    []placed
	next *placedBuf
}

func (fs *FS) getPlacedBuf() *placedBuf {
	if b := fs.placedBufs; b != nil {
		fs.placedBufs = b.next
		b.next = nil
		b.p = b.p[:0]
		return b
	}
	return &placedBuf{}
}

func (fs *FS) putPlacedBuf(b *placedBuf) {
	b.next = fs.placedBufs
	fs.placedBufs = b
}

// ID returns the page-cache filesystem identifier.
func (fs *FS) ID() pagecache.FSID { return fs.id }

// Disk returns the underlying device.
func (fs *FS) Disk() *storage.Disk { return fs.disk }

// Cache returns the page cache.
func (fs *FS) Cache() *pagecache.Cache { return fs.cache }

// Stats returns live statistics.
func (fs *FS) Stats() *Stats { return &fs.stats }

// Config returns the geometry.
func (fs *FS) Config() Config { return fs.cfg }

// Segments returns the number of segments.
func (fs *FS) Segments() int { return len(fs.segs) }

// Segment returns segment metadata (read-only view).
func (fs *FS) Segment(i int) *Segment { return fs.segs[i] }

// FreeSegments returns the count of free segments.
func (fs *FS) FreeSegments() int { return int(fs.freeSegs.Count()) }

// SegOf maps a device block to its segment index.
func (fs *FS) SegOf(block int64) int { return int(block) / fs.cfg.SegBlocks }

// Fibmap translates a file page to its device block.
func (fs *FS) Fibmap(ino Ino, idx int64) (int64, bool) {
	i, ok := fs.inodes[ino]
	if !ok || idx < 0 || idx >= int64(len(i.blocks)) || i.blocks[idx] == NoBlock {
		return 0, false
	}
	return i.blocks[idx], true
}

// SlotOwner returns the file page stored in a block, if valid.
func (fs *FS) SlotOwner(block int64) (Ino, int64, bool) {
	seg := fs.segs[fs.SegOf(block)]
	s := seg.slots[int(block)%fs.cfg.SegBlocks]
	if !s.valid {
		return 0, 0, false
	}
	return s.ino, s.idx, true
}

// --- namespace ------------------------------------------------------------

// Create makes an empty file.
func (fs *FS) Create(name string) (*Inode, error) {
	if _, ok := fs.byName[name]; ok {
		return nil, fmt.Errorf("%w: %s", ErrExists, name)
	}
	i := &Inode{Ino: fs.nextIno, Name: name}
	fs.nextIno++
	fs.inodes[i.Ino] = i
	fs.byName[name] = i.Ino
	return i, nil
}

// Lookup finds a file by name.
func (fs *FS) Lookup(name string) (*Inode, error) {
	ino, ok := fs.byName[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return fs.inodes[ino], nil
}

// Inode returns a file by number.
func (fs *FS) Inode(ino Ino) (*Inode, bool) {
	i, ok := fs.inodes[ino]
	return i, ok
}

// Delete removes a file, invalidating its blocks and dropping its pages.
func (fs *FS) Delete(name string) error {
	i, err := fs.Lookup(name)
	if err != nil {
		return err
	}
	for _, b := range i.blocks {
		if b != NoBlock {
			fs.invalidate(b)
		}
	}
	fs.cache.RemoveFile(fs.id, uint64(i.Ino))
	delete(fs.byName, name)
	delete(fs.inodes, i.Ino)
	return nil
}

// Files returns all file names, sorted.
func (fs *FS) Files() []string {
	names := make([]string, 0, len(fs.byName))
	for n := range fs.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// --- data path -------------------------------------------------------------

func (fs *FS) pageKey(ino Ino, idx int64) pagecache.PageKey {
	return pagecache.PageKey{FS: fs.id, Ino: uint64(ino), Index: uint64(idx)}
}

// Write dirties n pages at page offset off, extending the file if needed.
// Log placement happens at writeback, as in any LFS.
func (fs *FS) Write(p *sim.Proc, ino Ino, off, n int64) error {
	i, ok := fs.inodes[ino]
	if !ok {
		return fmt.Errorf("%w: inode %d", ErrNotFound, ino)
	}
	if n <= 0 {
		return nil
	}
	if off+n > i.SizePg {
		i.SizePg = off + n
	}
	for int64(len(i.blocks)) < i.SizePg {
		i.blocks = append(i.blocks, NoBlock)
		i.vers = append(i.vers, 0)
	}
	for idx := off; idx < off+n; idx++ {
		i.vers[idx]++
		key := fs.pageKey(ino, idx)
		pg, cached := fs.cache.Lookup(key)
		if !cached {
			pg = fs.cache.Insert(p, key, i.vers[idx])
		}
		fs.cache.MarkDirty(pg, i.vers[idx])
	}
	fs.stats.WritesPages += n
	return nil
}

// Append adds n pages at the end of the file.
func (fs *FS) Append(p *sim.Proc, ino Ino, n int64) error {
	i, ok := fs.inodes[ino]
	if !ok {
		return fmt.Errorf("%w: inode %d", ErrNotFound, ino)
	}
	return fs.Write(p, ino, i.SizePg, n)
}

// Read brings n pages at offset off into the cache.
func (fs *FS) Read(p *sim.Proc, ino Ino, off, n int64, class storage.Class, owner string) error {
	i, ok := fs.inodes[ino]
	if !ok {
		return fmt.Errorf("%w: inode %d", ErrNotFound, ino)
	}
	if off+n > i.SizePg {
		n = i.SizePg - off
	}
	if n <= 0 {
		return nil
	}
	fs.stats.ReadsPages += n
	mb := fs.getMissBuf()
	defer fs.putMissBuf(mb)
	misses := mb.m
	for idx := off; idx < off+n; idx++ {
		key := fs.pageKey(ino, idx)
		if fs.cache.Contains(key) {
			fs.cache.Lookup(key)
			continue
		}
		b := i.blocks[idx]
		if b == NoBlock {
			fs.cache.Insert(p, key, 0)
			continue
		}
		misses = append(misses, miss{idx, b})
	}
	mb.m = misses
	fs.stats.MissPages += int64(len(misses))
	slices.SortFunc(misses, func(a, b miss) int { return cmp.Compare(a.block, b.block) })
	for s := 0; s < len(misses); {
		e := s + 1
		for e < len(misses) && misses[e].block == misses[e-1].block+1 {
			e++
		}
		if err := fs.disk.Read(p, misses[s].block, e-s, class, owner); err != nil {
			return fmt.Errorf("lfs read inode %d: %w", ino, err)
		}
		for k := s; k < e; k++ {
			fs.cache.Insert(p, fs.pageKey(ino, misses[k].idx), fs.diskVer[misses[k].block])
		}
		s = e
	}
	return nil
}

// ReadFile brings the whole file into the cache.
func (fs *FS) ReadFile(p *sim.Proc, ino Ino, class storage.Class, owner string) error {
	i, ok := fs.inodes[ino]
	if !ok {
		return fmt.Errorf("%w: inode %d", ErrNotFound, ino)
	}
	return fs.Read(p, ino, 0, i.SizePg, class, owner)
}

// invalidate marks a block's slot invalid, freeing the segment when it
// empties. Full segments are moved between valid-count buckets so the
// cleaner's candidate view stays current without any scanning.
func (fs *FS) invalidate(b int64) {
	si := fs.SegOf(b)
	seg := fs.segs[si]
	slot := &seg.slots[int(b)%fs.cfg.SegBlocks]
	if !slot.valid {
		return
	}
	slot.valid = false
	full := seg.State == SegFull
	if full {
		fs.bucketRemove(si, seg.Valid)
	}
	seg.Valid--
	fs.stats.Invalidations++
	if full {
		if seg.Valid == 0 {
			fs.freeSegment(si)
		} else {
			fs.bucketAdd(si)
		}
	}
}

func (fs *FS) freeSegment(si int) {
	if fs.durable != nil && fs.segPinned(si) {
		// The last checkpoint still references blocks in this segment:
		// park it instead of recycling (durable.go drains at commit).
		fs.pinSegment(si)
		return
	}
	seg := fs.segs[si]
	seg.State = SegFree
	for k := range seg.slots {
		seg.slots[k] = slotInfo{}
	}
	fs.freeSegs.Set(uint64(si))
	fs.partial.Unset(uint64(si))
	fs.stats.SegsFreed++
}

// openSegment makes the lowest-numbered free segment the log head. It
// returns false when no free segment exists (the caller falls back to
// in-place writes).
func (fs *FS) openSegment() bool {
	si, ok := fs.freeSegs.NextSet(0)
	if !ok {
		return false
	}
	fs.freeSegs.Unset(si)
	fs.segs[si].State = SegOpen
	fs.curSeg = int(si)
	fs.curOff = 0
	return true
}

// logAlloc assigns the next log slot, returning the block number, or
// NoBlock when the log is full (no free segments).
func (fs *FS) logAlloc() int64 {
	if fs.curSeg < 0 || fs.curOff >= fs.cfg.SegBlocks {
		if fs.curSeg >= 0 {
			seg := fs.segs[fs.curSeg]
			seg.State = SegFull
			if seg.Valid == 0 {
				fs.freeSegment(fs.curSeg)
			} else {
				fs.bucketAdd(fs.curSeg)
			}
			fs.curSeg = -1
		}
		if !fs.openSegment() {
			return NoBlock
		}
	}
	b := int64(fs.curSeg*fs.cfg.SegBlocks + fs.curOff)
	fs.curOff++
	return b
}

// inPlaceAlloc finds an invalid slot in some non-free segment — the
// degraded mode F2fs enters when clean segments run out, which the paper
// measured as a 57% latency increase (§6.2). The partial bitmap points
// straight at the lowest-numbered full segment with a hole, replacing the
// full-device scan.
func (fs *FS) inPlaceAlloc() int64 {
	for si64, ok := fs.partial.NextSet(0); ok; si64, ok = fs.partial.NextSet(si64 + 1) {
		si := int(si64)
		base := si * fs.cfg.SegBlocks
		for k, s := range fs.segs[si].slots {
			if s.valid {
				continue
			}
			b := int64(base + k)
			if fs.durable != nil && fs.cpRef.Test(uint64(b)) {
				// Invalid, but the last checkpoint still references it:
				// overwriting would destroy committed data.
				continue
			}
			fs.stats.InPlaceWrites++
			return b
		}
		if fs.durable == nil {
			panic("lfs: partial segment with no invalid slot")
		}
	}
	return NoBlock
}

// WritebackPages implements pagecache.Backend: dirty pages are appended
// to the log (or written in place under segment pressure), and their old
// locations are invalidated. It returns how many leading entries of
// indices are durably on the medium (all on success; on a device error
// the prefix whose coalesced writes completed, extended into a torn
// run's persisted blocks). Running out of segments persists nothing —
// placement happens before any device write is issued.
func (fs *FS) WritebackPages(p *sim.Proc, inoN uint64, indices []uint64) (int, error) {
	ino := Ino(inoN)
	i, ok := fs.inodes[ino]
	if !ok {
		return len(indices), nil // deleted while dirty
	}
	pb := fs.getPlacedBuf()
	defer fs.putPlacedBuf(pb)
	out := pb.p
	for pos, idxU := range indices {
		idx := int64(idxU)
		if idx >= int64(len(i.blocks)) {
			continue
		}
		b := fs.logAlloc()
		if b == NoBlock {
			b = fs.inPlaceAlloc()
		}
		if b == NoBlock {
			// No placement, no device writes issued yet: the historical
			// contract (nothing persisted, everything stays dirty).
			pb.p = out
			return 0, fmt.Errorf("%w: writeback of inode %d", ErrNoSpace, ino)
		}
		old := i.blocks[idx]
		si := fs.SegOf(b)
		seg := fs.segs[si]
		full := seg.State == SegFull // in-place placement into a full segment
		if full {
			fs.bucketRemove(si, seg.Valid)
		}
		seg.slots[int(b)%fs.cfg.SegBlocks] = slotInfo{ino: ino, idx: idx, valid: true}
		seg.Valid++
		seg.Mtime = fs.eng.Now()
		if full {
			fs.bucketAdd(si)
		}
		i.blocks[idx] = b
		if old != NoBlock {
			fs.invalidate(old)
		}
		out = append(out, placed{idx: idx, block: b, ver: i.vers[idx], pos: pos})
	}
	pb.p = out
	// Device writes: coalesce physically contiguous placements (log
	// appends are naturally sequential; in-place writes are scattered).
	slices.SortFunc(out, func(a, b placed) int { return cmp.Compare(a.block, b.block) })
	var wbErr error
	for s := 0; s < len(out); {
		e := s + 1
		for e < len(out) && out[e].block == out[e-1].block+1 {
			e++
		}
		err := fs.disk.Write(p, out[s].block, e-s, storage.ClassNormal, "writeback")
		done := e - s
		if err != nil {
			done = 0
			if k, torn := storage.TornBlocks(err); torn {
				done = k
			}
		}
		for k := s; k < s+done; k++ {
			out[k].ok = true
		}
		if err != nil {
			wbErr = err
			break
		}
		s = e
	}
	applied := 0
	for _, pl := range out {
		if !pl.ok {
			continue
		}
		applied++
		if i.blocks[pl.idx] == pl.block {
			fs.diskVer[pl.block] = pl.ver
			fs.logDurable(ino, pl.idx, pl.block, pl.ver)
		}
	}
	persisted := len(indices)
	for _, pl := range out {
		if !pl.ok && pl.pos < persisted {
			persisted = pl.pos
		}
	}
	fs.stats.WritebackPages += int64(applied)
	if wbErr != nil {
		fs.stats.WritebackErrors++
	}
	return persisted, wbErr
}

// Sync writes back all dirty pages.
func (fs *FS) Sync(p *sim.Proc) { fs.cache.Sync(p) }

// Utilization returns the fraction of non-free segments' blocks that are
// valid (a space-efficiency view used by tests).
func (fs *FS) Utilization() float64 {
	var used, valid int
	for _, s := range fs.segs {
		if s.State != SegFree {
			used += fs.cfg.SegBlocks
			valid += s.Valid
		}
	}
	if used == 0 {
		return 0
	}
	return float64(valid) / float64(used)
}
