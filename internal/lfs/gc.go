package lfs

import (
	"slices"

	"duet/internal/sim"
	"duet/internal/storage"
)

// Garbage collection (§5.4). The cleaner runs in the background when the
// device is idle — or urgently when free segments run low — examines a
// window of up to GCConfig.WindowSegs candidate segments (F2fs cycles
// through 4096 at a time rather than all segments), and cleans the one
// with the minimum cost. Cleaning reads the victim's valid blocks —
// skipping any that are already in the page cache — and re-dirties them so
// writeback appends them to the log, freeing the victim.
//
// The cost function is pluggable: the baseline uses the valid-block count
// with an age tiebreak; the Duet-enabled collector (internal/tasks/gc)
// substitutes valid − cached/2, weighting reads and writes equally as the
// paper does.

// CostFunc scores a candidate segment; the minimum-cost segment is
// cleaned. Return a negative value to exclude a segment.
type CostFunc func(fs *FS, segIdx int) float64

// BaselineCost is the default victim cost: the number of valid blocks
// that must be moved, with older segments slightly preferred (the F2fs
// cost-benefit flavour: moving cold data is more profitable).
func BaselineCost(fs *FS, segIdx int) float64 {
	seg := fs.segs[segIdx]
	// Age discount: a segment untouched for longer gets a small bonus,
	// bounded so valid-count dominates.
	age := (fs.eng.Now() - seg.Mtime).Seconds()
	bonus := age / (age + 60)
	return float64(seg.Valid) - bonus
}

// GCConfig tunes the cleaner.
type GCConfig struct {
	// Interval between idle checks.
	Interval sim.Time
	// IdleAfter: the device must have seen no normal-class completion for
	// this long before background cleaning runs.
	IdleAfter sim.Time
	// UrgentFreeSegs triggers cleaning regardless of idleness when free
	// segments drop to or below this count.
	UrgentFreeSegs int
	// WindowSegs is how many candidate segments are examined per pass
	// (F2fs uses 4096).
	WindowSegs int
	// MaxValidFrac excludes nearly-full segments (cleaning them moves a
	// lot for little gain).
	MaxValidFrac float64
	// Cost scores candidates; nil means BaselineCost.
	Cost CostFunc
	// Owner labels the cleaner's device I/O.
	Owner string
}

// DefaultGCConfig returns cleaner parameters scaled for simulation runs.
func DefaultGCConfig() GCConfig {
	return GCConfig{
		Interval:       200 * sim.Millisecond,
		IdleAfter:      20 * sim.Millisecond,
		UrgentFreeSegs: 4,
		WindowSegs:     4096,
		MaxValidFrac:   0.95,
		Cost:           nil,
		Owner:          "gc",
	}
}

// CleanRecord describes one completed segment cleaning.
type CleanRecord struct {
	Start, Duration sim.Time
	SegIdx          int
	BlocksMoved     int
	BlocksRead      int
	BlocksCached    int
	Urgent          bool
}

// GC is the background cleaner.
type GC struct {
	fs     *FS
	cfg    GCConfig
	cursor int
	// Records holds one entry per cleaned segment (Table 6's cleaning
	// times are computed from these).
	Records []CleanRecord
	stopped bool

	// Scratch reused across cleans. One cleaner process per GC handle, so
	// plain fields are safe even though clean blocks on device I/O.
	all    []gcMove
	toRead []gcMove
	inos   []Ino
}

type gcMove struct {
	ino   Ino
	idx   int64
	block int64
}

// StartGC launches the cleaner process and returns its handle.
func (fs *FS) StartGC(cfg GCConfig) *GC {
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultGCConfig().Interval
	}
	if cfg.WindowSegs <= 0 {
		cfg.WindowSegs = 4096
	}
	if cfg.MaxValidFrac <= 0 {
		cfg.MaxValidFrac = 0.95
	}
	if cfg.Cost == nil {
		cfg.Cost = BaselineCost
	}
	if cfg.Owner == "" {
		cfg.Owner = "gc"
	}
	g := &GC{fs: fs, cfg: cfg}
	fs.eng.Go("lfs-gc", g.run)
	return g
}

// Stop halts the cleaner after its current pass.
func (g *GC) Stop() { g.stopped = true }

func (g *GC) run(p *sim.Proc) {
	for !g.stopped {
		p.Sleep(g.cfg.Interval)
		urgent := g.fs.FreeSegments() <= g.cfg.UrgentFreeSegs
		if !urgent && !g.deviceIdle(p) {
			continue
		}
		victim, ok := g.pickVictim()
		if !ok {
			continue
		}
		g.clean(p, victim, urgent)
	}
}

func (g *GC) deviceIdle(p *sim.Proc) bool {
	d := g.fs.disk
	return d.QueueDepth() == 0 && p.Now()-d.LastNormalCompletion() >= g.cfg.IdleAfter
}

// pickVictim returns the minimum-cost cleanable segment within the
// cursor's window. Candidates come from the valid-count buckets, so the
// pass walks only SegFull segments with 1..maxValid valid blocks instead
// of scoring every segment slot in the window. Ties on cost go to the
// segment closest to the cursor, which is exactly what the old linear
// scan's keep-first rule selected.
func (g *GC) pickVictim() (int, bool) {
	n := g.fs.Segments()
	window := g.cfg.WindowSegs
	if window > n {
		window = n
	}
	best, bestCost, bestPos := -1, 0.0, 0
	maxValid := int(float64(g.fs.cfg.SegBlocks) * g.cfg.MaxValidFrac)
	if maxValid > g.fs.cfg.SegBlocks {
		maxValid = g.fs.cfg.SegBlocks
	}
	for v := 1; v <= maxValid; v++ {
		for si := g.fs.validBkt[v]; si >= 0; si = g.fs.segs[si].bktNext {
			pos := int(si) - g.cursor
			if pos < 0 {
				pos += n
			}
			if pos >= window {
				continue
			}
			c := g.cfg.Cost(g.fs, int(si))
			if c < 0 {
				continue
			}
			if best == -1 || c < bestCost || (c == bestCost && pos < bestPos) {
				best, bestCost, bestPos = int(si), c, pos
			}
		}
	}
	g.cursor = (g.cursor + window) % n
	if best == -1 {
		return 0, false
	}
	return best, true
}

// clean migrates the victim's valid blocks: cached blocks cost nothing to
// read; the rest are fetched from the device (coalesced, idle priority).
// All moved blocks are re-dirtied so writeback appends them to the log.
func (g *GC) clean(p *sim.Proc, si int, urgent bool) {
	fs := g.fs
	seg := fs.segs[si]
	start := p.Now()
	rec := CleanRecord{Start: start, SegIdx: si, Urgent: urgent}

	all := g.all[:0]
	toRead := g.toRead[:0]
	base := int64(si * fs.cfg.SegBlocks)
	for k, s := range seg.slots {
		if !s.valid {
			continue
		}
		m := gcMove{ino: s.ino, idx: s.idx, block: base + int64(k)}
		all = append(all, m)
		if fs.cache.Contains(fs.pageKey(s.ino, s.idx)) {
			rec.BlocksCached++
		} else {
			toRead = append(toRead, m)
		}
	}
	g.all, g.toRead = all, toRead
	// Read the missing blocks. The slot walk emits them in ascending block
	// order already, so runs within the segment coalesce without a sort.
	for s := 0; s < len(toRead); {
		e := s + 1
		for e < len(toRead) && toRead[e].block == toRead[e-1].block+1 {
			e++
		}
		class := storage.ClassIdle
		if urgent {
			class = storage.ClassNormal
		}
		if err := fs.disk.Read(p, toRead[s].block, e-s, class, g.cfg.Owner); err != nil {
			// Abandon this pass: the segment stays a candidate and is
			// re-picked later. Counted, not swallowed.
			fs.stats.GCReadErrors++
			if st := fs.obs; st != nil {
				st.tr.Instant(st.tid, "lfs", "gc-abandoned", p.Now())
			}
			return
		}
		for k := s; k < e; k++ {
			m := toRead[k]
			i := fs.inodes[m.ino]
			if i == nil || m.idx >= int64(len(i.blocks)) || i.blocks[m.idx] != m.block {
				continue // invalidated while we were reading
			}
			fs.cache.Insert(p, fs.pageKey(m.ino, m.idx), fs.diskVer[m.block])
		}
		s = e
	}
	rec.BlocksRead = len(toRead)
	// Mark everything dirty; writeback migrates it to the log head and
	// invalidates this segment's copies.
	for _, m := range all {
		i := fs.inodes[m.ino]
		if i == nil || m.idx >= int64(len(i.blocks)) || i.blocks[m.idx] != m.block {
			continue
		}
		key := fs.pageKey(m.ino, m.idx)
		pg, cached := fs.cache.Lookup(key)
		if !cached {
			pg = fs.cache.Insert(p, key, i.vers[m.idx])
		}
		fs.cache.MarkDirty(pg, i.vers[m.idx])
		rec.BlocksMoved++
	}
	if urgent {
		// Under pressure, push the migrated data out immediately so the
		// segment frees up; background cleaning leaves it to the flusher.
		// Sort-and-skip-duplicates yields the same ascending unique inode
		// order the old map-plus-sort produced, without the map.
		inos := g.inos[:0]
		for _, m := range all {
			inos = append(inos, m.ino)
		}
		slices.Sort(inos)
		g.inos = inos
		prev := Ino(0) // inode 0 is never allocated
		for _, ino := range inos {
			if ino == prev {
				continue
			}
			prev = ino
			if err := fs.cache.SyncFile(p, fs.id, uint64(ino)); err != nil {
				// The pages stay dirty (or quarantined) in the cache; the
				// segment stays partially valid and a later pass retries.
				fs.stats.GCSyncErrors++
			}
		}
	}
	rec.Duration = p.Now() - start
	g.Records = append(g.Records, rec)
	if st := fs.obs; st != nil {
		st.tr.SliceArg(st.tid, "lfs", "gc-clean", start, p.Now(), "moved", int64(rec.BlocksMoved))
	}
	fs.stats.SegsCleaned++
	fs.stats.GCBlocksMoved += int64(rec.BlocksMoved)
	fs.stats.GCBlocksRead += int64(rec.BlocksRead)
	fs.stats.GCBlocksCached += int64(rec.BlocksCached)
}

// MeanCleanTime returns the average cleaning duration across records,
// or 0 when none exist.
func (g *GC) MeanCleanTime() sim.Time {
	if len(g.Records) == 0 {
		return 0
	}
	var sum sim.Time
	for _, r := range g.Records {
		sum += r.Duration
	}
	return sum / sim.Time(len(g.Records))
}

// CachedValidBlocks counts the victim-relevant cache residency of a
// segment: valid blocks whose pages are currently cached. The baseline
// cost ignores this; the Duet cost uses its event-maintained counters
// instead, but tests use this ground truth for comparison.
func (fs *FS) CachedValidBlocks(segIdx int) int {
	seg := fs.segs[segIdx]
	n := 0
	for _, s := range seg.slots {
		if !s.valid {
			continue
		}
		if fs.cache.Contains(fs.pageKey(s.ino, s.idx)) {
			n++
		}
	}
	return n
}
