package iosched

import (
	"testing"

	"duet/internal/sim"
	"duet/internal/storage"
)

func req(owner string, class storage.Class, block int64, count int) *storage.Request {
	return &storage.Request{Block: block, Count: count, Class: class, Owner: owner}
}

func TestCFQNormalFirst(t *testing.T) {
	s := NewCFQ()
	idle := req("m", storage.ClassIdle, 0, 1)
	norm := req("w", storage.ClassNormal, 10, 1)
	s.Add(idle)
	s.Add(norm)
	got, _ := s.Dispatch(sim.Hour, 0) // long idle: grace satisfied
	if got != norm {
		t.Fatal("normal request must dispatch before idle")
	}
	got, _ = s.Dispatch(sim.Hour, 0)
	if got != idle {
		t.Fatal("idle request should follow")
	}
	if s.Pending() != 0 {
		t.Errorf("Pending = %d", s.Pending())
	}
}

func TestCFQGraceWaitHint(t *testing.T) {
	s := NewCFQ()
	s.Add(req("m", storage.ClassIdle, 0, 1))
	// Last normal completion at t=100ms; now is inside the grace window.
	now := 100*sim.Millisecond + s.IdleGrace/2
	got, wait := s.Dispatch(now, 100*sim.Millisecond)
	if got != nil {
		t.Fatal("idle dispatched inside grace window")
	}
	if wait != s.IdleGrace/2 {
		t.Errorf("wait hint = %v, want %v", wait, s.IdleGrace/2)
	}
	got, _ = s.Dispatch(100*sim.Millisecond+s.IdleGrace, 100*sim.Millisecond)
	if got == nil {
		t.Fatal("idle should dispatch at grace boundary")
	}
}

func TestCFQIdleSlicesAlternateOwners(t *testing.T) {
	s := NewCFQ()
	s.IdleSliceTime = 10 * sim.Millisecond
	for i := 0; i < 4; i++ {
		s.Add(req("a", storage.ClassIdle, int64(i), 2))
		s.Add(req("b", storage.ClassIdle, int64(100+i), 2))
	}
	// Advance the clock 5ms per dispatch: each 10ms slice covers two
	// requests before rotating to the other owner.
	now := sim.Hour
	var order []string
	for {
		r, _ := s.Dispatch(now, 0)
		if r == nil {
			break
		}
		order = append(order, r.Owner)
		now += 5 * sim.Millisecond
	}
	want := []string{"a", "a", "b", "b", "a", "a", "b", "b"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v (per-owner time slices)", order, want)
		}
	}
}

func TestCFQSingleOwnerRunsThrough(t *testing.T) {
	s := NewCFQ()
	s.IdleSliceTime = sim.Microsecond // rotate constantly: still no starvation
	for i := 0; i < 5; i++ {
		s.Add(req("only", storage.ClassIdle, int64(i), 1))
	}
	for i := 0; i < 5; i++ {
		r, _ := s.Dispatch(sim.Hour, 0)
		if r == nil {
			t.Fatalf("dispatch %d returned nil", i)
		}
	}
}

func TestCFQOwnerDrainsThenOther(t *testing.T) {
	s := NewCFQ()
	s.IdleSliceTime = sim.Hour
	s.Add(req("a", storage.ClassIdle, 0, 1))
	s.Add(req("b", storage.ClassIdle, 1, 1))
	now := sim.Hour
	r1, _ := s.Dispatch(now, 0)
	if r1 == nil {
		t.Fatal("first dispatch empty")
	}
	// Owner a's queue is drained mid-slice: CFQ anticipates a's next
	// request for the grace period before handing the slice to b.
	r2, wait := s.Dispatch(now, 0)
	if r2 != nil || wait <= 0 {
		t.Fatalf("expected anticipation, got %v wait=%v", r2, wait)
	}
	now += wait
	r2, _ = s.Dispatch(now, 0)
	if r2 == nil || r2.Owner == r1.Owner {
		t.Fatalf("owners = %v %v", r1, r2)
	}
}

func TestCFQAnticipationServesReturningOwner(t *testing.T) {
	s := NewCFQ()
	now := sim.Hour
	s.Add(req("a", storage.ClassIdle, 0, 1))
	s.Add(req("b", storage.ClassIdle, 100, 1))
	if r, _ := s.Dispatch(now, 0); r == nil || r.Owner != "a" {
		t.Fatal("first dispatch should serve a")
	}
	// a resubmits during anticipation: it keeps the slice, b waits.
	if r, wait := s.Dispatch(now, 0); r != nil || wait <= 0 {
		t.Fatal("expected anticipation")
	}
	s.Add(req("a", storage.ClassIdle, 1, 1))
	if r, _ := s.Dispatch(now+sim.Microsecond, 0); r == nil || r.Owner != "a" {
		t.Fatal("returning owner should keep its slice")
	}
}

func TestDeadlineReadPreferenceWithStarvationBound(t *testing.T) {
	s := NewDeadline()
	w := req("x", storage.ClassNormal, 0, 1)
	w.Write = true
	s.Add(w)
	for i := 0; i < 5; i++ {
		s.Add(req("x", storage.ClassNormal, int64(i+1), 1))
	}
	// starve=2: two reads pass, then the write must go.
	var kinds []bool
	for i := 0; i < 4; i++ {
		r, _ := s.Dispatch(0, 0)
		kinds = append(kinds, r.Write)
	}
	want := []bool{false, false, true, false}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("kinds = %v, want %v", kinds, want)
		}
	}
}

func TestFIFOOrder(t *testing.T) {
	s := NewFIFO()
	a := req("a", storage.ClassIdle, 0, 1)
	b := req("b", storage.ClassNormal, 1, 1)
	s.Add(a)
	s.Add(b)
	if r, _ := s.Dispatch(0, 0); r != a {
		t.Error("FIFO violated")
	}
	if r, _ := s.Dispatch(0, 0); r != b {
		t.Error("FIFO violated")
	}
	if r, _ := s.Dispatch(0, 0); r != nil {
		t.Error("empty dispatch should return nil")
	}
}

func TestNames(t *testing.T) {
	if NewCFQ().Name() != "cfq" || NewDeadline().Name() != "deadline" || NewFIFO().Name() != "noop" {
		t.Error("scheduler names wrong")
	}
}
