// Package iosched implements the I/O schedulers used in the paper's
// evaluation: a CFQ-like scheduler with an Idle priority class (the
// default configuration, §6.1.3), a Deadline-like scheduler without
// prioritization (the §6.5 ablation), and a trivial FIFO.
//
// Schedulers are pure queue structure: Dispatch runs inline in the
// disk's executor, so the dispatch kick (Submit → wake → Dispatch) is
// goroutine-free under the default callback executor — a submit
// schedules the disk's callback on the run queue and the next slot
// dispatches, with no park/resume handshake anywhere on the path. A
// Dispatch that returns a positive wait (the idle-grace case) becomes
// the disk's single reusable grace timer rather than a spawned
// goroutine. See DESIGN.md, "Two execution modes".
package iosched

import (
	"duet/internal/sim"
	"duet/internal/storage"
)

// DefaultIdleGrace is how long the device must have been free of
// normal-class activity before idle-class I/O is dispatched. CFQ's idle
// class behaves similarly: idle I/O runs only once the disk has been idle
// for a while.
const DefaultIdleGrace = 2 * sim.Millisecond

// DefaultIdleSliceTime is how long one owner may keep dispatching
// idle-class requests before the slice rotates to another idle owner.
// Real CFQ gives each process a time slice; without slicing, concurrent
// maintenance streams would interleave request-by-request and thrash the
// head, and a budget in requests or blocks would hand seek-heavy streams
// a disproportionate share of device time.
const DefaultIdleSliceTime = 200 * sim.Millisecond

// queue is a FIFO of requests backed by one reusable slice. Popping
// advances a head index instead of re-slicing the base away, and the
// slice rewinds to the front whenever the queue drains — so steady
// traffic recycles a single backing array instead of forcing append to
// reallocate on every enqueue (the drained q = q[1:] slice has no spare
// capacity at its new base).
type queue struct {
	buf  []*storage.Request
	head int
}

func (q *queue) push(r *storage.Request) {
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	}
	q.buf = append(q.buf, r)
}

func (q *queue) pop() *storage.Request {
	r := q.buf[q.head]
	q.buf[q.head] = nil
	q.head++
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	}
	return r
}

// length is nil-safe so callers can probe map entries that may not exist.
func (q *queue) length() int {
	if q == nil {
		return 0
	}
	return len(q.buf) - q.head
}

// CFQ dispatches normal-class requests FIFO and idle-class requests only
// when no normal request is pending and the device has seen no
// normal-class completion for the grace period. Once idle I/O gets a
// turn, requests from one owner run as a slice before rotating to the
// next idle owner.
type CFQ struct {
	IdleGrace     sim.Time
	IdleSliceTime sim.Time

	normal     queue
	idleOwners []string // round-robin order of owners with queues
	idleQ      map[string]*queue
	idleLen    int
	curOwner   string
	sliceStart sim.Time
	// anticipateUntil implements CFQ's slice_idle for the idle class:
	// synchronous tasks have at most one request outstanding, so when the
	// slice owner's queue empties the scheduler waits briefly for its
	// next request instead of rotating (and seeking) on every request.
	anticipateUntil sim.Time
}

// NewCFQ returns a CFQ scheduler with the default parameters.
func NewCFQ() *CFQ {
	return &CFQ{
		IdleGrace:     DefaultIdleGrace,
		IdleSliceTime: DefaultIdleSliceTime,
		idleQ:         map[string]*queue{},
		sliceStart:    -1,
	}
}

// Name implements storage.Scheduler.
func (s *CFQ) Name() string { return "cfq" }

// Add implements storage.Scheduler.
func (s *CFQ) Add(r *storage.Request) {
	if r.Class != storage.ClassIdle {
		s.normal.push(r)
		return
	}
	q, ok := s.idleQ[r.Owner]
	if !ok {
		s.idleOwners = append(s.idleOwners, r.Owner)
		q = &queue{}
		s.idleQ[r.Owner] = q
	}
	q.push(r)
	s.idleLen++
}

// popIdle dispatches from the current owner's time slice. When the
// owner's queue is momentarily empty but the slice has time left, it
// anticipates (returns nil with a wait hint) instead of rotating; the
// slice rotates when it expires or anticipation times out.
func (s *CFQ) popIdle(now sim.Time) (*storage.Request, sim.Time) {
	expired := s.sliceStart < 0 || now-s.sliceStart >= s.IdleSliceTime
	if q := s.idleQ[s.curOwner]; q.length() > 0 && !expired {
		s.anticipateUntil = 0
		s.idleLen--
		return q.pop(), 0
	}
	if !expired && s.curOwner != "" {
		// Anticipate the owner's next synchronous request for up to the
		// grace period (CFQ's slice_idle).
		if s.anticipateUntil == 0 {
			s.anticipateUntil = now + s.IdleGrace
		}
		if now < s.anticipateUntil {
			return nil, s.anticipateUntil - now
		}
	}
	// Rotate to the next owner with pending requests.
	s.anticipateUntil = 0
	for i, o := range s.idleOwners {
		if s.idleQ[o].length() > 0 && (o != s.curOwner || len(s.idleOwners) == 1) {
			s.idleOwners = append(s.idleOwners[i+1:], s.idleOwners[:i+1]...)
			s.curOwner = o
			s.sliceStart = now
			break
		}
	}
	q := s.idleQ[s.curOwner]
	if q.length() == 0 {
		// Only the current owner has requests (or rotation found none).
		for _, o := range s.idleOwners {
			if s.idleQ[o].length() > 0 {
				s.curOwner, s.sliceStart = o, now
				q = s.idleQ[o]
				break
			}
		}
	}
	if q.length() == 0 {
		return nil, 0
	}
	s.idleLen--
	return q.pop(), 0
}

// Dispatch implements storage.Scheduler.
func (s *CFQ) Dispatch(now, lastNormal sim.Time) (*storage.Request, sim.Time) {
	if s.normal.length() > 0 {
		return s.normal.pop(), 0
	}
	if s.idleLen > 0 {
		eligible := lastNormal + s.IdleGrace
		if now >= eligible {
			return s.popIdle(now)
		}
		return nil, eligible - now
	}
	return nil, 0
}

// Pending implements storage.Scheduler.
func (s *CFQ) Pending() int { return s.normal.length() + s.idleLen }

// Deadline ignores priority classes entirely (the property §6.5 exercises:
// "the Linux Deadline I/O scheduler ... does not allow prioritizing
// different streams of I/O"). Reads are preferred over writes, as in the
// real deadline scheduler, but maintenance and workload I/O compete as
// equals.
type Deadline struct {
	reads  queue
	writes queue
	// starve bounds how many reads may pass a queued write, mirroring
	// deadline's writes_starved tunable.
	starve int
	passed int
}

// NewDeadline returns a Deadline scheduler with the kernel's default
// writes_starved of 2.
func NewDeadline() *Deadline { return &Deadline{starve: 2} }

// Name implements storage.Scheduler.
func (s *Deadline) Name() string { return "deadline" }

// Add implements storage.Scheduler.
func (s *Deadline) Add(r *storage.Request) {
	if r.Write {
		s.writes.push(r)
	} else {
		s.reads.push(r)
	}
}

// Dispatch implements storage.Scheduler.
func (s *Deadline) Dispatch(_, _ sim.Time) (*storage.Request, sim.Time) {
	if s.reads.length() > 0 && (s.writes.length() == 0 || s.passed < s.starve) {
		s.passed++
		return s.reads.pop(), 0
	}
	if s.writes.length() > 0 {
		s.passed = 0
		return s.writes.pop(), 0
	}
	if s.reads.length() > 0 {
		return s.reads.pop(), 0
	}
	return nil, 0
}

// Pending implements storage.Scheduler.
func (s *Deadline) Pending() int { return s.reads.length() + s.writes.length() }

// FIFO services requests strictly in arrival order (Linux noop).
type FIFO struct {
	q queue
}

// NewFIFO returns a FIFO scheduler.
func NewFIFO() *FIFO { return &FIFO{} }

// Name implements storage.Scheduler.
func (s *FIFO) Name() string { return "noop" }

// Add implements storage.Scheduler.
func (s *FIFO) Add(r *storage.Request) { s.q.push(r) }

// Dispatch implements storage.Scheduler.
func (s *FIFO) Dispatch(_, _ sim.Time) (*storage.Request, sim.Time) {
	if s.q.length() == 0 {
		return nil, 0
	}
	return s.q.pop(), 0
}

// Pending implements storage.Scheduler.
func (s *FIFO) Pending() int { return s.q.length() }

// ByName constructs a scheduler from its name; it returns nil for unknown
// names.
func ByName(name string) storage.Scheduler {
	switch name {
	case "cfq":
		return NewCFQ()
	case "deadline":
		return NewDeadline()
	case "noop", "fifo":
		return NewFIFO()
	}
	return nil
}
