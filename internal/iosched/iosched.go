// Package iosched implements the I/O schedulers used in the paper's
// evaluation: a CFQ-like scheduler with an Idle priority class (the
// default configuration, §6.1.3), a Deadline-like scheduler without
// prioritization (the §6.5 ablation), and a trivial FIFO.
package iosched

import (
	"duet/internal/sim"
	"duet/internal/storage"
)

// DefaultIdleGrace is how long the device must have been free of
// normal-class activity before idle-class I/O is dispatched. CFQ's idle
// class behaves similarly: idle I/O runs only once the disk has been idle
// for a while.
const DefaultIdleGrace = 2 * sim.Millisecond

// DefaultIdleSliceTime is how long one owner may keep dispatching
// idle-class requests before the slice rotates to another idle owner.
// Real CFQ gives each process a time slice; without slicing, concurrent
// maintenance streams would interleave request-by-request and thrash the
// head, and a budget in requests or blocks would hand seek-heavy streams
// a disproportionate share of device time.
const DefaultIdleSliceTime = 200 * sim.Millisecond

// CFQ dispatches normal-class requests FIFO and idle-class requests only
// when no normal request is pending and the device has seen no
// normal-class completion for the grace period. Once idle I/O gets a
// turn, requests from one owner run as a slice before rotating to the
// next idle owner.
type CFQ struct {
	IdleGrace     sim.Time
	IdleSliceTime sim.Time

	normal     []*storage.Request
	idleOwners []string // round-robin order of owners with queues
	idleQ      map[string][]*storage.Request
	idleLen    int
	curOwner   string
	sliceStart sim.Time
	// anticipateUntil implements CFQ's slice_idle for the idle class:
	// synchronous tasks have at most one request outstanding, so when the
	// slice owner's queue empties the scheduler waits briefly for its
	// next request instead of rotating (and seeking) on every request.
	anticipateUntil sim.Time
}

// NewCFQ returns a CFQ scheduler with the default parameters.
func NewCFQ() *CFQ {
	return &CFQ{
		IdleGrace:     DefaultIdleGrace,
		IdleSliceTime: DefaultIdleSliceTime,
		idleQ:         map[string][]*storage.Request{},
		sliceStart:    -1,
	}
}

// Name implements storage.Scheduler.
func (s *CFQ) Name() string { return "cfq" }

// Add implements storage.Scheduler.
func (s *CFQ) Add(r *storage.Request) {
	if r.Class != storage.ClassIdle {
		s.normal = append(s.normal, r)
		return
	}
	if _, ok := s.idleQ[r.Owner]; !ok {
		s.idleOwners = append(s.idleOwners, r.Owner)
	}
	s.idleQ[r.Owner] = append(s.idleQ[r.Owner], r)
	s.idleLen++
}

// popIdle dispatches from the current owner's time slice. When the
// owner's queue is momentarily empty but the slice has time left, it
// anticipates (returns nil with a wait hint) instead of rotating; the
// slice rotates when it expires or anticipation times out.
func (s *CFQ) popIdle(now sim.Time) (*storage.Request, sim.Time) {
	expired := s.sliceStart < 0 || now-s.sliceStart >= s.IdleSliceTime
	if q := s.idleQ[s.curOwner]; len(q) > 0 && !expired {
		s.anticipateUntil = 0
		s.idleQ[s.curOwner] = q[1:]
		s.idleLen--
		return q[0], 0
	}
	if !expired && s.curOwner != "" {
		// Anticipate the owner's next synchronous request for up to the
		// grace period (CFQ's slice_idle).
		if s.anticipateUntil == 0 {
			s.anticipateUntil = now + s.IdleGrace
		}
		if now < s.anticipateUntil {
			return nil, s.anticipateUntil - now
		}
	}
	// Rotate to the next owner with pending requests.
	s.anticipateUntil = 0
	for i, o := range s.idleOwners {
		if len(s.idleQ[o]) > 0 && (o != s.curOwner || len(s.idleOwners) == 1) {
			s.idleOwners = append(s.idleOwners[i+1:], s.idleOwners[:i+1]...)
			s.curOwner = o
			s.sliceStart = now
			break
		}
	}
	q := s.idleQ[s.curOwner]
	if len(q) == 0 {
		// Only the current owner has requests (or rotation found none).
		for _, o := range s.idleOwners {
			if len(s.idleQ[o]) > 0 {
				s.curOwner, s.sliceStart = o, now
				q = s.idleQ[o]
				break
			}
		}
	}
	if len(q) == 0 {
		return nil, 0
	}
	r := q[0]
	s.idleQ[s.curOwner] = q[1:]
	s.idleLen--
	return r, 0
}

// Dispatch implements storage.Scheduler.
func (s *CFQ) Dispatch(now, lastNormal sim.Time) (*storage.Request, sim.Time) {
	if len(s.normal) > 0 {
		r := s.normal[0]
		s.normal = s.normal[1:]
		return r, 0
	}
	if s.idleLen > 0 {
		eligible := lastNormal + s.IdleGrace
		if now >= eligible {
			return s.popIdle(now)
		}
		return nil, eligible - now
	}
	return nil, 0
}

// Pending implements storage.Scheduler.
func (s *CFQ) Pending() int { return len(s.normal) + s.idleLen }

// Deadline ignores priority classes entirely (the property §6.5 exercises:
// "the Linux Deadline I/O scheduler ... does not allow prioritizing
// different streams of I/O"). Reads are preferred over writes, as in the
// real deadline scheduler, but maintenance and workload I/O compete as
// equals.
type Deadline struct {
	reads  []*storage.Request
	writes []*storage.Request
	// starve bounds how many reads may pass a queued write, mirroring
	// deadline's writes_starved tunable.
	starve int
	passed int
}

// NewDeadline returns a Deadline scheduler with the kernel's default
// writes_starved of 2.
func NewDeadline() *Deadline { return &Deadline{starve: 2} }

// Name implements storage.Scheduler.
func (s *Deadline) Name() string { return "deadline" }

// Add implements storage.Scheduler.
func (s *Deadline) Add(r *storage.Request) {
	if r.Write {
		s.writes = append(s.writes, r)
	} else {
		s.reads = append(s.reads, r)
	}
}

// Dispatch implements storage.Scheduler.
func (s *Deadline) Dispatch(_, _ sim.Time) (*storage.Request, sim.Time) {
	if len(s.reads) > 0 && (len(s.writes) == 0 || s.passed < s.starve) {
		r := s.reads[0]
		s.reads = s.reads[1:]
		s.passed++
		return r, 0
	}
	if len(s.writes) > 0 {
		r := s.writes[0]
		s.writes = s.writes[1:]
		s.passed = 0
		return r, 0
	}
	if len(s.reads) > 0 {
		r := s.reads[0]
		s.reads = s.reads[1:]
		return r, 0
	}
	return nil, 0
}

// Pending implements storage.Scheduler.
func (s *Deadline) Pending() int { return len(s.reads) + len(s.writes) }

// FIFO services requests strictly in arrival order (Linux noop).
type FIFO struct {
	q []*storage.Request
}

// NewFIFO returns a FIFO scheduler.
func NewFIFO() *FIFO { return &FIFO{} }

// Name implements storage.Scheduler.
func (s *FIFO) Name() string { return "noop" }

// Add implements storage.Scheduler.
func (s *FIFO) Add(r *storage.Request) { s.q = append(s.q, r) }

// Dispatch implements storage.Scheduler.
func (s *FIFO) Dispatch(_, _ sim.Time) (*storage.Request, sim.Time) {
	if len(s.q) == 0 {
		return nil, 0
	}
	r := s.q[0]
	s.q = s.q[1:]
	return r, 0
}

// Pending implements storage.Scheduler.
func (s *FIFO) Pending() int { return len(s.q) }

// ByName constructs a scheduler from its name; it returns nil for unknown
// names.
func ByName(name string) storage.Scheduler {
	switch name {
	case "cfq":
		return NewCFQ()
	case "deadline":
		return NewDeadline()
	case "noop", "fifo":
		return NewFIFO()
	}
	return nil
}
