package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// TraceSummary describes a validated trace file.
type TraceSummary struct {
	Events    int // non-metadata events
	Metadata  int
	Processes map[int]bool
	Tracks    int // thread_name metadata records
}

// ValidateTrace parses a Chrome trace-event JSON stream and checks the
// schema invariants the exporter promises: a top-level traceEvents
// array whose entries carry a known phase, a name, pid/tid, and
// non-negative virtual timestamps (durations too, for slices). It is
// the check behind cmd/traceck and the CI trace-artifact gate.
func ValidateTrace(r io.Reader) (*TraceSummary, error) {
	var doc struct {
		DisplayTimeUnit string            `json:"displayTimeUnit"`
		TraceEvents     []json.RawMessage `json:"traceEvents"`
	}
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("trace: invalid JSON: %w", err)
	}
	if doc.TraceEvents == nil {
		return nil, fmt.Errorf("trace: missing traceEvents array")
	}
	sum := &TraceSummary{Processes: map[int]bool{}}
	for i, raw := range doc.TraceEvents {
		var e struct {
			Ph   string   `json:"ph"`
			Name *string  `json:"name"`
			Cat  string   `json:"cat"`
			Pid  *int     `json:"pid"`
			Tid  *int     `json:"tid"`
			Ts   *float64 `json:"ts"`
			Dur  *float64 `json:"dur"`
		}
		if err := json.Unmarshal(raw, &e); err != nil {
			return nil, fmt.Errorf("trace: event %d: %w", i, err)
		}
		if e.Name == nil || *e.Name == "" {
			return nil, fmt.Errorf("trace: event %d: missing name", i)
		}
		if e.Pid == nil || e.Tid == nil {
			return nil, fmt.Errorf("trace: event %d (%s): missing pid/tid", i, *e.Name)
		}
		sum.Processes[*e.Pid] = true
		switch e.Ph {
		case "M":
			sum.Metadata++
			if *e.Name == "thread_name" {
				sum.Tracks++
			}
			continue
		case "X":
			if e.Dur == nil || *e.Dur < 0 {
				return nil, fmt.Errorf("trace: event %d (%s): slice without non-negative dur", i, *e.Name)
			}
		case "i", "C":
		default:
			return nil, fmt.Errorf("trace: event %d (%s): unknown phase %q", i, *e.Name, e.Ph)
		}
		if e.Ts == nil || *e.Ts < 0 {
			return nil, fmt.Errorf("trace: event %d (%s): missing or negative ts", i, *e.Name)
		}
		sum.Events++
	}
	return sum, nil
}
