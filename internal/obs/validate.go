package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// TraceSummary describes a validated trace file.
type TraceSummary struct {
	Events    int // non-metadata events
	Metadata  int
	Processes map[int]bool
	Tracks    int // thread_name metadata records
	Windows   int // barrier window slices (cat "sim", name "window")
}

// tsEpsilon absorbs float rounding in microsecond timestamps; virtual
// times are integral nanoseconds, so distinct times differ by >= 1e-3.
const tsEpsilon = 1e-6

// ValidateTrace parses a Chrome trace-event JSON stream and checks the
// invariants the exporter promises. Schema: a top-level traceEvents
// array whose entries carry a known phase, a name, pid/tid, and
// non-negative virtual timestamps (durations too, for slices).
// Window protocol (per process, in record order): barrier "window"
// slices (cat "sim") open strictly later than the previous window and
// never overlap it — each round's open is the global next-event time,
// and a round retires every event below its horizon — and every other
// engine-level (cat "sim") slice must END at or after the latest window
// open, because it is recorded during that window and no event below
// the open exists anywhere. It is the check behind cmd/traceck and the
// CI trace-artifact gate.
func ValidateTrace(r io.Reader) (*TraceSummary, error) {
	var doc struct {
		DisplayTimeUnit string            `json:"displayTimeUnit"`
		TraceEvents     []json.RawMessage `json:"traceEvents"`
	}
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("trace: invalid JSON: %w", err)
	}
	if doc.TraceEvents == nil {
		return nil, fmt.Errorf("trace: missing traceEvents array")
	}
	sum := &TraceSummary{Processes: map[int]bool{}}
	// Per-process window-protocol state: the previous window's open and
	// end timestamps (each trace process is one event domain of one
	// simulation, so windows are tracked per pid).
	type winState struct {
		open, end float64
		seen      bool
	}
	windows := map[int]*winState{}
	for i, raw := range doc.TraceEvents {
		var e struct {
			Ph   string   `json:"ph"`
			Name *string  `json:"name"`
			Cat  string   `json:"cat"`
			Pid  *int     `json:"pid"`
			Tid  *int     `json:"tid"`
			Ts   *float64 `json:"ts"`
			Dur  *float64 `json:"dur"`
		}
		if err := json.Unmarshal(raw, &e); err != nil {
			return nil, fmt.Errorf("trace: event %d: %w", i, err)
		}
		if e.Name == nil || *e.Name == "" {
			return nil, fmt.Errorf("trace: event %d: missing name", i)
		}
		if e.Pid == nil || e.Tid == nil {
			return nil, fmt.Errorf("trace: event %d (%s): missing pid/tid", i, *e.Name)
		}
		sum.Processes[*e.Pid] = true
		switch e.Ph {
		case "M":
			sum.Metadata++
			if *e.Name == "thread_name" {
				sum.Tracks++
			}
			continue
		case "X":
			if e.Dur == nil || *e.Dur < 0 {
				return nil, fmt.Errorf("trace: event %d (%s): slice without non-negative dur", i, *e.Name)
			}
		case "i", "C":
		default:
			return nil, fmt.Errorf("trace: event %d (%s): unknown phase %q", i, *e.Name, e.Ph)
		}
		if e.Ts == nil || *e.Ts < 0 {
			return nil, fmt.Errorf("trace: event %d (%s): missing or negative ts", i, *e.Name)
		}
		if e.Cat == "sim" && e.Ph == "X" {
			w := windows[*e.Pid]
			if w == nil {
				w = &winState{}
				windows[*e.Pid] = w
			}
			if *e.Name == "window" {
				if w.seen {
					if *e.Ts <= w.open+tsEpsilon {
						return nil, fmt.Errorf("trace: event %d: window open %.3f not after previous open %.3f (pid %d)",
							i, *e.Ts, w.open, *e.Pid)
					}
					if *e.Ts < w.end-tsEpsilon {
						return nil, fmt.Errorf("trace: event %d: window open %.3f overlaps previous window ending %.3f (pid %d)",
							i, *e.Ts, w.end, *e.Pid)
					}
				}
				w.open, w.end, w.seen = *e.Ts, *e.Ts+*e.Dur, true
				sum.Windows++
			} else if w.seen && *e.Ts+*e.Dur < w.open-tsEpsilon {
				return nil, fmt.Errorf("trace: event %d (%s): engine slice ends %.3f before its window opened %.3f (pid %d)",
					i, *e.Name, *e.Ts+*e.Dur, w.open, *e.Pid)
			}
		}
		sum.Events++
	}
	return sum, nil
}
