package obs

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"duet/internal/sim"
)

func TestTracerRingOverwrite(t *testing.T) {
	tr := NewTracer(4)
	tid := tr.Track("t")
	for i := 0; i < 7; i++ {
		tr.Instant(tid, "c", "e", sim.Time(i))
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
	if tr.Dropped() != 3 {
		t.Fatalf("Dropped = %d, want 3", tr.Dropped())
	}
	var got []sim.Time
	tr.Events(func(e *Event) { got = append(got, e.Ts) })
	want := []sim.Time{3, 4, 5, 6}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d ts = %v, want %v (oldest-first order)", i, got[i], want[i])
		}
	}
}

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	// None of these may panic; Track must return the reserved tid 0.
	if id := tr.Track("x"); id != 0 {
		t.Fatalf("nil Track = %d, want 0", id)
	}
	tr.Slice(0, "c", "n", 0, 1)
	tr.SliceArg(0, "c", "n", 0, 1, "k", 2)
	tr.Instant(0, "c", "n", 0)
	tr.Counter(0, "n", 0, 1)
	tr.Events(func(*Event) { t.Fatal("nil tracer has no events") })
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Tracks() != nil || tr.Enabled() {
		t.Fatal("nil tracer accessors must report empty/disabled")
	}
}

func TestRegistryNilSafe(t *testing.T) {
	var r *Registry
	r.Counter("a").Inc()
	r.Gauge("b").SetMax(3)
	r.Histogram("c", []int64{1}).Observe(1)
	r.SetCounter("d", 5)
	r.Merge(NewRegistry())
	if rows := r.Rows(); rows != nil {
		t.Fatalf("nil registry Rows = %v, want nil", rows)
	}
	var buf bytes.Buffer
	if err := WriteMetricsText(&buf, r); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("nil registry text dump = %q, want empty", buf.String())
	}
}

func TestSetCounterIdempotentAbsorption(t *testing.T) {
	r := NewRegistry()
	r.SetCounter("x", 10)
	r.SetCounter("x", 10) // re-absorbing the same snapshot
	r.SetCounter("x", 7)  // stale snapshot must not regress
	if v := r.Counter("x").Value(); v != 10 {
		t.Fatalf("x = %d, want 10", v)
	}
	r.SetCounter("x", 12)
	if v := r.Counter("x").Value(); v != 12 {
		t.Fatalf("x = %d, want 12", v)
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	h := NewRegistry().Histogram("h", []int64{10, 20})
	h.Observe(10) // on the bound: le10
	h.Observe(11) // le20
	h.Observe(21) // overflow
	if h.counts[0] != 1 || h.counts[1] != 1 || h.counts[2] != 1 {
		t.Fatalf("bucket counts = %v, want [1 1 1]", h.counts)
	}
	if h.Count() != 3 || h.Sum() != 42 || h.min != 10 || h.max != 21 {
		t.Fatalf("count=%d sum=%d min=%d max=%d", h.Count(), h.Sum(), h.min, h.max)
	}
}

// fillRegistry populates a registry the way subsystem absorption does.
func fillRegistry(r *Registry, scale int64) {
	r.Counter("c.events").Add(3 * scale)
	r.SetCounter("c.abs", 100*scale)
	r.Gauge("g.depth").Set(7 * scale)
	h := r.Histogram("h.lat", []int64{10, 100, 1000})
	for i := int64(0); i < 5; i++ {
		h.Observe(i * scale)
	}
}

func TestMergeCommutative(t *testing.T) {
	a1, b1 := NewRegistry(), NewRegistry()
	fillRegistry(a1, 1)
	fillRegistry(b1, 50)
	a2, b2 := NewRegistry(), NewRegistry()
	fillRegistry(a2, 1)
	fillRegistry(b2, 50)

	ab, ba := NewRegistry(), NewRegistry()
	ab.Merge(a1)
	ab.Merge(b1)
	ba.Merge(b2)
	ba.Merge(a2)

	var w1, w2 bytes.Buffer
	if err := WriteMetricsText(&w1, ab); err != nil {
		t.Fatal(err)
	}
	if err := WriteMetricsText(&w2, ba); err != nil {
		t.Fatal(err)
	}
	if w1.String() != w2.String() {
		t.Fatalf("merge order changed the registry:\nA,B:\n%s\nB,A:\n%s", w1.String(), w2.String())
	}
	if !strings.Contains(w1.String(), "counter c.events 153") {
		t.Fatalf("counters did not sum:\n%s", w1.String())
	}
	if !strings.Contains(w1.String(), "gauge g.depth 350 max 350") {
		t.Fatalf("gauges did not take max:\n%s", w1.String())
	}
}

func TestTraceExportDeterministicAndValid(t *testing.T) {
	mk := func() *Tracer {
		tr := NewTracer(128)
		a := tr.Track("alpha")
		b := tr.Track("beta")
		tr.Slice(a, "sim", "run", 1000, 2500)
		tr.SliceArg(b, "storage", "workload", 2000, 2600, "blocks", 8)
		tr.Instant(a, "duet", "degraded", 123456)
		tr.Counter(b, "qdepth", 3000, 5)
		return tr
	}
	var w1, w2 bytes.Buffer
	if err := WriteTrace(&w1, "cell", mk()); err != nil {
		t.Fatal(err)
	}
	if err := WriteTrace(&w2, "cell", mk()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(w1.Bytes(), w2.Bytes()) {
		t.Fatal("identical event streams produced different trace bytes")
	}
	// Timestamps are µs with exactly three decimals: 1000ns -> 1.000.
	if !strings.Contains(w1.String(), `"ts":1.000`) || !strings.Contains(w1.String(), `"dur":1.500`) {
		t.Fatalf("timestamp rendering wrong:\n%s", w1.String())
	}
	sum, err := ValidateTrace(bytes.NewReader(w1.Bytes()))
	if err != nil {
		t.Fatalf("exported trace fails validation: %v", err)
	}
	if sum.Events != 4 {
		t.Fatalf("summary events = %d, want 4", sum.Events)
	}
	if sum.Metadata != 4 { // process_name + 3 thread_names (engine, alpha, beta)
		t.Fatalf("summary metadata = %d, want 4", sum.Metadata)
	}
}

func TestValidateTraceRejectsBadPhase(t *testing.T) {
	bad := `{"traceEvents":[{"ph":"Z","pid":1,"tid":0,"name":"x","ts":0}]}`
	if _, err := ValidateTrace(strings.NewReader(bad)); err == nil {
		t.Fatal("unknown phase accepted")
	}
	negDur := `{"traceEvents":[{"ph":"X","pid":1,"tid":0,"name":"x","ts":0,"dur":-1}]}`
	if _, err := ValidateTrace(strings.NewReader(negDur)); err == nil {
		t.Fatal("negative duration accepted")
	}
}

func TestWriteMetricsJSONShape(t *testing.T) {
	r := NewRegistry()
	fillRegistry(r, 2)
	var buf bytes.Buffer
	if err := WriteMetricsJSON(&buf, r); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{`"counters"`, `"gauges"`, `"histograms"`, `"c.events": 6`, `"le": "inf"`} {
		if !strings.Contains(s, want) {
			t.Fatalf("metrics JSON missing %s:\n%s", want, s)
		}
	}
}

func TestObsHandleNilTolerant(t *testing.T) {
	var o *Obs
	if o.TraceOf() != nil || o.MetricsOf() != nil {
		t.Fatal("nil Obs must expose nil instruments")
	}
	o = &Obs{}
	if o.TraceOf() != nil || o.MetricsOf() != nil {
		t.Fatal("empty Obs must expose nil instruments")
	}
}

// TestValidateTraceWindowProtocol exercises the window-monotonicity
// checks: per process, barrier window slices must open strictly later
// than their predecessor without overlapping it, and engine-level (cat
// "sim") slices must not end before the latest window open.
func TestValidateTraceWindowProtocol(t *testing.T) {
	wrap := func(events string) string {
		return `{"traceEvents":[` + events + `]}`
	}
	win := func(pid int, ts, dur float64) string {
		return fmt.Sprintf(`{"ph":"X","pid":%d,"tid":0,"cat":"sim","name":"window","ts":%g,"dur":%g}`, pid, ts, dur)
	}
	ok := wrap(win(1, 0, 10) + "," + win(1, 10, 5) + "," + win(2, 3, 4) + "," +
		`{"ph":"X","pid":1,"tid":7,"cat":"sim","name":"park","ts":2,"dur":9}`)
	sum, err := ValidateTrace(strings.NewReader(ok))
	if err != nil {
		t.Fatalf("valid window sequence rejected: %v", err)
	}
	if sum.Windows != 3 {
		t.Fatalf("summary windows = %d, want 3", sum.Windows)
	}
	for name, bad := range map[string]string{
		"non-increasing open": wrap(win(1, 10, 5) + "," + win(1, 10, 5)),
		"overlapping window":  wrap(win(1, 0, 10) + "," + win(1, 5, 10)),
		"slice before window": wrap(win(1, 100, 10) + "," +
			`{"ph":"X","pid":1,"tid":7,"cat":"sim","name":"park","ts":10,"dur":20}`),
	} {
		if _, err := ValidateTrace(strings.NewReader(bad)); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
	// Same timestamps on different pids are independent streams, and
	// non-"sim" categories are exempt (task spans are recorded post-run).
	exempt := wrap(win(1, 100, 10) + "," +
		`{"ph":"X","pid":1,"tid":7,"cat":"task","name":"scrub","ts":10,"dur":20}`)
	if _, err := ValidateTrace(strings.NewReader(exempt)); err != nil {
		t.Fatalf("non-sim category wrongly gated: %v", err)
	}
}
