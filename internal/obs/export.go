package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"

	"duet/internal/sim"
)

// Trace export: the Chrome trace-event JSON format, the subset Perfetto
// and chrome://tracing both load. Timestamps ("ts") and durations
// ("dur") are microseconds of *virtual* time; sub-microsecond precision
// is kept as three fixed decimal places, so the encoding of a given
// event stream is byte-for-byte deterministic.

// TraceProcess labels one tracer in a multi-process trace file. The
// experiment grid exports one process per cell; single-machine tools
// export exactly one.
type TraceProcess struct {
	Name string
	T    *Tracer
}

// WriteTrace writes a single tracer as a one-process trace file.
func WriteTrace(w io.Writer, name string, t *Tracer) error {
	return WriteTraceMulti(w, []TraceProcess{{Name: name, T: t}})
}

// WriteTraceMulti writes several tracers as one trace file, assigning
// pid 1..n in slice order. Callers must present processes in a
// deterministic order (the grid uses cell input order).
func WriteTraceMulti(w io.Writer, procs []TraceProcess) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	io.WriteString(bw, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[")
	first := true
	sep := func() {
		if first {
			first = false
			io.WriteString(bw, "\n")
		} else {
			io.WriteString(bw, ",\n")
		}
	}
	for i, pr := range procs {
		pid := i + 1
		sep()
		fmt.Fprintf(bw, `{"ph":"M","pid":%d,"tid":0,"name":"process_name","args":{"name":%s}}`,
			pid, quote(pr.Name))
		for tid, tn := range pr.T.Tracks() {
			sep()
			fmt.Fprintf(bw, `{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":%s}}`,
				pid, tid, quote(tn))
		}
		pr.T.Events(func(e *Event) {
			sep()
			writeEvent(bw, pid, e)
		})
		if d := pr.T.Dropped(); d > 0 {
			sep()
			fmt.Fprintf(bw, `{"ph":"M","pid":%d,"tid":0,"name":"trace_dropped_events","args":{"count":%d}}`, pid, d)
		}
	}
	io.WriteString(bw, "\n]}\n")
	return bw.Flush()
}

func writeEvent(bw *bufio.Writer, pid int, e *Event) {
	bw.WriteString(`{"ph":"`)
	bw.WriteByte(e.Ph)
	bw.WriteString(`","pid":`)
	bw.WriteString(strconv.Itoa(pid))
	bw.WriteString(`,"tid":`)
	bw.WriteString(strconv.FormatInt(int64(e.TID), 10))
	bw.WriteString(`,"name":`)
	bw.WriteString(quote(e.Name))
	if e.Cat != "" {
		bw.WriteString(`,"cat":`)
		bw.WriteString(quote(e.Cat))
	}
	bw.WriteString(`,"ts":`)
	writeMicros(bw, e.Ts)
	switch e.Ph {
	case PhaseSlice:
		bw.WriteString(`,"dur":`)
		writeMicros(bw, e.Dur)
	case PhaseInstant:
		bw.WriteString(`,"s":"t"`) // thread-scoped instant
	}
	if e.ArgKey != "" {
		bw.WriteString(`,"args":{`)
		bw.WriteString(quote(e.ArgKey))
		bw.WriteString(`:`)
		bw.WriteString(strconv.FormatInt(e.Arg, 10))
		bw.WriteString(`}`)
	}
	bw.WriteString(`}`)
}

// writeMicros renders virtual nanoseconds as microseconds with exactly
// three decimals ("12.345"), keeping full precision deterministically.
func writeMicros(bw *bufio.Writer, t sim.Time) {
	ns := int64(t)
	neg := ns < 0
	if neg {
		bw.WriteByte('-')
		ns = -ns
	}
	bw.WriteString(strconv.FormatInt(ns/1000, 10))
	bw.WriteByte('.')
	frac := ns % 1000
	bw.WriteByte(byte('0' + frac/100))
	bw.WriteByte(byte('0' + frac/10%10))
	bw.WriteByte(byte('0' + frac%10))
}

// quote JSON-escapes a string. Track and event names are plain ASCII
// identifiers in practice, but escaping is still done properly.
func quote(s string) string { return strconv.Quote(s) }

// --- metrics export ---------------------------------------------------------

// WriteMetricsText dumps the registry as aligned "kind name value"
// lines sorted by name — the deterministic flat form the grid
// determinism tests compare.
func WriteMetricsText(w io.Writer, r *Registry) error {
	bw := bufio.NewWriter(w)
	if r != nil {
		for _, name := range sortedKeys(r.counters) {
			fmt.Fprintf(bw, "counter %s %d\n", name, r.counters[name].v)
		}
		for _, name := range sortedKeys(r.gauges) {
			g := r.gauges[name]
			fmt.Fprintf(bw, "gauge %s %d max %d\n", name, g.v, g.max)
		}
		for _, name := range sortedKeys(r.hists) {
			h := r.hists[name]
			fmt.Fprintf(bw, "hist %s count %d sum %d", name, h.count, h.sum)
			if h.count > 0 {
				fmt.Fprintf(bw, " min %d max %d", h.min, h.max)
			}
			for i, c := range h.counts {
				if c == 0 {
					continue
				}
				if i < len(h.bounds) {
					fmt.Fprintf(bw, " le%d=%d", h.bounds[i], c)
				} else {
					fmt.Fprintf(bw, " inf=%d", c)
				}
			}
			fmt.Fprintln(bw)
		}
	}
	return bw.Flush()
}

// WriteMetricsJSON dumps the registry as JSON with lexically ordered
// keys, so equal registries always serialise to equal bytes.
func WriteMetricsJSON(w io.Writer, r *Registry) error {
	bw := bufio.NewWriter(w)
	io.WriteString(bw, "{\n  \"counters\": {")
	if r != nil {
		for i, name := range sortedKeys(r.counters) {
			if i > 0 {
				bw.WriteByte(',')
			}
			fmt.Fprintf(bw, "\n    %s: %d", quote(name), r.counters[name].v)
		}
	}
	io.WriteString(bw, "\n  },\n  \"gauges\": {")
	if r != nil {
		for i, name := range sortedKeys(r.gauges) {
			if i > 0 {
				bw.WriteByte(',')
			}
			g := r.gauges[name]
			fmt.Fprintf(bw, "\n    %s: {\"value\": %d, \"max\": %d}", quote(name), g.v, g.max)
		}
	}
	io.WriteString(bw, "\n  },\n  \"histograms\": {")
	if r != nil {
		for i, name := range sortedKeys(r.hists) {
			if i > 0 {
				bw.WriteByte(',')
			}
			h := r.hists[name]
			fmt.Fprintf(bw, "\n    %s: {\"count\": %d, \"sum\": %d, \"min\": %d, \"max\": %d, \"buckets\": [",
				quote(name), h.count, h.sum, h.min, h.max)
			for j, c := range h.counts {
				if j > 0 {
					bw.WriteByte(',')
				}
				if j < len(h.bounds) {
					fmt.Fprintf(bw, "{\"le\": %d, \"n\": %d}", h.bounds[j], c)
				} else {
					fmt.Fprintf(bw, "{\"le\": \"inf\", \"n\": %d}", c)
				}
			}
			io.WriteString(bw, "]}")
		}
	}
	io.WriteString(bw, "\n  }\n}\n")
	return bw.Flush()
}

// Rows flattens the registry into (name, value) rows sorted by name,
// for plain-text summary tables (fsinspect). Histograms render as
// "count/mean" summaries.
func (r *Registry) Rows() [][2]string {
	if r == nil {
		return nil
	}
	var rows [][2]string
	for _, name := range sortedKeys(r.counters) {
		rows = append(rows, [2]string{name, strconv.FormatInt(r.counters[name].v, 10)})
	}
	for _, name := range sortedKeys(r.gauges) {
		g := r.gauges[name]
		rows = append(rows, [2]string{name, fmt.Sprintf("%d (max %d)", g.v, g.max)})
	}
	for _, name := range sortedKeys(r.hists) {
		h := r.hists[name]
		rows = append(rows, [2]string{name, fmt.Sprintf("n=%d mean=%.1f max=%d", h.count, h.Mean(), h.max)})
	}
	return rows
}
