// Package obs is the virtual-time observability subsystem: a span/event
// tracer and a central metrics registry, with deterministic exporters
// (Chrome trace-event JSON openable in Perfetto, and a metrics dump).
//
// Everything is keyed to *simulated* virtual time, never the wall clock:
// a span's timestamps come from the sim.Engine that produced it, so two
// runs with the same seed emit byte-identical trace files regardless of
// host speed or scheduling.
//
// The disabled case is free. Every recording method is a no-op on a nil
// receiver, and instrumented subsystems guard their probes behind a
// single nil check, so the hot paths the allocation gates protect
// (pagecache insert/emit, cowfs write, lfs GC pick, sim sleep/park)
// stay 0 allocs/op with observability off.
//
// Within one simulation, recording needs no locking: the sim engine
// guarantees exactly one process runs at a time. Cross-engine
// aggregation (the experiment grid's worker pool) merges per-cell
// registries with Registry.Merge, whose operations are commutative, so
// the merged result is independent of worker interleaving.
package obs

// Obs bundles the two observability facilities a machine can carry.
// Either field may be nil: a machine can collect metrics without
// tracing, trace without metrics, or (the default) neither.
type Obs struct {
	// Trace records virtual-time spans and instants.
	Trace *Tracer
	// Metrics is the machine's metrics registry.
	Metrics *Registry
}

// TraceOf returns o.Trace, tolerating a nil o.
func (o *Obs) TraceOf() *Tracer {
	if o == nil {
		return nil
	}
	return o.Trace
}

// MetricsOf returns o.Metrics, tolerating a nil o.
func (o *Obs) MetricsOf() *Registry {
	if o == nil {
		return nil
	}
	return o.Metrics
}
