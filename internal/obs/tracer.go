package obs

import "duet/internal/sim"

// Event phases, mirroring the Chrome trace-event format.
const (
	// PhaseSlice is a complete duration event ('X').
	PhaseSlice byte = 'X'
	// PhaseInstant is a point event ('i').
	PhaseInstant byte = 'i'
	// PhaseCounter is a counter sample ('C').
	PhaseCounter byte = 'C'
)

// Event is one recorded trace event. Name, Cat and ArgKey must be
// static (or otherwise already-materialised) strings: the tracer stores
// them by reference and never formats on the recording path.
type Event struct {
	Name   string
	Cat    string
	ArgKey string // "" = no argument
	Ts     sim.Time
	Dur    sim.Time // slices only
	Arg    int64
	TID    int32
	Ph     byte
}

// Tracer records virtual-time events into a fixed-capacity ring buffer.
// When the ring fills, the oldest events are overwritten (and counted in
// Dropped) — tracing a long run keeps the most recent window, which is
// usually the interesting part, without unbounded memory.
//
// A nil *Tracer is a valid disabled tracer: every method returns
// immediately.
type Tracer struct {
	events  []Event
	head    int // index of the oldest event
	n       int // events currently stored
	dropped int64

	tracks   []string // tid -> display name; tid 0 is reserved ("engine")
	trackIDs map[string]int32
}

// DefaultTraceEvents is the default ring capacity.
const DefaultTraceEvents = 1 << 16

// NewTracer creates a tracer holding up to capacity events
// (DefaultTraceEvents if capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceEvents
	}
	t := &Tracer{
		events:   make([]Event, 0, capacity),
		trackIDs: make(map[string]int32),
	}
	t.tracks = append(t.tracks, "engine") // tid 0
	return t
}

// Enabled reports whether the tracer records events.
func (t *Tracer) Enabled() bool { return t != nil }

// Track returns the thread id for a named track, registering it on
// first use. Named tracks render as separate rows in Perfetto. Returns
// 0 on a nil tracer.
func (t *Tracer) Track(name string) int32 {
	if t == nil {
		return 0
	}
	if id, ok := t.trackIDs[name]; ok {
		return id
	}
	id := int32(len(t.tracks))
	t.tracks = append(t.tracks, name)
	t.trackIDs[name] = id
	return id
}

// push appends an event, overwriting the oldest when full.
func (t *Tracer) push(e Event) {
	if len(t.events) < cap(t.events) {
		t.events = append(t.events, e)
		t.n++
		return
	}
	t.events[t.head] = e
	t.head++
	if t.head == len(t.events) {
		t.head = 0
	}
	t.dropped++
}

// Slice records a complete duration event on a track. start may equal
// end (virtual time often does not advance inside one scheduling turn).
func (t *Tracer) Slice(tid int32, cat, name string, start, end sim.Time) {
	if t == nil {
		return
	}
	t.push(Event{Name: name, Cat: cat, Ts: start, Dur: end - start, TID: tid, Ph: PhaseSlice})
}

// SliceArg records a complete duration event carrying one integer
// argument. argKey must be a static string.
func (t *Tracer) SliceArg(tid int32, cat, name string, start, end sim.Time, argKey string, arg int64) {
	if t == nil {
		return
	}
	t.push(Event{Name: name, Cat: cat, ArgKey: argKey, Arg: arg, Ts: start, Dur: end - start, TID: tid, Ph: PhaseSlice})
}

// Instant records a point event.
func (t *Tracer) Instant(tid int32, cat, name string, ts sim.Time) {
	if t == nil {
		return
	}
	t.push(Event{Name: name, Cat: cat, Ts: ts, TID: tid, Ph: PhaseInstant})
}

// Counter records a counter sample. Perfetto plots successive samples
// of the same name as a step chart.
func (t *Tracer) Counter(tid int32, name string, ts sim.Time, v int64) {
	if t == nil {
		return
	}
	t.push(Event{Name: name, ArgKey: "value", Arg: v, Ts: ts, TID: tid, Ph: PhaseCounter})
}

// Len returns the number of buffered events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return t.n
}

// Dropped returns how many events were overwritten after the ring
// filled.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// Events calls fn for each buffered event in record order (oldest
// first).
func (t *Tracer) Events(fn func(e *Event)) {
	if t == nil {
		return
	}
	for i := 0; i < t.n; i++ {
		fn(&t.events[(t.head+i)%len(t.events)])
	}
}

// Tracks returns the registered track names indexed by tid.
func (t *Tracer) Tracks() []string {
	if t == nil {
		return nil
	}
	return t.tracks
}

// The sim package defines its own minimal tracer interface so the
// kernel does not depend on obs; assert here that Tracer satisfies it.
var _ sim.Tracer = (*Tracer)(nil)
