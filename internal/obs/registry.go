package obs

import "sort"

// Registry is a central metrics registry: named counters, gauges and
// fixed-bucket histograms. Instruments are registered (or looked up) by
// name; the handle is then updated without further map traffic, so a
// subsystem resolves its instruments once at setup and pays only an
// add/compare per sample.
//
// A nil *Registry is a valid disabled registry: lookups return nil
// handles, and every handle method is a no-op on a nil receiver.
//
// Registries are not safe for concurrent update — within one simulation
// the engine serialises all processes. Merge (guarded by the caller) is
// how per-engine registries aggregate: every merge operation is
// commutative and associative (counters and histograms sum, gauges take
// the maximum), so a merged registry's contents are independent of the
// order cells complete in.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter is a monotonically increasing count.
type Counter struct{ v int64 }

// Add increases the counter. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v += n
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge tracks a level. Set records the current value and keeps the
// high-water mark; merged gauges report the maximum across sources, so
// a gauge is the right instrument for queue depths and peaks, not for
// quantities that should sum (use a Counter).
type Gauge struct {
	v   int64
	max int64
}

// Set records the current level, updating the high-water mark. No-op on
// a nil receiver.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v = v
	if v > g.max {
		g.max = v
	}
}

// SetMax raises the high-water mark without touching the current value.
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	if v > g.max {
		g.max = v
	}
}

// Value returns the last Set value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Max returns the high-water mark (0 on nil).
func (g *Gauge) Max() int64 {
	if g == nil {
		return 0
	}
	return g.max
}

// Histogram counts samples into fixed buckets. Bucket i counts samples
// v <= Bounds[i]; one implicit overflow bucket counts the rest. Bounds
// are fixed at registration, so histograms with the same name always
// merge bucket-for-bucket.
type Histogram struct {
	bounds []int64
	counts []int64 // len(bounds)+1; last = overflow
	count  int64
	sum    int64
	min    int64
	max    int64
}

// Observe records one sample. No-op on a nil receiver.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
}

// Count returns the number of samples (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the sum of samples (0 on nil).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Mean returns the mean sample (0 with no samples).
func (h *Histogram) Mean() float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Counter returns (registering if needed) the named counter. Returns
// nil on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (registering if needed) the named gauge. Returns nil on
// a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (registering if needed) the named histogram with
// the given bucket upper bounds (ascending). The bounds of the first
// registration win; later callers share the instrument. Returns nil on
// a nil registry.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	h := r.hists[name]
	if h == nil {
		b := make([]int64, len(bounds))
		copy(b, bounds)
		h = &Histogram{bounds: b, counts: make([]int64, len(b)+1)}
		r.hists[name] = h
	}
	return h
}

// SetCounter is a convenience for absorption passes: it sets the named
// counter to the given absolute value if larger than the current one
// (absorbing a cumulative stat twice must not double it).
func (r *Registry) SetCounter(name string, v int64) {
	c := r.Counter(name)
	if c != nil && v > c.v {
		c.v = v
	}
}

// Merge folds other into r. Counters and histogram buckets sum; gauges
// take the maximum of value and high-water mark; histograms registered
// only in other are copied. All operations are commutative and
// associative, so any merge order yields the same registry.
func (r *Registry) Merge(other *Registry) {
	if r == nil || other == nil {
		return
	}
	for name, c := range other.counters {
		r.Counter(name).Add(c.v)
	}
	for name, g := range other.gauges {
		dst := r.Gauge(name)
		if g.v > dst.v {
			dst.v = g.v
		}
		if g.max > dst.max {
			dst.max = g.max
		}
	}
	for name, h := range other.hists {
		dst := r.hists[name]
		if dst == nil {
			r.Histogram(name, h.bounds)
			dst = r.hists[name]
		}
		if len(dst.bounds) != len(h.bounds) {
			// Names identify instruments; mismatched bounds mean two
			// subsystems disagree. Keep the destination shape and fold
			// everything into the overflow-safe aggregate fields.
			dst.count += h.count
			dst.sum += h.sum
			continue
		}
		for i := range h.counts {
			dst.counts[i] += h.counts[i]
		}
		if h.count > 0 {
			if dst.count == 0 || h.min < dst.min {
				dst.min = h.min
			}
			if h.max > dst.max {
				dst.max = h.max
			}
		}
		dst.count += h.count
		dst.sum += h.sum
	}
}

// sortedKeys returns map keys in lexical order, for deterministic
// export.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
