// Package rbtree provides a generic ordered map implemented as a
// left-leaning red-black tree.
//
// The Duet paper uses red-black trees in two places: to dynamically
// allocate portions of the relevant/done bitmaps (§4.2), and as the
// priority queue in the task-side library (§4.2). This package backs both,
// as well as the COW filesystem's free-space map.
package rbtree

// Tree is an ordered map from K to V. The zero value is not usable; create
// trees with New. Trees are not safe for concurrent use, which is fine:
// everything above internal/sim is single-threaded by construction.
//
// Deleted nodes are recycled through an internal free list, so a tree
// that churns around a steady size (like the page cache's dirty-page
// index) stops allocating once it has reached its high-water mark.
type Tree[K, V any] struct {
	less func(a, b K) bool
	root *node[K, V]
	size int
	free *node[K, V] // recycled nodes, linked through right
}

type node[K, V any] struct {
	key         K
	val         V
	left, right *node[K, V]
	red         bool
}

// New returns an empty tree ordered by less.
func New[K, V any](less func(a, b K) bool) *Tree[K, V] {
	return &Tree[K, V]{less: less}
}

// Len returns the number of entries.
func (t *Tree[K, V]) Len() int { return t.size }

// newNode takes a node from the free list, or allocates one.
func (t *Tree[K, V]) newNode(key K, val V) *node[K, V] {
	n := t.free
	if n == nil {
		return &node[K, V]{key: key, val: val, red: true}
	}
	t.free = n.right
	n.key, n.val = key, val
	n.left, n.right = nil, nil
	n.red = true
	return n
}

// release zeroes a detached node (so pointer values do not pin garbage)
// and pushes it onto the free list.
func (t *Tree[K, V]) release(n *node[K, V]) {
	var zk K
	var zv V
	n.key, n.val = zk, zv
	n.left = nil
	n.right = t.free
	t.free = n
}

func isRed[K, V any](n *node[K, V]) bool { return n != nil && n.red }

func rotateLeft[K, V any](h *node[K, V]) *node[K, V] {
	x := h.right
	h.right = x.left
	x.left = h
	x.red = h.red
	h.red = true
	return x
}

func rotateRight[K, V any](h *node[K, V]) *node[K, V] {
	x := h.left
	h.left = x.right
	x.right = h
	x.red = h.red
	h.red = true
	return x
}

func flipColors[K, V any](h *node[K, V]) {
	h.red = !h.red
	h.left.red = !h.left.red
	h.right.red = !h.right.red
}

func fixUp[K, V any](h *node[K, V]) *node[K, V] {
	if isRed(h.right) && !isRed(h.left) {
		h = rotateLeft(h)
	}
	if isRed(h.left) && isRed(h.left.left) {
		h = rotateRight(h)
	}
	if isRed(h.left) && isRed(h.right) {
		flipColors(h)
	}
	return h
}

// Set inserts or replaces the value for key.
func (t *Tree[K, V]) Set(key K, val V) {
	t.root = t.insert(t.root, key, val)
	t.root.red = false
}

func (t *Tree[K, V]) insert(h *node[K, V], key K, val V) *node[K, V] {
	if h == nil {
		t.size++
		return t.newNode(key, val)
	}
	switch {
	case t.less(key, h.key):
		h.left = t.insert(h.left, key, val)
	case t.less(h.key, key):
		h.right = t.insert(h.right, key, val)
	default:
		h.val = val
	}
	return fixUp(h)
}

// Get returns the value stored for key.
func (t *Tree[K, V]) Get(key K) (V, bool) {
	n := t.root
	for n != nil {
		switch {
		case t.less(key, n.key):
			n = n.left
		case t.less(n.key, key):
			n = n.right
		default:
			return n.val, true
		}
	}
	var zero V
	return zero, false
}

// Contains reports whether key is present.
func (t *Tree[K, V]) Contains(key K) bool {
	_, ok := t.Get(key)
	return ok
}

// Min returns the smallest entry.
func (t *Tree[K, V]) Min() (key K, val V, ok bool) {
	n := t.root
	if n == nil {
		return key, val, false
	}
	for n.left != nil {
		n = n.left
	}
	return n.key, n.val, true
}

// Max returns the largest entry.
func (t *Tree[K, V]) Max() (key K, val V, ok bool) {
	n := t.root
	if n == nil {
		return key, val, false
	}
	for n.right != nil {
		n = n.right
	}
	return n.key, n.val, true
}

// Floor returns the largest entry with key <= k.
func (t *Tree[K, V]) Floor(k K) (key K, val V, ok bool) {
	n := t.root
	for n != nil {
		switch {
		case t.less(k, n.key):
			n = n.left
		case t.less(n.key, k):
			key, val, ok = n.key, n.val, true
			n = n.right
		default:
			return n.key, n.val, true
		}
	}
	return key, val, ok
}

// Ceiling returns the smallest entry with key >= k.
func (t *Tree[K, V]) Ceiling(k K) (key K, val V, ok bool) {
	n := t.root
	for n != nil {
		switch {
		case t.less(n.key, k):
			n = n.right
		case t.less(k, n.key):
			key, val, ok = n.key, n.val, true
			n = n.left
		default:
			return n.key, n.val, true
		}
	}
	return key, val, ok
}

func moveRedLeft[K, V any](h *node[K, V]) *node[K, V] {
	flipColors(h)
	if isRed(h.right.left) {
		h.right = rotateRight(h.right)
		h = rotateLeft(h)
		flipColors(h)
	}
	return h
}

func moveRedRight[K, V any](h *node[K, V]) *node[K, V] {
	flipColors(h)
	if isRed(h.left.left) {
		h = rotateRight(h)
		flipColors(h)
	}
	return h
}

func minNode[K, V any](h *node[K, V]) *node[K, V] {
	for h.left != nil {
		h = h.left
	}
	return h
}

func (t *Tree[K, V]) deleteMin(h *node[K, V]) *node[K, V] {
	if h.left == nil {
		t.release(h)
		return nil
	}
	if !isRed(h.left) && !isRed(h.left.left) {
		h = moveRedLeft(h)
	}
	h.left = t.deleteMin(h.left)
	return fixUp(h)
}

// DeleteMin removes and returns the smallest entry.
func (t *Tree[K, V]) DeleteMin() (key K, val V, ok bool) {
	if t.root == nil {
		return key, val, false
	}
	m := minNode(t.root)
	key, val, ok = m.key, m.val, true
	if !isRed(t.root.left) && !isRed(t.root.right) {
		t.root.red = true
	}
	t.root = t.deleteMin(t.root)
	if t.root != nil {
		t.root.red = false
	}
	t.size--
	return key, val, ok
}

// Delete removes key and reports whether it was present.
func (t *Tree[K, V]) Delete(key K) bool {
	if !t.Contains(key) {
		return false
	}
	if !isRed(t.root.left) && !isRed(t.root.right) {
		t.root.red = true
	}
	t.root = t.delete(t.root, key)
	if t.root != nil {
		t.root.red = false
	}
	t.size--
	return true
}

func (t *Tree[K, V]) delete(h *node[K, V], key K) *node[K, V] {
	if t.less(key, h.key) {
		if !isRed(h.left) && !isRed(h.left.left) {
			h = moveRedLeft(h)
		}
		h.left = t.delete(h.left, key)
	} else {
		if isRed(h.left) {
			h = rotateRight(h)
		}
		if !t.less(h.key, key) && h.right == nil {
			t.release(h)
			return nil
		}
		if !isRed(h.right) && !isRed(h.right.left) {
			h = moveRedRight(h)
		}
		if !t.less(h.key, key) && !t.less(key, h.key) {
			m := minNode(h.right)
			h.key, h.val = m.key, m.val
			h.right = t.deleteMin(h.right)
		} else {
			h.right = t.delete(h.right, key)
		}
	}
	return fixUp(h)
}

// Reset removes every entry, releasing all nodes into the internal free
// list so a subsequent refill of similar size does not allocate. Values
// held by the tree are zeroed (as release does), so they do not pin
// garbage while parked on the free list.
func (t *Tree[K, V]) Reset() {
	t.resetSubtree(t.root)
	t.root = nil
	t.size = 0
}

func (t *Tree[K, V]) resetSubtree(n *node[K, V]) {
	if n == nil {
		return
	}
	t.resetSubtree(n.left)
	t.resetSubtree(n.right)
	t.release(n)
}

// Ascend visits entries in increasing key order starting from the smallest
// key >= from (or the minimum if from is nil), until fn returns false.
func (t *Tree[K, V]) Ascend(from *K, fn func(key K, val V) bool) {
	t.ascend(t.root, from, fn)
}

func (t *Tree[K, V]) ascend(n *node[K, V], from *K, fn func(K, V) bool) bool {
	if n == nil {
		return true
	}
	if from == nil || t.less(*from, n.key) {
		if !t.ascend(n.left, from, fn) {
			return false
		}
	}
	if from == nil || !t.less(n.key, *from) {
		if !fn(n.key, n.val) {
			return false
		}
	}
	return t.ascend(n.right, from, fn)
}

// Descend visits entries in decreasing key order starting from the largest
// key <= from (or the maximum if from is nil), until fn returns false.
func (t *Tree[K, V]) Descend(from *K, fn func(key K, val V) bool) {
	t.descend(t.root, from, fn)
}

func (t *Tree[K, V]) descend(n *node[K, V], from *K, fn func(K, V) bool) bool {
	if n == nil {
		return true
	}
	if from == nil || t.less(n.key, *from) {
		if !t.descend(n.right, from, fn) {
			return false
		}
	}
	if from == nil || !t.less(*from, n.key) {
		if !fn(n.key, n.val) {
			return false
		}
	}
	return t.descend(n.left, from, fn)
}

// checkInvariants validates red-black and BST properties; used by tests.
func (t *Tree[K, V]) checkInvariants() error {
	_, err := check(t.root, t.less, false)
	return err
}

type invariantError string

func (e invariantError) Error() string { return string(e) }

func check[K, V any](n *node[K, V], less func(a, b K) bool, parentRed bool) (blackHeight int, err error) {
	if n == nil {
		return 1, nil
	}
	if n.red && parentRed {
		return 0, invariantError("red node with red parent")
	}
	if isRed(n.right) {
		return 0, invariantError("right-leaning red link")
	}
	if n.left != nil && !less(n.left.key, n.key) {
		return 0, invariantError("BST order violated on left")
	}
	if n.right != nil && !less(n.key, n.right.key) {
		return 0, invariantError("BST order violated on right")
	}
	lh, err := check(n.left, less, n.red)
	if err != nil {
		return 0, err
	}
	rh, err := check(n.right, less, n.red)
	if err != nil {
		return 0, err
	}
	if lh != rh {
		return 0, invariantError("unequal black heights")
	}
	if !n.red {
		lh++
	}
	return lh, nil
}
