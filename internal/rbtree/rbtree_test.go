package rbtree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func intTree() *Tree[int, string] {
	return New[int, string](func(a, b int) bool { return a < b })
}

func TestEmptyTree(t *testing.T) {
	tr := intTree()
	if tr.Len() != 0 {
		t.Errorf("Len = %d", tr.Len())
	}
	if _, ok := tr.Get(1); ok {
		t.Error("Get on empty should fail")
	}
	if _, _, ok := tr.Min(); ok {
		t.Error("Min on empty should fail")
	}
	if _, _, ok := tr.Max(); ok {
		t.Error("Max on empty should fail")
	}
	if _, _, ok := tr.DeleteMin(); ok {
		t.Error("DeleteMin on empty should fail")
	}
	if tr.Delete(1) {
		t.Error("Delete on empty should report false")
	}
}

func TestSetGetDelete(t *testing.T) {
	tr := intTree()
	tr.Set(2, "two")
	tr.Set(1, "one")
	tr.Set(3, "three")
	tr.Set(2, "TWO") // replace
	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tr.Len())
	}
	if v, ok := tr.Get(2); !ok || v != "TWO" {
		t.Errorf("Get(2) = %q,%v", v, ok)
	}
	if !tr.Delete(2) {
		t.Error("Delete(2) should succeed")
	}
	if tr.Contains(2) {
		t.Error("2 still present after delete")
	}
	if tr.Len() != 2 {
		t.Errorf("Len = %d, want 2", tr.Len())
	}
}

func TestMinMaxFloorCeiling(t *testing.T) {
	tr := intTree()
	for _, k := range []int{10, 20, 30, 40} {
		tr.Set(k, "")
	}
	if k, _, _ := tr.Min(); k != 10 {
		t.Errorf("Min = %d", k)
	}
	if k, _, _ := tr.Max(); k != 40 {
		t.Errorf("Max = %d", k)
	}
	cases := []struct {
		q, floor, ceil int
		fok, cok       bool
	}{
		{5, 0, 10, false, true},
		{10, 10, 10, true, true},
		{25, 20, 30, true, true},
		{40, 40, 40, true, true},
		{45, 40, 0, true, false},
	}
	for _, c := range cases {
		if k, _, ok := tr.Floor(c.q); ok != c.fok || (ok && k != c.floor) {
			t.Errorf("Floor(%d) = %d,%v, want %d,%v", c.q, k, ok, c.floor, c.fok)
		}
		if k, _, ok := tr.Ceiling(c.q); ok != c.cok || (ok && k != c.ceil) {
			t.Errorf("Ceiling(%d) = %d,%v, want %d,%v", c.q, k, ok, c.ceil, c.cok)
		}
	}
}

func TestAscendDescend(t *testing.T) {
	tr := intTree()
	for _, k := range []int{5, 1, 4, 2, 3} {
		tr.Set(k, "")
	}
	var got []int
	tr.Ascend(nil, func(k int, _ string) bool { got = append(got, k); return true })
	want := []int{1, 2, 3, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("Ascend = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ascend = %v, want %v", got, want)
		}
	}

	got = got[:0]
	from := 3
	tr.Ascend(&from, func(k int, _ string) bool { got = append(got, k); return true })
	if len(got) != 3 || got[0] != 3 || got[2] != 5 {
		t.Errorf("Ascend(from 3) = %v", got)
	}

	got = got[:0]
	tr.Descend(nil, func(k int, _ string) bool { got = append(got, k); return true })
	if len(got) != 5 || got[0] != 5 || got[4] != 1 {
		t.Errorf("Descend = %v", got)
	}

	got = got[:0]
	tr.Descend(&from, func(k int, _ string) bool { got = append(got, k); return true })
	if len(got) != 3 || got[0] != 3 || got[2] != 1 {
		t.Errorf("Descend(from 3) = %v", got)
	}

	// Early termination.
	n := 0
	tr.Ascend(nil, func(int, string) bool { n++; return n < 2 })
	if n != 2 {
		t.Errorf("early-stop visited %d", n)
	}
}

func TestDeleteMinDrains(t *testing.T) {
	tr := intTree()
	for i := 20; i >= 1; i-- {
		tr.Set(i, "")
	}
	for i := 1; i <= 20; i++ {
		k, _, ok := tr.DeleteMin()
		if !ok || k != i {
			t.Fatalf("DeleteMin #%d = %d,%v", i, k, ok)
		}
		if err := tr.checkInvariants(); err != nil {
			t.Fatalf("after DeleteMin(%d): %v", i, err)
		}
	}
	if tr.Len() != 0 {
		t.Errorf("Len = %d after draining", tr.Len())
	}
}

// TestRandomAgainstModel drives the tree with random operations and checks
// every result against a plain map + sort model, verifying red-black
// invariants as it goes.
func TestRandomAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tr := intTree()
	model := map[int]string{}
	const ops = 5000
	for i := 0; i < ops; i++ {
		k := rng.Intn(200)
		switch rng.Intn(3) {
		case 0:
			v := string(rune('a' + rng.Intn(26)))
			tr.Set(k, v)
			model[k] = v
		case 1:
			got := tr.Delete(k)
			_, want := model[k]
			if got != want {
				t.Fatalf("op %d: Delete(%d) = %v, want %v", i, k, got, want)
			}
			delete(model, k)
		case 2:
			gv, gok := tr.Get(k)
			wv, wok := model[k]
			if gok != wok || gv != wv {
				t.Fatalf("op %d: Get(%d) = %q,%v, want %q,%v", i, k, gv, gok, wv, wok)
			}
		}
		if tr.Len() != len(model) {
			t.Fatalf("op %d: Len = %d, want %d", i, tr.Len(), len(model))
		}
		if i%97 == 0 {
			if err := tr.checkInvariants(); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
		}
	}
	// Final full-order comparison.
	keys := make([]int, 0, len(model))
	for k := range model {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var got []int
	tr.Ascend(nil, func(k int, _ string) bool { got = append(got, k); return true })
	if len(got) != len(keys) {
		t.Fatalf("iteration count %d, want %d", len(got), len(keys))
	}
	for i := range keys {
		if got[i] != keys[i] {
			t.Fatalf("order mismatch at %d: %d vs %d", i, got[i], keys[i])
		}
	}
}

// TestQuickSortedIteration is a property test: for any insertion sequence,
// ascending iteration yields the sorted, de-duplicated keys.
func TestQuickSortedIteration(t *testing.T) {
	f := func(keys []int16) bool {
		tr := intTree()
		uniq := map[int]bool{}
		for _, k := range keys {
			tr.Set(int(k), "")
			uniq[int(k)] = true
		}
		if tr.Len() != len(uniq) {
			return false
		}
		if err := tr.checkInvariants(); err != nil {
			return false
		}
		prev, first := 0, true
		ok := true
		tr.Ascend(nil, func(k int, _ string) bool {
			if !first && k <= prev {
				ok = false
				return false
			}
			prev, first = k, false
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDeleteAll property: inserting then deleting every key leaves an
// empty, valid tree.
func TestQuickDeleteAll(t *testing.T) {
	f := func(keys []uint8) bool {
		tr := intTree()
		for _, k := range keys {
			tr.Set(int(k), "v")
		}
		for _, k := range keys {
			tr.Delete(int(k))
			if err := tr.checkInvariants(); err != nil {
				return false
			}
		}
		return tr.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTreeSet(b *testing.B) {
	tr := intTree()
	for i := 0; i < b.N; i++ {
		tr.Set(i&0xffff, "")
	}
}

func BenchmarkTreeGet(b *testing.B) {
	tr := intTree()
	for i := 0; i < 1<<16; i++ {
		tr.Set(i, "")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(i & 0xffff)
	}
}

// TestNodeRecycling: once a tree has reached its high-water mark, a
// delete/insert churn allocates nothing — deleted nodes come back from
// the free list.
func TestNodeRecycling(t *testing.T) {
	tr := New[int, *int](func(a, b int) bool { return a < b })
	v := new(int)
	for i := 0; i < 64; i++ {
		tr.Set(i, v)
	}
	allocs := testing.AllocsPerRun(100, func() {
		tr.Delete(17)
		tr.Set(17, v)
		k, _, _ := tr.DeleteMin()
		tr.Set(k, v)
	})
	if allocs != 0 {
		t.Errorf("steady-state churn allocated %.1f per run, want 0", allocs)
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 64 {
		t.Fatalf("Len = %d", tr.Len())
	}
}
