package cowfs

import (
	"math/bits"

	"duet/internal/bitmap"
	"duet/internal/rbtree"
)

// freeIndex is the two-level free-space index: address-ordered free runs
// in a red-black tree (start -> length, supporting the neighbour lookups
// merging and carving need) plus a size-bucketed lookup — one sparse
// bitmap of run starts per power-of-two length class, in the style of
// cubefs's bitmap allocators. A first-fit query probes at most one bit
// per class instead of walking the address-ordered list, so allocation
// is O(log n) in the number of free runs while returning exactly the
// run the address-ordered first-fit scan would have picked — the
// fragmentation dynamics the defragmentation experiments measure are
// unchanged.
//
// Invariants (checked by FS.CheckInvariants):
//   - runs are disjoint and never adjacent (insertFree merges);
//   - a run [s, s+l) appears in buckets[sizeClass(l)] under key s and in
//     no other bucket;
//   - the sum of run lengths equals FS.freeBlocks.
type freeIndex struct {
	runs    *rbtree.Tree[int64, int64] // start -> length
	buckets [64]*bitmap.Sparse         // sizeClass -> set of run starts
}

// sizeClass buckets run length l >= 1 as floor(log2(l)): class c holds
// lengths in [2^c, 2^(c+1)).
func sizeClass(l int64) int { return bits.Len64(uint64(l)) - 1 }

func newFreeIndex() *freeIndex {
	fi := &freeIndex{
		runs: rbtree.New[int64, int64](func(a, b int64) bool { return a < b }),
	}
	for c := range fi.buckets {
		fi.buckets[c] = bitmap.New()
	}
	return fi
}

// add records a free run. The caller guarantees it does not overlap or
// touch an existing run (FS.insertFree merges first).
func (fi *freeIndex) add(start, length int64) {
	fi.runs.Set(start, length)
	fi.buckets[sizeClass(length)].Set(uint64(start))
}

// remove drops the run that starts at start with the given length.
func (fi *freeIndex) remove(start, length int64) {
	fi.runs.Delete(start)
	fi.buckets[sizeClass(length)].Unset(uint64(start))
}

// findFit returns the lowest-addressed run with start in [lo, hi) and
// length >= n — the run address-ordered first-fit would choose. Classes
// above n's own are probed with a single NextSet each (any of their runs
// fits); within n's own class, shorter runs are skipped until the probe
// passes the best higher-class candidate.
func (fi *freeIndex) findFit(n, lo, hi int64) (at, avail int64, ok bool) {
	c0 := sizeClass(n)
	best := int64(-1)
	for c := c0 + 1; c < 64; c++ {
		b := fi.buckets[c]
		if b.Count() == 0 {
			continue
		}
		if s, found := b.NextSet(uint64(lo)); found && int64(s) < hi && (best < 0 || int64(s) < best) {
			best = int64(s)
		}
	}
	if b := fi.buckets[c0]; b.Count() > 0 {
		s, found := b.NextSet(uint64(lo))
		for found && int64(s) < hi && (best < 0 || int64(s) < best) {
			if l, _ := fi.runs.Get(int64(s)); l >= n {
				best = int64(s)
				break
			}
			s, found = b.NextSet(s + 1)
		}
	}
	if best < 0 {
		return 0, 0, false
	}
	l, _ := fi.runs.Get(best)
	return best, l, true
}

// FreeBucketStat describes one size class of the free-space index.
type FreeBucketStat struct {
	Class  int   // runs of length in [2^Class, 2^(Class+1))
	Runs   int   // number of free runs in the class
	Blocks int64 // total free blocks held by those runs
}

// FreeSpaceBuckets returns the occupancy of every non-empty size class,
// in ascending class order (cmd/fsinspect renders this so layout
// regressions show up without a full experiment run).
func (fs *FS) FreeSpaceBuckets() []FreeBucketStat {
	var out []FreeBucketStat
	for c, b := range fs.free.buckets {
		if b.Count() == 0 {
			continue
		}
		st := FreeBucketStat{Class: c, Runs: int(b.Count())}
		b.IterateSet(func(s uint64) bool {
			l, _ := fs.free.runs.Get(int64(s))
			st.Blocks += l
			return true
		})
		out = append(out, st)
	}
	return out
}

// FreeRuns returns the number of free runs (extents) in the index.
func (fs *FS) FreeRuns() int { return fs.free.runs.Len() }
