package cowfs

import "fmt"

// CheckInvariants is a debug walk over the filesystem's accounting
// structures. It cross-checks three independent views of every device
// block — the inode extent maps (live trees and snapshots), the per-block
// reference counts, and the two-level free-space index — so a leaked,
// double-freed, or double-allocated block cannot hide. Tests call it
// after mutating sequences; it is O(blocks + extents) and allocates, so
// it must never run on a simulation hot path.
func (fs *FS) CheckInvariants() error {
	nb := fs.disk.Blocks()
	want := make([]int32, nb)

	// Pass 1: accumulate expected refcounts from every inode's extents,
	// checking per-inode extent invariants along the way.
	for ino, i := range fs.inodes {
		if i.Dir {
			if len(i.Extents) != 0 {
				return fmt.Errorf("cowfs: directory inode %d has extents", ino)
			}
			continue
		}
		prevEnd := int64(-1)
		for k, e := range i.Extents {
			if e.Len <= 0 {
				return fmt.Errorf("cowfs: inode %d extent %d has non-positive length %d", ino, k, e.Len)
			}
			if e.Logical < prevEnd {
				return fmt.Errorf("cowfs: inode %d extent %d overlaps or is unsorted (logical %d, previous end %d)",
					ino, k, e.Logical, prevEnd)
			}
			prevEnd = e.Logical + e.Len
			if e.Phys < 0 || e.Phys+e.Len > nb {
				return fmt.Errorf("cowfs: inode %d extent %d outside device: phys [%d, %d)", ino, k, e.Phys, e.Phys+e.Len)
			}
			for b := e.Phys; b < e.Phys+e.Len; b++ {
				want[b]++
			}
		}
		if prevEnd > i.SizePg {
			return fmt.Errorf("cowfs: inode %d extents extend to page %d beyond size %d", ino, prevEnd, i.SizePg)
		}
	}

	// Pass 2: refcounts must match the extent walk exactly — a higher
	// stored count is a leak, a lower one a double-free in waiting.
	for b := int64(0); b < nb; b++ {
		if fs.refs[b] != want[b] {
			return fmt.Errorf("cowfs: block %d refcount %d, but %d extent references found", b, fs.refs[b], want[b])
		}
	}

	// Pass 3: the free index must cover exactly the zero-ref blocks, with
	// merged (non-adjacent) runs each filed under its size class.
	var freeTotal int64
	prevEnd := int64(-1)
	bad := error(nil)
	fs.free.runs.Ascend(nil, func(s, l int64) bool {
		if l <= 0 {
			bad = fmt.Errorf("cowfs: free run [%d, %d) has non-positive length", s, s+l)
			return false
		}
		if s <= prevEnd {
			bad = fmt.Errorf("cowfs: free run at %d overlaps or touches previous run ending at %d (unmerged)", s, prevEnd)
			return false
		}
		if s+l > nb {
			bad = fmt.Errorf("cowfs: free run [%d, %d) outside device", s, s+l)
			return false
		}
		for b := s; b < s+l; b++ {
			if fs.refs[b] != 0 {
				bad = fmt.Errorf("cowfs: block %d is free-listed but has refcount %d", b, fs.refs[b])
				return false
			}
		}
		if !fs.free.buckets[sizeClass(l)].Test(uint64(s)) {
			bad = fmt.Errorf("cowfs: free run [%d, %d) missing from size-class bucket %d", s, s+l, sizeClass(l))
			return false
		}
		freeTotal += l
		prevEnd = s + l - 1
		return true
	})
	if bad != nil {
		return bad
	}
	if freeTotal != fs.freeBlocks {
		return fmt.Errorf("cowfs: free runs hold %d blocks but freeBlocks is %d", freeTotal, fs.freeBlocks)
	}
	// Deferred frees (durability mode) are zero-ref blocks deliberately
	// withheld from the index: each must be unique, unreferenced, and not
	// also free-listed.
	deferred := make(map[int64]bool, len(fs.deferredFree))
	for _, b := range fs.deferredFree {
		if deferred[b] {
			return fmt.Errorf("cowfs: block %d deferred-freed twice", b)
		}
		deferred[b] = true
		if fs.refs[b] != 0 {
			return fmt.Errorf("cowfs: deferred-free block %d has refcount %d", b, fs.refs[b])
		}
		if s, l, ok := fs.free.runs.Floor(b); ok && b < s+l {
			return fmt.Errorf("cowfs: block %d both deferred and free-listed", b)
		}
	}
	var zeroRef int64
	for b := int64(0); b < nb; b++ {
		if fs.refs[b] == 0 {
			zeroRef++
		}
	}
	if zeroRef != freeTotal+int64(len(fs.deferredFree)) {
		return fmt.Errorf("cowfs: %d blocks have refcount 0 but free runs hold %d and %d are deferred (leak or double-free)",
			zeroRef, freeTotal, len(fs.deferredFree))
	}

	// Pass 4: no stale size-class bucket entries — every bucket bit must
	// correspond to a live run of that class.
	var bucketRuns int
	for c, bkt := range fs.free.buckets {
		c := c
		bucketRuns += int(bkt.Count())
		bkt.IterateSet(func(s uint64) bool {
			l, ok := fs.free.runs.Get(int64(s))
			if !ok {
				bad = fmt.Errorf("cowfs: bucket %d holds start %d with no matching free run", c, s)
				return false
			}
			if sizeClass(l) != c {
				bad = fmt.Errorf("cowfs: run [%d, %d) filed under class %d, expected %d", s, int64(s)+l, c, sizeClass(l))
				return false
			}
			return true
		})
		if bad != nil {
			return bad
		}
	}
	if bucketRuns != fs.free.runs.Len() {
		return fmt.Errorf("cowfs: %d bucket entries for %d free runs", bucketRuns, fs.free.runs.Len())
	}
	return nil
}
