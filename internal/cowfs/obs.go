package cowfs

import (
	"duet/internal/obs"
)

// Observability (internal/obs). The filesystem's read/write paths are
// covered by the device tracks; what cowfs adds is the durability
// barrier: each successful Commit becomes one virtual-time slice on the
// filesystem's track, so snapshot/commit stalls are visible next to the
// I/O that caused them. Cumulative Stats are absorbed by PublishMetrics.

// fsObs holds the pre-resolved instruments; nil on fs.obs disables
// everything.
type fsObs struct {
	tr  *obs.Tracer
	tid int32
}

// EnableObs attaches observability to the filesystem. Call once at
// machine assembly, before the simulation runs.
func (fs *FS) EnableObs(o *obs.Obs) {
	if o == nil || o.Trace == nil {
		return
	}
	fs.obs = &fsObs{tr: o.Trace, tid: o.Trace.Track("cowfs")}
}

// PublishMetrics absorbs the filesystem's cumulative counters into the
// registry under "cowfs.*". Safe to call repeatedly; values are
// absolute so re-absorption cannot double-count.
func (fs *FS) PublishMetrics(r *obs.Registry) {
	if r == nil {
		return
	}
	s := &fs.stats
	r.SetCounter("cowfs.reads_pages", s.ReadsPages)
	r.SetCounter("cowfs.miss_pages", s.MissPages)
	r.SetCounter("cowfs.writes_pages", s.WritesPages)
	r.SetCounter("cowfs.writeback_pages", s.WritebackPages)
	r.SetCounter("cowfs.writeback_errors", s.WritebackErrors)
	r.SetCounter("cowfs.corruptions", s.Corruptions)
	r.SetCounter("cowfs.scrub_errors", s.ScrubErrors)
	r.SetCounter("cowfs.cow_reallocation", s.CowReallocation)
	r.SetCounter("cowfs.commits", s.Commits)
	r.Gauge("cowfs.free_blocks").Set(fs.freeBlocks)
}
