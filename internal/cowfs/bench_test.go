package cowfs

import (
	"math/rand"
	"testing"

	"duet/internal/sim"
	"duet/internal/storage"
)

// cowCycle pushes one file through the full data path: COW overwrite
// (splice out old extents, allocate new ones), writeback, cache drop,
// and a device read of everything back. Steady state must not allocate:
// run buffers, miss staging, writeback staging, free-index nodes, and
// bitmap chunks all recycle through their pools.
func cowCycle(p *sim.Proc, v *env, ino Ino) {
	const pages = 32
	if err := v.fs.Write(p, ino, 0, pages); err != nil {
		panic(err)
	}
	if err := v.cache.SyncFile(p, v.fs.ID(), uint64(ino)); err != nil {
		panic(err)
	}
	v.cache.RemoveFile(v.fs.ID(), uint64(ino))
	if _, err := v.fs.ReadCount(p, ino, 0, pages, storage.ClassNormal, "bench"); err != nil {
		panic(err)
	}
	v.cache.RemoveFile(v.fs.ID(), uint64(ino))
}

// BenchmarkWriteOverwriteRead measures the write → writeback → read
// cycle that dominates every cowfs experiment.
func BenchmarkWriteOverwriteRead(b *testing.B) {
	v := newEnv(4096)
	f, err := v.fs.Create("/f")
	if err != nil {
		b.Fatal(err)
	}
	v.e.Go("bench", func(p *sim.Proc) {
		defer v.e.Stop()
		for i := 0; i < 64; i++ {
			cowCycle(p, v, f.Ino)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cowCycle(p, v, f.Ino)
		}
	})
	if err := v.e.Run(); err != nil {
		b.Fatal(err)
	}
}

// churn allocates a multi-block region at a random hint and frees it
// block by block, exercising findFit, carve, and the merge paths of the
// two-level free index under fragmentation.
func churn(fs *FS, rng *rand.Rand, rb *runBuf) {
	runs, err := fs.allocate(7, rng.Int63n(testBlocks), rb.runs[:0])
	if err != nil {
		panic(err)
	}
	rb.runs = runs
	for _, r := range runs {
		for blk := r.phys; blk < r.phys+r.len; blk++ {
			fs.deref(blk)
		}
	}
}

// BenchmarkAllocateFreeChurn measures raw free-space index throughput:
// allocate at a random hint, free block-by-block (worst case for run
// merging). Node and chunk pools must make this allocation-free.
func BenchmarkAllocateFreeChurn(b *testing.B) {
	v := newEnv(64)
	rng := rand.New(rand.NewSource(1))
	rb := v.fs.getRunBuf()
	for i := 0; i < 2048; i++ {
		churn(v.fs, rng, rb)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		churn(v.fs, rng, rb)
	}
}

// TestCowHotPathAllocFree is the CI regression gate for the paths above:
// zero allocations per operation once pools are warm (see
// .github/workflows/ci.yml).
func TestCowHotPathAllocFree(t *testing.T) {
	t.Run("write-sync-read", func(t *testing.T) {
		v := newEnv(4096)
		f, err := v.fs.Create("/f")
		if err != nil {
			t.Fatal(err)
		}
		var avg float64
		v.e.Go("alloc-test", func(p *sim.Proc) {
			defer v.e.Stop()
			for i := 0; i < 64; i++ {
				cowCycle(p, v, f.Ino)
			}
			avg = testing.AllocsPerRun(100, func() {
				cowCycle(p, v, f.Ino)
			})
		})
		if err := v.e.Run(); err != nil {
			t.Fatal(err)
		}
		if avg != 0 {
			t.Errorf("write/sync/read cycle allocates %.1f allocs/op, want 0", avg)
		}
		if err := v.fs.CheckInvariants(); err != nil {
			t.Error(err)
		}
	})
	t.Run("allocate-free", func(t *testing.T) {
		v := newEnv(64)
		rng := rand.New(rand.NewSource(1))
		rb := v.fs.getRunBuf()
		for i := 0; i < 2048; i++ {
			churn(v.fs, rng, rb)
		}
		avg := testing.AllocsPerRun(200, func() {
			churn(v.fs, rng, rb)
		})
		if avg != 0 {
			t.Errorf("allocate/free churn allocates %.1f allocs/op, want 0", avg)
		}
		if err := v.fs.CheckInvariants(); err != nil {
			t.Error(err)
		}
	})
}
