package cowfs

import (
	"math/rand"
	"testing"
)

// The extent index is exercised against a naive reference model: a
// per-page map from logical page to (phys, gen). After every operation
// the real index and the model must describe exactly the same mapping,
// and the index must uphold its structural invariants — sorted by
// Logical, non-overlapping, positive lengths, and no adjacent pair left
// unmerged that insertExtent's merge rule would have combined.

type pageRef struct {
	phys int64
	gen  uint64
}

type extentModel struct {
	exts  []Extent
	pages map[int64]pageRef
	freed []blkRange
	gen   uint64
}

func newExtentModel() *extentModel {
	return &extentModel{pages: map[int64]pageRef{}}
}

// splice removes [lo, hi) from both the index and the model, verifying
// that the freed physical ranges are exactly the model's pages for that
// range, in logical order.
func (m *extentModel) splice(t *testing.T, lo, hi int64) {
	t.Helper()
	var want []int64
	for idx := lo; idx < hi; idx++ {
		if p, ok := m.pages[idx]; ok {
			want = append(want, p.phys)
			delete(m.pages, idx)
		}
	}
	m.freed = m.freed[:0]
	m.exts, m.freed = spliceExtents(m.exts, lo, hi, m.freed)
	var got []int64
	for _, r := range m.freed {
		for b := r.phys; b < r.phys+r.n; b++ {
			got = append(got, b)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("splice [%d,%d): freed %d blocks, model expected %d", lo, hi, len(got), len(want))
	}
	for k := range got {
		if got[k] != want[k] {
			t.Fatalf("splice [%d,%d): freed block %d is %d, model expected %d", lo, hi, k, got[k], want[k])
		}
	}
}

// insert splices the target range out (as Write does) and inserts a new
// extent with a fresh generation.
func (m *extentModel) insert(t *testing.T, lo, n, phys int64) {
	t.Helper()
	m.splice(t, lo, lo+n)
	m.gen++
	m.exts = insertExtent(m.exts, Extent{Logical: lo, Phys: phys, Len: n, Gen: m.gen})
	for k := int64(0); k < n; k++ {
		m.pages[lo+k] = pageRef{phys: phys + k, gen: m.gen}
	}
}

// check cross-validates the index against the model.
func (m *extentModel) check(t *testing.T) {
	t.Helper()
	var covered int64
	for k, e := range m.exts {
		if e.Len <= 0 {
			t.Fatalf("extent %d has non-positive length %d", k, e.Len)
		}
		if k > 0 {
			prev := m.exts[k-1]
			if e.Logical < prev.Logical+prev.Len {
				t.Fatalf("extent %d at logical %d overlaps previous ending at %d",
					k, e.Logical, prev.Logical+prev.Len)
			}
			if prev.Logical+prev.Len == e.Logical && prev.Phys+prev.Len == e.Phys && prev.Gen == e.Gen {
				t.Fatalf("extents %d and %d are mergeable but unmerged at logical %d", k-1, k, e.Logical)
			}
		}
		for i := int64(0); i < e.Len; i++ {
			idx := e.Logical + i
			p, ok := m.pages[idx]
			if !ok {
				t.Fatalf("extent %d covers page %d not in model", k, idx)
			}
			if p.phys != e.Phys+i || p.gen != e.Gen {
				t.Fatalf("page %d: index says (phys %d, gen %d), model says (phys %d, gen %d)",
					idx, e.Phys+i, e.Gen, p.phys, p.gen)
			}
		}
		covered += e.Len
	}
	if covered != int64(len(m.pages)) {
		t.Fatalf("index covers %d pages, model holds %d", covered, len(m.pages))
	}
	// Spot-check the lookup path agrees too.
	for idx, p := range m.pages {
		e, ok := findExtent(m.exts, idx)
		if !ok {
			t.Fatalf("findExtent misses page %d", idx)
		}
		if e.Phys+(idx-e.Logical) != p.phys {
			t.Fatalf("findExtent(%d) resolves to phys %d, model says %d",
				idx, e.Phys+(idx-e.Logical), p.phys)
		}
	}
}

// step decodes one operation from four fuzz bytes. Physical placements
// are spread by a counter so distinct inserts never collide.
func (m *extentModel) step(t *testing.T, op [4]byte, seq int64) {
	lo := int64(op[1])
	n := int64(op[2])%32 + 1
	switch op[0] % 3 {
	case 0, 1:
		m.insert(t, lo, n, 1000*seq)
	case 2:
		m.splice(t, lo, lo+n)
	}
	m.check(t)
}

func FuzzExtentIndex(f *testing.F) {
	f.Add([]byte{0, 10, 8, 0, 2, 12, 4, 0, 0, 5, 20, 0})
	f.Add([]byte{1, 0, 31, 0, 1, 16, 31, 0, 2, 8, 31, 0, 0, 4, 2, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		m := newExtentModel()
		for i := 0; i+4 <= len(data); i += 4 {
			m.step(t, [4]byte(data[i:i+4]), int64(i/4)+1)
		}
	})
}

// TestExtentIndexModel drives the same model with seeded random walks so
// plain `go test` covers the property without the fuzz engine.
func TestExtentIndexModel(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		m := newExtentModel()
		for i := 0; i < 500; i++ {
			op := [4]byte{byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)), 0}
			m.step(t, op, int64(seed*1000+int64(i))+1)
		}
	}
}
