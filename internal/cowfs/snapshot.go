package cowfs

import (
	"fmt"

	"duet/internal/sim"
	"duet/internal/storage"
)

// Snapshots. A snapshot clones a directory subtree into a new, read-only
// set of inodes whose extents share blocks with the live tree through
// reference counts. When the live tree overwrites a page, copy-on-write
// gives the live file new blocks and the snapshot keeps the old ones —
// the sharing break the backup experiments revolve around (§5.2, §6.2).

// Snapshot describes a created snapshot.
type Snapshot struct {
	Name    string
	Root    Ino    // root directory of the snapshot subtree
	Gen     uint64 // filesystem generation at creation
	FromIno Ino    // the live directory that was snapshotted
	// LiveToSnap maps live inode numbers to their snapshot counterparts
	// at creation time.
	LiveToSnap map[Ino]Ino
	// Blocks is the number of file-data blocks referenced by the snapshot.
	Blocks int64
}

// CreateSnapshot clones the subtree at srcPath to dstPath. Dirty pages of
// the source are written back first so the snapshot is consistent, as
// Btrfs commits before snapshotting. The returned Snapshot records the
// live-to-snapshot inode mapping used by the backup task.
func (fs *FS) CreateSnapshot(p *sim.Proc, srcPath, dstPath string) (*Snapshot, error) {
	src, err := fs.Lookup(srcPath)
	if err != nil {
		return nil, err
	}
	if !src.Dir {
		return nil, fmt.Errorf("%w: %s", ErrNotDir, srcPath)
	}
	// Commit: flush the subtree's dirty pages so the medium matches the
	// versions the snapshot captures.
	for _, f := range fs.FilesUnder(src.Ino) {
		if err := fs.cache.SyncFile(p, fs.id, uint64(f.Ino)); err != nil {
			return nil, fmt.Errorf("cowfs: snapshot commit: %w", err)
		}
	}

	dst, err := fs.create(dstPath, true)
	if err != nil {
		return nil, err
	}
	fs.gen++
	snap := &Snapshot{
		Name:       dstPath,
		Root:       dst.Ino,
		Gen:        fs.gen,
		FromIno:    src.Ino,
		LiveToSnap: make(map[Ino]Ino),
	}
	var clone func(liveDir, snapDir *Inode)
	clone = func(liveDir, snapDir *Inode) {
		for _, c := range fs.ChildrenSorted(liveDir) {
			n := fs.newInode(c.Name, snapDir.Ino, c.Dir)
			fs.dirAdd(snapDir, c.Name, n.Ino)
			snap.LiveToSnap[c.Ino] = n.Ino
			if c.Dir {
				clone(c, n)
				continue
			}
			n.SizePg = c.SizePg
			n.Gen = c.Gen
			n.Extents = append([]Extent(nil), c.Extents...)
			n.PageVers = append([]uint64(nil), c.PageVers...)
			for _, e := range c.Extents {
				for b := e.Phys; b < e.Phys+e.Len; b++ {
					fs.ref(b)
				}
				snap.Blocks += e.Len
			}
		}
	}
	clone(src, dst)
	return snap, nil
}

// DeleteSnapshot removes a snapshot subtree, dropping its block
// references.
func (fs *FS) DeleteSnapshot(s *Snapshot) error {
	path, err := fs.PathOf(s.Root)
	if err != nil {
		return err
	}
	return fs.DeleteTree(path)
}

// SharedWithSnapshot reports whether the live file page still maps to the
// same physical block the snapshot references — i.e. the page has not
// been modified since the snapshot. This is the back-reference check the
// opportunistic backup performs before copying a cached page (§5.2).
func (fs *FS) SharedWithSnapshot(s *Snapshot, liveIno Ino, idx int64) bool {
	snapIno, ok := s.LiveToSnap[liveIno]
	if !ok {
		return false
	}
	lb, lok := fs.Fibmap(liveIno, idx)
	sb, sok := fs.Fibmap(snapIno, idx)
	return lok && sok && lb == sb
}

// --- defragmentation support ---------------------------------------------

// FragmentedExtents returns the number of extents of a file; 1 means
// fully contiguous.
func (fs *FS) FragmentedExtents(ino Ino) int {
	i, ok := fs.inodes[ino]
	if !ok || i.Dir {
		return 0
	}
	return len(i.Extents)
}

// DefragResult reports the I/O composition of one file defragmentation.
type DefragResult struct {
	PagesTotal   int64 // file size: every page is rewritten
	PagesRead    int64 // pages that required device reads (cache misses)
	AlreadyDirty int64 // pages the workload had dirtied anyway (their
	// writeback would have happened regardless, so the paper counts them
	// as write savings, §6.2)
}

// DefragFile rewrites a file into (ideally) a single contiguous extent:
// all pages are brought into memory (device reads for the misses), a new
// contiguous region is allocated, and the pages are dirtied so writeback
// lands them sequentially, as the in-kernel Btrfs defragmenter does
// (§5.3). The total I/O is reads for non-cached pages plus one write per
// page.
func (fs *FS) DefragFile(p *sim.Proc, ino Ino, class storage.Class, owner string) (DefragResult, error) {
	var res DefragResult
	i, ok := fs.inodes[ino]
	if !ok {
		return res, fmt.Errorf("%w: inode %d", ErrNotFound, ino)
	}
	if i.Dir {
		return res, fmt.Errorf("%w: inode %d", ErrIsDir, ino)
	}
	if i.SizePg == 0 {
		return res, nil
	}
	res.PagesTotal = i.SizePg
	// Count pages the workload had already dirtied.
	for idx := int64(0); idx < i.SizePg; idx++ {
		if pg, cached := fs.cache.Peek(fs.pageKey(ino, idx)); cached && pg.Dirty {
			res.AlreadyDirty++
		}
	}
	// Phase 1: bring every page into memory, counting the misses.
	missed, err := fs.ReadCount(p, ino, 0, i.SizePg, class, owner)
	if err != nil {
		return res, err
	}
	res.PagesRead = missed

	// Phase 2: relocate. Allocate a fresh contiguous region, retarget the
	// extent map, and dirty the pages (same content version — defrag does
	// not change data) so the flusher writes them out sequentially.
	fs.gen++
	i.Gen = fs.gen
	fs.spliceOut(i, 0, i.SizePg)
	rb := fs.getRunBuf()
	defer fs.putRunBuf(rb)
	runs, err := fs.allocate(i.SizePg, 0, rb.runs)
	rb.runs = runs
	if err != nil {
		return res, err
	}
	logical := int64(0)
	for _, r := range runs {
		i.Extents = insertExtent(i.Extents, Extent{Logical: logical, Phys: r.phys, Len: r.len, Gen: fs.gen})
		for k := int64(0); k < r.len; k++ {
			idx := logical + k
			ver := i.PageVers[idx]
			fs.csums[r.phys+k] = Checksum(ver)
			fs.rev[r.phys+k] = revEntry{ino: ino, idx: idx}
			key := fs.pageKey(ino, idx)
			pg, cached := fs.cache.Lookup(key)
			if !cached {
				pg = fs.cache.Insert(p, key, ver)
			}
			fs.cache.MarkDirty(pg, ver)
		}
		logical += r.len
	}
	fs.SetWritebackTag(ino, class, owner)
	return res, nil
}
