package cowfs

import (
	"math/rand"
	"testing"

	"duet/internal/sim"
	"duet/internal/storage"
)

// scrubClean verifies every allocated block's medium content against its
// checksum without device I/O — the post-recovery integrity sweep.
func scrubClean(t *testing.T, fs *FS) {
	t.Helper()
	for b, ok := fs.NextAllocated(0); ok; b, ok = fs.NextAllocated(b + 1) {
		if err := fs.CheckBlock(b); err != nil {
			t.Errorf("block %d: %v", b, err)
		}
	}
}

func TestCommitCrashRemountRoundTrip(t *testing.T) {
	v := newEnv(1024)
	rng := rand.New(rand.NewSource(7))
	if _, err := v.fs.MkdirAll("/data"); err != nil {
		t.Fatal(err)
	}
	a, err := v.fs.PopulateFile("/data/a", 32, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	v.fs.EnableDurability()

	var committedGen uint64
	v.in(t, func(p *sim.Proc) {
		// Committed write: must survive the crash.
		if err := v.fs.Write(p, a.Ino, 0, 8); err != nil {
			t.Fatal(err)
		}
		if err := v.fs.Commit(p); err != nil {
			t.Fatal(err)
		}
		committedGen = a.Gen
		// Uncommitted write and file: must roll back cleanly.
		if err := v.fs.Write(p, a.Ino, 16, 8); err != nil {
			t.Fatal(err)
		}
		if _, err := v.fs.PopulateFile("/data/b", 8, 1, rng); err != nil {
			t.Fatal(err)
		}
	})
	if v.fs.Stats().Commits != 1 {
		t.Fatalf("Commits = %d, want 1", v.fs.Stats().Commits)
	}

	img := v.fs.CrashImage()
	v2 := newEnv(1024)
	fs2, err := Remount(v2.e, 1, v2.disk, v2.cache, img)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	a2, err := fs2.Lookup("/data/a")
	if err != nil {
		t.Fatalf("committed file lost: %v", err)
	}
	if a2.Gen != committedGen {
		t.Errorf("recovered gen %d, want committed %d (uncommitted write leaked)", a2.Gen, committedGen)
	}
	if _, err := fs2.Lookup("/data/b"); err == nil {
		t.Error("uncommitted file resurrected after crash")
	}
	scrubClean(t, fs2)
	v2.e.Go("check", func(p *sim.Proc) {
		defer v2.e.Stop()
		if err := fs2.ReadFile(p, a2.Ino, storage.ClassNormal, "check"); err != nil {
			t.Errorf("read after recovery: %v", err)
		}
	})
	if err := v2.e.Run(); err != nil {
		t.Fatal(err)
	}
	if err := fs2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Checkpoint-referenced blocks must not be reallocated before the next
// commit: an uncommitted overwrite followed by a crash has to land on a
// medium where the old (committed) content is still intact.
func TestDeferredFreeProtectsCheckpoint(t *testing.T) {
	v := newEnv(1024)
	rng := rand.New(rand.NewSource(8))
	a, err := v.fs.PopulateFile("/a", 16, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	v.fs.EnableDurability()
	v.in(t, func(p *sim.Proc) {
		// COW overwrite of every page, flushed to the medium but never
		// committed. Without deferred frees the old blocks could be
		// reallocated and scribbled over.
		if err := v.fs.Write(p, a.Ino, 0, 16); err != nil {
			t.Fatal(err)
		}
		if err := v.cache.SyncFile(p, 1, uint64(a.Ino)); err != nil {
			t.Fatal(err)
		}
		if err := v.fs.Write(p, a.Ino, 0, 16); err != nil {
			t.Fatal(err)
		}
		if err := v.cache.SyncFile(p, 1, uint64(a.Ino)); err != nil {
			t.Fatal(err)
		}
	})
	img := v.fs.CrashImage()
	v2 := newEnv(1024)
	fs2, err := Remount(v2.e, 1, v2.disk, v2.cache, img)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	scrubClean(t, fs2) // the checkpointed blocks must verify
}

// failFirstWrite injects one permanent write fault, then goes quiet.
type failFirstWrite struct{ fired bool }

func (f *failFirstWrite) Evaluate(now sim.Time, r *storage.Request, attempt int) storage.FaultOutcome {
	if r.Write && !f.fired {
		f.fired = true
		return storage.FaultOutcome{Err: storage.ErrWriteFault}
	}
	return storage.FaultOutcome{}
}

// Commit must refuse to acknowledge state the medium cannot reproduce:
// while pages are quarantined it aborts, and succeeds again once the
// fault is repaired and the pages requeued and flushed.
func TestCommitAbortsOnQuarantine(t *testing.T) {
	v := newEnv(1024)
	rng := rand.New(rand.NewSource(9))
	a, err := v.fs.PopulateFile("/a", 8, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	v.fs.EnableDurability()
	v.disk.SetFaultInjector(&failFirstWrite{})
	v.in(t, func(p *sim.Proc) {
		if err := v.fs.Write(p, a.Ino, 0, 4); err != nil {
			t.Fatal(err)
		}
		if err := v.fs.Commit(p); err == nil {
			t.Fatal("commit acknowledged quarantined pages")
		}
		if v.cache.QuarantinedLen() == 0 {
			t.Fatal("no pages quarantined after permanent write fault")
		}
		// Repair: clear the injector, requeue, commit again.
		v.disk.SetFaultInjector(nil)
		for _, k := range v.cache.Quarantined(nil) {
			v.cache.Requeue(k)
		}
		if err := v.fs.Commit(p); err != nil {
			t.Fatalf("commit after repair: %v", err)
		}
	})
	if v.fs.Stats().Commits != 1 {
		t.Errorf("Commits = %d, want 1 (the aborted one must not count)", v.fs.Stats().Commits)
	}
}
