package cowfs

import (
	"fmt"
	"sort"

	"duet/internal/pagecache"
	"duet/internal/sim"
	"duet/internal/storage"
)

// Crash-consistent durability. A checkpoint is the COW transaction
// boundary: Commit flushes dirty data, snapshots the metadata of every
// fully-clean file, and only then releases blocks freed since the
// previous checkpoint back to the allocator. Deferring those frees is
// what makes the checkpoint crash-consistent — a block the last
// checkpoint references can never be reallocated (and therefore never
// overwritten) before the next checkpoint lands, exactly the rule
// Btrfs's transaction machinery enforces. A power cut at any instant
// then loses only unacknowledged (post-commit) updates: Remount
// rebuilds the filesystem from the checkpoint plus the untouched
// medium, and must pass CheckInvariants and a full checksum scrub.
//
// Durability is opt-in (EnableDurability): without it deref frees
// blocks immediately and behavior is bit-for-bit the historical one.

// cpFile is one file's committed metadata.
type cpFile struct {
	ino      Ino
	name     string
	parent   Ino
	dir      bool
	sizePg   int64
	gen      uint64
	extents  []Extent
	pageVers []uint64
	children map[string]Ino
}

// checkpoint is the durable metadata image.
type checkpoint struct {
	gen     uint64
	nextIno Ino
	nextVer uint64
	files   map[Ino]*cpFile
}

// snapshotFile deep-copies an inode's committed view.
func snapshotFile(i *Inode) *cpFile {
	f := &cpFile{
		ino:    i.Ino,
		name:   i.Name,
		parent: i.Parent,
		dir:    i.Dir,
		sizePg: i.SizePg,
		gen:    i.Gen,
	}
	f.extents = append(f.extents, i.Extents...)
	f.pageVers = append(f.pageVers, i.PageVers...)
	if i.Children != nil {
		f.children = make(map[string]Ino, len(i.Children))
		for n, c := range i.Children {
			f.children[n] = c
		}
	}
	return f
}

// EnableDurability arms checkpointing and deferred frees, taking the
// initial checkpoint from the current state (which the caller should
// have synced). Harness code (machine.Machine, the fault experiments)
// calls this before running faulty workloads; the fault-free
// experiments never do, so their allocation sequence is unchanged.
func (fs *FS) EnableDurability() {
	if fs.durable != nil {
		return
	}
	fs.durable = fs.takeCheckpoint()
}

// DurabilityEnabled reports whether the filesystem checkpoints.
func (fs *FS) DurabilityEnabled() bool { return fs.durable != nil }

// takeCheckpoint snapshots every file that is durably clean. Files with
// dirty (or quarantined) pages keep their previous committed entry:
// their old blocks are still intact on the medium because deferred
// frees have not released them.
func (fs *FS) takeCheckpoint() *checkpoint {
	cp := &checkpoint{
		gen:     fs.gen,
		nextIno: fs.nextIno,
		nextVer: fs.nextVer,
		files:   make(map[Ino]*cpFile, len(fs.inodes)),
	}
	for ino, i := range fs.inodes {
		if !i.Dir && fs.fileDirty(ino) {
			if fs.durable != nil {
				if old, ok := fs.durable.files[ino]; ok {
					cp.files[ino] = old // carry the last committed view
				}
			}
			continue
		}
		cp.files[ino] = snapshotFile(i)
	}
	return cp
}

// fileDirty reports whether any page of the file is dirty in cache
// (quarantined pages count: their data never reached the medium).
func (fs *FS) fileDirty(ino Ino) bool {
	dirty := false
	fs.cache.IterateFile(fs.id, uint64(ino), func(pg *pagecache.Page) bool {
		if pg.Dirty {
			dirty = true
			return false
		}
		return true
	})
	return dirty
}

// Commit is the durability barrier: flush everything, snapshot the
// metadata, release deferred frees that the new checkpoint no longer
// references, and charge the superblock write. Data is "acknowledged
// durable" if and only if a Commit returning nil happened after it was
// written. Commit fails (and acknowledges nothing new) while any of
// this filesystem's pages are quarantined — their data is in memory
// only, and checkpointing around them would acknowledge state the
// medium cannot reproduce.
func (fs *FS) Commit(p *sim.Proc) error {
	if fs.durable == nil {
		return fmt.Errorf("cowfs: Commit without EnableDurability")
	}
	var commitStart sim.Time
	if fs.obs != nil {
		commitStart = p.Now()
	}
	inos := make([]Ino, 0, len(fs.inodes))
	for ino, i := range fs.inodes {
		if !i.Dir {
			inos = append(inos, ino)
		}
	}
	sort.Slice(inos, func(a, b int) bool { return inos[a] < inos[b] })
	var firstErr error
	for _, ino := range inos {
		if err := fs.cache.SyncFile(p, fs.id, uint64(ino)); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if n := fs.quarantinedPages(); n > 0 {
		if firstErr == nil {
			firstErr = fmt.Errorf("cowfs: %d pages quarantined", n)
		}
		return fmt.Errorf("cowfs: commit aborted: %w", firstErr)
	}
	// Transient failures leave pages dirty; the checkpoint below simply
	// keeps those files' previous committed entries, so a sync error is
	// not fatal to the commit — it only narrows what gets acknowledged.
	cp := fs.takeCheckpoint()
	// Superblock/checkpoint-region write: the durability barrier costs a
	// device write like any real commit record.
	if err := fs.disk.Write(p, 0, 1, storage.ClassNormal, "commit"); err != nil {
		return fmt.Errorf("cowfs: checkpoint write: %w", err)
	}
	fs.durable = cp
	fs.drainDeferred()
	fs.stats.Commits++
	if st := fs.obs; st != nil {
		st.tr.Slice(st.tid, "cowfs", "commit", commitStart, p.Now())
	}
	return nil
}

// quarantinedPages counts quarantined pages belonging to this fs.
func (fs *FS) quarantinedPages() int {
	fs.quarScratch = fs.cache.Quarantined(fs.quarScratch[:0])
	n := 0
	for _, k := range fs.quarScratch {
		if k.FS == fs.id {
			n++
		}
	}
	return n
}

// deferFree parks a block whose refcount reached zero until the next
// commit. Its metadata (checksum, reverse map, corruption marker) stays
// intact: the last checkpoint may still reference it.
func (fs *FS) deferFree(b int64) {
	fs.deferredFree = append(fs.deferredFree, b)
}

// drainDeferred releases deferred blocks not referenced by the new
// checkpoint. Blocks a carried-over (dirty-file) checkpoint entry still
// points at remain deferred for another round.
func (fs *FS) drainDeferred() {
	if len(fs.deferredFree) == 0 {
		return
	}
	if fs.cpMark == nil {
		fs.cpMark = make([]bool, fs.disk.Blocks())
	}
	marked := fs.markScratch[:0]
	for _, f := range fs.durable.files {
		for _, e := range f.extents {
			for b := e.Phys; b < e.Phys+e.Len; b++ {
				if !fs.cpMark[b] {
					fs.cpMark[b] = true
					marked = append(marked, b)
				}
			}
		}
	}
	kept := fs.deferredFree[:0]
	for _, b := range fs.deferredFree {
		if fs.cpMark[b] {
			kept = append(kept, b)
			continue
		}
		fs.csums[b] = 0
		fs.rev[b] = revEntry{}
		fs.corrupt.Unset(uint64(b))
		fs.insertFree(b, 1)
		fs.freeBlocks++
	}
	fs.deferredFree = kept
	for _, b := range marked {
		fs.cpMark[b] = false
	}
	fs.markScratch = marked[:0]
}

// CrashImage is what survives a power cut: the last checkpoint (the
// durable metadata) and the medium (per-block content versions, silent
// corruption, grown bad blocks). Capture it after the engine stops;
// everything in memory — cache pages, in-flight writes, post-commit
// metadata — is gone by construction.
type CrashImage struct {
	cp        *checkpoint
	diskVer   []uint64
	corrupt   []uint64
	badBlocks []int64
}

// CrashImage captures the filesystem's durable state. The engine must
// be stopped: the image aliases the medium arrays of the dead instance.
func (fs *FS) CrashImage() *CrashImage {
	if fs.durable == nil {
		panic("cowfs: CrashImage without EnableDurability")
	}
	img := &CrashImage{
		cp:        fs.durable,
		diskVer:   fs.diskVer,
		badBlocks: fs.disk.BadBlocks(),
	}
	fs.corrupt.IterateSet(func(b uint64) bool {
		img.corrupt = append(img.corrupt, b)
		return true
	})
	return img
}

// Remount rebuilds a filesystem from a crash image on a fresh engine,
// disk, and cache — the recovery half of Crash()/Recover(). Refcounts,
// checksums, and the free index are reconstructed from the checkpoint's
// extent maps; the medium state is transplanted; injected bad blocks
// are re-injected on the new disk. The caller should then run
// CheckInvariants and a full checksum scrub (machine.Recover does).
func Remount(e sim.Host, id pagecache.FSID, disk *storage.Disk, cache *pagecache.Cache, img *CrashImage) (*FS, error) {
	nb := disk.Blocks()
	if int64(len(img.diskVer)) != nb {
		return nil, fmt.Errorf("cowfs: remount on %d-block device, image has %d", nb, len(img.diskVer))
	}
	fs := New(e, id, disk, cache)
	cp := img.cp
	fs.gen = cp.gen + 1 // remount starts a new generation
	fs.nextIno = cp.nextIno
	fs.nextVer = cp.nextVer

	inos := make([]Ino, 0, len(cp.files))
	for ino := range cp.files {
		inos = append(inos, ino)
	}
	sort.Slice(inos, func(a, b int) bool { return inos[a] < inos[b] })
	for _, ino := range inos {
		f := cp.files[ino]
		i := &Inode{
			Ino:    f.ino,
			Name:   f.name,
			Parent: f.parent,
			Dir:    f.dir,
			SizePg: f.sizePg,
			Gen:    f.gen,
		}
		i.Extents = append(i.Extents, f.extents...)
		i.PageVers = append(i.PageVers, f.pageVers...)
		if f.children != nil {
			i.Children = make(map[string]Ino, len(f.children))
			for n, c := range f.children {
				i.Children[n] = c
			}
		}
		fs.inodes[ino] = i
	}
	// Drop checkpointed children entries whose inode is missing from the
	// checkpoint (created-then-never-committed files inside a committed
	// directory cannot resurrect).
	for _, i := range fs.inodes {
		for name, c := range i.Children {
			if _, ok := fs.inodes[c]; !ok {
				delete(i.Children, name)
				i.namesOK = false
			}
		}
	}

	// Rebuild refcounts, checksums, and the reverse map from the extent
	// walk; then the free index covers exactly the zero-ref remainder.
	for _, ino := range inos {
		i := fs.inodes[ino]
		for _, e := range i.Extents {
			for k := int64(0); k < e.Len; k++ {
				b := e.Phys + k
				fs.refs[b]++
				idx := e.Logical + k
				fs.csums[b] = Checksum(i.PageVers[idx])
				fs.rev[b] = revEntry{ino: ino, idx: idx}
			}
		}
	}
	fs.free = newFreeIndex()
	fs.freeBlocks = 0
	runStart := int64(-1)
	for b := int64(0); b <= nb; b++ {
		free := b < nb && fs.refs[b] == 0
		if free && runStart < 0 {
			runStart = b
		}
		if !free && runStart >= 0 {
			fs.free.add(runStart, b-runStart)
			fs.freeBlocks += b - runStart
			runStart = -1
		}
	}

	copy(fs.diskVer, img.diskVer)
	for _, b := range img.corrupt {
		fs.corrupt.Set(b)
	}
	for _, b := range img.badBlocks {
		disk.InjectBadBlock(b)
	}
	fs.durable = fs.takeCheckpoint()
	return fs, nil
}
