package cowfs

import (
	"fmt"
	"math/rand"
)

// Fast population. Experiments start from a pre-populated filesystem
// (the paper fills 50 GB before each run). Simulating those writes
// through the cache and device would burn hours of virtual time for no
// experimental value, so PopulateFile builds files directly: extents are
// allocated, checksums and medium content are set, and no pages enter the
// cache — exactly the state after a populate-and-reboot.

// PopulateFile creates a file of sizePg pages split into wantExtents
// physically scattered extents (1 = contiguous). The rng determines
// extent placement; pass a seeded source for reproducible layouts.
func (fs *FS) PopulateFile(path string, sizePg int64, wantExtents int, rng *rand.Rand) (*Inode, error) {
	i, err := fs.Create(path)
	if err != nil {
		return nil, err
	}
	if sizePg == 0 {
		return i, nil
	}
	if wantExtents < 1 {
		wantExtents = 1
	}
	if int64(wantExtents) > sizePg {
		wantExtents = int(sizePg)
	}
	fs.gen++
	i.Gen = fs.gen
	i.SizePg = sizePg
	i.PageVers = make([]uint64, sizePg)

	// Split the size into wantExtents pieces and allocate each at a
	// random hint so the pieces scatter across the device. PopulateFile
	// never blocks, so one run buffer serves every piece.
	rb := fs.getRunBuf()
	defer fs.putRunBuf(rb)
	per := sizePg / int64(wantExtents)
	logical := int64(0)
	for part := 0; part < wantExtents; part++ {
		n := per
		if part == wantExtents-1 {
			n = sizePg - logical
		}
		if n == 0 {
			continue
		}
		hint := int64(0)
		if wantExtents > 1 {
			hint = rng.Int63n(fs.disk.Blocks())
		}
		runs, err := fs.allocate(n, hint, rb.runs[:0])
		rb.runs = runs
		if err != nil {
			return nil, fmt.Errorf("cowfs: populate %s: %w", path, err)
		}
		for _, r := range runs {
			i.Extents = insertExtent(i.Extents, Extent{Logical: logical, Phys: r.phys, Len: r.len, Gen: fs.gen})
			for k := int64(0); k < r.len; k++ {
				idx := logical + k
				fs.nextVer++
				ver := fs.nextVer
				i.PageVers[idx] = ver
				b := r.phys + k
				fs.csums[b] = Checksum(ver)
				fs.diskVer[b] = ver
				fs.rev[b] = revEntry{ino: i.Ino, idx: idx}
			}
			logical += r.len
		}
	}
	return i, nil
}

// FragmentationThreshold is the extent count above which a file is
// considered fragmented and worth defragmenting.
const FragmentationThreshold = 4

// FragmentedFiles returns the inodes under dir with more than
// FragmentationThreshold extents, sorted by inode number.
func (fs *FS) FragmentedFiles(dir Ino) []*Inode {
	var out []*Inode
	for _, f := range fs.FilesUnder(dir) {
		if len(f.Extents) > FragmentationThreshold {
			out = append(out, f)
		}
	}
	return out
}

// TotalDataBlocks returns the number of file-data blocks under dir
// (without double-counting snapshot sharing; it sums live extent lengths).
func (fs *FS) TotalDataBlocks(dir Ino) int64 {
	var n int64
	for _, f := range fs.FilesUnder(dir) {
		for _, e := range f.Extents {
			n += e.Len
		}
	}
	return n
}
