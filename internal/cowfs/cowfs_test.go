package cowfs

import (
	"errors"
	"math/rand"
	"testing"

	"duet/internal/iosched"
	"duet/internal/pagecache"
	"duet/internal/sim"
	"duet/internal/storage"
)

const testBlocks = 1 << 16 // 256 MiB device

type env struct {
	e     *sim.Engine
	disk  *storage.Disk
	cache *pagecache.Cache
	fs    *FS
}

func newEnv(cachePages int) *env {
	e := sim.New(1)
	disk := storage.NewDisk(e, "sda", storage.DefaultHDD(testBlocks), iosched.NewCFQ())
	cache := pagecache.New(e, pagecache.DefaultConfig(cachePages))
	fs := New(e, 1, disk, cache)
	return &env{e: e, disk: disk, cache: cache, fs: fs}
}

func (v *env) in(t *testing.T, fn func(p *sim.Proc)) {
	t.Helper()
	v.e.Go("test", func(p *sim.Proc) {
		// Stop via defer so a t.Fatal inside fn still ends the run.
		defer v.e.Stop()
		fn(p)
	})
	if err := v.e.Run(); err != nil {
		t.Fatal(err)
	}
	// Every test run leaves the accounting structures consistent: extent
	// maps, refcounts, and the two-level free index must agree.
	if err := v.fs.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestNamespace(t *testing.T) {
	v := newEnv(1024)
	if _, err := v.fs.MkdirAll("/data/a/b"); err != nil {
		t.Fatal(err)
	}
	f, err := v.fs.Create("/data/a/b/file1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.fs.Create("/data/a/b/file1"); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate create: %v", err)
	}
	if _, err := v.fs.Lookup("/data/a/b/file1"); err != nil {
		t.Errorf("lookup: %v", err)
	}
	if _, err := v.fs.Lookup("/data/zzz"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing lookup: %v", err)
	}
	if _, err := v.fs.Create("/data/a/b/file1/x"); !errors.Is(err, ErrNotDir) {
		t.Errorf("create under file: %v", err)
	}
	path, err := v.fs.PathOf(f.Ino)
	if err != nil || path != "/data/a/b/file1" {
		t.Errorf("PathOf = %q, %v", path, err)
	}
	root, _ := v.fs.Lookup("/")
	if root.Ino != RootIno {
		t.Errorf("root ino = %d", root.Ino)
	}
	if p, _ := v.fs.PathOf(RootIno); p != "/" {
		t.Errorf("PathOf(root) = %q", p)
	}
}

func TestWithin(t *testing.T) {
	v := newEnv(1024)
	dataDir, _ := v.fs.MkdirAll("/data/sub")
	f, _ := v.fs.Create("/data/sub/f")
	g, _ := v.fs.Create("/other")
	data, _ := v.fs.Lookup("/data")

	if rel, ok := v.fs.Within(f.Ino, data.Ino); !ok || rel != "sub/f" {
		t.Errorf("Within = %q,%v", rel, ok)
	}
	if rel, ok := v.fs.Within(dataDir.Ino, data.Ino); !ok || rel != "sub" {
		t.Errorf("Within(dir) = %q,%v", rel, ok)
	}
	if _, ok := v.fs.Within(g.Ino, data.Ino); ok {
		t.Error("file outside dir reported within")
	}
	if rel, ok := v.fs.Within(data.Ino, data.Ino); !ok || rel != "" {
		t.Errorf("Within(self) = %q,%v", rel, ok)
	}
}

func TestPopulateAndRead(t *testing.T) {
	v := newEnv(1024)
	rng := rand.New(rand.NewSource(2))
	f, err := v.fs.PopulateFile("/f", 32, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Extents) != 1 {
		t.Errorf("extents = %d, want 1", len(f.Extents))
	}
	v.in(t, func(p *sim.Proc) {
		if err := v.fs.ReadFile(p, f.Ino, storage.ClassNormal, "t"); err != nil {
			t.Fatal(err)
		}
		if v.cache.FilePages(1, uint64(f.Ino)) != 32 {
			t.Errorf("cached pages = %d", v.cache.FilePages(1, uint64(f.Ino)))
		}
		// Second read is served from cache: no new device I/O.
		before := v.disk.Stats().Owner("t").BlocksRead
		if err := v.fs.ReadFile(p, f.Ino, storage.ClassNormal, "t"); err != nil {
			t.Fatal(err)
		}
		if after := v.disk.Stats().Owner("t").BlocksRead; after != before {
			t.Errorf("second read did I/O: %d -> %d", before, after)
		}
	})
	if v.fs.Stats().MissPages != 32 {
		t.Errorf("MissPages = %d", v.fs.Stats().MissPages)
	}
}

func TestPopulateFragmented(t *testing.T) {
	v := newEnv(1024)
	rng := rand.New(rand.NewSource(3))
	f, err := v.fs.PopulateFile("/frag", 64, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Extents) < 8 {
		t.Errorf("extents = %d, want >= 8", len(f.Extents))
	}
	// All pages must still map.
	for idx := int64(0); idx < 64; idx++ {
		if _, ok := v.fs.Fibmap(f.Ino, idx); !ok {
			t.Fatalf("page %d unmapped", idx)
		}
	}
	if v.fs.AllocatedBlocks() != 64 {
		t.Errorf("allocated = %d", v.fs.AllocatedBlocks())
	}
}

func TestWriteCOW(t *testing.T) {
	v := newEnv(1024)
	rng := rand.New(rand.NewSource(4))
	f, _ := v.fs.PopulateFile("/f", 16, 1, rng)
	oldBlock, _ := v.fs.Fibmap(f.Ino, 5)
	oldVer := f.PageVers[5]
	v.in(t, func(p *sim.Proc) {
		if err := v.fs.Write(p, f.Ino, 5, 1); err != nil {
			t.Fatal(err)
		}
	})
	newBlock, ok := v.fs.Fibmap(f.Ino, 5)
	if !ok || newBlock == oldBlock {
		t.Errorf("COW: block %d -> %d", oldBlock, newBlock)
	}
	if v.fs.Allocated(oldBlock) {
		t.Error("old block should be freed (no snapshot)")
	}
	if f.PageVers[5] == oldVer {
		t.Error("version not bumped")
	}
	// A mid-file overwrite splits the single extent into three.
	if len(f.Extents) != 3 {
		t.Errorf("extents = %d, want 3 after mid-file COW", len(f.Extents))
	}
	if v.fs.AllocatedBlocks() != 16 {
		t.Errorf("allocated = %d, want 16", v.fs.AllocatedBlocks())
	}
}

func TestAppendExtends(t *testing.T) {
	v := newEnv(1024)
	f, _ := v.fs.Create("/log")
	v.in(t, func(p *sim.Proc) {
		for k := 0; k < 4; k++ {
			if err := v.fs.Append(p, f.Ino, 2); err != nil {
				t.Fatal(err)
			}
		}
	})
	if f.SizePg != 8 {
		t.Errorf("size = %d", f.SizePg)
	}
	for idx := int64(0); idx < 8; idx++ {
		if _, ok := v.fs.Fibmap(f.Ino, idx); !ok {
			t.Fatalf("page %d unmapped after append", idx)
		}
	}
}

func TestWritebackReachesMedium(t *testing.T) {
	v := newEnv(1024)
	f, _ := v.fs.Create("/f")
	v.in(t, func(p *sim.Proc) {
		if err := v.fs.Write(p, f.Ino, 0, 4); err != nil {
			t.Fatal(err)
		}
		v.fs.Sync(p)
		// Drop pages and read back: checksums must verify.
		v.cache.RemoveFile(1, uint64(f.Ino))
		if err := v.fs.ReadFile(p, f.Ino, storage.ClassNormal, "t"); err != nil {
			t.Fatalf("read-back after sync: %v", err)
		}
	})
	if w := v.disk.Stats().Owner("writeback").BlocksWritten; w != 4 {
		t.Errorf("writeback blocks = %d", w)
	}
}

func TestCorruptionDetectedOnRead(t *testing.T) {
	v := newEnv(1024)
	rng := rand.New(rand.NewSource(5))
	f, _ := v.fs.PopulateFile("/f", 8, 1, rng)
	b, _ := v.fs.Fibmap(f.Ino, 3)
	v.fs.CorruptBlock(b)
	v.in(t, func(p *sim.Proc) {
		err := v.fs.ReadFile(p, f.Ino, storage.ClassNormal, "t")
		if !errors.Is(err, ErrCorruption) {
			t.Errorf("read of corrupted block: %v", err)
		}
	})
	if v.fs.Stats().Corruptions != 1 {
		t.Errorf("Corruptions = %d", v.fs.Stats().Corruptions)
	}
}

func TestVerifyAndRepair(t *testing.T) {
	v := newEnv(1024)
	rng := rand.New(rand.NewSource(6))
	f, _ := v.fs.PopulateFile("/f", 8, 1, rng)
	b, _ := v.fs.Fibmap(f.Ino, 2)
	v.fs.CorruptBlock(b)
	v.in(t, func(p *sim.Proc) {
		did, err := v.fs.VerifyBlock(p, b, storage.ClassIdle, "scrub")
		if !did || !errors.Is(err, ErrCorruption) {
			t.Errorf("VerifyBlock = %v, %v", did, err)
		}
		if err := v.fs.RepairBlock(p, b, storage.ClassIdle, "scrub"); err != nil {
			t.Fatalf("repair: %v", err)
		}
		did, err = v.fs.VerifyBlock(p, b, storage.ClassIdle, "scrub")
		if !did || err != nil {
			t.Errorf("after repair: %v, %v", did, err)
		}
		// Unallocated block: no I/O, no error.
		free, _, _ := v.fs.free.runs.Max()
		did, err = v.fs.VerifyBlock(p, free, storage.ClassIdle, "scrub")
		if did || err != nil {
			t.Errorf("unallocated verify = %v, %v", did, err)
		}
	})
}

func TestVerifySkipsDirtyBlocks(t *testing.T) {
	v := newEnv(1024)
	f, _ := v.fs.Create("/f")
	v.in(t, func(p *sim.Proc) {
		if err := v.fs.Write(p, f.Ino, 0, 1); err != nil {
			t.Fatal(err)
		}
		b, _ := v.fs.Fibmap(f.Ino, 0)
		// The medium copy is stale (never written); verification must
		// skip it rather than flag false corruption.
		did, err := v.fs.VerifyBlock(p, b, storage.ClassIdle, "scrub")
		if did || err != nil {
			t.Errorf("dirty-block verify = %v, %v", did, err)
		}
		v.fs.Sync(p)
		did, err = v.fs.VerifyBlock(p, b, storage.ClassIdle, "scrub")
		if !did || err != nil {
			t.Errorf("clean-block verify = %v, %v", did, err)
		}
	})
}

func TestVerifyRange(t *testing.T) {
	v := newEnv(1024)
	rng := rand.New(rand.NewSource(7))
	f, _ := v.fs.PopulateFile("/f", 16, 1, rng)
	start := f.Extents[0].Phys
	v.in(t, func(p *sim.Proc) {
		if err := v.fs.VerifyRange(p, start, 16, storage.ClassIdle, "scrub"); err != nil {
			t.Fatal(err)
		}
	})
	b, _ := v.fs.Fibmap(f.Ino, 4)
	v.fs.CorruptBlock(b)
	v.in(t, func(p *sim.Proc) {
		if err := v.fs.VerifyRange(p, start, 16, storage.ClassIdle, "scrub"); !errors.Is(err, ErrCorruption) {
			t.Errorf("VerifyRange on corrupted = %v", err)
		}
	})
}

func TestSnapshotSharingAndCOW(t *testing.T) {
	v := newEnv(1024)
	rng := rand.New(rand.NewSource(8))
	v.fs.MkdirAll("/data")
	f, _ := v.fs.PopulateFile("/data/f", 8, 1, rng)
	var snap *Snapshot
	v.in(t, func(p *sim.Proc) {
		var err error
		snap, err = v.fs.CreateSnapshot(p, "/data", "/snap0")
		if err != nil {
			t.Fatal(err)
		}
		if snap.Blocks != 8 {
			t.Errorf("snapshot blocks = %d", snap.Blocks)
		}
		// Shared: no extra space consumed.
		if got := v.fs.AllocatedBlocks(); got != 8 {
			t.Errorf("allocated = %d, want 8 (shared)", got)
		}
		if !v.fs.SharedWithSnapshot(snap, f.Ino, 3) {
			t.Error("page 3 should be shared")
		}
		// Overwrite breaks sharing for that page only.
		if err := v.fs.Write(p, f.Ino, 3, 1); err != nil {
			t.Fatal(err)
		}
		if v.fs.SharedWithSnapshot(snap, f.Ino, 3) {
			t.Error("page 3 still reported shared after COW")
		}
		if !v.fs.SharedWithSnapshot(snap, f.Ino, 4) {
			t.Error("page 4 lost sharing")
		}
		if got := v.fs.AllocatedBlocks(); got != 9 {
			t.Errorf("allocated = %d, want 9 after COW", got)
		}
		// Snapshot file still readable with original content.
		snapIno := snap.LiveToSnap[f.Ino]
		if err := v.fs.ReadFile(p, Ino(snapIno), storage.ClassIdle, "backup"); err != nil {
			t.Fatalf("snapshot read: %v", err)
		}
	})
}

func TestSnapshotDeleteReleasesBlocks(t *testing.T) {
	v := newEnv(1024)
	rng := rand.New(rand.NewSource(9))
	v.fs.MkdirAll("/data")
	f, _ := v.fs.PopulateFile("/data/f", 8, 1, rng)
	v.in(t, func(p *sim.Proc) {
		snap, err := v.fs.CreateSnapshot(p, "/data", "/snap0")
		if err != nil {
			t.Fatal(err)
		}
		if err := v.fs.Write(p, f.Ino, 0, 8); err != nil { // full COW
			t.Fatal(err)
		}
		if got := v.fs.AllocatedBlocks(); got != 16 {
			t.Errorf("allocated = %d, want 16", got)
		}
		if err := v.fs.DeleteSnapshot(snap); err != nil {
			t.Fatal(err)
		}
		if got := v.fs.AllocatedBlocks(); got != 8 {
			t.Errorf("allocated = %d, want 8 after snapshot delete", got)
		}
	})
}

func TestSnapshotCommitsDirtyPages(t *testing.T) {
	v := newEnv(1024)
	v.fs.MkdirAll("/data")
	f, _ := v.fs.Create("/data/f")
	v.in(t, func(p *sim.Proc) {
		if err := v.fs.Write(p, f.Ino, 0, 4); err != nil {
			t.Fatal(err)
		}
		if _, err := v.fs.CreateSnapshot(p, "/data", "/snap0"); err != nil {
			t.Fatal(err)
		}
		if v.cache.DirtyLen() != 0 {
			t.Errorf("dirty pages after snapshot = %d", v.cache.DirtyLen())
		}
		// Medium content must match for all of f's blocks.
		for idx := int64(0); idx < 4; idx++ {
			b, _ := v.fs.Fibmap(f.Ino, idx)
			if v.fs.diskVer[b] != f.PageVers[idx] {
				t.Errorf("page %d not committed", idx)
			}
		}
	})
}

func TestDefragMergesExtents(t *testing.T) {
	v := newEnv(2048)
	rng := rand.New(rand.NewSource(10))
	f, _ := v.fs.PopulateFile("/f", 64, 8, rng)
	if len(f.Extents) < 8 {
		t.Fatalf("setup: extents = %d", len(f.Extents))
	}
	v.in(t, func(p *sim.Proc) {
		res, err := v.fs.DefragFile(p, f.Ino, storage.ClassIdle, "defrag")
		if err != nil {
			t.Fatal(err)
		}
		if res.PagesTotal != 64 || res.PagesRead != 64 || res.AlreadyDirty != 0 {
			t.Errorf("res = %+v", res)
		}
		v.fs.Sync(p)
	})
	if len(f.Extents) != 1 {
		t.Errorf("extents after defrag = %d", len(f.Extents))
	}
	// Defrag writes are billed to the defragmenter, not the flusher.
	if w := v.disk.Stats().Owner("defrag").BlocksWritten; w != 64 {
		t.Errorf("defrag-owned writes = %d", w)
	}
	v.in(t, func(p *sim.Proc) {
		// Read back verifies checksums at the new location.
		v.cache.RemoveFile(1, uint64(f.Ino))
		if err := v.fs.ReadFile(p, f.Ino, storage.ClassNormal, "t"); err != nil {
			t.Fatalf("read-back: %v", err)
		}
	})
}

func TestDefragSavesCachedReads(t *testing.T) {
	v := newEnv(2048)
	rng := rand.New(rand.NewSource(11))
	f, _ := v.fs.PopulateFile("/f", 32, 6, rng)
	v.in(t, func(p *sim.Proc) {
		// Warm half the file in cache.
		if err := v.fs.Read(p, f.Ino, 0, 16, storage.ClassNormal, "w"); err != nil {
			t.Fatal(err)
		}
		res, err := v.fs.DefragFile(p, f.Ino, storage.ClassIdle, "defrag")
		if err != nil {
			t.Fatal(err)
		}
		if res.PagesRead != 16 {
			t.Errorf("PagesRead = %d, want 16 (half cached)", res.PagesRead)
		}
	})
}

func TestFragmentedFilesListing(t *testing.T) {
	v := newEnv(2048)
	rng := rand.New(rand.NewSource(12))
	v.fs.MkdirAll("/data")
	v.fs.PopulateFile("/data/ok", 32, 1, rng)
	frag, _ := v.fs.PopulateFile("/data/frag", 32, 8, rng)
	data, _ := v.fs.Lookup("/data")
	got := v.fs.FragmentedFiles(data.Ino)
	if len(got) != 1 || got[0].Ino != frag.Ino {
		t.Errorf("FragmentedFiles = %v", got)
	}
	if v.fs.FragmentedExtents(frag.Ino) < 8 {
		t.Errorf("FragmentedExtents = %d", v.fs.FragmentedExtents(frag.Ino))
	}
}

func TestRenameHooks(t *testing.T) {
	v := newEnv(1024)
	v.fs.MkdirAll("/data/in")
	v.fs.MkdirAll("/out")
	f, _ := v.fs.Create("/out/f")
	type move struct {
		ino                  Ino
		oldParent, newParent Ino
	}
	var moves []move
	v.fs.AddVFSHook(vfsHookFunc(func(ino Ino, isDir bool, op, np Ino) {
		moves = append(moves, move{ino, op, np})
	}))
	if err := v.fs.Rename("/out/f", "/data/in/f2"); err != nil {
		t.Fatal(err)
	}
	in, _ := v.fs.Lookup("/data/in")
	out, _ := v.fs.Lookup("/out")
	if len(moves) != 1 || moves[0].ino != f.Ino || moves[0].oldParent != out.Ino || moves[0].newParent != in.Ino {
		t.Errorf("moves = %+v", moves)
	}
	if f.Name != "f2" {
		t.Errorf("name = %q", f.Name)
	}
	if p, _ := v.fs.PathOf(f.Ino); p != "/data/in/f2" {
		t.Errorf("path = %q", p)
	}
	// Illegal: move dir into own subtree.
	if err := v.fs.Rename("/data", "/data/in/oops"); err == nil {
		t.Error("moving dir into own subtree should fail")
	}
}

type vfsHookFunc func(ino Ino, isDir bool, oldParent, newParent Ino)

func (f vfsHookFunc) Moved(ino Ino, isDir bool, op, np Ino) { f(ino, isDir, op, np) }

func TestDeleteFreesBlocksAndPages(t *testing.T) {
	v := newEnv(1024)
	rng := rand.New(rand.NewSource(13))
	f, _ := v.fs.PopulateFile("/f", 16, 2, rng)
	v.in(t, func(p *sim.Proc) {
		if err := v.fs.ReadFile(p, f.Ino, storage.ClassNormal, "t"); err != nil {
			t.Fatal(err)
		}
		if err := v.fs.Delete("/f"); err != nil {
			t.Fatal(err)
		}
	})
	if v.fs.AllocatedBlocks() != 0 {
		t.Errorf("allocated = %d after delete", v.fs.AllocatedBlocks())
	}
	if v.cache.FilePages(1, uint64(f.Ino)) != 0 {
		t.Error("pages remain after delete")
	}
	if _, err := v.fs.Lookup("/f"); !errors.Is(err, ErrNotFound) {
		t.Errorf("lookup after delete: %v", err)
	}
}

func TestFilesUnderInodeOrder(t *testing.T) {
	v := newEnv(1024)
	v.fs.MkdirAll("/data/d1")
	v.fs.MkdirAll("/data/d2")
	a, _ := v.fs.Create("/data/d2/z")
	b, _ := v.fs.Create("/data/d1/a")
	c, _ := v.fs.Create("/data/top")
	v.fs.Create("/outside")
	data, _ := v.fs.Lookup("/data")
	files := v.fs.FilesUnder(data.Ino)
	if len(files) != 3 {
		t.Fatalf("files = %d", len(files))
	}
	// Sorted by inode number regardless of depth or name.
	want := []Ino{a.Ino, b.Ino, c.Ino}
	for i, w := range want {
		if files[i].Ino != w {
			t.Errorf("files[%d].Ino = %d, want %d", i, files[i].Ino, w)
		}
	}
}

func TestNoSpace(t *testing.T) {
	v := newEnv(1024)
	rng := rand.New(rand.NewSource(14))
	if _, err := v.fs.PopulateFile("/big", testBlocks+1, 1, rng); !errors.Is(err, ErrNoSpace) {
		t.Errorf("over-populate: %v", err)
	}
}

func TestHoleReads(t *testing.T) {
	v := newEnv(1024)
	f, _ := v.fs.Create("/sparse")
	v.in(t, func(p *sim.Proc) {
		// Write page 4 only; pages 0-3 are holes.
		if err := v.fs.Write(p, f.Ino, 4, 1); err != nil {
			t.Fatal(err)
		}
		before := v.disk.Stats().Owner("t").BlocksRead
		if err := v.fs.Read(p, f.Ino, 0, 4, storage.ClassNormal, "t"); err != nil {
			t.Fatal(err)
		}
		if after := v.disk.Stats().Owner("t").BlocksRead; after != before {
			t.Error("hole read performed I/O")
		}
	})
}

// TestRefcountConservation is an invariant test: after a random mix of
// operations, the allocated-block count derived from refcounts equals the
// blocks reachable from live extents plus snapshot extents, and the free
// list is consistent.
func TestRefcountConservation(t *testing.T) {
	v := newEnv(4096)
	rng := rand.New(rand.NewSource(15))
	v.fs.MkdirAll("/data")
	var files []*Inode
	for i := 0; i < 10; i++ {
		f, err := v.fs.PopulateFile("/data/f"+string(rune('a'+i)), int64(4+rng.Intn(28)), 1+rng.Intn(4), rng)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	var snaps []*Snapshot
	v.in(t, func(p *sim.Proc) {
		for op := 0; op < 300; op++ {
			f := files[rng.Intn(len(files))]
			switch rng.Intn(5) {
			case 0, 1:
				off := rng.Int63n(f.SizePg)
				n := 1 + rng.Int63n(f.SizePg-off)
				if err := v.fs.Write(p, f.Ino, off, n); err != nil {
					t.Fatal(err)
				}
			case 2:
				if err := v.fs.ReadFile(p, f.Ino, storage.ClassNormal, "w"); err != nil {
					t.Fatal(err)
				}
			case 3:
				if len(snaps) < 3 {
					s, err := v.fs.CreateSnapshot(p, "/data", "/snap"+string(rune('0'+len(snaps))))
					if err != nil {
						t.Fatal(err)
					}
					snaps = append(snaps, s)
				}
			case 4:
				if len(snaps) > 0 {
					s := snaps[len(snaps)-1]
					snaps = snaps[:len(snaps)-1]
					if err := v.fs.DeleteSnapshot(s); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		// Invariant: sum of refcounts equals total extent references.
		var refSum int64
		for _, r := range v.fs.refs {
			refSum += int64(r)
		}
		var extRefs int64
		inos := make([]Ino, 0, len(v.fs.inodes))
		for ino := range v.fs.inodes {
			inos = append(inos, ino)
		}
		for _, ino := range inos {
			i := v.fs.inodes[ino]
			for _, e := range i.Extents {
				extRefs += e.Len
			}
		}
		if refSum != extRefs {
			t.Errorf("refcount sum %d != extent references %d", refSum, extRefs)
		}
		// Free accounting: freeBlocks + allocated = device size.
		var freeSum int64
		v.fs.free.runs.Ascend(nil, func(s, l int64) bool { freeSum += l; return true })
		if freeSum != v.fs.FreeBlocks() {
			t.Errorf("free tree sum %d != freeBlocks %d", freeSum, v.fs.FreeBlocks())
		}
		if v.fs.FreeBlocks()+v.fs.AllocatedBlocks() != testBlocks {
			t.Errorf("free %d + allocated %d != %d", v.fs.FreeBlocks(), v.fs.AllocatedBlocks(), int64(testBlocks))
		}
	})
}

// TestReadBackAfterRandomWrites checks end-to-end content integrity: any
// sequence of writes followed by sync, cache drop, and read-back must
// verify every checksum.
func TestReadBackAfterRandomWrites(t *testing.T) {
	v := newEnv(4096)
	rng := rand.New(rand.NewSource(16))
	f, _ := v.fs.PopulateFile("/f", 128, 3, rng)
	v.in(t, func(p *sim.Proc) {
		for op := 0; op < 50; op++ {
			off := rng.Int63n(128)
			n := min64(1+rng.Int63n(16), 128-off)
			if err := v.fs.Write(p, f.Ino, off, n); err != nil {
				t.Fatal(err)
			}
		}
		v.fs.Sync(p)
		v.cache.RemoveFile(1, uint64(f.Ino))
		if err := v.fs.ReadFile(p, f.Ino, storage.ClassNormal, "t"); err != nil {
			t.Fatalf("read-back: %v", err)
		}
		// Every cached page version must match the inode's record.
		for idx := int64(0); idx < 128; idx++ {
			pg, ok := v.cache.Peek(v.fs.pageKey(f.Ino, idx))
			if !ok {
				t.Fatalf("page %d not cached", idx)
			}
			if pg.Version != f.PageVers[idx] {
				t.Errorf("page %d version %d != %d", idx, pg.Version, f.PageVers[idx])
			}
		}
	})
}

func TestDeleteDuringReadIsNotCorruption(t *testing.T) {
	// Deleting a file while a reader is blocked on the device must
	// surface as ErrNotFound, not as a false silent-corruption report
	// (the freed blocks' checksums are cleared by the delete).
	v := newEnv(1024)
	rng := rand.New(rand.NewSource(77))
	f, _ := v.fs.PopulateFile("/victim", 64, 1, rng)
	v.in(t, func(p *sim.Proc) {
		v.e.Go("deleter", func(dp *sim.Proc) {
			dp.Sleep(sim.Millisecond) // land mid-read
			if err := v.fs.Delete("/victim"); err != nil {
				t.Errorf("delete: %v", err)
			}
		})
		err := v.fs.ReadFile(p, f.Ino, storage.ClassNormal, "t")
		if err == nil {
			// The read may have completed before the deleter ran; that is
			// a valid interleaving only if the file still existed — but
			// the deleter always runs mid-read here (reads take ms).
			t.Fatal("read of deleted file succeeded")
		}
		if !errors.Is(err, ErrNotFound) {
			t.Fatalf("err = %v, want ErrNotFound", err)
		}
	})
	if v.fs.Stats().Corruptions != 0 {
		t.Errorf("false corruption reports: %d", v.fs.Stats().Corruptions)
	}
}

func TestOverwriteDuringReadKeepsFreshData(t *testing.T) {
	// A COW overwrite while a reader is blocked must not let the stale
	// device data clobber the newer cached page.
	v := newEnv(1024)
	rng := rand.New(rand.NewSource(78))
	f, _ := v.fs.PopulateFile("/f", 64, 1, rng)
	v.in(t, func(p *sim.Proc) {
		v.e.Go("writer", func(wp *sim.Proc) {
			wp.Sleep(sim.Millisecond)
			if err := v.fs.Write(wp, f.Ino, 0, 64); err != nil {
				t.Errorf("write: %v", err)
			}
		})
		if err := v.fs.ReadFile(p, f.Ino, storage.ClassNormal, "t"); err != nil {
			t.Fatalf("read: %v", err)
		}
		// Every cached page must carry the post-write version.
		for idx := int64(0); idx < 64; idx++ {
			pg, ok := v.cache.Peek(v.fs.pageKey(f.Ino, idx))
			if ok && pg.Version != f.PageVers[idx] {
				t.Fatalf("page %d version %d != latest %d (stale read clobbered cache)",
					idx, pg.Version, f.PageVers[idx])
			}
		}
	})
}

func TestChildrenSortedCacheInvalidation(t *testing.T) {
	// The sorted name order is cached on the directory inode; every
	// create, delete, and rename must invalidate it. Interleave mutations
	// with listings so a stale cache would surface as a wrong order.
	v := newEnv(64)
	dir, err := v.fs.MkdirAll("/d")
	if err != nil {
		t.Fatal(err)
	}
	names := func() []string {
		var out []string
		for _, c := range v.fs.ChildrenSorted(dir) {
			out = append(out, c.Name)
		}
		return out
	}
	want := func(exp ...string) {
		t.Helper()
		got := names()
		if len(got) != len(exp) {
			t.Fatalf("listing = %v, want %v", got, exp)
		}
		for i := range exp {
			if got[i] != exp[i] {
				t.Fatalf("listing = %v, want %v", got, exp)
			}
		}
	}
	mustCreate := func(p string) {
		t.Helper()
		if _, err := v.fs.Create(p); err != nil {
			t.Fatal(err)
		}
	}
	mustCreate("/d/c")
	mustCreate("/d/a")
	want("a", "c")
	want("a", "c") // repeat listing: served from the cached order
	mustCreate("/d/b")
	want("a", "b", "c")
	if err := v.fs.Delete("/d/a"); err != nil {
		t.Fatal(err)
	}
	want("b", "c")
	if err := v.fs.Rename("/d/c", "/d/z"); err != nil {
		t.Fatal(err)
	}
	want("b", "z")
	// Rename across directories invalidates both the source and the
	// destination listing.
	if _, err := v.fs.MkdirAll("/e"); err != nil {
		t.Fatal(err)
	}
	if err := v.fs.Rename("/d/z", "/e/z"); err != nil {
		t.Fatal(err)
	}
	want("b")
	eDir, err := v.fs.Lookup("/e")
	if err != nil {
		t.Fatal(err)
	}
	kids := v.fs.ChildrenSorted(eDir)
	if len(kids) != 1 || kids[0].Name != "z" {
		t.Fatalf("destination listing wrong: %v", kids)
	}
	mustCreate("/d/aa")
	want("aa", "b")
}
