package cowfs

import (
	"cmp"
	"fmt"
	"slices"
	"sort"

	"duet/internal/pagecache"
	"duet/internal/sim"
	"duet/internal/storage"
)

// Data path: reads and writes in pages, flowing through the page cache.
//
// Writes are copy-on-write: the covered logical range is carved out of the
// existing extents (dereferencing the old blocks), fresh blocks are
// allocated, and the cache pages are dirtied; the flusher writes them to
// the already-assigned blocks later. Reads check the cache first and issue
// device reads for misses, verifying the per-block checksum — which is why
// a foreground read lets the opportunistic scrubber skip the block.

func (fs *FS) pageKey(ino Ino, idx int64) pagecache.PageKey {
	return pagecache.PageKey{FS: fs.id, Ino: uint64(ino), Index: uint64(idx)}
}

// miss is a read-path staging record: a page that needs a device read.
type miss struct {
	idx, block int64
	wantCsum   uint64
}

// missBuf is a pooled staging buffer for ReadCount.
type missBuf struct {
	m    []miss
	next *missBuf
}

func (fs *FS) getMissBuf() *missBuf {
	b := fs.missBufs
	if b == nil {
		return &missBuf{}
	}
	fs.missBufs = b.next
	b.next = nil
	b.m = b.m[:0]
	return b
}

func (fs *FS) putMissBuf(b *missBuf) {
	b.next = fs.missBufs
	fs.missBufs = b
}

// wb is a writeback staging record: one dirty page and its target block.
// pos remembers the record's position in the caller's index slice
// (staging order), so the persisted prefix can be computed after the
// records are re-sorted by block for coalescing. ok marks records whose
// device write completed (including the persisted prefix of a torn
// write).
type wb struct {
	idx   int64
	block int64
	ver   uint64
	pos   int
	ok    bool
}

// wbBuf is a pooled staging buffer for WritebackPages.
type wbBuf struct {
	w    []wb
	next *wbBuf
}

func (fs *FS) getWbBuf() *wbBuf {
	b := fs.wbBufs
	if b == nil {
		return &wbBuf{}
	}
	fs.wbBufs = b.next
	b.next = nil
	b.w = b.w[:0]
	return b
}

func (fs *FS) putWbBuf(b *wbBuf) {
	b.next = fs.wbBufs
	fs.wbBufs = b
}

// findExtent returns the extent covering logical page idx, if any.
func findExtent(exts []Extent, idx int64) (Extent, bool) {
	lo, hi := 0, len(exts)
	for lo < hi {
		mid := (lo + hi) / 2
		e := exts[mid]
		switch {
		case idx < e.Logical:
			hi = mid
		case idx >= e.Logical+e.Len:
			lo = mid + 1
		default:
			return e, true
		}
	}
	return Extent{}, false
}

// Fibmap translates a file page to its device block, like the FIBMAP
// ioctl (§4.2). ok is false for holes.
func (fs *FS) Fibmap(ino Ino, idx int64) (int64, bool) {
	i, exists := fs.inodes[ino]
	if !exists || i.Dir {
		return 0, false
	}
	e, ok := findExtent(i.Extents, idx)
	if !ok {
		return 0, false
	}
	return e.Phys + (idx - e.Logical), true
}

// blkRange is a run of physical blocks released by an extent splice.
type blkRange struct {
	phys int64
	n    int64
}

// spliceExtents removes logical range [lo, hi) from exts in place: the
// overlapped extents are replaced by at most two boundary fragments and
// the tail is shifted down, so the slice's backing array is reused (it
// grows only in the one case where a single extent splits into two
// fragments). Released physical ranges are appended to freed in ascending
// extent order. The function is pure over its inputs — no FS state — so
// the fuzz and property tests can drive it against a reference model.
func spliceExtents(exts []Extent, lo, hi int64, freed []blkRange) ([]Extent, []blkRange) {
	if lo >= hi || len(exts) == 0 {
		return exts, freed
	}
	// a: first extent ending after lo; b: first extent starting at/after hi.
	// [a, b) is the contiguous overlapped range (extents are Logical-sorted).
	a := sort.Search(len(exts), func(k int) bool { return exts[k].Logical+exts[k].Len > lo })
	b := sort.Search(len(exts), func(k int) bool { return exts[k].Logical >= hi })
	if a >= b {
		return exts, freed
	}
	var left, right Extent
	hasLeft, hasRight := false, false
	if e := exts[a]; e.Logical < lo {
		left = Extent{Logical: e.Logical, Phys: e.Phys, Len: lo - e.Logical, Gen: e.Gen}
		hasLeft = true
	}
	if e := exts[b-1]; e.Logical+e.Len > hi {
		right = Extent{Logical: hi, Phys: e.Phys + (hi - e.Logical), Len: e.Logical + e.Len - hi, Gen: e.Gen}
		hasRight = true
	}
	for k := a; k < b; k++ {
		e := exts[k]
		cutLo, cutHi := max64(e.Logical, lo), min64(e.Logical+e.Len, hi)
		freed = append(freed, blkRange{phys: e.Phys + (cutLo - e.Logical), n: cutHi - cutLo})
	}
	nkeep := 0
	if hasLeft {
		nkeep++
	}
	if hasRight {
		nkeep++
	}
	if nkeep <= b-a {
		at := a
		if hasLeft {
			exts[at] = left
			at++
		}
		if hasRight {
			exts[at] = right
			at++
		}
		n := copy(exts[at:], exts[b:])
		exts = exts[:at+n]
	} else {
		// One extent splits into two fragments: grow by one slot.
		exts = append(exts, Extent{})
		copy(exts[b+1:], exts[b:])
		exts[a], exts[a+1] = left, right
	}
	return exts, freed
}

// spliceOut removes logical range [lo, hi) from the inode's extent map,
// dereferencing the covered blocks and splitting boundary extents. The
// freed scratch is a plain FS field (not pooled): nothing between filling
// and draining it blocks, so no other process can observe it.
func (fs *FS) spliceOut(i *Inode, lo, hi int64) {
	i.Extents, fs.freed = spliceExtents(i.Extents, lo, hi, fs.freed[:0])
	for _, r := range fs.freed {
		for b := r.phys; b < r.phys+r.n; b++ {
			fs.deref(b)
		}
	}
}

// insertExtent adds an extent keeping the slice sorted by Logical and
// merging with physically adjacent neighbours of the same generation.
func insertExtent(exts []Extent, e Extent) []Extent {
	pos := sort.Search(len(exts), func(k int) bool { return exts[k].Logical > e.Logical })
	exts = append(exts, Extent{})
	copy(exts[pos+1:], exts[pos:])
	exts[pos] = e
	// Merge left.
	if pos > 0 {
		l := exts[pos-1]
		if l.Logical+l.Len == e.Logical && l.Phys+l.Len == e.Phys && l.Gen == e.Gen {
			exts[pos-1].Len += e.Len
			exts = append(exts[:pos], exts[pos+1:]...)
			pos--
			e = exts[pos]
		}
	}
	// Merge right.
	if pos+1 < len(exts) {
		r := exts[pos+1]
		if e.Logical+e.Len == r.Logical && e.Phys+e.Len == r.Phys && e.Gen == r.Gen {
			exts[pos].Len += r.Len
			exts = append(exts[:pos+1], exts[pos+2:]...)
		}
	}
	return exts
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// Write stores n pages at page offset off of the file, extending it if
// needed. New blocks are allocated copy-on-write; the data lands in the
// cache dirty and reaches the device at writeback (billed to the flusher,
// or to the inode's writeback tag if one is set).
func (fs *FS) Write(p *sim.Proc, ino Ino, off, n int64) error {
	i, ok := fs.inodes[ino]
	if !ok {
		return fmt.Errorf("%w: inode %d", ErrNotFound, ino)
	}
	if i.Dir {
		return fmt.Errorf("%w: inode %d", ErrIsDir, ino)
	}
	if n <= 0 {
		return nil
	}
	fs.gen++
	i.Gen = fs.gen

	// Count blocks being re-allocated away from snapshot sharing.
	for idx := off; idx < off+n; idx++ {
		if b, mapped := fs.Fibmap(ino, idx); mapped && fs.refs[b] > 1 {
			fs.stats.CowReallocation++
		}
	}

	// COW: release old coverage, then allocate fresh blocks near the
	// file's existing data to preserve some locality.
	fs.spliceOut(i, off, off+n)
	hint := int64(0)
	if len(i.Extents) > 0 {
		last := i.Extents[len(i.Extents)-1]
		hint = last.Phys + last.Len
	}
	rb := fs.getRunBuf()
	defer fs.putRunBuf(rb)
	runs, err := fs.allocate(n, hint, rb.runs)
	rb.runs = runs
	if err != nil {
		return err
	}
	if off+n > i.SizePg {
		i.SizePg = off + n
	}
	for int64(len(i.PageVers)) < i.SizePg {
		i.PageVers = append(i.PageVers, 0)
	}

	logical := off
	for _, r := range runs {
		i.Extents = insertExtent(i.Extents, Extent{Logical: logical, Phys: r.phys, Len: r.len, Gen: fs.gen})
		for k := int64(0); k < r.len; k++ {
			idx := logical + k
			fs.nextVer++
			ver := fs.nextVer
			i.PageVers[idx] = ver
			fs.csums[r.phys+k] = Checksum(ver)
			fs.rev[r.phys+k] = revEntry{ino: ino, idx: idx}
			key := fs.pageKey(ino, idx)
			pg, cached := fs.cache.Lookup(key)
			if !cached {
				pg = fs.cache.Insert(p, key, ver)
			}
			fs.cache.MarkDirty(pg, ver)
		}
		logical += r.len
	}
	fs.stats.WritesPages += n
	return nil
}

// Append adds n pages at the end of the file.
func (fs *FS) Append(p *sim.Proc, ino Ino, n int64) error {
	i, ok := fs.inodes[ino]
	if !ok {
		return fmt.Errorf("%w: inode %d", ErrNotFound, ino)
	}
	return fs.Write(p, ino, i.SizePg, n)
}

// Read brings n pages at page offset off into the cache, issuing device
// reads for misses and verifying checksums. Reads of holes yield zero
// pages without I/O.
func (fs *FS) Read(p *sim.Proc, ino Ino, off, n int64, class storage.Class, owner string) error {
	_, err := fs.ReadCount(p, ino, off, n, class, owner)
	return err
}

// ReadCount is Read, additionally returning how many pages required
// device I/O (cache misses). Callers must use this rather than diffing
// the global MissPages counter: other processes run while the read blocks
// on the device.
func (fs *FS) ReadCount(p *sim.Proc, ino Ino, off, n int64, class storage.Class, owner string) (int64, error) {
	i, ok := fs.inodes[ino]
	if !ok {
		return 0, fmt.Errorf("%w: inode %d", ErrNotFound, ino)
	}
	if i.Dir {
		return 0, fmt.Errorf("%w: inode %d", ErrIsDir, ino)
	}
	if off+n > i.SizePg {
		n = i.SizePg - off
	}
	if n <= 0 {
		return 0, nil
	}
	fs.stats.ReadsPages += n

	// Collect misses as (idx, block) pairs — remembering the checksum the
	// block is expected to verify against — then coalesce into physically
	// contiguous device reads. The staging buffer comes from a pool: the
	// process blocks on the device below, so other readers can be staging
	// concurrently in virtual time.
	mb := fs.getMissBuf()
	defer fs.putMissBuf(mb)
	misses := mb.m
	for idx := off; idx < off+n; idx++ {
		if fs.cache.Contains(fs.pageKey(ino, idx)) {
			fs.cache.Lookup(fs.pageKey(ino, idx)) // LRU touch + hit accounting
			continue
		}
		b, mapped := fs.Fibmap(ino, idx)
		if !mapped {
			fs.cache.Insert(p, fs.pageKey(ino, idx), 0) // hole: zero page
			continue
		}
		misses = append(misses, miss{idx: idx, block: b, wantCsum: fs.csums[b]})
	}
	mb.m = misses
	missed := int64(len(misses))
	fs.stats.MissPages += missed

	for s := 0; s < len(misses); {
		e := s + 1
		for e < len(misses) && misses[e].block == misses[e-1].block+1 && misses[e].idx == misses[e-1].idx+1 {
			e++
		}
		first := misses[s]
		count := e - s
		if err := fs.disk.Read(p, first.block, count, class, owner); err != nil {
			return missed, fmt.Errorf("cowfs read inode %d: %w", ino, err)
		}
		// Revalidate after the I/O: the file may have been deleted or
		// copy-on-written while this process was blocked on the device.
		if _, alive := fs.inodes[ino]; !alive {
			return missed, fmt.Errorf("%w: inode %d (deleted during read)", ErrNotFound, ino)
		}
		for k := 0; k < count; k++ {
			m := misses[s+k]
			if cur, mapped := fs.Fibmap(ino, m.idx); !mapped || cur != m.block {
				continue // remapped mid-read: the new data is (or will be) in cache
			}
			if fs.cache.Contains(fs.pageKey(ino, m.idx)) {
				continue // a concurrent write cached a newer copy
			}
			if fs.csums[m.block] != m.wantCsum {
				continue // block re-written (possibly in place) mid-read
			}
			ver := fs.diskVer[m.block]
			if Checksum(ver) != m.wantCsum {
				fs.stats.Corruptions++
				return missed, fmt.Errorf("%w: inode %d page %d block %d", ErrCorruption, ino, m.idx, m.block)
			}
			fs.cache.Insert(p, fs.pageKey(ino, m.idx), ver)
		}
		s = e
	}
	return missed, nil
}

// ReadFile brings the whole file into the cache.
func (fs *FS) ReadFile(p *sim.Proc, ino Ino, class storage.Class, owner string) error {
	i, ok := fs.inodes[ino]
	if !ok {
		return fmt.Errorf("%w: inode %d", ErrNotFound, ino)
	}
	return fs.Read(p, ino, 0, i.SizePg, class, owner)
}

// SetWritebackTag routes future writeback of the inode's dirty pages to
// the given class/owner (so defragmentation writes are billed to the
// defragmenter rather than the flusher).
func (fs *FS) SetWritebackTag(ino Ino, class storage.Class, owner string) {
	fs.wbTags[ino] = wbTag{class: class, owner: owner}
}

// WritebackPages implements pagecache.Backend: it writes the given dirty
// pages of one file to their (already assigned) blocks. It returns how
// many leading entries of indices are durably on the medium: all of
// them on success; on a device error, the prefix whose coalesced writes
// completed (a torn write persists a further partial run). The medium
// model (diskVer) is updated for exactly the persisted pages, so a
// crash after a failed writeback sees the same bytes a real disk would.
func (fs *FS) WritebackPages(p *sim.Proc, inoN uint64, indices []uint64) (int, error) {
	ino := Ino(inoN)
	i, ok := fs.inodes[ino]
	if !ok {
		return len(indices), nil // file deleted while dirty; nothing to write
	}
	class, owner := storage.ClassNormal, "writeback"
	if tag, tagged := fs.wbTags[ino]; tagged {
		class, owner = tag.class, tag.owner
	}
	// Capture (block, version) pairs now; apply to the medium after the
	// I/O completes, skipping pages remapped mid-flight. The staging
	// buffer is pooled: this process blocks on device writes, and the
	// flusher and eviction paths can both be in writeback at once.
	wbuf := fs.getWbBuf()
	defer fs.putWbBuf(wbuf)
	pages := wbuf.w
	for pos, idxU := range indices {
		idx := int64(idxU)
		b, mapped := fs.Fibmap(ino, idx)
		if !mapped || idx >= int64(len(i.PageVers)) {
			continue
		}
		pages = append(pages, wb{idx: idx, block: b, ver: i.PageVers[idx], pos: pos})
	}
	wbuf.w = pages
	slices.SortFunc(pages, func(a, b wb) int { return cmp.Compare(a.block, b.block) })
	var wbErr error
	for s := 0; s < len(pages); {
		e := s + 1
		for e < len(pages) && pages[e].block == pages[e-1].block+1 {
			e++
		}
		err := fs.disk.Write(p, pages[s].block, e-s, class, owner)
		done := e - s
		if err != nil {
			done = 0
			if k, torn := storage.TornBlocks(err); torn {
				done = k // leading blocks of the run reached the medium
			}
		}
		for k := s; k < s+done; k++ {
			pages[k].ok = true
		}
		if err != nil {
			wbErr = err
			break // remaining runs are not issued, like a real bio chain
		}
		s = e
	}
	applied := 0
	for _, w := range pages {
		if !w.ok {
			continue
		}
		applied++
		if b, mapped := fs.Fibmap(ino, w.idx); mapped && b == w.block {
			fs.diskVer[w.block] = w.ver
		}
	}
	// The cache's contract wants a prefix of the input order: the first
	// record (in staging order) that did not persist bounds it.
	persisted := len(indices)
	for _, w := range pages {
		if !w.ok && w.pos < persisted {
			persisted = w.pos
		}
	}
	fs.stats.WritebackPages += int64(applied)
	if wbErr != nil {
		fs.stats.WritebackErrors++
	}
	// Drop the tag once the file has no dirty pages left.
	if _, tagged := fs.wbTags[ino]; tagged {
		dirty := false
		fs.cache.IterateFile(fs.id, inoN, func(pg *pagecache.Page) bool {
			if pg.Dirty {
				dirty = true
				return false
			}
			return true
		})
		if !dirty {
			delete(fs.wbTags, ino)
		}
	}
	return persisted, wbErr
}

// Sync writes back all dirty pages of the filesystem's files.
func (fs *FS) Sync(p *sim.Proc) { fs.cache.Sync(p) }

// --- scrubbing support ---------------------------------------------------

// CorruptBlock silently corrupts the on-medium content of a block, as a
// latent error would (failure injection for the scrubber).
func (fs *FS) CorruptBlock(b int64) {
	fs.corrupt.Set(uint64(b))
	fs.diskVer[b] ^= 0xdeadbeef
}

// VerifyBlock reads a block from the device (unless its page is dirty in
// cache, i.e. not yet committed) and checks its checksum. It returns
// (readPerformed, error). The scrubber calls this for every allocated
// block; ErrCorruption indicates detected silent corruption.
//
// Verified blocks are inserted into the page cache (when the block still
// backs a live file page): the scrubber has the data in memory, and
// making it visible in the cache is what lets concurrently running tasks
// — backup in particular — share the scrubber's single pass over the
// device (§6.3).
func (fs *FS) VerifyBlock(p *sim.Proc, b int64, class storage.Class, owner string) (bool, error) {
	if !fs.Allocated(b) {
		return false, nil
	}
	if fs.blockDirtyInCache(b) {
		// Content is newer in memory; the medium copy is stale and will be
		// rewritten at flush, so there is nothing to verify yet.
		return false, nil
	}
	if err := fs.disk.Read(p, b, 1, class, owner); err != nil {
		return true, err
	}
	if err := fs.CheckBlock(b); err != nil {
		return true, err
	}
	fs.populateFromBlock(p, b)
	return true, nil
}

// VerifyRange reads and verifies count consecutive blocks with one device
// request, returning the first error. Unallocated or dirty blocks inside
// the range are skipped for verification but still read (the scrubber
// reads sequentially in large chunks). Verified blocks populate the page
// cache, as in VerifyBlock.
func (fs *FS) VerifyRange(p *sim.Proc, b int64, count int, class storage.Class, owner string) error {
	if err := fs.disk.Read(p, b, count, class, owner); err != nil {
		return err
	}
	for k := int64(0); k < int64(count); k++ {
		blk := b + k
		if !fs.Allocated(blk) || fs.blockDirtyInCache(blk) {
			continue
		}
		if err := fs.CheckBlock(blk); err != nil {
			return err
		}
		fs.populateFromBlock(p, blk)
	}
	return nil
}

// populateFromBlock inserts a just-read block's page into the cache when
// the block currently backs a file page.
func (fs *FS) populateFromBlock(p *sim.Proc, b int64) {
	o := fs.rev[b]
	if o.ino == 0 {
		return
	}
	if cur, mapped := fs.Fibmap(o.ino, o.idx); !mapped || cur != b {
		return
	}
	fs.cache.Insert(p, fs.pageKey(o.ino, o.idx), fs.diskVer[b])
}

// CheckBlock compares the medium content of an allocated block against its
// stored checksum without performing I/O (the device read must already
// have happened).
func (fs *FS) CheckBlock(b int64) error {
	if !fs.Allocated(b) {
		return nil
	}
	if fs.blockDirtyInCache(b) {
		return nil
	}
	if Checksum(fs.diskVer[b]) != fs.csums[b] {
		fs.stats.ScrubErrors++
		return fmt.Errorf("%w: block %d", ErrCorruption, b)
	}
	return nil
}

// RepairBlock rewrites a corrupted block from its checksummed version
// (in a real system: from a redundant copy). It also clears any injected
// device-level bad-block state, modelling sector reallocation.
func (fs *FS) RepairBlock(p *sim.Proc, b int64, class storage.Class, owner string) error {
	if !fs.Allocated(b) {
		return nil
	}
	fs.disk.RepairBlock(b)
	fs.corrupt.Unset(uint64(b))
	// Restore the version whose checksum is stored. We recover it from
	// the owning file's extent map.
	ino, idx, ok := fs.blockOwner(b)
	if !ok {
		return fmt.Errorf("cowfs: cannot repair unowned block %d", b)
	}
	i := fs.inodes[ino]
	fs.diskVer[b] = i.PageVers[idx]
	return fs.disk.Write(p, b, 1, class, owner)
}

// blockOwner finds a file referencing block b (linear in file count; used
// only on the rare repair path).
func (fs *FS) blockOwner(b int64) (Ino, int64, bool) {
	inos := make([]Ino, 0, len(fs.inodes))
	for ino := range fs.inodes {
		inos = append(inos, ino)
	}
	sort.Slice(inos, func(x, y int) bool { return inos[x] < inos[y] })
	for _, ino := range inos {
		i := fs.inodes[ino]
		if i.Dir {
			continue
		}
		for _, e := range i.Extents {
			if b >= e.Phys && b < e.Phys+e.Len {
				return ino, e.Logical + (b - e.Phys), true
			}
		}
	}
	return 0, 0, false
}

// blockDirtyInCache reports whether the page currently mapped to block b
// is dirty in the cache. Stale reverse-map entries (COW moved the page to
// a new block, leaving b to a snapshot) report false: the medium copy of
// such a block is stable.
func (fs *FS) blockDirtyInCache(b int64) bool {
	o := fs.rev[b]
	if o.ino == 0 {
		return false
	}
	if cur, mapped := fs.Fibmap(o.ino, o.idx); !mapped || cur != b {
		return false
	}
	pg, cached := fs.cache.Peek(fs.pageKey(o.ino, o.idx))
	return cached && pg.Dirty
}
