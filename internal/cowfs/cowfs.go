// Package cowfs simulates a copy-on-write filesystem in the style of
// Btrfs, providing the structural properties the paper's maintenance
// tasks depend on:
//
//   - every write allocates new blocks (copy-on-write), so random writes
//     fragment files and break sharing with snapshots;
//   - a checksum is stored for every block, updated on write and verified
//     on read, so a read doubles as a scrub of the block (§5.1);
//   - snapshots share blocks with the live tree through per-block
//     reference counts, standing in for Btrfs back-references (§5.2);
//   - logical-to-physical mapping is exposed FIBMAP-style so block tasks
//     can be informed of file-level accesses (§4.2);
//   - files can be defragmented by rewriting them into one extent (§5.3).
//
// All I/O flows through the shared page cache (internal/pagecache), which
// is where Duet observes it. Sizes are in 4 KiB pages; one page maps to
// one device block.
package cowfs

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"duet/internal/bitmap"
	"duet/internal/pagecache"
	"duet/internal/sim"
	"duet/internal/storage"
)

// Ino is an inode number.
type Ino uint64

// RootIno is the inode number of the filesystem root directory.
const RootIno Ino = 1

// Sentinel errors.
var (
	ErrNotFound   = errors.New("cowfs: no such file or directory")
	ErrExists     = errors.New("cowfs: file exists")
	ErrNotDir     = errors.New("cowfs: not a directory")
	ErrIsDir      = errors.New("cowfs: is a directory")
	ErrNotEmpty   = errors.New("cowfs: directory not empty")
	ErrNoSpace    = errors.New("cowfs: no space left on device")
	ErrCorruption = errors.New("cowfs: checksum mismatch (silent corruption)")
)

// Extent maps a run of logical pages to physical blocks.
type Extent struct {
	Logical int64  // first page index
	Phys    int64  // first device block
	Len     int64  // pages
	Gen     uint64 // filesystem generation when written
}

// Inode is a file or directory.
type Inode struct {
	Ino      Ino
	Name     string
	Parent   Ino
	Dir      bool
	SizePg   int64 // size in pages (files)
	Extents  []Extent
	PageVers []uint64       // content version per page
	Children map[string]Ino // directories only
	Gen      uint64         // generation of last modification

	// sortedNames caches the children's names in sorted order; valid when
	// namesOK. Invalidated by dirAdd/dirRemove so repeated directory
	// listings do not re-sort an unchanged directory.
	sortedNames []string
	namesOK     bool
}

// VFSHook observes namespace changes; Duet registers one to track files
// moving into or out of a registered directory (§4.1).
type VFSHook interface {
	// Moved fires after ino is renamed from oldParent to newParent.
	Moved(ino Ino, isDir bool, oldParent, newParent Ino)
}

// Stats counts filesystem activity.
type Stats struct {
	ReadsPages      int64 // pages served to readers (hit or miss)
	MissPages       int64 // pages that required device reads
	WritesPages     int64
	WritebackPages  int64
	WritebackErrors int64 // writeback device errors (partial or total)
	Corruptions     int64 // checksum failures detected on read
	ScrubErrors     int64 // checksum failures detected by VerifyBlock
	CowReallocation int64 // blocks re-allocated due to snapshot sharing
	Commits         int64 // successful durability barriers (durable.go)
}

// FS is a simulated copy-on-write filesystem on one device.
type FS struct {
	eng   sim.Host
	id    pagecache.FSID
	disk  *storage.Disk
	cache *pagecache.Cache

	inodes  map[Ino]*Inode
	nextIno Ino
	gen     uint64
	nextVer uint64

	free       *freeIndex // two-level free-space index (freeindex.go)
	freeBlocks int64
	refs       []int32  // per-block reference count
	csums      []uint64 // per-block stored checksum
	diskVer    []uint64 // per-block content version on the medium
	rev        []revEntry
	corrupt    *bitmap.Sparse // blocks with injected silent corruption

	hooks  []VFSHook
	wbTags map[Ino]wbTag
	stats  Stats
	obs    *fsObs // nil unless observability is on (see obs.go)

	// Durability state (nil/empty until EnableDurability; see durable.go).
	durable      *checkpoint
	deferredFree []int64 // zero-ref blocks held until the next commit
	cpMark       []bool  // scratch: blocks referenced by the checkpoint
	markScratch  []int64
	quarScratch  []pagecache.PageKey

	// Scratch storage for the allocation-free hot paths. freed is safe as
	// a single buffer because spliceOut never blocks between filling and
	// draining it; the run/miss/writeback buffers are pooled because their
	// holders block on cache or device I/O, so several processes can be
	// mid-operation in virtual time.
	freed    []blkRange
	runBufs  *runBuf
	missBufs *missBuf
	wbBufs   *wbBuf
}

// wbTag routes writeback I/O for an inode's dirty pages to a specific
// class/owner (used so defragmentation writes are billed as maintenance).
type wbTag struct {
	class storage.Class
	owner string
}

// revEntry is the reverse map from a block to the file page that last
// wrote it. Entries can go stale when COW remaps the page; consumers
// validate against Fibmap.
type revEntry struct {
	ino Ino
	idx int64
}

// New creates an empty filesystem spanning the whole device, using the
// shared page cache for all file data.
func New(e sim.Host, id pagecache.FSID, disk *storage.Disk, cache *pagecache.Cache) *FS {
	nb := disk.Blocks()
	fs := &FS{
		eng:     e,
		id:      id,
		disk:    disk,
		cache:   cache,
		inodes:  make(map[Ino]*Inode),
		nextIno: RootIno + 1,
		free:    newFreeIndex(),
		refs:    make([]int32, nb),
		csums:   make([]uint64, nb),
		diskVer: make([]uint64, nb),
		rev:     make([]revEntry, nb),
		corrupt: bitmap.New(),
		wbTags:  make(map[Ino]wbTag),
	}
	fs.free.add(0, nb)
	fs.freeBlocks = nb
	fs.inodes[RootIno] = &Inode{Ino: RootIno, Name: "/", Parent: RootIno, Dir: true, Children: map[string]Ino{}}
	cache.RegisterFS(id, fs)
	return fs
}

// ID returns the filesystem's page-cache identifier.
func (fs *FS) ID() pagecache.FSID { return fs.id }

// Disk returns the underlying device.
func (fs *FS) Disk() *storage.Disk { return fs.disk }

// Cache returns the page cache.
func (fs *FS) Cache() *pagecache.Cache { return fs.cache }

// Stats returns live statistics.
func (fs *FS) Stats() *Stats { return &fs.stats }

// Generation returns the current filesystem generation.
func (fs *FS) Generation() uint64 { return fs.gen }

// FreeBlocks returns the number of unallocated device blocks.
func (fs *FS) FreeBlocks() int64 { return fs.freeBlocks }

// AddVFSHook registers a namespace-change observer.
func (fs *FS) AddVFSHook(h VFSHook) { fs.hooks = append(fs.hooks, h) }

// Inode returns the inode by number.
func (fs *FS) Inode(ino Ino) (*Inode, bool) {
	i, ok := fs.inodes[ino]
	return i, ok
}

// Checksum is the content checksum function: FNV-1a over the version.
func Checksum(version uint64) uint64 {
	h := uint64(14695981039346656037)
	for s := 0; s < 64; s += 8 {
		h ^= (version >> s) & 0xff
		h *= 1099511628211
	}
	return h
}

// --- namespace -----------------------------------------------------------

func splitPath(path string) []string {
	parts := strings.Split(path, "/")
	out := parts[:0]
	for _, s := range parts {
		if s != "" && s != "." {
			out = append(out, s)
		}
	}
	return out
}

// Lookup resolves a path to an inode.
func (fs *FS) Lookup(path string) (*Inode, error) {
	cur := fs.inodes[RootIno]
	for _, name := range splitPath(path) {
		if !cur.Dir {
			return nil, fmt.Errorf("%w: %s", ErrNotDir, path)
		}
		next, ok := cur.Children[name]
		if !ok {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, path)
		}
		cur = fs.inodes[next]
	}
	return cur, nil
}

// PathOf returns the absolute path of an inode.
func (fs *FS) PathOf(ino Ino) (string, error) {
	i, ok := fs.inodes[ino]
	if !ok {
		return "", fmt.Errorf("%w: inode %d", ErrNotFound, ino)
	}
	if i.Ino == RootIno {
		return "/", nil
	}
	var parts []string
	for i.Ino != RootIno {
		parts = append(parts, i.Name)
		p, ok := fs.inodes[i.Parent]
		if !ok {
			return "", fmt.Errorf("%w: orphan inode %d", ErrNotFound, ino)
		}
		i = p
	}
	for l, r := 0, len(parts)-1; l < r; l, r = l+1, r-1 {
		parts[l], parts[r] = parts[r], parts[l]
	}
	return "/" + strings.Join(parts, "/"), nil
}

// Within reports whether ino lies within (or is) the directory root, and
// if so returns its path relative to root ("" for root itself). It walks
// parent pointers, as Duet's relevance check does (§4.1).
func (fs *FS) Within(ino, root Ino) (string, bool) {
	i, ok := fs.inodes[ino]
	if !ok {
		return "", false
	}
	var parts []string
	for {
		if i.Ino == root {
			for l, r := 0, len(parts)-1; l < r; l, r = l+1, r-1 {
				parts[l], parts[r] = parts[r], parts[l]
			}
			return strings.Join(parts, "/"), true
		}
		if i.Ino == RootIno {
			return "", false
		}
		parts = append(parts, i.Name)
		p, ok := fs.inodes[i.Parent]
		if !ok {
			return "", false
		}
		i = p
	}
}

// dirAdd links a child into a directory, invalidating its cached name
// order. All namespace mutations go through dirAdd/dirRemove so the
// ChildrenSorted cache can never go stale.
func (fs *FS) dirAdd(dir *Inode, name string, child Ino) {
	dir.Children[name] = child
	dir.namesOK = false
}

// dirRemove unlinks a child from a directory, invalidating its cached
// name order.
func (fs *FS) dirRemove(dir *Inode, name string) {
	delete(dir.Children, name)
	dir.namesOK = false
}

func (fs *FS) newInode(name string, parent Ino, dir bool) *Inode {
	ino := fs.nextIno
	fs.nextIno++
	i := &Inode{Ino: ino, Name: name, Parent: parent, Dir: dir}
	if dir {
		i.Children = map[string]Ino{}
	}
	fs.inodes[ino] = i
	return i
}

// create makes a new entry under the parent of path.
func (fs *FS) create(path string, dir bool) (*Inode, error) {
	parts := splitPath(path)
	if len(parts) == 0 {
		return nil, fmt.Errorf("%w: %q", ErrExists, path)
	}
	parentPath := strings.Join(parts[:len(parts)-1], "/")
	parent, err := fs.Lookup(parentPath)
	if err != nil {
		return nil, err
	}
	if !parent.Dir {
		return nil, fmt.Errorf("%w: %s", ErrNotDir, parentPath)
	}
	name := parts[len(parts)-1]
	if _, ok := parent.Children[name]; ok {
		return nil, fmt.Errorf("%w: %s", ErrExists, path)
	}
	i := fs.newInode(name, parent.Ino, dir)
	fs.dirAdd(parent, name, i.Ino)
	fs.gen++
	i.Gen = fs.gen
	return i, nil
}

// Create makes an empty file.
func (fs *FS) Create(path string) (*Inode, error) { return fs.create(path, false) }

// Mkdir makes a directory.
func (fs *FS) Mkdir(path string) (*Inode, error) { return fs.create(path, true) }

// MkdirAll makes a directory and any missing parents.
func (fs *FS) MkdirAll(path string) (*Inode, error) {
	parts := splitPath(path)
	cur := fs.inodes[RootIno]
	for _, name := range parts {
		next, ok := cur.Children[name]
		if !ok {
			i := fs.newInode(name, cur.Ino, true)
			fs.dirAdd(cur, name, i.Ino)
			cur = i
			continue
		}
		cur = fs.inodes[next]
		if !cur.Dir {
			return nil, fmt.Errorf("%w: %s", ErrNotDir, name)
		}
	}
	return cur, nil
}

// ChildrenSorted returns a directory's entries in name order
// (deterministic iteration for tasks that traverse the namespace). The
// sorted name order is cached on the directory inode and invalidated on
// create/delete/rename, so repeated listings of a stable directory skip
// the sort.
func (fs *FS) ChildrenSorted(dir *Inode) []*Inode {
	if !dir.namesOK {
		dir.sortedNames = dir.sortedNames[:0]
		for n := range dir.Children {
			dir.sortedNames = append(dir.sortedNames, n)
		}
		sort.Strings(dir.sortedNames)
		dir.namesOK = true
	}
	out := make([]*Inode, 0, len(dir.sortedNames))
	for _, n := range dir.sortedNames {
		out = append(out, fs.inodes[dir.Children[n]])
	}
	return out
}

// FilesUnder returns all regular files in the subtree rooted at dir,
// sorted by inode number (the processing order of the paper's backup and
// defragmentation tasks, Table 3).
func (fs *FS) FilesUnder(dir Ino) []*Inode {
	d, ok := fs.inodes[dir]
	if !ok || !d.Dir {
		return nil
	}
	var files []*Inode
	var walk func(i *Inode)
	walk = func(i *Inode) {
		for _, c := range fs.ChildrenSorted(i) {
			if c.Dir {
				walk(c)
			} else {
				files = append(files, c)
			}
		}
	}
	walk(d)
	sort.Slice(files, func(a, b int) bool { return files[a].Ino < files[b].Ino })
	return files
}

// Rename moves oldPath to newPath (which must not exist; its parent must).
// VFS hooks observe the move so Duet can track registered-directory
// membership.
func (fs *FS) Rename(oldPath, newPath string) error {
	src, err := fs.Lookup(oldPath)
	if err != nil {
		return err
	}
	if src.Ino == RootIno {
		return fmt.Errorf("%w: cannot move root", ErrIsDir)
	}
	parts := splitPath(newPath)
	if len(parts) == 0 {
		return fmt.Errorf("%w: %q", ErrExists, newPath)
	}
	dstParent, err := fs.Lookup(strings.Join(parts[:len(parts)-1], "/"))
	if err != nil {
		return err
	}
	if !dstParent.Dir {
		return fmt.Errorf("%w: %s", ErrNotDir, newPath)
	}
	newName := parts[len(parts)-1]
	if _, ok := dstParent.Children[newName]; ok {
		return fmt.Errorf("%w: %s", ErrExists, newPath)
	}
	// Prevent moving a directory into its own subtree.
	if src.Dir {
		for a := dstParent; ; {
			if a.Ino == src.Ino {
				return fmt.Errorf("%w: move into own subtree", ErrExists)
			}
			if a.Ino == RootIno {
				break
			}
			a = fs.inodes[a.Parent]
		}
	}
	oldParent := src.Parent
	fs.dirRemove(fs.inodes[oldParent], src.Name)
	src.Name = newName
	src.Parent = dstParent.Ino
	fs.dirAdd(dstParent, newName, src.Ino)
	fs.gen++
	src.Gen = fs.gen
	for _, h := range fs.hooks {
		h.Moved(src.Ino, src.Dir, oldParent, dstParent.Ino)
	}
	return nil
}

// Delete removes a file or an empty directory, releasing blocks and
// dropping cached pages.
func (fs *FS) Delete(path string) error {
	i, err := fs.Lookup(path)
	if err != nil {
		return err
	}
	return fs.deleteInode(i)
}

func (fs *FS) deleteInode(i *Inode) error {
	if i.Ino == RootIno {
		return fmt.Errorf("%w: cannot delete root", ErrIsDir)
	}
	if i.Dir && len(i.Children) > 0 {
		return fmt.Errorf("%w: %s", ErrNotEmpty, i.Name)
	}
	for _, ext := range i.Extents {
		for b := ext.Phys; b < ext.Phys+ext.Len; b++ {
			fs.deref(b)
		}
	}
	fs.cache.RemoveFile(fs.id, uint64(i.Ino))
	fs.dirRemove(fs.inodes[i.Parent], i.Name)
	delete(fs.inodes, i.Ino)
	delete(fs.wbTags, i.Ino)
	fs.gen++
	return nil
}

// DeleteTree removes a whole subtree.
func (fs *FS) DeleteTree(path string) error {
	i, err := fs.Lookup(path)
	if err != nil {
		return err
	}
	var walk func(n *Inode) error
	walk = func(n *Inode) error {
		if n.Dir {
			for _, c := range fs.ChildrenSorted(n) {
				if err := walk(c); err != nil {
					return err
				}
			}
		}
		return fs.deleteInode(n)
	}
	return walk(i)
}
