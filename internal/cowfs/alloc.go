package cowfs

// Block allocation. Free space is kept in the two-level index of
// freeindex.go: address-ordered free runs plus size-class buckets.
// Allocation is first-fit from a caller-supplied hint, falling back to a
// scan from the start of the device — the same placement policy as the
// original red-black-tree first-fit walk, now answered in O(log n) probes.
// Copy-on-write means every overwrite allocates, so under a random-write
// workload the free list — and therefore file layout — fragments
// naturally, which is exactly the behaviour the defragmentation
// experiments need.

// run is a contiguous allocation.
type run struct {
	phys int64
	len  int64
}

// runBuf is a pooled buffer for allocate results. Callers hold one across
// the blocking cache operations that follow an allocation, so buffers are
// pooled (not a single FS scratch): several processes can be mid-write in
// virtual time at once.
type runBuf struct {
	runs []run
	next *runBuf
}

func (fs *FS) getRunBuf() *runBuf {
	b := fs.runBufs
	if b == nil {
		return &runBuf{}
	}
	fs.runBufs = b.next
	b.next = nil
	b.runs = b.runs[:0]
	return b
}

func (fs *FS) putRunBuf(b *runBuf) {
	b.next = fs.runBufs
	fs.runBufs = b
}

// insertFree returns [start, start+length) to the free index, merging with
// adjacent free runs.
func (fs *FS) insertFree(start, length int64) {
	if length <= 0 {
		return
	}
	// Merge with the left neighbour if it ends exactly at start.
	if ls, ll, ok := fs.free.runs.Floor(start); ok {
		if ls+ll == start {
			fs.free.remove(ls, ll)
			start, length = ls, ll+length
		}
	}
	// Merge with the right neighbour if it begins at our end.
	if rs, rl, ok := fs.free.runs.Ceiling(start + length); ok {
		if rs == start+length {
			fs.free.remove(rs, rl)
			length += rl
		}
	}
	fs.free.add(start, length)
	// freeBlocks is maintained by the callers (deref and allocate).
}

// carve removes [at, at+length) from the free run that contains it,
// splitting the run as needed.
func (fs *FS) carve(at, length int64) {
	s, l, ok := fs.free.runs.Floor(at)
	if !ok || at+length > s+l {
		panic("cowfs: carve outside free extent")
	}
	fs.free.remove(s, l)
	if s < at {
		fs.free.add(s, at-s)
	}
	if at+length < s+l {
		fs.free.add(at+length, s+l-(at+length))
	}
}

// allocate obtains n blocks, preferring space at or after hint — including
// the middle of a free run spanning the hint, so a caller can place data
// at a chosen device location. When no single free run can hold n blocks,
// the allocation splits across multiple runs (producing a fragmented
// file). Results are appended to buf, which the caller typically takes
// from the run-buffer pool (getRunBuf); the appended slice is returned.
// Returns ErrNoSpace if fewer than n blocks are free in total.
func (fs *FS) allocate(n, hint int64, buf []run) ([]run, error) {
	if n <= 0 {
		return buf, nil
	}
	if n > fs.freeBlocks {
		return buf, ErrNoSpace
	}
	remaining := n
	for remaining > 0 {
		at, avail, ok := fs.findSpace(remaining, hint)
		length := remaining
		if !ok {
			// No run holds the remainder in one piece: take what is
			// available nearest the hint and keep going.
			at, avail, ok = fs.anySpace(hint)
			if !ok {
				return buf, ErrNoSpace // unreachable given freeBlocks check
			}
			if avail < length {
				length = avail
			}
		}
		fs.carve(at, length)
		fs.freeBlocks -= length
		buf = append(buf, run{phys: at, len: length})
		for b := at; b < at+length; b++ {
			fs.refs[b] = 1
		}
		remaining -= length
		hint = at + length
	}
	return buf, nil
}

// findSpace locates space for n blocks at or after hint: first inside the
// free run spanning the hint, then the lowest-addressed later run that
// fits, wrapping to the device start if needed. Returns the allocation
// position and the contiguous space available there.
func (fs *FS) findSpace(n, hint int64) (at, avail int64, ok bool) {
	if s, l, found := fs.free.runs.Floor(hint); found && s+l > hint && s+l-hint >= n {
		return hint, s + l - hint, true
	}
	if at, avail, found := fs.free.findFit(n, hint, int64(1)<<62); found {
		return at, avail, true
	}
	if hint > 0 {
		if at, avail, found := fs.free.findFit(n, 0, hint); found {
			return at, avail, true
		}
	}
	return 0, 0, false
}

// anySpace returns the free space nearest at/after hint (inside a spanning
// run, at a following run, or wrapping to the lowest run).
func (fs *FS) anySpace(hint int64) (at, avail int64, ok bool) {
	if s, l, found := fs.free.runs.Floor(hint); found && s+l > hint {
		return hint, s + l - hint, true
	}
	if s, l, found := fs.free.runs.Ceiling(hint); found {
		return s, l, true
	}
	if s, l, found := fs.free.runs.Min(); found {
		return s, l, true
	}
	return 0, 0, false
}

// ref increments a block's reference count (snapshot sharing).
func (fs *FS) ref(b int64) { fs.refs[b]++ }

// deref decrements a block's reference count, freeing it at zero. With
// durability enabled the free is deferred to the next commit instead:
// the last checkpoint may still reference the block, so handing it to
// the allocator before the checkpoint moves on would let an overwrite
// destroy committed data (see durable.go).
func (fs *FS) deref(b int64) {
	fs.refs[b]--
	if fs.refs[b] > 0 {
		return
	}
	if fs.refs[b] < 0 {
		panic("cowfs: negative block refcount")
	}
	if fs.durable != nil {
		fs.deferFree(b)
		return
	}
	fs.csums[b] = 0
	fs.rev[b] = revEntry{}
	fs.corrupt.Unset(uint64(b))
	fs.insertFree(b, 1)
	fs.freeBlocks++
}

// Allocated reports whether block b is referenced by any file or snapshot.
func (fs *FS) Allocated(b int64) bool {
	return b >= 0 && b < int64(len(fs.refs)) && fs.refs[b] > 0
}

// AllocatedBlocks returns the total number of referenced blocks.
func (fs *FS) AllocatedBlocks() int64 { return fs.disk.Blocks() - fs.freeBlocks }

// NextAllocated returns the first allocated block >= from, scanning the
// reference-count table (the scrubber's sequential pass uses this).
func (fs *FS) NextAllocated(from int64) (int64, bool) {
	for b := from; b < int64(len(fs.refs)); b++ {
		if fs.refs[b] > 0 {
			return b, true
		}
	}
	return 0, false
}
