package cowfs

// Block allocation. Free space is kept as address-ordered free extents in
// a red-black tree; allocation is first-fit from a caller-supplied hint,
// falling back to a scan from the start of the device. Copy-on-write
// means every overwrite allocates, so under a random-write workload the
// free list — and therefore file layout — fragments naturally, which is
// exactly the behaviour the defragmentation experiments need.

// run is a contiguous allocation.
type run struct {
	phys int64
	len  int64
}

// insertFree returns [start, start+length) to the free list, merging with
// adjacent free extents.
func (fs *FS) insertFree(start, length int64) {
	if length <= 0 {
		return
	}
	// Merge with the left neighbour if it ends exactly at start.
	if ls, ll, ok := fs.free.Floor(start); ok {
		if ls+ll == start {
			fs.free.Delete(ls)
			start, length = ls, ll+length
		}
	}
	// Merge with the right neighbour if it begins at our end.
	if rs, rl, ok := fs.free.Ceiling(start + length); ok {
		if rs == start+length {
			fs.free.Delete(rs)
			length += rl
		}
	}
	fs.free.Set(start, length)
	// freeBlocks is maintained by the callers (deref and allocate).
}

// carve removes [at, at+length) from the free extent that contains it,
// splitting the extent as needed.
func (fs *FS) carve(at, length int64) {
	s, l, ok := fs.free.Floor(at)
	if !ok || at+length > s+l {
		panic("cowfs: carve outside free extent")
	}
	fs.free.Delete(s)
	if s < at {
		fs.free.Set(s, at-s)
	}
	if at+length < s+l {
		fs.free.Set(at+length, s+l-(at+length))
	}
}

// allocate obtains n blocks, preferring space at or after hint — including
// the middle of a free extent spanning the hint, so a caller can place
// data at a chosen device location. When no single free extent can hold n
// blocks, the allocation splits across multiple runs (producing a
// fragmented file). Returns ErrNoSpace if fewer than n blocks are free in
// total.
func (fs *FS) allocate(n int64, hint int64) ([]run, error) {
	if n <= 0 {
		return nil, nil
	}
	if n > fs.freeBlocks {
		return nil, ErrNoSpace
	}
	var runs []run
	remaining := n
	for remaining > 0 {
		at, avail, ok := fs.findSpace(remaining, hint)
		length := remaining
		if !ok {
			// No extent holds the remainder in one piece: take what is
			// available nearest the hint and keep going.
			at, avail, ok = fs.anySpace(hint)
			if !ok {
				return nil, ErrNoSpace // unreachable given freeBlocks check
			}
			if avail < length {
				length = avail
			}
		}
		fs.carve(at, length)
		fs.freeBlocks -= length
		runs = append(runs, run{phys: at, len: length})
		for b := at; b < at+length; b++ {
			fs.refs[b] = 1
		}
		remaining -= length
		hint = at + length
	}
	return runs, nil
}

// findSpace locates space for n blocks at or after hint: first inside the
// free extent spanning the hint, then the first later extent that fits,
// wrapping to the device start if needed. Returns the allocation position
// and the contiguous space available there.
func (fs *FS) findSpace(n, hint int64) (at, avail int64, ok bool) {
	if s, l, found := fs.free.Floor(hint); found && s+l > hint && s+l-hint >= n {
		return hint, s + l - hint, true
	}
	found := false
	fs.free.Ascend(&hint, func(s, l int64) bool {
		if l >= n {
			at, avail, found = s, l, true
			return false
		}
		return true
	})
	if !found && hint > 0 {
		fs.free.Ascend(nil, func(s, l int64) bool {
			if s >= hint {
				return false
			}
			if l >= n {
				at, avail, found = s, l, true
				return false
			}
			return true
		})
	}
	return at, avail, found
}

// anySpace returns the free space nearest at/after hint (inside a spanning
// extent, at a following extent, or wrapping to the lowest extent).
func (fs *FS) anySpace(hint int64) (at, avail int64, ok bool) {
	if s, l, found := fs.free.Floor(hint); found && s+l > hint {
		return hint, s + l - hint, true
	}
	if s, l, found := fs.free.Ceiling(hint); found {
		return s, l, true
	}
	if s, l, found := fs.free.Min(); found {
		return s, l, true
	}
	return 0, 0, false
}

// ref increments a block's reference count (snapshot sharing).
func (fs *FS) ref(b int64) { fs.refs[b]++ }

// deref decrements a block's reference count, freeing it at zero.
func (fs *FS) deref(b int64) {
	fs.refs[b]--
	if fs.refs[b] > 0 {
		return
	}
	if fs.refs[b] < 0 {
		panic("cowfs: negative block refcount")
	}
	fs.csums[b] = 0
	fs.rev[b] = revEntry{}
	delete(fs.corrupt, b)
	fs.insertFree(b, 1)
	fs.freeBlocks++
}

// Allocated reports whether block b is referenced by any file or snapshot.
func (fs *FS) Allocated(b int64) bool {
	return b >= 0 && b < int64(len(fs.refs)) && fs.refs[b] > 0
}

// AllocatedBlocks returns the total number of referenced blocks.
func (fs *FS) AllocatedBlocks() int64 { return fs.disk.Blocks() - fs.freeBlocks }

// NextAllocated returns the first allocated block >= from, scanning the
// reference-count table (the scrubber's sequential pass uses this).
func (fs *FS) NextAllocated(from int64) (int64, bool) {
	for b := from; b < int64(len(fs.refs)); b++ {
		if fs.refs[b] > 0 {
			return b, true
		}
	}
	return 0, false
}
