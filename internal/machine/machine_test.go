package machine

import (
	"math/rand"
	"testing"

	"duet/internal/core"
	"duet/internal/lfs"
	"duet/internal/sim"
	"duet/internal/storage"
)

func TestConfigValidation(t *testing.T) {
	cases := []Config{
		{DeviceBlocks: 0, CachePages: 10},
		{DeviceBlocks: 100, CachePages: 0},
		{DeviceBlocks: 100, CachePages: 10, Scheduler: "bogus"},
	}
	for i, c := range cases {
		if _, err := New(c); err == nil {
			t.Errorf("case %d: config accepted: %+v", i, c)
		}
	}
	if _, err := New(Config{DeviceBlocks: 100, CachePages: 10, Device: "floppy"}); err == nil {
		t.Error("unknown device accepted")
	}
}

func TestDefaultsApplied(t *testing.T) {
	m, err := New(Config{Seed: 1, DeviceBlocks: 4096, CachePages: 128})
	if err != nil {
		t.Fatal(err)
	}
	if m.Disk.Model().Name() != "hdd" {
		t.Errorf("default device = %s", m.Disk.Model().Name())
	}
	if m.Duet == nil || m.Adapter == nil || m.FS == nil {
		t.Error("machine not fully assembled")
	}
}

func TestModelOverride(t *testing.T) {
	slow := storage.DefaultHDD(4096).Slowed(4)
	m, err := New(Config{Seed: 1, DeviceBlocks: 4096, CachePages: 128, Model: slow})
	if err != nil {
		t.Fatal(err)
	}
	if m.Disk.Model() != storage.Model(slow) {
		t.Error("model override ignored")
	}
	// Slowed scales every latency by the factor (within integer-nanosecond
	// rounding of the per-component scaling).
	base := storage.DefaultHDD(4096)
	r := &storage.Request{Block: 2048, Count: 1}
	got, want := slow.ServiceTime(r, 0), base.ServiceTime(r, 0).Scale(4)
	diff := got - want
	if diff < 0 {
		diff = -diff
	}
	if diff > 10*sim.Microsecond {
		t.Errorf("Slowed service time %v, want ~%v", got, want)
	}
}

func TestIdleGraceWiring(t *testing.T) {
	m, err := New(Config{Seed: 1, DeviceBlocks: 1 << 16, CachePages: 128, IdleGrace: 44 * sim.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	// Behavioural check: an idle request on a fresh machine (lastNormal=0)
	// completes only after the configured grace.
	var doneAt sim.Time
	m.Eng.Go("idle", func(p *sim.Proc) {
		if err := m.Disk.Read(p, 0, 1, storage.ClassIdle, "m"); err != nil {
			t.Error(err)
		}
		doneAt = p.Now()
		m.Eng.Stop()
	})
	if err := m.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	if doneAt < 44*sim.Millisecond {
		t.Errorf("idle I/O at %v, want >= 44ms grace", doneAt)
	}
}

func TestPopulateSpecSizing(t *testing.T) {
	spec := DefaultPopulateSpec("/data", 3200)
	if spec.Files != 100 || spec.MeanFilePages != 32 {
		t.Errorf("spec = %+v", spec)
	}
	m, err := New(Config{Seed: 1, DeviceBlocks: 1 << 15, CachePages: 256})
	if err != nil {
		t.Fatal(err)
	}
	files, err := m.Populate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 100 {
		t.Fatalf("files = %d", len(files))
	}
	var total int64
	frag := 0
	for _, f := range files {
		total += f.SizePg
		if len(f.Extents) >= spec.FragmentExtents {
			frag++
		}
	}
	// Mean 32 pages: total should be within 2x of the target.
	if total < 1600 || total > 6400 {
		t.Errorf("total pages = %d, want ~3200", total)
	}
	// ~10% fragmented.
	if frag == 0 || frag > 30 {
		t.Errorf("fragmented files = %d, want ~10", frag)
	}
	if m.FS.AllocatedBlocks() != total {
		t.Errorf("allocated %d != total %d", m.FS.AllocatedBlocks(), total)
	}
}

func TestPopulateDeterministic(t *testing.T) {
	build := func() []int64 {
		m, err := New(Config{Seed: 99, DeviceBlocks: 1 << 15, CachePages: 256})
		if err != nil {
			t.Fatal(err)
		}
		files, err := m.Populate(DefaultPopulateSpec("/data", 3200))
		if err != nil {
			t.Fatal(err)
		}
		var sizes []int64
		for _, f := range files {
			sizes = append(sizes, f.SizePg)
		}
		return sizes
	}
	a, b := build(), build()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("populate not deterministic at file %d", i)
		}
	}
}

func TestAddSecondFilesystems(t *testing.T) {
	m, err := New(Config{Seed: 1, DeviceBlocks: 1 << 15, CachePages: 256})
	if err != nil {
		t.Fatal(err)
	}
	fs2, ad2, err := m.AddCowFS("sdb", 1<<14, HDD)
	if err != nil {
		t.Fatal(err)
	}
	if fs2.ID() == m.FS.ID() {
		t.Error("second fs shares FSID")
	}
	if ad2.FSID() != fs2.ID() {
		t.Error("adapter FSID mismatch")
	}
	lf, adL, err := m.AddLFS("nvme0", 1<<14, SSD, lfs.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if lf.ID() == fs2.ID() || adL.FSID() != lf.ID() {
		t.Error("lfs FSID wiring wrong")
	}
}

func TestGammaishBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	sum := 0
	for i := 0; i < 10000; i++ {
		v := gammaish(rng, 32)
		if v < 1 || v > 512 {
			t.Fatalf("size %d out of bounds", v)
		}
		sum += v
	}
	mean := float64(sum) / 10000
	if mean < 24 || mean > 40 {
		t.Errorf("mean = %.1f, want ~32", mean)
	}
}

func TestNewLFSMachine(t *testing.T) {
	m, err := NewLFS(Config{Seed: 1, DeviceBlocks: 1 << 14, CachePages: 128},
		lfs.Config{SegBlocks: 64, ReservedSegs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if m.FS.Segments() != (1<<14)/64 {
		t.Errorf("segments = %d", m.FS.Segments())
	}
	if m.Adapter.FSID() != m.FS.ID() {
		t.Error("adapter mismatch")
	}
}

// TestBaselineEventFiltering asserts the global-interest-mask contract
// at the assembled-machine level: with Duet loaded but no session
// registered, every page event is filtered before hook dispatch, and
// opening a session flips the mask so events start reaching the hook.
func TestBaselineEventFiltering(t *testing.T) {
	m, err := New(Config{Seed: 1, DeviceBlocks: 4096, CachePages: 128})
	if err != nil {
		t.Fatal(err)
	}
	files, err := m.Populate(DefaultPopulateSpec("/data", 256))
	if err != nil {
		t.Fatal(err)
	}
	m.Eng.Go("reader", func(p *sim.Proc) {
		defer m.Eng.Stop()
		if err := m.FS.ReadFile(p, files[0].Ino, storage.ClassNormal, "t"); err != nil {
			t.Error(err)
			return
		}
		st := m.EventStats()
		if st.Dispatched == 0 {
			t.Error("no page events raised; test is vacuous")
			return
		}
		if st.Filtered != st.Dispatched || st.HookCalls != 0 {
			t.Errorf("baseline: dispatched=%d filtered=%d hookCalls=%d; want all filtered, zero hook calls",
				st.Dispatched, st.Filtered, st.HookCalls)
		}

		sess, err := m.Duet.RegisterBlock(m.Adapter, core.EventBits)
		if err != nil {
			t.Error(err)
			return
		}
		defer sess.Close()
		if err := m.FS.ReadFile(p, files[1].Ino, storage.ClassNormal, "t"); err != nil {
			t.Error(err)
			return
		}
		st2 := m.EventStats()
		if st2.HookCalls == 0 {
			t.Error("with an active session, no events reached the hook")
		}
		if st2.Filtered != st.Filtered {
			t.Errorf("events still filtered with an active session: %d -> %d", st.Filtered, st2.Filtered)
		}
	})
	if err := m.Eng.Run(); err != nil {
		t.Fatal(err)
	}
}
