package machine

import (
	"fmt"

	"duet/internal/core"
	"duet/internal/cowfs"
	"duet/internal/obs"
	"duet/internal/pagecache"
	"duet/internal/sim"
	"duet/internal/storage"
)

// Stack is one complete storage stack — device, scheduler, page cache,
// cowfs, and Duet — assembled on an existing event domain of a shared
// engine. It is the building block of the cluster tier: each cluster
// node hosts one Stack on its own domain, so node stacks execute
// concurrently inside the engine's lookahead windows while all
// cross-node traffic goes over Ports.
//
// Unlike Machine, a Stack does not own its engine, so a crash cannot be
// modeled by abandoning the engine (machine.Recover's trick). Instead
// Remount rebuilds the stack in place on the live engine, which is what
// lets one node of a cluster power-cycle while its peers keep serving.
type Stack struct {
	Host    sim.Host
	Disk    *storage.Disk
	Cache   *pagecache.Cache
	FS      *cowfs.FS
	Duet    *core.Duet
	Adapter *core.CowAdapter
	// Obs is the stack's private observability handle (nil when
	// disabled). Domains trace concurrently, so each stack needs its own
	// buffer; registries merge commutatively at collection.
	Obs *obs.Obs

	cfg Config
}

// NewStack assembles a stack on h (typically a dedicated domain of a
// sharded engine). cfg sizes the stack exactly as it sizes a Machine;
// cfg.Obs, when live, seeds a private per-domain handle as NewSharded
// does for its shards.
func NewStack(h sim.Host, cfg Config, diskName string) (*Stack, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	model := cfg.Model
	if model == nil {
		var err error
		model, err = newModel(cfg.Device, cfg.DeviceBlocks)
		if err != nil {
			return nil, err
		}
	}
	disk := cfg.newDisk(h, diskName, model)
	cache := pagecache.New(h, cfg.cacheConfig())
	fs := cowfs.New(h, 1, disk, cache)
	d := core.New(cache)
	ad := core.AttachCow(d, fs)
	s := &Stack{
		Host: h, Disk: disk, Cache: cache, FS: fs,
		Duet: d, Adapter: ad, cfg: cfg,
	}
	if o := cfg.Obs; o != nil && (o.Trace != nil || o.Metrics != nil) {
		s.Obs = &obs.Obs{}
		if o.Trace != nil {
			s.Obs.Trace = obs.NewTracer(obs.DefaultTraceEvents)
			h.Dom().SetTracer(s.Obs.Trace)
		}
		if o.Metrics != nil {
			s.Obs.Metrics = obs.NewRegistry()
		}
		disk.EnableObs(s.Obs)
		cache.EnableObs(s.Obs)
		fs.EnableObs(s.Obs)
		d.EnableObs(h, s.Obs)
	}
	return s, nil
}

// Crash models the power-cut instant for an in-engine crash: all
// volatile state — every cached page, dirty or not — is discarded
// without writeback. The abandoned flusher keeps ticking but has
// nothing to write, so nothing that should have died gets persisted.
// The durable side (medium + last checkpoint) is untouched; call
// Remount to bring the stack back.
func (s *Stack) Crash() {
	s.Cache.DropVolatile()
}

// Remount rebuilds the stack in place after Crash: a fresh cache and a
// fresh Duet around the filesystem remounted from its last durable
// checkpoint, on the same device (grown bad blocks are medium damage
// and survive). The old cache and Duet are abandoned, not stopped —
// their flusher keeps firing as deterministic no-ops on an empty cache,
// exactly like the dead engine procs machine.Recover leaves behind.
// Observability is re-attached to every rebuilt component, and the
// recovered filesystem must pass its invariant check.
func (s *Stack) Remount() error {
	if !s.FS.DurabilityEnabled() {
		return fmt.Errorf("machine: Stack.Remount without EnableDurability")
	}
	img := s.FS.CrashImage()
	cache := pagecache.New(s.Host, s.cfg.cacheConfig())
	fs, err := cowfs.Remount(s.Host, 1, s.Disk, cache, img)
	if err != nil {
		return fmt.Errorf("machine: stack remount: %w", err)
	}
	d := core.New(cache)
	ad := core.AttachCow(d, fs)
	if o := s.Obs; o != nil {
		cache.EnableObs(o)
		fs.EnableObs(o)
		d.EnableObs(s.Host, o)
	}
	if err := fs.CheckInvariants(); err != nil {
		return fmt.Errorf("machine: remounted stack inconsistent: %w", err)
	}
	s.Cache, s.FS, s.Duet, s.Adapter = cache, fs, d, ad
	return nil
}

// CollectMetrics publishes the stack's counters into a private scratch
// registry and merges it into r, so identically named instruments
// across stacks sum instead of racing SetCounter's max-absorb.
func (s *Stack) CollectMetrics(r *obs.Registry) {
	if r == nil {
		return
	}
	scratch := obs.NewRegistry()
	s.Disk.PublishMetrics(scratch)
	s.Cache.PublishMetrics(scratch)
	s.Duet.PublishMetrics(scratch)
	s.FS.PublishMetrics(scratch)
	r.Merge(scratch)
}

// Robustness reports the stack's fault and recovery counters in the
// same shape as Machine.Robustness.
func (s *Stack) Robustness() Robustness {
	return robustness(s.Disk, s.Cache, s.Duet, s.FS.Stats().Commits)
}
