package machine

import (
	"testing"

	"duet/internal/obs"
	"duet/internal/sim"
)

// buildCrashable assembles a small machine with durability armed and a
// writer that keeps dirtying pages, for crash/recover tests.
func buildCrashable(t *testing.T, o *obs.Obs) *Machine {
	t.Helper()
	m, err := New(Config{
		Seed:              5,
		DeviceBlocks:      1 << 12,
		CachePages:        256,
		WritebackInterval: 50 * sim.Millisecond,
		DirtyExpire:       20 * sim.Millisecond,
		Obs:               o,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Populate(DefaultPopulateSpec("/data", 256)); err != nil {
		t.Fatal(err)
	}
	m.EnableDurability()
	return m
}

// startChurn spawns a writer + committer so every phase of the test has
// dirty pages flowing through writeback and commits to lose at a crash.
func startChurn(t *testing.T, m *Machine) {
	t.Helper()
	root, err := m.FS.Lookup("/data")
	if err != nil {
		t.Fatal(err)
	}
	files := m.FS.FilesUnder(root.Ino)
	if len(files) == 0 {
		t.Fatal("no files")
	}
	m.Eng.Go("writer", func(p *sim.Proc) {
		for i := 0; !p.Engine().Stopping(); i++ {
			f := files[i%len(files)]
			if f.SizePg > 0 {
				_ = m.FS.Write(p, f.Ino, int64(i)%f.SizePg, 1)
			}
			p.Sleep(sim.Millisecond)
		}
	})
	m.Eng.Go("committer", func(p *sim.Proc) {
		for !p.Engine().Stopping() {
			p.Sleep(25 * sim.Millisecond)
			_ = m.FS.Commit(p)
		}
	})
}

// TestRepeatedCrashRecover is the repeated-crash regression test: after
// a SECOND crash of the same machine (callback-exec mode), the
// recovered machine must still (a) run background writeback — the
// interval timer must be armed and firing — and (b) have observability
// attached to every rebuilt component. Only the first recovery path was
// exercised before this test existed.
func TestRepeatedCrashRecover(t *testing.T) {
	o := &obs.Obs{Trace: obs.NewTracer(obs.DefaultTraceEvents), Metrics: obs.NewRegistry()}
	m := buildCrashable(t, o)

	for crash := 1; crash <= 2; crash++ {
		startChurn(t, m)
		if err := m.Eng.RunFor(120 * sim.Millisecond); err != nil {
			t.Fatalf("crash %d: %v", crash, err)
		}
		nm, err := m.Recover()
		if err != nil {
			t.Fatalf("recover %d: %v", crash, err)
		}
		m = nm
		// Exactly one Duet hook may be attached to the rebuilt cache: a
		// leftover from the discarded pre-remount Duet would silently
		// double page-event dispatch on every recovered machine.
		if n := m.Cache.HookCount(); n != 1 {
			t.Fatalf("recovery %d left %d page-event hooks on the cache (want 1)", crash, n)
		}
	}

	// (a) Writeback must still happen on its own: dirty one page, run
	// with no committer or sync, and require the interval flusher to
	// have written it back.
	root, err := m.FS.Lookup("/data")
	if err != nil {
		t.Fatal(err)
	}
	files := m.FS.FilesUnder(root.Ino)
	m.Eng.Go("dirty-once", func(p *sim.Proc) {
		for _, f := range files {
			if f.SizePg > 0 {
				_ = m.FS.Write(p, f.Ino, 0, 1)
				return
			}
		}
	})
	if err := m.Eng.RunFor(sim.Second); err != nil {
		t.Fatal(err)
	}
	if wb := m.Cache.Stats().WritebackPages; wb == 0 {
		t.Errorf("after second recovery the interval flusher never wrote back (WritebackPages=0)")
	}

	// (b) Observability must be attached to the rebuilt components: the
	// metrics collection must see the new stack's activity, and the
	// engine must still carry the tracer.
	reg := obs.NewRegistry()
	m.CollectMetrics(reg)
	if v := reg.Counter("pagecache.writeback_pages").Value(); v == 0 {
		t.Errorf("pagecache metrics missing after second recovery (writeback_pages=0)")
	}
	if v := reg.Counter("cowfs.writes_pages").Value(); v == 0 {
		t.Errorf("cowfs metrics missing after second recovery (writes_pages=0)")
	}
	if m.Eng.Dom().Tracer() == nil {
		t.Errorf("engine tracer detached after second recovery")
	}
}
