package machine

import (
	"fmt"
	"testing"

	"duet/internal/faults"
	"duet/internal/sim"
	"duet/internal/storage"
)

// retryStream runs a fixed fault-injected workload under the given
// machine config and digests everything the retry executor decided:
// the per-op error sequence and the disk's fault/retry/backoff
// counters. Two configs with the same digest made identical decisions.
func retryStream(t *testing.T, cfg Config) string {
	t.Helper()
	cfg.Seed = 7
	cfg.DeviceBlocks = 1 << 12
	cfg.CachePages = 128
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	spec := DefaultPopulateSpec("/data", 256)
	files, err := m.Populate(spec)
	if err != nil {
		t.Fatal(err)
	}
	m.AttachFaults(faults.Plan{
		Seed:               99,
		TransientReadRate:  0.25,
		TransientWriteRate: 0.25,
		StallRate:          0.05,
		StallDelay:         2 * sim.Millisecond,
	})
	var digest string
	m.Eng.Go("workload", func(p *sim.Proc) {
		defer m.Eng.Stop()
		for i := 0; i < 150; i++ {
			f := files[i%len(files)]
			if f.SizePg == 0 {
				continue
			}
			off := int64(i) % f.SizePg
			var err error
			if i%2 == 0 {
				err = m.FS.Read(p, f.Ino, off, 1, storage.ClassNormal, "w")
			} else {
				err = m.FS.Write(p, f.Ino, off, 1)
			}
			switch {
			case err == nil:
				digest += "."
			case storage.IsTransient(err):
				digest += "t"
			default:
				digest += "X"
			}
			p.Sleep(sim.Millisecond)
		}
	})
	if err := m.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	st := m.Disk.Stats()
	return fmt.Sprintf("%s|tf=%d rt=%d to=%d st=%d bo=%d req=%d",
		digest, st.TransientFaults, st.Retries, st.Timeouts, st.Stalls,
		st.BackoffTime, st.Requests)
}

// TestRetryPolicyConfig is the satellite table test: leaving
// Config.Retry zero must reproduce the exact decision stream of the
// historical hardcoded DefaultRetryPolicy, while a genuinely different
// policy must change it (proving the knob is actually wired through).
func TestRetryPolicyConfig(t *testing.T) {
	rows := []struct {
		name        string
		retry       storage.RetryPolicy
		sameAsolder bool
	}{
		{name: "zero-keeps-default", retry: storage.RetryPolicy{}, sameAsolder: true},
		{name: "explicit-default", retry: storage.DefaultRetryPolicy(), sameAsolder: true},
		{name: "no-retries", retry: storage.RetryPolicy{
			MaxRetries: 0, BaseBackoff: sim.Millisecond,
			MaxBackoff: sim.Millisecond, Deadline: 2 * sim.Second,
		}},
		{name: "long-backoff", retry: storage.RetryPolicy{
			MaxRetries: 8, BaseBackoff: 20 * sim.Millisecond,
			MaxBackoff: 200 * sim.Millisecond, Deadline: 4 * sim.Second,
		}},
	}
	baseline := retryStream(t, Config{})
	for _, row := range rows {
		got := retryStream(t, Config{Retry: row.retry})
		if row.sameAsolder && got != baseline {
			t.Errorf("%s: decision stream changed:\n got %s\nwant %s", row.name, got, baseline)
		}
		if !row.sameAsolder && got == baseline {
			t.Errorf("%s: decision stream identical to default; policy not wired through", row.name)
		}
	}
}

// TestRetryPolicyPreArmed checks the assembly-order contract: a policy
// set via Config must survive SetFaultInjector's "arm the default if
// none is set" branch.
func TestRetryPolicyPreArmed(t *testing.T) {
	e := sim.New(1)
	d := storage.NewDisk(e, "sda", storage.DefaultHDD(1024), nil)
	p := storage.RetryPolicy{MaxRetries: 1, BaseBackoff: sim.Millisecond,
		MaxBackoff: sim.Millisecond, Deadline: sim.Second}
	d.SetRetryPolicy(p)
	d.SetFaultInjector(faults.NewInjector(faults.Plan{TransientReadRate: 0.5, Seed: 1}))
	if got := d.RetryPolicy(); got != p {
		t.Fatalf("SetFaultInjector clobbered the configured policy: %+v", got)
	}
}
