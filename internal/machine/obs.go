package machine

import (
	"duet/internal/obs"
	"duet/internal/sim"
)

// Observability wiring. The machine is the one place that sees every
// subsystem, so it owns both halves of the integration: enableObs hands
// the shared obs handle to each component at assembly (tracing costs
// nothing until then — every subsystem guards its probes behind one nil
// check), and CollectMetrics absorbs each component's cumulative
// counters into a registry after (or during) a run. Absorption uses
// absolute values with max semantics, so collecting twice is safe.

// enableObs wires the obs handle into an assembled machine's engine
// and components. The Duet instance is wired by the caller (its hook
// needs the engine too). SetTracer is only called with a concrete
// non-nil tracer — a non-nil interface holding a nil pointer would
// defeat the engine's nil checks.
func enableObs(o *obs.Obs, e *sim.Engine, parts ...interface{ EnableObs(*obs.Obs) }) {
	if o == nil || (o.Trace == nil && o.Metrics == nil) {
		return
	}
	if o.Trace != nil {
		e.SetTracer(o.Trace)
	}
	for _, p := range parts {
		p.EnableObs(o)
	}
}

// PublishEngineMetrics exposes publishEngine for engine-owning layers
// outside this package (the cluster tier assembles its own engine but
// publishes the same kernel-level counters).
func PublishEngineMetrics(r *obs.Registry, e *sim.Engine) { publishEngine(r, e) }

// publishEngine absorbs the kernel-level quantities. The window
// counters are zero for single-domain machines, which never window;
// for sharded machines they quantify barrier overhead (rounds, idle
// fast-forwards, how much virtual time each barrier cleared) and are
// identical at any worker count.
func publishEngine(r *obs.Registry, e *sim.Engine) {
	r.SetCounter("sim.procs_created", int64(e.ProcsCreated()))
	r.SetCounter("sim.callbacks_created", int64(e.CallbacksCreated()))
	r.SetCounter("sim.timers_scheduled", int64(e.TimersScheduled()))
	r.SetCounter("sim.now_us", int64(e.Now()/sim.Microsecond))
	ws := e.WindowStats()
	r.SetCounter("sim.window_rounds", ws.Rounds)
	r.SetCounter("sim.window_fastforwards", ws.FastForwards)
	r.SetCounter("sim.window_open_us", int64(ws.OpenTime/sim.Microsecond))
	// The largest granted window is a peak, so it rides a gauge:
	// cross-cell merges take the max instead of summing.
	r.Gauge("sim.window_max_open_us").SetMax(int64(ws.MaxOpen / sim.Microsecond))
}

// CollectMetrics absorbs every subsystem's counters into r: the engine,
// all disks (primary and added), the page cache, Duet, and all
// filesystems. Call after Run (or at any quiescent point).
func (m *Machine) CollectMetrics(r *obs.Registry) {
	if r == nil {
		return
	}
	publishEngine(r, m.Eng)
	m.Disk.PublishMetrics(r)
	for _, d := range m.extraDisks {
		d.PublishMetrics(r)
	}
	m.Cache.PublishMetrics(r)
	m.Duet.PublishMetrics(r)
	m.FS.PublishMetrics(r)
	for _, fs := range m.extraCow {
		fs.PublishMetrics(r)
	}
	for _, fs := range m.extraLFS {
		fs.PublishMetrics(r)
	}
}

// CollectMetrics absorbs every subsystem's counters into r.
func (m *LFSMachine) CollectMetrics(r *obs.Registry) {
	if r == nil {
		return
	}
	publishEngine(r, m.Eng)
	m.Disk.PublishMetrics(r)
	m.Cache.PublishMetrics(r)
	m.Duet.PublishMetrics(r)
	m.FS.PublishMetrics(r)
}
