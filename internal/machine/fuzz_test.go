package machine

import (
	"testing"

	"duet/internal/sim"
	"duet/internal/storage"
)

// FuzzCrashRecover is the crash-consistency property test: under a mixed
// write/commit workload, a power cut at an arbitrary virtual instant
// must always recover to a filesystem that passes its invariants and a
// full checksum sweep — acknowledged-durable data is never lost and the
// metadata never corrupts, no matter where the crash lands.
func FuzzCrashRecover(f *testing.F) {
	f.Add(int64(1), uint16(13))
	f.Add(int64(2), uint16(47))
	f.Add(int64(3), uint16(111))
	f.Add(int64(42), uint16(199))
	f.Fuzz(func(t *testing.T, seed int64, crashMs uint16) {
		m, err := New(Config{
			Seed:         seed,
			DeviceBlocks: 1 << 14,
			CachePages:   512,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Populate(DefaultPopulateSpec("/data", 1024)); err != nil {
			t.Fatal(err)
		}
		m.EnableDurability()
		root, err := m.FS.Lookup("/data")
		if err != nil {
			t.Fatal(err)
		}
		files := m.FS.FilesUnder(root.Ino)
		if len(files) == 0 {
			t.Fatal("no files")
		}

		m.Eng.Go("writer", func(p *sim.Proc) {
			for i := 0; !p.Engine().Stopping(); i++ {
				fl := files[i%len(files)]
				if fl.SizePg == 0 {
					p.Sleep(sim.Millisecond)
					continue
				}
				off := int64(i*3) % fl.SizePg
				if err := m.FS.Write(p, fl.Ino, off, 1); err != nil {
					return
				}
				p.Sleep(sim.Millisecond)
			}
		})
		m.Eng.Go("reader", func(p *sim.Proc) {
			for i := 0; !p.Engine().Stopping(); i++ {
				fl := files[(i*5)%len(files)]
				_ = m.FS.Read(p, fl.Ino, 0, 2, storage.ClassNormal, "w")
				p.Sleep(3 * sim.Millisecond)
			}
		})
		m.Eng.Go("committer", func(p *sim.Proc) {
			for !p.Engine().Stopping() {
				p.Sleep(10 * sim.Millisecond)
				_ = m.FS.Commit(p)
			}
		})

		crash := sim.Time(int64(crashMs)%200+1) * sim.Millisecond
		if err := m.Eng.RunFor(crash); err != nil {
			t.Fatal(err)
		}
		nm, err := m.Recover()
		if err != nil {
			t.Fatal(err)
		}
		// Recover verified the invariants; the checksum sweep proves every
		// allocated block's medium content matches its committed metadata.
		for b, ok := nm.FS.NextAllocated(0); ok; b, ok = nm.FS.NextAllocated(b + 1) {
			if err := nm.FS.CheckBlock(b); err != nil {
				t.Fatalf("seed %d crash %v: block %d: %v", seed, crash, b, err)
			}
		}
		if bad := nm.Disk.BadBlocks(); len(bad) != 0 {
			t.Fatalf("fault-free run grew bad blocks: %v", bad)
		}
	})
}
