package machine

import (
	"fmt"

	"duet/internal/core"
	"duet/internal/cowfs"
	"duet/internal/faults"
	"duet/internal/lfs"
	"duet/internal/pagecache"
	"duet/internal/storage"
)

// Fault injection and crash recovery at the machine level. A "crash" in
// the simulator is the end of an engine: virtual-time engines cannot
// restart once their processes are abandoned, so recovery builds an
// entirely new machine — fresh engine, device, cache, and Duet — and
// remounts the filesystem from the dead machine's durable state. That is
// exactly the semantics of a power cut: everything in memory is gone,
// only the medium and the checkpoint survive.

// AttachFaults arms deterministic fault injection on the machine's
// device and returns the injector (for inspection). The plan is
// evaluated per request; a nil or zero plan leaves the device fault-free.
func (m *Machine) AttachFaults(plan faults.Plan) *faults.Injector {
	inj := faults.NewInjector(plan)
	inj.Attach(m.Disk)
	return inj
}

// AttachFaults arms fault injection on the LFS machine's device.
func (m *LFSMachine) AttachFaults(plan faults.Plan) *faults.Injector {
	inj := faults.NewInjector(plan)
	inj.Attach(m.Disk)
	return inj
}

// EnableDurability arms checkpointing on the machine's filesystem; it
// must be called before Recover can be used. Fault-free experiments
// never call it, so their behavior is unchanged.
func (m *Machine) EnableDurability() { m.FS.EnableDurability() }

// EnableDurability arms checkpointing on the LFS machine's filesystem.
func (m *LFSMachine) EnableDurability() { m.FS.EnableDurability() }

// Recover simulates remounting after a crash: it captures the dead
// machine's durable state (checkpoint + medium) and assembles a new
// machine around it. Call after the crashed engine has stopped (e.g.
// RunFor returned at the crash instant). Fault injection is NOT carried
// over — attach a new plan to the recovered machine if the device should
// stay faulty. Grown bad blocks do carry over: they are medium damage.
func (m *Machine) Recover() (*Machine, error) {
	if !m.FS.DurabilityEnabled() {
		return nil, fmt.Errorf("machine: Recover without EnableDurability")
	}
	img := m.FS.CrashImage()
	cfg := m.Cfg
	nm, err := New(cfg)
	if err != nil {
		return nil, err
	}
	// Replace the freshly created filesystem with the remounted one.
	fs, err := cowfs.Remount(nm.Eng, 1, nm.Disk, nm.Cache, img)
	if err != nil {
		return nil, fmt.Errorf("machine: recover: %w", err)
	}
	nm.FS = fs
	// New hooked its Duet into the new cache; that instance is being
	// replaced, so detach it first — otherwise every recovery leaves an
	// orphaned hook double-dispatching page events to a dead Duet (and a
	// second crash of the same machine doubles it again).
	nm.Cache.RemoveHook(nm.Duet)
	nm.Duet = core.New(nm.Cache)
	nm.Adapter = core.AttachCow(nm.Duet, fs)
	// New wired the engine/disk/cache, but the remounted fs and fresh
	// Duet replaced the instrumented ones — re-attach them.
	if o := cfg.Obs; o != nil {
		fs.EnableObs(o)
		nm.Duet.EnableObs(nm.Eng, o)
	}
	if err := fs.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("machine: recovered fs inconsistent: %w", err)
	}
	return nm, nil
}

// Recover is the LFS machine's crash-recovery path: remount from the
// checkpoint, roll the durable summary log forward, verify invariants.
func (m *LFSMachine) Recover(fscfg lfs.Config) (*LFSMachine, error) {
	if !m.FS.DurabilityEnabled() {
		return nil, fmt.Errorf("machine: Recover without EnableDurability")
	}
	img := m.FS.CrashImage()
	cfg := m.Cfg
	nm, err := NewLFS(cfg, fscfg)
	if err != nil {
		return nil, err
	}
	fs, err := lfs.Remount(nm.Eng, 1, nm.Disk, nm.Cache, fscfg, img)
	if err != nil {
		return nil, fmt.Errorf("machine: recover: %w", err)
	}
	nm.FS = fs
	// Detach the Duet NewLFS hooked in before replacing it (see Recover).
	nm.Cache.RemoveHook(nm.Duet)
	nm.Duet = core.New(nm.Cache)
	nm.Adapter = core.AttachLFS(nm.Duet, fs)
	// Re-attach observability to the components NewLFS did not build.
	if o := cfg.Obs; o != nil {
		fs.EnableObs(o)
		nm.Duet.EnableObs(nm.Eng, o)
	}
	if err := fs.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("machine: recovered lfs inconsistent: %w", err)
	}
	return nm, nil
}

// Robustness aggregates the fault, retry, and recovery counters of one
// machine into the flat record duetbench exports (BENCH_*.json).
type Robustness struct {
	TransientFaults int64 `json:"transient_faults"`
	PermanentFaults int64 `json:"permanent_faults"`
	TornWrites      int64 `json:"torn_writes"`
	Stalls          int64 `json:"stalls"`
	Retries         int64 `json:"retries"`
	Timeouts        int64 `json:"timeouts"`
	WritebackErrors int64 `json:"writeback_errors"`
	Quarantined     int64 `json:"quarantined_pages"`
	Requeued        int64 `json:"requeued_pages"`
	LostPages       int64 `json:"lost_pages"`
	DegradedSess    int64 `json:"degraded_sessions"`
	Commits         int64 `json:"commits"`

	// Cluster-tier counters, zero for single-machine runs: machine
	// kills injected, shard repairs completed, shard-time spent below
	// full replication, and acknowledged blocks missing from any
	// replica after repair (the invariant — must stay zero).
	Kills             int64 `json:"kills"`
	Repairs           int64 `json:"repairs"`
	DegradedUs        int64 `json:"degraded_us"`
	ClusterLostBlocks int64 `json:"cluster_lost_blocks"`
}

func robustness(d *storage.Disk, c *pagecache.Cache, du *core.Duet, commits int64) Robustness {
	ds := d.Stats()
	cs := c.Stats()
	return Robustness{
		TransientFaults: ds.TransientFaults,
		PermanentFaults: ds.PermanentFaults,
		TornWrites:      ds.TornWrites,
		Stalls:          ds.Stalls,
		Retries:         ds.Retries,
		Timeouts:        ds.Timeouts,
		WritebackErrors: cs.WritebackErrors,
		Quarantined:     cs.QuarantineEvents,
		Requeued:        cs.RequeuedPages,
		LostPages:       cs.LostPages,
		DegradedSess:    du.Stats().DegradedSessions,
		Commits:         commits,
	}
}

// Robustness reports the machine's fault and recovery counters.
func (m *Machine) Robustness() Robustness {
	return robustness(m.Disk, m.Cache, m.Duet, m.FS.Stats().Commits)
}

// Robustness reports the LFS machine's fault and recovery counters.
func (m *LFSMachine) Robustness() Robustness {
	return robustness(m.Disk, m.Cache, m.Duet, m.FS.Stats().Commits)
}

// Add merges another machine's counters (multi-run aggregation).
func (r *Robustness) Add(o Robustness) {
	r.TransientFaults += o.TransientFaults
	r.PermanentFaults += o.PermanentFaults
	r.TornWrites += o.TornWrites
	r.Stalls += o.Stalls
	r.Retries += o.Retries
	r.Timeouts += o.Timeouts
	r.WritebackErrors += o.WritebackErrors
	r.Quarantined += o.Quarantined
	r.Requeued += o.Requeued
	r.LostPages += o.LostPages
	r.DegradedSess += o.DegradedSess
	r.Commits += o.Commits
	r.Kills += o.Kills
	r.Repairs += o.Repairs
	r.DegradedUs += o.DegradedUs
	r.ClusterLostBlocks += o.ClusterLostBlocks
}
