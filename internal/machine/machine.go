// Package machine assembles complete simulated storage machines: a
// virtual-time engine, a block device behind an I/O scheduler, the page
// cache, a filesystem, and a Duet instance hooked into the cache. It is
// the shared foundation of the experiment harness, the examples, and the
// public facade.
package machine

import (
	"fmt"
	"math/rand"

	"duet/internal/core"
	"duet/internal/cowfs"
	"duet/internal/iosched"
	"duet/internal/lfs"
	"duet/internal/obs"
	"duet/internal/pagecache"
	"duet/internal/sim"
	"duet/internal/storage"
)

// DeviceKind selects the device model.
type DeviceKind string

// Supported device kinds.
const (
	HDD DeviceKind = "hdd"
	SSD DeviceKind = "ssd"
)

// Config describes a machine.
type Config struct {
	// Seed drives all randomness; equal seeds give identical runs.
	Seed int64
	// DeviceBlocks is the capacity of the (first) device in 4 KiB blocks.
	DeviceBlocks int64
	// Device selects the model (default HDD).
	Device DeviceKind
	// Model, when non-nil, overrides Device with a custom device model
	// (e.g. a Slowed HDD for reduced-scale experiments).
	Model storage.Model
	// Scheduler is the I/O scheduler name: cfq (default), deadline, noop.
	Scheduler string
	// CachePages is the page cache budget.
	CachePages int
	// CacheConfig optionally overrides writeback tunables; zero values
	// take defaults.
	DirtyExpire       sim.Time
	WritebackInterval sim.Time
	// IdleGrace overrides the CFQ idle-class grace period (how long the
	// device must stay free of foreground activity before maintenance
	// I/O is dispatched). Zero keeps the scheduler default.
	IdleGrace sim.Time
	// Retry overrides the disk's retry/backoff/deadline policy, applied
	// when fault injection is attached. The zero value preserves the
	// historical behavior: storage.DefaultRetryPolicy() is armed the
	// moment an injector attaches, so fault experiments that never set
	// this field see an unchanged decision stream.
	Retry storage.RetryPolicy
	// Obs, when non-nil, enables the observability subsystem: the
	// engine, disks, cache, Duet, and filesystems all record into it.
	// Nil (the default) keeps every hot path on its probe-free branch.
	Obs *obs.Obs
	// LegacyExec restores the goroutine executors (disk service loop as
	// a proc, flusher timers spawned per interval) instead of the
	// inline-callback hot path. Simulation output is byte-identical in
	// both modes; the knob exists for A/B wall-clock measurement
	// (duetbench -exec proc) and for bisecting executor regressions.
	LegacyExec bool
}

// Validate fills defaults and rejects nonsense.
func (c *Config) newScheduler() storage.Scheduler {
	sched := iosched.ByName(c.Scheduler)
	if cfq, ok := sched.(*iosched.CFQ); ok && c.IdleGrace > 0 {
		cfq.IdleGrace = c.IdleGrace
	}
	return sched
}

// cacheConfig derives the page-cache configuration, applying the
// machine-level writeback overrides.
func (c *Config) cacheConfig() pagecache.Config {
	cc := pagecache.DefaultConfig(c.CachePages)
	if c.DirtyExpire > 0 {
		cc.DirtyExpire = c.DirtyExpire
	}
	if c.WritebackInterval > 0 {
		cc.WritebackInterval = c.WritebackInterval
	}
	cc.SpawnTimerProcs = c.LegacyExec
	return cc
}

// newDisk builds a disk honoring the executor-mode knob.
func (c *Config) newDisk(e sim.Host, name string, model storage.Model) *storage.Disk {
	d := storage.NewDisk(e, name, model, c.newScheduler())
	if c.LegacyExec {
		d.UseProcExecutor()
	}
	if c.Retry != (storage.RetryPolicy{}) {
		d.SetRetryPolicy(c.Retry)
	}
	return d
}

func (c *Config) Validate() error {
	if c.DeviceBlocks <= 0 {
		return fmt.Errorf("machine: DeviceBlocks must be positive")
	}
	if c.CachePages <= 0 {
		return fmt.Errorf("machine: CachePages must be positive")
	}
	if c.Device == "" {
		c.Device = HDD
	}
	if c.Scheduler == "" {
		c.Scheduler = "cfq"
	}
	if iosched.ByName(c.Scheduler) == nil {
		return fmt.Errorf("machine: unknown scheduler %q", c.Scheduler)
	}
	return nil
}

// Machine is an assembled simulation with a cowfs filesystem.
type Machine struct {
	Cfg     Config
	Eng     *sim.Engine
	Disk    *storage.Disk
	Cache   *pagecache.Cache
	FS      *cowfs.FS
	Duet    *core.Duet
	Adapter *core.CowAdapter

	nextFSID pagecache.FSID

	// Components added after New, tracked so CollectMetrics covers them.
	extraDisks []*storage.Disk
	extraCow   []*cowfs.FS
	extraLFS   []*lfs.FS
}

func newModel(kind DeviceKind, blocks int64) (storage.Model, error) {
	switch kind {
	case HDD:
		return storage.DefaultHDD(blocks), nil
	case SSD:
		return storage.DefaultSSD(blocks), nil
	}
	return nil, fmt.Errorf("machine: unknown device kind %q", kind)
}

// New builds a machine with a COW filesystem on one device.
func New(cfg Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e := sim.New(cfg.Seed)
	model := cfg.Model
	if model == nil {
		var err error
		model, err = newModel(cfg.Device, cfg.DeviceBlocks)
		if err != nil {
			return nil, err
		}
	}
	disk := cfg.newDisk(e, "sda", model)
	cache := pagecache.New(e, cfg.cacheConfig())
	fs := cowfs.New(e, 1, disk, cache)
	d := core.New(cache)
	ad := core.AttachCow(d, fs)
	enableObs(cfg.Obs, e, disk, cache, fs)
	d.EnableObs(e, cfg.Obs)
	return &Machine{
		Cfg: cfg, Eng: e, Disk: disk, Cache: cache, FS: fs,
		Duet: d, Adapter: ad, nextFSID: 2,
	}, nil
}

// AddCowFS attaches a second COW filesystem on its own device (e.g. the
// rsync destination), sharing the page cache and Duet instance.
func (m *Machine) AddCowFS(name string, blocks int64, kind DeviceKind) (*cowfs.FS, *core.CowAdapter, error) {
	model, err := newModel(kind, blocks)
	if err != nil {
		return nil, nil, err
	}
	disk := m.Cfg.newDisk(m.Eng, name, model)
	fs := cowfs.New(m.Eng, m.nextFSID, disk, m.Cache)
	m.nextFSID++
	ad := core.AttachCow(m.Duet, fs)
	if o := m.Cfg.Obs; o != nil {
		disk.EnableObs(o)
		fs.EnableObs(o)
	}
	m.extraDisks = append(m.extraDisks, disk)
	m.extraCow = append(m.extraCow, fs)
	return fs, ad, nil
}

// AddLFS attaches a log-structured filesystem on its own device.
func (m *Machine) AddLFS(name string, blocks int64, kind DeviceKind, cfg lfs.Config) (*lfs.FS, *core.LFSAdapter, error) {
	model, err := newModel(kind, blocks)
	if err != nil {
		return nil, nil, err
	}
	disk := m.Cfg.newDisk(m.Eng, name, model)
	fs := lfs.New(m.Eng, m.nextFSID, disk, m.Cache, cfg)
	m.nextFSID++
	ad := core.AttachLFS(m.Duet, fs)
	if o := m.Cfg.Obs; o != nil {
		disk.EnableObs(o)
		fs.EnableObs(o)
	}
	m.extraDisks = append(m.extraDisks, disk)
	m.extraLFS = append(m.extraLFS, fs)
	return fs, ad, nil
}

// LFSMachine is an assembled simulation with a log-structured filesystem.
type LFSMachine struct {
	Cfg     Config
	Eng     *sim.Engine
	Disk    *storage.Disk
	Cache   *pagecache.Cache
	FS      *lfs.FS
	Duet    *core.Duet
	Adapter *core.LFSAdapter
}

// NewLFS builds a machine with an lfs filesystem on one device.
func NewLFS(cfg Config, fscfg lfs.Config) (*LFSMachine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e := sim.New(cfg.Seed)
	model := cfg.Model
	if model == nil {
		var err error
		model, err = newModel(cfg.Device, cfg.DeviceBlocks)
		if err != nil {
			return nil, err
		}
	}
	disk := cfg.newDisk(e, "sda", model)
	cache := pagecache.New(e, cfg.cacheConfig())
	fs := lfs.New(e, 1, disk, cache, fscfg)
	d := core.New(cache)
	ad := core.AttachLFS(d, fs)
	enableObs(cfg.Obs, e, disk, cache, fs)
	d.EnableObs(e, cfg.Obs)
	return &LFSMachine{Cfg: cfg, Eng: e, Disk: disk, Cache: cache, FS: fs, Duet: d, Adapter: ad}, nil
}

// EventStats summarises page-event dispatch efficiency for a run: how
// many events the cache raised, how many the global interest mask
// filtered before any hook ran, and how many calls reached Duet's hook.
// With no active session, Filtered should equal Dispatched and
// HookCalls should be zero — the baseline pays nothing for Duet being
// loaded.
type EventStats struct {
	Dispatched int64
	Filtered   int64
	HookCalls  int64
}

func eventStats(c *pagecache.Cache, d *core.Duet) EventStats {
	cs := c.Stats()
	return EventStats{
		Dispatched: cs.EventsDispatched,
		Filtered:   cs.EventsFiltered,
		HookCalls:  d.Stats().HookCalls,
	}
}

// EventStats reports the machine's page-event dispatch counters.
func (m *Machine) EventStats() EventStats { return eventStats(m.Cache, m.Duet) }

// EventStats reports the machine's page-event dispatch counters.
func (m *LFSMachine) EventStats() EventStats { return eventStats(m.Cache, m.Duet) }

// PopulateSpec describes a synthetic file tree, Filebench-style.
type PopulateSpec struct {
	// Dir is the root directory to create (e.g. "/data").
	Dir string
	// Files is the number of regular files.
	Files int
	// MeanFilePages is the mean file size; sizes follow a gamma-ish
	// distribution around it (Filebench uses a gamma distribution).
	MeanFilePages int
	// DirWidth is the fan-out of the directory tree (files per leaf).
	DirWidth int
	// FragmentedFrac is the fraction of files created with a fragmented
	// layout (the paper runs defragmentation on a 10% fragmented fs).
	FragmentedFrac float64
	// FragmentExtents is how many extents a fragmented file gets.
	FragmentExtents int
}

// DefaultPopulateSpec sizes a tree of roughly totalPages of data with
// Filebench-like defaults (mean file size 32 pages = 128 KiB).
func DefaultPopulateSpec(dir string, totalPages int64) PopulateSpec {
	const mean = 32
	n := int(totalPages / mean)
	if n < 1 {
		n = 1
	}
	return PopulateSpec{
		Dir:             dir,
		Files:           n,
		MeanFilePages:   mean,
		DirWidth:        20,
		FragmentedFrac:  0.1,
		FragmentExtents: 8,
	}
}

// Populate builds the file tree on the machine's COW filesystem without
// simulated I/O (the pre-experiment fill). It returns the created files
// in creation order.
func (m *Machine) Populate(spec PopulateSpec) ([]*cowfs.Inode, error) {
	return PopulateFS(m.FS, spec, m.Eng.DeriveRand("populate:"+spec.Dir))
}

// PopulateFS is Populate for any cowfs filesystem.
func PopulateFS(fs *cowfs.FS, spec PopulateSpec, rng *rand.Rand) ([]*cowfs.Inode, error) {
	if spec.DirWidth <= 0 {
		spec.DirWidth = 20
	}
	if spec.MeanFilePages <= 0 {
		spec.MeanFilePages = 32
	}
	if _, err := fs.MkdirAll(spec.Dir); err != nil {
		return nil, err
	}
	files := make([]*cowfs.Inode, 0, spec.Files)
	for i := 0; i < spec.Files; i++ {
		dir := fmt.Sprintf("%s/d%03d", spec.Dir, i/spec.DirWidth)
		if i%spec.DirWidth == 0 {
			if _, err := fs.MkdirAll(dir); err != nil {
				return nil, err
			}
		}
		size := gammaish(rng, spec.MeanFilePages)
		extents := 1
		if spec.FragmentedFrac > 0 && rng.Float64() < spec.FragmentedFrac {
			extents = spec.FragmentExtents
		}
		f, err := fs.PopulateFile(fmt.Sprintf("%s/f%06d", dir, i), int64(size), extents, rng)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// gammaish draws a file size with mean m and a long right tail, clamped
// to [1, 16m] — close to Filebench's gamma-distributed file sizes.
func gammaish(rng *rand.Rand, m int) int {
	// Sum of two exponentials ~ gamma(k=2), scaled to mean m.
	v := (rng.ExpFloat64() + rng.ExpFloat64()) * float64(m) / 2
	n := int(v)
	if n < 1 {
		n = 1
	}
	if n > 16*m {
		n = 16 * m
	}
	return n
}
