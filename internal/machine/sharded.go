package machine

import (
	"fmt"
	"math/rand"

	"duet/internal/core"
	"duet/internal/cowfs"
	"duet/internal/obs"
	"duet/internal/pagecache"
	"duet/internal/sim"
	"duet/internal/storage"
)

// A ShardedMachine is the multi-device form of Machine built for the
// domain-sharded engine: N fully independent storage stacks — device,
// I/O scheduler, page cache, filesystem, and Duet instance — each on its
// own event domain, plus a coordinator on the engine's default domain.
// Because the stacks share no mutable state, the engine can execute them
// concurrently inside each lookahead window; the coordinator talks to
// shards only through Ports, whose latency models the cross-device
// control path (an IPC hop, not a function call).
//
// This mirrors the paper's setting scaled out: each shard is "a machine"
// running foreground work plus Duet-scheduled maintenance, and the
// coordinator aggregates their progress — the topology a multi-disk
// storage server or a rack-level maintenance scheduler has.
type ShardedMachine struct {
	Cfg    ShardedConfig
	Eng    *sim.Engine
	Shards []*Shard
}

// Shard is one independent storage stack on its own event domain.
type Shard struct {
	Index   int
	Dom     *sim.Domain
	Disk    *storage.Disk
	Cache   *pagecache.Cache
	FS      *cowfs.FS
	Duet    *core.Duet
	Adapter *core.CowAdapter
	// Obs is the shard's own observability handle (nil when disabled).
	// Domains trace concurrently, so each needs a private buffer; the
	// registries merge commutatively at collection.
	Obs *obs.Obs
	// Report carries shard → coordinator progress messages.
	Report *sim.Port[ShardReport]
	// Ctl carries coordinator → shard commands.
	Ctl *sim.Port[ShardCommand]
}

// ShardCommand is a coordinator → shard control message.
type ShardCommand struct {
	// Kind names the command ("start", "stop", ...); the experiment
	// defines the vocabulary.
	Kind string
	// Arg is a command-specific argument.
	Arg int64
}

// ShardReport is a shard → coordinator progress message.
type ShardReport struct {
	Shard int
	// Kind names the report ("progress", "done", ...).
	Kind string
	// Value is a report-specific counter (e.g. work items completed).
	Value int64
	// At is the shard-local virtual time of the report.
	At sim.Time
}

// ShardedConfig sizes a sharded machine. The embedded Config describes
// each shard's stack (DeviceBlocks and CachePages are per shard, not
// totals). Model, if set, must be stateless (the built-in HDD/SSD models
// are): shards evaluate it concurrently.
type ShardedConfig struct {
	Config
	// Shards is the number of independent stacks (>= 1).
	Shards int
	// PortLatency is the coordinator↔shard message latency; it is also
	// the engine's lookahead bound, so smaller values mean finer barrier
	// windows and less intra-window parallelism. Default 1ms.
	PortLatency sim.Time
	// WindowMode selects the engine's barrier protocol. The zero value
	// is sim.WindowAdaptive; sim.WindowFixed restores the static
	// minimum-latency lookahead. The mode never changes results — only
	// how often domains synchronize (see WindowStats).
	WindowMode sim.WindowMode
}

// NewSharded assembles a sharded machine. Worker parallelism is chosen
// separately via m.Eng.SetWorkers — it never changes results.
func NewSharded(cfg ShardedConfig) (*ShardedMachine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("machine: Shards must be >= 1, got %d", cfg.Shards)
	}
	if cfg.PortLatency == 0 {
		cfg.PortLatency = sim.Millisecond
	}
	if cfg.PortLatency <= 0 {
		return nil, fmt.Errorf("machine: PortLatency must be positive")
	}
	e := sim.New(cfg.Seed)
	e.SetWindowMode(cfg.WindowMode)
	m := &ShardedMachine{Cfg: cfg, Eng: e}
	for i := 0; i < cfg.Shards; i++ {
		model := cfg.Model
		if model == nil {
			var err error
			model, err = newModel(cfg.Device, cfg.DeviceBlocks)
			if err != nil {
				return nil, err
			}
		}
		dom := e.NewDomain(fmt.Sprintf("shard%d", i))
		disk := cfg.newDisk(dom, fmt.Sprintf("sd%c", 'a'+i%26), model)
		cache := pagecache.New(dom, cfg.cacheConfig())
		fs := cowfs.New(dom, 1, disk, cache)
		d := core.New(cache)
		ad := core.AttachCow(d, fs)
		sh := &Shard{
			Index: i, Dom: dom, Disk: disk, Cache: cache,
			FS: fs, Duet: d, Adapter: ad,
			Report: sim.NewPort[ShardReport](dom, e, fmt.Sprintf("report%d", i), cfg.PortLatency),
			Ctl:    sim.NewPort[ShardCommand](e, dom, fmt.Sprintf("ctl%d", i), cfg.PortLatency),
		}
		if o := cfg.Obs; o != nil && (o.Trace != nil || o.Metrics != nil) {
			sh.Obs = &obs.Obs{}
			if o.Trace != nil {
				sh.Obs.Trace = obs.NewTracer(obs.DefaultTraceEvents)
				dom.SetTracer(sh.Obs.Trace)
			}
			if o.Metrics != nil {
				sh.Obs.Metrics = obs.NewRegistry()
			}
			disk.EnableObs(sh.Obs)
			cache.EnableObs(sh.Obs)
			fs.EnableObs(sh.Obs)
			d.EnableObs(dom, sh.Obs)
		}
		m.Shards = append(m.Shards, sh)
	}
	// The coordinator's own domain carries the run-level tracer.
	if o := cfg.Obs; o != nil && o.Trace != nil {
		e.SetTracer(o.Trace)
	}
	return m, nil
}

// Populate fills every shard's filesystem with the same spec but
// shard-independent randomness (domain-scoped DeriveRand), returning the
// created files per shard.
func (m *ShardedMachine) Populate(spec PopulateSpec) ([][]*cowfs.Inode, error) {
	files := make([][]*cowfs.Inode, len(m.Shards))
	for i, sh := range m.Shards {
		f, err := PopulateFS(sh.FS, spec, sh.Dom.DeriveRand("populate:"+spec.Dir))
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		files[i] = f
	}
	return files, nil
}

// PopulateShardFS is PopulateFS with an explicit rand, exposed for
// callers that populate shards with differing specs.
func PopulateShardFS(fs *cowfs.FS, spec PopulateSpec, rng *rand.Rand) ([]*cowfs.Inode, error) {
	return PopulateFS(fs, spec, rng)
}

// CollectMetrics absorbs the engine plus every shard's counters into r.
// Each shard publishes its absolute counters into a private scratch
// registry first, then merges; Merge sums counters, so identically-named
// instruments (the per-shard caches, say) aggregate across shards
// instead of racing SetCounter's max-absorb.
func (m *ShardedMachine) CollectMetrics(r *obs.Registry) {
	if r == nil {
		return
	}
	publishEngine(r, m.Eng)
	for _, sh := range m.Shards {
		scratch := obs.NewRegistry()
		sh.Disk.PublishMetrics(scratch)
		sh.Cache.PublishMetrics(scratch)
		sh.Duet.PublishMetrics(scratch)
		sh.FS.PublishMetrics(scratch)
		r.Merge(scratch)
	}
}

// TraceProcesses returns the machine's tracers in deterministic order —
// coordinator first, then shards by index — for WriteTraceMulti. Empty
// when tracing is off.
func (m *ShardedMachine) TraceProcesses(prefix string) []obs.TraceProcess {
	var procs []obs.TraceProcess
	if o := m.Cfg.Obs; o != nil && o.Trace != nil {
		procs = append(procs, obs.TraceProcess{Name: prefix + " coord", T: o.Trace})
	}
	for _, sh := range m.Shards {
		if sh.Obs != nil && sh.Obs.Trace != nil {
			procs = append(procs, obs.TraceProcess{
				Name: fmt.Sprintf("%s shard%d", prefix, sh.Index), T: sh.Obs.Trace,
			})
		}
	}
	return procs
}

// WindowStats exposes the engine's barrier counters — rounds, idle
// fast-forwards, and granted window lengths. They are deterministic at
// any worker count, so experiments may print or publish them.
func (m *ShardedMachine) WindowStats() sim.WindowStats { return m.Eng.WindowStats() }

// EventStats sums page-event dispatch counters across shards.
func (m *ShardedMachine) EventStats() EventStats {
	var total EventStats
	for _, sh := range m.Shards {
		s := eventStats(sh.Cache, sh.Duet)
		total.Dispatched += s.Dispatched
		total.Filtered += s.Filtered
		total.HookCalls += s.HookCalls
	}
	return total
}
