package storage

import (
	"duet/internal/obs"
	"duet/internal/sim"
)

// Observability (internal/obs). A disk with observability enabled
// records one virtual-time slice per serviced request on its own trace
// track (named by the request owner, so Perfetto shows which stream
// occupied the device when) and feeds two histograms: submit-to-complete
// service latency and the scheduler queue depth seen at dispatch. All
// of it sits behind one nil check, so the default (disabled) executor
// path is unchanged and allocation-free.

// diskObs holds the pre-resolved instruments; nil on d.obs disables
// everything.
type diskObs struct {
	tr     *obs.Tracer
	tid    int32
	svcLat *obs.Histogram // submit-to-complete latency, µs
	qdepth *obs.Histogram // scheduler backlog at dispatch
}

// Histogram bucket bounds, shared by every disk so merged registries
// stay bucket-compatible.
var (
	latBoundsUS = []int64{50, 100, 200, 500, 1000, 2000, 5000, 10000, 20000, 50000, 100000}
	depthBounds = []int64{0, 1, 2, 4, 8, 16, 32, 64, 128}
)

// EnableObs attaches observability to the disk. Call once at machine
// assembly, before the simulation runs.
func (d *Disk) EnableObs(o *obs.Obs) {
	if o == nil || (o.Trace == nil && o.Metrics == nil) {
		return
	}
	st := &diskObs{tr: o.Trace}
	if o.Trace != nil {
		st.tid = o.Trace.Track("disk:" + d.Name)
	}
	if o.Metrics != nil {
		st.svcLat = o.Metrics.Histogram("storage."+d.Name+".service_us", latBoundsUS)
		st.qdepth = o.Metrics.Histogram("iosched."+d.Name+".qdepth", depthBounds)
	}
	d.obs = st
}

// observeDispatch records the queue backlog left behind when a request
// is handed to the executor.
func (d *Disk) observeDispatch() {
	d.obs.qdepth.Observe(int64(d.sched.Pending()))
}

// observeComplete records the request's service slice and latency.
// start is when the device began working on it; the slice therefore
// excludes queueing, which the latency histogram captures.
func (d *Disk) observeComplete(r *Request, start, now sim.Time) {
	st := d.obs
	if st.tr != nil {
		st.tr.SliceArg(st.tid, "storage", r.Owner, start, now, "blocks", int64(r.Count))
	}
	st.svcLat.Observe(int64((now - r.submitted) / sim.Microsecond))
}

// PublishMetrics absorbs the disk's cumulative counters into the
// registry under "storage.<name>.*". Safe to call repeatedly; values
// are absolute so re-absorption cannot double-count.
func (d *Disk) PublishMetrics(r *obs.Registry) {
	if r == nil {
		return
	}
	p := "storage." + d.Name + "."
	s := &d.stats
	r.SetCounter(p+"requests", s.Requests)
	r.SetCounter(p+"busy_us", int64(s.BusyTime/sim.Microsecond))
	r.SetCounter(p+"busy_normal_us", int64(s.ByClassBusy[ClassNormal]/sim.Microsecond))
	r.SetCounter(p+"busy_idle_us", int64(s.ByClassBusy[ClassIdle]/sim.Microsecond))
	r.SetCounter(p+"bad_block_hits", s.BadBlockHits)
	r.SetCounter(p+"faults_transient", s.TransientFaults)
	r.SetCounter(p+"faults_permanent", s.PermanentFaults)
	r.SetCounter(p+"torn_writes", s.TornWrites)
	r.SetCounter(p+"stalls", s.Stalls)
	r.SetCounter(p+"retries", s.Retries)
	r.SetCounter(p+"timeouts", s.Timeouts)
	r.SetCounter(p+"backoff_us", int64(s.BackoffTime/sim.Microsecond))
	r.Gauge(p + "queue_depth").SetMax(int64(d.sched.Pending()))
}
