package storage_test

import (
	"errors"
	"testing"

	"duet/internal/iosched"
	"duet/internal/sim"
	"duet/internal/storage"
)

const testBlocks = 1 << 18 // 1 GiB device

func newDisk(e *sim.Engine) *storage.Disk {
	return storage.NewDisk(e, "sda", storage.DefaultHDD(testBlocks), iosched.NewCFQ())
}

func TestHDDServiceTimeShape(t *testing.T) {
	h := storage.DefaultHDD(testBlocks)
	seq := h.ServiceTime(&storage.Request{Block: 1000, Count: 1}, 1000)
	near := h.ServiceTime(&storage.Request{Block: 1100, Count: 1}, 1000)
	far := h.ServiceTime(&storage.Request{Block: testBlocks - 1, Count: 1}, 0)
	if !(seq < near && near < far) {
		t.Errorf("want seq < near < far, got %v %v %v", seq, near, far)
	}
	// Sequential 4 KiB should be dominated by transfer (tens of µs).
	if seq > 200*sim.Microsecond {
		t.Errorf("sequential read too slow: %v", seq)
	}
	// Full-stroke seek should cost milliseconds.
	if far < 2*sim.Millisecond {
		t.Errorf("far seek too fast: %v", far)
	}
	// Large requests scale with count.
	big := h.ServiceTime(&storage.Request{Block: 1000, Count: 256}, 1000)
	if big < 256*h.PerBlock {
		t.Errorf("256-block transfer %v < media time", big)
	}
}

func TestHDDSequentialBandwidth(t *testing.T) {
	// 150 MB/s target: reading 1 MiB sequentially (256 blocks) should take
	// roughly 7 ms (allow 5-10 ms for overheads).
	h := storage.DefaultHDD(testBlocks)
	st := h.ServiceTime(&storage.Request{Block: 0, Count: 256}, 0)
	if st < 5*sim.Millisecond || st > 10*sim.Millisecond {
		t.Errorf("1 MiB sequential read = %v, want ~7ms", st)
	}
}

func TestSSDServiceTime(t *testing.T) {
	s := storage.DefaultSSD(testBlocks)
	r4k := s.ServiceTime(&storage.Request{Block: 5, Count: 1}, 99999)
	// ~160 µs → ~25 MB/s random 4 KiB, matching the Intel 510 anchor.
	if r4k < 100*sim.Microsecond || r4k > 300*sim.Microsecond {
		t.Errorf("4 KiB random read = %v", r4k)
	}
	// Position independence.
	if s.ServiceTime(&storage.Request{Block: 5, Count: 1}, 5) != r4k {
		t.Error("SSD should be position independent")
	}
	w := s.ServiceTime(&storage.Request{Block: 5, Count: 1, Write: true}, 0)
	if w <= r4k {
		t.Errorf("write (%v) should cost more than read (%v) on this model", w, r4k)
	}
}

func TestDiskServicesRequests(t *testing.T) {
	e := sim.New(1)
	d := newDisk(e)
	var errs []error
	e.Go("io", func(p *sim.Proc) {
		errs = append(errs, d.Read(p, 0, 8, storage.ClassNormal, "t"))
		errs = append(errs, d.Write(p, 100, 8, storage.ClassNormal, "t"))
		e.Stop()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	st := d.Stats()
	o := st.Owner("t")
	if o.Reads != 1 || o.Writes != 1 || o.BlocksRead != 8 || o.BlocksWritten != 8 {
		t.Errorf("owner stats = %+v", *o)
	}
	if st.BusyTime <= 0 {
		t.Error("busy time not accounted")
	}
	if e.Now() < st.BusyTime {
		t.Error("busy exceeds elapsed")
	}
}

func TestUtilizationAccounting(t *testing.T) {
	e := sim.New(1)
	d := newDisk(e)
	before := d.Snapshot()
	e.Go("load", func(p *sim.Proc) {
		for i := 0; i < 50; i++ {
			if err := d.Read(p, int64(i*997)%testBlocks, 1, storage.ClassNormal, "w"); err != nil {
				t.Errorf("read: %v", err)
			}
			p.Sleep(time50pct(d))
		}
		e.Stop()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	after := d.Snapshot()
	util := storage.UtilBetween(before, after)
	if util < 0.2 || util > 0.8 {
		t.Errorf("util = %.2f, want mid-range", util)
	}
	if got := storage.UtilClassBetween(before, after, storage.ClassNormal); got != util {
		t.Errorf("normal-class util %.3f != total %.3f (only normal I/O ran)", got, util)
	}
}

// time50pct returns a sleep that roughly matches a random-read service
// time, targeting ~50% utilization.
func time50pct(d *storage.Disk) sim.Time {
	return 3 * sim.Millisecond
}

func TestIdleClassWaitsForGrace(t *testing.T) {
	e := sim.New(1)
	sched := iosched.NewCFQ()
	d := storage.NewDisk(e, "sda", storage.DefaultHDD(testBlocks), sched)
	var normDone, idleDone sim.Time
	e.Go("normal", func(p *sim.Proc) {
		if err := d.Read(p, 0, 1, storage.ClassNormal, "w"); err != nil {
			t.Errorf("normal read: %v", err)
		}
		normDone = p.Now()
	})
	e.Go("idle", func(p *sim.Proc) {
		if err := d.Read(p, 5000, 1, storage.ClassIdle, "m"); err != nil {
			t.Errorf("idle read: %v", err)
		}
		idleDone = p.Now()
	})
	e.Go("stop", func(p *sim.Proc) { p.Sleep(sim.Second); e.Stop() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if idleDone <= normDone {
		t.Errorf("idle I/O (%v) should finish after normal (%v)", idleDone, normDone)
	}
	if idleDone < normDone+sched.IdleGrace {
		t.Errorf("idle I/O at %v did not wait out the grace after %v", idleDone, normDone)
	}
}

func TestIdleRunsBackToBackWhenQuiet(t *testing.T) {
	e := sim.New(1)
	sched := iosched.NewCFQ()
	d := storage.NewDisk(e, "sda", storage.DefaultHDD(testBlocks), sched)
	var stamps []sim.Time
	e.Go("idle", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			if err := d.Read(p, int64(i), 1, storage.ClassIdle, "m"); err != nil {
				t.Errorf("read: %v", err)
			}
			stamps = append(stamps, p.Now())
		}
		e.Stop()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Only the first op should pay the grace; subsequent sequential ops
	// complete within a transfer time of each other.
	for i := 1; i < len(stamps); i++ {
		if gap := stamps[i] - stamps[i-1]; gap > sim.Millisecond {
			t.Errorf("gap %d = %v; idle I/O should run back-to-back", i, gap)
		}
	}
}

func TestNormalPreemptsQueuedIdle(t *testing.T) {
	e := sim.New(1)
	sched := iosched.NewCFQ()
	d := storage.NewDisk(e, "sda", storage.DefaultHDD(testBlocks), sched)
	order := []string{}
	e.Go("idle", func(p *sim.Proc) {
		// Submit idle I/O first; it must wait for the grace period.
		if err := d.Read(p, 0, 1, storage.ClassIdle, "m"); err != nil {
			t.Errorf("read: %v", err)
		}
		order = append(order, "idle")
	})
	e.Go("normal", func(p *sim.Proc) {
		p.Sleep(sched.IdleGrace / 2) // arrive inside the grace window
		if err := d.Read(p, 100, 1, storage.ClassNormal, "w"); err != nil {
			t.Errorf("read: %v", err)
		}
		order = append(order, "normal")
	})
	e.Go("stop", func(p *sim.Proc) { p.Sleep(sim.Second); e.Stop() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "normal" {
		t.Errorf("order = %v, want normal first", order)
	}
}

func TestDeadlineIgnoresClasses(t *testing.T) {
	e := sim.New(1)
	d := storage.NewDisk(e, "sda", storage.DefaultHDD(testBlocks), iosched.NewDeadline())
	var idleDone sim.Time
	e.Go("idle", func(p *sim.Proc) {
		if err := d.Read(p, 0, 1, storage.ClassIdle, "m"); err != nil {
			t.Errorf("read: %v", err)
		}
		idleDone = p.Now()
	})
	e.Go("stop", func(p *sim.Proc) { p.Sleep(sim.Second); e.Stop() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Deadline dispatches idle I/O immediately, without any grace period.
	if idleDone > 10*sim.Millisecond {
		t.Errorf("idle I/O took %v under deadline; should dispatch immediately", idleDone)
	}
}

func TestBadBlockInjection(t *testing.T) {
	e := sim.New(1)
	d := newDisk(e)
	d.InjectBadBlock(42)
	var errA, errB, errC error
	e.Go("io", func(p *sim.Proc) {
		errA = d.Read(p, 40, 8, storage.ClassNormal, "t") // covers 42
		errB = d.Read(p, 50, 8, storage.ClassNormal, "t") // clean
		errC = d.Write(p, 40, 8, storage.ClassNormal, "t")
		d.RepairBlock(42)
		if err := d.Read(p, 40, 8, storage.ClassNormal, "t"); err != nil {
			t.Errorf("read after repair: %v", err)
		}
		e.Stop()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(errA, storage.ErrBadBlock) {
		t.Errorf("errA = %v, want ErrBadBlock", errA)
	}
	if errB != nil {
		t.Errorf("errB = %v", errB)
	}
	if errC != nil {
		t.Errorf("write should not fail on bad block: %v", errC)
	}
	if d.Stats().BadBlockHits != 1 {
		t.Errorf("BadBlockHits = %d", d.Stats().BadBlockHits)
	}
}

func TestOutOfRange(t *testing.T) {
	e := sim.New(1)
	d := newDisk(e)
	var errs [3]error
	e.Go("io", func(p *sim.Proc) {
		errs[0] = d.Read(p, -1, 1, storage.ClassNormal, "t")
		errs[1] = d.Read(p, testBlocks-1, 2, storage.ClassNormal, "t")
		errs[2] = d.Read(p, 0, 0, storage.ClassNormal, "t")
		e.Stop()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, err := range errs {
		if !errors.Is(err, storage.ErrOutOfRange) {
			t.Errorf("errs[%d] = %v, want ErrOutOfRange", i, err)
		}
	}
}

func TestClassString(t *testing.T) {
	if storage.ClassNormal.String() != "normal" || storage.ClassIdle.String() != "idle" {
		t.Error("Class.String broken")
	}
}

func TestSchedulerByName(t *testing.T) {
	for _, name := range []string{"cfq", "deadline", "noop"} {
		if iosched.ByName(name) == nil {
			t.Errorf("ByName(%q) = nil", name)
		}
	}
	if iosched.ByName("bogus") != nil {
		t.Error("ByName(bogus) should be nil")
	}
}

func TestAvgLatency(t *testing.T) {
	e := sim.New(1)
	d := newDisk(e)
	e.Go("io", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			if err := d.Read(p, int64(i*1000), 1, storage.ClassNormal, "t"); err != nil {
				t.Errorf("read: %v", err)
			}
		}
		e.Stop()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := d.Stats().Owner("t").AvgLatency(); got <= 0 {
		t.Errorf("AvgLatency = %v", got)
	}
	var zero storage.OwnerStats
	if zero.AvgLatency() != 0 {
		t.Error("zero-stats AvgLatency should be 0")
	}
}
