// Package storage simulates block devices: a hard disk with seek and
// transfer costs, and a solid-state drive with flat per-operation latency.
//
// A Disk couples a device Model with an I/O Scheduler (see
// internal/iosched) and an executor process that services one request at a
// time over virtual time, tracking the busy-time statistics the paper's
// evaluation relies on (device utilization is the %util statistic of
// iostat, §6.1.2).
package storage

import (
	"errors"
	"fmt"
	"math"

	"duet/internal/sim"
)

// BlockSize is the size of one device block in bytes. It equals the page
// size so that one page maps to one block, as in the paper's Linux setup.
const BlockSize = 4096

// Class is an I/O priority class, mirroring CFQ's classes. The paper runs
// maintenance I/O at Idle priority (§6.1.3).
type Class int

const (
	// ClassNormal is foreground (workload) I/O.
	ClassNormal Class = iota
	// ClassIdle is maintenance I/O, serviced only when the device has
	// been idle for a grace period under the CFQ-like scheduler.
	ClassIdle
	numClasses
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case ClassNormal:
		return "normal"
	case ClassIdle:
		return "idle"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// ErrBadBlock is returned when a request touches an injected bad block.
var ErrBadBlock = errors.New("storage: uncorrectable read error")

// ErrOutOfRange is returned when a request falls outside the device.
var ErrOutOfRange = errors.New("storage: request out of device range")

// Request is a block I/O request. Block and Count are in device blocks.
type Request struct {
	Block int64
	Count int
	Write bool
	Class Class
	Owner string // accounting label: "workload", "scrub", "backup", ...

	submitted sim.Time
	done      *sim.Future[struct{}]
	nextFree  *Request // free-list link while recycled (see Disk.getRequest)
}

// Model describes the performance characteristics of a device.
type Model interface {
	// Name identifies the model ("hdd", "ssd").
	Name() string
	// Blocks is the device capacity in blocks.
	Blocks() int64
	// ServiceTime is how long the request occupies the device, given the
	// head position left by the previous request (first block after it).
	ServiceTime(r *Request, headPos int64) sim.Time
}

// Scheduler orders pending requests. Implementations live in
// internal/iosched.
type Scheduler interface {
	// Name identifies the scheduler ("cfq", "deadline", "noop").
	Name() string
	// Add enqueues a request.
	Add(r *Request)
	// Dispatch returns the next request to service. If no request is
	// currently eligible it returns nil and either a positive wait hint
	// (call again after that much time) or zero (wait for new arrivals).
	Dispatch(now, lastNormal sim.Time) (*Request, sim.Time)
	// Pending returns the number of queued requests.
	Pending() int
}

// OwnerStats aggregates per-owner I/O accounting.
type OwnerStats struct {
	Reads, Writes             int64 // requests
	BlocksRead, BlocksWritten int64
	BusyTime                  sim.Time
	TotalLatency              sim.Time // submit-to-complete, summed
}

// AvgLatency returns the mean request latency for this owner.
func (o OwnerStats) AvgLatency() sim.Time {
	n := o.Reads + o.Writes
	if n == 0 {
		return 0
	}
	return o.TotalLatency / sim.Time(n)
}

// Stats aggregates device accounting.
type Stats struct {
	BusyTime     sim.Time
	Requests     int64
	ByOwner      map[string]*OwnerStats
	ByClassBusy  [numClasses]sim.Time
	BadBlockHits int64

	// Fault and recovery accounting. All zero unless a FaultInjector is
	// attached (see faults.go).
	TransientFaults int64    // injected transient errors observed
	PermanentFaults int64    // injected permanent errors propagated
	TornWrites      int64    // permanent errors that were torn writes
	Stalls          int64    // attempts delayed by an injected stall
	Retries         int64    // retry attempts issued by the executor
	Timeouts        int64    // requests failed on the deadline
	BackoffTime     sim.Time // virtual time spent backing off
}

// Owner returns (allocating if needed) the stats bucket for an owner.
func (s *Stats) Owner(name string) *OwnerStats {
	if s.ByOwner == nil {
		s.ByOwner = make(map[string]*OwnerStats)
	}
	o := s.ByOwner[name]
	if o == nil {
		o = &OwnerStats{}
		s.ByOwner[name] = o
	}
	return o
}

// Disk is a simulated block device: model + scheduler + executor process.
type Disk struct {
	Name string

	eng        sim.Host
	model      Model
	sched      Scheduler
	stats      Stats
	headPos    int64
	lastNormal sim.Time // completion time of the last normal-class request
	kick       *sim.WaitQueue
	badBlocks  map[int64]bool
	inFlight   *Request
	inFlightST sim.Time // service time of inFlight (callback executor)
	reqFree    *Request // recycled requests for the blocking Read/Write wrappers

	// Executor state. The default executor is a sim.Callback: every
	// service step runs inline on the scheduler with no goroutine
	// handoff. UseProcExecutor switches to the classic goroutine loop
	// (required for the blocking retry/backoff stacks of the fault
	// path, and available for A/B measurement). graceCB is the single
	// reusable grace-wait timer shared by both executors.
	cb       *sim.Callback
	graceCB  *sim.Callback
	execProc bool

	// Fault injection (nil/zero on the fault-free path; see faults.go).
	injector FaultInjector
	retry    RetryPolicy

	// Observability (nil when disabled; see obs.go).
	obs *diskObs
}

// Wait reasons are package constants so both executors park under the
// same (static) strings — DumpWaiters output and trace slices must not
// depend on the execution mode.
const (
	reasonDiskIdle  = "disk idle"
	reasonDiskGrace = "disk grace wait"
)

// NewDisk creates a disk and registers its executor on e. The executor
// is a callback (goroutine-free); attaching a fault injector — or
// calling UseProcExecutor before Run — switches to the classic
// goroutine process, which supports the blocking fault path.
func NewDisk(e sim.Host, name string, model Model, sched Scheduler) *Disk {
	d := &Disk{
		Name:  name,
		eng:   e,
		model: model,
		sched: sched,
		kick:  sim.NewWaitQueue(e),
	}
	d.cb = sim.NewCallback(e, "disk:"+name, d.step)
	d.graceCB = sim.NewCallback(e, "disk-timer:"+name, func(sim.Time) sim.Time {
		d.kick.WakeAll()
		return 0
	})
	d.kick.Subscribe(d.cb, reasonDiskIdle)
	return d
}

// UseProcExecutor switches the disk to the classic goroutine executor.
// Simulation results are byte-identical in either mode (the callback
// occupies exactly the (time, seq) slots the goroutine sleeps on); the
// goroutine form exists for the fault path's blocking retry stack and
// for A/B measurement of the handoff cost. Must be called before the
// disk has a request in flight — normally at machine assembly.
func (d *Disk) UseProcExecutor() {
	if d.execProc {
		return
	}
	if d.inFlight != nil {
		panic("storage: UseProcExecutor with a request in flight on " + d.Name)
	}
	d.execProc = true
	d.cb.Cancel()
	d.eng.Go("disk:"+d.Name, d.run)
}

// Model returns the device model.
func (d *Disk) Model() Model { return d.model }

// Blocks returns the device capacity in blocks.
func (d *Disk) Blocks() int64 { return d.model.Blocks() }

// Stats returns a pointer to the live statistics. Callers must not modify
// it; snapshot with Snapshot for deltas.
func (d *Disk) Stats() *Stats { return &d.stats }

// Snapshot copies the cumulative busy time and timestamp; subtract two
// snapshots to compute utilization over a window.
type Snapshot struct {
	At       sim.Time
	BusyTime sim.Time
	ByClass  [numClasses]sim.Time
}

// Snapshot captures the current accounting state.
func (d *Disk) Snapshot() Snapshot {
	return Snapshot{At: d.eng.Now(), BusyTime: d.stats.BusyTime, ByClass: d.stats.ByClassBusy}
}

// UtilBetween returns the fraction of time the device was busy between two
// snapshots, like iostat's %util.
func UtilBetween(a, b Snapshot) float64 {
	if b.At <= a.At {
		return 0
	}
	return float64(b.BusyTime-a.BusyTime) / float64(b.At-a.At)
}

// UtilClassBetween returns busy fraction attributable to one class.
func UtilClassBetween(a, b Snapshot, c Class) float64 {
	if b.At <= a.At {
		return 0
	}
	return float64(b.ByClass[c]-a.ByClass[c]) / float64(b.At-a.At)
}

// LastNormalCompletion returns when the last normal-class request
// finished; background tasks use it for idle detection.
func (d *Disk) LastNormalCompletion() sim.Time { return d.lastNormal }

// QueueDepth returns the number of requests waiting in the scheduler.
func (d *Disk) QueueDepth() int { return d.sched.Pending() }

// InjectBadBlock marks a block as unreadable: reads covering it fail with
// ErrBadBlock (used for scrubber failure-injection tests).
func (d *Disk) InjectBadBlock(block int64) {
	if d.badBlocks == nil {
		d.badBlocks = make(map[int64]bool)
	}
	d.badBlocks[block] = true
}

// RepairBlock clears an injected bad block (a scrubber "repair").
func (d *Disk) RepairBlock(block int64) { delete(d.badBlocks, block) }

// SubmitAsync enqueues a request and returns a future that completes when
// it is serviced. The future's error is non-nil on read failures.
func (d *Disk) SubmitAsync(r *Request) *sim.Future[struct{}] {
	// A recycled request carries its (reset) future; a caller-built one
	// gets a fresh future here.
	if r.done == nil {
		r.done = sim.NewFuture[struct{}](d.eng)
	}
	if r.Count <= 0 || r.Block < 0 || r.Block+int64(r.Count) > d.model.Blocks() {
		r.done.Complete(struct{}{}, fmt.Errorf("%w: block %d count %d on %q (%d blocks)",
			ErrOutOfRange, r.Block, r.Count, d.Name, d.model.Blocks()))
		return r.done
	}
	r.submitted = d.eng.Now()
	d.sched.Add(r)
	d.kick.WakeOne()
	return r.done
}

// Submit enqueues a request and blocks the calling process until it is
// serviced, returning any device error.
func (d *Disk) Submit(p *sim.Proc, r *Request) error {
	f := d.SubmitAsync(r)
	_, err := f.Wait(p)
	return err
}

// getRequest takes a request (with an attached, reset future) from the
// free list. The blocking wrappers below are the only users: once Submit
// returns, nothing else references the request, so it can be recycled.
// Requests built by SubmitAsync callers are never pooled.
func (d *Disk) getRequest() *Request {
	r := d.reqFree
	if r == nil {
		return &Request{}
	}
	d.reqFree = r.nextFree
	r.nextFree = nil
	r.done.Reset()
	return r
}

func (d *Disk) putRequest(r *Request) {
	r.nextFree = d.reqFree
	d.reqFree = r
}

// Read issues a blocking read of count blocks at block.
func (d *Disk) Read(p *sim.Proc, block int64, count int, class Class, owner string) error {
	r := d.getRequest()
	r.Block, r.Count, r.Write, r.Class, r.Owner = block, count, false, class, owner
	err := d.Submit(p, r)
	d.putRequest(r)
	return err
}

// Write issues a blocking write of count blocks at block.
func (d *Disk) Write(p *sim.Proc, block int64, count int, class Class, owner string) error {
	r := d.getRequest()
	r.Block, r.Count, r.Write, r.Class, r.Owner = block, count, true, class, owner
	err := d.Submit(p, r)
	d.putRequest(r)
	return err
}

// step is the callback executor: one invocation completes the in-flight
// request (when the callback fired as its completion timer), dispatches
// the next one, and re-arms by returning its service time. It runs
// inline on the domain scheduler — no goroutine exists for the disk at
// all — yet consumes exactly the (time, seq) slots run/service sleep
// on, so both executors produce byte-identical simulations.
func (d *Disk) step(now sim.Time) sim.Time {
	if r := d.inFlight; r != nil {
		d.inFlight = nil
		d.finish(r, d.inFlightST, now)
	}
	r, wait := d.sched.Dispatch(now, d.lastNormal)
	if r == nil {
		if wait > 0 {
			// An idle-class request is waiting out the grace period. Arm
			// the grace timer through the run queue (the slot the spawned
			// timer proc used to occupy) and listen for new arrivals; the
			// earlier of the two re-invokes the step.
			d.graceCB.ArmDeferred(wait)
			d.kick.Subscribe(d.cb, reasonDiskGrace)
		} else {
			d.kick.Subscribe(d.cb, reasonDiskIdle)
		}
		return 0
	}
	if d.obs != nil {
		d.observeDispatch()
	}
	st := d.model.ServiceTime(r, d.headPos)
	d.inFlight = r
	d.inFlightST = st
	return st
}

// run is the goroutine executor process: it pulls requests from the
// scheduler and services them one at a time.
func (d *Disk) run(p *sim.Proc) {
	for {
		r, wait := d.sched.Dispatch(p.Now(), d.lastNormal)
		if r == nil {
			if wait > 0 {
				// An idle-class request is waiting out the grace period.
				// Sleep, but a new arrival may beat the timer; re-dispatch
				// handles either way.
				d.sleepOrKick(p, wait)
			} else {
				d.kick.Wait(p, reasonDiskIdle)
			}
			continue
		}
		if d.obs != nil {
			d.observeDispatch()
		}
		d.service(p, r)
	}
}

// sleepOrKick waits until either wait elapses or a new request arrives;
// any wake triggers a re-dispatch in run, so spurious wakeups are fine.
// The grace timer is the disk's single reusable callback — the old
// goroutine-per-wait spawn paid a stack and two handshakes per batch.
func (d *Disk) sleepOrKick(p *sim.Proc, wait sim.Time) {
	d.graceCB.ArmDeferred(wait)
	d.kick.Wait(p, reasonDiskGrace)
}

func (d *Disk) service(p *sim.Proc, r *Request) {
	if d.injector != nil {
		d.serviceFaulty(p, r)
		return
	}
	st := d.model.ServiceTime(r, d.headPos)
	d.inFlight = r
	p.Sleep(st)
	d.inFlight = nil
	d.finish(r, st, p.Now())
}

// finish applies the completion accounting for a serviced request and
// resolves its future. Shared by both executors; now is the completion
// time and st the service time the device was occupied for.
func (d *Disk) finish(r *Request, st sim.Time, now sim.Time) {
	d.headPos = r.Block + int64(r.Count)
	d.stats.BusyTime += st
	d.stats.Requests++
	d.stats.ByClassBusy[r.Class] += st
	if r.Class == ClassNormal {
		d.lastNormal = now
	}
	o := d.stats.Owner(r.Owner)
	o.BusyTime += st
	o.TotalLatency += now - r.submitted
	if r.Write {
		o.Writes++
		o.BlocksWritten += int64(r.Count)
	} else {
		o.Reads++
		o.BlocksRead += int64(r.Count)
	}

	var err error
	if !r.Write && d.badBlocks != nil {
		for b := r.Block; b < r.Block+int64(r.Count); b++ {
			if d.badBlocks[b] {
				d.stats.BadBlockHits++
				err = fmt.Errorf("%w at block %d", ErrBadBlock, b)
				break
			}
		}
	}
	if d.obs != nil {
		d.observeComplete(r, now-st, now)
	}
	r.done.Complete(struct{}{}, err)
}

// HDD models a 10K RPM enterprise hard drive. Positioning cost grows with
// seek distance; sequential access pays transfer time only.
type HDD struct {
	Capacity    int64    // blocks
	SeekBase    sim.Time // minimum positioning cost for a non-adjacent seek
	SeekMax     sim.Time // additional cost at full-stroke distance
	NearSeek    sim.Time // positioning cost within NearBlocks of the head
	NearBlocks  int64
	PerBlock    sim.Time // media transfer time per block
	PerBlockWr  sim.Time // write transfer time per block (0 = same as read)
	ReqOverhead sim.Time // fixed controller/command overhead per request
}

// DefaultHDD returns parameters approximating the paper's 300 GB 10K RPM
// SAS drive (~150 MB/s sequential, ~21 MB/s 64 KB random reads), scaled to
// the given capacity in blocks.
func DefaultHDD(blocks int64) *HDD {
	return &HDD{
		Capacity:    blocks,
		SeekBase:    800 * sim.Microsecond,
		SeekMax:     3500 * sim.Microsecond,
		NearSeek:    500 * sim.Microsecond,
		NearBlocks:  256,
		PerBlock:    26 * sim.Microsecond, // 4 KiB / 150 MB/s
		ReqOverhead: 50 * sim.Microsecond,
	}
}

// Name implements Model.
func (h *HDD) Name() string { return "hdd" }

// Blocks implements Model.
func (h *HDD) Blocks() int64 { return h.Capacity }

// ServiceTime implements Model.
func (h *HDD) ServiceTime(r *Request, headPos int64) sim.Time {
	perBlock := h.PerBlock
	if r.Write && h.PerBlockWr > 0 {
		perBlock = h.PerBlockWr
	}
	t := h.ReqOverhead + sim.Time(int64(perBlock)*int64(r.Count))
	dist := r.Block - headPos
	if dist < 0 {
		dist = -dist
	}
	switch {
	case dist == 0:
		// sequential: no positioning
	case dist <= h.NearBlocks:
		t += h.NearSeek
	default:
		frac := float64(dist) / float64(h.Capacity)
		if frac > 1 {
			frac = 1
		}
		t += h.SeekBase + h.SeekMax.Scale(math.Sqrt(frac))
	}
	return t
}

// Slowed returns a copy of the HDD with every latency multiplied by f.
// The experiment harness uses this to keep the paper's ratio of
// maintenance-work time to experiment window at reduced data scales: a
// device f× slower makes a dataset f× smaller take the same fraction of
// the (also scaled) window.
func (h *HDD) Slowed(f float64) *HDD {
	c := *h
	c.SeekBase = c.SeekBase.Scale(f)
	c.SeekMax = c.SeekMax.Scale(f)
	c.NearSeek = c.NearSeek.Scale(f)
	c.PerBlock = c.PerBlock.Scale(f)
	c.PerBlockWr = c.PerBlockWr.Scale(f)
	c.ReqOverhead = c.ReqOverhead.Scale(f)
	return &c
}

// Slowed returns a copy of the SSD with every latency multiplied by f.
func (s *SSD) Slowed(f float64) *SSD {
	c := *s
	c.ReadOp = c.ReadOp.Scale(f)
	c.WriteOp = c.WriteOp.Scale(f)
	c.PerBlockRd = c.PerBlockRd.Scale(f)
	c.PerBlockWr = c.PerBlockWr.Scale(f)
	return &c
}

// SSD models a consumer SATA solid-state drive (the paper's Intel 510):
// flat per-request latency plus per-block transfer, no positional cost.
type SSD struct {
	Capacity   int64
	ReadOp     sim.Time // fixed cost per read request
	WriteOp    sim.Time // fixed cost per write request
	PerBlockRd sim.Time
	PerBlockWr sim.Time
}

// DefaultSSD returns parameters approximating the Intel 510 (~25 MB/s 4 KB
// random reads, ~300+ MB/s large sequential reads, ~210 MB/s writes).
func DefaultSSD(blocks int64) *SSD {
	return &SSD{
		Capacity:   blocks,
		ReadOp:     150 * sim.Microsecond,
		WriteOp:    170 * sim.Microsecond,
		PerBlockRd: 10 * sim.Microsecond, // 4 KiB / ~400 MB/s
		PerBlockWr: 19 * sim.Microsecond, // 4 KiB / ~210 MB/s
	}
}

// Name implements Model.
func (s *SSD) Name() string { return "ssd" }

// Blocks implements Model.
func (s *SSD) Blocks() int64 { return s.Capacity }

// ServiceTime implements Model.
func (s *SSD) ServiceTime(r *Request, _ int64) sim.Time {
	if r.Write {
		return s.WriteOp + sim.Time(int64(s.PerBlockWr)*int64(r.Count))
	}
	return s.ReadOp + sim.Time(int64(s.PerBlockRd)*int64(r.Count))
}
