package storage_test

import (
	"errors"
	"testing"

	"duet/internal/sim"
	"duet/internal/storage"
)

// scriptInjector returns a fixed outcome per service attempt, in order;
// attempts beyond the script succeed.
type scriptInjector struct {
	outcomes []storage.FaultOutcome
	calls    int
}

func (s *scriptInjector) Evaluate(now sim.Time, r *storage.Request, attempt int) storage.FaultOutcome {
	i := s.calls
	s.calls++
	if i < len(s.outcomes) {
		return s.outcomes[i]
	}
	return storage.FaultOutcome{}
}

// ioResult runs one I/O against a scripted disk and returns its error.
func ioResult(t *testing.T, inj storage.FaultInjector, policy *storage.RetryPolicy,
	fn func(p *sim.Proc, d *storage.Disk) error) (*storage.Disk, error) {
	t.Helper()
	e := sim.New(1)
	d := newDisk(e)
	d.SetFaultInjector(inj)
	if policy != nil {
		d.SetRetryPolicy(*policy)
	}
	var got error
	e.Go("io", func(p *sim.Proc) {
		defer e.Stop()
		got = fn(p, d)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return d, got
}

func TestTransientReadRetriesThenSucceeds(t *testing.T) {
	inj := &scriptInjector{outcomes: []storage.FaultOutcome{
		{Err: storage.ErrTransient},
		{Err: storage.ErrTransient},
	}}
	d, err := ioResult(t, inj, nil, func(p *sim.Proc, d *storage.Disk) error {
		return d.Read(p, 0, 4, storage.ClassNormal, "t")
	})
	if err != nil {
		t.Fatalf("read should succeed on third attempt: %v", err)
	}
	st := d.Stats()
	if st.TransientFaults != 2 || st.Retries != 2 {
		t.Errorf("TransientFaults=%d Retries=%d, want 2/2", st.TransientFaults, st.Retries)
	}
	if st.BackoffTime <= 0 {
		t.Error("no backoff time accounted")
	}
	if inj.calls != 3 {
		t.Errorf("injector evaluated %d times, want 3", inj.calls)
	}
}

func TestTransientRetriesExhausted(t *testing.T) {
	// More transient faults than MaxRetries allows: the error propagates
	// and callers can classify it as retryable at a higher level.
	outs := make([]storage.FaultOutcome, 10)
	for i := range outs {
		outs[i] = storage.FaultOutcome{Err: storage.ErrTransient}
	}
	policy := storage.DefaultRetryPolicy()
	policy.MaxRetries = 2
	d, err := ioResult(t, &scriptInjector{outcomes: outs}, &policy,
		func(p *sim.Proc, d *storage.Disk) error {
			return d.Write(p, 0, 4, storage.ClassNormal, "t")
		})
	if !storage.IsTransient(err) {
		t.Fatalf("want transient-class error, got %v", err)
	}
	if st := d.Stats(); st.Retries != 2 {
		t.Errorf("Retries = %d, want 2", st.Retries)
	}
}

func TestPermanentWriteFaultNoRetry(t *testing.T) {
	inj := &scriptInjector{outcomes: []storage.FaultOutcome{{Err: storage.ErrWriteFault}}}
	d, err := ioResult(t, inj, nil, func(p *sim.Proc, d *storage.Disk) error {
		return d.Write(p, 0, 4, storage.ClassNormal, "t")
	})
	if !errors.Is(err, storage.ErrWriteFault) {
		t.Fatalf("want ErrWriteFault, got %v", err)
	}
	if inj.calls != 1 {
		t.Errorf("permanent fault retried: %d attempts", inj.calls)
	}
	if st := d.Stats(); st.PermanentFaults != 1 || st.Retries != 0 {
		t.Errorf("PermanentFaults=%d Retries=%d, want 1/0", st.PermanentFaults, st.Retries)
	}
}

func TestTornWritePropagates(t *testing.T) {
	inj := &scriptInjector{outcomes: []storage.FaultOutcome{
		{Err: &storage.TornWriteError{Persisted: 3}},
	}}
	d, err := ioResult(t, inj, nil, func(p *sim.Proc, d *storage.Disk) error {
		return d.Write(p, 100, 8, storage.ClassNormal, "t")
	})
	n, ok := storage.TornBlocks(err)
	if !ok || n != 3 {
		t.Fatalf("TornBlocks = (%d,%v), want (3,true); err=%v", n, ok, err)
	}
	if st := d.Stats(); st.TornWrites != 1 {
		t.Errorf("TornWrites = %d, want 1", st.TornWrites)
	}
}

func TestStallBlowsDeadline(t *testing.T) {
	policy := storage.RetryPolicy{
		MaxRetries:  4,
		BaseBackoff: sim.Millisecond,
		MaxBackoff:  10 * sim.Millisecond,
		Deadline:    20 * sim.Millisecond,
	}
	inj := &scriptInjector{outcomes: []storage.FaultOutcome{
		{ExtraLatency: 100 * sim.Millisecond},
	}}
	d, err := ioResult(t, inj, &policy, func(p *sim.Proc, d *storage.Disk) error {
		return d.Read(p, 0, 1, storage.ClassNormal, "t")
	})
	if !errors.Is(err, storage.ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
	st := d.Stats()
	if st.Stalls != 1 || st.Timeouts != 1 {
		t.Errorf("Stalls=%d Timeouts=%d, want 1/1", st.Stalls, st.Timeouts)
	}
	// A timeout is transient from the caller's perspective: the data is
	// still in memory and a retry may succeed.
	if !storage.IsTransient(err) {
		t.Error("timeout should classify as transient")
	}
}

func TestDetachRestoresCleanPath(t *testing.T) {
	e := sim.New(1)
	d := newDisk(e)
	inj := &scriptInjector{outcomes: []storage.FaultOutcome{{Err: storage.ErrTransient}}}
	d.SetFaultInjector(inj)
	d.SetFaultInjector(nil)
	var got error
	e.Go("io", func(p *sim.Proc) {
		defer e.Stop()
		got = d.Read(p, 0, 4, storage.ClassNormal, "t")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got != nil {
		t.Fatalf("detached disk still faulty: %v", got)
	}
	if inj.calls != 0 {
		t.Error("detached injector was consulted")
	}
}
