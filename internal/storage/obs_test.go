package storage_test

import (
	"testing"

	"duet/internal/obs"
	"duet/internal/sim"
	"duet/internal/storage"
)

// TestDiskObsRecords checks the enabled path: every serviced request
// leaves one trace slice on the disk's track plus a service-latency
// observation, and PublishMetrics absorbs the cumulative counters.
func TestDiskObsRecords(t *testing.T) {
	e := sim.New(1)
	d := newDisk(e)
	o := &obs.Obs{Trace: obs.NewTracer(1024), Metrics: obs.NewRegistry()}
	d.EnableObs(o)
	const reqs = 10
	e.Go("io", func(p *sim.Proc) {
		for i := 0; i < reqs; i++ {
			if err := d.Read(p, int64(i*1000), 4, storage.ClassNormal, "reader"); err != nil {
				t.Errorf("read %d: %v", i, err)
			}
		}
		e.Stop()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	slices := 0
	o.Trace.Events(func(ev *obs.Event) {
		if ev.Ph == 'X' && ev.Cat == "storage" {
			slices++
		}
	})
	if slices != reqs {
		t.Errorf("trace has %d storage slices, want %d (one per request)", slices, reqs)
	}
	lat := o.Metrics.Histogram("storage.sda.service_us", nil)
	if lat.Count() != reqs {
		t.Errorf("latency histogram holds %d samples, want %d", lat.Count(), reqs)
	}
	d.PublishMetrics(o.Metrics)
	if v := o.Metrics.Counter("storage.sda.requests").Value(); v != reqs {
		t.Errorf("storage.sda.requests = %d, want %d", v, reqs)
	}
	if v := o.Metrics.Counter("storage.sda.busy_us").Value(); v <= 0 {
		t.Errorf("storage.sda.busy_us = %d, want > 0", v)
	}
}

// TestDiskObsDisabledNoop guards the default: a disk never handed an
// obs handle must not record anything, and enabling with an empty
// handle stays a no-op too.
func TestDiskObsDisabledNoop(t *testing.T) {
	e := sim.New(1)
	d := newDisk(e)
	d.EnableObs(nil)
	d.EnableObs(&obs.Obs{})
	e.Go("io", func(p *sim.Proc) {
		if err := d.Read(p, 0, 1, storage.ClassNormal, "t"); err != nil {
			t.Error(err)
		}
		e.Stop()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if d.Stats().Requests != 1 {
		t.Error("request not serviced")
	}
}
