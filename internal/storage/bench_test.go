package storage_test

import (
	"testing"

	"duet/internal/iosched"
	"duet/internal/sim"
	"duet/internal/storage"
)

// The disk service loop A/B: the same blocking-read workload driven
// through the callback executor (inline dispatch and completion on the
// scheduler goroutine) and the legacy goroutine executor (a disk proc
// parked and resumed around every request). The pair isolates the
// handoff cost the goroutine-free hot path removes from every
// simulated I/O; both modes produce identical simulated timelines.

func benchServiceLoop(b *testing.B, legacyProc bool) {
	b.ReportAllocs()
	e := sim.New(1)
	d := storage.NewDisk(e, "bench", storage.DefaultSSD(1<<20), iosched.NewFIFO())
	if legacyProc {
		d.UseProcExecutor()
	}
	var fail error
	e.Go("driver", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			// Stride the block address so the model's head/locality terms
			// stay busy without queue buildup: one request in flight at a
			// time exercises the idle-park/kick-wake edge every iteration.
			if err := d.Read(p, int64(i%4096)*8, 8, storage.ClassNormal, "bench"); err != nil {
				fail = err
				return
			}
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
	if fail != nil {
		b.Fatal(fail)
	}
}

// BenchmarkDiskServiceCallback measures submit → dispatch → completion
// with the goroutine-free executor (the default).
func BenchmarkDiskServiceCallback(b *testing.B) { benchServiceLoop(b, false) }

// BenchmarkDiskServiceProc measures the same loop with the legacy
// goroutine executor: every request pays two extra park/resume
// handshakes (disk idle-wake and completion-sleep).
func BenchmarkDiskServiceProc(b *testing.B) { benchServiceLoop(b, true) }
