package storage

import (
	"errors"
	"fmt"

	"duet/internal/sim"
)

// This file holds the device-level fault surface: the error taxonomy the
// rest of the stack programs against, the FaultInjector interface that
// internal/faults implements, and the retry/backoff/timeout policy the
// executor applies when an injector is attached. With no injector the
// disk behaves exactly as before — service() never consults any of this,
// which keeps the fault-free path byte-identical.

// ErrTransient is a recoverable device error: the same request may
// succeed if retried. The executor retries it under the RetryPolicy; if
// retries are exhausted the error propagates to the submitter.
var ErrTransient = errors.New("storage: transient device error")

// ErrWriteFault is an unrecoverable write error: the target blocks did
// not reach the medium and retrying cannot help (e.g. a failed remap).
// Writeback must keep the data and quarantine it, not drop it.
var ErrWriteFault = errors.New("storage: unrecoverable write error")

// ErrTimeout is returned when a request exceeds the retry policy's
// deadline — either stalled on the device or stuck in a retry loop.
var ErrTimeout = errors.New("storage: request deadline exceeded")

// TornWriteError reports a partially persisted write: the first
// Persisted blocks of the request reached the medium, the rest did not.
// Writeback applies the persisted prefix and retries the remainder.
type TornWriteError struct {
	Persisted int
}

// Error implements error.
func (e *TornWriteError) Error() string {
	return fmt.Sprintf("storage: torn write (persisted %d blocks)", e.Persisted)
}

// TornBlocks extracts the persisted prefix length from a torn-write
// error, if err is one.
func TornBlocks(err error) (int, bool) {
	var torn *TornWriteError
	if errors.As(err, &torn) {
		return torn.Persisted, true
	}
	return 0, false
}

// IsTransient reports whether err is worth retrying at a higher level:
// the data is intact in memory and a later attempt may succeed.
func IsTransient(err error) bool {
	return errors.Is(err, ErrTransient) || errors.Is(err, ErrTimeout)
}

// FaultOutcome is the injector's decision for one service attempt.
type FaultOutcome struct {
	// Err is the injected failure; nil means the attempt succeeds (reads
	// may still hit an injected bad block). Use ErrTransient, ErrWriteFault,
	// a *TornWriteError, or ErrBadBlock-wrapping errors.
	Err error
	// ExtraLatency stalls the attempt: it is added to the model's service
	// time and counts as device busy time.
	ExtraLatency sim.Time
}

// FaultInjector decides, deterministically, whether a service attempt
// fails. Evaluate is called once per attempt (so a retried request is
// re-evaluated); attempt is 0 for the first try. Implementations may
// also materialize time-triggered faults (latent sector errors) by
// calling InjectBadBlock on the disk.
type FaultInjector interface {
	Evaluate(now sim.Time, r *Request, attempt int) FaultOutcome
}

// RetryPolicy bounds the executor's recovery from transient faults.
// Backoff is exponential in virtual time: BaseBackoff, doubled per
// retry, capped at MaxBackoff. A request whose total latency would
// exceed Deadline fails with ErrTimeout instead of retrying further.
type RetryPolicy struct {
	MaxRetries  int      // retries after the first attempt
	BaseBackoff sim.Time // first retry delay
	MaxBackoff  sim.Time // backoff cap
	Deadline    sim.Time // total submit-to-complete budget; 0 = none
}

// DefaultRetryPolicy mirrors a conservative SCSI mid-layer: a handful
// of retries, millisecond-scale backoff, a two-second deadline.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxRetries:  4,
		BaseBackoff: sim.Millisecond,
		MaxBackoff:  50 * sim.Millisecond,
		Deadline:    2 * sim.Second,
	}
}

// SetFaultInjector attaches an injector and arms the retry policy (the
// default if none was set). Passing nil detaches and restores the exact
// pre-attach service path. Attaching switches the disk to the goroutine
// executor — the fault path's retry/backoff loop blocks mid-request,
// which a callback cannot do — so it must happen before the first
// request is dispatched (machine assembly does). Detaching mid-run is
// fine: the goroutine executor handles a nil injector per request.
func (d *Disk) SetFaultInjector(in FaultInjector) {
	d.injector = in
	if in != nil {
		if d.retry == (RetryPolicy{}) {
			d.retry = DefaultRetryPolicy()
		}
		d.UseProcExecutor()
	}
}

// SetRetryPolicy overrides the retry policy used when an injector is
// attached.
func (d *Disk) SetRetryPolicy(p RetryPolicy) { d.retry = p }

// RetryPolicy returns the currently armed retry policy (the zero value
// until an injector attaches or SetRetryPolicy is called).
func (d *Disk) RetryPolicy() RetryPolicy { return d.retry }

// BadBlocks returns the currently injected bad blocks in ascending
// order. Recovery uses it to transplant medium state onto the disk of a
// remounted machine.
func (d *Disk) BadBlocks() []int64 {
	if len(d.badBlocks) == 0 {
		return nil
	}
	out := make([]int64, 0, len(d.badBlocks))
	for b := range d.badBlocks {
		out = append(out, b)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// serviceFaulty is the executor's service path with an injector
// attached: evaluate the fault plan per attempt, retry transient errors
// with bounded exponential backoff in virtual time, convert stalls that
// blow the deadline into ErrTimeout, and propagate permanent errors.
func (d *Disk) serviceFaulty(p *sim.Proc, r *Request) {
	backoff := d.retry.BaseBackoff
	for attempt := 0; ; attempt++ {
		out := d.injector.Evaluate(p.Now(), r, attempt)
		st := d.model.ServiceTime(r, d.headPos) + out.ExtraLatency
		if out.ExtraLatency > 0 {
			d.stats.Stalls++
		}
		d.inFlight = r
		p.Sleep(st)
		d.inFlight = nil
		now := p.Now()

		d.headPos = r.Block + int64(r.Count)
		d.stats.BusyTime += st
		d.stats.ByClassBusy[r.Class] += st
		if r.Class == ClassNormal {
			d.lastNormal = now
		}
		o := d.stats.Owner(r.Owner)
		o.BusyTime += st

		err := out.Err
		if err == nil && !r.Write && d.badBlocks != nil {
			for b := r.Block; b < r.Block+int64(r.Count); b++ {
				if d.badBlocks[b] {
					d.stats.BadBlockHits++
					err = fmt.Errorf("%w at block %d", ErrBadBlock, b)
					break
				}
			}
		}

		elapsed := now - r.submitted
		switch {
		case err == nil:
			if d.retry.Deadline > 0 && elapsed > d.retry.Deadline {
				// The attempt finished, but only after the initiator
				// would have aborted it: a stalled request is a timeout
				// even if the medium eventually responded.
				d.stats.Timeouts++
				err = fmt.Errorf("%w (%v elapsed)", ErrTimeout, elapsed)
			}
		case errors.Is(err, ErrTransient):
			d.stats.TransientFaults++
			over := d.retry.Deadline > 0 && elapsed+backoff > d.retry.Deadline
			if attempt < d.retry.MaxRetries && !over {
				d.stats.Retries++
				d.stats.BackoffTime += backoff
				p.Sleep(backoff)
				backoff *= 2
				if backoff > d.retry.MaxBackoff {
					backoff = d.retry.MaxBackoff
				}
				continue
			}
			if over {
				d.stats.Timeouts++
				err = fmt.Errorf("%w (retries exhausted deadline)", ErrTimeout)
			}
		default:
			d.stats.PermanentFaults++
			if _, torn := TornBlocks(err); torn {
				d.stats.TornWrites++
			}
		}

		d.stats.Requests++
		o.TotalLatency += elapsed
		if r.Write {
			o.Writes++
			o.BlocksWritten += int64(r.Count)
		} else {
			o.Reads++
			o.BlocksRead += int64(r.Count)
		}
		if d.obs != nil {
			d.observeComplete(r, now-st, now)
			if err != nil && d.obs.tr != nil {
				d.obs.tr.Instant(d.obs.tid, "storage", "io-error", now)
			}
		}
		r.done.Complete(struct{}{}, err)
		return
	}
}
