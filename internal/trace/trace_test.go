package trace

import (
	"math/rand"
	"testing"
)

func TestUniform(t *testing.T) {
	u := Uniform{}
	if u.Name() != "uniform" {
		t.Errorf("Name = %q", u.Name())
	}
	if got := u.AccessShare(100, 0.3); got != 0.3 {
		t.Errorf("AccessShare = %v", got)
	}
	rng := rand.New(rand.NewSource(1))
	counts := make([]int, 10)
	for i := 0; i < 10000; i++ {
		counts[u.Pick(rng, 10)]++
	}
	for i, c := range counts {
		if c < 700 || c > 1300 {
			t.Errorf("bucket %d = %d, want ~1000", i, c)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	z := &Zipf{S: 1.25, Label: "test"}
	if z.Name() != "test" {
		t.Errorf("Name = %q", z.Name())
	}
	// Top 10% of files must capture far more than 10% of accesses.
	share := z.AccessShare(1000, 0.1)
	if share < 0.5 {
		t.Errorf("top-10%% share = %v, want skewed (> 0.5)", share)
	}
	// Monotone CDF.
	prev := 0.0
	for f := 0.1; f <= 1.0; f += 0.1 {
		s := z.AccessShare(1000, f)
		if s < prev {
			t.Errorf("CDF not monotone at %v: %v < %v", f, s, prev)
		}
		prev = s
	}
	if got := z.AccessShare(1000, 1.0); got < 0.999 {
		t.Errorf("full share = %v", got)
	}
	// Sampling matches the skew: rank 0 should be the most frequent.
	rng := rand.New(rand.NewSource(2))
	counts := make([]int, 100)
	for i := 0; i < 20000; i++ {
		counts[z.Pick(rng, 100)]++
	}
	if counts[0] <= counts[50] {
		t.Errorf("rank 0 (%d) not hotter than rank 50 (%d)", counts[0], counts[50])
	}
}

func TestZipfCacheRebuild(t *testing.T) {
	z := &Zipf{S: 1.0}
	rng := rand.New(rand.NewSource(3))
	// Switching n must not panic or go out of range.
	for _, n := range []int{10, 1000, 10} {
		i := z.Pick(rng, n)
		if i < 0 || i >= n {
			t.Fatalf("Pick out of range: %d of %d", i, n)
		}
	}
	// Both population sizes stay cached after interleaving.
	if len(z.cum) != 2 {
		t.Fatalf("cached tables = %d, want 2 (one per n)", len(z.cum))
	}
	if len(z.cum[10]) != 10 || len(z.cum[1000]) != 1000 {
		t.Fatalf("cached table lengths wrong: %d, %d", len(z.cum[10]), len(z.cum[1000]))
	}
}

func TestZipfAlternatingNConsistent(t *testing.T) {
	// Interleaving population sizes must give the same draws as using a
	// dedicated distribution per size: the per-n cache may not change
	// sampling, only avoid rebuilding tables.
	shared := &Zipf{S: 1.1}
	solo10 := &Zipf{S: 1.1}
	solo500 := &Zipf{S: 1.1}
	rngA := rand.New(rand.NewSource(7))
	rngB := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		n := 10
		if i%2 == 1 {
			n = 500
		}
		got := shared.Pick(rngA, n)
		var want int
		if n == 10 {
			want = solo10.Pick(rngB, 10)
		} else {
			want = solo500.Pick(rngB, 500)
		}
		if got != want {
			t.Fatalf("draw %d (n=%d): shared %d != dedicated %d", i, n, got, want)
		}
	}
	if shared.AccessShare(10, 0.5) != solo10.AccessShare(10, 0.5) {
		t.Error("AccessShare differs between shared and dedicated distribution")
	}
}

func BenchmarkZipfAlternatingN(b *testing.B) {
	// The regression this guards: a single-slot weight cache rebuilds the
	// O(n) cumulative table on every Pick when two population sizes
	// alternate. With the per-n cache each table is built once.
	z := &Zipf{S: 1.05}
	rng := rand.New(rand.NewSource(11))
	sizes := [2]int{1000, 50000}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z.Pick(rng, sizes[i&1])
	}
}

func TestMSDevicesOrdering(t *testing.T) {
	devs := MSDevices()
	if len(devs) != 3 {
		t.Fatalf("devices = %d", len(devs))
	}
	// Listed most-skewed first: top-10% share strictly decreasing.
	prev := 2.0
	for _, d := range devs {
		s := d.AccessShare(1000, 0.1)
		if s >= prev {
			t.Errorf("%s share %v not less than previous %v", d.Name(), s, prev)
		}
		if s <= 0.1 {
			t.Errorf("%s not skewed: %v", d.Name(), s)
		}
		prev = s
	}
}

func TestByName(t *testing.T) {
	if ByName("uniform") == nil || ByName("") == nil {
		t.Error("uniform lookup failed")
	}
	if ByName("ms-dev1") == nil {
		t.Error("ms-dev1 lookup failed")
	}
	if ByName("nope") != nil {
		t.Error("unknown name should return nil")
	}
}
