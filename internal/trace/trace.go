// Package trace provides file-access popularity distributions.
//
// The paper's Figure 1 contrasts Filebench's uniform file choice with the
// highly skewed distributions extracted from three devices of the
// Microsoft Production Build Server trace (Kavalanekar et al., IISWC
// 2008). The trace itself is not redistributable, so this package models
// the three devices with Zipf-like distributions whose parameters are
// chosen to reproduce the qualitative CDF shapes: most accesses
// concentrated on a small fraction of files, with varying skew per
// device. Experiments select either Uniform (Filebench default) or one of
// the MS-like distributions (§6.1.1).
package trace

import (
	"fmt"
	"math"
	"math/rand"
)

// Distribution picks file indices in [0, n) with some popularity profile.
// Implementations are stateless with respect to n (weights are cached per
// n internally) so one Distribution serves any population size.
type Distribution interface {
	// Name identifies the distribution ("uniform", "ms-dev0", ...).
	Name() string
	// Pick draws a file index in [0, n).
	Pick(rng *rand.Rand, n int) int
	// AccessShare returns the fraction of accesses that land on the most
	// popular ceil(fracFiles*n) files — the quantity Figure 1 plots.
	AccessShare(n int, fracFiles float64) float64
}

// Uniform is Filebench's default policy: every file equally likely.
type Uniform struct{}

// Name implements Distribution.
func (Uniform) Name() string { return "uniform" }

// Pick implements Distribution.
func (Uniform) Pick(rng *rand.Rand, n int) int { return rng.Intn(n) }

// AccessShare implements Distribution: the CDF is the diagonal.
func (Uniform) AccessShare(_ int, fracFiles float64) float64 {
	return clamp01(fracFiles)
}

// Zipf is a rank-based power-law distribution: the k-th most popular file
// has weight (k+1)^-S. S in (0, ~1.5] covers light to heavy skew; note
// files are ranked by index (index 0 = most popular), so callers should
// shuffle the identity of hot files if needed.
type Zipf struct {
	// S is the skew exponent.
	S float64
	// Label names the distribution.
	Label string

	// Cumulative normalized weights, cached per population size. A
	// single-slot cache thrashes when one Zipf serves populations of
	// different sizes (e.g. interleaved scales in a sweep): every call
	// rebuilds the O(n) table. Keyed by n, each table is built once.
	cum map[int][]float64
}

// Name implements Distribution.
func (z *Zipf) Name() string {
	if z.Label != "" {
		return z.Label
	}
	return fmt.Sprintf("zipf(%.2f)", z.S)
}

func (z *Zipf) ensure(n int) []float64 {
	if c, ok := z.cum[n]; ok {
		return c
	}
	cum := make([]float64, n)
	total := 0.0
	for k := 0; k < n; k++ {
		total += math.Pow(float64(k+1), -z.S)
		cum[k] = total
	}
	for k := range cum {
		cum[k] /= total
	}
	if z.cum == nil {
		z.cum = make(map[int][]float64)
	}
	z.cum[n] = cum
	return cum
}

// Pick implements Distribution via inverse CDF sampling.
func (z *Zipf) Pick(rng *rand.Rand, n int) int {
	cum := z.ensure(n)
	u := rng.Float64()
	lo, hi := 0, n-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// AccessShare implements Distribution.
func (z *Zipf) AccessShare(n int, fracFiles float64) float64 {
	if n <= 0 {
		return 0
	}
	cum := z.ensure(n)
	k := int(math.Ceil(clamp01(fracFiles) * float64(n)))
	if k <= 0 {
		return 0
	}
	if k > n {
		k = n
	}
	return cum[k-1]
}

// MSDevices returns distributions modelling the three build-server trace
// devices of Figure 1, from most to least skewed. The parameters put
// roughly 75–95% of accesses on the top 10% of files, matching the
// figure's qualitative shape.
func MSDevices() []Distribution {
	return []Distribution{
		&Zipf{S: 1.25, Label: "ms-dev0"},
		&Zipf{S: 1.05, Label: "ms-dev1"},
		&Zipf{S: 0.85, Label: "ms-dev2"},
	}
}

// ByName resolves a distribution name ("uniform", "ms-dev0/1/2"); nil for
// unknown names.
func ByName(name string) Distribution {
	if name == "uniform" || name == "" {
		return Uniform{}
	}
	for _, d := range MSDevices() {
		if d.Name() == name {
			return d
		}
	}
	return nil
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
