package cluster

import (
	"fmt"
	"testing"

	"duet/internal/faults"
	"duet/internal/machine"
	"duet/internal/sim"
)

func testConfig(mode RepairMode, plan faults.ClusterPlan) Config {
	return Config{
		Config: machine.Config{
			Seed:              42,
			DeviceBlocks:      1 << 12,
			CachePages:        512,
			WritebackInterval: 50 * sim.Millisecond,
			DirtyExpire:       20 * sim.Millisecond,
		},
		Nodes:      4,
		Replicas:   3,
		Shards:     4,
		ShardPages: 64,
		Window:     20 * sim.Second,
		Mode:       mode,
		Plan:       plan,
	}
}

func runCluster(t *testing.T, cfg Config, workers int) (*Cluster, Stats, AuditReport) {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if workers > 1 {
		c.Eng.SetWorkers(workers)
	}
	if err := c.Eng.RunFor(cfg.Window); err != nil {
		t.Fatal(err)
	}
	return c, c.Stats(), c.Audit()
}

func singleKill() faults.ClusterPlan {
	return faults.ClusterPlan{
		Seed: 99,
		Kills: []faults.KillEvent{
			{Node: 1, At: 6 * sim.Second, RecoverAt: 9 * sim.Second},
		},
	}
}

func TestClusterFaultFree(t *testing.T) {
	_, s, rep := runCluster(t, testConfig(RepairNaive, faults.ClusterPlan{}), 1)
	if s.WritesAcked == 0 || s.ReadsOK == 0 {
		t.Fatalf("no traffic: %+v", s)
	}
	if s.WriteFailures != 0 || s.ReadFailures != 0 || s.ConsistencyViolations != 0 {
		t.Fatalf("failures on a fault-free run: %+v", s)
	}
	if s.Kills != 0 || s.DegradedUs != 0 {
		t.Fatalf("phantom degradation: kills=%d degraded=%dus", s.Kills, s.DegradedUs)
	}
	if rep.LostBlocks != 0 || rep.DivergentPages != 0 || rep.UnsyncedReplicas != 0 ||
		rep.DeadNodes != 0 || rep.MediumErrors != 0 || len(rep.NodeErrors) != 0 {
		t.Fatalf("audit: %+v", rep)
	}
}

func TestClusterSingleKill(t *testing.T) {
	for _, mode := range []RepairMode{RepairNaive, RepairDuet} {
		t.Run(mode.String(), func(t *testing.T) {
			_, s, rep := runCluster(t, testConfig(mode, singleKill()), 1)
			if s.Kills != 1 || s.Recoveries != 1 {
				t.Fatalf("kills=%d recoveries=%d, want 1/1", s.Kills, s.Recoveries)
			}
			if s.KillsDetected != 1 || s.Joins != 1 {
				t.Fatalf("detected=%d joins=%d, want 1/1", s.KillsDetected, s.Joins)
			}
			// Node 1 hosts three shards; each must be repaired.
			if s.ShardRepairs < 3 {
				t.Fatalf("shard repairs %d, want >= 3", s.ShardRepairs)
			}
			if s.DegradedUs == 0 || s.RepairWindowUs == 0 {
				t.Fatalf("degraded window not measured: %+v", s)
			}
			if s.ConsistencyViolations != 0 {
				t.Fatalf("stale primary reads: %d", s.ConsistencyViolations)
			}
			if rep.LostBlocks != 0 {
				t.Fatalf("lost blocks: %d", rep.LostBlocks)
			}
			if rep.DivergentPages != 0 {
				t.Fatalf("divergent pages after repair: %d", rep.DivergentPages)
			}
			if rep.UnsyncedReplicas != 0 || rep.DeadNodes != 0 || len(rep.NodeErrors) != 0 {
				t.Fatalf("cluster not fully healed: %+v", rep)
			}
			if rep.MediumErrors != 0 {
				t.Fatalf("medium errors: %d", rep.MediumErrors)
			}
		})
	}
}

func TestClusterDoubleKillQuorumDegradation(t *testing.T) {
	plan := faults.ClusterPlan{
		Seed: 7,
		Kills: []faults.KillEvent{
			{Node: 1, At: 6 * sim.Second, RecoverAt: 12 * sim.Second},
			{Node: 2, At: 8 * sim.Second, RecoverAt: 14 * sim.Second},
		},
	}
	_, s, rep := runCluster(t, testConfig(RepairNaive, plan), 1)
	if s.Kills != 2 || s.Recoveries != 2 {
		t.Fatalf("kills=%d recoveries=%d", s.Kills, s.Recoveries)
	}
	// Shards hosted by both node 1 and node 2 drop below quorum while
	// the outages overlap: read-only time must be visible.
	if s.ReadOnlyUs == 0 {
		t.Fatalf("no read-only window despite overlapping kills: %+v", s)
	}
	if rep.LostBlocks != 0 || rep.UnsyncedReplicas != 0 || rep.DeadNodes != 0 {
		t.Fatalf("audit: %+v", rep)
	}
	if rep.DivergentPages != 0 {
		t.Fatalf("divergent pages: %d", rep.DivergentPages)
	}
}

func TestClusterTornLogRecovery(t *testing.T) {
	plan := singleKill()
	plan.TornLogRate = 1.0
	plan.CorruptLogRate = 0.5
	_, s, rep := runCluster(t, testConfig(RepairNaive, plan), 1)
	// A tear that lands exactly on a record boundary replays clean, and
	// a corruption hit earlier in the log masks the tail — so assert
	// that damage of either kind was detected, not the specific kind
	// (the log unit tests pin down each detector).
	if s.TornLogs+s.CorruptLogs == 0 {
		t.Fatalf("log damage rates 1.0/0.5 produced no detected damage: %+v", s)
	}
	// Damaged logs under-report state; the resync must widen, never lose.
	if rep.LostBlocks != 0 || rep.UnsyncedReplicas != 0 || rep.DivergentPages != 0 {
		t.Fatalf("audit after torn-log recovery: %+v", rep)
	}
}

func TestClusterDuetRepairReadsFewerBlocks(t *testing.T) {
	var disk [2]int64
	var hits [2]int64
	for i, mode := range []RepairMode{RepairNaive, RepairDuet} {
		_, s, rep := runCluster(t, testConfig(mode, singleKill()), 1)
		if rep.LostBlocks != 0 || rep.UnsyncedReplicas != 0 {
			t.Fatalf("%v: audit %+v", mode, rep)
		}
		disk[i], hits[i] = s.RepairDiskReads, s.RepairCacheHits
	}
	if disk[1] >= disk[0] {
		t.Fatalf("duet repair read %d disk blocks, naive %d — want strictly fewer",
			disk[1], disk[0])
	}
	if hits[1] == 0 {
		t.Fatalf("duet repair never hit the cache")
	}
}

func TestClusterDeterministicAcrossWorkers(t *testing.T) {
	plan := singleKill()
	plan.Partitions = []faults.Partition{
		{A: 2, B: 3, From: 2 * sim.Second, To: 4 * sim.Second},
	}
	var stats [2]Stats
	var vecs [2]string
	for i, workers := range []int{1, 2} {
		c, s, _ := runCluster(t, testConfig(RepairDuet, plan), workers)
		stats[i] = s
		vec := ""
		for _, n := range c.Nodes {
			for _, r := range n.reps {
				vec += fmt.Sprintf("n%d-s%d:%v;", n.idx, r.shard, r.applied)
			}
		}
		vecs[i] = vec
	}
	if stats[0] != stats[1] {
		t.Fatalf("stats differ across worker counts:\n-dj1: %+v\n-dj2: %+v",
			stats[0], stats[1])
	}
	if vecs[0] != vecs[1] {
		t.Fatalf("replica vectors differ across worker counts")
	}
}

func TestClusterPartitionNoFalseLoss(t *testing.T) {
	plan := faults.ClusterPlan{
		Seed: 5,
		Partitions: []faults.Partition{
			{A: 0, B: 1, From: 2 * sim.Second, To: 5 * sim.Second},
		},
	}
	_, s, rep := runCluster(t, testConfig(RepairNaive, plan), 1)
	// Replication across the cut fails and those writes stay unacked;
	// acknowledged data must still be everywhere.
	if rep.LostBlocks != 0 {
		t.Fatalf("acked write lost under partition: %+v", rep)
	}
	if s.DroppedPartition == 0 {
		t.Fatalf("partition dropped no messages: %+v", s)
	}
	if s.ConsistencyViolations != 0 {
		t.Fatalf("stale primary reads: %d", s.ConsistencyViolations)
	}
}

func TestConfigValidation(t *testing.T) {
	good := testConfig(RepairNaive, faults.ClusterPlan{})
	bad := []func(*Config){
		func(c *Config) { c.Nodes = 1 },
		func(c *Config) { c.Replicas = 1 },
		func(c *Config) { c.Replicas = c.Nodes + 1 },
		func(c *Config) { c.Shards = 0 },
		func(c *Config) { c.Window = 0 },
		func(c *Config) { c.PortLatency = -1 },
	}
	for i, mut := range bad {
		cfg := good
		mut(&cfg)
		if _, err := New(cfg); err == nil {
			t.Fatalf("case %d: invalid config accepted", i)
		}
	}
}
