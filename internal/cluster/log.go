// Package cluster implements the replicated volume tier: N machine
// stacks (one per event domain) hosting sharded volumes with R-way
// replication, a coordinator that tracks membership and drives client
// traffic, machine-kill fault injection with in-engine recovery, and
// two re-replication strategies — a naive disk scan and a Duet-assisted
// repairer that ships cache-resident pages without touching the disk.
//
// Everything is deterministic at any worker count: nodes exchange
// messages only over fixed-latency Ports, every decision stream is
// seed-derived, and no map is ever iterated on a decision path.
package cluster

import "duet/internal/faults"

// The replication log. Each shard replica appends one framed record per
// applied write; the durable watermark advances when the node's
// filesystem commits a checkpoint, so the replayable prefix always
// matches the checkpointed content model. A crash truncates to the
// watermark and may additionally tear bytes off the last committed
// record or flip a byte inside the prefix (per the cluster fault plan);
// replay detects both through the per-record checksum and stops at the
// first bad record — the applied vector degrades to a valid prefix and
// the re-sync widens, but replicas never diverge silently.

// recMagic opens every record; a flipped first byte is detected before
// any field is parsed.
const recMagic = 0xD7

// Record is one replication-log entry: the shard-local page and the
// cluster sequence number that was applied to it.
type Record struct {
	Page int64
	Seq  uint64
}

// Log is the durable replication log of one shard replica.
type Log struct {
	buf     []byte
	durable int // bytes persisted as of the last filesystem commit
}

// fnv32a is the record checksum (FNV-1a over the encoded fields).
func fnv32a(b []byte) uint32 {
	h := uint32(2166136261)
	for _, c := range b {
		h ^= uint32(c)
		h *= 16777619
	}
	return h
}

// putUvarint appends the varint encoding of v (the encoding/binary
// format, inlined so encode stays allocation-free).
func putUvarint(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

// uvarint decodes a varint from b. n is the bytes consumed; 0 means b
// was exhausted mid-value (a torn tail), negative means the value
// overflowed (corruption).
func uvarint(b []byte) (v uint64, n int) {
	var shift uint
	for i, c := range b {
		if shift >= 64 {
			return 0, -1
		}
		if c < 0x80 {
			if i == 9 && c > 1 {
				return 0, -1
			}
			return v | uint64(c)<<shift, i + 1
		}
		v |= uint64(c&0x7f) << shift
		shift += 7
	}
	return 0, 0
}

// Append frames and appends one record: magic, page and seq as
// varints, then a 4-byte checksum over the varint payload.
func (l *Log) Append(r Record) {
	start := len(l.buf)
	l.buf = append(l.buf, recMagic)
	l.buf = putUvarint(l.buf, uint64(r.Page))
	l.buf = putUvarint(l.buf, r.Seq)
	sum := fnv32a(l.buf[start+1:])
	l.buf = append(l.buf, byte(sum), byte(sum>>8), byte(sum>>16), byte(sum>>24))
}

// Commit advances the durable watermark to the current end of the log.
// Called when the node's filesystem checkpoint commits, so the durable
// log and the durable content model move together.
func (l *Log) Commit() { l.durable = len(l.buf) }

// Size and DurableSize report total and committed bytes.
func (l *Log) Size() int        { return len(l.buf) }
func (l *Log) DurableSize() int { return l.durable }

// Crash models the power cut: the uncommitted tail vanishes, and the
// fault stream may tear bytes off the committed tail (a partially
// persisted final sector) or flip one byte inside the prefix. The
// stream is always advanced by the same four draws regardless of
// outcome, so the node's damage stream stays aligned across replicas
// whatever state each log is in.
func (l *Log) Crash(st *faults.Stream, tornRate, corruptRate float64) {
	tornRoll, tornCut := st.Roll(), st.RollN(8)
	corRoll, corAt := st.Roll(), st.RollN(1<<20)
	l.buf = l.buf[:l.durable]
	if tornRate > 0 && tornRoll < tornRate && len(l.buf) > 0 {
		cut := 1 + tornCut
		if cut > len(l.buf) {
			cut = len(l.buf)
		}
		l.buf = l.buf[:len(l.buf)-cut]
	}
	if corruptRate > 0 && corRoll < corruptRate && len(l.buf) > 0 {
		l.buf[corAt%len(l.buf)] ^= 0x40
	}
	l.durable = len(l.buf)
}

// Replay decodes the committed log in append order, stopping at the
// first damaged record: torn reports a record cut short by the crash,
// corrupt a framing or checksum failure. Everything after the first bad
// record is discarded (and truncated from the log), so the rebuilt
// applied vector is always a valid prefix of the replica's history —
// under-reported state is re-synced from the primary, never trusted.
func (l *Log) Replay() (recs []Record, torn, corrupt bool) {
	b := l.buf
	valid := 0
	for len(b) > 0 {
		if b[0] != recMagic {
			corrupt = true
			break
		}
		rest := b[1:]
		page, n1 := uvarint(rest)
		if n1 == 0 {
			torn = true
			break
		}
		if n1 < 0 {
			corrupt = true
			break
		}
		seq, n2 := uvarint(rest[n1:])
		if n2 == 0 {
			torn = true
			break
		}
		if n2 < 0 {
			corrupt = true
			break
		}
		body := rest[n1+n2:]
		if len(body) < 4 {
			torn = true
			break
		}
		want := uint32(body[0]) | uint32(body[1])<<8 | uint32(body[2])<<16 | uint32(body[3])<<24
		if fnv32a(rest[:n1+n2]) != want {
			corrupt = true
			break
		}
		recs = append(recs, Record{Page: int64(page), Seq: seq})
		consumed := 1 + n1 + n2 + 4
		valid += consumed
		b = b[consumed:]
	}
	if torn || corrupt {
		l.buf = l.buf[:valid]
		l.durable = valid
	}
	return recs, torn, corrupt
}
