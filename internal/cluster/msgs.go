package cluster

// The cluster speaks one message type over every port; Kind selects the
// meaning and the other fields are kind-specific. Slices inside a Msg
// (Pages, Vec, Alive, Ranks) are frozen at send: the sender builds a
// fresh slice per message and never writes to it afterwards, and
// receivers treat them as read-only — that is what makes sharing them
// across domains race-free.

// MsgKind enumerates the protocol vocabulary.
type MsgKind uint8

const (
	// Client RPCs (coordinator -> node, replied on the node's ToCoord).
	MsgWrite MsgKind = iota
	MsgWriteReply
	MsgRead
	MsgReadReply

	// Replication (primary -> follower/learner; ack back).
	MsgReplicate
	MsgReplAck

	// Liveness and membership (coordinator <-> node).
	MsgPing
	MsgPong
	MsgMembership

	// Recovery and repair.
	MsgJoin        // node -> coord: remounted; per-shard applied vector
	MsgRepairCmd   // coord -> source node: re-replicate Shard to Dest
	MsgRepairData  // source -> dest: batch of (page, seq); Done on last
	MsgShardSynced // dest -> coord: Shard fully re-replicated here
	MsgVecReq      // coord -> node: re-send MsgJoin for Shard
)

// PageSeq is one page of repair payload: the page and the sequence
// number its content carries at the source.
type PageSeq struct {
	Page int64
	Seq  uint64
}

// Msg is the single wire type.
type Msg struct {
	Kind  MsgKind
	From  int   // sender node index; -1 for the coordinator
	ID    int64 // RPC correlation id (client ops, replication acks)
	Shard int
	Dest  int   // MsgRepairCmd: node being re-replicated
	Page  int64 // MsgWrite/MsgRead/MsgReplicate
	Seq   uint64
	Epoch uint64
	OK    bool

	// NeedAck distinguishes in-service replication (the primary waits
	// for the ack before acknowledging the client) from learner
	// replication to a recovering node (fire and forget).
	NeedAck bool
	// Done marks the final MsgRepairData batch of a shard repair.
	Done bool

	Pages []PageSeq // MsgRepairData
	Vec   []uint64  // MsgJoin / MsgRepairCmd: per-page applied vector
	Alive []bool    // MsgMembership
	// Ranks lists, per shard, the in-service (alive and synced) replicas
	// in placement order; Ranks[s][0] is the primary.
	Ranks [][]int // MsgMembership
}
