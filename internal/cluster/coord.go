package cluster

import (
	"duet/internal/faults"
	"duet/internal/sim"
)

// Client RPC tunables: per-attempt deadline and total attempts before
// an op is declared failed.
const (
	rpcDeadline = 250 * sim.Millisecond
	rpcAttempts = 6
	maxInflight = 4
)

// Shard service states, ordered by severity.
const (
	shardHealthy = iota // full replication
	shardUnder          // below R but at/above write quorum
	shardReadOnly       // below quorum, at least one replica serving
	shardUnavail        // no in-service replica
)

// rpcCall is one outstanding client op.
type rpcCall struct {
	id       int64
	write    bool
	shard    int
	page     int64
	expect   uint64 // reads: highest acked seq for the page at issue
	rankIx   int    // reads: current fallback position
	deadline sim.Time
	attempt  int
	done     bool
}

// repairJob tracks one in-flight shard repair.
type repairJob struct {
	shard, dest, source int
}

// Coordinator is the control plane and the workload: it tracks
// liveness by heartbeat, computes membership (epoch, per-shard
// in-service ranks), drives deterministic client traffic, and
// schedules repairs. It runs on the engine's default domain; every
// node interaction goes over the c2n/n2c ports.
type Coordinator struct {
	c *Cluster

	alive    []bool
	lastPong []sim.Time
	deadAt   []sim.Time
	synced   [][]bool     // [node][shard]
	joinVec  [][][]uint64 // [node][shard] applied vector from the last MsgJoin
	epoch    uint64
	ranks    [][]int

	acked   [][]uint64 // [shard][page] highest client-acknowledged seq
	pending []*rpcCall
	repairs []repairJob

	stream  *faults.Stream
	nextID  int64
	lastOp  sim.Time
	lastHB  sim.Time
	opShard int

	shardState []int
	stateSince []sim.Time

	s Stats
}

func newCoordinator(c *Cluster) *Coordinator {
	co := &Coordinator{
		c:          c,
		alive:      make([]bool, c.Cfg.Nodes),
		lastPong:   make([]sim.Time, c.Cfg.Nodes),
		deadAt:     make([]sim.Time, c.Cfg.Nodes),
		synced:     make([][]bool, c.Cfg.Nodes),
		joinVec:    make([][][]uint64, c.Cfg.Nodes),
		acked:      make([][]uint64, c.Cfg.Shards),
		stream:     faults.NewStream(c.Cfg.Plan.Seed ^ 0xc0ffee),
		shardState: make([]int, c.Cfg.Shards),
		stateSince: make([]sim.Time, c.Cfg.Shards),
	}
	for i := range co.alive {
		co.alive[i] = true
		co.synced[i] = make([]bool, c.Cfg.Shards)
		co.joinVec[i] = make([][]uint64, c.Cfg.Shards)
		for s := 0; s < c.Cfg.Shards; s++ {
			co.synced[i][s] = true
		}
	}
	for s := range co.acked {
		co.acked[s] = make([]uint64, c.Cfg.ShardPages)
	}
	return co
}

// run is the control loop.
func (co *Coordinator) run(p *sim.Proc) {
	co.recompute(p) // epoch 1: everyone in service
	for !p.Engine().Stopping() {
		co.drain(p)
		co.detect(p)
		co.heartbeat(p)
		co.timeouts(p)
		co.issueOps(p)
		p.Sleep(co.c.Cfg.Tick)
	}
}

func (co *Coordinator) drain(p *sim.Proc) {
	for _, n := range co.c.Nodes {
		for {
			m, ok := n.toCoord.TryRecv()
			if !ok {
				break
			}
			co.handle(p, m)
		}
	}
}

// detect declares nodes dead when their heartbeats stop.
func (co *Coordinator) detect(p *sim.Proc) {
	now := p.Now()
	changed := false
	for i := range co.alive {
		if !co.alive[i] || now-co.lastPong[i] <= co.c.Cfg.HBTimeout {
			continue
		}
		co.alive[i] = false
		co.deadAt[i] = now
		co.s.KillsDetected++
		for s := 0; s < co.c.Cfg.Shards; s++ {
			co.synced[i][s] = false
		}
		// Repairs sourced at the dead node restart from the new primary
		// once the destination re-announces its vector; repairs headed
		// to it are moot until it rejoins.
		keep := co.repairs[:0]
		for _, j := range co.repairs {
			switch {
			case j.source == i && co.alive[j.dest]:
				co.c.Nodes[j.dest].fromCoord.Send(p, Msg{
					Kind: MsgVecReq, From: -1, Shard: j.shard,
				})
			case j.dest == i:
			default:
				keep = append(keep, j)
			}
		}
		co.repairs = keep
		changed = true
	}
	if changed {
		co.recompute(p)
	}
}

func (co *Coordinator) heartbeat(p *sim.Proc) {
	now := p.Now()
	if now-co.lastHB < co.c.Cfg.HBEvery && now != 0 {
		return
	}
	co.lastHB = now
	for _, n := range co.c.Nodes {
		n.fromCoord.Send(p, Msg{Kind: MsgPing, From: -1})
	}
}

func (co *Coordinator) handle(p *sim.Proc, m Msg) {
	now := p.Now()
	switch m.Kind {
	case MsgPong:
		co.lastPong[m.From] = now
	case MsgWriteReply:
		co.handleWriteReply(p, m)
	case MsgReadReply:
		co.handleReadReply(p, m)
	case MsgJoin:
		co.handleJoin(p, m)
	case MsgShardSynced:
		co.handleSynced(p, m)
	}
}

func (co *Coordinator) findRPC(id int64) *rpcCall {
	for _, r := range co.pending {
		if r.id == id && !r.done {
			return r
		}
	}
	return nil
}

func (co *Coordinator) handleWriteReply(p *sim.Proc, m Msg) {
	r := co.findRPC(m.ID)
	if r == nil {
		return
	}
	if m.OK {
		if m.Seq > co.acked[r.shard][r.page] {
			co.acked[r.shard][r.page] = m.Seq
		}
		co.s.WritesAcked++
		r.done = true
		return
	}
	co.s.WriteRejects++
	co.retryWrite(p, r)
}

func (co *Coordinator) retryWrite(p *sim.Proc, r *rpcCall) {
	r.attempt++
	if r.attempt >= rpcAttempts {
		co.s.WriteFailures++
		r.done = true
		return
	}
	rk := co.ranks[r.shard]
	if len(rk) < co.c.Cfg.Quorum() {
		// No serviceable primary right now; keep the call pending and
		// let the next deadline re-examine a hopefully healed world.
		r.deadline = p.Now() + rpcDeadline*sim.Time(r.attempt+1)
		return
	}
	co.s.RPCRetries++
	r.deadline = p.Now() + rpcDeadline*sim.Time(r.attempt+1)
	co.c.Nodes[rk[0]].fromCoord.Send(p, Msg{
		Kind: MsgWrite, From: -1, ID: r.id, Shard: r.shard, Page: r.page,
	})
}

func (co *Coordinator) handleReadReply(p *sim.Proc, m Msg) {
	r := co.findRPC(m.ID)
	if r == nil {
		return
	}
	if m.OK {
		// Stale data from the primary is a protocol violation — acks
		// require the full in-service set, so rank 0 must be current.
		// Fallback replicas answer best-effort during degradation.
		if r.rankIx == 0 && m.Seq < r.expect {
			co.s.ConsistencyViolations++
		}
		co.s.ReadsOK++
		r.done = true
		return
	}
	co.advanceRead(p, r)
}

// advanceRead moves a read to the next in-service replica.
func (co *Coordinator) advanceRead(p *sim.Proc, r *rpcCall) {
	r.rankIx++
	r.attempt++
	rk := co.ranks[r.shard]
	if r.rankIx >= len(rk) || r.attempt >= rpcAttempts {
		co.s.ReadFailures++
		r.done = true
		return
	}
	co.s.ReadFallbacks++
	co.s.RPCRetries++
	r.deadline = p.Now() + rpcDeadline
	co.c.Nodes[rk[r.rankIx]].fromCoord.Send(p, Msg{
		Kind: MsgRead, From: -1, ID: r.id, Shard: r.shard, Page: r.page,
	})
}

// handleJoin processes a recovered node's per-shard announcement. A
// MsgJoin always means "I remounted": the replica is taken out of
// service even if the outage was too short for heartbeats to notice —
// its volatile tail rolled back, so it must resync before serving. The
// membership rebroadcast happens BEFORE any repair command is issued —
// on the FIFO port to the repair source, the primary therefore learns
// about the learner before the manifest snapshot, which is what closes
// the catch-up gap.
func (co *Coordinator) handleJoin(p *sim.Proc, m Msg) {
	i := m.From
	co.joinVec[i][m.Shard] = m.Vec
	co.lastPong[i] = p.Now()
	changed := false
	if !co.alive[i] {
		co.alive[i] = true
		co.s.Joins++
		changed = true
	}
	if co.synced[i][m.Shard] {
		co.synced[i][m.Shard] = false
		changed = true
	}
	if changed {
		co.recompute(p)
	}
	co.startRepair(p, m.Shard, i)
}

func (co *Coordinator) startRepair(p *sim.Proc, shard, dest int) {
	for _, j := range co.repairs {
		if j.shard == shard && j.dest == dest {
			return
		}
	}
	rk := co.ranks[shard]
	if len(rk) == 0 {
		// Every replica was lost; the joiner's durable state is the best
		// copy in existence, so adopt it as authoritative. Acked writes
		// beyond its last checkpoint are genuinely gone — the audit
		// charges them as lost blocks, which is the honest outcome of a
		// total-loss event.
		co.synced[dest][shard] = true
		co.recompute(p)
		return
	}
	src := rk[0]
	co.repairs = append(co.repairs, repairJob{shard: shard, dest: dest, source: src})
	co.s.RepairsStarted++
	co.c.Nodes[src].fromCoord.Send(p, Msg{
		Kind: MsgRepairCmd, From: -1, Shard: shard, Dest: dest,
		Vec: co.joinVec[dest][shard],
	})
}

func (co *Coordinator) handleSynced(p *sim.Proc, m Msg) {
	i := m.From
	if co.synced[i][m.Shard] {
		return
	}
	co.synced[i][m.Shard] = true
	co.s.ShardRepairs++
	keep := co.repairs[:0]
	for _, j := range co.repairs {
		if !(j.shard == m.Shard && j.dest == i) {
			keep = append(keep, j)
		}
	}
	co.repairs = keep
	all := true
	for s := 0; s < co.c.Cfg.Shards; s++ {
		if contains(co.c.Cfg.Placement(s), i) && !co.synced[i][s] {
			all = false
			break
		}
	}
	if all {
		if co.deadAt[i] > 0 {
			co.s.RepairWindowUs += int64((p.Now() - co.deadAt[i]) / sim.Microsecond)
			co.deadAt[i] = 0
		}
		co.recompute(p)
	}
}

// timeouts sweeps overdue RPCs: writes re-aim at the current primary,
// reads fall through the rank list.
func (co *Coordinator) timeouts(p *sim.Proc) {
	now := p.Now()
	for _, r := range co.pending {
		if r.done || now < r.deadline {
			continue
		}
		co.s.RPCTimeouts++
		if r.write {
			co.retryWrite(p, r)
		} else {
			co.advanceRead(p, r)
		}
	}
	keep := co.pending[:0]
	for _, r := range co.pending {
		if !r.done {
			keep = append(keep, r)
		}
	}
	co.pending = keep
}

// issueOps drives the deterministic client workload: one op per
// OpEvery, shards round-robin, write-vs-read and page from the seeded
// stream, stopping QuiesceBefore the end of the window so in-flight
// writes settle before the audit.
func (co *Coordinator) issueOps(p *sim.Proc) {
	now := p.Now()
	cfg := &co.c.Cfg
	if now >= cfg.Window-cfg.QuiesceBefore || now-co.lastOp < cfg.OpEvery && now != 0 {
		return
	}
	inflight := 0
	for _, r := range co.pending {
		if !r.done {
			inflight++
		}
	}
	if inflight >= maxInflight {
		return
	}
	co.lastOp = now
	shard := co.opShard
	co.opShard = (co.opShard + 1) % cfg.Shards
	write := co.stream.Roll() < 0.5
	page := int64(co.stream.RollN(int(cfg.ShardPages)))
	rk := co.ranks[shard]
	if write && len(rk) < cfg.Quorum() || !write && len(rk) == 0 {
		co.s.UnavailOps++
		return
	}
	co.nextID++
	r := &rpcCall{
		id: co.nextID, write: write, shard: shard, page: page,
		deadline: now + rpcDeadline,
	}
	kind := MsgRead
	if write {
		co.s.WritesIssued++
		kind = MsgWrite
	} else {
		co.s.ReadsIssued++
		r.expect = co.acked[shard][page]
	}
	co.pending = append(co.pending, r)
	co.c.Nodes[rk[0]].fromCoord.Send(p, Msg{
		Kind: kind, From: -1, ID: r.id, Shard: shard, Page: page,
	})
}

// recompute advances the epoch, rebuilds the per-shard in-service rank
// lists (alive and synced replicas in placement order), folds elapsed
// time into the degraded-state accumulators, and broadcasts the new
// membership to every node with fresh slices.
func (co *Coordinator) recompute(p *sim.Proc) {
	now := p.Now()
	co.epoch++
	co.ranks = make([][]int, co.c.Cfg.Shards)
	for s := 0; s < co.c.Cfg.Shards; s++ {
		var rk []int
		for _, i := range co.c.Cfg.Placement(s) {
			if co.alive[i] && co.synced[i][s] {
				rk = append(rk, i)
			}
		}
		co.ranks[s] = rk
		st := shardHealthy
		switch {
		case len(rk) == 0:
			st = shardUnavail
		case len(rk) < co.c.Cfg.Quorum():
			st = shardReadOnly
		case len(rk) < co.c.Cfg.Replicas:
			st = shardUnder
		}
		if st != co.shardState[s] {
			co.foldState(s, now)
			co.shardState[s] = st
			co.stateSince[s] = now
		}
	}
	aliveC := make([]bool, len(co.alive))
	copy(aliveC, co.alive)
	ranksC := make([][]int, len(co.ranks))
	for s, rk := range co.ranks {
		ranksC[s] = append([]int(nil), rk...)
	}
	for _, n := range co.c.Nodes {
		n.fromCoord.Send(p, Msg{
			Kind: MsgMembership, From: -1, Epoch: co.epoch,
			Alive: aliveC, Ranks: ranksC,
		})
	}
}

// foldState accumulates the time shard s spent in its current state.
func (co *Coordinator) foldState(s int, now sim.Time) {
	us := int64((now - co.stateSince[s]) / sim.Microsecond)
	switch co.shardState[s] {
	case shardUnder:
		co.s.DegradedUs += us
	case shardReadOnly:
		co.s.DegradedUs += us
		co.s.ReadOnlyUs += us
	case shardUnavail:
		co.s.DegradedUs += us
		co.s.UnavailUs += us
	}
}

// snapshot returns the coordinator's stats with degraded time folded
// up to now. It does not mutate the accumulators, so it is idempotent.
func (co *Coordinator) snapshot(now sim.Time) Stats {
	s := co.s
	s.Epoch = co.epoch
	for sh := 0; sh < co.c.Cfg.Shards; sh++ {
		us := int64((now - co.stateSince[sh]) / sim.Microsecond)
		switch co.shardState[sh] {
		case shardUnder:
			s.DegradedUs += us
		case shardReadOnly:
			s.DegradedUs += us
			s.ReadOnlyUs += us
		case shardUnavail:
			s.DegradedUs += us
			s.UnavailUs += us
		}
	}
	return s
}
