package cluster

import (
	"testing"

	"duet/internal/faults"
)

func TestLogRoundTrip(t *testing.T) {
	var l Log
	recs := []Record{
		{Page: 0, Seq: 1},
		{Page: 127, Seq: 128}, // varint boundary
		{Page: 1 << 40, Seq: 1<<63 + 5},
		{Page: 3, Seq: 2},
	}
	for _, r := range recs {
		l.Append(r)
	}
	l.Commit()
	got, torn, corrupt := l.Replay()
	if torn || corrupt {
		t.Fatalf("clean log reported torn=%v corrupt=%v", torn, corrupt)
	}
	if len(got) != len(recs) {
		t.Fatalf("replayed %d records, want %d", len(got), len(recs))
	}
	for i, r := range recs {
		if got[i] != r {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], r)
		}
	}
}

func TestLogCrashDropsUncommittedTail(t *testing.T) {
	var l Log
	l.Append(Record{Page: 1, Seq: 1})
	l.Commit()
	l.Append(Record{Page: 2, Seq: 2}) // never committed
	st := faults.NewStream(7)
	l.Crash(st, 0, 0)
	got, torn, corrupt := l.Replay()
	if torn || corrupt {
		t.Fatalf("torn=%v corrupt=%v after clean crash", torn, corrupt)
	}
	if len(got) != 1 || got[0] != (Record{Page: 1, Seq: 1}) {
		t.Fatalf("got %+v, want only the committed record", got)
	}
}

func TestLogTornTailDetected(t *testing.T) {
	var l Log
	for i := 0; i < 10; i++ {
		l.Append(Record{Page: int64(i), Seq: uint64(i + 1)})
	}
	l.Commit()
	st := faults.NewStream(3)
	l.Crash(st, 1.0, 0) // always tear
	got, torn, _ := l.Replay()
	if !torn {
		t.Fatalf("torn tail not detected")
	}
	if len(got) >= 10 {
		t.Fatalf("replayed %d records from a torn log", len(got))
	}
	// Every surviving record must be an exact prefix of history.
	for i, r := range got {
		if r != (Record{Page: int64(i), Seq: uint64(i + 1)}) {
			t.Fatalf("record %d diverged after tear: %+v", i, r)
		}
	}
	// Replay truncated the damage: a second replay is clean and equal.
	again, torn2, corrupt2 := l.Replay()
	if torn2 || corrupt2 || len(again) != len(got) {
		t.Fatalf("second replay not clean: torn=%v corrupt=%v n=%d",
			torn2, corrupt2, len(again))
	}
}

func TestLogCorruptionDetected(t *testing.T) {
	// A flipped byte anywhere in the prefix must be caught by the magic
	// or the checksum — try every possible corruption site.
	for flip := 0; ; flip++ {
		var l Log
		for i := 0; i < 4; i++ {
			l.Append(Record{Page: int64(i * 1000), Seq: uint64(i + 99)})
		}
		l.Commit()
		if flip >= len(l.buf) {
			break
		}
		l.buf[flip] ^= 0x40
		got, torn, corrupt := l.Replay()
		if !torn && !corrupt {
			t.Fatalf("flip at %d went undetected (%d records)", flip, len(got))
		}
		for i, r := range got {
			if r != (Record{Page: int64(i * 1000), Seq: uint64(i + 99)}) {
				t.Fatalf("flip at %d: surviving record %d has wrong content %+v",
					flip, i, r)
			}
		}
	}
}

func TestLogCrashStreamAlignment(t *testing.T) {
	// Crash must draw the same number of stream values whatever the
	// damage outcome, so sibling replicas stay aligned.
	a, b := faults.NewStream(11), faults.NewStream(11)
	var empty, full Log
	full.Append(Record{Page: 1, Seq: 1})
	full.Commit()
	empty.Crash(a, 1.0, 1.0)
	full.Crash(b, 1.0, 1.0)
	if a.Roll() != b.Roll() {
		t.Fatalf("streams diverged after crashes with different outcomes")
	}
}
