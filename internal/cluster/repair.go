package cluster

import (
	"duet/internal/core"
	"duet/internal/pagecache"
	"duet/internal/sim"
	"duet/internal/storage"
)

// Re-replication. The coordinator picks the shard's primary as the
// repair source and hands it the destination's applied vector; the
// source ships every page whose sequence differs (authoritative
// overwrite, both directions), batched over the FIFO port to the
// destination. Writes that land during the repair reach the
// destination through the learner replication stream, so the manifest
// snapshot plus the stream leave no gap.
//
// Two strategies differ only in how the source touches its own data:
//
//   - naive: walk every allocated page of the shard file and read it
//     from the medium (VerifyBlock, owner "repair") — the full-scan
//     cost a repairer pays when it has no idea what is resident.
//   - duet: register a Duet block-task session; the registration scan
//     and subsequent events surface cache-resident pages, which are
//     shipped straight from memory. Only manifest pages the cache
//     never surfaces are read from the medium.
//
// Both ship the same pages; the experiment compares their disk reads.

// repairShard runs on the source node's domain, spawned by the server
// loop when MsgRepairCmd arrives.
func (n *Node) repairShard(rp *sim.Proc, shard, dest int, destVec []uint64) {
	r := n.rep(shard)
	if r == nil || dest < 0 || dest >= len(n.peers) {
		return
	}
	// Manifest: pages whose content differs from the destination's
	// announced state, snapshotted now. Later writes are learner-streamed.
	pages := int64(len(r.applied))
	pending := make([]bool, pages)
	left := 0
	for pg := int64(0); pg < pages; pg++ {
		dv := uint64(0)
		if pg < int64(len(destVec)) {
			dv = destVec[pg]
		}
		if r.applied[pg] != dv {
			pending[pg] = true
			left++
		}
	}

	aborted := func() bool {
		return rp.Engine().Stopping() || !n.alive ||
			n.aliveV == nil || dest >= len(n.aliveV) || !n.aliveV[dest]
	}

	var batch []PageSeq
	flush := func(done bool) {
		if len(batch) == 0 && !done {
			return
		}
		n.peers[dest].Send(rp, Msg{
			Kind: MsgRepairData, From: n.idx, Shard: shard,
			Pages: batch, Done: done,
		})
		n.stats.PagesShipped += int64(len(batch))
		batch = nil
	}
	ship := func(pg int64) {
		if !pending[pg] {
			return
		}
		pending[pg] = false
		left--
		batch = append(batch, PageSeq{Page: pg, Seq: r.applied[pg]})
		if len(batch) >= repairBatch {
			flush(false)
		}
	}

	if n.c.Cfg.Mode == RepairDuet {
		n.repairDuet(rp, r, pending, &left, ship, aborted)
	} else {
		n.repairNaive(rp, r, ship, aborted)
	}
	if aborted() {
		return
	}
	flush(true)
}

// repairNaive reads every allocated page of the shard file from the
// medium — membership told it which pages to ship, but it trusts
// nothing it did not just read back.
func (n *Node) repairNaive(rp *sim.Proc, r *replica, ship func(int64), aborted func() bool) {
	for pg := int64(0); pg < int64(len(r.applied)); pg++ {
		if aborted() {
			return
		}
		if blk, ok := n.st.FS.Fibmap(r.ino, pg); ok {
			if _, err := n.st.FS.VerifyBlock(rp, blk, storage.ClassNormal, "repair"); err != nil {
				continue
			}
			n.stats.RepairDiskReads++
		}
		ship(pg)
	}
}

// repairDuet harvests the cache. The block-task session's registration
// scan delivers every already-resident page of the filesystem; pages on
// the manifest that surface this way (and are still resident) ship
// without touching the disk. A cursor sweep mops up the remainder with
// real reads, harvesting between batches so pages cached mid-repair
// still get the cheap path.
func (n *Node) repairDuet(rp *sim.Proc, r *replica, pending []bool, left *int,
	ship func(int64), aborted func() bool) {
	sess, err := n.st.Duet.RegisterBlock(n.st.Adapter, core.EvtAdded|core.EvtDirtied)
	if err != nil {
		n.repairNaive(rp, r, ship, aborted)
		return
	}
	defer sess.Close()

	// Device block -> manifest page, built once from the extent map.
	blockOf := make([]int64, len(pending))
	toPage := make(map[uint64]int64, *left)
	for pg := range pending {
		blockOf[pg] = -1
		if !pending[pg] {
			continue
		}
		if blk, ok := n.st.FS.Fibmap(r.ino, int64(pg)); ok {
			blockOf[pg] = blk
			toPage[uint64(blk)] = int64(pg)
		}
	}

	buf := make([]core.Item, 64)
	harvest := func() {
		for {
			got := sess.FetchInto(buf)
			if got == 0 {
				return
			}
			for _, it := range buf[:got] {
				pg, ok := toPage[it.ID]
				if !ok || !pending[pg] {
					continue
				}
				key := pagecache.PageKey{
					FS: n.st.FS.ID(), Ino: uint64(r.ino), Index: uint64(pg),
				}
				if _, resident := n.st.Cache.Peek(key); !resident {
					continue
				}
				// Resident: ship from memory, no device read.
				n.stats.RepairCacheHits++
				sess.SetDone(it.ID)
				ship(pg)
			}
		}
	}
	// The lossy-queue fallback: a degraded range means events were
	// dropped; consuming it keeps the session sane. The cursor sweep
	// covers anything the drop hid.
	sess.TakeDegradedRange()

	harvest()
	for pg := int64(0); pg < int64(len(pending)) && *left > 0; pg++ {
		if aborted() {
			return
		}
		if !pending[pg] {
			continue
		}
		if blk := blockOf[pg]; blk >= 0 {
			if _, err := n.st.FS.VerifyBlock(rp, blk, storage.ClassNormal, "repair"); err == nil {
				n.stats.RepairDiskReads++
			}
			sess.SetDone(uint64(blk))
		}
		ship(pg)
		harvest()
	}
}
