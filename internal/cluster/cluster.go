package cluster

import (
	"fmt"

	"duet/internal/faults"
	"duet/internal/machine"
	"duet/internal/obs"
	"duet/internal/sim"
)

// RepairMode selects the re-replication strategy.
type RepairMode uint8

const (
	// RepairNaive scans the surviving replica's disk: every allocated
	// page of the shard file is read (and verified) from the medium,
	// whether or not it needs shipping.
	RepairNaive RepairMode = iota
	// RepairDuet registers a Duet block-task session on the source and
	// ships cache-resident pages straight from memory; only pages the
	// event stream never surfaces are read from disk.
	RepairDuet
)

// String names the mode for tables and traces.
func (m RepairMode) String() string {
	if m == RepairDuet {
		return "duet"
	}
	return "naive"
}

// Config sizes a cluster. The embedded machine.Config describes each
// node's stack (DeviceBlocks, CachePages, writeback tunables are per
// node).
type Config struct {
	machine.Config

	// Nodes is the number of machines (>= 2); Replicas the replication
	// factor R (2 <= R <= Nodes); Shards the number of volume shards;
	// ShardPages the size of each shard replica file in pages.
	Nodes      int
	Replicas   int
	Shards     int
	ShardPages int64

	// PortLatency is the cross-machine message latency (default 1ms);
	// it is also the engine's lookahead bound. Tick is the server-loop
	// granularity (default = PortLatency).
	PortLatency sim.Time
	Tick        sim.Time
	WindowMode  sim.WindowMode

	// CommitEvery is the per-node checkpoint cadence: the replication
	// log's durable watermark advances with each commit. Default 250ms.
	CommitEvery sim.Time

	// Window is the run length; the client stops issuing ops
	// QuiesceBefore (default 3s) ahead of it so in-flight writes settle
	// before the audit.
	Window        sim.Time
	QuiesceBefore sim.Time
	// OpEvery is the client op cadence (default 5ms, alternating
	// deterministic reads and writes).
	OpEvery sim.Time

	// HBEvery/HBTimeout tune failure detection (defaults 50ms/160ms).
	HBEvery   sim.Time
	HBTimeout sim.Time

	// Mode selects the repair strategy for this run.
	Mode RepairMode

	// Plan is the cluster fault schedule (kills, partitions, log
	// damage, per-node device faults).
	Plan faults.ClusterPlan
}

func (c *Config) validate() error {
	if err := c.Config.Validate(); err != nil {
		return err
	}
	if c.Nodes < 2 {
		return fmt.Errorf("cluster: Nodes must be >= 2, got %d", c.Nodes)
	}
	if c.Replicas < 2 || c.Replicas > c.Nodes {
		return fmt.Errorf("cluster: Replicas must be in [2, Nodes], got %d", c.Replicas)
	}
	if c.Shards < 1 || c.ShardPages < 1 {
		return fmt.Errorf("cluster: Shards and ShardPages must be positive")
	}
	if c.Window <= 0 {
		return fmt.Errorf("cluster: Window must be positive")
	}
	if c.PortLatency == 0 {
		c.PortLatency = sim.Millisecond
	}
	if c.PortLatency <= 0 {
		return fmt.Errorf("cluster: PortLatency must be positive")
	}
	if c.Tick <= 0 {
		c.Tick = c.PortLatency
	}
	if c.CommitEvery <= 0 {
		c.CommitEvery = 250 * sim.Millisecond
	}
	if c.QuiesceBefore <= 0 {
		c.QuiesceBefore = 3 * sim.Second
	}
	if c.OpEvery <= 0 {
		c.OpEvery = 5 * sim.Millisecond
	}
	if c.HBEvery <= 0 {
		c.HBEvery = 50 * sim.Millisecond
	}
	if c.HBTimeout <= 0 {
		c.HBTimeout = 160 * sim.Millisecond
	}
	return nil
}

// Placement returns the shard's replica set: Replicas consecutive
// nodes starting at shard mod Nodes. Index 0 is the preferred primary.
func (c *Config) Placement(shard int) []int {
	out := make([]int, c.Replicas)
	for k := range out {
		out[k] = (shard + k) % c.Nodes
	}
	return out
}

// Quorum is the write quorum: a majority of the replica set.
func (c *Config) Quorum() int { return c.Replicas/2 + 1 }

// Cluster is the assembled replicated tier.
type Cluster struct {
	Cfg   Config
	Eng   *sim.Engine
	Nodes []*Node
	Coord *Coordinator
}

// New assembles the cluster: one stack per node on its own domain, the
// full port mesh (every ordered node pair plus coordinator links — all
// ports must exist before Run), populated shard replica files with
// durability armed, and the server/coordinator processes ready to run.
// Call Eng.RunFor(cfg.Window), then Stats and Audit.
func New(cfg Config) (*Cluster, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	e := sim.New(cfg.Seed)
	e.SetWindowMode(cfg.WindowMode)
	c := &Cluster{Cfg: cfg, Eng: e}

	for i := 0; i < cfg.Nodes; i++ {
		dom := e.NewDomain(fmt.Sprintf("node%d", i))
		st, err := machine.NewStack(dom, cfg.Config, fmt.Sprintf("nd%c", 'a'+i%26))
		if err != nil {
			return nil, err
		}
		n := &Node{
			c: c, idx: i, dom: dom, st: st,
			toCoord: sim.NewPort[Msg](dom, e, fmt.Sprintf("n2c%d", i), cfg.PortLatency),
			peers:   make([]*sim.Port[Msg], cfg.Nodes),
			stream: faults.NewStream(cfg.Plan.Seed ^
				(uint64(i+1) * 0x9e3779b97f4a7c15)),
			kills: cfg.Plan.KillsFor(i),
			alive: true,
		}
		n.fromCoord = sim.NewPort[Msg](e, dom, fmt.Sprintf("c2n%d", i), cfg.PortLatency)
		c.Nodes = append(c.Nodes, n)
	}
	// The node-to-node mesh: peers[i][j] carries i -> j traffic.
	for i, ni := range c.Nodes {
		for j, nj := range c.Nodes {
			if i == j {
				continue
			}
			ni.peers[j] = sim.NewPort[Msg](ni.dom, nj.dom,
				fmt.Sprintf("nn%d-%d", i, j), cfg.PortLatency)
		}
	}
	// Inbound drain order is fixed — coordinator first, then peers by
	// ascending index — so message processing order is deterministic.
	for i, n := range c.Nodes {
		n.inbound = append(n.inbound, n.fromCoord)
		for j, nj := range c.Nodes {
			if j != i {
				n.inbound = append(n.inbound, nj.peers[i])
			}
		}
	}

	// Shard replica files: node i hosts every shard whose placement
	// includes it. Content starts identical everywhere (applied vectors
	// all zero); the files are real cowfs files so page-cache residency
	// and disk traffic are real.
	for _, n := range c.Nodes {
		if _, err := n.st.FS.MkdirAll("/vol"); err != nil {
			return nil, err
		}
		rng := n.dom.DeriveRand("cluster-populate")
		for s := 0; s < cfg.Shards; s++ {
			if !contains(cfg.Placement(s), n.idx) {
				continue
			}
			ino, err := n.st.FS.PopulateFile(fmt.Sprintf("/vol/s%d", s), cfg.ShardPages, 4, rng)
			if err != nil {
				return nil, fmt.Errorf("cluster: node %d shard %d: %w", n.idx, s, err)
			}
			n.reps = append(n.reps, &replica{
				shard:   s,
				ino:     ino.Ino,
				applied: make([]uint64, cfg.ShardPages),
				log:     &Log{},
				next:    1,
			})
		}
		n.st.FS.EnableDurability()
		if plan := cfg.Plan.NodeDiskPlan(n.idx); !plan.Zero() {
			faults.NewInjector(plan).Attach(n.st.Disk)
		}
		n.dom.Go(fmt.Sprintf("server%d", n.idx), n.run)
	}

	c.Coord = newCoordinator(c)
	// The coordinator's domain carries the run-level tracer.
	if o := cfg.Obs; o != nil && o.Trace != nil {
		e.SetTracer(o.Trace)
	}
	e.Go("coordinator", c.Coord.run)
	return c, nil
}

func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// Stats is the cluster-wide counter roll-up: the coordinator's view
// plus every node's, summed in node order after the run.
type Stats struct {
	// Client traffic (coordinator side).
	WritesIssued, WritesAcked     int64
	WriteRejects, WriteFailures   int64
	ReadsIssued, ReadsOK          int64
	ReadFallbacks, ReadFailures   int64
	UnavailOps                    int64
	RPCRetries, RPCTimeouts       int64
	ConsistencyViolations         int64
	// Failure handling.
	KillsDetected, Joins          int64
	RepairsStarted, ShardRepairs  int64
	DegradedUs                    int64 // shard-time spent below full replication
	ReadOnlyUs, UnavailUs         int64 // the two severe slices of DegradedUs
	RepairWindowUs                int64 // sum over kills of detect -> fully re-replicated
	Epoch                         uint64
	// Node side (summed).
	Kills, Recoveries             int64
	RecordsAppended, RecordsReplayed int64
	TornLogs, CorruptLogs         int64
	ApplyWrites, ResyncApplied    int64
	PagesShipped                  int64
	RepairDiskReads, RepairCacheHits int64
	ReplRetries                   int64
	CommitErrors                  int64
	DroppedDead, DroppedPartition int64
}

// Stats aggregates the run's counters. Call after RunFor returns;
// degraded-time accounting is finalized against the engine clock here.
func (c *Cluster) Stats() Stats {
	s := c.Coord.snapshot(c.Eng.Now())
	for _, n := range c.Nodes {
		ns := n.stats
		s.Kills += ns.Kills
		s.Recoveries += ns.Recoveries
		s.RecordsAppended += ns.RecordsAppended
		s.RecordsReplayed += ns.RecordsReplayed
		s.TornLogs += ns.TornLogs
		s.CorruptLogs += ns.CorruptLogs
		s.ApplyWrites += ns.ApplyWrites
		s.ResyncApplied += ns.ResyncApplied
		s.PagesShipped += ns.PagesShipped
		s.RepairDiskReads += ns.RepairDiskReads
		s.RepairCacheHits += ns.RepairCacheHits
		s.ReplRetries += ns.ReplRetries
		s.CommitErrors += ns.CommitErrors
		s.DroppedDead += ns.DroppedDead
		s.DroppedPartition += ns.DroppedPartition
	}
	return s
}

// AuditReport is the post-run safety check.
type AuditReport struct {
	// LostBlocks counts (shard, page, replica) entries whose applied
	// sequence is below the highest client-acknowledged write — the
	// durability violation the tier exists to prevent. Must be zero.
	LostBlocks int64
	// DivergentPages counts pages whose applied sequence differs across
	// replicas of a shard. Unacknowledged (failed) writes may leave
	// some behind under partitions; without partitions it must be zero.
	DivergentPages int64
	// UnsyncedReplicas counts (node, shard) replicas not back in
	// service at the end of the run — full re-replication means zero.
	UnsyncedReplicas int64
	DeadNodes        int64
	// MediumErrors counts shard-file blocks that fail the filesystem's
	// checksum audit (no device read; pure medium state).
	MediumErrors int64
	// NodeErrors carries any fatal per-node failure (a failed remount).
	NodeErrors []error
}

// Audit verifies the safety properties after the run: every replica of
// every shard carries at least the highest acknowledged write per page,
// replicas agree (modulo unacked writes under partitions), every node
// recovered and re-replicated, and the media pass their checksum walk.
func (c *Cluster) Audit() AuditReport {
	var rep AuditReport
	for _, n := range c.Nodes {
		if n.fatal != nil {
			rep.NodeErrors = append(rep.NodeErrors,
				fmt.Errorf("node %d: %w", n.idx, n.fatal))
		}
		if !n.alive {
			rep.DeadNodes++
		}
	}
	for s := 0; s < c.Cfg.Shards; s++ {
		acked := c.Coord.acked[s]
		var vecs [][]uint64
		for _, ni := range c.Cfg.Placement(s) {
			n := c.Nodes[ni]
			if !c.Coord.synced[ni][s] {
				rep.UnsyncedReplicas++
			}
			r := n.rep(s)
			if r == nil {
				continue
			}
			vecs = append(vecs, r.applied)
			for pg := range r.applied {
				if r.applied[pg] < acked[pg] {
					rep.LostBlocks++
				}
			}
			for pg := int64(0); pg < c.Cfg.ShardPages; pg++ {
				blk, ok := n.st.FS.Fibmap(r.ino, pg)
				if !ok || n.st.FS.CheckBlock(blk) != nil {
					rep.MediumErrors++
				}
			}
		}
		for pg := 0; pg < int(c.Cfg.ShardPages); pg++ {
			for i := 1; i < len(vecs); i++ {
				if vecs[i][pg] != vecs[0][pg] {
					rep.DivergentPages++
					break
				}
			}
		}
	}
	return rep
}

// CollectMetrics publishes the engine, every node stack, and the
// cluster-level counters into r.
func (c *Cluster) CollectMetrics(r *obs.Registry) {
	if r == nil {
		return
	}
	machine.PublishEngineMetrics(r, c.Eng)
	for _, n := range c.Nodes {
		n.st.CollectMetrics(r)
	}
	s := c.Stats()
	r.SetCounter("cluster.writes_acked", s.WritesAcked)
	r.SetCounter("cluster.write_rejects", s.WriteRejects)
	r.SetCounter("cluster.reads_ok", s.ReadsOK)
	r.SetCounter("cluster.read_fallbacks", s.ReadFallbacks)
	r.SetCounter("cluster.rpc_retries", s.RPCRetries)
	r.SetCounter("cluster.rpc_timeouts", s.RPCTimeouts)
	r.SetCounter("cluster.kills", s.Kills)
	r.SetCounter("cluster.recoveries", s.Recoveries)
	r.SetCounter("cluster.repairs", s.ShardRepairs)
	r.SetCounter("cluster.pages_shipped", s.PagesShipped)
	r.SetCounter("cluster.repair_disk_reads", s.RepairDiskReads)
	r.SetCounter("cluster.repair_cache_hits", s.RepairCacheHits)
	r.SetCounter("cluster.resync_pages", s.ResyncApplied)
	r.SetCounter("cluster.log_records", s.RecordsAppended)
	r.SetCounter("cluster.log_torn", s.TornLogs)
	r.SetCounter("cluster.log_corrupt", s.CorruptLogs)
	r.SetCounter("cluster.degraded_us", s.DegradedUs)
	r.SetCounter("cluster.consistency_violations", s.ConsistencyViolations)
}

// TraceProcesses returns the tracers in deterministic order —
// coordinator first, then nodes by index — for WriteTraceMulti.
func (c *Cluster) TraceProcesses(prefix string) []obs.TraceProcess {
	var procs []obs.TraceProcess
	if o := c.Cfg.Obs; o != nil && o.Trace != nil {
		procs = append(procs, obs.TraceProcess{Name: prefix + " coord", T: o.Trace})
	}
	for _, n := range c.Nodes {
		if n.st.Obs != nil && n.st.Obs.Trace != nil {
			procs = append(procs, obs.TraceProcess{
				Name: fmt.Sprintf("%s node%d", prefix, n.idx), T: n.st.Obs.Trace,
			})
		}
	}
	return procs
}
