package cluster

import (
	"fmt"

	"duet/internal/cowfs"
	"duet/internal/faults"
	"duet/internal/machine"
	"duet/internal/sim"
)

// Replication tunables. The primary gives the full in-service follower
// set replDeadline to ack before resending, and gives up (failing the
// client write) after replAttempts rounds.
const (
	replDeadline = 500 * sim.Millisecond
	replAttempts = 4
	// repairBatch pages ride in one MsgRepairData.
	repairBatch = 16
)

// replica is one shard replica hosted by a node: a real cowfs file plus
// the applied-sequence vector and the replication log that track which
// write each page carries.
type replica struct {
	shard   int
	ino     cowfs.Ino
	applied []uint64
	log     *Log
	next    uint64 // next sequence this node would allocate as primary
}

// pendWrite is a client write the primary has applied locally and is
// waiting to see acknowledged by every in-service follower.
type pendWrite struct {
	rid      int64 // replication correlation id (node-local)
	cid      int64 // client RPC id, echoed in the eventual reply
	shard    int
	page     int64
	seq      uint64
	need     []int // followers still owing an ack
	deadline sim.Time
	attempt  int
	done     bool
}

// nodeStats is one node's counter block. Written only by procs on the
// node's domain; read by Stats after the run.
type nodeStats struct {
	Kills, Recoveries                int64
	RecordsAppended, RecordsReplayed int64
	TornLogs, CorruptLogs            int64
	ApplyWrites, ResyncApplied       int64
	PagesShipped                     int64
	RepairDiskReads, RepairCacheHits int64
	ReplRetries                      int64
	CommitErrors                     int64
	DroppedDead, DroppedPartition    int64
}

// Node is one cluster machine: a full storage stack on its own domain,
// its hosted shard replicas, and the server loop that speaks the
// cluster protocol. All fields past the ports are touched only from the
// node's domain.
type Node struct {
	c   *Cluster
	idx int
	dom *sim.Domain
	st  *machine.Stack

	fromCoord *sim.Port[Msg]
	toCoord   *sim.Port[Msg]
	peers     []*sim.Port[Msg] // peers[j]: this node -> node j
	inbound   []*sim.Port[Msg] // fixed drain order: coord, then peers ascending

	reps   []*replica
	stream *faults.Stream
	kills  []faults.KillEvent
	killIx int

	alive bool
	fatal error // a failed remount; the node stays down and Audit reports it

	// Latest membership view.
	epoch  uint64
	aliveV []bool
	ranks  [][]int

	pend       []*pendWrite
	rid        int64
	repairSeq  int
	lastCommit sim.Time

	stats nodeStats
}

// Stack exposes the node's storage stack (read-only use after a run:
// robustness counters, metrics).
func (n *Node) Stack() *machine.Stack { return n.st }

// rep returns the replica of shard s hosted here, nil if none.
func (n *Node) rep(s int) *replica {
	for _, r := range n.reps {
		if r.shard == s {
			return r
		}
	}
	return nil
}

// run is the server loop: act on the kill schedule, drain inbound
// ports in fixed order, retry outstanding replication, checkpoint.
func (n *Node) run(p *sim.Proc) {
	for !p.Engine().Stopping() {
		n.checkKills(p)
		n.drain(p)
		if n.alive {
			n.checkPending(p)
			n.maybeCommit(p)
		}
		p.Sleep(n.c.Cfg.Tick)
	}
}

// checkKills powers the node down and back up per the fault plan.
func (n *Node) checkKills(p *sim.Proc) {
	if n.killIx >= len(n.kills) {
		return
	}
	k := n.kills[n.killIx]
	if n.alive && p.Now() >= k.At {
		n.die()
	}
	if !n.alive && n.fatal == nil && p.Now() >= k.RecoverAt {
		n.recover(p)
		n.killIx++
	}
}

// die is the power cut: all volatile stack state vanishes, the
// replication logs truncate to their durable watermark (possibly torn
// or corrupted per the plan), and every in-flight replication is
// forgotten. The durable medium is untouched.
func (n *Node) die() {
	n.alive = false
	n.stats.Kills++
	n.st.Crash()
	plan := &n.c.Cfg.Plan
	for _, r := range n.reps {
		r.log.Crash(n.stream, plan.TornLogRate, plan.CorruptLogRate)
	}
	n.pend = nil
}

// recover remounts the stack from its durable checkpoint, rebuilds
// each replica's applied vector by replaying its log, and announces
// the comeback with one MsgJoin per shard. A remount failure is fatal
// for the node (reported by Audit), never silent.
func (n *Node) recover(p *sim.Proc) {
	if err := n.st.Remount(); err != nil {
		n.fatal = err
		return
	}
	n.stats.Recoveries++
	for _, r := range n.reps {
		ino, err := n.st.FS.Lookup(fmt.Sprintf("/vol/s%d", r.shard))
		if err != nil {
			n.fatal = fmt.Errorf("shard %d lost across remount: %w", r.shard, err)
			return
		}
		r.ino = ino.Ino
		for i := range r.applied {
			r.applied[i] = 0
		}
		recs, torn, corrupt := r.log.Replay()
		if torn {
			n.stats.TornLogs++
		}
		if corrupt {
			n.stats.CorruptLogs++
		}
		r.next = 1
		for _, rec := range recs {
			n.stats.RecordsReplayed++
			if rec.Page >= 0 && rec.Page < int64(len(r.applied)) {
				r.applied[rec.Page] = rec.Seq
			}
			if rec.Seq+1 > r.next {
				r.next = rec.Seq + 1
			}
		}
		vec := make([]uint64, len(r.applied))
		copy(vec, r.applied)
		n.toCoord.Send(p, Msg{
			Kind: MsgJoin, From: n.idx, Shard: r.shard, Vec: vec,
		})
	}
	n.lastCommit = p.Now()
	n.alive = true
}

// drain empties every inbound port in the fixed order, handling each
// message as it arrives.
func (n *Node) drain(p *sim.Proc) {
	for _, pt := range n.inbound {
		for {
			m, ok := pt.TryRecv()
			if !ok {
				break
			}
			n.handle(p, m)
		}
	}
}

func (n *Node) handle(p *sim.Proc, m Msg) {
	if !n.alive {
		n.stats.DroppedDead++
		return
	}
	// Partitions cut node-to-node links only; the coordinator's control
	// plane (From == -1) stays reachable, which is what makes a
	// partition a distinct failure from a kill.
	if m.From >= 0 && n.c.Cfg.Plan.Partitioned(m.From, n.idx, p.Now()) {
		n.stats.DroppedPartition++
		return
	}
	switch m.Kind {
	case MsgPing:
		n.toCoord.Send(p, Msg{Kind: MsgPong, From: n.idx})
	case MsgMembership:
		n.epoch, n.aliveV, n.ranks = m.Epoch, m.Alive, m.Ranks
		n.pruneDeadAcks(p)
	case MsgWrite:
		n.handleWrite(p, m)
	case MsgReplicate:
		n.handleReplicate(p, m)
	case MsgReplAck:
		n.handleReplAck(p, m)
	case MsgRead:
		r := n.rep(m.Shard)
		if r == nil || m.Page < 0 || m.Page >= int64(len(r.applied)) {
			n.toCoord.Send(p, Msg{Kind: MsgReadReply, From: n.idx, ID: m.ID})
			return
		}
		n.toCoord.Send(p, Msg{
			Kind: MsgReadReply, From: n.idx, ID: m.ID, OK: true,
			Shard: m.Shard, Page: m.Page, Seq: r.applied[m.Page],
		})
	case MsgRepairCmd:
		shard, dest, vec := m.Shard, m.Dest, m.Vec
		n.repairSeq++
		p.Go(fmt.Sprintf("repair%d-s%d-d%d", n.repairSeq, shard, dest),
			func(rp *sim.Proc) { n.repairShard(rp, shard, dest, vec) })
	case MsgRepairData:
		n.handleRepairData(p, m)
	case MsgVecReq:
		if r := n.rep(m.Shard); r != nil {
			vec := make([]uint64, len(r.applied))
			copy(vec, r.applied)
			n.toCoord.Send(p, Msg{Kind: MsgJoin, From: n.idx, Shard: m.Shard, Vec: vec})
		}
	}
}

// inService reports whether node j is in the shard's in-service rank
// list per this node's membership view.
func (n *Node) inService(shard, j int) bool {
	if n.ranks == nil || shard >= len(n.ranks) {
		return false
	}
	for _, x := range n.ranks[shard] {
		if x == j {
			return true
		}
	}
	return false
}

// handleWrite is the primary path. The write is applied locally (a real
// filesystem write — the page lands dirty in the cache, which is what
// the Duet repairer later harvests), logged, and replicated to every
// in-service follower plus any alive-but-unsynced learner. The client
// is acknowledged only when the full in-service set has applied it, so
// any in-service survivor of a later failure carries all acked writes —
// quorum gates availability, not durability.
func (n *Node) handleWrite(p *sim.Proc, m Msg) {
	r := n.rep(m.Shard)
	reject := func() {
		n.toCoord.Send(p, Msg{Kind: MsgWriteReply, From: n.idx, ID: m.ID})
	}
	if r == nil || m.Page < 0 || m.Page >= int64(len(r.applied)) {
		reject()
		return
	}
	if n.ranks == nil || m.Shard >= len(n.ranks) {
		reject()
		return
	}
	rk := n.ranks[m.Shard]
	if len(rk) < n.c.Cfg.Quorum() || rk[0] != n.idx {
		reject()
		return
	}
	if err := n.st.FS.Write(p, r.ino, m.Page, 1); err != nil {
		reject()
		return
	}
	seq := r.next
	r.next++
	r.applied[m.Page] = seq
	r.log.Append(Record{Page: m.Page, Seq: seq})
	n.stats.RecordsAppended++

	n.rid++
	pw := &pendWrite{
		rid: n.rid, cid: m.ID, shard: m.Shard, page: m.Page, seq: seq,
		deadline: p.Now() + replDeadline,
	}
	for _, f := range rk {
		if f == n.idx {
			continue
		}
		pw.need = append(pw.need, f)
		n.peers[f].Send(p, Msg{
			Kind: MsgReplicate, From: n.idx, ID: pw.rid,
			Shard: m.Shard, Page: m.Page, Seq: seq, NeedAck: true,
		})
	}
	for _, f := range n.c.Cfg.Placement(m.Shard) {
		if f == n.idx || n.inService(m.Shard, f) {
			continue
		}
		if n.aliveV != nil && f < len(n.aliveV) && n.aliveV[f] {
			// Learner: a recovering replica mid-repair. Fire and forget —
			// the repair manifest covers anything it misses.
			n.peers[f].Send(p, Msg{
				Kind: MsgReplicate, From: n.idx, ID: 0,
				Shard: m.Shard, Page: m.Page, Seq: seq,
			})
		}
	}
	if len(pw.need) == 0 {
		n.toCoord.Send(p, Msg{
			Kind: MsgWriteReply, From: n.idx, ID: m.ID, OK: true,
			Shard: m.Shard, Page: m.Page, Seq: seq,
		})
		return
	}
	n.pend = append(n.pend, pw)
}

// handleReplicate applies a replicated write unconditionally, in
// arrival order — per-port FIFO plus a single writer (the primary)
// makes that correct without any comparison, and it is exactly what
// lets an authoritative resync overwrite divergent pages downward.
func (n *Node) handleReplicate(p *sim.Proc, m Msg) {
	r := n.rep(m.Shard)
	if r == nil || m.Page < 0 || m.Page >= int64(len(r.applied)) {
		return
	}
	if err := n.st.FS.Write(p, r.ino, m.Page, 1); err != nil {
		n.stats.CommitErrors++
		return // no ack: the primary retries, the client write stays unacked
	}
	r.applied[m.Page] = m.Seq
	if m.Seq+1 > r.next {
		r.next = m.Seq + 1
	}
	r.log.Append(Record{Page: m.Page, Seq: m.Seq})
	n.stats.ApplyWrites++
	if m.NeedAck && m.From >= 0 && m.From < len(n.peers) && n.peers[m.From] != nil {
		n.peers[m.From].Send(p, Msg{
			Kind: MsgReplAck, From: n.idx, ID: m.ID, Shard: m.Shard,
		})
	}
}

func (n *Node) handleReplAck(p *sim.Proc, m Msg) {
	for _, pw := range n.pend {
		if pw.done || pw.rid != m.ID {
			continue
		}
		keep := pw.need[:0]
		for _, f := range pw.need {
			if f != m.From {
				keep = append(keep, f)
			}
		}
		pw.need = keep
		if len(pw.need) == 0 {
			pw.done = true
			n.toCoord.Send(p, Msg{
				Kind: MsgWriteReply, From: n.idx, ID: pw.cid, OK: true,
				Shard: pw.shard, Page: pw.page, Seq: pw.seq,
			})
		}
		return
	}
}

// pruneDeadAcks re-evaluates outstanding replication after a membership
// change: followers that fell out of the in-service set no longer owe
// acks. A write whose remaining set drains this way is acknowledged —
// every replica still in service has applied it.
func (n *Node) pruneDeadAcks(p *sim.Proc) {
	for _, pw := range n.pend {
		if pw.done {
			continue
		}
		keep := pw.need[:0]
		for _, f := range pw.need {
			if n.inService(pw.shard, f) {
				keep = append(keep, f)
			}
		}
		pw.need = keep
		if len(pw.need) == 0 {
			pw.done = true
			n.toCoord.Send(p, Msg{
				Kind: MsgWriteReply, From: n.idx, ID: pw.cid, OK: true,
				Shard: pw.shard, Page: pw.page, Seq: pw.seq,
			})
		}
	}
	n.compactPend()
}

// handleRepairData is the destination side of a repair: apply the
// shipped pages in order (authoritative overwrite), log them, and
// report the shard synced when the final batch lands.
func (n *Node) handleRepairData(p *sim.Proc, m Msg) {
	r := n.rep(m.Shard)
	if r == nil {
		return
	}
	for _, ps := range m.Pages {
		if ps.Page < 0 || ps.Page >= int64(len(r.applied)) {
			continue
		}
		if err := n.st.FS.Write(p, r.ino, ps.Page, 1); err != nil {
			n.stats.CommitErrors++
			continue
		}
		r.applied[ps.Page] = ps.Seq
		if ps.Seq+1 > r.next {
			r.next = ps.Seq + 1
		}
		r.log.Append(Record{Page: ps.Page, Seq: ps.Seq})
		n.stats.ResyncApplied++
	}
	if m.Done {
		n.toCoord.Send(p, Msg{Kind: MsgShardSynced, From: n.idx, Shard: m.Shard})
	}
}

// checkPending retries overdue replication rounds with a linear
// backoff and fails the client write after replAttempts rounds.
func (n *Node) checkPending(p *sim.Proc) {
	now := p.Now()
	for _, pw := range n.pend {
		if pw.done || now < pw.deadline {
			continue
		}
		pw.attempt++
		if pw.attempt >= replAttempts {
			pw.done = true
			n.toCoord.Send(p, Msg{
				Kind: MsgWriteReply, From: n.idx, ID: pw.cid,
				Shard: pw.shard, Page: pw.page,
			})
			continue
		}
		pw.deadline = now + replDeadline*sim.Time(pw.attempt+1)
		for _, f := range pw.need {
			n.stats.ReplRetries++
			n.peers[f].Send(p, Msg{
				Kind: MsgReplicate, From: n.idx, ID: pw.rid,
				Shard: pw.shard, Page: pw.page, Seq: pw.seq, NeedAck: true,
			})
		}
	}
	n.compactPend()
}

func (n *Node) compactPend() {
	keep := n.pend[:0]
	for _, pw := range n.pend {
		if !pw.done {
			keep = append(keep, pw)
		}
	}
	n.pend = keep
}

// maybeCommit checkpoints the filesystem and, on success, advances
// every replication log's durable watermark — the durable log and the
// durable content model always move together.
func (n *Node) maybeCommit(p *sim.Proc) {
	if p.Now()-n.lastCommit < n.c.Cfg.CommitEvery {
		return
	}
	n.lastCommit = p.Now()
	if err := n.st.FS.Commit(p); err != nil {
		n.stats.CommitErrors++
		return
	}
	for _, r := range n.reps {
		r.log.Commit()
	}
}
