// Package duetlib is the task-side library of §4.2: a priority queue for
// storing fetched Duet events and helpers implementing the processing
// skeleton of Algorithm 1 (fetch events, update the queue, process the
// highest-priority item, mark it done).
//
// Both in-kernel tasks (scrubber, backup, defragmenter, GC) and the
// user-level rsync use this library, as in the paper.
package duetlib

import (
	"duet/internal/core"
	"duet/internal/rbtree"
)

// PrioQueue is a max-priority queue of item IDs with updatable
// priorities, backed by a red-black tree as in the paper's
// implementation. Ties dequeue in ascending ID order for determinism.
type PrioQueue struct {
	tree *rbtree.Tree[pqKey, struct{}]
	byID map[uint64]float64
}

type pqKey struct {
	prio float64
	id   uint64
}

func pqLess(a, b pqKey) bool {
	if a.prio != b.prio {
		return a.prio > b.prio // higher priority sorts first
	}
	return a.id < b.id
}

// NewPrioQueue returns an empty queue.
func NewPrioQueue() *PrioQueue {
	return &PrioQueue{
		tree: rbtree.New[pqKey, struct{}](pqLess),
		byID: make(map[uint64]float64),
	}
}

// Update sets (or changes) the priority of an item, inserting it if
// absent.
func (q *PrioQueue) Update(id uint64, prio float64) {
	if old, ok := q.byID[id]; ok {
		if old == prio {
			return
		}
		q.tree.Delete(pqKey{old, id})
	}
	q.byID[id] = prio
	q.tree.Set(pqKey{prio, id}, struct{}{})
}

// Remove drops an item; it reports whether the item was present.
func (q *PrioQueue) Remove(id uint64) bool {
	old, ok := q.byID[id]
	if !ok {
		return false
	}
	delete(q.byID, id)
	q.tree.Delete(pqKey{old, id})
	return true
}

// DequeueMax removes and returns the highest-priority item.
func (q *PrioQueue) DequeueMax() (id uint64, prio float64, ok bool) {
	k, _, found := q.tree.DeleteMin() // tree orders max-priority first
	if !found {
		return 0, 0, false
	}
	delete(q.byID, k.id)
	return k.id, k.prio, true
}

// PeekMax returns the highest-priority item without removing it.
func (q *PrioQueue) PeekMax() (id uint64, prio float64, ok bool) {
	k, _, found := q.tree.Min()
	if !found {
		return 0, 0, false
	}
	return k.id, k.prio, true
}

// Priority returns an item's current priority.
func (q *PrioQueue) Priority(id uint64) (float64, bool) {
	p, ok := q.byID[id]
	return p, ok
}

// Len returns the number of queued items.
func (q *PrioQueue) Len() int { return q.tree.Len() }

// FileTracker accumulates per-file cache residency from fetched items, the
// state tasks like defragmentation and rsync prioritize on ("files with
// the highest fraction of pages in memory", §5.3).
type FileTracker struct {
	pages map[uint64]map[uint64]bool // inode -> set of resident page idxs
	dirty map[uint64]map[uint64]bool // inode -> set of dirty page idxs
}

// NewFileTracker returns an empty tracker.
func NewFileTracker() *FileTracker {
	return &FileTracker{
		pages: make(map[uint64]map[uint64]bool),
		dirty: make(map[uint64]map[uint64]bool),
	}
}

// Apply folds fetched items (from a file-task session subscribed to state
// notifications) into the tracker and returns the inodes whose residency
// changed.
func (t *FileTracker) Apply(items []core.Item) []uint64 {
	changed := make(map[uint64]bool)
	for _, it := range items {
		ino, idx := it.ID, it.PageIdx
		if it.Flags.Has(core.StExists) {
			set(t.pages, ino, idx)
		} else {
			unset(t.pages, ino, idx)
		}
		if it.Flags.Has(core.StModified) {
			set(t.dirty, ino, idx)
		} else {
			unset(t.dirty, ino, idx)
		}
		changed[ino] = true
	}
	out := make([]uint64, 0, len(changed))
	for ino := range changed {
		out = append(out, ino)
	}
	sortUint64(out)
	return out
}

func set(m map[uint64]map[uint64]bool, ino, idx uint64) {
	s := m[ino]
	if s == nil {
		s = make(map[uint64]bool)
		m[ino] = s
	}
	s[idx] = true
}

func unset(m map[uint64]map[uint64]bool, ino, idx uint64) {
	if s := m[ino]; s != nil {
		delete(s, idx)
		if len(s) == 0 {
			delete(m, ino)
		}
	}
}

// CachedPages returns how many pages of the file the tracker believes are
// resident.
func (t *FileTracker) CachedPages(ino uint64) int { return len(t.pages[ino]) }

// DirtyPages returns how many of them are dirty.
func (t *FileTracker) DirtyPages(ino uint64) int { return len(t.dirty[ino]) }

// Forget drops all state for a file (after it has been processed).
func (t *FileTracker) Forget(ino uint64) {
	delete(t.pages, ino)
	delete(t.dirty, ino)
}

// Files returns the tracked inodes in ascending order.
func (t *FileTracker) Files() []uint64 {
	out := make([]uint64, 0, len(t.pages))
	for ino := range t.pages {
		out = append(out, ino)
	}
	sortUint64(out)
	return out
}

// PrioUpdate is the prioqueue_update() of Algorithm 1: it drains pending
// events from the session, folds them into the tracker, and refreshes the
// priority queue using prio (which receives the inode and the tracker).
// It returns the number of items fetched.
func PrioUpdate(s *core.Session, t *FileTracker, q *PrioQueue, prio func(ino uint64, t *FileTracker) float64) int {
	total := 0
	buf := make([]core.Item, 256)
	for {
		n := s.FetchInto(buf)
		if n == 0 {
			return total
		}
		total += n
		for _, ino := range t.Apply(buf[:n]) {
			if s.CheckDone(ino) {
				t.Forget(ino)
				q.Remove(ino)
				continue
			}
			p := prio(ino, t)
			if p <= 0 {
				q.Remove(ino)
				continue
			}
			q.Update(ino, p)
		}
	}
}

// HandleQueued is the handle_queued() of Algorithm 1: it repeatedly
// refreshes the queue and hands the highest-priority inode to handle
// until the queue runs dry. handle returns false to stop early (e.g. the
// task's time slice expired).
func HandleQueued(s *core.Session, t *FileTracker, q *PrioQueue,
	prio func(ino uint64, t *FileTracker) float64,
	handle func(ino uint64) bool) {
	for {
		PrioUpdate(s, t, q, prio)
		ino, _, ok := q.DequeueMax()
		if !ok {
			return
		}
		t.Forget(ino)
		if s.CheckDone(ino) {
			continue
		}
		if !handle(ino) {
			return
		}
	}
}

func sortUint64(v []uint64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}
