package duetlib

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"duet/internal/core"
)

func TestPrioQueueBasics(t *testing.T) {
	q := NewPrioQueue()
	if _, _, ok := q.DequeueMax(); ok {
		t.Error("dequeue on empty succeeded")
	}
	q.Update(1, 10)
	q.Update(2, 30)
	q.Update(3, 20)
	if q.Len() != 3 {
		t.Errorf("Len = %d", q.Len())
	}
	if id, prio, ok := q.PeekMax(); !ok || id != 2 || prio != 30 {
		t.Errorf("PeekMax = %d,%f,%v", id, prio, ok)
	}
	var order []uint64
	for {
		id, _, ok := q.DequeueMax()
		if !ok {
			break
		}
		order = append(order, id)
	}
	want := []uint64{2, 3, 1}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestPrioQueueUpdateMoves(t *testing.T) {
	q := NewPrioQueue()
	q.Update(1, 10)
	q.Update(2, 20)
	q.Update(1, 30) // promote
	if id, _, _ := q.PeekMax(); id != 1 {
		t.Errorf("PeekMax = %d after promote", id)
	}
	if p, ok := q.Priority(1); !ok || p != 30 {
		t.Errorf("Priority = %f,%v", p, ok)
	}
	q.Update(1, 30) // no-op update
	if q.Len() != 2 {
		t.Errorf("Len = %d after no-op", q.Len())
	}
	if !q.Remove(1) {
		t.Error("Remove failed")
	}
	if q.Remove(1) {
		t.Error("double Remove succeeded")
	}
	if id, _, _ := q.PeekMax(); id != 2 {
		t.Errorf("PeekMax = %d after remove", id)
	}
}

func TestPrioQueueTiesAscendingID(t *testing.T) {
	q := NewPrioQueue()
	for _, id := range []uint64{5, 3, 9} {
		q.Update(id, 1.0)
	}
	var order []uint64
	for {
		id, _, ok := q.DequeueMax()
		if !ok {
			break
		}
		order = append(order, id)
	}
	want := []uint64{3, 5, 9}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v", order)
		}
	}
}

// TestQuickPrioQueueAgainstSort property: dequeuing everything yields
// items sorted by (priority desc, id asc), with the last Update winning.
func TestQuickPrioQueueAgainstSort(t *testing.T) {
	type op struct {
		ID   uint8
		Prio uint8
	}
	f := func(ops []op) bool {
		q := NewPrioQueue()
		model := map[uint64]float64{}
		for _, o := range ops {
			q.Update(uint64(o.ID), float64(o.Prio))
			model[uint64(o.ID)] = float64(o.Prio)
		}
		type kv struct {
			id   uint64
			prio float64
		}
		var want []kv
		for id, p := range model {
			want = append(want, kv{id, p})
		}
		sort.Slice(want, func(a, b int) bool {
			if want[a].prio != want[b].prio {
				return want[a].prio > want[b].prio
			}
			return want[a].id < want[b].id
		})
		for _, w := range want {
			id, prio, ok := q.DequeueMax()
			if !ok || id != w.id || prio != w.prio {
				return false
			}
		}
		_, _, ok := q.DequeueMax()
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFileTrackerApply(t *testing.T) {
	tr := NewFileTracker()
	changed := tr.Apply([]core.Item{
		{ID: 7, PageIdx: 0, Flags: core.StExists},
		{ID: 7, PageIdx: 1, Flags: core.StExists | core.StModified},
		{ID: 9, PageIdx: 0, Flags: core.StExists},
	})
	if len(changed) != 2 || changed[0] != 7 || changed[1] != 9 {
		t.Errorf("changed = %v", changed)
	}
	if tr.CachedPages(7) != 2 || tr.DirtyPages(7) != 1 {
		t.Errorf("file 7: cached=%d dirty=%d", tr.CachedPages(7), tr.DirtyPages(7))
	}
	// Page eviction clears residency.
	tr.Apply([]core.Item{{ID: 7, PageIdx: 1, Flags: 0}})
	if tr.CachedPages(7) != 1 || tr.DirtyPages(7) != 0 {
		t.Errorf("after evict: cached=%d dirty=%d", tr.CachedPages(7), tr.DirtyPages(7))
	}
	tr.Forget(7)
	if tr.CachedPages(7) != 0 {
		t.Error("Forget did not clear")
	}
	files := tr.Files()
	if len(files) != 1 || files[0] != 9 {
		t.Errorf("Files = %v", files)
	}
}

func TestFileTrackerIdempotent(t *testing.T) {
	tr := NewFileTracker()
	it := core.Item{ID: 1, PageIdx: 5, Flags: core.StExists}
	tr.Apply([]core.Item{it})
	tr.Apply([]core.Item{it})
	if tr.CachedPages(1) != 1 {
		t.Errorf("CachedPages = %d after duplicate events", tr.CachedPages(1))
	}
}

func TestSortUint64(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	v := make([]uint64, 50)
	for i := range v {
		v[i] = uint64(rng.Intn(100))
	}
	sortUint64(v)
	for i := 1; i < len(v); i++ {
		if v[i] < v[i-1] {
			t.Fatalf("not sorted at %d", i)
		}
	}
}
