// Package faults provides a deterministic, seed-driven fault plan for
// the simulated storage stack. A Plan declares probabilities and
// schedules; an Injector attached to a storage.Disk evaluates the plan
// per service attempt and injects transient/permanent read and write
// errors, torn (partially persisted) writes, device stalls, and latent
// sector errors that appear at scheduled virtual instants. A crash
// point (power cut) is carried in the plan for the harness to act on:
// the machine layer stops the engine at CrashAt and remounts the
// filesystems from their durable images (see machine.Recover).
//
// Determinism: every decision is a pure function of (plan seed,
// evaluation sequence number). Because the simulation delivers requests
// to each disk in a deterministic order, the fault sequence is
// reproducible for a given plan — rerunning the same experiment yields
// bit-identical failures, which is what makes crash/recovery tests
// debuggable. A zero-valued Plan injects nothing, and an unattached
// disk skips the fault path entirely.
package faults

import (
	"sort"

	"duet/internal/sim"
	"duet/internal/storage"
)

// LatentError is a sector error that appears at a virtual instant: from
// At onward, reads covering Block fail with storage.ErrBadBlock until
// the block is rewritten via Disk.RepairBlock (the scrubber's repair).
type LatentError struct {
	Block int64
	At    sim.Time
}

// Plan declares what to inject. Rates are per service attempt in [0,1].
type Plan struct {
	Seed uint64

	TransientReadRate  float64 // reads fail with ErrTransient (retryable)
	TransientWriteRate float64 // writes fail with ErrTransient (retryable)
	PermanentWriteRate float64 // writes fail with ErrWriteFault (quarantine)
	TornWriteRate      float64 // multi-block writes persist only a prefix

	StallRate  float64  // attempts delayed by StallDelay
	StallDelay sim.Time // extra latency per stalled attempt

	LatentErrors []LatentError

	// CrashAt, when nonzero, is the virtual instant of a power cut. The
	// injector does not act on it; the experiment harness stops the
	// engine there and recovers (machine.Recover).
	CrashAt sim.Time
}

// Zero reports whether the plan injects nothing (no rates, no latent
// errors). A zero plan attached to a disk still leaves behavior
// identical except for the retry policy arming, so callers should skip
// attaching entirely when Zero() — duetbench does.
func (p *Plan) Zero() bool {
	return p == nil || (p.TransientReadRate == 0 && p.TransientWriteRate == 0 &&
		p.PermanentWriteRate == 0 && p.TornWriteRate == 0 &&
		p.StallRate == 0 && len(p.LatentErrors) == 0 && p.CrashAt == 0)
}

// Injector implements storage.FaultInjector for one disk. It survives a
// crash: machine.Recover re-attaches the same injector to the remounted
// disk so the decision stream and latent-error state continue.
type Injector struct {
	plan   Plan
	disk   *storage.Disk
	seq    uint64
	latent []LatentError // sorted by At; [0:nextLatent) already materialized
	next   int
}

// NewInjector builds an injector for the plan. Attach it with
// Injector.Attach (or machine.AttachFaults).
func NewInjector(plan Plan) *Injector {
	in := &Injector{plan: plan}
	in.latent = append(in.latent, plan.LatentErrors...)
	sort.Slice(in.latent, func(i, j int) bool {
		a, b := in.latent[i], in.latent[j]
		if a.At != b.At {
			return a.At < b.At
		}
		return a.Block < b.Block
	})
	return in
}

// Plan returns the injector's plan.
func (in *Injector) Plan() Plan { return in.plan }

// Attach arms the disk with this injector (and the default retry
// policy, if none is set). Latent errors already materialized — e.g.
// when re-attaching after a crash — are re-injected onto the new disk
// unless they were repaired on the old one, which the caller handles by
// transplanting Disk.BadBlocks (machine.Recover does both).
func (in *Injector) Attach(d *storage.Disk) {
	in.disk = d
	d.SetFaultInjector(in)
}

// splitmix64 is the standard 64-bit finalizer; a full-avalanche hash of
// the counter gives an independent uniform stream per plan seed.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// roll draws the next deterministic uniform in [0,1).
func (in *Injector) roll() float64 {
	in.seq++
	return float64(splitmix64(in.plan.Seed^(in.seq*0x2545f4914f6cdd1d))>>11) / (1 << 53)
}

// rollN draws a deterministic integer in [0,n).
func (in *Injector) rollN(n int) int {
	if n <= 1 {
		return 0
	}
	in.seq++
	return int(splitmix64(in.plan.Seed^(in.seq*0x2545f4914f6cdd1d)) % uint64(n))
}

// materialize injects latent errors whose appearance time has passed.
// Once injected they live in the disk's bad-block set; RepairBlock
// clears them there, and they are not re-injected.
func (in *Injector) materialize(now sim.Time) {
	for in.next < len(in.latent) && in.latent[in.next].At <= now {
		in.disk.InjectBadBlock(in.latent[in.next].Block)
		in.next++
	}
}

// Evaluate implements storage.FaultInjector.
func (in *Injector) Evaluate(now sim.Time, r *storage.Request, attempt int) storage.FaultOutcome {
	in.materialize(now)
	var out storage.FaultOutcome
	if in.plan.StallRate > 0 && in.roll() < in.plan.StallRate {
		out.ExtraLatency = in.plan.StallDelay
	}
	if r.Write {
		switch {
		case in.plan.TornWriteRate > 0 && r.Count > 1 && in.roll() < in.plan.TornWriteRate:
			out.Err = &storage.TornWriteError{Persisted: in.rollN(r.Count)}
		case in.plan.PermanentWriteRate > 0 && in.roll() < in.plan.PermanentWriteRate:
			out.Err = storage.ErrWriteFault
		case in.plan.TransientWriteRate > 0 && in.roll() < in.plan.TransientWriteRate:
			out.Err = storage.ErrTransient
		}
	} else if in.plan.TransientReadRate > 0 && in.roll() < in.plan.TransientReadRate {
		out.Err = storage.ErrTransient
	}
	return out
}

var _ storage.FaultInjector = (*Injector)(nil)
