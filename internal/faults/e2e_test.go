package faults_test

import (
	"testing"

	"duet/internal/faults"
	"duet/internal/machine"
	"duet/internal/sim"
)

// End-to-end quarantine lifecycle coverage: the unit tests in
// faults_test.go prove the injector's decision stream; this file proves
// the machine-level consequences — quarantined pages accounted exactly,
// and none of that state leaking across crash recovery.

// quarantineInvariant checks the exact-accounting identity that holds
// under a permanent-write-fault-only plan (no truncates, no transient
// classifications): every page that ever entered quarantine either was
// requeued, is still quarantined, or was force-dropped under memory
// pressure and counted as lost.
func quarantineInvariant(t *testing.T, phase string, m *machine.Machine) {
	t.Helper()
	s := m.Cache.Stats()
	got := s.RequeuedPages + int64(m.Cache.QuarantinedLen()) + s.LostPages
	if s.QuarantineEvents != got {
		t.Fatalf("%s: quarantine accounting inexact: events=%d != requeued=%d + held=%d + lost=%d",
			phase, s.QuarantineEvents, s.RequeuedPages, m.Cache.QuarantinedLen(), s.LostPages)
	}
}

// churn writes across the populated tree until the deadline, ignoring
// errors (the device is faulty by design).
func churn(t *testing.T, m *machine.Machine, d sim.Time) {
	t.Helper()
	root, err := m.FS.Lookup("/data")
	if err != nil {
		t.Fatal(err)
	}
	files := m.FS.FilesUnder(root.Ino)
	if len(files) == 0 {
		t.Fatal("no files")
	}
	m.Eng.Go("churn", func(p *sim.Proc) {
		for i := 0; p.Now() < d && !p.Engine().Stopping(); i++ {
			f := files[i%len(files)]
			if f.SizePg > 0 {
				_ = m.FS.Write(p, f.Ino, int64(i)%f.SizePg, 1)
			}
			p.Sleep(sim.Millisecond / 2)
		}
	})
}

// TestQuarantineAcrossCrashes drives quarantine through its full
// lifecycle — build-up, crash, rebuild, requeue, second crash — and
// requires that (a) no quarantine state leaks across machine.Recover,
// (b) LostPages accounting stays exact in every phase, and (c) the
// per-phase Robustness counters aggregate exactly.
func TestQuarantineAcrossCrashes(t *testing.T) {
	m, err := machine.New(machine.Config{
		Seed:              11,
		DeviceBlocks:      1 << 12,
		CachePages:        64, // small: quarantine build-up must hit reclaim pressure
		WritebackInterval: 20 * sim.Millisecond,
		DirtyExpire:       5 * sim.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Populate(machine.DefaultPopulateSpec("/data", 256)); err != nil {
		t.Fatal(err)
	}
	m.EnableDurability()

	var agg machine.Robustness
	var phases []machine.Robustness
	plan := faults.Plan{Seed: 3, PermanentWriteRate: 0.3}

	// Phase 1: permanent write faults until the crash. Quarantine must
	// build up, and under a 64-page cache some of it must be dropped.
	m.AttachFaults(plan)
	churn(t, m, 250*sim.Millisecond)
	if err := m.Eng.RunFor(250 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	s1 := m.Cache.Stats()
	if s1.QuarantineEvents == 0 {
		t.Fatalf("phase 1 produced no quarantined pages; plan too weak for the test")
	}
	quarantineInvariant(t, "phase 1", m)
	phases = append(phases, m.Robustness())
	agg.Add(m.Robustness())

	// Crash 1: all quarantine state must die with the machine.
	nm, err := m.Recover()
	if err != nil {
		t.Fatal(err)
	}
	m = nm
	if n := m.Cache.QuarantinedLen(); n != 0 {
		t.Fatalf("recovery leaked %d quarantined pages into the new cache", n)
	}
	if s := m.Cache.Stats(); s.QuarantineEvents != 0 || s.LostPages != 0 || s.RequeuedPages != 0 {
		t.Fatalf("recovered cache inherited quarantine counters: %+v", s)
	}

	// Phase 2: build quarantine again, then heal the device and requeue
	// — the release half of the lifecycle — before crashing again.
	inj := m.AttachFaults(plan)
	_ = inj
	churn(t, m, 150*sim.Millisecond)
	if err := m.Eng.RunFor(150 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if m.Cache.Stats().QuarantineEvents == 0 {
		t.Fatalf("phase 2 produced no quarantined pages")
	}
	quarantineInvariant(t, "phase 2 (pre-requeue)", m)

	held := int64(m.Cache.QuarantinedLen())
	m.Disk.SetFaultInjector(nil)
	for _, key := range m.Cache.Quarantined(nil) {
		if !m.Cache.Requeue(key) {
			t.Fatalf("requeue refused for quarantined key %v", key)
		}
	}
	if got := m.Cache.Stats().RequeuedPages; got != held {
		t.Fatalf("requeued %d pages, counter says %d", held, got)
	}
	if err := m.Eng.RunFor(100 * sim.Millisecond); err != nil { // let writeback drain cleanly
		t.Fatal(err)
	}
	if n := m.Cache.QuarantinedLen(); n != 0 {
		t.Fatalf("%d pages still quarantined after heal+requeue", n)
	}
	quarantineInvariant(t, "phase 2 (post-requeue)", m)
	phases = append(phases, m.Robustness())
	agg.Add(m.Robustness())

	// Crash 2 (back-to-back): the repeated-recovery path must be just as
	// clean as the first.
	nm, err = m.Recover()
	if err != nil {
		t.Fatal(err)
	}
	m = nm
	if n := m.Cache.QuarantinedLen(); n != 0 {
		t.Fatalf("second recovery leaked %d quarantined pages", n)
	}
	if s := m.Cache.Stats(); s.QuarantineEvents != 0 || s.LostPages != 0 {
		t.Fatalf("second recovered cache inherited quarantine counters: %+v", s)
	}

	// Aggregation is exact: the summed Robustness record equals the sum
	// of the per-phase records, field by field for the quarantine trio.
	var want machine.Robustness
	for _, ph := range phases {
		want.Add(ph)
	}
	if agg.Quarantined != want.Quarantined || agg.Requeued != want.Requeued ||
		agg.LostPages != want.LostPages {
		t.Fatalf("aggregate drifted: got %+v want %+v", agg, want)
	}
}
