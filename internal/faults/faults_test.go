package faults_test

import (
	"errors"
	"testing"

	"duet/internal/faults"
	"duet/internal/iosched"
	"duet/internal/sim"
	"duet/internal/storage"
)

const testBlocks = 1 << 14

func newDisk(e *sim.Engine) *storage.Disk {
	return storage.NewDisk(e, "sda", storage.DefaultHDD(testBlocks), iosched.NewCFQ())
}

func TestZeroPlan(t *testing.T) {
	var p *faults.Plan
	if !p.Zero() {
		t.Error("nil plan should be Zero")
	}
	if !(&faults.Plan{Seed: 42, CrashAt: 0}).Zero() {
		t.Error("seed-only plan should be Zero")
	}
	for _, p := range []faults.Plan{
		{TransientReadRate: 0.1},
		{TransientWriteRate: 0.1},
		{PermanentWriteRate: 0.1},
		{TornWriteRate: 0.1},
		{StallRate: 0.1},
		{LatentErrors: []faults.LatentError{{Block: 1}}},
		{CrashAt: sim.Second},
	} {
		if p.Zero() {
			t.Errorf("plan %+v should not be Zero", p)
		}
	}
}

// TestDeterministicDecisions: two injectors built from the same plan must
// produce bit-identical outcome streams for the same request sequence —
// the property that makes fault experiments reproducible.
func TestDeterministicDecisions(t *testing.T) {
	plan := faults.Plan{
		Seed:               12345,
		TransientReadRate:  0.2,
		TransientWriteRate: 0.1,
		PermanentWriteRate: 0.05,
		TornWriteRate:      0.3,
		StallRate:          0.15,
		StallDelay:         3 * sim.Millisecond,
	}
	a := faults.NewInjector(plan)
	b := faults.NewInjector(plan)
	for i := 0; i < 2000; i++ {
		r := &storage.Request{Block: int64(i % 512), Count: 1 + i%8, Write: i%2 == 0}
		now := sim.Time(i) * sim.Millisecond
		oa := a.Evaluate(now, r, 0)
		ob := b.Evaluate(now, r, 0)
		if oa.ExtraLatency != ob.ExtraLatency {
			t.Fatalf("step %d: latency %v != %v", i, oa.ExtraLatency, ob.ExtraLatency)
		}
		if (oa.Err == nil) != (ob.Err == nil) {
			t.Fatalf("step %d: err %v != %v", i, oa.Err, ob.Err)
		}
		if oa.Err != nil && oa.Err.Error() != ob.Err.Error() {
			t.Fatalf("step %d: err %v != %v", i, oa.Err, ob.Err)
		}
	}
}

// Different seeds must produce different streams (no accidental seed
// insensitivity).
func TestSeedChangesStream(t *testing.T) {
	mk := func(seed uint64) string {
		in := faults.NewInjector(faults.Plan{Seed: seed, TransientReadRate: 0.5})
		s := ""
		for i := 0; i < 64; i++ {
			r := &storage.Request{Count: 1}
			if in.Evaluate(0, r, 0).Err != nil {
				s += "x"
			} else {
				s += "."
			}
		}
		return s
	}
	if mk(1) == mk(2) {
		t.Error("seeds 1 and 2 produced identical decision streams")
	}
}

// TestRatesRoughlyHonoured: over many draws, the observed fault fraction
// should be near the configured rate.
func TestRatesRoughlyHonoured(t *testing.T) {
	in := faults.NewInjector(faults.Plan{Seed: 99, TransientReadRate: 0.25})
	faultsSeen := 0
	const n = 20000
	for i := 0; i < n; i++ {
		r := &storage.Request{Count: 1}
		if in.Evaluate(0, r, 0).Err != nil {
			faultsSeen++
		}
	}
	frac := float64(faultsSeen) / n
	if frac < 0.22 || frac > 0.28 {
		t.Errorf("observed fault rate %.3f, want ~0.25", frac)
	}
}

// TestLatentErrorsMaterialize: a latent sector error appears on the disk
// at its scheduled instant (the first evaluation at or after At) and is
// cleared by RepairBlock, never to be re-injected.
func TestLatentErrorsMaterialize(t *testing.T) {
	e := sim.New(1)
	d := newDisk(e)
	in := faults.NewInjector(faults.Plan{
		Seed:         1,
		LatentErrors: []faults.LatentError{{Block: 7, At: 5 * sim.Millisecond}},
	})
	in.Attach(d)
	var early, late, repaired error
	e.Go("io", func(p *sim.Proc) {
		defer e.Stop()
		early = d.Read(p, 7, 1, storage.ClassNormal, "t")
		p.Sleep(10 * sim.Millisecond)
		late = d.Read(p, 7, 1, storage.ClassNormal, "t")
		d.RepairBlock(7)
		repaired = d.Read(p, 7, 1, storage.ClassNormal, "t")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if early != nil {
		t.Errorf("read before At failed: %v", early)
	}
	if !errors.Is(late, storage.ErrBadBlock) {
		t.Errorf("read after At = %v, want ErrBadBlock", late)
	}
	if repaired != nil {
		t.Errorf("read after repair failed: %v", repaired)
	}
	if got := d.BadBlocks(); len(got) != 0 {
		t.Errorf("BadBlocks after repair = %v", got)
	}
}

// Torn writes only apply to multi-block requests, and the persisted
// prefix is always strictly shorter than the request.
func TestTornWriteBounds(t *testing.T) {
	in := faults.NewInjector(faults.Plan{Seed: 3, TornWriteRate: 1})
	if out := in.Evaluate(0, &storage.Request{Write: true, Count: 1}, 0); out.Err != nil {
		t.Errorf("single-block write torn: %v", out.Err)
	}
	for i := 0; i < 100; i++ {
		out := in.Evaluate(0, &storage.Request{Write: true, Count: 8}, 0)
		n, ok := storage.TornBlocks(out.Err)
		if !ok {
			t.Fatalf("draw %d: want torn error, got %v", i, out.Err)
		}
		if n < 0 || n >= 8 {
			t.Fatalf("draw %d: persisted %d out of [0,8)", i, n)
		}
	}
}
