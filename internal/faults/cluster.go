package faults

import "duet/internal/sim"

// Cluster-level fault schedules: whole-machine kills, network
// partitions, and replication-log damage. These are harness-driven
// (the cluster tier acts on them at the scheduled instants), unlike
// the per-request device plan, which the disks evaluate themselves.

// KillEvent powers one node off at At and back on at RecoverAt. The
// node loses all volatile state at At (page cache, uncommitted
// replication-log tail) and rejoins from its durable state at
// RecoverAt. RecoverAt must be > At; events for one node must not
// overlap.
type KillEvent struct {
	Node      int
	At        sim.Time
	RecoverAt sim.Time
}

// Partition drops all messages between nodes A and B (both directions)
// during [From, To). Heartbeats to the coordinator are unaffected, so a
// partitioned pair stays "alive" while unable to replicate — the
// asymmetric failure that distinguishes partition handling from kill
// handling.
type Partition struct {
	A, B     int
	From, To sim.Time
}

// ClusterPlan declares the fault schedule for one cluster run.
type ClusterPlan struct {
	// Seed drives the log-damage decisions and derives per-node device
	// plan seeds.
	Seed uint64

	Kills      []KillEvent
	Partitions []Partition

	// TornLogRate is the probability, per crash, that the committed
	// replication-log tail loses bytes mid-record (a torn sector at the
	// power cut). CorruptLogRate is the probability of a flipped byte
	// inside the committed prefix. Both are detected by the log's record
	// checksums at replay and widen the re-sync, never diverge silently.
	TornLogRate    float64
	CorruptLogRate float64

	// Disk, when non-zero, is the per-request device fault plan applied
	// to every node's disk, each with a seed derived from Seed and the
	// node index (independent decision streams).
	Disk Plan
}

// NodeDiskPlan returns the device plan for one node, with a derived
// seed so every node draws an independent deterministic stream. Zero
// when the cluster plan carries no device faults.
func (p *ClusterPlan) NodeDiskPlan(node int) Plan {
	d := p.Disk
	if d.Zero() {
		return Plan{}
	}
	d.Seed = splitmix64(p.Seed ^ (uint64(node+1) * 0x9e3779b97f4a7c15))
	return d
}

// KillsFor returns the kill events for one node in schedule order.
func (p *ClusterPlan) KillsFor(node int) []KillEvent {
	var out []KillEvent
	for _, k := range p.Kills {
		if k.Node == node {
			out = append(out, k)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].At < out[j-1].At; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Partitioned reports whether messages between a and b are being
// dropped at now.
func (p *ClusterPlan) Partitioned(a, b int, now sim.Time) bool {
	for _, pt := range p.Partitions {
		if ((pt.A == a && pt.B == b) || (pt.A == b && pt.B == a)) &&
			now >= pt.From && now < pt.To {
			return true
		}
	}
	return false
}

// Zero reports whether the plan schedules nothing.
func (p *ClusterPlan) Zero() bool {
	return p == nil || (len(p.Kills) == 0 && len(p.Partitions) == 0 &&
		p.TornLogRate == 0 && p.CorruptLogRate == 0 && p.Disk.Zero())
}

// Stream is a deterministic uniform stream — the injector's splitmix64
// generator, exported for cluster components (log-damage decisions,
// workload choices) that need reproducible randomness decoupled from
// any domain's DeriveRand streams.
type Stream struct {
	seed uint64
	seq  uint64
}

// NewStream returns a stream for the seed. Equal seeds give equal
// streams.
func NewStream(seed uint64) *Stream { return &Stream{seed: seed} }

// Roll draws the next uniform in [0,1).
func (s *Stream) Roll() float64 {
	s.seq++
	return float64(splitmix64(s.seed^(s.seq*0x2545f4914f6cdd1d))>>11) / (1 << 53)
}

// RollN draws a deterministic integer in [0,n); 0 when n <= 1.
func (s *Stream) RollN(n int) int {
	if n <= 1 {
		return 0
	}
	s.seq++
	return int(splitmix64(s.seed^(s.seq*0x2545f4914f6cdd1d)) % uint64(n))
}
