package pagecache

// Flat open-addressed hash tables for the cache's two hottest lookups:
// the page table (hit by every Lookup/Contains/Insert and every
// eviction) and the per-file list index. The runtime map hashes these
// multi-word struct keys through the generic type-hash path, which
// dominated CPU profiles of full grid runs; these tables use a
// three-multiply inline hash and linear probing with backward-shift
// deletion instead. A slot is occupied iff its value is non-nil (all
// values stored here are non-nil by construction), so no separate
// control bytes are needed.

const tabMinSize = 256

// hashMix is the 64-bit avalanche finalizer from MurmurHash3: after the
// key fields are combined with distinct odd multipliers, it spreads the
// result so sequential inos/indexes don't cluster in the probe space.
func hashMix(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

func (k PageKey) hash() uint64 {
	return hashMix(uint64(k.FS)*0x9e3779b97f4a7c15 ^ k.Ino*0xbf58476d1ce4e5b9 ^ k.Index)
}

func (k FileKey) hash() uint64 {
	return hashMix(uint64(k.FS)*0x9e3779b97f4a7c15 ^ k.Ino)
}

// pageTab maps PageKey -> *Page.
type pageTab struct {
	keys []PageKey
	vals []*Page
	n    int
}

func (t *pageTab) len() int { return t.n }

func (t *pageTab) get(k PageKey) (*Page, bool) {
	if t.n == 0 {
		return nil, false
	}
	mask := uint64(len(t.vals) - 1)
	for i := k.hash() & mask; ; i = (i + 1) & mask {
		v := t.vals[i]
		if v == nil {
			return nil, false
		}
		if t.keys[i] == k {
			return v, true
		}
	}
}

func (t *pageTab) put(k PageKey, v *Page) {
	if t.n >= len(t.vals)-len(t.vals)/4 {
		t.grow()
	}
	mask := uint64(len(t.vals) - 1)
	for i := k.hash() & mask; ; i = (i + 1) & mask {
		if t.vals[i] == nil {
			t.keys[i], t.vals[i] = k, v
			t.n++
			return
		}
		if t.keys[i] == k {
			t.vals[i] = v
			return
		}
	}
}

func (t *pageTab) del(k PageKey) {
	if t.n == 0 {
		return
	}
	mask := uint64(len(t.vals) - 1)
	i := k.hash() & mask
	for {
		if t.vals[i] == nil {
			return
		}
		if t.keys[i] == k {
			break
		}
		i = (i + 1) & mask
	}
	// Backward-shift deletion keeps probe chains intact without
	// tombstones: each later entry of the cluster is pulled into the
	// hole if its home slot lies at or before it.
	j := i
	for {
		t.keys[i] = PageKey{}
		t.vals[i] = nil
		for {
			j = (j + 1) & mask
			if t.vals[j] == nil {
				t.n--
				return
			}
			h := t.keys[j].hash() & mask
			if (j-h)&mask >= (j-i)&mask {
				break
			}
		}
		t.keys[i], t.vals[i] = t.keys[j], t.vals[j]
		i = j
	}
}

func (t *pageTab) grow() {
	size := tabMinSize
	if len(t.vals) > 0 {
		size = len(t.vals) * 2
	}
	oldKeys, oldVals := t.keys, t.vals
	t.keys = make([]PageKey, size)
	t.vals = make([]*Page, size)
	t.n = 0
	for i, v := range oldVals {
		if v != nil {
			t.put(oldKeys[i], v)
		}
	}
}

// fileTab maps FileKey -> *fileList.
type fileTab struct {
	keys []FileKey
	vals []*fileList
	n    int
}

func (t *fileTab) len() int { return t.n }

func (t *fileTab) get(k FileKey) *fileList {
	if t.n == 0 {
		return nil
	}
	mask := uint64(len(t.vals) - 1)
	for i := k.hash() & mask; ; i = (i + 1) & mask {
		v := t.vals[i]
		if v == nil {
			return nil
		}
		if t.keys[i] == k {
			return v
		}
	}
}

func (t *fileTab) put(k FileKey, v *fileList) {
	if t.n >= len(t.vals)-len(t.vals)/4 {
		t.grow()
	}
	mask := uint64(len(t.vals) - 1)
	for i := k.hash() & mask; ; i = (i + 1) & mask {
		if t.vals[i] == nil {
			t.keys[i], t.vals[i] = k, v
			t.n++
			return
		}
		if t.keys[i] == k {
			t.vals[i] = v
			return
		}
	}
}

func (t *fileTab) del(k FileKey) {
	if t.n == 0 {
		return
	}
	mask := uint64(len(t.vals) - 1)
	i := k.hash() & mask
	for {
		if t.vals[i] == nil {
			return
		}
		if t.keys[i] == k {
			break
		}
		i = (i + 1) & mask
	}
	j := i
	for {
		t.keys[i] = FileKey{}
		t.vals[i] = nil
		for {
			j = (j + 1) & mask
			if t.vals[j] == nil {
				t.n--
				return
			}
			h := t.keys[j].hash() & mask
			if (j-h)&mask >= (j-i)&mask {
				break
			}
		}
		t.keys[i], t.vals[i] = t.keys[j], t.vals[j]
		i = j
	}
}

func (t *fileTab) grow() {
	size := tabMinSize
	if len(t.vals) > 0 {
		size = len(t.vals) * 2
	}
	oldKeys, oldVals := t.keys, t.vals
	t.keys = make([]FileKey, size)
	t.vals = make([]*fileList, size)
	t.n = 0
	for i, v := range oldVals {
		if v != nil {
			t.put(oldKeys[i], v)
		}
	}
}

// appendKeys appends every present key in slot order (callers sort).
func (t *fileTab) appendKeys(dst []FileKey) []FileKey {
	for i, v := range t.vals {
		if v != nil {
			dst = append(dst, t.keys[i])
		}
	}
	return dst
}
