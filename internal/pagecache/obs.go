package pagecache

import (
	"duet/internal/obs"
	"duet/internal/sim"
)

// Observability (internal/obs). The cache's hot paths — Lookup, Insert,
// emit — are deliberately left uninstrumented: the allocation gates
// cover them and a per-access probe would be all overhead. Instead the
// cache traces its writeback activity (the flusher's virtual-time
// slices, with the batch size as an argument) and the quarantine state
// transitions, which is exactly what matters when debugging maintenance
// interference. Cumulative Stats are absorbed post-hoc by
// PublishMetrics.

// cacheObs holds the pre-resolved instruments; nil on c.obs disables
// everything.
type cacheObs struct {
	tr      *obs.Tracer
	tid     int32
	wbPages *obs.Histogram // pages staged per flush pass
}

// wbBatchBounds buckets flush-pass sizes (pages).
var wbBatchBounds = []int64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512}

// EnableObs attaches observability to the cache. Call once at machine
// assembly, before the simulation runs.
func (c *Cache) EnableObs(o *obs.Obs) {
	if o == nil || (o.Trace == nil && o.Metrics == nil) {
		return
	}
	st := &cacheObs{tr: o.Trace}
	if o.Trace != nil {
		st.tid = o.Trace.Track("pagecache")
	}
	if o.Metrics != nil {
		st.wbPages = o.Metrics.Histogram("pagecache.wb_batch_pages", wbBatchBounds)
	}
	c.obs = st
}

// observeFlush records one flush pass: a slice covering the blocking
// writeback interval, tagged with the number of pages staged.
func (c *Cache) observeFlush(start, end sim.Time, pages int) {
	st := c.obs
	st.wbPages.Observe(int64(pages))
	if st.tr != nil && pages > 0 {
		st.tr.SliceArg(st.tid, "pagecache", "writeback", start, end, "pages", int64(pages))
	}
}

// PublishMetrics absorbs the cache's cumulative counters into the
// registry under "pagecache.*". Safe to call repeatedly; values are
// absolute so re-absorption cannot double-count.
func (c *Cache) PublishMetrics(r *obs.Registry) {
	if r == nil {
		return
	}
	s := &c.stats
	r.SetCounter("pagecache.hits", s.Hits)
	r.SetCounter("pagecache.misses", s.Misses)
	r.SetCounter("pagecache.inserts", s.Inserts)
	r.SetCounter("pagecache.evictions", s.Evictions)
	r.SetCounter("pagecache.dirty_evictions", s.DirtyEvictions)
	r.SetCounter("pagecache.writeback_pages", s.WritebackPages)
	r.SetCounter("pagecache.removed_by_delete", s.RemovedByDelete)
	r.SetCounter("pagecache.events_dispatched", s.EventsDispatched)
	r.SetCounter("pagecache.events_filtered", s.EventsFiltered)
	r.SetCounter("pagecache.advisor_deferrals", s.AdvisorDeferrals)
	r.SetCounter("pagecache.writeback_errors", s.WritebackErrors)
	r.SetCounter("pagecache.quarantine_events", s.QuarantineEvents)
	r.SetCounter("pagecache.requeued_pages", s.RequeuedPages)
	r.SetCounter("pagecache.lost_pages", s.LostPages)
	r.Gauge("pagecache.resident_pages").SetMax(int64(c.pages.len()))
	r.Gauge("pagecache.dirty_pages").SetMax(int64(c.dirty.Len()))
	r.Gauge("pagecache.quarantined_pages").SetMax(int64(len(c.quar)))
}
