package pagecache

import (
	"testing"

	"duet/internal/sim"
	"duet/internal/storage"
)

// faultBackend scripts one outcome per WritebackPages call: errs[i] is
// the error, persist[i] the count reported as durably written (-1 = all).
// Calls beyond the script succeed in full. always, when non-nil, overrides
// the script and fails every call with no progress.
type faultBackend struct {
	errs    []error
	persist []int
	always  error
	calls   int
}

func (b *faultBackend) WritebackPages(p *sim.Proc, ino uint64, indices []uint64) (int, error) {
	i := b.calls
	b.calls++
	if b.always != nil {
		return 0, b.always
	}
	if i >= len(b.errs) || b.errs[i] == nil {
		return len(indices), nil
	}
	n := len(indices)
	if i < len(b.persist) && b.persist[i] >= 0 {
		n = b.persist[i]
	}
	return n, b.errs[i]
}

func newFaultHarness(capacity int, b *faultBackend) *harness {
	e := sim.New(1)
	c := New(e, DefaultConfig(capacity))
	c.RegisterFS(1, b)
	h := newRecordingHook()
	c.AddHook(h)
	return &harness{e: e, c: c, hook: h}
}

func TestPermanentFaultQuarantinesAndRequeues(t *testing.T) {
	fb := &faultBackend{errs: []error{storage.ErrWriteFault}, persist: []int{0}}
	h := newFaultHarness(8, fb)
	h.in(t, func(p *sim.Proc) {
		pg := h.c.Insert(p, key(1, 0), 1)
		h.c.MarkDirty(pg, 2)
		if err := h.c.SyncFile(p, 1, 1); err == nil {
			t.Fatal("SyncFile should report the write fault")
		}
		if !pg.Quarantined() {
			t.Fatal("page not quarantined after permanent fault")
		}
		if !pg.Dirty {
			t.Error("quarantined page must keep its dirty data")
		}
		if h.c.DirtyLen() != 0 {
			t.Errorf("DirtyLen = %d: quarantined page still on writeback path", h.c.DirtyLen())
		}
		if h.c.QuarantinedLen() != 1 {
			t.Errorf("QuarantinedLen = %d, want 1", h.c.QuarantinedLen())
		}

		// Further syncs must skip the quarantined page entirely.
		if err := h.c.SyncFile(p, 1, 1); err != nil {
			t.Errorf("sync with only quarantined pages: %v", err)
		}
		if fb.calls != 1 {
			t.Errorf("backend called %d times; quarantined page retried", fb.calls)
		}

		// Requeue (fault repaired): page returns to the dirty tree and the
		// next sync persists it.
		if !h.c.Requeue(key(1, 0)) {
			t.Fatal("Requeue failed")
		}
		if pg.Quarantined() || h.c.DirtyLen() != 1 {
			t.Error("requeued page not back on the writeback path")
		}
		if err := h.c.SyncFile(p, 1, 1); err != nil {
			t.Fatalf("sync after requeue: %v", err)
		}
		if pg.Dirty {
			t.Error("page still dirty after successful writeback")
		}
	})
	st := h.c.Stats()
	if st.WritebackErrors != 1 || st.QuarantineEvents != 1 || st.RequeuedPages != 1 {
		t.Errorf("stats = errors %d, quarantined %d, requeued %d; want 1/1/1",
			st.WritebackErrors, st.QuarantineEvents, st.RequeuedPages)
	}
	if st.LostPages != 0 {
		t.Errorf("LostPages = %d, want 0", st.LostPages)
	}
}

func TestTransientFaultRedirtiesForRetry(t *testing.T) {
	fb := &faultBackend{errs: []error{storage.ErrTransient}, persist: []int{0}}
	h := newFaultHarness(8, fb)
	h.in(t, func(p *sim.Proc) {
		pg := h.c.Insert(p, key(1, 0), 1)
		h.c.MarkDirty(pg, 2)
		if err := h.c.SyncFile(p, 1, 1); err == nil {
			t.Fatal("SyncFile should report the transient fault")
		}
		if pg.Quarantined() {
			t.Error("transient fault must not quarantine")
		}
		if !pg.Dirty || h.c.DirtyLen() != 1 {
			t.Error("page should stay dirty for retry")
		}
		// Retry succeeds (script exhausted).
		if err := h.c.SyncFile(p, 1, 1); err != nil {
			t.Fatalf("retry: %v", err)
		}
		if pg.Dirty {
			t.Error("page dirty after successful retry")
		}
	})
}

func TestPartialPersistCleansPrefixOnly(t *testing.T) {
	// The backend persists 2 of 4 pages then fails transiently: the
	// persisted prefix must come clean, the remainder stays dirty.
	fb := &faultBackend{errs: []error{storage.ErrTransient}, persist: []int{2}}
	h := newFaultHarness(8, fb)
	h.in(t, func(p *sim.Proc) {
		for i := uint64(0); i < 4; i++ {
			pg := h.c.Insert(p, key(1, i), 1)
			h.c.MarkDirty(pg, 2)
		}
		if err := h.c.SyncFile(p, 1, 1); err == nil {
			t.Fatal("SyncFile should report the fault")
		}
		for i := uint64(0); i < 4; i++ {
			pg, ok := h.c.Peek(key(1, i))
			if !ok {
				t.Fatalf("page %d missing", i)
			}
			wantDirty := i >= 2
			if pg.Dirty != wantDirty {
				t.Errorf("page %d dirty = %v, want %v", i, pg.Dirty, wantDirty)
			}
		}
		if h.c.DirtyLen() != 2 {
			t.Errorf("DirtyLen = %d, want 2", h.c.DirtyLen())
		}
	})
}

func TestForcedEvictionOfQuarantinedPageCountsLost(t *testing.T) {
	// Every writeback fails permanently and the cache is saturated with
	// dirty pages: reclaim has no clean victim, quarantines the lot, and
	// is forced to drop one page's data — which must be counted, never
	// silently swallowed.
	fb := &faultBackend{always: storage.ErrWriteFault}
	h := newFaultHarness(2, fb)
	h.in(t, func(p *sim.Proc) {
		for i := uint64(0); i < 2; i++ {
			pg := h.c.Insert(p, key(1, i), 1)
			h.c.MarkDirty(pg, 2)
		}
		h.c.Insert(p, key(1, 9), 1) // forces eviction
		if h.c.Len() != 2 {
			t.Errorf("Len = %d, want 2", h.c.Len())
		}
	})
	st := h.c.Stats()
	if st.LostPages != 1 {
		t.Errorf("LostPages = %d, want 1", st.LostPages)
	}
	if st.QuarantineEvents == 0 {
		t.Error("no pages quarantined on the way down")
	}
}
