package pagecache

import (
	"testing"
	"testing/quick"

	"duet/internal/sim"
)

// recordingHook collects events for assertions.
type recordingHook struct {
	events []string
	byType map[EventType]int
}

func newRecordingHook() *recordingHook {
	return &recordingHook{byType: map[EventType]int{}}
}

func (h *recordingHook) PageEvent(ev EventType, pg *Page) {
	h.events = append(h.events, ev.String())
	h.byType[ev]++
}

// nullBackend counts writebacks without doing I/O.
type nullBackend struct {
	pagesWritten int
}

func (b *nullBackend) WritebackPages(p *sim.Proc, ino uint64, indices []uint64) (int, error) {
	b.pagesWritten += len(indices)
	return len(indices), nil
}

// harness bundles an engine, cache, backend and hook for tests.
type harness struct {
	e    *sim.Engine
	c    *Cache
	b    *nullBackend
	hook *recordingHook
}

func newHarness(capacity int) *harness {
	e := sim.New(1)
	c := New(e, DefaultConfig(capacity))
	b := &nullBackend{}
	c.RegisterFS(1, b)
	h := newRecordingHook()
	c.AddHook(h)
	return &harness{e: e, c: c, b: b, hook: h}
}

// in runs fn as a sim process and completes the simulation.
func (h *harness) in(t *testing.T, fn func(p *sim.Proc)) {
	t.Helper()
	h.e.Go("test", func(p *sim.Proc) {
		// Stop via defer so a t.Fatal inside fn still ends the run.
		defer h.e.Stop()
		fn(p)
	})
	if err := h.e.Run(); err != nil {
		t.Fatal(err)
	}
}

func key(ino, idx uint64) PageKey { return PageKey{FS: 1, Ino: ino, Index: idx} }

func TestInsertLookupEvents(t *testing.T) {
	h := newHarness(10)
	h.in(t, func(p *sim.Proc) {
		pg := h.c.Insert(p, key(1, 0), 7)
		if pg.Version != 7 || pg.Dirty {
			t.Errorf("page = %+v", pg)
		}
		if got, ok := h.c.Lookup(key(1, 0)); !ok || got != pg {
			t.Error("Lookup failed")
		}
		if _, ok := h.c.Lookup(key(1, 1)); ok {
			t.Error("Lookup of absent page succeeded")
		}
		// Re-insert is idempotent and fires no second Added.
		h.c.Insert(p, key(1, 0), 99)
		if pg.Version != 7 {
			t.Error("re-insert must not clobber version")
		}
	})
	if h.hook.byType[EventAdded] != 1 {
		t.Errorf("Added events = %d, want 1", h.hook.byType[EventAdded])
	}
	if h.c.Stats().Hits != 1 || h.c.Stats().Misses != 1 {
		t.Errorf("stats = %+v", *h.c.Stats())
	}
}

func TestLRUEviction(t *testing.T) {
	h := newHarness(3)
	h.in(t, func(p *sim.Proc) {
		h.c.Insert(p, key(1, 0), 0)
		h.c.Insert(p, key(1, 1), 0)
		h.c.Insert(p, key(1, 2), 0)
		h.c.Lookup(key(1, 0)) // promote 0; 1 is now coldest
		h.c.Insert(p, key(1, 3), 0)
		if h.c.Contains(key(1, 1)) {
			t.Error("coldest page (1,1) should have been evicted")
		}
		for _, idx := range []uint64{0, 2, 3} {
			if !h.c.Contains(key(1, idx)) {
				t.Errorf("page (1,%d) should remain", idx)
			}
		}
	})
	if h.hook.byType[EventRemoved] != 1 {
		t.Errorf("Removed events = %d, want 1", h.hook.byType[EventRemoved])
	}
	if h.c.Stats().Evictions != 1 {
		t.Errorf("Evictions = %d", h.c.Stats().Evictions)
	}
}

func TestEvictionPrefersClean(t *testing.T) {
	h := newHarness(3)
	h.in(t, func(p *sim.Proc) {
		a := h.c.Insert(p, key(1, 0), 0)
		h.c.Insert(p, key(1, 1), 0)
		h.c.Insert(p, key(1, 2), 0)
		h.c.MarkDirty(a, 1) // dirtying (1,0) doesn't change LRU position
		h.c.Insert(p, key(1, 3), 0)
		if !h.c.Contains(key(1, 0)) {
			t.Error("dirty coldest page should be skipped by reclaim")
		}
		if h.c.Contains(key(1, 1)) {
			t.Error("clean (1,1) should have been evicted instead")
		}
	})
	if h.b.pagesWritten != 0 {
		t.Error("no writeback should have occurred")
	}
}

func TestAllDirtyForcesWriteback(t *testing.T) {
	h := newHarness(2)
	h.in(t, func(p *sim.Proc) {
		a := h.c.Insert(p, key(1, 0), 0)
		b := h.c.Insert(p, key(1, 1), 0)
		h.c.MarkDirty(a, 1)
		h.c.MarkDirty(b, 1)
		h.c.Insert(p, key(1, 2), 0)
		if h.c.Len() != 2 {
			t.Errorf("Len = %d", h.c.Len())
		}
	})
	// Reclaim under all-dirty pressure writes back the victim's whole file
	// in one batch (both pages here) before evicting the coldest.
	if h.b.pagesWritten != 2 {
		t.Errorf("pagesWritten = %d, want the victim file's 2 dirty pages", h.b.pagesWritten)
	}
	if h.c.Stats().DirtyEvictions != 1 {
		t.Errorf("DirtyEvictions = %d", h.c.Stats().DirtyEvictions)
	}
	if h.hook.byType[EventFlushed] != 2 {
		t.Errorf("Flushed = %d", h.hook.byType[EventFlushed])
	}
}

func TestDirtyFlushCycle(t *testing.T) {
	h := newHarness(10)
	h.in(t, func(p *sim.Proc) {
		pg := h.c.Insert(p, key(1, 0), 1)
		h.c.MarkDirty(pg, 2)
		h.c.MarkDirty(pg, 3) // second dirty: no extra event
		if h.c.DirtyLen() != 1 {
			t.Errorf("DirtyLen = %d", h.c.DirtyLen())
		}
		// Wait past dirty expire + writeback interval for the flusher.
		p.Sleep(40 * sim.Second)
		if pg.Dirty {
			t.Error("page still dirty after expire")
		}
		if pg.Version != 3 {
			t.Errorf("version = %d", pg.Version)
		}
	})
	if h.hook.byType[EventDirtied] != 1 {
		t.Errorf("Dirtied = %d, want 1", h.hook.byType[EventDirtied])
	}
	if h.hook.byType[EventFlushed] != 1 {
		t.Errorf("Flushed = %d, want 1", h.hook.byType[EventFlushed])
	}
	if h.b.pagesWritten != 1 {
		t.Errorf("pagesWritten = %d", h.b.pagesWritten)
	}
}

func TestFlusherHonoursDirtyExpire(t *testing.T) {
	h := newHarness(10)
	h.in(t, func(p *sim.Proc) {
		pg := h.c.Insert(p, key(1, 0), 1)
		h.c.MarkDirty(pg, 2)
		p.Sleep(10 * sim.Second) // several flusher runs, but page is young
		if !pg.Dirty {
			t.Error("page flushed before dirty expire")
		}
	})
}

func TestSyncFileImmediate(t *testing.T) {
	h := newHarness(10)
	h.in(t, func(p *sim.Proc) {
		for i := uint64(0); i < 4; i++ {
			pg := h.c.Insert(p, key(5, i), 1)
			h.c.MarkDirty(pg, 2)
		}
		pg := h.c.Insert(p, key(6, 0), 1)
		h.c.MarkDirty(pg, 2)
		if err := h.c.SyncFile(p, 1, 5); err != nil {
			t.Fatal(err)
		}
		if h.c.DirtyLen() != 1 {
			t.Errorf("DirtyLen = %d, want only file 6's page", h.c.DirtyLen())
		}
	})
	if h.b.pagesWritten != 4 {
		t.Errorf("pagesWritten = %d, want 4", h.b.pagesWritten)
	}
}

func TestSyncAll(t *testing.T) {
	h := newHarness(10)
	h.in(t, func(p *sim.Proc) {
		for i := uint64(0); i < 3; i++ {
			pg := h.c.Insert(p, key(i+1, 0), 1)
			h.c.MarkDirty(pg, 2)
		}
		h.c.Sync(p)
		if h.c.DirtyLen() != 0 {
			t.Errorf("DirtyLen = %d", h.c.DirtyLen())
		}
	})
}

func TestRemoveFile(t *testing.T) {
	h := newHarness(10)
	h.in(t, func(p *sim.Proc) {
		for i := uint64(0); i < 3; i++ {
			h.c.Insert(p, key(7, i), 1)
		}
		pg := h.c.Insert(p, key(7, 1), 1)
		h.c.MarkDirty(pg, 2)
		if n := h.c.RemoveFile(1, 7); n != 3 {
			t.Errorf("RemoveFile = %d, want 3", n)
		}
		if h.c.FilePages(1, 7) != 0 {
			t.Error("file pages remain")
		}
		if h.c.DirtyLen() != 0 {
			t.Error("dirty page not dropped with file")
		}
	})
	if h.b.pagesWritten != 0 {
		t.Error("file deletion must not write back")
	}
	if h.hook.byType[EventRemoved] != 3 {
		t.Errorf("Removed = %d", h.hook.byType[EventRemoved])
	}
}

func TestIterateFileOrder(t *testing.T) {
	h := newHarness(20)
	h.in(t, func(p *sim.Proc) {
		for _, i := range []uint64{5, 1, 3, 2, 4} {
			h.c.Insert(p, key(9, i), 1)
		}
		h.c.Insert(p, key(8, 0), 1)
		var got []uint64
		h.c.IterateFile(1, 9, func(pg *Page) bool {
			got = append(got, pg.Key.Index)
			return true
		})
		want := []uint64{1, 2, 3, 4, 5}
		if len(got) != len(want) {
			t.Fatalf("got %v", got)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("got %v, want %v", got, want)
			}
		}
		if h.c.FilePages(1, 9) != 5 {
			t.Errorf("FilePages = %d", h.c.FilePages(1, 9))
		}
	})
}

func TestIterateWholeCache(t *testing.T) {
	h := newHarness(20)
	h.in(t, func(p *sim.Proc) {
		h.c.Insert(p, key(2, 1), 1)
		h.c.Insert(p, key(1, 5), 1)
		h.c.Insert(p, key(1, 2), 1)
		var got []PageKey
		h.c.Iterate(func(pg *Page) bool {
			got = append(got, pg.Key)
			return true
		})
		if len(got) != 3 {
			t.Fatalf("got %d pages", len(got))
		}
		if got[0] != key(1, 2) || got[1] != key(1, 5) || got[2] != key(2, 1) {
			t.Errorf("order = %v", got)
		}
	})
}

func TestRedirtiedPageStaysDirty(t *testing.T) {
	e := sim.New(1)
	c := New(e, Config{CapacityPages: 10, DirtyExpire: sim.Second, WritebackInterval: sim.Second})
	slow := &slowBackend{e: e, delay: 500 * sim.Millisecond}
	c.RegisterFS(1, slow)
	redirtied := false
	e.Go("test", func(p *sim.Proc) {
		pg := c.Insert(p, key(1, 0), 1)
		c.MarkDirty(pg, 2)
		// The flusher starts writing back v2 at t=1s and finishes at
		// t=1.5s. Re-dirty mid-writeback at t=1.2s.
		p.Sleep(1200 * sim.Millisecond)
		c.MarkDirty(pg, 3)
		redirtied = true
		p.Sleep(400 * sim.Millisecond) // writeback of v2 has completed
		if !pg.Dirty {
			t.Error("page re-dirtied during writeback must stay dirty")
		}
		if pg.Version != 3 {
			t.Errorf("version = %d, want 3", pg.Version)
		}
		e.Stop()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !redirtied {
		t.Fatal("test never reached redirty point")
	}
}

type slowBackend struct {
	e     *sim.Engine
	delay sim.Time
}

func (b *slowBackend) WritebackPages(p *sim.Proc, ino uint64, indices []uint64) (int, error) {
	p.Sleep(b.delay)
	return len(indices), nil
}

func TestRemoveHook(t *testing.T) {
	h := newHarness(10)
	h.c.RemoveHook(h.hook)
	h.in(t, func(p *sim.Proc) {
		h.c.Insert(p, key(1, 0), 1)
	})
	if len(h.hook.events) != 0 {
		t.Errorf("hook still received %v", h.hook.events)
	}
}

// TestQuickResidencyInvariant property: after any sequence of inserts and
// removes, Len equals the number of distinct keys present, never exceeds
// capacity, and per-file counts sum to Len.
func TestQuickResidencyInvariant(t *testing.T) {
	const capacity = 16
	f := func(ops []struct {
		Ino uint8
		Idx uint8
		Del bool
	}) bool {
		e := sim.New(1)
		c := New(e, DefaultConfig(capacity))
		c.RegisterFS(1, &nullBackend{})
		ok := true
		e.Go("drive", func(p *sim.Proc) {
			for _, op := range ops {
				k := PageKey{1, uint64(op.Ino % 4), uint64(op.Idx % 64)}
				if op.Del {
					c.Remove(k)
				} else {
					c.Insert(p, k, 1)
				}
				if c.Len() > capacity {
					ok = false
					return
				}
			}
			sum := 0
			for ino := uint64(0); ino < 4; ino++ {
				sum += c.FilePages(1, ino)
			}
			if sum != c.Len() {
				ok = false
			}
			e.Stop()
		})
		if err := e.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEventTypeString(t *testing.T) {
	names := map[EventType]string{
		EventAdded: "Added", EventRemoved: "Removed",
		EventDirtied: "Dirtied", EventFlushed: "Flushed",
	}
	for ev, want := range names {
		if ev.String() != want {
			t.Errorf("%d.String() = %q", ev, ev.String())
		}
	}
}

// keepOdd is a test advisor that protects odd page indices.
type keepOdd struct{}

func (keepOdd) KeepPage(pg *Page) bool { return pg.Key.Index%2 == 1 }

func TestAdvisorBiasesEviction(t *testing.T) {
	h := newHarness(4)
	h.c.SetAdvisor(keepOdd{})
	h.in(t, func(p *sim.Proc) {
		for i := uint64(0); i < 4; i++ {
			h.c.Insert(p, key(1, i), 0)
		}
		// Insert a 5th page: the coldest NON-advised page (index 0) must
		// be evicted, not the colder odd ones... index 0 is the coldest
		// anyway; touch it so index 1 (advised) becomes coldest.
		h.c.Lookup(key(1, 0))
		h.c.Insert(p, key(1, 4), 0)
		if !h.c.Contains(key(1, 1)) {
			t.Error("advised page (1,1) was evicted despite alternatives")
		}
		if h.c.Contains(key(1, 2)) {
			t.Error("non-advised (1,2) should have been the victim")
		}
	})
	if h.c.Stats().AdvisorDeferrals == 0 {
		t.Error("no deferrals counted")
	}
}

func TestAdvisorFallbackWhenAllAdvised(t *testing.T) {
	h := newHarness(2)
	h.c.SetAdvisor(keepAll{})
	h.in(t, func(p *sim.Proc) {
		h.c.Insert(p, key(1, 0), 0)
		h.c.Insert(p, key(1, 1), 0)
		h.c.Insert(p, key(1, 2), 0) // must still fit: advice defers, not pins
		if h.c.Len() != 2 {
			t.Errorf("Len = %d", h.c.Len())
		}
		if !h.c.Contains(key(1, 2)) {
			t.Error("new page not inserted")
		}
	})
}

type keepAll struct{}

func (keepAll) KeepPage(pg *Page) bool { return true }

// funcHook adapts a closure to the Hook interface.
type funcHook struct {
	fn func(ev EventType, pg *Page)
}

func (h *funcHook) PageEvent(ev EventType, pg *Page) { h.fn(ev, pg) }

// TestRemoveHookDuringDispatch is the regression test for hook removal
// from inside a PageEvent callback. With a splice-under-iteration
// implementation, hook A removing itself shifts hook B into A's slot
// and the dispatch loop skips B for the in-flight event. Copy-on-write
// removal must deliver the current event to every hook that was
// registered when it fired, and stop delivering to the removed hook
// afterwards.
func TestRemoveHookDuringDispatch(t *testing.T) {
	h := newHarness(10)
	h.c.RemoveHook(h.hook) // drop the harness hook; this test counts its own
	var aCalls, bCalls int
	var a, b *funcHook
	a = &funcHook{fn: func(ev EventType, pg *Page) {
		aCalls++
		h.c.RemoveHook(a) // self-removal mid-dispatch
	}}
	b = &funcHook{fn: func(ev EventType, pg *Page) { bCalls++ }}
	h.c.AddHook(a)
	h.c.AddHook(b)
	h.in(t, func(p *sim.Proc) {
		h.c.Insert(p, key(1, 0), 1) // fires Added: a removes itself, b must still see it
		h.c.Insert(p, key(1, 1), 1) // a is gone, only b sees it
	})
	if aCalls != 1 {
		t.Errorf("removed hook called %d times, want 1 (the in-flight event only)", aCalls)
	}
	if bCalls != 2 {
		t.Errorf("surviving hook called %d times, want 2 (must not be skipped by the removal)", bCalls)
	}
}

// TestRemoveHookRefreshesInterest: removing the only interested hook
// must drop the cache's interest mask back to zero so later events are
// filtered before dispatch.
func TestRemoveHookRefreshesInterest(t *testing.T) {
	h := newHarness(10)
	h.c.RemoveHook(h.hook)
	if h.c.interest != 0 {
		t.Fatalf("interest = %#x after removing only hook, want 0", h.c.interest)
	}
	base := h.c.Stats().EventsFiltered
	h.in(t, func(p *sim.Proc) {
		h.c.Insert(p, key(1, 0), 1)
	})
	if got := h.c.Stats().EventsFiltered - base; got == 0 {
		t.Error("event was dispatched despite empty interest mask")
	}
}

// TestAdvisorFallbackEvictsColdest pins the fallback choice: when every
// clean page in the scan window is advised, pickVictim must evict the
// COLDEST advised page (the LRU tail), not an arbitrary one — advice
// defers eviction, it does not reorder the LRU among advised pages.
func TestAdvisorFallbackEvictsColdest(t *testing.T) {
	h := newHarness(4)
	h.c.SetAdvisor(keepAll{})
	h.in(t, func(p *sim.Proc) {
		for i := uint64(0); i < 4; i++ {
			h.c.Insert(p, key(1, i), 0)
		}
		// Promote 0 and 1; coldest is now (1,2).
		h.c.Lookup(key(1, 0))
		h.c.Lookup(key(1, 1))
		h.c.Insert(p, key(1, 4), 0)
		if h.c.Contains(key(1, 2)) {
			t.Error("coldest advised page (1,2) survived; fallback picked a warmer victim")
		}
		for _, idx := range []uint64{0, 1, 3, 4} {
			if !h.c.Contains(key(1, idx)) {
				t.Errorf("page (1,%d) evicted; want only the coldest (1,2)", idx)
			}
		}
	})
}

// TestAdvisorDeferralsAccounting pins the counter semantics: one
// deferral per reclaim scan that passes over at least one advised clean
// page, whether or not the scan ends up using the fallback. Scans that
// find a non-advised victim before any advised page count nothing.
func TestAdvisorDeferralsAccounting(t *testing.T) {
	h := newHarness(2)
	h.c.SetAdvisor(keepOdd{})
	h.in(t, func(p *sim.Proc) {
		// Cache: [0, 1]; coldest is (1,0), not advised -> no deferral.
		h.c.Insert(p, key(1, 0), 0)
		h.c.Insert(p, key(1, 1), 0)
		h.c.Insert(p, key(1, 2), 0)
		if got := h.c.Stats().AdvisorDeferrals; got != 0 {
			t.Errorf("AdvisorDeferrals = %d after clean-victim scan, want 0", got)
		}
		// Cache: [1, 2]; coldest is (1,1), advised, so the scan defers
		// once and evicts (1,2) instead.
		h.c.Insert(p, key(1, 4), 0)
		if got := h.c.Stats().AdvisorDeferrals; got != 1 {
			t.Errorf("AdvisorDeferrals = %d after one deferring scan, want 1", got)
		}
		if !h.c.Contains(key(1, 1)) || h.c.Contains(key(1, 2)) {
			t.Error("deferring scan evicted the wrong page")
		}
		// Cache: [1, 4]; coldest (1,1) advised, (1,4) clean non-advised:
		// defers again (exactly once, not once per advised page seen).
		h.c.Insert(p, key(1, 3), 0)
		if got := h.c.Stats().AdvisorDeferrals; got != 2 {
			t.Errorf("AdvisorDeferrals = %d, want 2", got)
		}
		// Cache: [1, 3], both advised -> fallback path also counts one.
		h.c.Insert(p, key(1, 6), 0)
		if got := h.c.Stats().AdvisorDeferrals; got != 3 {
			t.Errorf("AdvisorDeferrals = %d after fallback scan, want 3", got)
		}
	})
}

// TestEvictionRaceReinsert pins the eviction-race contract of the page
// arena: while reclaim is blocked writing back its LRU-tail candidate, a
// concurrent process may evict that page and re-insert the same key.
// The raced double-eviction must re-report the removal (both parties
// observed it) but leave the freshly inserted page fully intact — in
// the key map, the file index, and the dirty tree — so a later SyncFile
// cannot lose its data.
func TestEvictionRaceReinsert(t *testing.T) {
	e := sim.New(1)
	c := New(e, DefaultConfig(2))
	b := &slowBackend{e: e, delay: 10 * sim.Millisecond}
	c.RegisterFS(1, b)
	h := newRecordingHook()
	c.AddHook(h)
	k1, k2, k3 := key(1, 0), key(1, 1), key(2, 0)
	e.Go("inserter", func(p *sim.Proc) {
		pg := c.Insert(p, k1, 1)
		c.MarkDirty(pg, 1)
		pg = c.Insert(p, k2, 2)
		c.MarkDirty(pg, 2)
		// Cache full, everything dirty: this insert blocks in reclaim
		// writing back the tail (k1).
		c.Insert(p, k3, 3)
	})
	e.Go("racer", func(p *sim.Proc) {
		p.Sleep(sim.Millisecond) // let the inserter block first
		c.Remove(k1)
		pg := c.Insert(p, k1, 10)
		c.MarkDirty(pg, 10)
	})
	e.Go("stopper", func(p *sim.Proc) {
		p.Sleep(sim.Second)
		e.Stop()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !c.Contains(k1) {
		t.Fatal("re-inserted page lost by raced double-eviction")
	}
	pg, ok := c.Lookup(k1)
	if !ok || pg.Version != 10 {
		t.Fatalf("Lookup(k1) = %v, %v; want the re-inserted page (version 10)", pg, ok)
	}
	if !pg.Dirty {
		t.Error("re-inserted page lost its dirty bit")
	}
	// The re-inserted page must still be reachable through the per-file
	// index, or SyncFile would silently skip it.
	seen := false
	c.IterateFile(1, 1, func(p *Page) bool {
		if p.Key == k1 && p.Version == 10 {
			seen = true
		}
		return true
	})
	if !seen {
		t.Error("re-inserted page missing from the per-file index")
	}
}
