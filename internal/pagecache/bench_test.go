package pagecache

import (
	"testing"

	"duet/internal/sim"
)

// benchCache builds a cache without hooks for hot-path benchmarks. The
// engine never runs; benchmark bodies call cache methods from a fake
// process context, which is fine as long as nothing blocks (capacity is
// kept above the working set so Insert never evicts through writeback,
// and flushes use the allocation-free null backend).
func benchCache(capacity int) (*Cache, *sim.Engine) {
	e := sim.New(1)
	c := New(e, DefaultConfig(capacity))
	c.RegisterFS(1, &nullBackend{})
	return c, e
}

// run executes fn inside a sim process and drives the engine to
// completion, so blocking cache paths (writeback) work.
func run(b *testing.B, e *sim.Engine, fn func(p *sim.Proc)) {
	b.Helper()
	e.Go("bench", func(p *sim.Proc) {
		defer e.Stop()
		fn(p)
	})
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkInsertLookupDirtyFlush cycles a page through the full hot
// path: insert, lookup (LRU promotion), dirty (rbtree insert), sync
// (writeback + flush event), remove. Steady state must not allocate:
// pages recycle through the arena, dirty-tree nodes through the rbtree
// free list, and writeback staging through the batch pool.
func BenchmarkInsertLookupDirtyFlush(b *testing.B) {
	c, e := benchCache(4096)
	run(b, e, func(p *sim.Proc) {
		// Warm the pools.
		for i := 0; i < 128; i++ {
			cycle(p, c, uint64(i%4))
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cycle(p, c, uint64(i%4))
		}
	})
}

func cycle(p *sim.Proc, c *Cache, ino uint64) {
	k := PageKey{FS: 1, Ino: ino, Index: 7}
	pg := c.Insert(p, k, 1)
	pg, _ = c.Lookup(k)
	c.MarkDirty(pg, 2)
	_ = c.SyncFile(p, k.FS, k.Ino)
	c.Remove(k)
}

// BenchmarkInsertSequential measures streaming inserts into a full
// cache: every insert evicts the coldest clean page and recycles its
// struct, the common case for scan-heavy workloads.
func BenchmarkInsertSequential(b *testing.B) {
	c, e := benchCache(1024)
	run(b, e, func(p *sim.Proc) {
		for i := 0; i < 2048; i++ {
			c.Insert(p, PageKey{FS: 1, Ino: 1, Index: uint64(i)}, 1)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Insert(p, PageKey{FS: 1, Ino: 1, Index: uint64(2048 + i)}, 1)
		}
	})
}

// BenchmarkLookupHit measures the promote-on-hit path.
func BenchmarkLookupHit(b *testing.B) {
	c, e := benchCache(1024)
	run(b, e, func(p *sim.Proc) {
		for i := 0; i < 512; i++ {
			c.Insert(p, PageKey{FS: 1, Ino: 1, Index: uint64(i)}, 1)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Lookup(PageKey{FS: 1, Ino: 1, Index: uint64(i % 512)})
		}
	})
}

// countingInterestHook reports no interest in any event type; emit must
// skip it entirely.
type countingInterestHook struct {
	interest uint8
	calls    int64
}

func (h *countingInterestHook) PageEvent(ev EventType, pg *Page) { h.calls++ }
func (h *countingInterestHook) EventInterest() uint8             { return h.interest }

// BenchmarkEmitNoInterest measures the event hot path with a hook
// installed whose interest mask is empty — the baseline configuration
// of every experiment (Duet attached, no sessions). The dirty/flush
// cycle must stay allocation-free and never call the hook.
func BenchmarkEmitNoInterest(b *testing.B) {
	c, e := benchCache(4096)
	h := &countingInterestHook{interest: 0}
	c.AddHook(h)
	run(b, e, func(p *sim.Proc) {
		for i := 0; i < 128; i++ {
			cycle(p, c, uint64(i%4))
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cycle(p, c, uint64(i%4))
		}
	})
	if h.calls != 0 {
		b.Fatalf("hook called %d times despite empty interest", h.calls)
	}
}

// BenchmarkEmitAllInterest is the same cycle with a hook that wants
// every event, isolating the dispatch cost itself.
func BenchmarkEmitAllInterest(b *testing.B) {
	c, e := benchCache(4096)
	h := &countingInterestHook{interest: AllEvents}
	c.AddHook(h)
	run(b, e, func(p *sim.Proc) {
		for i := 0; i < 128; i++ {
			cycle(p, c, uint64(i%4))
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cycle(p, c, uint64(i%4))
		}
	})
	if h.calls == 0 {
		b.Fatal("hook never called")
	}
}

// TestHotPathAllocFree asserts the steady-state allocation contract the
// arena, rbtree free list, and batch pool exist to provide: zero
// allocations per insert/lookup/dirty/flush/remove cycle, with and
// without an uninterested hook installed. CI runs this as a regression
// gate (see .github/workflows/ci.yml).
func TestHotPathAllocFree(t *testing.T) {
	for _, tc := range []struct {
		name string
		hook bool
	}{{"bare", false}, {"uninterested-hook", true}} {
		t.Run(tc.name, func(t *testing.T) {
			c, e := benchCache(4096)
			h := &countingInterestHook{interest: 0}
			if tc.hook {
				c.AddHook(h)
			}
			var avg float64
			e.Go("alloc-test", func(p *sim.Proc) {
				defer e.Stop()
				for i := 0; i < 128; i++ {
					cycle(p, c, uint64(i%4))
				}
				avg = testing.AllocsPerRun(200, func() {
					cycle(p, c, 1)
				})
			})
			if err := e.Run(); err != nil {
				t.Fatal(err)
			}
			if avg != 0 {
				t.Errorf("hot path allocates %.1f allocs/op, want 0", avg)
			}
			if h.calls != 0 {
				t.Errorf("uninterested hook called %d times", h.calls)
			}
		})
	}
}

// TestEvictionAllocFree asserts that steady-state eviction (insert into
// a full cache, clean victim) does not allocate either: the evicted
// page's struct must be recycled into the one being inserted.
func TestEvictionAllocFree(t *testing.T) {
	c, e := benchCache(1024)
	var avg float64
	e.Go("alloc-test", func(p *sim.Proc) {
		defer e.Stop()
		next := uint64(0)
		for ; next < 2048; next++ {
			c.Insert(p, PageKey{FS: 1, Ino: 1, Index: next}, 1)
		}
		avg = testing.AllocsPerRun(200, func() {
			c.Insert(p, PageKey{FS: 1, Ino: 1, Index: next}, 1)
			next++
		})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if avg != 0 {
		t.Errorf("eviction path allocates %.1f allocs/op, want 0", avg)
	}
}
