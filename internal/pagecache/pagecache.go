// Package pagecache simulates the operating system page cache that Duet
// hooks into.
//
// Pages are keyed by (filesystem, inode, page index) and managed with a
// global LRU under a fixed page budget. Dirty pages are written back by a
// flusher process after a dirty-expire interval, mirroring the Linux
// writeback behaviour the paper depends on for Flushed events.
//
// The cache does not store page contents. Each page carries a Version
// stamp; content is defined as a deterministic function of
// (inode, index, version), which preserves checksum and comparison
// semantics (a write changes the version, so checksums change) without
// allocating 4 KiB per page.
//
// Duet attaches to the cache through the Hook interface and receives the
// four page events of the paper's Table 2: Added, Removed, Dirtied,
// Flushed.
package pagecache

import (
	"container/list"
	"fmt"
	"sort"

	"duet/internal/rbtree"
	"duet/internal/sim"
)

// EventType is a page-cache event, as in Table 2 of the paper.
type EventType uint8

const (
	// EventAdded fires when a page is inserted into the cache.
	EventAdded EventType = iota
	// EventRemoved fires when a page leaves the cache (eviction, file
	// deletion, truncation).
	EventRemoved
	// EventDirtied fires when a clean page is marked dirty.
	EventDirtied
	// EventFlushed fires when a dirty page is written back and its dirty
	// bit cleared.
	EventFlushed
)

// String returns the event name.
func (e EventType) String() string {
	switch e {
	case EventAdded:
		return "Added"
	case EventRemoved:
		return "Removed"
	case EventDirtied:
		return "Dirtied"
	case EventFlushed:
		return "Flushed"
	}
	return fmt.Sprintf("EventType(%d)", uint8(e))
}

// FSID identifies a filesystem (address space owner) within the machine.
type FSID uint32

// PageKey identifies a cached page.
type PageKey struct {
	FS    FSID
	Ino   uint64
	Index uint64 // page index within the file
}

func keyLess(a, b PageKey) bool {
	if a.FS != b.FS {
		return a.FS < b.FS
	}
	if a.Ino != b.Ino {
		return a.Ino < b.Ino
	}
	return a.Index < b.Index
}

// FileKey identifies a file within the machine.
type FileKey struct {
	FS  FSID
	Ino uint64
}

func fileKeyLess(a, b FileKey) bool {
	if a.FS != b.FS {
		return a.FS < b.FS
	}
	return a.Ino < b.Ino
}

// Page is a cached page. Fields are read-only outside this package.
type Page struct {
	Key     PageKey
	Version uint64 // content stamp
	Dirty   bool
	DirtyAt sim.Time

	elem *list.Element
}

// Hook receives page events. Duet implements this interface.
type Hook interface {
	PageEvent(ev EventType, pg *Page)
}

// EvictionAdvisor biases reclaim: pages the advisor wants kept are passed
// over while other clean victims exist within the reclaim scan window.
// This implements the paper's informed-cache-replacement future work
// (§2): Duet can advise keeping pages whose maintenance hints have not
// been consumed yet.
type EvictionAdvisor interface {
	// KeepPage reports whether eviction of this page should be deferred.
	KeepPage(pg *Page) bool
}

// Backend writes dirty pages back to storage on behalf of the cache. Each
// filesystem registers one.
type Backend interface {
	// WritebackPages performs device writes for the (sorted, same-inode)
	// page indices. It is called from the flusher or eviction path and may
	// block in virtual time.
	WritebackPages(p *sim.Proc, ino uint64, indices []uint64) error
}

// Config holds cache tunables.
type Config struct {
	// CapacityPages is the memory budget in pages.
	CapacityPages int
	// DirtyExpire is how long a page stays dirty before the flusher
	// writes it back (Linux dirty_expire_centisecs, default 30s).
	DirtyExpire sim.Time
	// WritebackInterval is how often the flusher runs (Linux
	// dirty_writeback_centisecs, default 5s).
	WritebackInterval sim.Time
	// DirtyBackgroundRatio kicks the flusher immediately (ignoring
	// DirtyExpire) when dirty pages exceed this fraction of the cache,
	// like Linux dirty_background_ratio. Default 0.2.
	DirtyBackgroundRatio float64
}

// DefaultConfig returns Linux-like writeback parameters for a cache of the
// given size.
func DefaultConfig(capacityPages int) Config {
	return Config{
		CapacityPages:     capacityPages,
		DirtyExpire:       30 * sim.Second,
		WritebackInterval: 5 * sim.Second,
	}
}

// Stats tracks cache activity.
type Stats struct {
	Hits, Misses     int64
	Inserts          int64
	Evictions        int64
	DirtyEvictions   int64 // evictions that forced a synchronous writeback
	WritebackPages   int64
	RemovedByDelete  int64
	EventsDispatched int64
	AdvisorDeferrals int64 // reclaim scans that passed over advised pages
}

// Cache is the simulated page cache.
type Cache struct {
	eng      *sim.Engine
	cfg      Config
	pages    map[PageKey]*Page
	lru      *list.List // front = most recently used
	dirty    *rbtree.Tree[PageKey, *Page]
	files    map[FileKey]map[uint64]*Page // per-file page index
	backends map[FSID]Backend
	hooks    []Hook
	advisor  EvictionAdvisor
	stats    Stats

	flusherKick *sim.WaitQueue
}

// New creates a cache and starts its flusher process on e.
func New(e *sim.Engine, cfg Config) *Cache {
	if cfg.CapacityPages <= 0 {
		panic("pagecache: non-positive capacity")
	}
	if cfg.DirtyExpire <= 0 {
		cfg.DirtyExpire = 30 * sim.Second
	}
	if cfg.WritebackInterval <= 0 {
		cfg.WritebackInterval = 5 * sim.Second
	}
	if cfg.DirtyBackgroundRatio <= 0 {
		cfg.DirtyBackgroundRatio = 0.2
	}
	c := &Cache{
		eng:      e,
		cfg:      cfg,
		pages:    make(map[PageKey]*Page),
		lru:      list.New(),
		dirty:    rbtree.New[PageKey, *Page](keyLess),
		files:    make(map[FileKey]map[uint64]*Page),
		backends: make(map[FSID]Backend),
	}
	c.flusherKick = sim.NewWaitQueue(e)
	e.Go("pagecache-flusher", c.flusher)
	return c
}

// Config returns the cache configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a pointer to live statistics.
func (c *Cache) Stats() *Stats { return &c.stats }

// Len returns the number of cached pages.
func (c *Cache) Len() int { return len(c.pages) }

// DirtyLen returns the number of dirty pages.
func (c *Cache) DirtyLen() int { return c.dirty.Len() }

// RegisterFS attaches the writeback backend for a filesystem.
func (c *Cache) RegisterFS(fs FSID, b Backend) { c.backends[fs] = b }

// AddHook registers an event hook (Duet).
func (c *Cache) AddHook(h Hook) { c.hooks = append(c.hooks, h) }

// SetAdvisor installs (or, with nil, removes) the eviction advisor.
func (c *Cache) SetAdvisor(a EvictionAdvisor) { c.advisor = a }

// RemoveHook detaches a previously added hook.
func (c *Cache) RemoveHook(h Hook) {
	for i, hh := range c.hooks {
		if hh == h {
			c.hooks = append(c.hooks[:i], c.hooks[i+1:]...)
			return
		}
	}
}

func (c *Cache) emit(ev EventType, pg *Page) {
	c.stats.EventsDispatched++
	for _, h := range c.hooks {
		h.PageEvent(ev, pg)
	}
}

// Lookup returns the page if cached, promoting it in the LRU.
func (c *Cache) Lookup(key PageKey) (*Page, bool) {
	pg, ok := c.pages[key]
	if !ok {
		c.stats.Misses++
		return nil, false
	}
	c.stats.Hits++
	c.lru.MoveToFront(pg.elem)
	return pg, true
}

// Peek returns the page if cached without perturbing the LRU or stats.
func (c *Cache) Peek(key PageKey) (*Page, bool) {
	pg, ok := c.pages[key]
	return pg, ok
}

// Contains reports whether the page is cached, without LRU effects.
func (c *Cache) Contains(key PageKey) bool {
	_, ok := c.pages[key]
	return ok
}

// Insert adds a clean page with the given content version, evicting as
// needed, and fires Added. If the page is already present it is promoted
// and returned unchanged. Insert may block (eviction of a dirty page
// forces a synchronous writeback), so it needs the calling process.
func (c *Cache) Insert(p *sim.Proc, key PageKey, version uint64) *Page {
	if pg, ok := c.pages[key]; ok {
		c.lru.MoveToFront(pg.elem)
		return pg
	}
	c.makeRoom(p)
	pg := &Page{Key: key, Version: version}
	pg.elem = c.lru.PushFront(pg)
	c.pages[key] = pg
	fk := FileKey{key.FS, key.Ino}
	fp := c.files[fk]
	if fp == nil {
		fp = make(map[uint64]*Page)
		c.files[fk] = fp
	}
	fp[key.Index] = pg
	c.stats.Inserts++
	c.emit(EventAdded, pg)
	return pg
}

// makeRoom evicts pages until there is room for one more.
func (c *Cache) makeRoom(p *sim.Proc) {
	for len(c.pages) >= c.cfg.CapacityPages {
		victim := c.pickVictim()
		if victim == nil {
			// The reclaim window is all dirty: write back the coldest
			// page's whole file (batched into coalesced device writes,
			// as kernel reclaim hands contiguous ranges to writeback)
			// and retry the scan for a clean victim.
			tail := c.lru.Back().Value.(*Page)
			c.stats.DirtyEvictions++
			_ = c.SyncFile(p, tail.Key.FS, tail.Key.Ino)
			victim = c.pickVictim()
			if victim == nil {
				// The file was re-dirtied or empty: fall back to a single
				// forced page writeback.
				c.writebackOne(p, tail)
				victim = tail
			}
		}
		c.removePage(victim, EventRemoved)
		c.stats.Evictions++
	}
}

// pickVictim scans from the LRU tail for a clean page, skipping up to a
// bounded number of dirty pages (approximating kernel reclaim, which
// prefers clean pages). With an advisor installed, advised pages are
// passed over in a first pass; if only advised clean pages remain in the
// scan window, the coldest of them is evicted anyway (advice defers, it
// does not pin — pinning would recreate the memory-pressure problems the
// paper avoids, §3.1).
func (c *Cache) pickVictim() *Page {
	const scanLimit = 128
	var fallback *Page
	e := c.lru.Back()
	for i := 0; e != nil && i < scanLimit; i++ {
		pg := e.Value.(*Page)
		if !pg.Dirty {
			if c.advisor == nil || !c.advisor.KeepPage(pg) {
				return pg
			}
			if fallback == nil {
				fallback = pg
				c.stats.AdvisorDeferrals++
			}
		}
		e = e.Prev()
	}
	return fallback
}

// writebackOne synchronously writes a single dirty page back.
func (c *Cache) writebackOne(p *sim.Proc, pg *Page) {
	b := c.backends[pg.Key.FS]
	if b == nil {
		panic(fmt.Sprintf("pagecache: no backend for fs %d", pg.Key.FS))
	}
	ver := pg.Version
	_ = b.WritebackPages(p, pg.Key.Ino, []uint64{pg.Key.Index})
	c.stats.WritebackPages++
	c.markCleanIf(pg.Key, ver)
}

// removePage drops the page from all indices and fires ev.
func (c *Cache) removePage(pg *Page, ev EventType) {
	delete(c.pages, pg.Key)
	c.lru.Remove(pg.elem)
	if pg.Dirty {
		c.dirty.Delete(pg.Key)
		pg.Dirty = false
	}
	fk := FileKey{pg.Key.FS, pg.Key.Ino}
	if fp := c.files[fk]; fp != nil {
		delete(fp, pg.Key.Index)
		if len(fp) == 0 {
			delete(c.files, fk)
		}
	}
	c.emit(ev, pg)
}

// MarkDirty sets the page's dirty bit and bumps its content version,
// firing Dirtied on the clean-to-dirty transition.
func (c *Cache) MarkDirty(pg *Page, version uint64) {
	pg.Version = version
	if pg.Dirty {
		return
	}
	pg.Dirty = true
	pg.DirtyAt = c.eng.Now()
	c.dirty.Set(pg.Key, pg)
	c.emit(EventDirtied, pg)
	// Dirty-background throttling: too many dirty pages wake the flusher
	// immediately rather than waiting out the expiry interval.
	if float64(c.dirty.Len()) > c.cfg.DirtyBackgroundRatio*float64(c.cfg.CapacityPages) {
		c.flusherKick.WakeAll()
	}
}

// markCleanIf clears the dirty bit if the page is still at the version the
// writeback captured, firing Flushed. Re-dirtied pages stay dirty.
func (c *Cache) markCleanIf(key PageKey, version uint64) {
	pg, ok := c.pages[key]
	if !ok || !pg.Dirty || pg.Version != version {
		return
	}
	pg.Dirty = false
	c.dirty.Delete(key)
	c.emit(EventFlushed, pg)
}

// Remove drops a page (file truncation or deletion), firing Removed.
// Dirty pages are discarded without writeback, matching truncate
// semantics.
func (c *Cache) Remove(key PageKey) bool {
	pg, ok := c.pages[key]
	if !ok {
		return false
	}
	c.removePage(pg, EventRemoved)
	return true
}

// RemoveFile drops every cached page of a file (deletion).
func (c *Cache) RemoveFile(fs FSID, ino uint64) int {
	keys := c.fileKeys(fs, ino)
	for _, k := range keys {
		c.removePage(c.pages[k], EventRemoved)
		c.stats.RemovedByDelete++
	}
	return len(keys)
}

// fileKeys returns the sorted page keys of a file.
func (c *Cache) fileKeys(fs FSID, ino uint64) []PageKey {
	fp := c.files[FileKey{fs, ino}]
	if len(fp) == 0 {
		return nil
	}
	keys := make([]PageKey, 0, len(fp))
	for idx := range fp {
		keys = append(keys, PageKey{fs, ino, idx})
	}
	sortPageKeys(keys)
	return keys
}

func sortPageKeys(keys []PageKey) {
	sort.Slice(keys, func(i, j int) bool { return keyLess(keys[i], keys[j]) })
}

// FilePages returns the number of cached pages of a file.
func (c *Cache) FilePages(fs FSID, ino uint64) int {
	return len(c.files[FileKey{fs, ino}])
}

// IterateFile calls fn for each cached page of a file in index order.
func (c *Cache) IterateFile(fs FSID, ino uint64, fn func(pg *Page) bool) {
	for _, k := range c.fileKeys(fs, ino) {
		if pg, ok := c.pages[k]; ok {
			if !fn(pg) {
				return
			}
		}
	}
}

// Iterate calls fn for every cached page in key order (used by Duet's
// registration scan). It snapshots keys first, so fn may mutate the cache.
func (c *Cache) Iterate(fn func(pg *Page) bool) {
	keys := make([]PageKey, 0, len(c.pages))
	for k := range c.pages {
		keys = append(keys, k)
	}
	sortPageKeys(keys)
	for _, k := range keys {
		if pg, ok := c.pages[k]; ok {
			if !fn(pg) {
				return
			}
		}
	}
}

// SyncFile writes back all dirty pages of one file immediately.
func (c *Cache) SyncFile(p *sim.Proc, fs FSID, ino uint64) error {
	var idx []uint64
	var vers []uint64
	c.IterateFile(fs, ino, func(pg *Page) bool {
		if pg.Dirty {
			idx = append(idx, pg.Key.Index)
			vers = append(vers, pg.Version)
		}
		return true
	})
	if len(idx) == 0 {
		return nil
	}
	b := c.backends[fs]
	if b == nil {
		panic(fmt.Sprintf("pagecache: no backend for fs %d", fs))
	}
	if err := b.WritebackPages(p, ino, idx); err != nil {
		return err
	}
	c.stats.WritebackPages += int64(len(idx))
	for i, ix := range idx {
		c.markCleanIf(PageKey{fs, ino, ix}, vers[i])
	}
	return nil
}

// Sync writes back every dirty page.
func (c *Cache) Sync(p *sim.Proc) {
	c.flushExpired(p, 0)
}

// flusher is the background writeback process. It wakes on its periodic
// interval, or early when the dirty-background threshold is crossed.
func (c *Cache) flusher(p *sim.Proc) {
	for {
		c.eng.Go("pagecache-flusher-timer", func(tp *sim.Proc) {
			tp.Sleep(c.cfg.WritebackInterval)
			c.flusherKick.WakeAll()
		})
		c.flusherKick.Wait(p, "flusher interval")
		if float64(c.dirty.Len()) > c.cfg.DirtyBackgroundRatio*float64(c.cfg.CapacityPages) {
			c.flushExpired(p, 0) // over background ratio: flush regardless of age
		} else {
			c.flushExpired(p, c.cfg.DirtyExpire)
		}
	}
}

// flushExpired writes back dirty pages older than minAge, grouped by file.
func (c *Cache) flushExpired(p *sim.Proc, minAge sim.Time) {
	now := c.eng.Now()
	type batch struct {
		fs   FSID
		ino  uint64
		idx  []uint64
		vers []uint64
	}
	var batches []batch
	var cur *batch
	c.dirty.Ascend(nil, func(k PageKey, pg *Page) bool {
		if now-pg.DirtyAt < minAge {
			return true
		}
		if cur == nil || cur.fs != k.FS || cur.ino != k.Ino {
			batches = append(batches, batch{fs: k.FS, ino: k.Ino})
			cur = &batches[len(batches)-1]
		}
		cur.idx = append(cur.idx, k.Index)
		cur.vers = append(cur.vers, pg.Version)
		return true
	})
	for _, b := range batches {
		be := c.backends[b.fs]
		if be == nil {
			panic(fmt.Sprintf("pagecache: no backend for fs %d", b.fs))
		}
		if err := be.WritebackPages(p, b.ino, b.idx); err != nil {
			continue // transient write errors leave pages dirty for retry
		}
		c.stats.WritebackPages += int64(len(b.idx))
		for i, ix := range b.idx {
			c.markCleanIf(PageKey{b.fs, b.ino, ix}, b.vers[i])
		}
	}
}
