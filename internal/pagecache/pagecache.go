// Package pagecache simulates the operating system page cache that Duet
// hooks into.
//
// Pages are keyed by (filesystem, inode, page index) and managed with a
// global LRU under a fixed page budget. Dirty pages are written back by a
// flusher process after a dirty-expire interval, mirroring the Linux
// writeback behaviour the paper depends on for Flushed events.
//
// The cache does not store page contents. Each page carries a Version
// stamp; content is defined as a deterministic function of
// (inode, index, version), which preserves checksum and comparison
// semantics (a write changes the version, so checksums change) without
// allocating 4 KiB per page.
//
// Duet attaches to the cache through the Hook interface and receives the
// four page events of the paper's Table 2: Added, Removed, Dirtied,
// Flushed.
//
// The hot path is allocation-free in steady state: Page structs live in
// a preallocated arena bounded by CapacityPages and are recycled through
// a free list, the LRU and per-file indices are intrusive linked lists
// threaded through the pages themselves, and writeback batches reuse
// pooled buffers. A *Page handed to a Hook is only valid while the page
// is resident — hooks must not retain it across events (see DESIGN.md).
package pagecache

import (
	"errors"
	"fmt"
	"sort"

	"duet/internal/rbtree"
	"duet/internal/sim"
	"duet/internal/storage"
)

// EventType is a page-cache event, as in Table 2 of the paper.
type EventType uint8

const (
	// EventAdded fires when a page is inserted into the cache.
	EventAdded EventType = iota
	// EventRemoved fires when a page leaves the cache (eviction, file
	// deletion, truncation).
	EventRemoved
	// EventDirtied fires when a clean page is marked dirty.
	EventDirtied
	// EventFlushed fires when a dirty page is written back and its dirty
	// bit cleared.
	EventFlushed

	numEventTypes = 4
)

// String returns the event name.
func (e EventType) String() string {
	switch e {
	case EventAdded:
		return "Added"
	case EventRemoved:
		return "Removed"
	case EventDirtied:
		return "Dirtied"
	case EventFlushed:
		return "Flushed"
	}
	return fmt.Sprintf("EventType(%d)", uint8(e))
}

// AllEvents is the hook-interest bitmask selecting every event type.
const AllEvents uint8 = 1<<numEventTypes - 1

// FSID identifies a filesystem (address space owner) within the machine.
type FSID uint32

// PageKey identifies a cached page.
type PageKey struct {
	FS    FSID
	Ino   uint64
	Index uint64 // page index within the file
}

func keyLess(a, b PageKey) bool {
	if a.FS != b.FS {
		return a.FS < b.FS
	}
	if a.Ino != b.Ino {
		return a.Ino < b.Ino
	}
	return a.Index < b.Index
}

// FileKey identifies a file within the machine.
type FileKey struct {
	FS  FSID
	Ino uint64
}

func fileKeyLess(a, b FileKey) bool {
	if a.FS != b.FS {
		return a.FS < b.FS
	}
	return a.Ino < b.Ino
}

// Page is a cached page. Fields are read-only outside this package.
//
// Pages are arena-allocated and recycled: a *Page is only valid while
// the page is resident in the cache. Hooks receive the pointer for the
// duration of one PageEvent call and must not retain it.
type Page struct {
	Key     PageKey
	Version uint64 // content stamp
	Dirty   bool
	DirtyAt sim.Time

	// Intrusive links. lruPrev/lruNext thread the global LRU (front =
	// most recently used); filePrev/fileNext thread the per-file index
	// in ascending page-index order. fileNext doubles as the arena
	// free-list link while the page is not resident.
	lruPrev, lruNext   *Page
	filePrev, fileNext *Page

	// resident is true while the page is linked into the LRU and its
	// file's index. pins counts in-flight references held across a
	// blocking call (reclaim holding its eviction candidate); a pinned
	// page is not recycled into the arena even after removal, so the
	// holder's pointer stays frozen rather than aliasing a new page.
	resident bool
	pins     int32

	// quarantined marks a dirty page whose writeback failed permanently
	// (storage.ErrWriteFault): it stays dirty but is withheld from the
	// dirty tree, so the flusher stops hammering a dead destination. The
	// data is preserved until Requeue (after repair/remap) or until
	// reclaim is forced to drop it, which is counted in Stats.LostPages.
	quarantined bool
}

// Quarantined reports whether the page is held out of writeback after a
// permanent write fault.
func (pg *Page) Quarantined() bool { return pg.quarantined }

// Hook receives page events. Duet implements this interface.
type Hook interface {
	PageEvent(ev EventType, pg *Page)
}

// InterestReporter is optionally implemented by hooks that can report
// which event types they currently need (a bitmask with bit 1<<ev set
// for each interesting EventType). The cache skips hook dispatch
// entirely for event types no hook is interested in — the paper's §4.1
// framework-side filtering, hoisted in front of the dispatch loop.
// Hooks that do not implement InterestReporter are assumed to want
// every event. Hooks whose interest changes must call
// Cache.RefreshInterest.
type InterestReporter interface {
	EventInterest() uint8
}

// EvictionAdvisor biases reclaim: pages the advisor wants kept are passed
// over while other clean victims exist within the reclaim scan window.
// This implements the paper's informed-cache-replacement future work
// (§2): Duet can advise keeping pages whose maintenance hints have not
// been consumed yet.
type EvictionAdvisor interface {
	// KeepPage reports whether eviction of this page should be deferred.
	KeepPage(pg *Page) bool
}

// Backend writes dirty pages back to storage on behalf of the cache. Each
// filesystem registers one.
type Backend interface {
	// WritebackPages performs device writes for the (sorted, same-inode)
	// page indices. It is called from the flusher or eviction path and may
	// block in virtual time. It returns how many leading entries of
	// indices are durably persisted — len(indices) on success; on a torn
	// or failed write the prefix that still reached the medium — plus the
	// first error. The cache marks the persisted prefix clean and keeps
	// the rest dirty.
	WritebackPages(p *sim.Proc, ino uint64, indices []uint64) (int, error)
}

// Config holds cache tunables.
type Config struct {
	// CapacityPages is the memory budget in pages.
	CapacityPages int
	// DirtyExpire is how long a page stays dirty before the flusher
	// writes it back (Linux dirty_expire_centisecs, default 30s).
	DirtyExpire sim.Time
	// WritebackInterval is how often the flusher runs (Linux
	// dirty_writeback_centisecs, default 5s).
	WritebackInterval sim.Time
	// DirtyBackgroundRatio kicks the flusher immediately (ignoring
	// DirtyExpire) when dirty pages exceed this fraction of the cache,
	// like Linux dirty_background_ratio. Default 0.2.
	DirtyBackgroundRatio float64
	// SpawnTimerProcs restores the legacy goroutine-per-interval flusher
	// timer instead of the reusable timer callback. Results are
	// byte-identical either way; the knob exists for A/B wall-clock
	// measurement (see machine.Config.LegacyExec).
	SpawnTimerProcs bool
}

// DefaultConfig returns Linux-like writeback parameters for a cache of the
// given size.
func DefaultConfig(capacityPages int) Config {
	return Config{
		CapacityPages:     capacityPages,
		DirtyExpire:       30 * sim.Second,
		WritebackInterval: 5 * sim.Second,
	}
}

// Stats tracks cache activity.
type Stats struct {
	Hits, Misses     int64
	Inserts          int64
	Evictions        int64
	DirtyEvictions   int64 // evictions that forced a synchronous writeback
	WritebackPages   int64
	RemovedByDelete  int64
	EventsDispatched int64
	EventsFiltered   int64 // events skipped by the hook interest mask
	AdvisorDeferrals int64 // reclaim scans that passed over advised pages

	// Writeback failure accounting (nonzero only when the backing device
	// fails requests; see internal/faults).
	WritebackErrors  int64 // backend writeback calls that returned an error
	QuarantineEvents int64 // pages quarantined after a permanent write fault
	RequeuedPages    int64 // quarantined pages released back to writeback
	LostPages        int64 // dirty pages reclaim was forced to drop
}

// arenaSlabPages is the growth quantum of the page arena. The arena
// never exceeds CapacityPages and never shrinks; slabs keep the upfront
// cost of small short-lived caches (one per experiment grid cell) low
// while guaranteeing pointer stability.
const arenaSlabPages = 1024

// pageArena hands out Page structs from preallocated slabs and recycles
// them through a free list, so the cache performs zero allocations per
// insert once warm.
type pageArena struct {
	slabs [][]Page
	used  int   // pages handed out from the newest slab
	free  *Page // recycled pages, linked through fileNext
}

func (a *pageArena) alloc() *Page {
	if pg := a.free; pg != nil {
		a.free = pg.fileNext
		pg.fileNext = nil
		return pg
	}
	if len(a.slabs) == 0 || a.used == len(a.slabs[len(a.slabs)-1]) {
		a.slabs = append(a.slabs, make([]Page, arenaSlabPages))
		a.used = 0
	}
	slab := a.slabs[len(a.slabs)-1]
	pg := &slab[a.used]
	a.used++
	return pg
}

func (a *pageArena) release(pg *Page) {
	*pg = Page{fileNext: a.free}
	a.free = pg
}

// fileList is the per-file page index: an intrusive doubly-linked list
// in ascending page-index order, threaded through Page.filePrev/fileNext.
type fileList struct {
	head, tail *Page
	n          int
	nextFree   *fileList // pool link while unused
}

// wbBatch is a reusable writeback staging buffer. A flat index/version
// array plus file boundaries describes per-file batches without
// allocating a slice per file. Buffers are pooled because writeback
// blocks in virtual time, so several flush paths can be staging
// concurrently.
type wbBatch struct {
	idx   []uint64
	vers  []uint64
	files []FileKey
	off   []int // files[i] covers idx[off[i]:off[i+1]]
	next  *wbBatch
}

// Cache is the simulated page cache.
type Cache struct {
	eng      sim.Host
	cfg      Config
	pages    pageTab
	dirty    *rbtree.Tree[PageKey, *Page]
	files    fileTab
	backends map[FSID]Backend
	hooks    []Hook
	interest uint8 // union of hook event interest; emit skips masked-out types
	advisor  EvictionAdvisor
	stats    Stats

	lruHead, lruTail *Page // lruHead = most recently used

	// quar lists quarantined pages in insertion order (bounded by the
	// cache capacity; scanned only on quarantine-state changes).
	quar []PageKey

	arena     pageArena
	flFree    *fileList
	batchFree *wbBatch
	obs       *cacheObs // nil unless observability is on (see obs.go)

	flusherKick *sim.WaitQueue
	// flusherTimer is the periodic-wakeup timer. It is a callback, not a
	// goroutine: each flusher round arms it (possibly overlapping an
	// earlier arm still in flight after a threshold wake, exactly like
	// the spawned timer procs it replaces) and it wakes the flusher when
	// it fires. The flusher itself must stay a goroutine proc — it
	// blocks in the backends' WritebackPages.
	flusherTimer *sim.Callback
}

// New creates a cache and starts its flusher process on e.
func New(e sim.Host, cfg Config) *Cache {
	if cfg.CapacityPages <= 0 {
		panic("pagecache: non-positive capacity")
	}
	if cfg.DirtyExpire <= 0 {
		cfg.DirtyExpire = 30 * sim.Second
	}
	if cfg.WritebackInterval <= 0 {
		cfg.WritebackInterval = 5 * sim.Second
	}
	if cfg.DirtyBackgroundRatio <= 0 {
		cfg.DirtyBackgroundRatio = 0.2
	}
	c := &Cache{
		eng:      e,
		cfg:      cfg,
		dirty:    rbtree.New[PageKey, *Page](keyLess),
		backends: make(map[FSID]Backend),
	}
	c.flusherKick = sim.NewWaitQueue(e)
	c.flusherTimer = sim.NewCallback(e, "pagecache-flusher-timer", func(sim.Time) sim.Time {
		c.flusherKick.WakeAll()
		return 0
	})
	e.Go("pagecache-flusher", c.flusher)
	return c
}

// Config returns the cache configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a pointer to live statistics.
func (c *Cache) Stats() *Stats { return &c.stats }

// Len returns the number of cached pages.
func (c *Cache) Len() int { return c.pages.len() }

// DirtyLen returns the number of dirty pages.
func (c *Cache) DirtyLen() int { return c.dirty.Len() }

// RegisterFS attaches the writeback backend for a filesystem.
func (c *Cache) RegisterFS(fs FSID, b Backend) { c.backends[fs] = b }

// AddHook registers an event hook (Duet).
func (c *Cache) AddHook(h Hook) {
	c.hooks = append(c.hooks, h)
	c.RefreshInterest()
}

// SetAdvisor installs (or, with nil, removes) the eviction advisor.
func (c *Cache) SetAdvisor(a EvictionAdvisor) { c.advisor = a }

// HookCount returns the number of registered event hooks. Recovery
// paths that rebuild a Duet instance use it to assert they did not
// leave an orphaned hook behind.
func (c *Cache) HookCount() int { return len(c.hooks) }

// RemoveHook detaches a previously added hook. The hook list is
// copy-on-write: removal while an event is being dispatched is safe —
// the in-flight dispatch finishes over its snapshot (so the removed
// hook may still observe the current event), and subsequent events no
// longer reach it.
func (c *Cache) RemoveHook(h Hook) {
	for i, hh := range c.hooks {
		if hh == h {
			nh := make([]Hook, 0, len(c.hooks)-1)
			nh = append(nh, c.hooks[:i]...)
			nh = append(nh, c.hooks[i+1:]...)
			c.hooks = nh
			c.RefreshInterest()
			return
		}
	}
}

// RefreshInterest recomputes the union of hook event interest. Hooks
// that implement InterestReporter and change their interest (Duet, on
// session register/deregister) must call this.
func (c *Cache) RefreshInterest() {
	var m uint8
	for _, h := range c.hooks {
		if ir, ok := h.(InterestReporter); ok {
			m |= ir.EventInterest()
		} else {
			m = AllEvents
			break
		}
	}
	c.interest = m
}

func (c *Cache) emit(ev EventType, pg *Page) {
	c.stats.EventsDispatched++
	if c.interest&(1<<ev) == 0 {
		c.stats.EventsFiltered++
		return
	}
	// Snapshot: RemoveHook replaces the slice rather than splicing it,
	// so an in-flight dispatch is immune to hook removal from inside a
	// callback.
	hooks := c.hooks
	for _, h := range hooks {
		h.PageEvent(ev, pg)
	}
}

// --- intrusive LRU ---------------------------------------------------------

func (c *Cache) lruPushFront(pg *Page) {
	pg.lruPrev = nil
	pg.lruNext = c.lruHead
	if c.lruHead != nil {
		c.lruHead.lruPrev = pg
	}
	c.lruHead = pg
	if c.lruTail == nil {
		c.lruTail = pg
	}
}

func (c *Cache) lruRemove(pg *Page) {
	if pg.lruPrev != nil {
		pg.lruPrev.lruNext = pg.lruNext
	} else {
		c.lruHead = pg.lruNext
	}
	if pg.lruNext != nil {
		pg.lruNext.lruPrev = pg.lruPrev
	} else {
		c.lruTail = pg.lruPrev
	}
	pg.lruPrev, pg.lruNext = nil, nil
}

func (c *Cache) lruMoveToFront(pg *Page) {
	if c.lruHead == pg {
		return
	}
	c.lruRemove(pg)
	c.lruPushFront(pg)
}

// --- per-file index --------------------------------------------------------

func (c *Cache) newFileList() *fileList {
	if fl := c.flFree; fl != nil {
		c.flFree = fl.nextFree
		fl.nextFree = nil
		return fl
	}
	return &fileList{}
}

// fileInsert links pg into its file's index-ordered list. Insertion
// scans from the tail, so sequential workloads link in O(1).
func (c *Cache) fileInsert(pg *Page) {
	fk := FileKey{pg.Key.FS, pg.Key.Ino}
	fl := c.files.get(fk)
	if fl == nil {
		fl = c.newFileList()
		c.files.put(fk, fl)
	}
	fl.n++
	at := fl.tail
	for at != nil && at.Key.Index > pg.Key.Index {
		at = at.filePrev
	}
	if at == nil { // new head
		pg.filePrev = nil
		pg.fileNext = fl.head
		if fl.head != nil {
			fl.head.filePrev = pg
		}
		fl.head = pg
		if fl.tail == nil {
			fl.tail = pg
		}
		return
	}
	pg.filePrev = at
	pg.fileNext = at.fileNext
	if at.fileNext != nil {
		at.fileNext.filePrev = pg
	} else {
		fl.tail = pg
	}
	at.fileNext = pg
}

// fileRemove unlinks pg from its file's list, releasing the list when it
// empties.
func (c *Cache) fileRemove(pg *Page) {
	fk := FileKey{pg.Key.FS, pg.Key.Ino}
	fl := c.files.get(fk)
	if fl == nil {
		return
	}
	if pg.filePrev != nil {
		pg.filePrev.fileNext = pg.fileNext
	} else {
		fl.head = pg.fileNext
	}
	if pg.fileNext != nil {
		pg.fileNext.filePrev = pg.filePrev
	} else {
		fl.tail = pg.filePrev
	}
	pg.filePrev, pg.fileNext = nil, nil
	fl.n--
	if fl.n == 0 {
		c.files.del(fk)
		fl.nextFree = c.flFree
		c.flFree = fl
	}
}

// --- writeback batch pool --------------------------------------------------

func (c *Cache) getBatch() *wbBatch {
	if b := c.batchFree; b != nil {
		c.batchFree = b.next
		b.next = nil
		return b
	}
	return &wbBatch{}
}

func (c *Cache) putBatch(b *wbBatch) {
	b.idx = b.idx[:0]
	b.vers = b.vers[:0]
	b.files = b.files[:0]
	b.off = b.off[:0]
	b.next = c.batchFree
	c.batchFree = b
}

// --- lookup / insert / evict ----------------------------------------------

// Lookup returns the page if cached, promoting it in the LRU.
func (c *Cache) Lookup(key PageKey) (*Page, bool) {
	pg, ok := c.pages.get(key)
	if !ok {
		c.stats.Misses++
		return nil, false
	}
	c.stats.Hits++
	c.lruMoveToFront(pg)
	return pg, true
}

// Peek returns the page if cached without perturbing the LRU or stats.
func (c *Cache) Peek(key PageKey) (*Page, bool) {
	return c.pages.get(key)
}

// Contains reports whether the page is cached, without LRU effects.
func (c *Cache) Contains(key PageKey) bool {
	_, ok := c.pages.get(key)
	return ok
}

// Insert adds a clean page with the given content version, evicting as
// needed, and fires Added. If the page is already present it is promoted
// and returned unchanged. Insert may block (eviction of a dirty page
// forces a synchronous writeback), so it needs the calling process.
func (c *Cache) Insert(p *sim.Proc, key PageKey, version uint64) *Page {
	if pg, ok := c.pages.get(key); ok {
		c.lruMoveToFront(pg)
		return pg
	}
	c.makeRoom(p)
	pg := c.arena.alloc()
	pg.Key = key
	pg.Version = version
	pg.resident = true
	c.lruPushFront(pg)
	c.pages.put(key, pg)
	c.fileInsert(pg)
	c.stats.Inserts++
	c.emit(EventAdded, pg)
	return pg
}

// makeRoom evicts pages until there is room for one more.
func (c *Cache) makeRoom(p *sim.Proc) {
	for c.pages.len() >= c.cfg.CapacityPages {
		victim := c.pickVictim()
		if victim == nil {
			// The reclaim window is all dirty: write back the coldest
			// page's whole file (batched into coalesced device writes,
			// as kernel reclaim hands contiguous ranges to writeback)
			// and retry the scan for a clean victim. The writebacks
			// block, so tail is pinned: a concurrent process may evict
			// it meanwhile, and the pin keeps the struct (and the
			// frozen key/version the fallback below relies on) from
			// being recycled under our pointer.
			tail := c.lruTail
			tail.pins++
			c.stats.DirtyEvictions++
			// A writeback failure here is classified, counted
			// (Stats.WritebackErrors), and acted on inside SyncFile
			// (transient: pages stay dirty; permanent: quarantined);
			// reclaim just rescans for whatever came clean.
			_ = c.SyncFile(p, tail.Key.FS, tail.Key.Ino)
			victim = c.pickVictim()
			if victim == nil {
				// The file was re-dirtied or empty: fall back to a single
				// forced page writeback.
				c.writebackOne(p, tail)
				if tail.Dirty && tail.resident {
					// The forced writeback failed too (or the page is
					// quarantined) and memory pressure leaves no choice:
					// the page is dropped with its data, recorded rather
					// than silently swallowed.
					c.stats.LostPages++
				}
				victim = tail
			}
			tail.pins--
			if !tail.resident && tail.pins == 0 && victim != tail {
				c.arena.release(tail)
			}
		}
		c.removePage(victim, EventRemoved)
		c.stats.Evictions++
	}
}

// pickVictim scans from the LRU tail for a clean page, skipping up to a
// bounded number of dirty pages (approximating kernel reclaim, which
// prefers clean pages). With an advisor installed, advised pages are
// passed over in a first pass; if only advised clean pages remain in the
// scan window, the coldest of them is evicted anyway (advice defers, it
// does not pin — pinning would recreate the memory-pressure problems the
// paper avoids, §3.1).
func (c *Cache) pickVictim() *Page {
	const scanLimit = 128
	var fallback *Page
	pg := c.lruTail
	for i := 0; pg != nil && i < scanLimit; i++ {
		if !pg.Dirty {
			if c.advisor == nil || !c.advisor.KeepPage(pg) {
				return pg
			}
			if fallback == nil {
				fallback = pg
				c.stats.AdvisorDeferrals++
			}
		}
		pg = pg.lruPrev
	}
	return fallback
}

// writebackOne synchronously writes a single dirty page back. On
// failure the page stays dirty (or is quarantined, for a permanent
// fault); the caller decides whether it must be dropped anyway.
func (c *Cache) writebackOne(p *sim.Proc, pg *Page) {
	b := c.backends[pg.Key.FS]
	if b == nil {
		panic(fmt.Sprintf("pagecache: no backend for fs %d", pg.Key.FS))
	}
	if pg.quarantined {
		return
	}
	key, ver := pg.Key, pg.Version
	one := c.getBatch()
	one.idx = append(one.idx, key.Index)
	one.vers = append(one.vers, ver)
	n, err := b.WritebackPages(p, key.Ino, one.idx)
	c.stats.WritebackPages += int64(n)
	if n > 0 {
		c.markCleanIf(key, ver)
	}
	if err != nil {
		c.wbFailed(err, key.FS, key.Ino, one.idx[n:], one.vers[n:])
	}
	c.putBatch(one)
}

// removePage drops the page from all indices, fires ev, and recycles the
// Page struct (unless pinned). The pointer must not be used after this
// returns. A non-resident page — reclaim's pinned candidate that a
// concurrent process already evicted during a blocking writeback — is
// not unlinked again; it only re-fires the event, as eviction raced and
// both parties report the removal. If the key was re-inserted during the
// race, the fresh page is left fully intact (the map delete is guarded),
// so a raced double-eviction can never orphan a live page.
func (c *Cache) removePage(pg *Page, ev EventType) {
	if cur, ok := c.pages.get(pg.Key); ok && cur == pg {
		c.pages.del(pg.Key)
	}
	if pg.resident {
		c.lruRemove(pg)
		if pg.quarantined {
			c.unquarantine(pg)
		}
		if pg.Dirty {
			c.dirty.Delete(pg.Key)
			pg.Dirty = false
		}
		c.fileRemove(pg)
		pg.resident = false
	}
	c.emit(ev, pg)
	if pg.pins == 0 {
		c.arena.release(pg)
	}
}

// MarkDirty sets the page's dirty bit and bumps its content version,
// firing Dirtied on the clean-to-dirty transition.
func (c *Cache) MarkDirty(pg *Page, version uint64) {
	pg.Version = version
	if pg.Dirty {
		return
	}
	pg.Dirty = true
	pg.DirtyAt = c.eng.Now()
	c.dirty.Set(pg.Key, pg)
	c.emit(EventDirtied, pg)
	// Dirty-background throttling: too many dirty pages wake the flusher
	// immediately rather than waiting out the expiry interval.
	if float64(c.dirty.Len()) > c.cfg.DirtyBackgroundRatio*float64(c.cfg.CapacityPages) {
		c.flusherKick.WakeAll()
	}
}

// markCleanIf clears the dirty bit if the page is still at the version the
// writeback captured, firing Flushed. Re-dirtied pages stay dirty.
func (c *Cache) markCleanIf(key PageKey, version uint64) {
	pg, ok := c.pages.get(key)
	if !ok || !pg.Dirty || pg.quarantined || pg.Version != version {
		return
	}
	pg.Dirty = false
	c.dirty.Delete(key)
	c.emit(EventFlushed, pg)
}

// Remove drops a page (file truncation or deletion), firing Removed.
// Dirty pages are discarded without writeback, matching truncate
// semantics.
func (c *Cache) Remove(key PageKey) bool {
	pg, ok := c.pages.get(key)
	if !ok {
		return false
	}
	c.removePage(pg, EventRemoved)
	return true
}

// RemoveFile drops every cached page of a file (deletion).
func (c *Cache) RemoveFile(fs FSID, ino uint64) int {
	fl := c.files.get(FileKey{fs, ino})
	if fl == nil {
		return 0
	}
	n := 0
	for pg := fl.head; pg != nil; {
		next := pg.fileNext
		c.removePage(pg, EventRemoved)
		c.stats.RemovedByDelete++
		n++
		pg = next
	}
	return n
}

// FilePages returns the number of cached pages of a file.
func (c *Cache) FilePages(fs FSID, ino uint64) int {
	if fl := c.files.get(FileKey{fs, ino}); fl != nil {
		return fl.n
	}
	return 0
}

// IterateFile calls fn for each cached page of a file in index order,
// without allocating. fn may remove the page it was handed, but must not
// otherwise insert or remove pages of the same file during iteration.
func (c *Cache) IterateFile(fs FSID, ino uint64, fn func(pg *Page) bool) {
	fl := c.files.get(FileKey{fs, ino})
	if fl == nil {
		return
	}
	for pg := fl.head; pg != nil; {
		next := pg.fileNext // survives fn removing pg
		if !fn(pg) {
			return
		}
		pg = next
	}
}

// Iterate calls fn for every cached page in key order (used by Duet's
// registration scan). It snapshots keys first, so fn may mutate the cache.
func (c *Cache) Iterate(fn func(pg *Page) bool) {
	fks := c.files.appendKeys(make([]FileKey, 0, c.files.len()))
	sort.Slice(fks, func(i, j int) bool { return fileKeyLess(fks[i], fks[j]) })
	keys := make([]PageKey, 0, c.pages.len())
	for _, fk := range fks {
		for pg := c.files.get(fk).head; pg != nil; pg = pg.fileNext {
			keys = append(keys, pg.Key)
		}
	}
	for _, k := range keys {
		if pg, ok := c.pages.get(k); ok {
			if !fn(pg) {
				return
			}
		}
	}
}

// SyncFile writes back all dirty pages of one file immediately.
// Quarantined pages are skipped (their destination is known-broken); on
// a partial failure the persisted prefix is marked clean and the rest
// handled per wbFailed.
func (c *Cache) SyncFile(p *sim.Proc, fs FSID, ino uint64) error {
	fl := c.files.get(FileKey{fs, ino})
	if fl == nil {
		return nil
	}
	b := c.getBatch()
	for pg := fl.head; pg != nil; pg = pg.fileNext {
		if pg.Dirty && !pg.quarantined {
			b.idx = append(b.idx, pg.Key.Index)
			b.vers = append(b.vers, pg.Version)
		}
	}
	if len(b.idx) == 0 {
		c.putBatch(b)
		return nil
	}
	be := c.backends[fs]
	if be == nil {
		panic(fmt.Sprintf("pagecache: no backend for fs %d", fs))
	}
	n, err := be.WritebackPages(p, ino, b.idx)
	c.stats.WritebackPages += int64(n)
	for i := 0; i < n; i++ {
		c.markCleanIf(PageKey{fs, ino, b.idx[i]}, b.vers[i])
	}
	if err != nil {
		c.wbFailed(err, fs, ino, b.idx[n:], b.vers[n:])
	}
	c.putBatch(b)
	return err
}

// Sync writes back every dirty page.
func (c *Cache) Sync(p *sim.Proc) {
	c.flushExpired(p, 0)
}

// flusher is the background writeback process. It wakes on its periodic
// interval, or early when the dirty-background threshold is crossed.
func (c *Cache) flusher(p *sim.Proc) {
	for {
		if c.cfg.SpawnTimerProcs {
			c.eng.Go("pagecache-flusher-timer", func(tp *sim.Proc) {
				tp.Sleep(c.cfg.WritebackInterval)
				c.flusherKick.WakeAll()
			})
		} else {
			// Arm the reusable timer callback through the run queue: the
			// deferred arm draws its seq in the slot the spawned proc's
			// Sleep used to, so both forms simulate identically. A
			// threshold wake can leave an earlier arm in flight; the
			// callback supports overlapping arms just as overlapping
			// timer procs did.
			c.flusherTimer.ArmDeferred(c.cfg.WritebackInterval)
		}
		c.flusherKick.Wait(p, "flusher interval")
		if float64(c.dirty.Len()) > c.cfg.DirtyBackgroundRatio*float64(c.cfg.CapacityPages) {
			c.flushExpired(p, 0) // over background ratio: flush regardless of age
		} else {
			c.flushExpired(p, c.cfg.DirtyExpire)
		}
	}
}

// flushExpired writes back dirty pages older than minAge, grouped by
// file. The staging buffers come from the batch pool, so repeated
// flusher wakeups allocate nothing.
func (c *Cache) flushExpired(p *sim.Proc, minAge sim.Time) {
	now := c.eng.Now()
	var flushStart sim.Time
	if c.obs != nil {
		flushStart = now
	}
	b := c.getBatch()
	c.dirty.Ascend(nil, func(k PageKey, pg *Page) bool {
		if now-pg.DirtyAt < minAge {
			return true
		}
		fk := FileKey{k.FS, k.Ino}
		if len(b.files) == 0 || b.files[len(b.files)-1] != fk {
			b.files = append(b.files, fk)
			b.off = append(b.off, len(b.idx))
		}
		b.idx = append(b.idx, k.Index)
		b.vers = append(b.vers, pg.Version)
		return true
	})
	b.off = append(b.off, len(b.idx))
	for i, fk := range b.files {
		be := c.backends[fk.FS]
		if be == nil {
			panic(fmt.Sprintf("pagecache: no backend for fs %d", fk.FS))
		}
		lo, hi := b.off[i], b.off[i+1]
		n, err := be.WritebackPages(p, fk.Ino, b.idx[lo:hi])
		c.stats.WritebackPages += int64(n)
		for j := lo; j < lo+n; j++ {
			c.markCleanIf(PageKey{fk.FS, fk.Ino, b.idx[j]}, b.vers[j])
		}
		if err != nil {
			// Unpersisted pages stay dirty for retry; permanent faults
			// quarantine them instead of retrying forever.
			c.wbFailed(err, fk.FS, fk.Ino, b.idx[lo+n:hi], b.vers[lo+n:hi])
		}
	}
	if c.obs != nil {
		c.observeFlush(flushStart, c.eng.Now(), len(b.idx))
	}
	c.putBatch(b)
}

// wbFailed handles the unpersisted remainder of a failed writeback
// call. Transient device errors (including timeouts) re-dirty the pages
// — the expiry clock restarts so the flusher retries after a backoff
// rather than immediately. A permanent write fault quarantines them:
// data is held in memory, off the writeback path, until Requeue.
// Any other error (e.g. an lfs out-of-space) leaves the pages exactly
// as they were, preserving the historical retry behavior.
func (c *Cache) wbFailed(err error, fs FSID, ino uint64, idx, vers []uint64) {
	c.stats.WritebackErrors++
	permanent := errors.Is(err, storage.ErrWriteFault)
	transient := storage.IsTransient(err)
	if !permanent && !transient {
		return
	}
	now := c.eng.Now()
	for i, ix := range idx {
		pg, ok := c.pages.get(PageKey{fs, ino, ix})
		if !ok || !pg.Dirty || pg.quarantined {
			continue
		}
		if permanent && pg.Version == vers[i] {
			c.quarantine(pg)
			continue
		}
		pg.DirtyAt = now
	}
}

// quarantine parks a dirty page out of the writeback path after a
// permanent fault. The page keeps its data and dirty bit but leaves the
// dirty tree, so flusher and sync passes skip it.
func (c *Cache) quarantine(pg *Page) {
	pg.quarantined = true
	c.dirty.Delete(pg.Key)
	c.quar = append(c.quar, pg.Key)
	c.stats.QuarantineEvents++
	if st := c.obs; st != nil && st.tr != nil {
		st.tr.Instant(st.tid, "pagecache", "quarantine", c.eng.Now())
	}
}

// Quarantined appends the keys of currently quarantined pages to dst
// and returns it (insertion order).
func (c *Cache) Quarantined(dst []PageKey) []PageKey {
	return append(dst, c.quar...)
}

// QuarantinedLen returns the number of quarantined pages.
func (c *Cache) QuarantinedLen() int { return len(c.quar) }

// DropVolatile discards every cached page — clean, dirty, and
// quarantined — without writeback: the power-cut primitive. In-engine
// crash simulation (internal/cluster) calls it at the kill instant so
// the abandoned cache's flusher has nothing left to persist; a real
// power cut loses exactly this state. No Removed events are emitted:
// the machine whose hooks cared about these pages is the one that just
// died. Returns the number of pages dropped.
func (c *Cache) DropVolatile() int {
	n := 0
	for pg := c.lruHead; pg != nil; n++ {
		next := pg.lruNext
		if cur, ok := c.pages.get(pg.Key); ok && cur == pg {
			c.pages.del(pg.Key)
		}
		if pg.Dirty {
			c.dirty.Delete(pg.Key)
			pg.Dirty = false
		}
		pg.quarantined = false
		c.fileRemove(pg)
		pg.resident = false
		pg.lruPrev, pg.lruNext = nil, nil
		if pg.pins == 0 {
			c.arena.release(pg)
		}
		pg = next
	}
	c.lruHead, c.lruTail = nil, nil
	c.quar = c.quar[:0]
	return n
}

// Requeue releases a quarantined page back into the writeback path —
// called after the underlying fault is repaired (block remapped or
// rewritten). The expiry clock restarts at now.
func (c *Cache) Requeue(key PageKey) bool {
	pg, ok := c.pages.get(key)
	if !ok || !pg.quarantined {
		return false
	}
	c.unquarantine(pg)
	pg.DirtyAt = c.eng.Now()
	c.dirty.Set(pg.Key, pg)
	c.stats.RequeuedPages++
	if st := c.obs; st != nil && st.tr != nil {
		st.tr.Instant(st.tid, "pagecache", "requeue", c.eng.Now())
	}
	c.flusherKick.WakeAll()
	return true
}

// unquarantine clears the flag and drops the key from the quarantine
// list.
func (c *Cache) unquarantine(pg *Page) {
	pg.quarantined = false
	for i, k := range c.quar {
		if k == pg.Key {
			c.quar = append(c.quar[:i], c.quar[i+1:]...)
			break
		}
	}
}
