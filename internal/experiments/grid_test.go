package experiments

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// TestGridDeterminism is the contract the parallel runner must keep: a
// figure rendered with one worker is byte-identical to the same figure
// rendered with eight. Cells are isolated engines and results are
// reassembled in input order, so -j must only change wall-clock time.
func TestGridDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full fig2 sweep in -short mode")
	}
	render := func(workers int) string {
		old := Workers
		Workers = workers
		defer func() { Workers = old }()
		var b bytes.Buffer
		if err := runFig2(ScaleTiny, &b); err != nil {
			t.Fatalf("fig2 with %d workers: %v", workers, err)
		}
		return b.String()
	}
	serial := render(1)
	parallel := render(8)
	if serial != parallel {
		t.Errorf("fig2 output differs between workers=1 and workers=8:\n--- workers=1\n%s\n--- workers=8\n%s", serial, parallel)
	}
	if len(serial) == 0 {
		t.Error("fig2 rendered nothing")
	}
}

// TestGridOrderProperty checks the reassembly invariant directly: for
// random cell counts and worker counts, with cells completing in a
// shuffled order (random real-time sleeps), results always come back in
// input order with the outcome of the matching cell.
func TestGridOrderProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(40)
		workers := 1 + rng.Intn(12)
		delays := make([]time.Duration, n)
		for i := range delays {
			delays[i] = time.Duration(rng.Intn(3)) * time.Millisecond
		}
		results := runCells(n, workers, func(i int) (*Outcome, error) {
			time.Sleep(delays[i]) // shuffle completion order
			return &Outcome{Util: float64(i)}, nil
		})
		if len(results) != n {
			t.Fatalf("trial %d: %d results for %d cells", trial, len(results), n)
		}
		for i, r := range results {
			if r.Index != i {
				t.Fatalf("trial %d: results[%d].Index = %d", trial, i, r.Index)
			}
			if r.Err != nil || r.Outcome == nil || r.Outcome.Util != float64(i) {
				t.Fatalf("trial %d: results[%d] holds cell %v's outcome", trial, i, r.Outcome)
			}
		}
	}
}

// TestGridErrorAggregation: failed cells carry their own error, healthy
// cells still produce outcomes, and FirstErr reports the lowest-indexed
// failure no matter which cell failed first in real time.
func TestGridErrorAggregation(t *testing.T) {
	boom := errors.New("boom")
	results := runCells(10, 4, func(i int) (*Outcome, error) {
		if i%3 == 1 { // cells 1, 4, 7 fail
			return nil, fmt.Errorf("cell %d: %w", i, boom)
		}
		return &Outcome{Util: float64(i)}, nil
	})
	for i, r := range results {
		if i%3 == 1 {
			if !errors.Is(r.Err, boom) {
				t.Errorf("cell %d: err = %v, want boom", i, r.Err)
			}
		} else if r.Err != nil || r.Outcome == nil {
			t.Errorf("cell %d: unexpected %v / %v", i, r.Outcome, r.Err)
		}
	}
	err := FirstErr(results)
	if !errors.Is(err, boom) || err == nil {
		t.Fatalf("FirstErr = %v", err)
	}
	if want := "grid cell 1:"; err == nil || len(err.Error()) < len(want) || err.Error()[:len(want)] != want {
		t.Errorf("FirstErr = %q, want prefix %q", err, want)
	}
}

func TestGridEmptyAndSingle(t *testing.T) {
	if got := runCells(0, 4, func(int) (*Outcome, error) { return nil, nil }); len(got) != 0 {
		t.Errorf("empty grid returned %d results", len(got))
	}
	got := RunGrid([]RunSpec{{
		Env:   EnvSpec{Scale: ScaleTiny, Seed: 1, TargetUtil: 0},
		Tasks: []TaskName{TaskScrub},
	}}, 3)
	if len(got) != 1 || got[0].Err != nil || got[0].Outcome == nil {
		t.Fatalf("single-cell grid: %+v", got)
	}
	if !got[0].Outcome.Completed() {
		t.Error("idle scrub cell did not complete")
	}
}
