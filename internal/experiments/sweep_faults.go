package experiments

import (
	"fmt"
	"io"
	"sync"

	"duet/internal/faults"
	"duet/internal/machine"
	"duet/internal/obs"
	"duet/internal/sim"
	"duet/internal/storage"
	"duet/internal/tasks/scrub"
)

// The robustness sweep: deterministic fault plans against the cowfs
// stack, proving the end-to-end claim that no acknowledged-durable block
// is ever lost. Each row runs a mixed read/write workload with periodic
// durability commits while the device misbehaves per the plan, then
// heals the device (or crashes and recovers), scrubs to completion with
// repair enabled, and finally sweeps every allocated block's checksum.
// A nonzero lost column — or a failed recovery — fails the experiment.

// faultRow is one line of the sweep table.
type faultRow struct {
	name     string
	latent   int // latent sector errors scheduled over the first half window
	plan     faults.Plan
	crash    bool // power-cut at half window, then recover
	maxQueue int  // force the scrubber session into degraded mode
}

// faultCell aggregates one cell's outcome.
type faultCell struct {
	detected int64 // corruptions/bad sectors the scrub found
	repaired int64
	lost     int64 // allocated blocks unrecoverable at the end
	aborts   int64 // commits refused (quarantined pages)
	degraded int64 // degraded-mode fallbacks taken by the scrubber
	rescans  int64 // blocks returned to the scan by those fallbacks
	rob      machine.Robustness
}

func (c *faultCell) add(o faultCell) {
	c.detected += o.detected
	c.repaired += o.repaired
	c.lost += o.lost
	c.aborts += o.aborts
	c.degraded += o.degraded
	c.rescans += o.rescans
	c.rob.Add(o.rob)
}

// Robustness summary shared with cmd/duetbench's BENCH json.
var (
	robustMu  sync.Mutex
	robustAgg *machine.Robustness
)

func recordRobustness(r machine.Robustness) {
	robustMu.Lock()
	defer robustMu.Unlock()
	if robustAgg == nil {
		robustAgg = &machine.Robustness{}
	}
	robustAgg.Add(r)
}

// RobustnessSummary returns the fault counters aggregated over every
// robustness cell run so far, or nil when the sweep has not run.
func RobustnessSummary() *machine.Robustness {
	robustMu.Lock()
	defer robustMu.Unlock()
	if robustAgg == nil {
		return nil
	}
	cp := *robustAgg
	return &cp
}

func runFaultsSweep(s Scale, w io.Writer) error {
	window := s.Window / 2 // the fault phase; scrub-to-completion follows
	rows := []faultRow{
		{name: "latent-sectors", latent: 8},
		{name: "transient-io", plan: faults.Plan{
			TransientReadRate:  0.02,
			TransientWriteRate: 0.02,
			StallRate:          0.01,
			StallDelay:         5 * sim.Millisecond,
		}},
		{name: "torn+permanent", plan: faults.Plan{
			PermanentWriteRate: 0.01,
			TornWriteRate:      0.05,
		}},
		{name: "crash+recover", crash: true, plan: faults.Plan{
			TransientWriteRate: 0.01,
			CrashAt:            window / 2,
		}},
		{name: "degraded-duet", maxQueue: 16},
	}

	fmt.Fprintf(w, "%-16s %9s %9s %9s %6s %7s %9s %9s %8s\n",
		"plan", "faults", "detected", "repaired", "lost", "aborts", "degraded", "rescans", "commits")
	for _, row := range rows {
		var agg faultCell
		for _, seed := range seeds(s) {
			cell, err := runFaultCell(s, seed, row, window)
			if err != nil {
				return fmt.Errorf("faults %s seed %d: %w", row.name, seed, err)
			}
			agg.add(cell)
			countCell()
		}
		injected := agg.rob.TransientFaults + agg.rob.PermanentFaults + agg.rob.TornWrites + int64(row.latent*len(seeds(s)))
		fmt.Fprintf(w, "%-16s %9d %9d %9d %6d %7d %9d %9d %8d\n",
			row.name, injected, agg.detected, agg.repaired, agg.lost,
			agg.aborts, agg.degraded, agg.rescans, agg.rob.Commits)
		recordRobustness(agg.rob)
		if agg.lost != 0 {
			return fmt.Errorf("faults %s: %d blocks lost (want 0)", row.name, agg.lost)
		}
	}
	return nil
}

// buildFaultMachine assembles the cell's machine with a populated tree
// and durability armed (an initial checkpoint of the populated state).
func buildFaultMachine(s Scale, seed int64, o *obs.Obs) (*machine.Machine, error) {
	m, err := machine.New(machine.Config{
		Seed:         seed,
		DeviceBlocks: s.DeviceBlocks,
		Model:        storage.DefaultHDD(s.DeviceBlocks).Slowed(s.DeviceSlow),
		CachePages:   s.CachePages,
		IdleGrace:    sim.Time(2.5 * s.DeviceSlow * float64(sim.Millisecond)),
		Obs:          o,
		LegacyExec:   LegacyExec,
	})
	if err != nil {
		return nil, err
	}
	// A quarter of the scale's data keeps the robustness cells cheap:
	// the sweep exercises failure paths, not steady-state throughput.
	if _, err := m.Populate(machine.DefaultPopulateSpec("/data", s.DataPages/4)); err != nil {
		return nil, err
	}
	m.EnableDurability()
	return m, nil
}

// planFor finalizes the row's plan for one seed: per-seed decision
// stream, latent errors spread over allocated blocks and the first half
// of the fault window.
func planFor(m *machine.Machine, row faultRow, seed int64, window sim.Time) faults.Plan {
	plan := row.plan
	plan.Seed = uint64(seed)*0x9e3779b97f4a7c15 + 1
	if row.latent > 0 {
		nb := m.Disk.Blocks()
		stride := nb / int64(row.latent+1)
		for k := 1; k <= row.latent; k++ {
			b, ok := m.FS.NextAllocated(int64(k) * stride)
			if !ok {
				b, ok = m.FS.NextAllocated(0)
			}
			if !ok {
				break
			}
			plan.LatentErrors = append(plan.LatentErrors, faults.LatentError{
				Block: b,
				At:    window * sim.Time(k) / sim.Time(2*row.latent),
			})
		}
	}
	return plan
}

// faultWorkload drives a deterministic read/write mix over the populated
// files until the deadline. Read errors are expected while the device
// is faulty (latent sectors, exhausted retries) and are absorbed here;
// data-integrity accounting happens in the final sweep, not per op.
func faultWorkload(m *machine.Machine, deadline sim.Time) func(*sim.Proc) {
	return func(p *sim.Proc) {
		root, err := m.FS.Lookup("/data")
		if err != nil {
			return
		}
		files := m.FS.FilesUnder(root.Ino)
		if len(files) == 0 {
			return
		}
		for step := 0; p.Now() < deadline && !p.Engine().Stopping(); step++ {
			f := files[step%len(files)]
			if f.SizePg == 0 {
				p.Sleep(2 * sim.Millisecond)
				continue
			}
			off := int64(step*7) % f.SizePg
			n := int64(4)
			if off+n > f.SizePg {
				n = f.SizePg - off
			}
			if step%3 == 0 {
				_ = m.FS.Read(p, f.Ino, off, n, storage.ClassNormal, "workload")
			} else {
				_ = m.FS.Write(p, f.Ino, off, n)
			}
			p.Sleep(2 * sim.Millisecond)
		}
	}
}

// faultCommitter runs the durability barrier periodically, counting
// refusals (quarantined pages make Commit abort rather than acknowledge
// memory-only data).
func faultCommitter(m *machine.Machine, deadline sim.Time, aborts *int64) func(*sim.Proc) {
	return func(p *sim.Proc) {
		period := deadline / 6
		if period <= 0 {
			period = sim.Second
		}
		for p.Now() < deadline && !p.Engine().Stopping() {
			p.Sleep(period)
			if err := m.FS.Commit(p); err != nil {
				*aborts++
			}
		}
	}
}

// healAndScrub sleeps through the fault window (delay), then clears the
// device faults (the "replaced controller"), requeues quarantined pages,
// scrubs the filesystem to completion with repair on, and lands a final
// commit. It drives the engine's single Run: the fault-phase procs share
// it and exit at their deadline.
func healAndScrub(m *machine.Machine, row faultRow, delay sim.Time, cell *faultCell) error {
	var runErr error
	m.Eng.Go("heal-scrub", func(p *sim.Proc) {
		defer m.Eng.Stop()
		if delay > 0 {
			p.Sleep(delay)
		}
		m.Disk.SetFaultInjector(nil)
		for _, key := range m.Cache.Quarantined(nil) {
			m.Cache.Requeue(key)
		}
		cfg := scrub.DefaultConfig()
		cfg.MaxQueue = row.maxQueue
		var sc *scrub.Scrubber
		if row.maxQueue > 0 {
			sc = scrub.NewOpportunistic(m.FS, cfg, m.Duet, m.Adapter)
		} else {
			sc = scrub.New(m.FS, cfg)
		}
		if err := sc.Run(p); err != nil {
			runErr = fmt.Errorf("scrub: %w", err)
			return
		}
		if !sc.Report.Completed {
			runErr = fmt.Errorf("scrub did not complete")
			return
		}
		cell.detected += sc.Report.Errors
		cell.repaired += sc.Report.Errors
		cell.degraded += sc.Report.Degraded
		cell.rescans += sc.Report.RescanBlocks
		if err := m.FS.Commit(p); err != nil {
			runErr = fmt.Errorf("final commit: %w", err)
		}
	})
	if err := m.Eng.Run(); err != nil {
		return err
	}
	return runErr
}

// lostBlocks sweeps every allocated block without I/O: a block whose
// medium content no longer matches its checksum (and is not dirty in
// cache), or that is still marked bad, is lost. After heal + scrub +
// recovery this must be zero.
func lostBlocks(m *machine.Machine) int64 {
	var lost int64
	for b, ok := m.FS.NextAllocated(0); ok; b, ok = m.FS.NextAllocated(b + 1) {
		if m.FS.CheckBlock(b) != nil {
			lost++
		}
	}
	for _, b := range m.Disk.BadBlocks() {
		if m.FS.Allocated(b) {
			lost++
		}
	}
	return lost
}

func runFaultCell(s Scale, seed int64, row faultRow, window sim.Time) (faultCell, error) {
	var cell faultCell
	o := newCellObs()
	m, err := buildFaultMachine(s, seed, o)
	if err != nil {
		return cell, err
	}
	plan := planFor(m, row, seed, window)
	if !plan.Zero() {
		m.AttachFaults(plan)
	}

	deadline := m.Eng.Now() + window
	m.Eng.Go("fault-workload", faultWorkload(m, deadline))
	m.Eng.Go("fault-committer", faultCommitter(m, deadline, &cell.aborts))

	heal := window // the heal phase starts when the fault window closes
	if row.maxQueue > 0 {
		// Degraded-mode row: the scrubber must run concurrently with the
		// workload so its shrunken fetch queue actually overflows.
		heal = 0
	}
	if row.crash {
		// Power cut: run to the crash instant — RunFor unwinds every
		// process, the simulated memory state dies with them — then
		// remount from the durable image on a fresh machine. The heal
		// phase runs there, from virtual time zero.
		if err := m.Eng.RunFor(plan.CrashAt); err != nil {
			return cell, err
		}
		rm, err := m.Recover()
		if err != nil {
			return cell, err
		}
		cell.rob.Add(m.Robustness())
		m = rm
		heal = 0
	}

	if err := healAndScrub(m, row, heal, &cell); err != nil {
		return cell, err
	}
	if err := m.FS.CheckInvariants(); err != nil {
		return cell, fmt.Errorf("invariants after heal: %w", err)
	}
	cell.lost = lostBlocks(m)
	cell.rob.Add(m.Robustness())
	finishFaultCell(o, m, row.name, seed)
	return cell, nil
}

// finishFaultCell folds one fault-sweep cell into the run-level
// observability state. The sweep runs its cells sequentially, so trace
// collection order is the (deterministic) row × seed input order.
func finishFaultCell(o *obs.Obs, m *machine.Machine, rowName string, seed int64) {
	if o == nil {
		return
	}
	m.CollectMetrics(o.Metrics)
	obsCfg.mu.Lock()
	defer obsCfg.mu.Unlock()
	if obsCfg.reg != nil {
		obsCfg.reg.Merge(o.Metrics)
		obsCfg.reg.Counter("grid.cells").Inc()
	}
	if o.Trace != nil {
		putCellTrace(-1,
			obs.TraceProcess{Name: fmt.Sprintf("faults %s seed%d", rowName, seed), T: o.Trace})
	}
}

func init() {
	register(Experiment{
		ID:    "faults",
		Title: "Fault injection: detection, repair, degraded Duet, crash recovery",
		Run:   runFaultsSweep,
	})
}
