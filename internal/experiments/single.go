package experiments

import (
	"fmt"
	"io"

	"duet/internal/machine"
	"duet/internal/metrics"
	"duet/internal/sim"
	"duet/internal/tasks/rsync"
	"duet/internal/trace"
	"duet/internal/workload"
)

// --- Figure 1: file access distributions -----------------------------------

func runFig1(s Scale, w io.Writer) error {
	fig := &metrics.Figure{
		Title:  "Figure 1: file access distributions (CDF of accesses over file ranks)",
		XLabel: "frac-files",
		YLabel: "fraction of accesses to the top frac-files most popular files",
	}
	n := int(s.DataPages / 32) // population size at this scale
	dists := append([]trace.Distribution{}, trace.MSDevices()...)
	dists = append(dists, trace.Uniform{})
	for _, d := range dists {
		series := metrics.Series{Name: d.Name()}
		for f := 0.05; f <= 1.0+1e-9; f += 0.05 {
			series.Points = append(series.Points, metrics.Point{
				X: round2(f), Y: d.AccessShare(n, f),
			})
		}
		fig.Series = append(fig.Series, series)
	}
	fig.Render(w)
	return nil
}

// --- I/O-saved sweeps (Figures 2, 3, 10) ------------------------------------

// ioSavedSweep runs the task set with Duet across utilizations for each
// overlap value and returns one series per overlap. The overlap × util ×
// seed grid is executed on the RunGrid worker pool; results are consumed
// in cell order so rendering is independent of the worker count.
func ioSavedSweep(s Scale, w io.Writer, title string, taskSet []TaskName,
	personality workload.Personality, dist string, overlaps []float64,
	device machine.DeviceKind) error {
	fig := &metrics.Figure{
		Title:  title,
		XLabel: "util",
		YLabel: "fraction of maintenance I/O saved",
	}
	utils := s.Utils()
	sds := seeds(s)
	var cells []RunSpec
	for _, ov := range overlaps {
		for _, util := range utils {
			for _, seed := range sds {
				cells = append(cells, RunSpec{
					Env: EnvSpec{
						Scale: s, Seed: seed, Personality: personality,
						Dist: dist, Coverage: ov, TargetUtil: util,
						Device: device,
					},
					Tasks: taskSet,
					Duet:  true,
				})
			}
		}
	}
	results := RunGrid(cells, Workers)
	if err := FirstErr(results); err != nil {
		return err
	}
	i := 0
	for _, ov := range overlaps {
		series := metrics.Series{Name: fmt.Sprintf("overlap=%s", metrics.Pct(ov))}
		for _, util := range utils {
			var vals []float64
			for range sds {
				vals = append(vals, results[i].Outcome.IOSaved())
				i++
			}
			mean, ci := metrics.CI95(vals)
			series.Points = append(series.Points, metrics.Point{X: util, Y: mean, CI: ci})
		}
		fig.Series = append(fig.Series, series)
	}
	fig.Render(w)
	return nil
}

func runFig2(s Scale, w io.Writer) error {
	return ioSavedSweep(s, w,
		"Figure 2: I/O saved, scrubbing + webserver workload",
		[]TaskName{TaskScrub}, workload.Webserver, "uniform",
		[]float64{0.25, 0.50, 0.75, 1.00}, machine.HDD)
}

func runFig3(s Scale, w io.Writer) error {
	return ioSavedSweep(s, w,
		"Figure 3: I/O saved, backup + webserver workload",
		[]TaskName{TaskBackup}, workload.Webserver, "uniform",
		[]float64{0.25, 0.50, 0.75, 1.00}, machine.HDD)
}

func runFig10(s Scale, w io.Writer) error {
	return ioSavedSweep(s, w,
		"Figure 10: I/O saved on a solid-state drive (scrubbing + webserver)",
		[]TaskName{TaskScrub}, workload.Webserver, "uniform",
		[]float64{0.25, 0.50, 0.75, 1.00}, machine.SSD)
}

// --- Figure 4: rsync speedup -------------------------------------------------

func runFig4(s Scale, w io.Writer) error {
	fig := &metrics.Figure{
		Title:  "Figure 4: rsync runtime speedup vs data overlap (unthrottled webserver)",
		XLabel: "overlap",
		YLabel: "baseline runtime / Duet runtime",
	}
	series := metrics.Series{Name: "speedup"}
	saved := metrics.Series{Name: "io-saved"}
	for _, ov := range []float64{0.25, 0.50, 0.75, 1.00} {
		var speedups, savs []float64
		for _, seed := range seeds(s) {
			base, _, err := runRsync(s, seed, ov, false)
			if err != nil {
				return err
			}
			duet, sv, err := runRsync(s, seed, ov, true)
			if err != nil {
				return err
			}
			if duet > 0 {
				speedups = append(speedups, float64(base)/float64(duet))
			}
			savs = append(savs, sv)
		}
		mean, ci := metrics.CI95(speedups)
		series.Points = append(series.Points, metrics.Point{X: ov, Y: mean, CI: ci})
		ms, cs := metrics.CI95(savs)
		saved.Points = append(saved.Points, metrics.Point{X: ov, Y: ms, CI: cs})
	}
	fig.Series = []metrics.Series{series, saved}
	fig.Render(w)
	return nil
}

// runRsync copies the populated tree to a second device while an
// unthrottled webserver workload runs on the source, returning the
// transfer duration and the fraction of read I/O saved.
func runRsync(s Scale, seed int64, overlap float64, duet bool) (sim.Time, float64, error) {
	spec := EnvSpec{
		Scale: s, Seed: seed, Personality: workload.Webserver,
		Coverage: overlap, TargetUtil: 1, // unthrottled (§6.2 rsync setup)
	}
	e, err := build(spec, 0)
	if err != nil {
		return 0, 0, err
	}
	// Rsync copies to a second disk, as the paper does (local rsync
	// between two devices).
	dst, _, err := e.m.AddCowFS("sdb", s.DeviceBlocks, machine.HDD)
	if err != nil {
		return 0, 0, err
	}
	if _, err := dst.MkdirAll("/backup"); err != nil {
		return 0, 0, err
	}
	root, err := e.m.FS.Lookup("/data")
	if err != nil {
		return 0, 0, err
	}
	var r *rsync.Rsync
	if duet {
		r = rsync.NewOpportunistic(e.m.FS, root.Ino, dst, "/backup", rsync.DefaultConfig(), e.m.Duet, e.m.Adapter)
	} else {
		r = rsync.New(e.m.FS, root.Ino, dst, "/backup", rsync.DefaultConfig())
	}
	var runErr error
	e.gen.Start(e.m.Eng)
	e.m.Eng.Go("task:rsync", func(p *sim.Proc) {
		runErr = r.Run(p)
		e.m.Eng.Stop()
	})
	// Generous cap: rsync at normal priority against an unthrottled
	// workload needs a multiple of the window.
	if err := e.m.Eng.RunFor(20 * s.Window); err != nil {
		return 0, 0, err
	}
	if runErr != nil {
		return 0, 0, runErr
	}
	mode := "base"
	if duet {
		mode = "duet"
	}
	finishDirectCell(e, fmt.Sprintf("rsync %s ov%.2f seed%d", mode, overlap, seed))
	savedFrac := 0.0
	if r.Report.WorkTotal > 0 {
		savedFrac = float64(r.Report.Saved) / float64(r.Report.WorkTotal)
	}
	return r.Report.Duration(), savedFrac, nil
}

// --- Table 5: maximum utilization ---------------------------------------------

// tab5Row is one line of Table 5.
type tab5Row struct {
	personality workload.Personality
	overlap     float64
	dist        string
}

func tab5Rows() []tab5Row {
	return []tab5Row{
		{workload.Webserver, 0.25, "uniform"},
		{workload.Webserver, 0.50, "uniform"},
		{workload.Webserver, 0.75, "uniform"},
		{workload.Webserver, 1.00, "uniform"},
		{workload.Webserver, 1.00, "ms-dev0"},
		{workload.Webproxy, 1.00, "uniform"},
		{workload.Webproxy, 1.00, "ms-dev0"},
		{workload.Fileserver, 1.00, "uniform"},
		{workload.Fileserver, 1.00, "ms-dev0"},
	}
}

// maxUtilization finds the highest utilization (in UtilStep steps) at
// which the task still completes within the window, scanning from high to
// low (Table 5's metric). The scan stays serial (it early-exits at the
// first passing level), but the seed repetitions at each level run as a
// grid. Returns -1 when it fails even on an idle device.
func maxUtilization(s Scale, row tab5Row, task TaskName, duet bool) (float64, error) {
	utils := s.Utils()
	for i := len(utils) - 1; i >= 0; i-- {
		util := utils[i]
		var cells []RunSpec
		for _, seed := range seeds(s) {
			cells = append(cells, RunSpec{
				Env: EnvSpec{
					Scale: s, Seed: seed, Personality: row.personality,
					Dist: row.dist, Coverage: row.overlap, TargetUtil: util,
				},
				Tasks: []TaskName{task},
				Duet:  duet,
			})
		}
		results := RunGrid(cells, Workers)
		if err := FirstErr(results); err != nil {
			return 0, err
		}
		completedAll := true
		for _, r := range results {
			if !r.Outcome.Completed() {
				completedAll = false
				break
			}
		}
		if completedAll {
			return util, nil
		}
	}
	return -1, nil
}

func runTab5(s Scale, w io.Writer) error {
	headers := []string{"Workload", "Overlap", "Distribution",
		"Scrub base", "Scrub Duet", "Backup base", "Backup Duet", "Defrag base", "Defrag Duet"}
	// Every (row, task, duet) scan is independent, so they all run
	// concurrently; each scan additionally grids its per-seed repetitions.
	type scan struct {
		row  tab5Row
		task TaskName
		duet bool
	}
	var scans []scan
	for _, row := range tab5Rows() {
		for _, task := range []TaskName{TaskScrub, TaskBackup, TaskDefrag} {
			for _, duet := range []bool{false, true} {
				scans = append(scans, scan{row, task, duet})
			}
		}
	}
	utils := make([]float64, len(scans))
	errs := make([]error, len(scans))
	// Concurrent scans issue whole seed-grids in nondeterministic order;
	// with tracing on, fall back to serial scans so trace slots are
	// reserved in program order (the inner grids still parallelize).
	scanWorkers := Workers
	if obsTracing() {
		scanWorkers = 1
	}
	gridEach(len(scans), scanWorkers, func(i int) {
		utils[i], errs[i] = maxUtilization(s, scans[i].row, scans[i].task, scans[i].duet)
	})
	var rows [][]string
	i := 0
	for _, row := range tab5Rows() {
		cells := []string{string(row.personality), metrics.Pct(row.overlap), row.dist}
		for range [3]struct{}{} { // tasks
			for range [2]struct{}{} { // baseline, duet
				if errs[i] != nil {
					return errs[i]
				}
				if utils[i] < 0 {
					cells = append(cells, "never")
				} else {
					cells = append(cells, metrics.Pct(utils[i]))
				}
				i++
			}
		}
		rows = append(rows, cells)
	}
	fmt.Fprintln(w, "# Table 5: maximum utilization at which each task completes in the window")
	metrics.RenderTable(w, headers, rows)
	return nil
}

func init() {
	register(Experiment{ID: "fig1", Title: "File access distributions", Run: runFig1})
	register(Experiment{ID: "fig2", Title: "I/O saved: scrubbing + webserver", Run: runFig2})
	register(Experiment{ID: "fig3", Title: "I/O saved: backup + webserver", Run: runFig3})
	register(Experiment{ID: "fig4", Title: "Rsync speedup vs overlap", Run: runFig4})
	register(Experiment{ID: "tab5", Title: "Maximum utilization (scrub/backup/defrag)", Run: runTab5})
	register(Experiment{ID: "fig10", Title: "I/O saved on SSD", Run: runFig10})
}
