package experiments

import (
	"fmt"
	"sync"

	"duet/internal/machine"
	"duet/internal/obs"
	"duet/internal/tasks"
)

// Per-cell observability. Grid cells run concurrently, so a single
// shared registry would interleave nondeterministically; instead every
// cell records into its own obs handle, and the cell's registry is
// merged into the run-level registry when the cell completes. The merge
// is commutative (counters sum, gauges take maxima, histograms add
// bucket-wise), so the merged result is identical no matter how the
// worker pool interleaves completions — mirroring the stdout
// determinism guarantee the grid already makes.
//
// Traces cannot be merged commutatively (they are ordered streams), so
// per-cell tracers are exported as separate trace processes. Grid cells
// reserve their position in the trace list up front, in input order
// (reserveTraceSlots), and serially-driven cells append as they finish;
// either way the trace file is a pure function of the run's inputs, so
// -trace no longer needs a single worker.

var obsCfg struct {
	mu      sync.Mutex
	enabled bool
	tracing bool
	reg     *obs.Registry
	cells   []obs.TraceProcess
}

// EnableObs switches subsequent experiment cells to record
// observability data, returning the run-level registry that cell
// metrics merge into. With tracing true, each cell also fills its own
// bounded trace ring, collected via CellTraces. Calibration probes are
// excluded — they are shared across cells through the calibration
// cache, so charging their activity to any one cell would make the
// merged registry depend on cache state.
func EnableObs(tracing bool) *obs.Registry {
	obsCfg.mu.Lock()
	defer obsCfg.mu.Unlock()
	obsCfg.enabled = true
	obsCfg.tracing = tracing
	obsCfg.reg = obs.NewRegistry()
	obsCfg.cells = nil
	return obsCfg.reg
}

// DisableObs turns per-cell observability back off (tests use this to
// restore the package default).
func DisableObs() {
	obsCfg.mu.Lock()
	defer obsCfg.mu.Unlock()
	obsCfg.enabled = false
	obsCfg.tracing = false
	obsCfg.reg = nil
	obsCfg.cells = nil
}

// ObsRegistry returns the run-level registry (nil unless EnableObs was
// called).
func ObsRegistry() *obs.Registry {
	obsCfg.mu.Lock()
	defer obsCfg.mu.Unlock()
	return obsCfg.reg
}

// CellTraces returns the per-cell tracers collected so far, in
// deterministic order: grid cells at their reserved input-order slots,
// serially-driven cells in completion (= program) order. Slots whose
// cell errored out (or recorded nothing) are skipped.
func CellTraces() []obs.TraceProcess {
	obsCfg.mu.Lock()
	defer obsCfg.mu.Unlock()
	var out []obs.TraceProcess
	for _, c := range obsCfg.cells {
		if c.T != nil {
			out = append(out, c)
		}
	}
	return out
}

// obsTracing reports whether per-cell tracing is active. The one
// remaining nondeterministic ordering — tab5's scan-level fan-out, which
// issues whole grids concurrently — consults this to fall back to serial
// scans while tracing.
func obsTracing() bool {
	obsCfg.mu.Lock()
	defer obsCfg.mu.Unlock()
	return obsCfg.tracing
}

// reserveTraceSlots claims n consecutive positions in the trace list and
// returns the first index, or -1 when tracing is off. Reserving before
// the cells run pins the export order to grid input order.
func reserveTraceSlots(n int) int {
	obsCfg.mu.Lock()
	defer obsCfg.mu.Unlock()
	if !obsCfg.tracing {
		return -1
	}
	base := len(obsCfg.cells)
	obsCfg.cells = append(obsCfg.cells, make([]obs.TraceProcess, n)...)
	return base
}

// putCellTrace stores a finished cell's tracer at its reserved slot, or
// appends when the cell had none (serially-driven cells).
func putCellTrace(slot int, tp obs.TraceProcess) {
	if slot >= 0 && slot < len(obsCfg.cells) {
		obsCfg.cells[slot] = tp
		return
	}
	obsCfg.cells = append(obsCfg.cells, tp)
}

// newCellObs builds the obs handle for one cell, or nil when
// observability is off (the default: every machine hot path keeps its
// probe-free branch).
func newCellObs() *obs.Obs {
	obsCfg.mu.Lock()
	defer obsCfg.mu.Unlock()
	if !obsCfg.enabled {
		return nil
	}
	o := &obs.Obs{Metrics: obs.NewRegistry()}
	if obsCfg.tracing {
		o.Trace = obs.NewTracer(obs.DefaultTraceEvents)
	}
	return o
}

// finishLFSCell folds one GC-experiment cell (an LFS machine) into the
// run-level observability state. The GC sweeps run their cells
// sequentially per utilization point, so trace collection order is the
// deterministic input order.
func finishLFSCell(o *obs.Obs, m *machine.LFSMachine, name string) {
	countCell()
	if o == nil {
		return
	}
	m.CollectMetrics(o.Metrics)
	obsCfg.mu.Lock()
	defer obsCfg.mu.Unlock()
	if obsCfg.reg != nil {
		obsCfg.reg.Merge(o.Metrics)
		obsCfg.reg.Counter("grid.cells").Inc()
	}
	if o.Trace != nil {
		putCellTrace(-1, obs.TraceProcess{Name: name, T: o.Trace})
	}
}

// finishDirectCell folds a hand-driven cell — one that runs its engine
// directly instead of through runTasksOn (the ablations, the overhead
// probes, rsync) — into the run-level state and counts it. Such cells
// run serially inside their experiment, so appending preserves
// determinism.
func finishDirectCell(e *env, name string) {
	countCell()
	o := e.obs
	if o == nil {
		return
	}
	e.m.CollectMetrics(o.Metrics)
	obsCfg.mu.Lock()
	defer obsCfg.mu.Unlock()
	if obsCfg.reg != nil {
		obsCfg.reg.Merge(o.Metrics)
		obsCfg.reg.Counter("grid.cells").Inc()
	}
	if o.Trace != nil {
		putCellTrace(-1, obs.TraceProcess{Name: name, T: o.Trace})
	}
}

// finishCell folds one completed cell into the run-level state: task
// reports become spans/counters on the cell's own handle, the machine's
// counters are absorbed, and the cell registry merges into the run
// registry.
func finishCell(e *env, out *Outcome, duet bool) {
	o := e.obs
	if o == nil {
		return
	}
	for _, r := range out.Reports() {
		tasks.ObserveRun(o, r)
	}
	e.m.CollectMetrics(o.Metrics)
	obsCfg.mu.Lock()
	defer obsCfg.mu.Unlock()
	if obsCfg.reg != nil {
		obsCfg.reg.Merge(o.Metrics)
		obsCfg.reg.Counter("grid.cells").Inc()
	}
	if o.Trace != nil {
		name := fmt.Sprintf("%s %s u%02d seed%d", e.spec.Scale.Name,
			e.spec.Personality, int(e.spec.TargetUtil*100+0.5), e.spec.Seed)
		if duet {
			name += " duet"
		}
		putCellTrace(e.traceSlot, obs.TraceProcess{Name: name, T: o.Trace})
	}
}
