package experiments

import (
	"fmt"
	"io"

	"duet/internal/core"
	"duet/internal/metrics"
	"duet/internal/sim"
	"duet/internal/tasks/defrag"
	"duet/internal/workload"
)

// Ablations for the design choices DESIGN.md calls out. These are not
// paper figures; they quantify why Duet is built the way it is.

// runAbSched compares the CFQ-with-idle-class configuration against the
// Deadline scheduler that cannot prioritize (§6.5 "I/O prioritization"):
// without prioritization, maintenance finishes faster but slows the
// workload, which then generates fewer events, reducing I/O saved.
func runAbSched(s Scale, w io.Writer) error {
	fmt.Fprintln(w, "# Ablation: I/O prioritization (§6.5) — scrubbing + webserver at 50% target util")
	headers := []string{"Scheduler", "I/O saved", "Workload mean latency", "Workload ops", "Scrub done"}
	scheds := []string{"cfq", "deadline"}
	var cells []RunSpec
	for _, sched := range scheds {
		cells = append(cells, RunSpec{
			Env: EnvSpec{Scale: s, Seed: 1, Personality: workload.Webserver,
				TargetUtil: 0.5, Sched: sched},
			Tasks: []TaskName{TaskScrub},
			Duet:  true,
		})
	}
	results := RunGrid(cells, Workers)
	if err := FirstErr(results); err != nil {
		return err
	}
	var rows [][]string
	for i, sched := range scheds {
		out := results[i].Outcome
		rows = append(rows, []string{
			sched,
			fmt.Sprintf("%.3f", out.IOSaved()),
			fmt.Sprintf("%.2f ms", out.Workload.MeanLatency().Milliseconds()),
			fmt.Sprint(out.Workload.Ops),
			metrics.Pct(out.WorkCompleted()),
		})
	}
	metrics.RenderTable(w, headers, rows)
	return nil
}

// runAbFetch shows why tasks must poll regularly (§4.2): with infrequent
// fetches, descriptors back up and — once the per-session limit is hit —
// events are dropped.
func runAbFetch(s Scale, w io.Writer) error {
	fmt.Fprintln(w, "# Ablation: fetch frequency vs descriptor backlog (per-session limit 4096)")
	headers := []string{"Fetch interval", "Peak queue", "Dropped events", "Items fetched"}
	var rows [][]string
	for _, intervalMS := range []int{5, 50, 500, 5000} {
		spec := EnvSpec{Scale: s, Seed: 1, Personality: workload.Webserver, TargetUtil: 1}
		e, err := build(spec, 0)
		if err != nil {
			return err
		}
		root, err := e.m.FS.Lookup("/data")
		if err != nil {
			return err
		}
		sess, err := e.m.Duet.RegisterFile(e.m.Adapter, uint64(root.Ino), core.EventBits)
		if err != nil {
			return err
		}
		sess.MaxItems = 4096
		e.gen.Start(e.m.Eng)
		peak := 0
		fetched := int64(0)
		interval := sim.Time(intervalMS) * sim.Millisecond
		e.m.Eng.Go("fetcher", func(p *sim.Proc) {
			buf := make([]core.Item, 256)
			for {
				p.Sleep(interval)
				if q := sess.QueueLen(); q > peak {
					peak = q
				}
				for {
					n := sess.FetchInto(buf)
					fetched += int64(n)
					if n < len(buf) {
						break
					}
				}
			}
		})
		if err := e.m.Eng.RunFor(20 * sim.Second); err != nil {
			return err
		}
		finishDirectCell(e, fmt.Sprintf("ab-fetch %dms", intervalMS))
		rows = append(rows, []string{
			fmt.Sprintf("%d ms", intervalMS),
			fmt.Sprint(peak),
			fmt.Sprint(sess.Dropped),
			fmt.Sprint(fetched),
		})
	}
	metrics.RenderTable(w, headers, rows)
	return nil
}

// runAbPolicy compares the paper's most-cached-first priority queue with
// plain event-order processing for the defragmenter.
func runAbPolicy(s Scale, w io.Writer) error {
	fmt.Fprintln(w, "# Ablation: defragmenter queue policy (most-cached-fraction vs event order)")
	headers := []string{"Policy", "I/O saved", "Pages read", "Completed"}
	var rows [][]string
	for _, fifo := range []bool{false, true} {
		spec := EnvSpec{Scale: s, Seed: 1, Personality: workload.Webserver, TargetUtil: 0.6}
		rate, err := calibrateRate(spec)
		if err != nil {
			return err
		}
		e, err := build(spec, rate)
		if err != nil {
			return err
		}
		root, err := e.m.FS.Lookup("/data")
		if err != nil {
			return err
		}
		cfg := defrag.DefaultConfig()
		cfg.FIFOQueue = fifo
		d := defrag.NewOpportunistic(e.m.FS, root.Ino, cfg, e.m.Duet, e.m.Adapter)
		e.gen.Start(e.m.Eng)
		e.m.Eng.Go("task:defrag", func(p *sim.Proc) {
			if err := d.Run(p); err == nil {
				e.m.Eng.Stop()
			}
		})
		if err := e.m.Eng.RunFor(s.Window); err != nil {
			return err
		}
		name := "most-cached-first"
		if fifo {
			name = "event order"
		}
		finishDirectCell(e, "ab-policy "+name)
		saved := 0.0
		if d.Report.WorkTotal > 0 {
			saved = float64(d.Report.Saved) / float64(2*d.Report.WorkTotal)
		}
		rows = append(rows, []string{
			name,
			fmt.Sprintf("%.3f", saved),
			fmt.Sprint(d.Report.ReadBlocks),
			fmt.Sprint(d.Report.Completed),
		})
	}
	metrics.RenderTable(w, headers, rows)
	return nil
}

// runAbDone quantifies the framework-side done filtering of §4.1: marking
// items done inside Duet suppresses event processing for completed work,
// which a task-side-only design would keep paying for.
func runAbDone(s Scale, w io.Writer) error {
	fmt.Fprintln(w, "# Ablation: framework-side done filtering (events suppressed for done items)")
	out, err := runTasks(RunSpec{
		Env: EnvSpec{Scale: s, Seed: 1, Personality: workload.Webserver,
			TargetUtil: 0.7},
		Tasks: []TaskName{TaskScrub},
		Duet:  true,
	})
	if err != nil {
		return err
	}
	// The scrubber's session is closed after the run; its counters were
	// accumulated in the Duet stats. Re-derive from a live observer run.
	spec := EnvSpec{Scale: s, Seed: 1, Personality: workload.Webserver, TargetUtil: 0.7}
	rate, err := calibrateRate(spec)
	if err != nil {
		return err
	}
	e, err := build(spec, rate)
	if err != nil {
		return err
	}
	sess, err := e.m.Duet.RegisterBlock(e.m.Adapter, core.EvtAdded|core.EvtDirtied)
	if err != nil {
		return err
	}
	e.gen.Start(e.m.Eng)
	e.m.Eng.Go("marker", func(p *sim.Proc) {
		// Consume events and mark everything done, as the scrubber does.
		buf := make([]core.Item, 256)
		for {
			p.Sleep(20 * sim.Millisecond)
			for {
				n := sess.FetchInto(buf)
				for _, it := range buf[:n] {
					sess.SetDone(it.ID)
				}
				if n < len(buf) {
					break
				}
			}
		}
	})
	if err := e.m.Eng.RunFor(30 * sim.Second); err != nil {
		return err
	}
	finishDirectCell(e, "ab-done observer")
	rows := [][]string{
		{"events delivered", fmt.Sprint(sess.EventsSeen)},
		{"events suppressed by done bitmap", fmt.Sprint(sess.SuppressedDone)},
		{"suppression ratio", fmt.Sprintf("%.2f", float64(sess.SuppressedDone)/float64(sess.EventsSeen+sess.SuppressedDone+1))},
		{"scrub I/O saved (reference run)", fmt.Sprintf("%.3f", out.IOSaved())},
	}
	metrics.RenderTable(w, []string{"quantity", "value"}, rows)
	return nil
}

func init() {
	register(Experiment{ID: "ab-sched", Title: "Ablation: I/O prioritization", Run: runAbSched})
	register(Experiment{ID: "ab-fetch", Title: "Ablation: fetch frequency vs backlog", Run: runAbFetch})
	register(Experiment{ID: "ab-policy", Title: "Ablation: defrag queue policy", Run: runAbPolicy})
	register(Experiment{ID: "ab-done", Title: "Ablation: done-bitmap filtering", Run: runAbDone})
}

// runAbEvict measures the informed-cache-replacement extension (the
// PACMan-inspired future work of §2): reclaim defers evicting pages whose
// Duet hints no task has consumed yet. Compared at a cache-thrashing
// utilization with scrubbing + backup running concurrently.
func runAbEvict(s Scale, w io.Writer) error {
	fmt.Fprintln(w, "# Ablation: informed cache replacement (keep pages with unconsumed hints)")
	headers := []string{"Eviction policy", "I/O saved", "Work completed", "Reclaim deferrals"}
	var rows [][]string
	for _, informed := range []bool{false, true} {
		rate, err := calibrateRate(EnvSpec{Scale: s, Personality: workload.Webserver, TargetUtil: 0.6})
		if err != nil {
			return err
		}
		e, err := build(EnvSpec{Scale: s, Seed: 1, Personality: workload.Webserver, TargetUtil: 0.6}, rate)
		if err != nil {
			return err
		}
		if informed {
			e.m.Cache.SetAdvisor(e.m.Duet)
		}
		out, err := runTasksOn(e, []TaskName{TaskScrub, TaskBackup}, true, s.Window)
		if err != nil {
			return err
		}
		name := "LRU"
		if informed {
			name = "LRU + Duet advice"
		}
		rows = append(rows, []string{
			name,
			fmt.Sprintf("%.3f", out.IOSaved()),
			metrics.Pct(out.WorkCompleted()),
			fmt.Sprint(e.m.Cache.Stats().AdvisorDeferrals),
		})
	}
	metrics.RenderTable(w, headers, rows)
	return nil
}

func init() {
	register(Experiment{ID: "ab-evict", Title: "Ablation: informed cache replacement", Run: runAbEvict})
}
