package experiments

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
)

// The experiment grids — overlap × utilization × seed × {baseline, Duet}
// — are embarrassingly parallel: every cell builds its own deterministic
// sim.Engine and shares nothing with its neighbours except the guarded
// calibration cache. RunGrid fans cells out across a worker pool and
// reassembles results in input order, so a sweep renders byte-identical
// output at any worker count.
//
// Parallelism exists only BETWEEN engines: inside one engine exactly one
// simulated process runs at a time (see internal/sim), and that
// invariant is untouched here.

// Workers is the worker count the sweep helpers use. <= 0 means
// runtime.GOMAXPROCS(0). cmd/duetbench sets it from its -j flag.
var Workers int

// Progress, when non-nil, receives a one-line progress report as grid
// cells complete (cmd/duetbench points it at stderr). It must not share
// a stream with experiment output: figures are rendered to stdout and
// must stay byte-identical across worker counts.
var Progress io.Writer

// cellsRun counts grid cells executed process-wide, for the benchmark
// trajectory file cmd/duetbench emits.
var cellsRun atomic.Int64

// CellsRun returns the total number of grid cells executed so far.
func CellsRun() int64 { return cellsRun.Load() }

// countCell records one completed simulation cell. Every site that runs
// a full experiment machine — grid cells via runTasksOn, the ablations'
// hand-driven engines, the GC and fault sweeps, rsync — must call it
// exactly once per cell, so the benchmark trajectory's per-experiment
// "cells" field reflects the work that actually ran.
func countCell() { cellsRun.Add(1) }

// CellResult is one grid cell's outcome, tagged with the index of the
// RunSpec that produced it.
type CellResult struct {
	Index   int
	Outcome *Outcome
	Err     error
}

// RunGrid executes every cell on a pool of workers and returns the
// results in input order: results[i] corresponds to cells[i] regardless
// of completion order. workers <= 0 uses runtime.GOMAXPROCS(0). Errors
// are aggregated per cell rather than aborting the grid; FirstErr
// collapses them for callers that want fail-fast semantics.
func RunGrid(cells []RunSpec, workers int) []CellResult {
	// Trace slots are reserved up front in input order, so the trace file
	// lists cells by grid position no matter which worker finishes first —
	// the trace-side analogue of the results reordering below.
	base := reserveTraceSlots(len(cells))
	return runCells(len(cells), workers, func(i int) (*Outcome, error) {
		slot := -1
		if base >= 0 {
			slot = base + i
		}
		return runTasksSlot(cells[i], slot)
	})
}

// FirstErr returns the error of the lowest-indexed failed cell, or nil.
// Using input order (not completion order) keeps the reported error
// deterministic across worker counts.
func FirstErr(results []CellResult) error {
	for _, r := range results {
		if r.Err != nil {
			return fmt.Errorf("grid cell %d: %w", r.Index, r.Err)
		}
	}
	return nil
}

// Engine slots bound how many cells may run a machine at once across
// ALL grids in flight. Nested fan-out (runTab5 grids whole scans, each
// of which grids its seeds) would otherwise multiply concurrency — and
// each running cell holds a populated machine's memory.
var slots = struct {
	mu   sync.Mutex
	cond *sync.Cond
	used int
}{}

func acquireSlot(limit int) {
	slots.mu.Lock()
	if slots.cond == nil {
		slots.cond = sync.NewCond(&slots.mu)
	}
	for slots.used >= limit {
		slots.cond.Wait()
	}
	slots.used++
	slots.mu.Unlock()
}

func releaseSlot() {
	slots.mu.Lock()
	slots.used--
	slots.cond.Broadcast()
	slots.mu.Unlock()
}

// runCells is the generic executor behind RunGrid; tests inject run
// functions with shuffled completion times to check result ordering.
func runCells(n, workers int, run func(int) (*Outcome, error)) []CellResult {
	limit := workers
	if limit <= 0 {
		limit = runtime.GOMAXPROCS(0)
	}
	results := make([]CellResult, n)
	var done atomic.Int64
	var progressMu sync.Mutex
	gridEach(n, workers, func(i int) {
		acquireSlot(limit)
		out, err := run(i)
		releaseSlot()
		results[i] = CellResult{Index: i, Outcome: out, Err: err}
		d := done.Add(1)
		if Progress != nil && n > 1 {
			progressMu.Lock()
			fmt.Fprintf(Progress, "\r    grid: %d/%d cells", d, int64(n))
			if d == int64(n) {
				fmt.Fprintf(Progress, "\r%*s\r", 30+2*len(fmt.Sprint(n)), "")
			}
			progressMu.Unlock()
		}
	})
	return results
}

// gridEach runs fn(i) for every i in [0, n) across a worker pool. It is
// the bare parallel-for under RunGrid; runTab5 uses it directly because
// its unit of work is a whole adaptive scan, not a single RunSpec.
func gridEach(n, workers int, fn func(int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if n == 0 {
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
