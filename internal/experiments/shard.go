package experiments

import (
	"fmt"
	"io"

	"duet/internal/machine"
	"duet/internal/metrics"
	"duet/internal/obs"
	"duet/internal/sim"
	"duet/internal/storage"
	"duet/internal/tasks/scrub"
	"duet/internal/trace"
	"duet/internal/workload"
)

// The sharded-machine experiment: N independent device stacks (device +
// cache + filesystem + Duet) on N event domains, coordinated from the
// default domain over Ports. It is the cell the -dj flag parallelizes
// INSIDE one simulation — the other experiments parallelize only across
// cells — and the vehicle for the intra-sim speedup numbers in
// BENCH_medium.json. Results are byte-identical at any -dj; only
// wall-clock changes.

// DomainWorkers is the intra-simulation worker count for multi-domain
// cells (sharded machines). <= 0 means 1. cmd/duetbench and cmd/duetsim
// set it from their -dj flag. It never affects simulation output.
var DomainWorkers int

// WindowMode is the barrier protocol for multi-domain cells. The zero
// value is sim.WindowAdaptive; cmd/duetbench sets it from its -window
// flag. Like DomainWorkers, it never affects simulation output — the
// determinism CI gate diffs fixed against adaptive runs.
var WindowMode sim.WindowMode

// LegacyExec selects the goroutine executors instead of the inline
// callback hot path for every cell's machine. cmd/duetbench sets it
// from its -exec flag. It never affects simulation output — the CI
// speedup gate diffs and times callback against proc runs.
var LegacyExec bool

// shardCount is the number of independent stacks per sharded cell: four
// devices makes the conservative-window parallelism real (target ≥ 1.5x
// at -dj 4) while keeping the cell's footprint ≈ 4 ordinary cells.
const shardCount = 4

// shardWorkloadRate is a fixed foreground rate per shard (ops/s). The
// sharded cell skips utilization calibration — the point is engine
// behavior, not a paper figure — so the rate is pinned rather than
// bisected, keeping the cell cheap and the cross-shard load identical.
const shardWorkloadRate = 24

func runShardExp(s Scale, w io.Writer) error {
	fmt.Fprintf(w, "# Sharded machine: %d device stacks on %d event domains, scrubbing + webserver per shard\n",
		shardCount, shardCount+1)
	headers := []string{"Mode", "I/O saved", "Work completed", "Shards finished", "Reports"}
	var rows [][]string
	for _, duet := range []bool{false, true} {
		var ioSaved, workDone []float64
		finished, reports := 0, int64(0)
		for _, seed := range seeds(s) {
			r, err := runShardCell(s, seed, duet)
			if err != nil {
				return err
			}
			ioSaved = append(ioSaved, r.ioSaved)
			workDone = append(workDone, r.workCompleted)
			finished += r.finished
			reports += r.reports
		}
		mode := "baseline"
		if duet {
			mode = "duet"
		}
		mIO, _ := metrics.CI95(ioSaved)
		mWk, _ := metrics.CI95(workDone)
		rows = append(rows, []string{
			mode,
			fmt.Sprintf("%.3f", mIO),
			metrics.Pct(mWk),
			fmt.Sprintf("%d/%d", finished, shardCount*len(seeds(s))),
			fmt.Sprint(reports),
		})
	}
	metrics.RenderTable(w, headers, rows)
	return nil
}

type shardCellResult struct {
	ioSaved       float64
	workCompleted float64
	finished      int   // shards whose scrubber completed in the window
	reports       int64 // cross-domain report messages the coordinator saw
}

// runShardCell runs one sharded simulation: every shard waits for a
// start command from the coordinator, then runs a webserver workload
// plus a scrubber; shards stream progress reports back, and the
// coordinator stops the run early once every shard reports done.
func runShardCell(s Scale, seed int64, duet bool) (*shardCellResult, error) {
	o := newCellObs()
	m, err := machine.NewSharded(machine.ShardedConfig{
		Config: machine.Config{
			Seed:         seed,
			DeviceBlocks: s.DeviceBlocks,
			Model:        storage.DefaultHDD(s.DeviceBlocks).Slowed(s.DeviceSlow),
			CachePages:   s.CachePages,
			IdleGrace:    sim.Time(2.5 * s.DeviceSlow * float64(sim.Millisecond)),
			Obs:          o,
			LegacyExec:   LegacyExec,
		},
		Shards:      shardCount,
		PortLatency: sim.Millisecond,
		WindowMode:  WindowMode,
	})
	if err != nil {
		return nil, err
	}
	dj := DomainWorkers
	if dj < 1 {
		dj = 1
	}
	m.Eng.SetWorkers(dj)

	ps := machine.DefaultPopulateSpec("/data", s.DataPages)
	ps.MeanFilePages = 128
	ps.Files = int(s.DataPages / 128)
	files, err := m.Populate(ps)
	if err != nil {
		return nil, err
	}

	scrubbers := make([]*scrub.Scrubber, shardCount)
	// One error slot per shard: shard procs run concurrently during
	// windows, so they must never write shared state.
	scrubErrs := make([]error, shardCount)
	for i, sh := range m.Shards {
		i, sh := i, sh
		gen, err := workload.New(sh.Dom, sh.FS, files[i], workload.Config{
			Personality: workload.Webserver,
			Dir:         "/data",
			Coverage:    1,
			Dist:        trace.ByName("uniform"),
			OpsPerSec:   shardWorkloadRate,
		})
		if err != nil {
			return nil, err
		}
		var sc *scrub.Scrubber
		if duet {
			sc = scrub.NewOpportunistic(sh.FS, scrub.DefaultConfig(), sh.Duet, sh.Adapter)
		} else {
			sc = scrub.New(sh.FS, scrub.DefaultConfig())
		}
		scrubbers[i] = sc
		sh.Dom.Go("shard-main", func(p *sim.Proc) {
			if cmd := sh.Ctl.Recv(p); cmd.Kind != "start" {
				return
			}
			gen.Start(sh.Dom)
			// Progress heartbeats keep the coordinator ports busy for the
			// whole window, so the cross-domain path is exercised under
			// sustained load rather than just at the endpoints.
			sh.Dom.Go("shard-progress", func(hp *sim.Proc) {
				for !hp.Engine().Stopping() {
					hp.Sleep(sim.Second)
					sh.Report.Send(hp, machine.ShardReport{
						Shard: i, Kind: "progress",
						Value: sc.Report.WorkDone, At: hp.Now(),
					})
				}
			})
			if err := sc.Run(p); err != nil {
				scrubErrs[i] = err
			}
			sh.Report.Send(p, machine.ShardReport{
				Shard: i, Kind: "done", Value: sc.Report.WorkDone, At: p.Now(),
			})
		})
	}

	res := &shardCellResult{}
	wg := sim.NewWaitGroup(m.Eng)
	for _, sh := range m.Shards {
		sh := sh
		wg.Add(1)
		// One collector per shard on the coordinator domain: drain the
		// shard's report stream until it says done.
		m.Eng.Go("coord-collect", func(p *sim.Proc) {
			defer wg.Done()
			for {
				r := sh.Report.Recv(p)
				res.reports++
				if r.Kind == "done" {
					return
				}
			}
		})
	}
	m.Eng.Go("coordinator", func(p *sim.Proc) {
		for _, sh := range m.Shards {
			sh.Ctl.Send(p, machine.ShardCommand{Kind: "start"})
		}
		wg.Wait(p)
		m.Eng.Stop() // every shard finished before the window closed
	})

	if err := m.Eng.RunFor(s.Window); err != nil {
		return nil, err
	}
	for i, err := range scrubErrs {
		if err != nil {
			return nil, fmt.Errorf("shard %d scrub: %w", i, err)
		}
	}

	var saved, total, done float64
	for _, sc := range scrubbers {
		saved += float64(sc.Report.Saved)
		total += float64(sc.Report.WorkTotal)
		done += float64(sc.Report.WorkDone)
		if sc.Report.Completed {
			res.finished++
		}
	}
	if total > 0 {
		res.ioSaved = saved / total
		res.workCompleted = done / total
		if res.workCompleted > 1 {
			res.workCompleted = 1
		}
	}
	finishShardCell(o, m, seed, duet)
	return res, nil
}

// finishShardCell folds one sharded cell into the run-level obs state:
// the engine plus per-shard registries merge commutatively, and the
// per-domain tracers export as separate trace processes in domain order.
func finishShardCell(o *obs.Obs, m *machine.ShardedMachine, seed int64, duet bool) {
	countCell()
	if o == nil {
		return
	}
	m.CollectMetrics(o.Metrics)
	for _, sh := range m.Shards {
		if sh.Obs != nil && sh.Obs.Metrics != nil {
			o.Metrics.Merge(sh.Obs.Metrics)
		}
	}
	obsCfg.mu.Lock()
	defer obsCfg.mu.Unlock()
	if obsCfg.reg != nil {
		obsCfg.reg.Merge(o.Metrics)
		obsCfg.reg.Counter("grid.cells").Inc()
	}
	mode := "base"
	if duet {
		mode = "duet"
	}
	for _, tp := range m.TraceProcesses(fmt.Sprintf("shard-cell %s seed%d", mode, seed)) {
		putCellTrace(-1, tp)
	}
}

func init() {
	register(Experiment{ID: "shard", Title: "Sharded multi-device machine (domain-parallel engine)", Run: runShardExp})
}
