package experiments

import (
	"bytes"
	"strings"
	"testing"

	"duet/internal/workload"
)

func TestScaleByName(t *testing.T) {
	for _, name := range []string{"tiny", "small", "full", ""} {
		if _, ok := ByName(name); !ok {
			t.Errorf("ByName(%q) failed", name)
		}
	}
	if _, ok := ByName("bogus"); ok {
		t.Error("bogus scale resolved")
	}
}

func TestUtilsSweep(t *testing.T) {
	u := ScaleTiny.Utils()
	if len(u) != 5 || u[0] != 0 || u[len(u)-1] != 1 {
		t.Errorf("Utils = %v", u)
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
		"fig9", "fig10", "tab5", "tab6", "mem", "lat", "shard",
		"ab-sched", "ab-fetch", "ab-policy", "ab-done"}
	for _, id := range want {
		if _, ok := Lookup(id); !ok {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if len(IDs()) < len(want) {
		t.Errorf("IDs = %v", IDs())
	}
}

func TestCalibrationConverges(t *testing.T) {
	spec := EnvSpec{Scale: ScaleTiny, Personality: workload.Webserver, TargetUtil: 0.5}
	rate, err := calibrateRate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if rate <= 0 {
		t.Fatalf("rate = %v", rate)
	}
	// Verify the calibrated rate actually lands near the target.
	u, err := measureUtil(spec, rate)
	if err != nil {
		t.Fatal(err)
	}
	if u < 0.35 || u > 0.65 {
		t.Errorf("calibrated util = %.2f, want ~0.5", u)
	}
	// Cached on second call.
	r2, err := calibrateRate(spec)
	if err != nil || r2 != rate {
		t.Errorf("cache miss: %v vs %v (%v)", r2, rate, err)
	}
	// Edge targets.
	if r, _ := calibrateRate(EnvSpec{Scale: ScaleTiny, TargetUtil: 0}); r != -1 {
		t.Errorf("target 0 rate = %v", r)
	}
	if r, _ := calibrateRate(EnvSpec{Scale: ScaleTiny, TargetUtil: 1}); r != 0 {
		t.Errorf("target 1 rate = %v", r)
	}
}

func TestRunScrubIdleCompletes(t *testing.T) {
	out, err := runTasks(RunSpec{
		Env:   EnvSpec{Scale: ScaleTiny, Seed: 1, TargetUtil: 0},
		Tasks: []TaskName{TaskScrub},
		Duet:  false,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Completed() {
		t.Error("idle-device scrub did not complete")
	}
	if out.Util != 0 {
		t.Errorf("util = %v with no workload", out.Util)
	}
	if got := out.IOSaved(); got != 0 {
		t.Errorf("baseline IOSaved = %v", got)
	}
	if out.WorkCompleted() != 1 {
		t.Errorf("WorkCompleted = %v", out.WorkCompleted())
	}
}

func TestRunScrubDuetSavesUnderWorkload(t *testing.T) {
	out, err := runTasks(RunSpec{
		Env: EnvSpec{Scale: ScaleTiny, Seed: 1, Personality: workload.Webserver,
			Coverage: 1.0, TargetUtil: 0.5},
		Tasks: []TaskName{TaskScrub},
		Duet:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.IOSaved() <= 0 {
		t.Error("duet scrub saved nothing at 50% util")
	}
	if out.Util < 0.2 || out.Util > 0.8 {
		t.Errorf("measured util = %.2f", out.Util)
	}
	if out.Workload == nil || out.Workload.Ops == 0 {
		t.Error("workload did not run")
	}
}

func TestConcurrentTasksShareOnePass(t *testing.T) {
	// The Figure 5 mechanism: scrub + backup with Duet and NO workload
	// save a large fraction because whichever task reads a block first
	// covers the other.
	out, err := runTasks(RunSpec{
		Env:   EnvSpec{Scale: ScaleTiny, Seed: 1, TargetUtil: 0},
		Tasks: []TaskName{TaskScrub, TaskBackup},
		Duet:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := out.IOSaved(); got < 0.3 {
		t.Errorf("IOSaved = %.3f, want >= 0.3 (shared pass)", got)
	}
	if !out.Completed() {
		t.Error("tasks did not complete on an idle device")
	}
	// Baseline comparison: two full passes, nothing saved.
	base, err := runTasks(RunSpec{
		Env:   EnvSpec{Scale: ScaleTiny, Seed: 1, TargetUtil: 0},
		Tasks: []TaskName{TaskScrub, TaskBackup},
		Duet:  false,
	})
	if err != nil {
		t.Fatal(err)
	}
	if base.IOSaved() != 0 {
		t.Errorf("baseline IOSaved = %v", base.IOSaved())
	}
	if out.Elapsed >= base.Elapsed {
		t.Errorf("duet elapsed %v >= baseline %v (should finish faster)", out.Elapsed, base.Elapsed)
	}
}

func TestFig1Renders(t *testing.T) {
	var b bytes.Buffer
	if err := runFig1(ScaleTiny, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"ms-dev0", "ms-dev1", "ms-dev2", "uniform"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig1 output missing %q", want)
		}
	}
}

func TestGCCleanStatsDuetReadsLess(t *testing.T) {
	g := gcScaleFor(ScaleTiny)
	g.window = 20 * 1e9 // 20 virtual seconds
	rate, err := calibrateLFSRate(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	bt, br, err := gcCleanStats(g, 1, rate, false)
	if err != nil {
		t.Fatal(err)
	}
	dt, dr, err := gcCleanStats(g, 1, rate, true)
	if err != nil {
		t.Fatal(err)
	}
	if bt == 0 || dt == 0 {
		t.Skipf("cleaner idle in tiny window (baseline=%v duet=%v)", bt, dt)
	}
	if dr > br {
		t.Errorf("duet reads/seg %.1f > baseline %.1f", dr, br)
	}
}

func TestMaxUtilizationDuetAtLeastBaseline(t *testing.T) {
	row := tab5Row{personality: workload.Webserver, overlap: 1.0, dist: "uniform"}
	base, err := maxUtilization(ScaleTiny, row, TaskScrub, false)
	if err != nil {
		t.Fatal(err)
	}
	duet, err := maxUtilization(ScaleTiny, row, TaskScrub, true)
	if err != nil {
		t.Fatal(err)
	}
	if duet < base {
		t.Errorf("duet max util %.2f < baseline %.2f", duet, base)
	}
}

func TestAbEvictRegistered(t *testing.T) {
	if _, ok := Lookup("ab-evict"); !ok {
		t.Error("ab-evict not registered")
	}
}
