package experiments

import (
	"bytes"
	"testing"
)

// TestShardExpDeterministicAcrossWorkers is the experiment-level form of
// the -dj obligation: the sharded experiment's rendered output must be
// byte-identical at any intra-sim worker count.
func TestShardExpDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("sharded cell at tiny scale is a full simulation")
	}
	old := DomainWorkers
	defer func() { DomainWorkers = old }()
	run := func(dj int) string {
		DomainWorkers = dj
		var b bytes.Buffer
		if err := runShardExp(ScaleTiny, &b); err != nil {
			t.Fatalf("dj=%d: %v", dj, err)
		}
		return b.String()
	}
	ref := run(1)
	for _, dj := range []int{2, 8} {
		if got := run(dj); got != ref {
			t.Fatalf("-dj %d output diverged from -dj 1:\n-- dj1 --\n%s\n-- dj%d --\n%s", dj, ref, dj, got)
		}
	}
}

// TestShardCellProgress checks the cross-domain control path end to end:
// the coordinator's start command reaches every shard and progress
// reports flow back over the window.
func TestShardCellProgress(t *testing.T) {
	if testing.Short() {
		t.Skip("sharded cell at tiny scale is a full simulation")
	}
	old := DomainWorkers
	defer func() { DomainWorkers = old }()
	DomainWorkers = 4
	r, err := runShardCell(ScaleTiny, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if r.reports < shardCount {
		t.Fatalf("coordinator saw %d reports, want at least one per shard (%d)", r.reports, shardCount)
	}
	if r.workCompleted <= 0 {
		t.Fatal("no scrub work completed in the window")
	}
}
