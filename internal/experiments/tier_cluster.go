package experiments

import (
	"fmt"
	"io"

	"duet/internal/cluster"
	"duet/internal/faults"
	"duet/internal/machine"
	"duet/internal/obs"
	"duet/internal/sim"
)

// The cluster tier experiment: replicated sharded volumes under
// machine-kill fault plans, comparing the naive re-replicator (full
// disk scan of the surviving primary) against the Duet-assisted
// repairer (cache-resident pages ship from memory). Every plan must
// end with zero lost blocks and every replica back in service; on the
// kill plans the Duet repairer must read strictly fewer disk blocks
// than the naive scan — that is the paper's opportunistic-maintenance
// claim lifted to the cluster layer.
//
// Device faults in this sweep are limited to transient errors and
// stalls: latent and permanent sector damage is the single-machine
// sweep's subject ("faults"), while this tier exercises whole-machine
// loss and network failure around it.

// clusterRow is one fault plan of the sweep.
type clusterRow struct {
	name string
	plan func(w sim.Time) faults.ClusterPlan
	// kills notes whether the plan takes machines down (and therefore
	// whether the naive-vs-duet disk-read comparison is meaningful).
	kills bool
}

func clusterRows() []clusterRow {
	return []clusterRow{
		{name: "fault-free", plan: func(w sim.Time) faults.ClusterPlan {
			return faults.ClusterPlan{}
		}},
		{name: "single-kill", kills: true, plan: func(w sim.Time) faults.ClusterPlan {
			return faults.ClusterPlan{
				Kills: []faults.KillEvent{
					{Node: 1, At: w / 5, RecoverAt: w/5 + w/4},
				},
			}
		}},
		{name: "double-kill", kills: true, plan: func(w sim.Time) faults.ClusterPlan {
			return faults.ClusterPlan{
				Kills: []faults.KillEvent{
					{Node: 1, At: w / 5, RecoverAt: w/5 + w/4},
					{Node: 2, At: w / 4, RecoverAt: w/4 + w/4},
				},
			}
		}},
		{name: "rekill", kills: true, plan: func(w sim.Time) faults.ClusterPlan {
			return faults.ClusterPlan{
				Kills: []faults.KillEvent{
					{Node: 1, At: w / 6, RecoverAt: w/6 + w/10},
					{Node: 1, At: w / 2, RecoverAt: w/2 + w/10},
				},
			}
		}},
		{name: "torn-log+net", kills: true, plan: func(w sim.Time) faults.ClusterPlan {
			return faults.ClusterPlan{
				Kills: []faults.KillEvent{
					{Node: 1, At: w / 5, RecoverAt: w/5 + w/4},
				},
				Partitions: []faults.Partition{
					{A: 2, B: 3, From: w / 15, To: 2 * w / 15},
				},
				TornLogRate:    1.0,
				CorruptLogRate: 0.5,
				Disk: faults.Plan{
					TransientReadRate:  0.01,
					TransientWriteRate: 0.01,
					StallRate:          0.005,
					StallDelay:         2 * sim.Millisecond,
				},
			}
		}},
	}
}

// clusterConfig sizes one cluster cell from the scale: four nodes,
// three-way replication, a quarter of the scale's cache per node, and
// shards sized so the full replicated set stays a small multiple of
// the single-machine population.
func clusterConfig(s Scale, seed int64, mode cluster.RepairMode,
	plan faults.ClusterPlan, o *obs.Obs) cluster.Config {
	shardPages := s.DataPages / 256
	if shardPages < 16 {
		shardPages = 16
	}
	plan.Seed = uint64(seed)*0x9e3779b97f4a7c15 + 0xb5
	return cluster.Config{
		Config: machine.Config{
			Seed:         seed,
			DeviceBlocks: s.DeviceBlocks / 16,
			CachePages:   s.CachePages / 4,
			Obs:          o,
			LegacyExec:   LegacyExec,
		},
		Nodes:      4,
		Replicas:   3,
		Shards:     4,
		ShardPages: shardPages,
		Window:     s.Window,
		WindowMode: WindowMode,
		Mode:       mode,
		Plan:       plan,
	}
}

// clusterCell runs one (row, mode, seed) cell to completion and checks
// its safety assertions.
func clusterCell(s Scale, seed int64, row clusterRow,
	mode cluster.RepairMode) (cluster.Stats, machine.Robustness, error) {
	o := newCellObs()
	cfg := clusterConfig(s, seed, mode, row.plan(s.Window), o)
	c, err := cluster.New(cfg)
	if err != nil {
		return cluster.Stats{}, machine.Robustness{}, err
	}
	dj := DomainWorkers
	if dj < 1 {
		dj = 1
	}
	c.Eng.SetWorkers(dj)
	if err := c.Eng.RunFor(cfg.Window); err != nil {
		return cluster.Stats{}, machine.Robustness{}, err
	}
	st := c.Stats()
	rep := c.Audit()

	var rob machine.Robustness
	for _, n := range c.Nodes {
		rob.Add(n.Stack().Robustness())
	}
	rob.Kills = st.Kills
	rob.Repairs = st.ShardRepairs
	rob.DegradedUs = st.DegradedUs
	rob.ClusterLostBlocks = rep.LostBlocks

	if len(rep.NodeErrors) > 0 {
		return st, rob, fmt.Errorf("node failed to recover: %v", rep.NodeErrors[0])
	}
	if rep.LostBlocks != 0 {
		return st, rob, fmt.Errorf("%d acked blocks lost (want 0)", rep.LostBlocks)
	}
	if rep.UnsyncedReplicas != 0 || rep.DeadNodes != 0 {
		return st, rob, fmt.Errorf("not fully re-replicated: %d unsynced, %d dead",
			rep.UnsyncedReplicas, rep.DeadNodes)
	}
	if rep.MediumErrors != 0 {
		return st, rob, fmt.Errorf("%d medium checksum failures", rep.MediumErrors)
	}
	if st.ConsistencyViolations != 0 {
		return st, rob, fmt.Errorf("%d stale primary reads", st.ConsistencyViolations)
	}

	finishClusterCell(o, c, row.name, mode, seed)
	return st, rob, nil
}

// finishClusterCell folds one cell into the run-level observability
// state: node metrics merge into the shared registry, tracers export in
// coordinator-then-nodes order. Cells run sequentially, so collection
// order is the deterministic row × mode × seed input order.
func finishClusterCell(o *obs.Obs, c *cluster.Cluster, rowName string,
	mode cluster.RepairMode, seed int64) {
	countCell()
	if o == nil {
		return
	}
	c.CollectMetrics(o.Metrics)
	obsCfg.mu.Lock()
	defer obsCfg.mu.Unlock()
	if obsCfg.reg != nil {
		obsCfg.reg.Merge(o.Metrics)
		obsCfg.reg.Counter("grid.cells").Inc()
	}
	prefix := fmt.Sprintf("cluster %s %v seed%d", rowName, mode, seed)
	for _, tp := range c.TraceProcesses(prefix) {
		putCellTrace(-1, tp)
	}
}

func runClusterTier(s Scale, w io.Writer) error {
	fmt.Fprintf(w, "%-14s %-6s %7s %6s %8s %9s %9s %8s %9s %6s\n",
		"plan", "mode", "acked", "kills", "repairs", "degr_ms", "repair_ms",
		"shipped", "diskreads", "hits")
	for _, row := range clusterRows() {
		var disk [2]int64
		for mi, mode := range []cluster.RepairMode{cluster.RepairNaive, cluster.RepairDuet} {
			var agg cluster.Stats
			var rob machine.Robustness
			for _, seed := range seeds(s) {
				st, cellRob, err := clusterCell(s, seed, row, mode)
				if err != nil {
					return fmt.Errorf("cluster %s %v seed %d: %w", row.name, mode, seed, err)
				}
				addClusterStats(&agg, st)
				rob.Add(cellRob)
			}
			disk[mi] = agg.RepairDiskReads
			fmt.Fprintf(w, "%-14s %-6v %7d %6d %8d %9d %9d %8d %9d %6d\n",
				row.name, mode, agg.WritesAcked, agg.Kills, agg.ShardRepairs,
				agg.DegradedUs/1000, agg.RepairWindowUs/1000,
				agg.PagesShipped, agg.RepairDiskReads, agg.RepairCacheHits)
			recordRobustness(rob)
		}
		if row.kills && disk[1] >= disk[0] {
			return fmt.Errorf("cluster %s: duet repair read %d disk blocks, naive %d (want strictly fewer)",
				row.name, disk[1], disk[0])
		}
	}
	return nil
}

// addClusterStats sums the counter fields of two runs (the per-seed
// aggregation; Epoch takes the max since it is a level, not a count).
func addClusterStats(a *cluster.Stats, o cluster.Stats) {
	ep := a.Epoch
	if o.Epoch > ep {
		ep = o.Epoch
	}
	a.WritesIssued += o.WritesIssued
	a.WritesAcked += o.WritesAcked
	a.WriteRejects += o.WriteRejects
	a.WriteFailures += o.WriteFailures
	a.ReadsIssued += o.ReadsIssued
	a.ReadsOK += o.ReadsOK
	a.ReadFallbacks += o.ReadFallbacks
	a.ReadFailures += o.ReadFailures
	a.UnavailOps += o.UnavailOps
	a.RPCRetries += o.RPCRetries
	a.RPCTimeouts += o.RPCTimeouts
	a.ConsistencyViolations += o.ConsistencyViolations
	a.KillsDetected += o.KillsDetected
	a.Joins += o.Joins
	a.RepairsStarted += o.RepairsStarted
	a.ShardRepairs += o.ShardRepairs
	a.DegradedUs += o.DegradedUs
	a.ReadOnlyUs += o.ReadOnlyUs
	a.UnavailUs += o.UnavailUs
	a.RepairWindowUs += o.RepairWindowUs
	a.Kills += o.Kills
	a.Recoveries += o.Recoveries
	a.RecordsAppended += o.RecordsAppended
	a.RecordsReplayed += o.RecordsReplayed
	a.TornLogs += o.TornLogs
	a.CorruptLogs += o.CorruptLogs
	a.ApplyWrites += o.ApplyWrites
	a.ResyncApplied += o.ResyncApplied
	a.PagesShipped += o.PagesShipped
	a.RepairDiskReads += o.RepairDiskReads
	a.RepairCacheHits += o.RepairCacheHits
	a.ReplRetries += o.ReplRetries
	a.CommitErrors += o.CommitErrors
	a.DroppedDead += o.DroppedDead
	a.DroppedPartition += o.DroppedPartition
	a.Epoch = ep
}

func init() {
	register(Experiment{
		ID:    "cluster",
		Title: "Cluster tier: replicated shards, machine kills, Duet-assisted repair",
		Run:   runClusterTier,
	})
}
