package experiments

import (
	"fmt"
	"io"
	"sync"

	"duet/internal/lfs"
	"duet/internal/machine"
	"duet/internal/metrics"
	"duet/internal/obs"
	"duet/internal/sim"
	"duet/internal/storage"
	"duet/internal/tasks/gcduet"
	"duet/internal/workload"
)

// Table 6 (§6.2): segment cleaning time with and without Duet, under the
// fileserver workload at 40–70% device utilization. The opportunistic
// collector prefers victims whose valid blocks are cached, so its
// cleaning time drops as the workload heats the cache; the baseline's
// stays roughly flat.

// gcScale derives the lfs geometry from a Scale: a fraction of the cowfs
// data size, 2 MiB segments, filled to ~70% and aged with random
// overwrites before measurement.
type gcScale struct {
	deviceBlocks int64
	segBlocks    int
	files        int
	filePages    int64
	cachePages   int
	window       sim.Time
	ageOps       int
	slow         float64
}

func gcScaleFor(s Scale) gcScale {
	dev := s.DeviceBlocks / 8
	if dev < 16384 {
		dev = 16384
	}
	g := gcScale{
		deviceBlocks: dev,
		segBlocks:    512,
		cachePages:   s.CachePages / 2,
		window:       s.Window,
		slow:         s.DeviceSlow,
	}
	g.filePages = 384 // ~1.5 MiB files
	g.files = int(float64(dev) * 0.7 / float64(g.filePages))
	g.ageOps = g.files * 2
	return g
}

// newLFSMachine builds the bare machine for the GC experiments. o is
// the cell's observability handle (nil when off, and for calibration
// probes — they are shared through the calibration cache, so charging
// them to a cell would make the registry depend on cache state).
func newLFSMachine(g gcScale, seed int64, o *obs.Obs) (*machine.LFSMachine, error) {
	return machine.NewLFS(machine.Config{
		Seed:         seed,
		DeviceBlocks: g.deviceBlocks,
		Model:        storage.DefaultHDD(g.deviceBlocks).Slowed(g.slow),
		CachePages:   g.cachePages,
		Obs:          o,
		LegacyExec:   LegacyExec,
	}, lfs.Config{SegBlocks: g.segBlocks, ReservedSegs: 8})
}

// setupLFS populates and ages the filesystem inside the running
// simulation, then drops the cache so measurement starts cold.
func setupLFS(p *sim.Proc, m *machine.LFSMachine, g gcScale) ([]*lfs.Inode, error) {
	var files []*lfs.Inode
	for i := 0; i < g.files; i++ {
		f, err := m.FS.Create(fmt.Sprintf("f%05d", i))
		if err != nil {
			return nil, err
		}
		if err := m.FS.Write(p, f.Ino, 0, g.filePages); err != nil {
			return nil, err
		}
		files = append(files, f)
		if i%8 == 7 {
			m.FS.Sync(p)
		}
	}
	m.FS.Sync(p)
	// Age: random partial overwrites punch holes into segments so the
	// cleaner has work.
	rng := m.Eng.DeriveRand("lfs-age")
	for i := 0; i < g.ageOps; i++ {
		f := files[rng.Intn(len(files))]
		off := rng.Int63n(g.filePages - 8)
		if err := m.FS.Write(p, f.Ino, off, 8); err != nil {
			return nil, err
		}
		if i%16 == 15 {
			m.FS.Sync(p)
		}
	}
	m.FS.Sync(p)
	for _, f := range files {
		m.Cache.RemoveFile(m.FS.ID(), uint64(f.Ino))
	}
	return files, nil
}

// gcRun executes one GC measurement: build, set up, start the workload
// (rate 0 = unthrottled, negative = none) and the cleaner, run for the
// window, and hand the cleaner records to collect.
func gcRun(g gcScale, seed int64, rate float64, duet bool,
	collect func(gc *lfs.GC, gen *workload.Generator, m *machine.LFSMachine)) error {
	o := newCellObs()
	m, err := newLFSMachine(g, seed, o)
	if err != nil {
		return err
	}
	var gc *lfs.GC
	var gen *workload.Generator
	var setupErr error
	m.Eng.Go("gc-main", func(p *sim.Proc) {
		files, err := setupLFS(p, m, g)
		if err != nil {
			setupErr = err
			m.Eng.Stop()
			return
		}
		if rate >= 0 {
			gen, err = workload.NewLFS(m.Eng, m.FS, files, workload.Config{
				Personality: workload.Fileserver,
				OpsPerSec:   rate,
				Name:        "fileserver-lfs",
			})
			if err != nil {
				setupErr = err
				m.Eng.Stop()
				return
			}
			gen.Start(m.Eng)
		}
		gcCfg := lfs.GCConfig{
			Interval:       100 * sim.Millisecond,
			IdleAfter:      sim.Time(5*g.slow) * sim.Millisecond,
			UrgentFreeSegs: 4,
			WindowSegs:     4096,
		}
		if duet {
			var tr *gcduet.Tracker
			gc, tr, err = gcduet.StartGC(m.Eng, m.Duet, m.Adapter, m.FS, gcCfg)
			if err != nil {
				setupErr = err
				m.Eng.Stop()
				return
			}
			_ = tr
		} else {
			gc = m.FS.StartGC(gcCfg)
		}
		p.Sleep(g.window)
		m.Eng.Stop()
	})
	if err := m.Eng.Run(); err != nil {
		return err
	}
	if setupErr != nil {
		return setupErr
	}
	if collect != nil && gc != nil {
		collect(gc, gen, m)
	}
	mode := "base"
	if duet {
		mode = "duet"
	}
	finishLFSCell(o, m, fmt.Sprintf("gc %s r%.2f seed%d", mode, rate, seed))
	return nil
}

// gcCleanStats returns the mean cleaning time and mean blocks read per
// cleaned segment for one run.
func gcCleanStats(g gcScale, seed int64, rate float64, duet bool) (sim.Time, float64, error) {
	var mean sim.Time
	var reads float64
	err := gcRun(g, seed, rate, duet, func(gc *lfs.GC, _ *workload.Generator, _ *machine.LFSMachine) {
		if len(gc.Records) == 0 {
			return
		}
		mean = gc.MeanCleanTime()
		var sum float64
		for _, r := range gc.Records {
			sum += float64(r.BlocksRead)
		}
		reads = sum / float64(len(gc.Records))
	})
	return mean, reads, err
}

func runTab6(s Scale, w io.Writer) error {
	g := gcScaleFor(s)
	fmt.Fprintln(w, "# Table 6: segment cleaning time with and without Duet (fileserver workload)")
	headers := []string{"Utilization", "Baseline clean (ms)", "Duet clean (ms)", "Baseline reads/seg", "Duet reads/seg"}
	var rows [][]string
	for _, util := range []float64{0.4, 0.5, 0.6, 0.7} {
		rate, err := calibrateLFSRate(g, util)
		if err != nil {
			return err
		}
		var bTimes, dTimes, bReads, dReads []float64
		for _, seed := range seeds(s) {
			bt, br, err := gcCleanStats(g, seed, rate, false)
			if err != nil {
				return err
			}
			dt, dr, err := gcCleanStats(g, seed, rate, true)
			if err != nil {
				return err
			}
			if bt > 0 {
				bTimes = append(bTimes, bt.Milliseconds())
				bReads = append(bReads, br)
			}
			if dt > 0 {
				dTimes = append(dTimes, dt.Milliseconds())
				dReads = append(dReads, dr)
			}
		}
		bm, bc := metrics.CI95(bTimes)
		dm, dc := metrics.CI95(dTimes)
		rows = append(rows, []string{
			metrics.Pct(util),
			fmt.Sprintf("%.1f±%.1f", bm, bc),
			fmt.Sprintf("%.1f±%.1f", dm, dc),
			fmt.Sprintf("%.0f", metrics.Mean(bReads)),
			fmt.Sprintf("%.0f", metrics.Mean(dReads)),
		})
	}
	metrics.RenderTable(w, headers, rows)
	return nil
}

// --- lfs utilization calibration ---------------------------------------------

type lfsCalKey struct {
	dev    int64
	decile int
}

// Guarded like calCache so gc experiments stay safe under RunGrid-style
// concurrency.
var (
	lfsCalMu    sync.Mutex
	lfsCalCache = map[lfsCalKey]float64{}
)

// calibrateLFSRate finds the fileserver ops/sec producing the target
// utilization on the aged lfs, measured without any cleaner running.
func calibrateLFSRate(g gcScale, target float64) (float64, error) {
	key := lfsCalKey{g.deviceBlocks, int(target*100 + 0.5)}
	lfsCalMu.Lock()
	r, ok := lfsCalCache[key]
	lfsCalMu.Unlock()
	if ok {
		return r, nil
	}
	measure := func(rate float64) (float64, error) {
		m, err := newLFSMachine(g, calSeed, nil)
		if err != nil {
			return 0, err
		}
		var util float64
		var setupErr error
		m.Eng.Go("probe", func(p *sim.Proc) {
			files, err := setupLFS(p, m, g)
			if err != nil {
				setupErr = err
				m.Eng.Stop()
				return
			}
			gen, err := workload.NewLFS(m.Eng, m.FS, files, workload.Config{
				Personality: workload.Fileserver,
				OpsPerSec:   rate,
				Name:        "fileserver-lfs",
			})
			if err != nil {
				setupErr = err
				m.Eng.Stop()
				return
			}
			gen.Start(m.Eng)
			p.Sleep(5 * sim.Second)
			before := m.Disk.Snapshot()
			p.Sleep(20 * sim.Second)
			util = storage.UtilBetween(before, m.Disk.Snapshot())
			m.Eng.Stop()
		})
		if err := m.Eng.Run(); err != nil {
			return 0, err
		}
		return util, setupErr
	}
	lo, hi := 0.0, 16.0
	for {
		u, err := measure(hi)
		if err != nil {
			return 0, err
		}
		if u >= target {
			break
		}
		lo = hi
		hi *= 2
		if hi > 65536 {
			lfsCalMu.Lock()
			lfsCalCache[key] = 0
			lfsCalMu.Unlock()
			return 0, nil
		}
	}
	for i := 0; i < 10; i++ {
		mid := (lo + hi) / 2
		u, err := measure(mid)
		if err != nil {
			return 0, err
		}
		if u < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	rate := (lo + hi) / 2
	lfsCalMu.Lock()
	lfsCalCache[key] = rate
	lfsCalMu.Unlock()
	return rate, nil
}

func init() {
	register(Experiment{ID: "tab6", Title: "GC segment cleaning time (fileserver on lfs)", Run: runTab6})
}
