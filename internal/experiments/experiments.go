// Package experiments reproduces every table and figure of the paper's
// evaluation (§6). Each experiment is registered in All and renders the
// same rows/series the paper reports as plain text.
//
// Scales: the paper ran 30-minute windows over 50 GB of data with a 2 GB
// page cache on a 300 GB 10K RPM drive. ScaleSmall reproduces the
// *ratios* that drive the results at laptop cost: the cache:data ratio
// (~4%), the fraction of the window that maintenance work occupies
// (scrubbing ≈ 20%, backup ≈ 2× scrubbing), and the device's
// sequential:random performance ratio (via a uniformly slowed HDD model).
// ScaleFull approximates the paper's absolute numbers and is reachable
// from cmd/duetbench -scale=full.
package experiments

import (
	"fmt"
	"io"
	"sync"

	"duet/internal/cowfs"
	"duet/internal/machine"
	"duet/internal/obs"
	"duet/internal/sim"
	"duet/internal/storage"
	"duet/internal/tasks"
	"duet/internal/tasks/backup"
	"duet/internal/tasks/defrag"
	"duet/internal/tasks/scrub"
	"duet/internal/trace"
	"duet/internal/workload"
)

// Scale sizes an experiment.
type Scale struct {
	Name         string
	DataPages    int64    // population size
	DeviceBlocks int64    // device capacity
	CachePages   int      // page cache budget (~4% of data, like the paper)
	Window       sim.Time // the paper's 30-minute experiment window
	Seeds        int      // repetitions (the paper averages 3 runs)
	DeviceSlow   float64  // device latency multiplier (see package doc)
	UtilStep     float64  // utilization sweep granularity
}

// ScaleTiny is for unit tests of the harness itself.
var ScaleTiny = Scale{
	Name:         "tiny",
	DataPages:    16384, // 64 MiB
	DeviceBlocks: 65536, // 256 MiB
	CachePages:   1024,  // 4 MiB
	Window:       30 * sim.Second,
	Seeds:        1,
	DeviceSlow:   4,
	UtilStep:     0.25,
}

// ScaleSmall is the default for benchmarks and cmd/duetbench.
var ScaleSmall = Scale{
	Name:         "small",
	DataPages:    196608, // 768 MiB
	DeviceBlocks: 524288, // 2 GiB
	CachePages:   8192,   // 32 MiB ≈ 4.2% of data
	Window:       120 * sim.Second,
	Seeds:        2,
	DeviceSlow:   4,
	UtilStep:     0.1,
}

// ScaleMedium sits between small and full: enough data and window for
// per-cell runtimes where intra-simulation parallelism (-dj) pays off
// measurably, while a single cell still finishes in minutes. It is the
// scale BENCH_medium.json is recorded at.
var ScaleMedium = Scale{
	Name:         "medium",
	DataPages:    786432,  // 3 GiB
	DeviceBlocks: 2097152, // 8 GiB
	CachePages:   32768,   // 128 MiB ≈ 4.2% of data
	Window:       300 * sim.Second,
	Seeds:        2,
	DeviceSlow:   2,
	UtilStep:     0.1,
}

// ScaleFull approximates the paper's setup (50 GB data, 2 GB cache,
// 30-minute window). Expect long runtimes and several GB of memory.
var ScaleFull = Scale{
	Name:         "full",
	DataPages:    13107200, // 50 GiB
	DeviceBlocks: 16777216, // 64 GiB
	CachePages:   524288,   // 2 GiB
	Window:       30 * sim.Minute,
	Seeds:        3,
	DeviceSlow:   1,
	UtilStep:     0.1,
}

// ByName resolves a scale name.
func ByName(name string) (Scale, bool) {
	switch name {
	case "tiny":
		return ScaleTiny, true
	case "small", "":
		return ScaleSmall, true
	case "medium":
		return ScaleMedium, true
	case "full":
		return ScaleFull, true
	}
	return Scale{}, false
}

// Utils returns the utilization sweep points 0..1 at the scale's step.
func (s Scale) Utils() []float64 {
	var out []float64
	for u := 0.0; u < 1.0+1e-9; u += s.UtilStep {
		out = append(out, round2(u))
	}
	return out
}

func round2(v float64) float64 { return float64(int(v*100+0.5)) / 100 }

// EnvSpec describes one run's environment.
type EnvSpec struct {
	Scale       Scale
	Seed        int64
	Device      machine.DeviceKind // default HDD
	Sched       string             // default cfq
	Personality workload.Personality
	Dist        string  // trace distribution name ("uniform" default)
	Coverage    float64 // data overlap with maintenance (default 1.0)
	// TargetUtil is the paper's device-utilization knob: <= 0 disables
	// the workload, >= 1 runs it unthrottled, anything between is
	// throttled via a calibrated ops/sec rate.
	TargetUtil float64
	// FragmentedFrac overrides the populated fragmentation (default 0.1,
	// the paper's "10% fragmented file system").
	FragmentedFrac float64
}

func (s EnvSpec) withDefaults() EnvSpec {
	if s.Device == "" {
		s.Device = machine.HDD
	}
	if s.Sched == "" {
		s.Sched = "cfq"
	}
	if s.Dist == "" {
		s.Dist = "uniform"
	}
	if s.Coverage <= 0 || s.Coverage > 1 {
		s.Coverage = 1
	}
	if s.Personality == "" {
		s.Personality = workload.Webserver
	}
	if s.FragmentedFrac == 0 {
		s.FragmentedFrac = 0.1
	}
	return s
}

func (s EnvSpec) model() storage.Model {
	switch s.Device {
	case machine.SSD:
		return storage.DefaultSSD(s.Scale.DeviceBlocks).Slowed(s.Scale.DeviceSlow)
	default:
		return storage.DefaultHDD(s.Scale.DeviceBlocks).Slowed(s.Scale.DeviceSlow)
	}
}

// env is a built environment.
type env struct {
	m     *machine.Machine
	files []*cowfs.Inode
	gen   *workload.Generator // nil when TargetUtil <= 0
	spec  EnvSpec             // resolved spec (labels the cell's trace)
	obs   *obs.Obs            // nil unless EnableObs is active
	// traceSlot is the cell's reserved position in the run-level trace
	// list (-1 to append): grid cells get input-order slots so the trace
	// file is byte-identical at any worker count.
	traceSlot int
}

// build constructs the machine, population and (rate-resolved) workload
// for one experiment cell, attaching per-cell observability when
// enabled.
func build(spec EnvSpec, rate float64) (*env, error) {
	return buildWith(spec, rate, newCellObs())
}

// buildWith is build with an explicit obs handle (nil disables;
// calibration probes pass nil so shared probes are never charged to a
// cell).
func buildWith(spec EnvSpec, rate float64, o *obs.Obs) (*env, error) {
	spec = spec.withDefaults()
	m, err := machine.New(machine.Config{
		Seed:         spec.Seed,
		DeviceBlocks: spec.Scale.DeviceBlocks,
		Device:       spec.Device,
		Model:        spec.model(),
		Scheduler:    spec.Sched,
		CachePages:   spec.Scale.CachePages,
		// CFQ's slice_idle anticipation is ~8 ms on real hardware; scale
		// it with the device so idle-class starvation behaves the same
		// at reduced scales.
		IdleGrace:  sim.Time(2.5 * spec.Scale.DeviceSlow * float64(sim.Millisecond)),
		Obs:        o,
		LegacyExec: LegacyExec,
	})
	if err != nil {
		return nil, err
	}
	ps := machine.DefaultPopulateSpec("/data", spec.Scale.DataPages)
	ps.FragmentedFrac = spec.FragmentedFrac
	// Larger files than the library default: with the window and device
	// scaled down, 512 KiB mean files keep the ratio of
	// workload-coverage time to scan time in the paper's regime (a
	// uniform workload must be able to touch its covered set within the
	// window at mid utilizations).
	ps.MeanFilePages = 128
	ps.Files = int(spec.Scale.DataPages / 128)
	files, err := m.Populate(ps)
	if err != nil {
		return nil, err
	}
	e := &env{m: m, files: files, spec: spec, obs: o, traceSlot: -1}
	if spec.TargetUtil > 0 {
		gen, err := workload.New(m.Eng, m.FS, files, workload.Config{
			Personality: spec.Personality,
			Dir:         "/data",
			Coverage:    spec.Coverage,
			Dist:        trace.ByName(spec.Dist),
			OpsPerSec:   rate,
		})
		if err != nil {
			return nil, err
		}
		e.gen = gen
	}
	return e, nil
}

// --- utilization calibration ------------------------------------------------
//
// The paper profiles each Filebench personality at different throttle
// levels to find the rates that produce each device utilization (§6.1.2).
// calibrateRate reproduces that profiling with a bisection over ops/sec,
// measuring %util on a fresh machine per probe. Results are memoized per
// (scale, personality, distribution, coverage, device, scheduler).

type calKey struct {
	scale       string
	personality workload.Personality
	dist        string
	coverage    float64
	device      machine.DeviceKind
	sched       string
	decile      int
}

// The calibration cache is the only state shared between grid cells, so
// it is guarded for RunGrid's worker pool. In-flight calibrations are
// deduplicated: concurrent cells that need the same key wait for the
// first one instead of bisecting redundantly. Calibration is seeded with
// the fixed calSeed, so results are identical no matter which worker
// computes them.
var (
	calMu       sync.Mutex
	calCache    = map[calKey]float64{}
	calInflight = map[calKey]*calCall{}
)

type calCall struct {
	done chan struct{}
	rate float64
	err  error
}

// calLookup resolves a calibration through the cache, deduplicating
// concurrent computations of the same key.
func calLookup(key calKey, compute func() (float64, error)) (float64, error) {
	calMu.Lock()
	if r, ok := calCache[key]; ok {
		calMu.Unlock()
		return r, nil
	}
	if c, ok := calInflight[key]; ok {
		calMu.Unlock()
		<-c.done
		return c.rate, c.err
	}
	c := &calCall{done: make(chan struct{})}
	calInflight[key] = c
	calMu.Unlock()

	c.rate, c.err = compute()
	calMu.Lock()
	if c.err == nil {
		calCache[key] = c.rate
	}
	delete(calInflight, key)
	calMu.Unlock()
	close(c.done)
	return c.rate, c.err
}

const calSeed = 424242

// measureUtil runs the workload alone at the given rate and returns the
// steady-state device utilization.
func measureUtil(spec EnvSpec, rate float64) (float64, error) {
	probe := spec
	probe.Seed = calSeed
	e, err := buildWith(probe, rate, nil)
	if err != nil {
		return 0, err
	}
	const warmup = 5 * sim.Second
	const window = 20 * sim.Second
	e.gen.Start(e.m.Eng)
	var before, after storage.Snapshot
	e.m.Eng.Go("probe", func(p *sim.Proc) {
		p.Sleep(warmup)
		before = e.m.Disk.Snapshot()
		p.Sleep(window)
		after = e.m.Disk.Snapshot()
		e.m.Eng.Stop()
	})
	if err := e.m.Eng.Run(); err != nil {
		return 0, err
	}
	return storage.UtilBetween(before, after), nil
}

// calibrateRate returns the ops/sec that produces the target utilization
// (0 for unthrottled; -1 for "no workload").
func calibrateRate(spec EnvSpec) (float64, error) {
	spec = spec.withDefaults()
	switch {
	case spec.TargetUtil <= 0:
		return -1, nil
	case spec.TargetUtil >= 0.999:
		return 0, nil // unthrottled
	}
	key := calKey{
		scale: spec.Scale.Name, personality: spec.Personality, dist: spec.Dist,
		coverage: round2(spec.Coverage), device: spec.Device, sched: spec.Sched,
		decile: int(spec.TargetUtil*100 + 0.5),
	}
	return calLookup(key, func() (float64, error) {
		// Find an upper bound by doubling, then bisect.
		lo, hi := 0.0, 16.0
		for {
			u, err := measureUtil(spec, hi)
			if err != nil {
				return 0, err
			}
			if u >= spec.TargetUtil {
				break
			}
			lo = hi
			hi *= 2
			if hi > 65536 {
				// The device cannot be pushed to the target at this scale;
				// fall back to unthrottled.
				return 0, nil
			}
		}
		for i := 0; i < 10; i++ {
			mid := (lo + hi) / 2
			u, err := measureUtil(spec, mid)
			if err != nil {
				return 0, err
			}
			if u < spec.TargetUtil {
				lo = mid
			} else {
				hi = mid
			}
		}
		return (lo + hi) / 2, nil
	})
}

// --- task runs ---------------------------------------------------------------

// TaskName selects a maintenance task.
type TaskName string

// The cowfs maintenance tasks.
const (
	TaskScrub  TaskName = "scrub"
	TaskBackup TaskName = "backup"
	TaskDefrag TaskName = "defrag"
)

// RunSpec describes one maintenance run.
type RunSpec struct {
	Env   EnvSpec
	Tasks []TaskName
	Duet  bool
}

// Outcome captures one run's results.
type Outcome struct {
	Scrub  *scrub.Scrubber
	Backup *backup.Backup
	Defrag *defrag.Defrag
	// Util is the measured normal-class (workload) device utilization
	// over the window.
	Util float64
	// Workload is the generator's stats (nil without a workload).
	Workload *workload.Stats
	// Elapsed is how long the run lasted (≤ window; shorter when all
	// tasks finished early).
	Elapsed sim.Time
}

// Reports returns the task reports in a stable order.
func (o *Outcome) Reports() []tasks.Report {
	var out []tasks.Report
	if o.Scrub != nil {
		out = append(out, o.Scrub.Report)
	}
	if o.Backup != nil {
		out = append(out, o.Backup.Report)
	}
	if o.Defrag != nil {
		out = append(out, o.Defrag.Report)
	}
	return out
}

// IOSaved is the paper's Table 4 metric: maintenance I/O saved divided by
// the total maintenance I/O a Duet-less run performs. Defragmentation
// counts reads and writes (2× its pages).
func (o *Outcome) IOSaved() float64 {
	var saved, total float64
	if o.Scrub != nil {
		saved += float64(o.Scrub.Report.Saved)
		total += float64(o.Scrub.Report.WorkTotal)
	}
	if o.Backup != nil {
		saved += float64(o.Backup.Report.Saved)
		total += float64(o.Backup.Report.WorkTotal)
	}
	if o.Defrag != nil {
		saved += float64(o.Defrag.Report.Saved)
		total += float64(2 * o.Defrag.Report.WorkTotal)
	}
	if total == 0 {
		return 0
	}
	return saved / total
}

// WorkCompleted is the fraction of maintenance work finished within the
// window (Figures 6 and 8).
func (o *Outcome) WorkCompleted() float64 {
	var done, total float64
	for _, r := range o.Reports() {
		done += float64(r.WorkDone)
		total += float64(r.WorkTotal)
	}
	if total == 0 {
		return 1
	}
	if done > total {
		done = total
	}
	return done / total
}

// Completed reports whether every task finished its work list.
func (o *Outcome) Completed() bool {
	for _, r := range o.Reports() {
		if !r.Completed {
			return false
		}
	}
	return true
}

// runTasks executes one experiment run: populate, snapshot (for backup),
// start the workload, run the tasks concurrently, stop at the window (or
// when all tasks finish).
func runTasks(spec RunSpec) (*Outcome, error) {
	return runTasksSlot(spec, -1)
}

// runTasksSlot is runTasks with an explicit trace slot (RunGrid reserves
// input-order slots so parallel completion cannot reorder the trace).
func runTasksSlot(spec RunSpec, slot int) (*Outcome, error) {
	rate, err := calibrateRate(spec.Env)
	if err != nil {
		return nil, err
	}
	envSpec := spec.Env
	if rate < 0 {
		envSpec.TargetUtil = 0 // no workload
	}
	e, err := build(envSpec, rate)
	if err != nil {
		return nil, err
	}
	e.traceSlot = slot
	return runTasksOn(e, spec.Tasks, spec.Duet, spec.Env.Scale.Window)
}

// runTasksOn runs the task set on a pre-built environment (ablations use
// this to customise the machine first).
func runTasksOn(e *env, taskNames []TaskName, duet bool, window sim.Time) (*Outcome, error) {
	eng := e.m.Eng
	out := &Outcome{}

	dataRoot, err := e.m.FS.Lookup("/data")
	if err != nil {
		return nil, err
	}

	var taskErr error
	wg := sim.NewWaitGroup(eng)
	start := eng.Now()
	var before storage.Snapshot

	eng.Go("exp-main", func(p *sim.Proc) {
		// Snapshot first (backup works on a consistent snapshot).
		var snap *cowfs.Snapshot
		for _, t := range taskNames {
			if t == TaskBackup {
				s, err := e.m.FS.CreateSnapshot(p, "/data", "/snap")
				if err != nil {
					taskErr = err
					eng.Stop()
					return
				}
				snap = s
			}
		}
		before = e.m.Disk.Snapshot()
		if e.gen != nil {
			e.gen.Start(eng)
		}
		for _, t := range taskNames {
			t := t
			wg.Add(1)
			switch t {
			case TaskScrub:
				var s *scrub.Scrubber
				if duet {
					s = scrub.NewOpportunistic(e.m.FS, scrub.DefaultConfig(), e.m.Duet, e.m.Adapter)
				} else {
					s = scrub.New(e.m.FS, scrub.DefaultConfig())
				}
				out.Scrub = s
				eng.Go("task:scrub", func(tp *sim.Proc) {
					defer wg.Done()
					if err := s.Run(tp); err != nil && taskErr == nil {
						taskErr = err
					}
				})
			case TaskBackup:
				var b *backup.Backup
				if duet {
					b = backup.NewOpportunistic(e.m.FS, snap, backup.DefaultConfig(), e.m.Duet, e.m.Adapter)
				} else {
					b = backup.New(e.m.FS, snap, backup.DefaultConfig())
				}
				out.Backup = b
				eng.Go("task:backup", func(tp *sim.Proc) {
					defer wg.Done()
					if err := b.Run(tp); err != nil && taskErr == nil {
						taskErr = err
					}
				})
			case TaskDefrag:
				var d *defrag.Defrag
				if duet {
					d = defrag.NewOpportunistic(e.m.FS, dataRoot.Ino, defrag.DefaultConfig(), e.m.Duet, e.m.Adapter)
				} else {
					d = defrag.New(e.m.FS, dataRoot.Ino, defrag.DefaultConfig())
				}
				out.Defrag = d
				eng.Go("task:defrag", func(tp *sim.Proc) {
					defer wg.Done()
					if err := d.Run(tp); err != nil && taskErr == nil {
						taskErr = err
					}
				})
			default:
				wg.Done()
				taskErr = fmt.Errorf("experiments: unknown task %q", t)
			}
		}
		wg.Wait(p)
		eng.Stop() // all tasks done before the window closed
	})

	if err := eng.RunFor(window); err != nil {
		return nil, err
	}
	if taskErr != nil {
		return nil, taskErr
	}
	after := e.m.Disk.Snapshot()
	out.Util = storage.UtilClassBetween(before, after, storage.ClassNormal)
	if e.gen != nil {
		out.Workload = e.gen.Stats()
	}
	out.Elapsed = eng.Now() - start
	countCell()
	finishCell(e, out, duet)
	return out, nil
}

// Experiment is a registered, runnable reproduction of one paper item.
type Experiment struct {
	// ID matches DESIGN.md's per-experiment index ("fig2", "tab5", ...).
	ID string
	// Title describes the item.
	Title string
	// Run executes at the given scale and writes the rows/series.
	Run func(s Scale, w io.Writer) error
}

// All lists every experiment, in paper order.
var All []Experiment

func register(e Experiment) { All = append(All, e) }

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, bool) {
	for _, e := range All {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns the registered experiment IDs in order.
func IDs() []string {
	out := make([]string, len(All))
	for i, e := range All {
		out[i] = e.ID
	}
	return out
}

// seeds returns the per-scale seed list.
func seeds(s Scale) []int64 {
	n := s.Seeds
	if n < 1 {
		n = 1
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i + 1)
	}
	return out
}
