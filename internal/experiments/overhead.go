package experiments

import (
	"fmt"
	"io"
	"os"

	"duet/internal/core"
	"duet/internal/metrics"
	"duet/internal/sim"
	"duet/internal/workload"
)

// Overhead experiments (§6.4): CPU cost of the Duet hooks and fetch path
// (Figure 9) and memory cost of descriptors and bitmaps.

// runFig9 measures Duet's CPU overhead: a simple file task registers the
// data directory and fetches at fixed intervals while an unthrottled
// webserver workload generates page events (the paper's ~12 events/ms
// setup) — the closest analogue of the paper's "CPU available to
// applications" measurement.
//
// The rendered figure uses a fixed per-operation cost model over the
// (deterministic) simulated operation counts, so duetbench stdout stays
// byte-identical across runs and -j values; the live real-CPU
// measurement (Duet.MeasureCPU) still runs and is reported on stderr,
// where run-to-run jitter is harmless. The model constants below were
// calibrated against that measurement on the reference machine
// (see EXPERIMENTS.md).
const (
	fig9HookCost  = 250 // ns per page-event hook call
	fig9ItemCost  = 120 // ns per item delivered through Fetch
	fig9FetchCost = 900 // ns per duet_fetch invocation
)

func runFig9(s Scale, w io.Writer) error {
	fig := &metrics.Figure{
		Title:  "Figure 9: CPU overhead of Duet (unthrottled webserver generating events)",
		XLabel: "fetch-ms",
		YLabel: "Duet CPU overhead (%)",
	}
	const runFor = 30 * sim.Second
	masks := []struct {
		name string
		mask core.Mask
	}{
		{"events", core.EventBits},
		{"state", core.StExists | core.StModified},
	}
	for _, mk := range masks {
		series := metrics.Series{Name: mk.name}
		for _, fetchMS := range []int{10, 20, 40} {
			spec := EnvSpec{Scale: s, Seed: 1, Personality: workload.Webserver, TargetUtil: 1}
			e, err := build(spec, 0)
			if err != nil {
				return err
			}
			e.m.Duet.MeasureCPU = true
			root, err := e.m.FS.Lookup("/data")
			if err != nil {
				return err
			}
			sess, err := e.m.Duet.RegisterFile(e.m.Adapter, uint64(root.Ino), mk.mask)
			if err != nil {
				return err
			}
			e.gen.Start(e.m.Eng)
			interval := sim.Time(fetchMS) * sim.Millisecond
			e.m.Eng.Go("fetcher", func(p *sim.Proc) {
				buf := make([]core.Item, 256)
				for {
					p.Sleep(interval)
					for sess.FetchInto(buf) == len(buf) {
					}
				}
			})
			if err := e.m.Eng.RunFor(runFor); err != nil {
				return err
			}
			finishDirectCell(e, fmt.Sprintf("fig9 %s fetch%dms", mk.name, fetchMS))
			st := e.m.Duet.Stats()
			modelNanos := st.HookCalls*fig9HookCost + st.ItemsFetched*fig9ItemCost + st.FetchCalls*fig9FetchCost
			overhead := float64(modelNanos) / float64(runFor) * 100
			measured := float64(st.HookNanos+st.FetchNanos) / float64(runFor) * 100
			fmt.Fprintf(os.Stderr, "fig9: %s fetch=%dms modeled %.3f%%, measured %.3f%% CPU overhead\n",
				mk.name, fetchMS, overhead, measured)
			series.Points = append(series.Points, metrics.Point{X: float64(fetchMS), Y: overhead})
			if fetchMS == 10 && mk.name == "events" {
				fmt.Fprintf(w, "# event rate: %.1f events/ms (paper setup: ~12/ms), items fetched: %d, dropped: %d\n",
					float64(st.HookCalls)/runFor.Milliseconds(), st.ItemsFetched, st.EventsDropped)
			}
			_ = sess.Close()
		}
		fig.Series = append(fig.Series, series)
	}
	fig.Render(w)
	return nil
}

// runMem reports Duet's memory overhead while scrubbing with 100% overlap
// (§6.4's worst-case measurement: item descriptors bounded by 2× cache
// pages, bitmaps ~1 bit/block).
func runMem(s Scale, w io.Writer) error {
	// A dedicated state session plays the scrubber's role so the sampler
	// can observe live descriptor and bitmap sizes mid-run (runTasks
	// closes its sessions on completion).
	spec := EnvSpec{Scale: s, Seed: 1, Personality: workload.Webserver, TargetUtil: 0.5}
	rate, err := calibrateRate(spec)
	if err != nil {
		return err
	}
	e, err := build(spec, rate)
	if err != nil {
		return err
	}
	sess, err := e.m.Duet.RegisterBlock(e.m.Adapter, core.StExists|core.StModified)
	if err != nil {
		return err
	}
	e.gen.Start(e.m.Eng)
	var peakMem, peakQueue int
	e.m.Eng.Go("sampler", func(p *sim.Proc) {
		buf := make([]core.Item, 256)
		for {
			p.Sleep(20 * sim.Millisecond)
			for sess.FetchInto(buf) == len(buf) {
			}
			// Mark everything done as a scrubber would, exercising the
			// bitmap's growth.
			if m := e.m.Duet.MemBytes(); m > peakMem {
				peakMem = m
			}
			if q := sess.QueueLen(); q > peakQueue {
				peakQueue = q
			}
		}
	})
	if err := e.m.Eng.RunFor(30 * sim.Second); err != nil {
		return err
	}
	finishDirectCell(e, "mem sampler")
	st := e.m.Duet.Stats()
	descBound := 2 * s.CachePages
	fmt.Fprintln(w, "# Memory overhead (§6.4)")
	rows := [][]string{
		{"peak item descriptors", fmt.Sprint(st.PeakDescs), fmt.Sprintf("bound 2×cache = %d", descBound)},
		{"peak Duet memory (B)", fmt.Sprint(peakMem), "descriptors + bitmaps"},
		{"peak fetch queue", fmt.Sprint(peakQueue), fmt.Sprintf("limit %d", core.DefaultMaxItems)},
		{"events dropped", fmt.Sprint(st.EventsDropped), "0 expected with frequent fetches"},
	}
	metrics.RenderTable(w, []string{"quantity", "value", "note"}, rows)
	if int(st.PeakDescs) > descBound {
		return fmt.Errorf("mem: descriptor bound violated: %d > %d", st.PeakDescs, descBound)
	}
	return nil
}

// runLat verifies the §6.1.3 claim that idle-priority maintenance has an
// insignificant impact on workload latency (webserver at 50% util; the
// paper saw 11.67 ms alone, 11.60 with scrubbing, 11.82 with backup).
func runLat(s Scale, w io.Writer) error {
	type cfg struct {
		name  string
		tasks []TaskName
	}
	cases := []cfg{
		{"no maintenance", nil},
		{"with scrubbing", []TaskName{TaskScrub}},
		{"with backup", []TaskName{TaskBackup}},
	}
	fmt.Fprintln(w, "# Workload latency at 50% utilization with idle-priority maintenance (§6.1.3)")
	var rows [][]string
	var baseLat sim.Time
	for _, c := range cases {
		var lat sim.Time
		if c.tasks == nil {
			spec := EnvSpec{Scale: s, Seed: 1, Personality: workload.Webserver, TargetUtil: 0.5}
			rate, err := calibrateRate(spec)
			if err != nil {
				return err
			}
			e, err := build(spec, rate)
			if err != nil {
				return err
			}
			e.gen.Start(e.m.Eng)
			if err := e.m.Eng.RunFor(s.Window); err != nil {
				return err
			}
			finishDirectCell(e, "latency baseline")
			lat = e.gen.Stats().MeanLatency()
		} else {
			out, err := runTasks(RunSpec{
				Env: EnvSpec{Scale: s, Seed: 1, Personality: workload.Webserver,
					TargetUtil: 0.5},
				Tasks: c.tasks,
				Duet:  true,
			})
			if err != nil {
				return err
			}
			lat = out.Workload.MeanLatency()
		}
		if c.tasks == nil {
			baseLat = lat
		}
		delta := ""
		if baseLat > 0 {
			delta = fmt.Sprintf("%+.1f%%", (float64(lat)/float64(baseLat)-1)*100)
		}
		rows = append(rows, []string{c.name, fmt.Sprintf("%.2f ms", lat.Milliseconds()), delta})
	}
	metrics.RenderTable(w, []string{"configuration", "mean latency", "vs alone"}, rows)
	return nil
}

func init() {
	register(Experiment{ID: "fig9", Title: "CPU overhead of Duet", Run: runFig9})
	register(Experiment{ID: "mem", Title: "Memory overhead of Duet", Run: runMem})
	register(Experiment{ID: "lat", Title: "Workload latency impact", Run: runLat})
}
