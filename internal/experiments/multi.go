package experiments

import (
	"io"

	"duet/internal/machine"
	"duet/internal/metrics"
	"duet/internal/workload"
)

// Multi-task experiments (§6.3): when maintenance tasks run concurrently,
// Duet lets them share one pass over the common data, so savings appear
// even with no foreground workload at all.

// multiSweep runs a task set across utilizations, once with Duet and once
// baseline, collecting a metric from each outcome. The util × {duet,
// baseline} × seed grid runs on the worker pool; results are consumed in
// cell order, so the rendered series are identical at any worker count.
func multiSweep(s Scale, taskSet []TaskName, overlap float64,
	metric func(*Outcome) float64) (duet, base metrics.Series, err error) {
	duet.Name = "duet"
	base.Name = "baseline"
	utils := s.Utils()
	sds := seeds(s)
	var cells []RunSpec
	for _, util := range utils {
		for _, isDuet := range []bool{true, false} {
			for _, seed := range sds {
				cells = append(cells, RunSpec{
					Env: EnvSpec{
						Scale: s, Seed: seed, Personality: workload.Webserver,
						Coverage: overlap, TargetUtil: util, Device: machine.HDD,
					},
					Tasks: taskSet,
					Duet:  isDuet,
				})
			}
		}
	}
	results := RunGrid(cells, Workers)
	if err := FirstErr(results); err != nil {
		return duet, base, err
	}
	i := 0
	for _, util := range utils {
		for _, isDuet := range []bool{true, false} {
			var vals []float64
			for range sds {
				vals = append(vals, metric(results[i].Outcome))
				i++
			}
			mean, ci := metrics.CI95(vals)
			pt := metrics.Point{X: util, Y: mean, CI: ci}
			if isDuet {
				duet.Points = append(duet.Points, pt)
			} else {
				base.Points = append(base.Points, pt)
			}
		}
	}
	return duet, base, nil
}

// ioSavedMulti renders an I/O-saved figure for concurrent tasks at
// several overlaps (Duet only: the baseline saves nothing by
// definition of the metric).
func ioSavedMulti(s Scale, w io.Writer, title string, taskSet []TaskName) error {
	fig := &metrics.Figure{
		Title:  title,
		XLabel: "util",
		YLabel: "fraction of combined maintenance I/O saved",
	}
	overlaps := []float64{0.25, 0.50, 0.75, 1.00}
	utils := s.Utils()
	sds := seeds(s)
	var cells []RunSpec
	for _, ov := range overlaps {
		for _, util := range utils {
			for _, seed := range sds {
				cells = append(cells, RunSpec{
					Env: EnvSpec{
						Scale: s, Seed: seed, Personality: workload.Webserver,
						Coverage: ov, TargetUtil: util,
					},
					Tasks: taskSet,
					Duet:  true,
				})
			}
		}
	}
	results := RunGrid(cells, Workers)
	if err := FirstErr(results); err != nil {
		return err
	}
	i := 0
	for _, ov := range overlaps {
		series := metrics.Series{Name: "overlap=" + metrics.Pct(ov)}
		for _, util := range utils {
			var vals []float64
			for range sds {
				vals = append(vals, results[i].Outcome.IOSaved())
				i++
			}
			mean, ci := metrics.CI95(vals)
			series.Points = append(series.Points, metrics.Point{X: util, Y: mean, CI: ci})
		}
		fig.Series = append(fig.Series, series)
	}
	fig.Render(w)
	return nil
}

func runFig5(s Scale, w io.Writer) error {
	return ioSavedMulti(s, w,
		"Figure 5: I/O saved, scrubbing + backup running together (webserver workload)",
		[]TaskName{TaskScrub, TaskBackup})
}

func runFig6(s Scale, w io.Writer) error {
	duet, base, err := multiSweep(s, []TaskName{TaskScrub, TaskBackup}, 1.0,
		(*Outcome).WorkCompleted)
	if err != nil {
		return err
	}
	fig := &metrics.Figure{
		Title:  "Figure 6: maintenance work completed, scrubbing + backup (webserver workload)",
		XLabel: "util",
		YLabel: "fraction of maintenance work completed in the window",
		Series: []metrics.Series{duet, base},
	}
	fig.Render(w)
	return nil
}

func runFig7(s Scale, w io.Writer) error {
	return ioSavedMulti(s, w,
		"Figure 7: I/O saved, scrubbing + backup + defragmentation (webserver workload)",
		[]TaskName{TaskScrub, TaskBackup, TaskDefrag})
}

func runFig8(s Scale, w io.Writer) error {
	duet, base, err := multiSweep(s, []TaskName{TaskScrub, TaskBackup, TaskDefrag}, 1.0,
		(*Outcome).WorkCompleted)
	if err != nil {
		return err
	}
	fig := &metrics.Figure{
		Title:  "Figure 8: maintenance work completed, scrub + backup + defrag (webserver workload)",
		XLabel: "util",
		YLabel: "fraction of maintenance work completed in the window",
		Series: []metrics.Series{duet, base},
	}
	fig.Render(w)
	return nil
}

func init() {
	register(Experiment{ID: "fig5", Title: "I/O saved: scrub + backup together", Run: runFig5})
	register(Experiment{ID: "fig6", Title: "Work completed: scrub + backup", Run: runFig6})
	register(Experiment{ID: "fig7", Title: "I/O saved: scrub + backup + defrag", Run: runFig7})
	register(Experiment{ID: "fig8", Title: "Work completed: three tasks", Run: runFig8})
}
