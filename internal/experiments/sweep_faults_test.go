package experiments

import (
	"bytes"
	"testing"
)

// The robustness sweep must be deterministic (same plan, same seeds →
// byte-identical table) and must itself enforce the zero-lost-blocks
// acceptance bar — a nonzero lost column returns an error.
func TestFaultsSweepDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full tiny fault sweep twice")
	}
	s, ok := ByName("tiny")
	if !ok {
		t.Fatal("tiny scale missing")
	}
	var a, b bytes.Buffer
	if err := runFaultsSweep(s, &a); err != nil {
		t.Fatal(err)
	}
	if err := runFaultsSweep(s, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("fault sweep not deterministic:\n--- run 1\n%s--- run 2\n%s", a.String(), b.String())
	}
	if RobustnessSummary() == nil {
		t.Error("RobustnessSummary nil after the sweep ran")
	}
}
