package experiments

import (
	"bytes"
	"io"
	"testing"

	"duet/internal/obs"
)

// TestObsMergeDeterminism mirrors TestGridDeterminism for the metrics
// registry: the run-level registry assembled from per-cell merges must
// be byte-identical whether cells complete sequentially (workers=1) or
// in whatever order an eight-worker pool produces. The merge is
// commutative, so worker interleaving may only change wall-clock time.
func TestObsMergeDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full fig2 sweep in -short mode")
	}
	run := func(workers int) string {
		old := Workers
		Workers = workers
		defer func() { Workers = old }()
		reg := EnableObs(false)
		defer DisableObs()
		if err := runFig2(ScaleTiny, io.Discard); err != nil {
			t.Fatalf("fig2 with %d workers: %v", workers, err)
		}
		var b bytes.Buffer
		if err := obs.WriteMetricsText(&b, reg); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	serial := run(1)
	parallel := run(8)
	if serial != parallel {
		t.Errorf("merged registry differs between workers=1 and workers=8:\n--- workers=1\n%s\n--- workers=8\n%s", serial, parallel)
	}
	if len(serial) == 0 {
		t.Error("registry collected nothing")
	}
}

// TestObsCellAccounting checks that per-cell observability reaches the
// run registry at all: cells are counted, and counters from the major
// subsystems (engine, storage, page cache, Duet, filesystem, tasks)
// all report through one sweep.
func TestObsCellAccounting(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in -short mode")
	}
	reg := EnableObs(false)
	defer DisableObs()
	if err := runFig2(ScaleTiny, io.Discard); err != nil {
		t.Fatal(err)
	}
	if n := reg.Counter("grid.cells").Value(); n == 0 {
		t.Fatal("no cells merged into the run registry")
	}
	var b bytes.Buffer
	if err := obs.WriteMetricsText(&b, reg); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, prefix := range []string{"sim.", "storage.", "pagecache.", "duet.", "cowfs.", "task."} {
		if !bytes.Contains(b.Bytes(), []byte("counter "+prefix)) {
			t.Errorf("no %s* counters in merged registry:\n%s", prefix, out)
		}
	}
}

// TestObsDisabledByDefault guards the zero-cost default: without
// EnableObs, cells build with a nil obs handle and nothing is recorded.
func TestObsDisabledByDefault(t *testing.T) {
	if o := newCellObs(); o != nil {
		t.Fatal("cells must get a nil obs handle when observability is off")
	}
	if ObsRegistry() != nil || CellTraces() != nil {
		t.Fatal("run-level obs state must stay empty when disabled")
	}
}
