package metrics

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMeanStddev(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil)")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
	if Stddev([]float64{5}) != 0 {
		t.Error("Stddev of one sample")
	}
	if got := Stddev([]float64{2, 4, 4, 4, 5, 5, 7, 9}); math.Abs(got-2.138) > 0.01 {
		t.Errorf("Stddev = %v", got)
	}
}

func TestCI95(t *testing.T) {
	m, h := CI95([]float64{10, 12, 14})
	if m != 12 {
		t.Errorf("mean = %v", m)
	}
	// t(2 df) = 4.303; s = 2; half = 4.303*2/sqrt(3) ≈ 4.97.
	if math.Abs(h-4.97) > 0.05 {
		t.Errorf("half = %v", h)
	}
	if _, h := CI95([]float64{5}); h != 0 {
		t.Error("single-sample CI should be 0")
	}
	// Identical samples: zero width.
	if _, h := CI95([]float64{3, 3, 3}); h != 0 {
		t.Errorf("identical-sample CI = %v", h)
	}
}

func TestQuickCIContainsMean(t *testing.T) {
	f := func(raw []int8) bool {
		if len(raw) < 2 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		m, h := CI95(xs)
		return h >= 0 && !math.IsNaN(m) && !math.IsNaN(h)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRenderTable(t *testing.T) {
	var b bytes.Buffer
	RenderTable(&b, []string{"a", "bee"}, [][]string{{"1", "2"}, {"333", "4"}})
	out := b.String()
	if !strings.Contains(out, "a    bee") {
		t.Errorf("headers misaligned:\n%s", out)
	}
	if !strings.Contains(out, "333") {
		t.Errorf("rows missing:\n%s", out)
	}
}

func TestFigureRender(t *testing.T) {
	f := &Figure{
		Title: "test", XLabel: "util", YLabel: "saved",
		Series: []Series{
			{Name: "a", Points: []Point{{X: 0, Y: 0.5}, {X: 0.1, Y: 0.6, CI: 0.02}}},
			{Name: "b", Points: []Point{{X: 0, Y: 0.1}}},
		},
	}
	var b bytes.Buffer
	f.Render(&b)
	out := b.String()
	for _, want := range []string{"# test", "util", "0.500", "0.600±0.020", "0.100", "saved"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestFigureRenderUnionX(t *testing.T) {
	// Series with different X sets: the table must cover the union of X
	// values and leave cells empty where a series has no sample.
	f := &Figure{
		Title: "union", XLabel: "x", YLabel: "y",
		Series: []Series{
			{Name: "a", Points: []Point{{X: 1, Y: 1.0}, {X: 2, Y: 2.0}}},
			{Name: "b", Points: []Point{{X: 2, Y: 20.0}, {X: 3, Y: 30.0}}},
		},
	}
	var b bytes.Buffer
	f.Render(&b)
	out := b.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Title comment + header + separator + three X rows + y-axis comment.
	if len(lines) != 7 {
		t.Fatalf("got %d lines, want 7 (union of X = {1,2,3}):\n%s", len(lines), out)
	}
	// X rows appear in first-seen order: 1, 2, 3.
	for i, wantX := range []string{"1", "2", "3"} {
		if !strings.HasPrefix(strings.TrimSpace(lines[3+i]), wantX) {
			t.Errorf("row %d should start with x=%s:\n%s", i, wantX, out)
		}
	}
	// x=1 has no b sample; x=3 has no a sample — those cells stay empty.
	row1 := strings.Fields(lines[3])
	if len(row1) != 2 || row1[1] != "1.000" {
		t.Errorf("x=1 row should hold only series a: %q", lines[3])
	}
	row2 := strings.Fields(lines[4])
	if len(row2) != 3 || row2[1] != "2.000" || row2[2] != "20.000" {
		t.Errorf("x=2 row should hold both series: %q", lines[4])
	}
	row3 := strings.Fields(lines[5])
	if len(row3) != 2 || row3[1] != "30.000" {
		t.Errorf("x=3 row should hold only series b: %q", lines[5])
	}
}

func TestPct(t *testing.T) {
	if Pct(0.25) != "25%" {
		t.Errorf("Pct = %q", Pct(0.25))
	}
}
