// Package metrics implements the paper's evaluation metrics (Table 4) and
// small statistics helpers: I/O saved, maximum utilization, speedup,
// means and 95% confidence intervals, and plain-text rendering of the
// tables and figure series the experiment harness produces.
package metrics

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Stddev returns the sample standard deviation.
func Stddev(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(n-1))
}

// tStar95 holds two-sided 95% Student-t critical values for small sample
// sizes (index = degrees of freedom); larger samples use 1.96.
var tStar95 = []float64{0, 12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228}

// CI95 returns the mean and the half-width of the 95% confidence interval
// (the paper reports 95% confidence intervals where variability matters).
func CI95(xs []float64) (mean, half float64) {
	n := len(xs)
	mean = Mean(xs)
	if n < 2 {
		return mean, 0
	}
	t := 1.96
	if n-1 < len(tStar95) {
		t = tStar95[n-1]
	}
	half = t * Stddev(xs) / math.Sqrt(float64(n))
	return mean, half
}

// Point is one (x, y) sample with an optional confidence half-width.
type Point struct {
	X, Y, CI float64
}

// Series is a named curve, as plotted in the paper's figures.
type Series struct {
	Name   string
	Points []Point
}

// Figure is a set of series with axis labels.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// Render writes the figure as aligned text: one row per X, one column per
// series — the same rows/series a gnuplot input for the paper would have.
func (f *Figure) Render(w io.Writer) {
	fmt.Fprintf(w, "# %s\n", f.Title)
	headers := []string{f.XLabel}
	for _, s := range f.Series {
		headers = append(headers, s.Name)
	}
	// Collect the union of X values in first-series order.
	var xs []float64
	seen := map[float64]bool{}
	for _, s := range f.Series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	rows := make([][]string, 0, len(xs))
	for _, x := range xs {
		row := []string{trimFloat(x)}
		for _, s := range f.Series {
			cell := ""
			for _, p := range s.Points {
				if p.X == x {
					if p.CI > 0 {
						cell = fmt.Sprintf("%.3f±%.3f", p.Y, p.CI)
					} else {
						cell = fmt.Sprintf("%.3f", p.Y)
					}
					break
				}
			}
			row = append(row, cell)
		}
		rows = append(rows, row)
	}
	RenderTable(w, headers, rows)
	fmt.Fprintf(w, "# y-axis: %s\n", f.YLabel)
}

// RenderTable writes an aligned text table.
func RenderTable(w io.Writer, headers []string, rows [][]string) {
	width := make([]int, len(headers))
	for i, h := range headers {
		width[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if pad := width[i] - len(c); pad > 0 && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		return b.String()
	}
	fmt.Fprintln(w, line(headers))
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	fmt.Fprintln(w, line(sep))
	for _, r := range rows {
		fmt.Fprintln(w, line(r))
	}
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.2f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

// Pct formats a fraction as a percentage string.
func Pct(v float64) string { return fmt.Sprintf("%.0f%%", v*100) }
