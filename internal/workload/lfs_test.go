package workload

import (
	"testing"

	"duet/internal/lfs"
	"duet/internal/machine"
	"duet/internal/sim"
)

func newLFSMachine(t *testing.T) *machine.LFSMachine {
	t.Helper()
	m, err := machine.NewLFS(
		machine.Config{Seed: 1, DeviceBlocks: 1 << 14, CachePages: 512, Device: machine.SSD},
		lfs.Config{SegBlocks: 64, ReservedSegs: 4},
	)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// setupFiles writes the test population; call from inside a sim process.
func setupFiles(t *testing.T, m *machine.LFSMachine, p *sim.Proc) []*lfs.Inode {
	t.Helper()
	var files []*lfs.Inode
	for i := 0; i < 40; i++ {
		f, err := m.FS.Create(string(rune('a'+i%26)) + string(rune('0'+i/26)))
		if err != nil {
			t.Fatal(err)
		}
		if err := m.FS.Write(p, f.Ino, 0, 32); err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	m.FS.Sync(p)
	return files
}

func TestFileserverOnLFS(t *testing.T) {
	m := newLFSMachine(t)
	var stats *Stats
	m.Eng.Go("main", func(p *sim.Proc) {
		files := setupFiles(t, m, p)
		g, err := NewLFS(m.Eng, m.FS, files, Config{
			Personality: Fileserver,
			OpsPerSec:   100,
			Name:        "fs-lfs",
		})
		if err != nil {
			t.Error(err)
			m.Eng.Stop()
			return
		}
		stats = g.Stats()
		g.Start(m.Eng)
		p.Sleep(20 * sim.Second)
		m.Eng.Stop()
	})
	if err := m.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	if stats.Ops < 500 {
		t.Fatalf("ops = %d", stats.Ops)
	}
	if stats.Errors != 0 {
		t.Errorf("errors = %d", stats.Errors)
	}
	ratio := float64(stats.Reads) / float64(stats.Writes)
	if ratio < 0.25 || ratio > 1.0 {
		t.Errorf("read:write = %.2f, want ~0.5", ratio)
	}
	if stats.Deletes == 0 {
		t.Error("fileserver on lfs should churn files")
	}
	// The log-structured fs invalidates on every overwrite flush.
	if m.FS.Stats().Invalidations == 0 {
		t.Error("no invalidations despite overwrites")
	}
}

func TestLFSCoverage(t *testing.T) {
	m := newLFSMachine(t)
	var stats *Stats
	m.Eng.Go("main", func(p *sim.Proc) {
		files := setupFiles(t, m, p)
		g, err := NewLFS(m.Eng, m.FS, files, Config{
			Personality: Webserver,
			Coverage:    0.25,
			OpsPerSec:   200,
			Name:        "ws-lfs",
		})
		if err != nil {
			t.Error(err)
			m.Eng.Stop()
			return
		}
		var total int64
		for _, f := range files {
			total += f.SizePg
		}
		covered := g.CoveredPages()
		if covered <= 0 || covered >= total {
			t.Errorf("covered pages = %d of %d", covered, total)
		}
		if g.CoveredFiles() != nil {
			t.Error("CoveredFiles should be nil for lfs targets")
		}
		stats = g.Stats()
		g.Start(m.Eng)
		p.Sleep(10 * sim.Second)
		m.Eng.Stop()
	})
	if err := m.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	if stats.Ops == 0 {
		t.Error("no ops")
	}
}
