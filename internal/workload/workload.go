// Package workload generates foreground I/O in the style of the Filebench
// personalities the paper evaluates with (§6.1.1):
//
//   - webserver: read-mostly, 10:1 read-write ratio, all writes appending
//     to a single log file;
//   - webproxy: read-heavy, 4:1, with file appends, deletes and creates;
//   - fileserver: write-heavy, 1:2, overwriting and deleting files.
//
// The three knobs the paper varies are first-class here: *data overlap*
// (the Coverage fraction of files the workload ever touches), *file
// access distribution* (uniform or the skewed MS-trace models), and *I/O
// rate* (ops/sec throttling, calibrated by the experiment harness to hit
// a target device utilization).
//
// The generator is filesystem-agnostic (see Target); NewCow and NewLFS
// build it over the two simulated filesystems.
package workload

import (
	"errors"
	"fmt"
	"math/rand"

	"duet/internal/cowfs"
	"duet/internal/lfs"
	"duet/internal/sim"
	"duet/internal/trace"
)

// Owner labels workload I/O on the device.
const Owner = "workload"

// Personality selects the operation mix.
type Personality string

// The three personalities of §6.1.1.
const (
	Webserver  Personality = "webserver"
	Webproxy   Personality = "webproxy"
	Fileserver Personality = "fileserver"
)

// Personalities lists them in the paper's order.
func Personalities() []Personality { return []Personality{Webserver, Webproxy, Fileserver} }

// ReadWriteRatio returns the nominal read:write ratio of a personality.
func (p Personality) ReadWriteRatio() (r, w int) {
	switch p {
	case Webserver:
		return 10, 1
	case Webproxy:
		return 4, 1
	case Fileserver:
		return 1, 2
	}
	return 1, 1
}

// Config describes a workload.
type Config struct {
	Personality Personality
	// Dir is the directory holding the workload's files (cowfs targets).
	Dir string
	// Coverage is the fraction of the population the workload ever
	// accesses — the "data overlap with maintenance" knob (§6.1.1). 1.0
	// touches everything.
	Coverage float64
	// Dist picks files within the covered subset (uniform default).
	Dist trace.Distribution
	// OpsPerSec throttles the workload; 0 means unthrottled (back to
	// back operations).
	OpsPerSec float64
	// AppendPages is the size of append operations.
	AppendPages int64
	// Name disambiguates multiple generators' rng streams.
	Name string
}

// Stats counts workload activity.
type Stats struct {
	Ops          int64
	Reads        int64
	Writes       int64
	Deletes      int64
	Creates      int64
	Errors       int64
	TotalLatency sim.Time
	MaxLatency   sim.Time
}

// MeanLatency returns the average operation latency.
func (s *Stats) MeanLatency() sim.Time {
	if s.Ops == 0 {
		return 0
	}
	return s.TotalLatency / sim.Time(s.Ops)
}

// Generator drives one workload against a Target.
type Generator struct {
	target  Target
	cfg     Config
	stats   Stats
	stopped bool
}

func fillDefaults(cfg *Config) {
	if cfg.Coverage <= 0 || cfg.Coverage > 1 {
		cfg.Coverage = 1
	}
	if cfg.Dist == nil {
		cfg.Dist = trace.Uniform{}
	}
	if cfg.AppendPages <= 0 {
		cfg.AppendPages = 2
	}
	if cfg.Name == "" {
		cfg.Name = string(cfg.Personality)
	}
}

// New prepares a generator over a cowfs population (the files created by
// machine.Populate). The covered subset is a deterministic,
// seed-dependent sample of Coverage × len(files).
func New(e sim.Host, fs *cowfs.FS, files []*cowfs.Inode, cfg Config) (*Generator, error) {
	if len(files) == 0 {
		return nil, errors.New("workload: empty population")
	}
	fillDefaults(&cfg)
	rng := e.DeriveRand("workload-coverage:" + cfg.Name)
	idx := rng.Perm(len(files))
	k := int(cfg.Coverage * float64(len(files)))
	if k < 1 {
		k = 1
	}
	covered := make([]*cowfs.Inode, 0, k)
	for _, i := range idx[:k] {
		covered = append(covered, files[i])
	}
	return &Generator{target: NewCowTarget(fs, covered, cfg.Dir, cfg.Name), cfg: cfg}, nil
}

// NewLFS prepares a generator over an lfs population.
func NewLFS(e sim.Host, fs *lfs.FS, files []*lfs.Inode, cfg Config) (*Generator, error) {
	if len(files) == 0 {
		return nil, errors.New("workload: empty population")
	}
	fillDefaults(&cfg)
	rng := e.DeriveRand("workload-coverage:" + cfg.Name)
	covered := CoverLFS(rng, files, cfg.Coverage)
	return &Generator{target: NewLFSTarget(fs, covered, cfg.Name), cfg: cfg}, nil
}

// Stats returns live statistics.
func (g *Generator) Stats() *Stats { return &g.stats }

// Target returns the generator's target (e.g. to inspect the covered
// subset via CowTarget.Files).
func (g *Generator) Target() Target { return g.target }

// CoveredFiles returns the covered cowfs subset (nil for lfs targets).
func (g *Generator) CoveredFiles() []*cowfs.Inode {
	if ct, ok := g.target.(*CowTarget); ok {
		return ct.Files()
	}
	return nil
}

// CoveredPages returns the total pages in the covered subset.
func (g *Generator) CoveredPages() int64 {
	var n int64
	switch t := g.target.(type) {
	case *CowTarget:
		for _, f := range t.files {
			n += f.SizePg
		}
	case *LFSTarget:
		for _, f := range t.files {
			n += f.SizePg
		}
	}
	return n
}

// Stop halts the generator after its current operation.
func (g *Generator) Stop() { g.stopped = true }

// Start launches the generator process.
func (g *Generator) Start(e sim.Host) {
	e.Go("workload:"+g.cfg.Name, g.run)
}

func (g *Generator) run(p *sim.Proc) {
	rng := p.Engine().DeriveRand("workload-ops:" + g.cfg.Name)
	for !g.stopped && !p.Engine().Stopping() {
		start := p.Now()
		if err := g.step(p, rng); err != nil {
			g.stats.Errors++
		}
		g.stats.Ops++
		lat := p.Now() - start
		g.stats.TotalLatency += lat
		if lat > g.stats.MaxLatency {
			g.stats.MaxLatency = lat
		}
		if g.cfg.OpsPerSec > 0 {
			// Exponential think time with mean 1/rate (Poisson-ish).
			mean := float64(sim.Second) / g.cfg.OpsPerSec
			d := sim.Time(rng.ExpFloat64() * mean)
			if d > 0 {
				p.Sleep(d)
			} else {
				p.Yield()
			}
		} else {
			p.Yield()
		}
	}
}

// step executes one operation according to the personality mix.
func (g *Generator) step(p *sim.Proc, rng *rand.Rand) error {
	pick := func() int { return g.cfg.Dist.Pick(rng, g.target.Len()) }
	switch g.cfg.Personality {
	case Webserver:
		// 10 reads : 1 append (to the single log).
		if rng.Intn(11) == 0 {
			g.stats.Writes++
			return g.target.AppendLog(p, g.cfg.AppendPages)
		}
		g.stats.Reads++
		return g.target.ReadWhole(p, pick())
	case Webproxy:
		// Filebench webproxy: per loop, delete+create+append one file and
		// read five. Flattened to per-op probabilities with a 4:1 ratio:
		// 80% reads; writes split between appends and delete/recreate.
		switch r := rng.Intn(20); {
		case r < 16:
			g.stats.Reads++
			return g.target.ReadWhole(p, pick())
		case r < 19:
			g.stats.Writes++
			return g.target.Append(p, pick(), g.cfg.AppendPages)
		default:
			g.stats.Deletes++
			g.stats.Creates++
			g.stats.Writes++
			return g.target.Recreate(p, pick())
		}
	case Fileserver:
		// 1:2 read-write: 33% whole-file reads; writes split between
		// whole-file overwrites, appends, and delete/recreate.
		switch r := rng.Intn(15); {
		case r < 5:
			g.stats.Reads++
			return g.target.ReadWhole(p, pick())
		case r < 10:
			g.stats.Writes++
			return g.target.Overwrite(p, pick())
		case r < 13:
			g.stats.Writes++
			return g.target.Append(p, pick(), g.cfg.AppendPages)
		default:
			g.stats.Deletes++
			g.stats.Creates++
			g.stats.Writes++
			return g.target.Recreate(p, pick())
		}
	}
	return fmt.Errorf("workload: unknown personality %q", g.cfg.Personality)
}
