package workload

import (
	"testing"

	"duet/internal/cowfs"
	"duet/internal/machine"
	"duet/internal/sim"
	"duet/internal/storage"
	"duet/internal/trace"
)

func newMachine(t *testing.T) (*machine.Machine, []*cowfs.Inode) {
	t.Helper()
	m, err := machine.New(machine.Config{Seed: 1, DeviceBlocks: 1 << 16, CachePages: 2048})
	if err != nil {
		t.Fatal(err)
	}
	files, err := m.Populate(machine.DefaultPopulateSpec("/data", 8192))
	if err != nil {
		t.Fatal(err)
	}
	return m, files
}

func runFor(t *testing.T, m *machine.Machine, d sim.Time, g *Generator) {
	t.Helper()
	g.Start(m.Eng)
	if err := m.Eng.RunFor(d); err != nil {
		t.Fatal(err)
	}
}

func TestWebserverMix(t *testing.T) {
	m, files := newMachine(t)
	g, err := New(m.Eng, m.FS, files, Config{Personality: Webserver, Dir: "/data", OpsPerSec: 200})
	if err != nil {
		t.Fatal(err)
	}
	runFor(t, m, 20*sim.Second, g)
	s := g.Stats()
	if s.Ops < 1000 {
		t.Fatalf("ops = %d, throttled too hard", s.Ops)
	}
	ratio := float64(s.Reads) / float64(s.Writes)
	if ratio < 7 || ratio > 14 {
		t.Errorf("read:write = %.1f, want ~10", ratio)
	}
	if s.Errors != 0 {
		t.Errorf("errors = %d", s.Errors)
	}
	if s.MeanLatency() <= 0 {
		t.Error("no latency recorded")
	}
	// All writes append to the single log: no covered file grew.
	if s.Deletes != 0 && s.Creates != s.Deletes {
		t.Errorf("deletes=%d creates=%d", s.Deletes, s.Creates)
	}
}

func TestWebproxyMix(t *testing.T) {
	m, files := newMachine(t)
	g, err := New(m.Eng, m.FS, files, Config{Personality: Webproxy, Dir: "/data", OpsPerSec: 200})
	if err != nil {
		t.Fatal(err)
	}
	runFor(t, m, 20*sim.Second, g)
	s := g.Stats()
	ratio := float64(s.Reads) / float64(s.Writes)
	if ratio < 2.5 || ratio > 6 {
		t.Errorf("read:write = %.1f, want ~4", ratio)
	}
	if s.Deletes == 0 || s.Creates == 0 {
		t.Error("webproxy should churn files")
	}
	if s.Errors != 0 {
		t.Errorf("errors = %d", s.Errors)
	}
}

func TestFileserverMix(t *testing.T) {
	m, files := newMachine(t)
	g, err := New(m.Eng, m.FS, files, Config{Personality: Fileserver, Dir: "/data", OpsPerSec: 100})
	if err != nil {
		t.Fatal(err)
	}
	runFor(t, m, 20*sim.Second, g)
	s := g.Stats()
	ratio := float64(s.Reads) / float64(s.Writes)
	if ratio < 0.25 || ratio > 1.0 {
		t.Errorf("read:write = %.1f, want ~0.5", ratio)
	}
	if s.Errors != 0 {
		t.Errorf("errors = %d", s.Errors)
	}
}

func TestCoverageRestrictsAccesses(t *testing.T) {
	m, files := newMachine(t)
	g, err := New(m.Eng, m.FS, files, Config{
		Personality: Webserver, Dir: "/data", Coverage: 0.25, OpsPerSec: 300,
	})
	if err != nil {
		t.Fatal(err)
	}
	covered := map[uint64]bool{}
	for _, f := range g.CoveredFiles() {
		covered[uint64(f.Ino)] = true
	}
	wantK := len(files) / 4
	if len(covered) != wantK {
		t.Fatalf("covered = %d, want %d", len(covered), wantK)
	}
	runFor(t, m, 30*sim.Second, g)
	// Only covered files (plus the log) may have cached pages.
	for _, f := range files {
		if covered[uint64(f.Ino)] {
			continue
		}
		if m.Cache.FilePages(m.FS.ID(), uint64(f.Ino)) != 0 {
			t.Fatalf("uncovered file %d was accessed", f.Ino)
		}
	}
}

func TestSkewedDistributionConcentrates(t *testing.T) {
	m, files := newMachine(t)
	g, err := New(m.Eng, m.FS, files, Config{
		Personality: Webserver, Dir: "/data",
		Dist: trace.ByName("ms-dev0"), OpsPerSec: 300,
	})
	if err != nil {
		t.Fatal(err)
	}
	runFor(t, m, 30*sim.Second, g)
	// The hottest covered file must have far more cache presence than the
	// median: check that a small fraction of files hold most cached pages.
	type fp struct {
		pages int
	}
	var total, top int
	var counts []int
	for _, f := range g.CoveredFiles() {
		n := m.Cache.FilePages(m.FS.ID(), uint64(f.Ino))
		counts = append(counts, n)
		total += n
	}
	// Sort descending; top 10% of files.
	for i := 0; i < len(counts); i++ {
		for j := i + 1; j < len(counts); j++ {
			if counts[j] > counts[i] {
				counts[i], counts[j] = counts[j], counts[i]
			}
		}
	}
	k := len(counts) / 10
	for i := 0; i < k; i++ {
		top += counts[i]
	}
	if total == 0 {
		t.Fatal("nothing cached")
	}
	if float64(top)/float64(total) < 0.3 {
		t.Errorf("top 10%% of files hold %.2f of cached pages; want skew", float64(top)/float64(total))
	}
}

func TestUnthrottledSaturatesDevice(t *testing.T) {
	m, files := newMachine(t)
	g, err := New(m.Eng, m.FS, files, Config{Personality: Webserver, Dir: "/data"})
	if err != nil {
		t.Fatal(err)
	}
	before := m.Disk.Snapshot()
	runFor(t, m, 10*sim.Second, g)
	util := storage.UtilBetween(before, m.Disk.Snapshot())
	if util < 0.8 {
		t.Errorf("unthrottled util = %.2f, want ~1.0", util)
	}
}

func TestThrottlingLowersUtilization(t *testing.T) {
	utilAt := func(rate float64) float64 {
		m, files := newMachine(t)
		g, err := New(m.Eng, m.FS, files, Config{Personality: Webserver, Dir: "/data", OpsPerSec: rate})
		if err != nil {
			t.Fatal(err)
		}
		before := m.Disk.Snapshot()
		runFor(t, m, 20*sim.Second, g)
		return storage.UtilBetween(before, m.Disk.Snapshot())
	}
	low := utilAt(20)
	high := utilAt(150)
	if low >= high {
		t.Errorf("util(20 ops/s)=%.2f >= util(150 ops/s)=%.2f", low, high)
	}
	if low > 0.5 {
		t.Errorf("util at 20 ops/s = %.2f, too high", low)
	}
}

func TestStopHaltsGenerator(t *testing.T) {
	m, files := newMachine(t)
	g, err := New(m.Eng, m.FS, files, Config{Personality: Webserver, Dir: "/data", OpsPerSec: 100})
	if err != nil {
		t.Fatal(err)
	}
	g.Start(m.Eng)
	m.Eng.Go("stopper", func(p *sim.Proc) {
		p.Sleep(5 * sim.Second)
		g.Stop()
		p.Sleep(5 * sim.Second)
		opsAtStop := g.Stats().Ops
		p.Sleep(5 * sim.Second)
		if g.Stats().Ops > opsAtStop+1 {
			t.Errorf("generator kept running after Stop")
		}
		m.Eng.Stop()
	})
	if err := m.Eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyPopulationRejected(t *testing.T) {
	m, _ := newMachine(t)
	if _, err := New(m.Eng, m.FS, nil, Config{Personality: Webserver, Dir: "/data"}); err == nil {
		t.Error("want error for empty population")
	}
}

func TestReadWriteRatio(t *testing.T) {
	r, w := Webserver.ReadWriteRatio()
	if r != 10 || w != 1 {
		t.Errorf("webserver = %d:%d", r, w)
	}
	r, w = Fileserver.ReadWriteRatio()
	if r != 1 || w != 2 {
		t.Errorf("fileserver = %d:%d", r, w)
	}
}
