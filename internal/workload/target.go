package workload

import (
	"fmt"
	"math/rand"

	"duet/internal/cowfs"
	"duet/internal/lfs"
	"duet/internal/sim"
	"duet/internal/storage"
)

// Target abstracts the filesystem operations the personalities need, so
// the same generator drives both the COW filesystem and the
// log-structured one (the Table 6 experiment runs fileserver on lfs).
// Indices address the covered file subset.
type Target interface {
	// Len is the size of the covered population.
	Len() int
	// ReadWhole reads file i completely.
	ReadWhole(p *sim.Proc, i int) error
	// Overwrite rewrites file i in place (whole file).
	Overwrite(p *sim.Proc, i int) error
	// Append grows file i by n pages (implementations may bound growth
	// by overwriting instead).
	Append(p *sim.Proc, i int, n int64) error
	// Recreate deletes file i and creates a fresh same-size replacement.
	Recreate(p *sim.Proc, i int) error
	// AppendLog appends n pages to the single log file (webserver).
	AppendLog(p *sim.Proc, n int64) error
}

// maxGrowPages bounds append-driven file growth so long runs do not
// exhaust the device.
const maxGrowPages = 512

// logRotatePages bounds the webserver log.
const logRotatePages = 4096

// CowTarget drives a cowfs filesystem.
type CowTarget struct {
	fs      *cowfs.FS
	files   []*cowfs.Inode
	logFile *cowfs.Inode
	dir     string
	name    string
	nextNew int
}

// NewCowTarget builds a target over the covered subset of files.
func NewCowTarget(fs *cowfs.FS, covered []*cowfs.Inode, dir, name string) *CowTarget {
	return &CowTarget{fs: fs, files: covered, dir: dir, name: name}
}

// Files exposes the covered subset.
func (t *CowTarget) Files() []*cowfs.Inode { return t.files }

// Len implements Target.
func (t *CowTarget) Len() int { return len(t.files) }

// ReadWhole implements Target.
func (t *CowTarget) ReadWhole(p *sim.Proc, i int) error {
	return t.fs.ReadFile(p, t.files[i].Ino, storage.ClassNormal, Owner)
}

// Overwrite implements Target.
func (t *CowTarget) Overwrite(p *sim.Proc, i int) error {
	f := t.files[i]
	n := f.SizePg
	if n == 0 {
		n = 1
	}
	return t.fs.Write(p, f.Ino, 0, n)
}

// Append implements Target.
func (t *CowTarget) Append(p *sim.Proc, i int, n int64) error {
	f := t.files[i]
	if f.SizePg > maxGrowPages {
		return t.Overwrite(p, i)
	}
	return t.fs.Append(p, f.Ino, n)
}

// Recreate implements Target.
func (t *CowTarget) Recreate(p *sim.Proc, i int) error {
	f := t.files[i]
	size := f.SizePg
	if size == 0 {
		size = 1
	}
	path, err := t.fs.PathOf(f.Ino)
	if err != nil {
		return err
	}
	if err := t.fs.Delete(path); err != nil {
		return err
	}
	nf, err := t.fs.Create(fmt.Sprintf("%s.r%d", path, t.nextNew))
	t.nextNew++
	if err != nil {
		return err
	}
	t.files[i] = nf
	return t.fs.Write(p, nf.Ino, 0, size)
}

// AppendLog implements Target.
func (t *CowTarget) AppendLog(p *sim.Proc, n int64) error {
	if t.logFile == nil || t.logFile.SizePg > logRotatePages {
		if t.logFile != nil {
			path, err := t.fs.PathOf(t.logFile.Ino)
			if err == nil {
				if err := t.fs.Delete(path); err != nil {
					return err
				}
			}
		}
		lf, err := t.fs.Create(fmt.Sprintf("%s/weblog-%s-%d", t.dir, t.name, t.nextNew))
		t.nextNew++
		if err != nil {
			return err
		}
		t.logFile = lf
	}
	return t.fs.Append(p, t.logFile.Ino, n)
}

// LFSTarget drives an lfs filesystem (flat namespace).
type LFSTarget struct {
	fs      *lfs.FS
	files   []*lfs.Inode
	logFile *lfs.Inode
	name    string
	nextNew int
}

// NewLFSTarget builds a target over the covered subset.
func NewLFSTarget(fs *lfs.FS, covered []*lfs.Inode, name string) *LFSTarget {
	return &LFSTarget{fs: fs, files: covered, name: name}
}

// Len implements Target.
func (t *LFSTarget) Len() int { return len(t.files) }

// ReadWhole implements Target.
func (t *LFSTarget) ReadWhole(p *sim.Proc, i int) error {
	return t.fs.ReadFile(p, t.files[i].Ino, storage.ClassNormal, Owner)
}

// Overwrite implements Target.
func (t *LFSTarget) Overwrite(p *sim.Proc, i int) error {
	f := t.files[i]
	n := f.SizePg
	if n == 0 {
		n = 1
	}
	return t.fs.Write(p, f.Ino, 0, n)
}

// Append implements Target.
func (t *LFSTarget) Append(p *sim.Proc, i int, n int64) error {
	f := t.files[i]
	if f.SizePg > maxGrowPages {
		return t.Overwrite(p, i)
	}
	return t.fs.Append(p, f.Ino, n)
}

// Recreate implements Target.
func (t *LFSTarget) Recreate(p *sim.Proc, i int) error {
	f := t.files[i]
	size := f.SizePg
	if size == 0 {
		size = 1
	}
	if err := t.fs.Delete(f.Name); err != nil {
		return err
	}
	nf, err := t.fs.Create(fmt.Sprintf("%s.r%d", f.Name, t.nextNew))
	t.nextNew++
	if err != nil {
		return err
	}
	t.files[i] = nf
	return t.fs.Write(p, nf.Ino, 0, size)
}

// AppendLog implements Target.
func (t *LFSTarget) AppendLog(p *sim.Proc, n int64) error {
	if t.logFile == nil || t.logFile.SizePg > logRotatePages {
		lf, err := t.fs.Create(fmt.Sprintf("weblog-%s-%d", t.name, t.nextNew))
		t.nextNew++
		if err != nil {
			return err
		}
		t.logFile = lf
	}
	return t.fs.Append(p, t.logFile.Ino, n)
}

// CoverLFS picks a deterministic covered subset of lfs files.
func CoverLFS(rng *rand.Rand, files []*lfs.Inode, coverage float64) []*lfs.Inode {
	if coverage <= 0 || coverage > 1 {
		coverage = 1
	}
	idx := rng.Perm(len(files))
	k := int(coverage * float64(len(files)))
	if k < 1 {
		k = 1
	}
	out := make([]*lfs.Inode, 0, k)
	for _, i := range idx[:k] {
		out = append(out, files[i])
	}
	return out
}
