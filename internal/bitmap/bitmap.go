// Package bitmap implements sparse bitmaps whose backing storage is
// allocated in fixed-size chunks held in a red-black tree, and released
// when a chunk no longer contains set bits.
//
// This mirrors Duet's bitmap design (§4.2 of the paper): "We use a
// red-black tree to dynamically allocate portions of the relevant and done
// bitmaps, to represent ranges that have marked bits, and deallocate them
// when all their bits are unmarked." Memory stays proportional to the
// localized regions a task actually touches.
package bitmap

import (
	"math/bits"

	"duet/internal/rbtree"
)

const (
	// ChunkBits is the number of bits covered by one allocated chunk.
	// 32768 bits = 4 KiB of backing storage per chunk.
	ChunkBits  = 32768
	chunkWords = ChunkBits / 64
)

type chunk struct {
	words    [chunkWords]uint64
	pop      int    // number of set bits in this chunk
	nextFree *chunk // free-list link while recycled
}

// Sparse is a dynamically-allocated bitmap over a conceptually unbounded
// index space. The zero value is not usable; create with New.
//
// Chunks released by Unset/Clear are parked on an internal free list and
// reused by later Sets, so a bitmap that churns around a steady population
// (like the allocator's size-class buckets) stops allocating once it has
// reached its high-water mark.
type Sparse struct {
	chunks *rbtree.Tree[uint64, *chunk]
	count  uint64 // total set bits
	free   *chunk // recycled chunks, linked through nextFree
}

// New returns an empty sparse bitmap.
func New() *Sparse {
	return &Sparse{chunks: rbtree.New[uint64, *chunk](func(a, b uint64) bool { return a < b })}
}

func split(i uint64) (ci uint64, word int, bit uint) {
	return i / ChunkBits, int(i % ChunkBits / 64), uint(i % 64)
}

// newChunk takes a chunk from the free list, or allocates one. Recycled
// chunks are already zeroed (they are only released when empty).
func (s *Sparse) newChunk() *chunk {
	c := s.free
	if c == nil {
		return &chunk{}
	}
	s.free = c.nextFree
	c.nextFree = nil
	return c
}

func (s *Sparse) releaseChunk(c *chunk) {
	c.nextFree = s.free
	s.free = c
}

// Set marks bit i. It reports whether the bit changed (was previously 0).
func (s *Sparse) Set(i uint64) bool {
	ci, w, b := split(i)
	c, ok := s.chunks.Get(ci)
	if !ok {
		c = s.newChunk()
		s.chunks.Set(ci, c)
	}
	mask := uint64(1) << b
	if c.words[w]&mask != 0 {
		return false
	}
	c.words[w] |= mask
	c.pop++
	s.count++
	return true
}

// Unset clears bit i, releasing the chunk if it becomes empty. It reports
// whether the bit changed (was previously 1).
func (s *Sparse) Unset(i uint64) bool {
	ci, w, b := split(i)
	c, ok := s.chunks.Get(ci)
	if !ok {
		return false
	}
	mask := uint64(1) << b
	if c.words[w]&mask == 0 {
		return false
	}
	c.words[w] &^= mask
	c.pop--
	s.count--
	if c.pop == 0 {
		s.chunks.Delete(ci)
		s.releaseChunk(c)
	}
	return true
}

// Test reports whether bit i is set.
func (s *Sparse) Test(i uint64) bool {
	ci, w, b := split(i)
	c, ok := s.chunks.Get(ci)
	if !ok {
		return false
	}
	return c.words[w]&(uint64(1)<<b) != 0
}

// SetRange sets bits [lo, hi) and returns how many changed.
func (s *Sparse) SetRange(lo, hi uint64) uint64 {
	var changed uint64
	for i := lo; i < hi; i++ {
		if s.Set(i) {
			changed++
		}
	}
	return changed
}

// UnsetRange clears bits [lo, hi) and returns how many changed.
func (s *Sparse) UnsetRange(lo, hi uint64) uint64 {
	var changed uint64
	for i := lo; i < hi; i++ {
		if s.Unset(i) {
			changed++
		}
	}
	return changed
}

// Count returns the number of set bits.
func (s *Sparse) Count() uint64 { return s.count }

// Clear removes every set bit. Chunk payloads and tree nodes are recycled
// through the internal free lists rather than released to the garbage
// collector.
func (s *Sparse) Clear() {
	s.chunks.Ascend(nil, func(_ uint64, c *chunk) bool {
		for w := range c.words {
			c.words[w] = 0
		}
		c.pop = 0
		s.releaseChunk(c)
		return true
	})
	s.chunks.Reset()
	s.count = 0
}

// Chunks returns the number of allocated chunks.
func (s *Sparse) Chunks() int { return s.chunks.Len() }

// MemBytes returns the approximate backing memory in bytes, counting only
// chunk payloads (as the paper's memory-overhead evaluation does).
func (s *Sparse) MemBytes() int { return s.chunks.Len() * chunkWords * 8 }

// IterateSet calls fn for each set bit in increasing order until fn
// returns false.
func (s *Sparse) IterateSet(fn func(i uint64) bool) {
	s.chunks.Ascend(nil, func(ci uint64, c *chunk) bool {
		base := ci * ChunkBits
		for w := 0; w < chunkWords; w++ {
			word := c.words[w]
			for word != 0 {
				b := bits.TrailingZeros64(word)
				if !fn(base + uint64(w*64+b)) {
					return false
				}
				word &^= uint64(1) << uint(b)
			}
		}
		return true
	})
}

// NextSet returns the smallest set bit >= from. It walks chunks through
// Ceiling lookups rather than an iteration callback, so the allocator's
// per-write size-class probes stay allocation-free.
func (s *Sparse) NextSet(from uint64) (uint64, bool) {
	ci := from / ChunkBits
	for {
		cur, c, ok := s.chunks.Ceiling(ci)
		if !ok {
			return 0, false
		}
		base := cur * ChunkBits
		w := 0
		if cur == from/ChunkBits {
			w = int(from % ChunkBits / 64)
			// Mask off bits below from in the first word.
			if word := c.words[w] &^ (uint64(1)<<(from%64) - 1); word != 0 {
				return base + uint64(w*64+bits.TrailingZeros64(word)), true
			}
			w++
		}
		for ; w < chunkWords; w++ {
			if word := c.words[w]; word != 0 {
				return base + uint64(w*64+bits.TrailingZeros64(word)), true
			}
		}
		ci = cur + 1
	}
}
