// Package bitmap implements sparse bitmaps whose backing storage is
// allocated in fixed-size chunks held in a red-black tree, and released
// when a chunk no longer contains set bits.
//
// This mirrors Duet's bitmap design (§4.2 of the paper): "We use a
// red-black tree to dynamically allocate portions of the relevant and done
// bitmaps, to represent ranges that have marked bits, and deallocate them
// when all their bits are unmarked." Memory stays proportional to the
// localized regions a task actually touches.
package bitmap

import (
	"math/bits"

	"duet/internal/rbtree"
)

const (
	// ChunkBits is the number of bits covered by one allocated chunk.
	// 32768 bits = 4 KiB of backing storage per chunk.
	ChunkBits  = 32768
	chunkWords = ChunkBits / 64
)

type chunk struct {
	words [chunkWords]uint64
	pop   int // number of set bits in this chunk
}

// Sparse is a dynamically-allocated bitmap over a conceptually unbounded
// index space. The zero value is not usable; create with New.
type Sparse struct {
	chunks *rbtree.Tree[uint64, *chunk]
	count  uint64 // total set bits
}

// New returns an empty sparse bitmap.
func New() *Sparse {
	return &Sparse{chunks: rbtree.New[uint64, *chunk](func(a, b uint64) bool { return a < b })}
}

func split(i uint64) (ci uint64, word int, bit uint) {
	return i / ChunkBits, int(i % ChunkBits / 64), uint(i % 64)
}

// Set marks bit i. It reports whether the bit changed (was previously 0).
func (s *Sparse) Set(i uint64) bool {
	ci, w, b := split(i)
	c, ok := s.chunks.Get(ci)
	if !ok {
		c = &chunk{}
		s.chunks.Set(ci, c)
	}
	mask := uint64(1) << b
	if c.words[w]&mask != 0 {
		return false
	}
	c.words[w] |= mask
	c.pop++
	s.count++
	return true
}

// Unset clears bit i, releasing the chunk if it becomes empty. It reports
// whether the bit changed (was previously 1).
func (s *Sparse) Unset(i uint64) bool {
	ci, w, b := split(i)
	c, ok := s.chunks.Get(ci)
	if !ok {
		return false
	}
	mask := uint64(1) << b
	if c.words[w]&mask == 0 {
		return false
	}
	c.words[w] &^= mask
	c.pop--
	s.count--
	if c.pop == 0 {
		s.chunks.Delete(ci)
	}
	return true
}

// Test reports whether bit i is set.
func (s *Sparse) Test(i uint64) bool {
	ci, w, b := split(i)
	c, ok := s.chunks.Get(ci)
	if !ok {
		return false
	}
	return c.words[w]&(uint64(1)<<b) != 0
}

// SetRange sets bits [lo, hi) and returns how many changed.
func (s *Sparse) SetRange(lo, hi uint64) uint64 {
	var changed uint64
	for i := lo; i < hi; i++ {
		if s.Set(i) {
			changed++
		}
	}
	return changed
}

// UnsetRange clears bits [lo, hi) and returns how many changed.
func (s *Sparse) UnsetRange(lo, hi uint64) uint64 {
	var changed uint64
	for i := lo; i < hi; i++ {
		if s.Unset(i) {
			changed++
		}
	}
	return changed
}

// Count returns the number of set bits.
func (s *Sparse) Count() uint64 { return s.count }

// Clear removes every set bit and releases all storage.
func (s *Sparse) Clear() {
	s.chunks = rbtree.New[uint64, *chunk](func(a, b uint64) bool { return a < b })
	s.count = 0
}

// Chunks returns the number of allocated chunks.
func (s *Sparse) Chunks() int { return s.chunks.Len() }

// MemBytes returns the approximate backing memory in bytes, counting only
// chunk payloads (as the paper's memory-overhead evaluation does).
func (s *Sparse) MemBytes() int { return s.chunks.Len() * chunkWords * 8 }

// IterateSet calls fn for each set bit in increasing order until fn
// returns false.
func (s *Sparse) IterateSet(fn func(i uint64) bool) {
	s.chunks.Ascend(nil, func(ci uint64, c *chunk) bool {
		base := ci * ChunkBits
		for w := 0; w < chunkWords; w++ {
			word := c.words[w]
			for word != 0 {
				b := bits.TrailingZeros64(word)
				if !fn(base + uint64(w*64+b)) {
					return false
				}
				word &^= uint64(1) << uint(b)
			}
		}
		return true
	})
}

// NextSet returns the smallest set bit >= from.
func (s *Sparse) NextSet(from uint64) (uint64, bool) {
	start := from / ChunkBits
	var res uint64
	found := false
	s.chunks.Ascend(&start, func(ci uint64, c *chunk) bool {
		base := ci * ChunkBits
		for w := 0; w < chunkWords; w++ {
			word := c.words[w]
			if base+uint64(w*64+63) < from {
				continue
			}
			for word != 0 {
				b := bits.TrailingZeros64(word)
				idx := base + uint64(w*64+b)
				if idx >= from {
					res, found = idx, true
					return false
				}
				word &^= uint64(1) << uint(b)
			}
		}
		return true
	})
	return res, found
}
