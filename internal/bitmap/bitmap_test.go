package bitmap

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSetTestUnset(t *testing.T) {
	s := New()
	if s.Test(5) {
		t.Error("fresh bitmap has bit set")
	}
	if !s.Set(5) {
		t.Error("Set should report change")
	}
	if s.Set(5) {
		t.Error("second Set should report no change")
	}
	if !s.Test(5) {
		t.Error("bit 5 should be set")
	}
	if s.Count() != 1 {
		t.Errorf("Count = %d", s.Count())
	}
	if !s.Unset(5) {
		t.Error("Unset should report change")
	}
	if s.Unset(5) {
		t.Error("second Unset should report no change")
	}
	if s.Test(5) {
		t.Error("bit 5 should be clear")
	}
	if s.Count() != 0 {
		t.Errorf("Count = %d", s.Count())
	}
}

func TestChunkLifecycle(t *testing.T) {
	s := New()
	s.Set(0)
	s.Set(ChunkBits)      // second chunk
	s.Set(10 * ChunkBits) // third chunk
	if s.Chunks() != 3 {
		t.Errorf("Chunks = %d, want 3", s.Chunks())
	}
	if s.MemBytes() != 3*ChunkBits/8 {
		t.Errorf("MemBytes = %d", s.MemBytes())
	}
	s.Unset(ChunkBits)
	if s.Chunks() != 2 {
		t.Errorf("Chunks = %d after freeing middle, want 2", s.Chunks())
	}
	s.Clear()
	if s.Chunks() != 0 || s.Count() != 0 {
		t.Error("Clear should release everything")
	}
}

func TestRanges(t *testing.T) {
	s := New()
	if n := s.SetRange(10, 20); n != 10 {
		t.Errorf("SetRange changed %d, want 10", n)
	}
	if n := s.SetRange(15, 25); n != 5 {
		t.Errorf("overlapping SetRange changed %d, want 5", n)
	}
	for i := uint64(10); i < 25; i++ {
		if !s.Test(i) {
			t.Fatalf("bit %d should be set", i)
		}
	}
	if n := s.UnsetRange(0, 100); n != 15 {
		t.Errorf("UnsetRange changed %d, want 15", n)
	}
	if s.Count() != 0 {
		t.Errorf("Count = %d", s.Count())
	}
}

func TestCrossChunkRange(t *testing.T) {
	s := New()
	lo := uint64(ChunkBits - 5)
	hi := uint64(ChunkBits + 5)
	s.SetRange(lo, hi)
	if s.Chunks() != 2 {
		t.Errorf("Chunks = %d, want 2", s.Chunks())
	}
	var got []uint64
	s.IterateSet(func(i uint64) bool { got = append(got, i); return true })
	if len(got) != 10 || got[0] != lo || got[9] != hi-1 {
		t.Errorf("IterateSet = %v", got)
	}
}

func TestIterateEarlyStop(t *testing.T) {
	s := New()
	s.SetRange(0, 100)
	n := 0
	s.IterateSet(func(uint64) bool { n++; return n < 7 })
	if n != 7 {
		t.Errorf("visited %d, want 7", n)
	}
}

func TestNextSet(t *testing.T) {
	s := New()
	s.Set(3)
	s.Set(1000)
	s.Set(uint64(2*ChunkBits + 7))
	cases := []struct {
		from uint64
		want uint64
		ok   bool
	}{
		{0, 3, true},
		{3, 3, true},
		{4, 1000, true},
		{1001, uint64(2*ChunkBits + 7), true},
		{uint64(2*ChunkBits + 8), 0, false},
	}
	for _, c := range cases {
		got, ok := s.NextSet(c.from)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("NextSet(%d) = %d,%v, want %d,%v", c.from, got, ok, c.want, c.ok)
		}
	}
}

// TestRandomAgainstModel compares the sparse bitmap with a map model under
// random operations scattered over a wide, sparse index space.
func TestRandomAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := New()
	model := map[uint64]bool{}
	for op := 0; op < 20000; op++ {
		// Cluster indices to exercise chunk reuse, with occasional far jumps.
		var i uint64
		if rng.Intn(10) == 0 {
			i = uint64(rng.Int63n(1 << 40))
		} else {
			i = uint64(rng.Intn(3*ChunkBits + 100))
		}
		switch rng.Intn(3) {
		case 0:
			got := s.Set(i)
			want := !model[i]
			if got != want {
				t.Fatalf("op %d: Set(%d) changed=%v, want %v", op, i, got, want)
			}
			model[i] = true
		case 1:
			got := s.Unset(i)
			want := model[i]
			if got != want {
				t.Fatalf("op %d: Unset(%d) changed=%v, want %v", op, i, got, want)
			}
			delete(model, i)
		case 2:
			if s.Test(i) != model[i] {
				t.Fatalf("op %d: Test(%d) = %v, want %v", op, i, s.Test(i), model[i])
			}
		}
		if s.Count() != uint64(len(model)) {
			t.Fatalf("op %d: Count = %d, want %d", op, s.Count(), len(model))
		}
	}
}

// TestQuickSetUnsetRoundTrip property: setting then unsetting any index
// sequence leaves the bitmap empty with zero chunks.
func TestQuickSetUnsetRoundTrip(t *testing.T) {
	f := func(idxs []uint32) bool {
		s := New()
		for _, i := range idxs {
			s.Set(uint64(i))
		}
		for _, i := range idxs {
			s.Unset(uint64(i))
		}
		return s.Count() == 0 && s.Chunks() == 0 && s.MemBytes() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickIterateMatchesCount property: iteration visits exactly Count()
// bits in strictly increasing order.
func TestQuickIterateMatchesCount(t *testing.T) {
	f := func(idxs []uint16) bool {
		s := New()
		for _, i := range idxs {
			s.Set(uint64(i))
		}
		var n uint64
		prev := uint64(0)
		first := true
		ok := true
		s.IterateSet(func(i uint64) bool {
			if !first && i <= prev {
				ok = false
				return false
			}
			prev, first = i, false
			n++
			return true
		})
		return ok && n == s.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSparseSet(b *testing.B) {
	s := New()
	for i := 0; i < b.N; i++ {
		s.Set(uint64(i) % (1 << 24))
	}
}

func BenchmarkSparseTest(b *testing.B) {
	s := New()
	for i := uint64(0); i < 1<<20; i += 2 {
		s.Set(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Test(uint64(i) % (1 << 20))
	}
}
