package sim

import (
	"bytes"
	"fmt"
	"runtime"
	"strings"
	"testing"
)

// Slot parity is the whole contract of the callback executor: a
// converted component must occupy exactly the (time, seq) slots its
// goroutine form did, so the rest of the simulation cannot tell the
// difference. The tests below run the same periodic workload twice —
// once as goroutine procs, once with some participants converted to
// callbacks via the ArmDeferred spawn-parity pattern — on colliding
// timestamps, and require byte-identical logs and identical seq
// consumption.

const (
	parityParticipants = 6
	parityIters        = 25
)

// parityRun builds an engine where participant i logs parityIters
// ticks on a colliding period grid. Participants with convert[i] set
// run as callbacks; the rest as goroutine procs. It returns the shared
// log and the final seq consumption.
func parityRun(convert []bool) (string, uint64) {
	e := New(42)
	var buf bytes.Buffer
	for i := 0; i < parityParticipants; i++ {
		name := fmt.Sprintf("p%d", i)
		// Three distinct periods across six participants: every tick
		// collides with another participant's, so ordering is decided by
		// seq alone and any slot drift would reorder the log.
		period := Time(1+i%3) * 10 * Microsecond
		if convert != nil && convert[i] {
			n := 0
			cb := NewCallback(e, name, func(now Time) Time {
				fmt.Fprintf(&buf, "%s %d@%s\n", name, n, now)
				n++
				if n >= parityIters {
					return 0
				}
				return period
			})
			cb.ArmDeferred(period)
		} else {
			e.Go(name, func(p *Proc) {
				for n := 0; n < parityIters; n++ {
					p.Sleep(period)
					fmt.Fprintf(&buf, "%s %d@%s\n", name, n, p.Now())
				}
			})
		}
	}
	if err := e.Run(); err != nil {
		panic(err)
	}
	return buf.String(), e.TimersScheduled()
}

// TestCallbackProcSlotParity interleaves callback timers with goroutine
// procs at equal timestamps and requires the exact event order of the
// pure-goroutine engine: ArmDeferred at creation mirrors Go's runq
// push, and the handler's re-arm return mirrors the proc's re-Sleep.
func TestCallbackProcSlotParity(t *testing.T) {
	refLog, refSeq := parityRun(nil)
	for _, convert := range [][]bool{
		{false, true, false, true, false, true}, // alternating kinds
		{true, true, true, true, true, true},    // all converted
	} {
		gotLog, gotSeq := parityRun(convert)
		if gotLog != refLog {
			t.Errorf("convert=%v: log diverged from pure-goroutine engine\nref:\n%s\ngot:\n%s",
				convert, refLog, gotLog)
		}
		if gotSeq != refSeq {
			t.Errorf("convert=%v: TimersScheduled = %d, want %d (slot drift)",
				convert, gotSeq, refSeq)
		}
	}
	if !strings.Contains(refLog, "p0 0@") {
		t.Fatalf("reference log malformed:\n%s", refLog)
	}
}

// TestCallbackWakeParity checks the WaitQueue leg of slot parity: a
// subscribed callback must be woken in the same FIFO slot as a parked
// proc, so a waiter converted to a callback leaves the wake order of
// every other waiter untouched.
func TestCallbackWakeParity(t *testing.T) {
	run := func(convert bool) string {
		e := New(7)
		var buf bytes.Buffer
		q := NewWaitQueue(e)
		const wakes = 5
		if convert {
			i := 0
			var cb *Callback
			cb = NewCallback(e, "wa", func(now Time) Time {
				fmt.Fprintf(&buf, "wa %d@%s\n", i, now)
				i++
				if i < wakes {
					q.Subscribe(cb, "turn")
				}
				return 0
			})
			q.Subscribe(cb, "turn")
		} else {
			e.Go("wa", func(p *Proc) {
				for i := 0; i < wakes; i++ {
					q.Wait(p, "turn")
					fmt.Fprintf(&buf, "wa %d@%s\n", i, p.Now())
				}
			})
		}
		e.Go("wb", func(p *Proc) {
			for i := 0; i < wakes; i++ {
				q.Wait(p, "turn")
				fmt.Fprintf(&buf, "wb %d@%s\n", i, p.Now())
			}
		})
		e.Go("waker", func(p *Proc) {
			for i := 0; i < 2*wakes; i++ {
				p.Sleep(Millisecond)
				q.WakeOne()
			}
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	ref, got := run(false), run(true)
	if ref != got {
		t.Errorf("wake order diverged after converting one waiter\nref:\n%s\ngot:\n%s", ref, got)
	}
}

// TestCallbackDispatchAllocFree is the CI allocation gate for the
// goroutine-free hot path: popping an armed callback timer and running
// its handler (which re-arms) must not allocate. Steady-state grid
// cells spend most of their events here.
func TestCallbackDispatchAllocFree(t *testing.T) {
	e := New(1)
	d := e.Dom()
	fired := 0
	cb := NewCallback(e, "tick", func(now Time) Time {
		fired++
		return Millisecond
	})
	cb.Arm(Millisecond)
	allocs := testing.AllocsPerRun(1000, func() {
		tm, ok := d.timers.pop()
		if !ok {
			t.Fatal("timer heap empty: handler failed to re-arm")
		}
		d.now = tm.at
		tm.fire.fire(d, tm.armAt)
	})
	if allocs != 0 {
		t.Errorf("callback dispatch allocates %.1f bytes-worth of objects per event, want 0", allocs)
	}
	if fired == 0 {
		t.Fatal("handler never ran")
	}
}

// TestCallbackZeroGoroutines drives a full run purely on callbacks and
// checks the executor's defining property: zero procs created and zero
// goroutines spawned per event — the scheduler invokes every handler
// inline on the caller's goroutine.
func TestCallbackZeroGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	e := New(3)
	mid := -1
	count := 0
	cb := NewCallback(e, "tick", func(now Time) Time {
		count++
		if count == 500 {
			mid = runtime.NumGoroutine()
		}
		if count >= 1000 {
			return 0
		}
		return 10 * Microsecond
	})
	cb.Arm(10 * Microsecond)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 1000 {
		t.Fatalf("handler ran %d times, want 1000", count)
	}
	if e.ProcsCreated() != 0 {
		t.Errorf("ProcsCreated = %d, want 0", e.ProcsCreated())
	}
	if e.CallbacksCreated() != 1 {
		t.Errorf("CallbacksCreated = %d, want 1", e.CallbacksCreated())
	}
	if mid > before {
		t.Errorf("goroutines grew mid-run: %d before, %d at event 500", before, mid)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines leaked: %d before, %d after", before, after)
	}
}

// TestFutureOnDone covers the completion-callback side: subscribers
// registered before completion run after the parked waiters in
// registration order; a subscriber registered after completion is
// scheduled immediately; Value returns the completed payload.
func TestFutureOnDone(t *testing.T) {
	e := New(9)
	f := NewFuture[int](e)
	var order []string
	mk := func(name string) *Callback {
		return NewCallback(e, name, func(now Time) Time {
			v, err := f.Value()
			if err != nil || v != 77 {
				t.Errorf("%s: Value = (%d, %v), want (77, nil)", name, v, err)
			}
			order = append(order, name)
			return 0
		})
	}
	f.OnDone(mk("cb1"))
	f.OnDone(mk("cb2"))
	e.Go("waiter", func(p *Proc) {
		if v, _ := f.Wait(p); v != 77 {
			t.Errorf("waiter: Wait = %d, want 77", v)
		}
		order = append(order, "waiter")
	})
	e.Go("completer", func(p *Proc) {
		p.Sleep(Millisecond)
		f.Complete(77, nil)
		// Late subscriber: the future is already done, so OnDone schedules
		// the callback directly instead of recording it.
		f.OnDone(mk("late"))
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := "waiter,cb1,cb2,late"
	if got := strings.Join(order, ","); got != want {
		t.Errorf("completion order = %s, want %s", got, want)
	}
}

// TestFutureValuePanicsBeforeDone pins the contract that Value is only
// legal on a completed future — callbacks must check Done (or only be
// scheduled via OnDone) rather than poll.
func TestFutureValuePanicsBeforeDone(t *testing.T) {
	e := New(1)
	f := NewFuture[int](e)
	defer func() {
		if recover() == nil {
			t.Error("Value on an incomplete future did not panic")
		}
	}()
	f.Value()
}

// TestCallbackCancel checks that Cancel makes in-flight timer slots and
// queued wakes fire as no-ops and later arms do nothing.
func TestCallbackCancel(t *testing.T) {
	e := New(5)
	q := NewWaitQueue(e)
	ran := 0
	cb := NewCallback(e, "doomed", func(now Time) Time {
		ran++
		return 0
	})
	cb.Arm(Millisecond)
	q.Subscribe(cb, "never")
	e.Go("killer", func(p *Proc) {
		cb.Cancel()
		q.WakeOne() // pops the cancelled subscriber, which must stay dead
		cb.Arm(Millisecond)
		cb.schedule()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if ran != 0 {
		t.Errorf("cancelled callback ran %d times", ran)
	}
	if cb.Armed() != 0 {
		t.Errorf("Armed = %d after run, want 0", cb.Armed())
	}
}

// TestCallbackPanicBecomesFailure mirrors the proc contract: a
// panicking handler fails the run with an error naming the callback
// instead of crashing the scheduler.
func TestCallbackPanicBecomesFailure(t *testing.T) {
	e := New(2)
	cb := NewCallback(e, "boom", func(now Time) Time {
		panic("kaput")
	})
	cb.Arm(Millisecond)
	err := e.Run()
	if err == nil || !strings.Contains(err.Error(), `"boom"`) || !strings.Contains(err.Error(), "kaput") {
		t.Errorf("Run error = %v, want callback panic naming \"boom\" and \"kaput\"", err)
	}
}

// TestArmDeferredPanics pins the misuse guards: non-positive delays and
// overlapping deferred arms are programming errors, not silent drops.
func TestArmDeferredPanics(t *testing.T) {
	e := New(4)
	cb := NewCallback(e, "cb", func(now Time) Time { return 0 })
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("Arm(0)", func() { cb.Arm(0) })
	mustPanic("ArmDeferred(-1)", func() { cb.ArmDeferred(-Millisecond) })
	cb.ArmDeferred(Millisecond)
	mustPanic("double ArmDeferred", func() { cb.ArmDeferred(Millisecond) })
}
