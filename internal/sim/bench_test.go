package sim

import (
	"fmt"
	"testing"
)

// The kernel's two hot paths: the context-switch handshake (park/resume)
// and the timer path (Sleep → heap push → pop → ready). Every simulated
// I/O pays both, so allocs/op here multiply into every experiment.

// BenchmarkSleepTimer measures the full timer round trip: one process
// repeatedly sleeping a positive duration, so each iteration pays a heap
// push, a quiescent pop, and the park/resume handshake.
func BenchmarkSleepTimer(b *testing.B) {
	b.ReportAllocs()
	e := New(1)
	e.Go("sleeper", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(Microsecond)
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkContextSwitch measures the pure handshake: two processes
// alternating via Yield (Sleep(0)), which exercises the run queue without
// the timer heap.
func BenchmarkContextSwitch(b *testing.B) {
	b.ReportAllocs()
	e := New(1)
	for w := 0; w < 2; w++ {
		e.Go(fmt.Sprintf("w%d", w), func(p *Proc) {
			for i := 0; i < b.N; i++ {
				p.Yield()
			}
		})
	}
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkTimerChurn keeps a wide timer heap busy: many processes with
// staggered periods, so pushes and pops interleave deep in the heap the
// way a loaded machine (flusher + scheduler + workload timers) does.
func BenchmarkTimerChurn(b *testing.B) {
	b.ReportAllocs()
	const procs = 64
	e := New(1)
	for w := 0; w < procs; w++ {
		period := Time(w%7+1) * Microsecond
		e.Go(fmt.Sprintf("t%d", w), func(p *Proc) {
			for i := 0; i < b.N/procs; i++ {
				p.Sleep(period)
			}
		})
	}
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkWaitQueue measures the blocking-primitive path (park with a
// static reason + FIFO wake), the pattern every Chan/Semaphore/WaitGroup
// operation reduces to.
func BenchmarkWaitQueue(b *testing.B) {
	b.ReportAllocs()
	e := New(1)
	q := NewWaitQueue(e)
	e.Go("waiter", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			q.Wait(p, "bench")
		}
	})
	e.Go("waker", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			for q.WakeOne() {
			}
			p.Yield()
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}
