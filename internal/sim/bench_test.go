package sim

import (
	"fmt"
	"testing"
)

// The kernel's two hot paths: the context-switch handshake (park/resume)
// and the timer path (Sleep → heap push → pop → ready). Every simulated
// I/O pays both, so allocs/op here multiply into every experiment.
// BenchmarkProcHandoff vs BenchmarkCallbackTimer is the A/B the
// goroutine-free executor exists for: the same periodic event with and
// without the park/resume channel handshake.

// BenchmarkProcHandoff measures the goroutine-proc timer round trip:
// one process repeatedly sleeping a positive duration, so each
// iteration pays a heap push, a quiescent pop, and the park/resume
// handshake (two channel operations and a goroutine switch).
func BenchmarkProcHandoff(b *testing.B) {
	b.ReportAllocs()
	e := New(1)
	e.Go("sleeper", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(Microsecond)
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkCallbackTimer measures the same periodic event on the
// inline executor: a self-re-arming callback pays the heap push and
// pop but runs on the scheduler's own goroutine — no channels, no
// goroutine switch, no allocation. The gap to BenchmarkProcHandoff is
// the per-event saving of every converted component.
func BenchmarkCallbackTimer(b *testing.B) {
	b.ReportAllocs()
	e := New(1)
	n := 0
	cb := NewCallback(e, "ticker", func(now Time) Time {
		n++
		if n >= b.N {
			return 0
		}
		return Microsecond
	})
	cb.Arm(Microsecond)
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkContextSwitch measures the pure handshake: two processes
// alternating via Yield (Sleep(0)), which exercises the run queue without
// the timer heap.
func BenchmarkContextSwitch(b *testing.B) {
	b.ReportAllocs()
	e := New(1)
	for w := 0; w < 2; w++ {
		e.Go(fmt.Sprintf("w%d", w), func(p *Proc) {
			for i := 0; i < b.N; i++ {
				p.Yield()
			}
		})
	}
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkTimerChurn keeps a wide timer heap busy: many processes with
// staggered periods, so pushes and pops interleave deep in the heap the
// way a loaded machine (flusher + scheduler + workload timers) does.
func BenchmarkTimerChurn(b *testing.B) {
	b.ReportAllocs()
	const procs = 64
	e := New(1)
	for w := 0; w < procs; w++ {
		period := Time(w%7+1) * Microsecond
		e.Go(fmt.Sprintf("t%d", w), func(p *Proc) {
			for i := 0; i < b.N/procs; i++ {
				p.Sleep(period)
			}
		})
	}
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkWaitQueue measures the blocking-primitive path (park with a
// static reason + FIFO wake), the pattern every Chan/Semaphore/WaitGroup
// operation reduces to.
func BenchmarkWaitQueue(b *testing.B) {
	b.ReportAllocs()
	e := New(1)
	q := NewWaitQueue(e)
	e.Go("waiter", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			q.Wait(p, "bench")
		}
	})
	e.Go("waker", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			for q.WakeOne() {
			}
			p.Yield()
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkBarrierFlush measures one barrier's worth of port work for a
// busy port: a 64-message batch moved sender→receiver, its delivery
// timer fired, and the inbox drained. The CI allocation gate holds this
// at 0 allocs/op — batches and inboxes recycle through free lists, so
// barrier frequency costs time, never garbage.
func BenchmarkBarrierFlush(b *testing.B) {
	b.ReportAllocs()
	e := New(1)
	d1 := e.NewDomain("rx")
	pt := NewPort[int](e, d1, "p", Millisecond)
	var at Time
	cycle := func() {
		at += Millisecond
		fillPort(pt, 64, at)
		pt.flush()
		if n := drainPort(pt, at); n != 64 {
			b.Fatalf("delivered %d of 64", n)
		}
	}
	cycle() // warm the free lists
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cycle()
	}
}

// BenchmarkEOTScan measures the serial horizon computation at the
// barrier — the reach fixpoint over an 8-domain ring with per-domain
// timers armed, the part of barrier cost that grows with topology. The
// CI allocation gate holds it at 0 allocs/op (engine scratch only).
func BenchmarkEOTScan(b *testing.B) {
	b.ReportAllocs()
	e := New(1)
	doms := []*Domain{e.Dom()}
	for i := 1; i < 8; i++ {
		doms = append(doms, e.NewDomain(fmt.Sprintf("d%d", i)))
	}
	for i := range doms {
		NewPort[int](doms[i], doms[(i+1)%len(doms)], fmt.Sprintf("ring%d", i), Time(i+1)*Millisecond)
		d := doms[i]
		d.seq++
		d.timers.push(timer{at: Time(i) * 100 * Microsecond, seq: d.seq, p: nil})
	}
	e.prepareWindows()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.computeWindow()
	}
}
