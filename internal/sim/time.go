// Package sim implements a deterministic discrete-event simulation kernel.
//
// All higher layers of the repository (devices, schedulers, page cache,
// filesystems, maintenance tasks, workload generators) run as sim processes
// over a virtual clock. The kernel guarantees that exactly one process
// executes at any moment, so code built on top of it needs no locking, and
// that runs with the same seed are bit-for-bit reproducible.
package sim

import (
	"fmt"
	"time"
)

// Time is a point in virtual time, or a duration between two such points,
// measured in nanoseconds. The simulation starts at Time(0).
type Time int64

// Common durations, mirroring package time.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
	Minute           = 60 * Second
	Hour             = 60 * Minute
)

// FromDuration converts a real time.Duration into virtual Time.
func FromDuration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// Duration converts virtual Time into a time.Duration.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds returns the time as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Milliseconds returns the time as a floating-point number of milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// String formats the time with the same notation as time.Duration.
func (t Time) String() string { return time.Duration(t).String() }

// Scale multiplies the time by a dimensionless factor, rounding toward zero.
func (t Time) Scale(f float64) Time { return Time(float64(t) * f) }

func (t Time) min(u Time) Time {
	if t < u {
		return t
	}
	return u
}

// GoString implements fmt.GoStringer for readable test failures.
func (t Time) GoString() string { return fmt.Sprintf("sim.Time(%s)", t) }
