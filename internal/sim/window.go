package sim

// Window protocol for the domain-sharded engine.
//
// Multi-domain runs proceed in rounds separated by barriers. At each
// barrier the engine (serial, every domain parked) flushes ports,
// scans the domains, and grants each domain a horizon; during the round
// every granted domain independently executes its events strictly below
// its horizon. Two protocols compute the horizons:
//
//   - WindowAdaptive (the default): domain d's horizon is its earliest
//     input time reach(d) — a lower bound on when any message could
//     still arrive at d. A domain s cannot emit before eot(s) =
//     min(N(s), reach(s)): it executes events in nondecreasing time
//     starting at its next-event time N(s), unless an arriving message
//     revives it earlier, and every send is stamped now+latency. So
//     reach(d) = min over ports p into d of eot(from(p)) + latency(p),
//     a shortest-arrival-path fixpoint over the port graph (latencies
//     are positive, so Bellman-Ford relaxation converges). Domains with
//     no inbound path from a live domain are unbounded. When no
//     cross-domain traffic is near, horizons race ahead and barriers
//     become rare.
//
//   - WindowFixed: every domain's horizon is nextT + minLat, where
//     nextT is the global next-event time and minLat the smallest port
//     latency — the classic static-lookahead window. Every adaptive
//     horizon is >= the fixed one: any arrival path starts at some
//     eot(s) >= nextT and crosses at least one port, so reach(d) >=
//     nextT + minLat. Adaptive rounds are supersets of fixed rounds.
//
// Both protocols grant the domain owning nextT a horizon strictly above
// nextT, so every round executes at least one event and the loop makes
// progress. When no domain has a runnable process, the barrier also
// fast-forwards lagging clocks to nextT ("idle fast-forward"): no timer
// or pending delivery exists below nextT anywhere, so skipping the gap
// cannot skip an event — it only collapses empty rounds.
//
// Determinism: horizons are computed serially from barrier-time state,
// so they are identical at any worker count; and because delivery
// timers carry canonical sequence numbers (see port.go), *where* the
// barriers fall cannot change how any two events order. That is the
// fixed-vs-adaptive byte-identity argument, and the property tests in
// window_test.go check it on randomized topologies.

// WindowMode selects the barrier protocol for multi-domain engines. The
// zero value is WindowAdaptive; the mode never changes simulation
// results, only how often domains synchronize.
type WindowMode uint8

const (
	// WindowAdaptive grants per-domain horizons from earliest output
	// times and fast-forwards clocks over globally idle gaps.
	WindowAdaptive WindowMode = iota
	// WindowFixed steps every domain by the minimum static port latency
	// past the global next event (the PR 6 protocol); kept as the
	// equivalence baseline and for bisecting protocol regressions.
	WindowFixed
)

// String returns the flag-friendly name of the mode.
func (m WindowMode) String() string {
	if m == WindowFixed {
		return "fixed"
	}
	return "adaptive"
}

// WindowModeByName parses a -window flag value.
func WindowModeByName(s string) (WindowMode, bool) {
	switch s {
	case "adaptive":
		return WindowAdaptive, true
	case "fixed":
		return WindowFixed, true
	}
	return WindowAdaptive, false
}

// SetWindowMode selects the barrier protocol. Must be called before
// Run; it is a no-op for single-domain engines, which never window.
func (e *Engine) SetWindowMode(m WindowMode) {
	if e.running {
		panic("sim: SetWindowMode during Run")
	}
	e.windowMode = m
}

// WindowModeSet returns the configured barrier protocol.
func (e *Engine) WindowModeSet() WindowMode { return e.windowMode }

// windowSlab bounds every granted window: even a domain no live sender
// can reach gets a horizon of at most nextT + windowSlab (or + minLat
// if some port's latency exceeds the slab). Unbounded windows would be
// a liveness hazard — a process that never quiesces (a Stopping() poll
// loop, say) would pin its domain in one endless window, and the Stop
// request it is waiting for only latches at a barrier. One virtual
// second keeps barriers rare on idle stretches while letting stop
// requests land promptly.
const windowSlab = Second

// WindowStats counts barrier activity during a multi-domain Run. All
// fields are computed serially at barriers, so they are identical at
// any worker count (and across runs of the same seed).
type WindowStats struct {
	// Rounds is the number of barrier rounds executed.
	Rounds int64
	// FastForwards counts rounds that advanced idle domain clocks to
	// the global next-event time.
	FastForwards int64
	// OpenTime is the sum over rounds of the granted global window
	// length min(horizon)-nextT (unbounded horizons excluded), i.e.
	// how much virtual time each barrier cleared at minimum.
	OpenTime Time
	// MaxOpen is the largest single granted global window length.
	MaxOpen Time
}

// WindowStats returns barrier counters for the last (or current) Run.
// Single-domain runs never window and report zeros.
func (e *Engine) WindowStats() WindowStats { return e.winStats }

// prepareWindows sizes the per-round scratch the barrier reuses: the
// EOT scan must not allocate (see BenchmarkEOTScan and the CI gate).
func (e *Engine) prepareWindows() {
	if cap(e.nextScratch) < len(e.domains) {
		e.nextScratch = make([]Time, len(e.domains))
		e.horizonScratch = make([]Time, len(e.domains))
	}
	e.nextScratch = e.nextScratch[:len(e.domains)]
	e.horizonScratch = e.horizonScratch[:len(e.domains)]
	e.winStats = WindowStats{}
}

// computeWindow runs at the barrier and fills e.horizonScratch with
// each domain's granted horizon. It returns the global next-event time
// (maxTime when fully quiescent), the smallest granted horizon, and
// whether every domain's run queue is empty (the idle fast-forward
// precondition). Zero allocations: everything lives in engine scratch.
func (e *Engine) computeWindow() (nextT, minH Time, allIdle bool) {
	nextT, allIdle = maxTime, true
	for i, d := range e.domains {
		n := d.nextEvent()
		e.nextScratch[i] = n
		if n < nextT {
			nextT = n
		}
		if d.runq.len() > 0 {
			allIdle = false
		}
		e.horizonScratch[i] = maxTime
	}
	if nextT == maxTime {
		return nextT, maxTime, allIdle
	}
	if e.windowMode == WindowFixed {
		h := maxTime
		if e.minLat > 0 && e.minLat < maxTime-nextT {
			h = nextT + e.minLat
		}
		for i := range e.horizonScratch {
			e.horizonScratch[i] = h
		}
	} else {
		// Shortest-arrival-path fixpoint: horizonScratch[d] converges to
		// reach(d), relaxing eot(from) + latency across every port until
		// stable. Latencies are positive, so each pass only shortens
		// paths and the loop terminates within len(domains) passes. The
		// fixpoint is a unique minimum, so the relaxation order cannot
		// affect the result.
		for changed := true; changed; {
			changed = false
			for j, from := range e.portFrom {
				lb := e.nextScratch[from]
				if r := e.horizonScratch[from]; r < lb {
					lb = r
				}
				lat := e.portLat[j]
				if lb == maxTime || lat >= maxTime-lb {
					continue
				}
				if eot := lb + lat; eot < e.horizonScratch[e.portTo[j]] {
					e.horizonScratch[e.portTo[j]] = eot
					changed = true
				}
			}
		}
	}
	// Liveness cap: no window extends more than windowSlab (or minLat,
	// if larger) past the global next event, so a barrier — the only
	// point where Stop requests latch — is always reachable.
	slab := windowSlab
	if e.minLat > slab {
		slab = e.minLat
	}
	if slab < maxTime-nextT {
		if lim := nextT + slab; lim > nextT {
			for i, h := range e.horizonScratch {
				if h > lim {
					e.horizonScratch[i] = lim
				}
			}
		}
	}
	// RunFor cap: events past the deadline never execute, in either
	// mode, so the stop point is a pure virtual-time fact — windows
	// cannot overrun it by a protocol-dependent amount.
	if e.deadline < maxTime-1 {
		if lim := e.deadline + 1; lim > nextT {
			for i, h := range e.horizonScratch {
				if h > lim {
					e.horizonScratch[i] = lim
				}
			}
		}
	}
	minH = maxTime
	for _, h := range e.horizonScratch {
		if h < minH {
			minH = h
		}
	}
	return nextT, minH, allIdle
}

// runWindows is the barrier loop for multi-domain engines. Each round:
//
//  1. (serial) flush ports: sender batches move to receiver FIFOs and
//     delivery timers are armed, in port creation order;
//  2. (serial) computeWindow grants per-domain horizons (see the
//     package comment for both protocols), fast-forwarding idle clocks
//     over event gaps;
//  3. (parallel) every granted domain independently executes its
//     events strictly below its horizon;
//  4. (serial) aggregate failures and latch stop requests.
//
// Because domains share no state and cross-domain messages order
// canonically, the result is identical at any worker count.
func (e *Engine) runWindows() {
	e.prepareWindows()
	ranToEnd := false
	active := make([]*Domain, 0, len(e.domains))
	for !e.stopping {
		if e.stopReq.Load() {
			break
		}
		for _, pt := range e.ports {
			pt.flush()
		}
		nextT, minH, allIdle := e.computeWindow()
		if nextT == maxTime {
			ranToEnd = true
			break // quiescent everywhere, nothing in flight
		}
		if e.deadline < maxTime && nextT > e.deadline {
			ranToEnd = true
			break // every remaining event lies beyond the RunFor deadline
		}
		e.winStats.Rounds++
		if allIdle {
			ff := false
			for _, d := range e.domains {
				if d.now < nextT {
					d.now = nextT
					ff = true
				}
			}
			if ff {
				e.winStats.FastForwards++
			}
		}
		if minH < maxTime {
			if open := minH - nextT; open > 0 {
				e.winStats.OpenTime += open
				if open > e.winStats.MaxOpen {
					e.winStats.MaxOpen = open
				}
			}
		}
		active = active[:0]
		for i, d := range e.domains {
			if e.nextScratch[i] < e.horizonScratch[i] {
				d.horizon = e.horizonScratch[i]
				if t := d.tracer; t != nil {
					end := d.horizon
					if end == maxTime {
						end = e.nextScratch[i]
					}
					t.Slice(0, "sim", "window", e.nextScratch[i], end)
				}
				active = append(active, d)
			}
		}
		e.runDomains(active)
		for _, d := range e.domains {
			if d.failure != nil {
				if e.failure == nil {
					e.failure = d.failure
				}
				e.stopReq.Store(true)
			}
		}
	}
	// A run that ended on its own — quiescence or the RunFor deadline —
	// leaves every clock at a protocol-invariant end time: the deadline
	// when one was set, else the time of the last event executed
	// anywhere. Without this, how far a barrier round happened to
	// fast-forward an idle domain's clock past its final event would
	// leak the window protocol into Domain.Now. (A dynamic Stop keeps
	// the clocks where its barrier latched; its cut point is inherently
	// barrier-placement-dependent.)
	if ranToEnd {
		end := e.deadline
		if end == maxTime {
			end = 0
			for _, d := range e.domains {
				if d.now > end {
					end = d.now
				}
			}
		}
		for _, d := range e.domains {
			if d.now < end {
				d.now = end
			}
		}
	}
	e.stopping = true
}
