package sim

// Tracer is the minimal interface the kernel needs to report scheduling
// activity to an observability backend (internal/obs implements it).
// Defining the interface here keeps the kernel free of dependencies:
// obs depends on sim for Time, never the other way around.
//
// The engine guards every tracer touch behind a nil check, so the
// disabled path adds one predictable branch and zero allocations to
// park/Sleep — the contract the sim allocation gates enforce.
type Tracer interface {
	// Track registers (or resolves) a named track and returns its id.
	Track(name string) int32
	// Slice records a complete [start, end] span on a track.
	Slice(tid int32, cat, name string, start, end Time)
	// Instant records a point event.
	Instant(tid int32, cat, name string, ts Time)
}

// SetTracer attaches a tracer to the engine. Pass the concrete value
// only when tracing is enabled: a non-nil interface holding a nil
// tracer would defeat the engine's nil checks. Must be called before
// Run.
func (e *Engine) SetTracer(t Tracer) { e.tracer = t }

// Tracer returns the attached tracer (nil when tracing is off).
func (e *Engine) Tracer() Tracer { return e.tracer }

// ProcsCreated returns how many processes were ever created — one of
// the kernel-level quantities the metrics registry absorbs.
func (e *Engine) ProcsCreated() int { return len(e.procs) }

// TimersScheduled returns how many timers were ever pushed (every
// Sleep with a positive duration schedules exactly one).
func (e *Engine) TimersScheduled() uint64 { return e.seq }

// traceTID lazily registers the process's trace track. Track names are
// the process names, so processes spawned under the same name (timer
// helpers) share a track instead of exploding the track table.
func (p *Proc) traceTID(t Tracer) int32 {
	if p.tid == 0 {
		p.tid = t.Track(p.name)
	}
	return p.tid
}
