package sim

// Tracer is the minimal interface the kernel needs to report scheduling
// activity to an observability backend (internal/obs implements it).
// Defining the interface here keeps the kernel free of dependencies:
// obs depends on sim for Time, never the other way around.
//
// The engine guards every tracer touch behind a nil check, so the
// disabled path adds one predictable branch and zero allocations to
// park/Sleep — the contract the sim allocation gates enforce.
type Tracer interface {
	// Track registers (or resolves) a named track and returns its id.
	Track(name string) int32
	// Slice records a complete [start, end] span on a track.
	Slice(tid int32, cat, name string, start, end Time)
	// Instant records a point event.
	Instant(tid int32, cat, name string, ts Time)
}

// SetTracer attaches a tracer to the engine's default domain. Pass the
// concrete value only when tracing is enabled: a non-nil interface
// holding a nil tracer would defeat the engine's nil checks. Must be
// called before Run. Non-default domains need their own tracer value
// (Domain.SetTracer): domains record concurrently during a window, so
// one shared buffer would race.
func (e *Engine) SetTracer(t Tracer) { e.d0.tracer = t }

// Tracer returns the default domain's tracer (nil when tracing is off).
func (e *Engine) Tracer() Tracer { return e.d0.tracer }

// ProcsCreated returns how many processes were ever created across all
// domains — one of the kernel-level quantities the metrics registry
// absorbs.
func (e *Engine) ProcsCreated() int {
	n := 0
	for _, d := range e.domains {
		n += len(d.procs)
	}
	return n
}

// CallbacksCreated returns how many callbacks were ever registered
// across all domains — the goroutine-free counterpart of ProcsCreated.
func (e *Engine) CallbacksCreated() int {
	n := 0
	for _, d := range e.domains {
		n += len(d.cbs)
	}
	return n
}

// TimersScheduled returns how many timed events were ever scheduled
// across all domains (every Sleep with a positive duration schedules
// exactly one; cross-domain message deliveries add one each).
func (e *Engine) TimersScheduled() uint64 {
	var n uint64
	for _, d := range e.domains {
		n += d.seq + d.deliveries
	}
	return n
}

// traceTID lazily registers the process's trace track. Track names are
// the process names, so processes spawned under the same name (timer
// helpers) share a track instead of exploding the track table.
func (p *Proc) traceTID(t Tracer) int32 {
	if p.tid == 0 {
		p.tid = t.Track(p.name)
	}
	return p.tid
}
