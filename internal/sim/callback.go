package sim

import (
	"fmt"
	"runtime/debug"
)

// TimerFunc is a callback body. It runs inline on the domain scheduler's
// goroutine at its due (time, seq) slot — no channel handoff, no
// park/resume, no goroutine — with the domain clock already advanced to
// the slot time. Returning a positive duration re-arms the callback that
// far in the future (drawing the next seq immediately, exactly where a
// goroutine proc's re-Sleep would); returning 0 leaves it quiescent
// until something arms or wakes it again.
type TimerFunc func(now Time) Time

// Callback is a goroutine-free simulated process: a handler invoked
// inline by the scheduler instead of a parked goroutine resumed over
// channels. It occupies the same deterministic slots a goroutine proc
// would — armed timers consume the domain's (time, seq) order and queued
// wakes ride the same FIFO run queue — so converting a proc that never
// blocks mid-handler to a Callback is invisible to the simulation.
//
// A Callback is strictly less expressive than a Proc: the handler must
// return instead of blocking (no Sleep/Wait/Recv inside), which is why
// components with blocking call stacks (e.g. the pagecache flusher
// calling into a blocking backend) stay goroutine procs. See
// DESIGN.md's execution-modes section for the decision rule.
//
// All methods must be called from the callback's own domain: from its
// handler, from a proc or callback of the same domain, or before Run.
type Callback struct {
	dom  *Domain
	name string
	id   int
	fn   TimerFunc

	// armed counts outstanding timer-heap entries. More than one may be
	// in flight when the owner arms again before an earlier timer fired
	// (the overlapping-kick pattern some timer procs rely on).
	armed int
	// queued marks an entry in the domain run queue (a deferred arm or a
	// wake), mirroring a proc's presence in the runq.
	queued bool
	// pendingArm, when positive, is a deferred arm: the runq entry draws
	// the seq when it is invoked, matching the slot a spawned timer proc
	// would have drawn it in (spawn pushes the proc on the runq; the
	// proc's Sleep runs only when that entry is reached).
	pendingArm Time
	stopped    bool

	// Wait state mirrors Proc's: a static reason recorded at Subscribe
	// time so wakes can emit the same blocked-interval trace slice a
	// parked proc would.
	waitReason string
	waitStart  Time
	tid        int32 // trace track id, assigned lazily (see trace.go)
}

// NewCallback registers a callback named name on h's domain. The name
// is its trace-track identity, exactly like a proc name: a callback
// replacing a proc keeps the trace byte-identical by keeping the name.
// Callbacks draw ids from a counter separate from pids, so introducing
// one never perturbs the pid-derived random streams of existing procs.
func NewCallback(h Host, name string, fn TimerFunc) *Callback {
	d := h.Dom()
	cb := &Callback{dom: d, name: name, id: d.nextCBID, fn: fn}
	d.nextCBID++
	d.cbs = append(d.cbs, cb)
	return cb
}

// Name returns the callback's name.
func (cb *Callback) Name() string { return cb.name }

// Dom returns the domain the callback runs on.
func (cb *Callback) Dom() *Domain { return cb.dom }

// Armed reports how many timer-heap entries the callback has in flight.
func (cb *Callback) Armed() int { return cb.armed }

// Arm schedules the callback to fire after delay, drawing the next
// sequence number now — the slot a proc calling Sleep(delay) at this
// point would occupy. delay must be positive (a callback cannot "yield";
// use ArmDeferred-style queueing or a wake for that).
func (cb *Callback) Arm(delay Time) {
	if delay <= 0 {
		panic("sim: Callback.Arm with non-positive delay")
	}
	if cb.stopped {
		return
	}
	d := cb.dom
	d.seq++
	d.timers.push(timer{at: d.now + delay, seq: d.seq, fire: cb, armAt: d.now})
	cb.armed++
}

// ArmDeferred schedules the arm itself through the run queue: a runq
// entry is pushed now, and the sequence number is drawn only when that
// entry is reached. This replicates, slot for slot, the classic
// "spawn a timer proc" pattern — Go pushes the proc on the runq, and its
// Sleep draws the seq when the proc first runs — so converting such a
// spawn to ArmDeferred keeps every later (time, seq) comparison, and
// therefore the whole simulation, byte-identical. Only one deferred arm
// may be outstanding at a time (the proc pattern cannot overlap either:
// each spawn is a distinct proc).
func (cb *Callback) ArmDeferred(delay Time) {
	if delay <= 0 {
		panic("sim: Callback.ArmDeferred with non-positive delay")
	}
	if cb.stopped {
		return
	}
	if cb.queued {
		panic("sim: Callback.ArmDeferred while already queued")
	}
	cb.pendingArm = delay
	cb.queued = true
	cb.dom.runq.push(runnable{cb: cb})
}

// Cancel permanently deactivates the callback: in-flight timers and
// queued wakes are skipped when reached, and future Arm calls are
// no-ops. Cancel does not remove heap entries (they fire as stale
// no-ops), so it must only be used where a stale slot cannot matter —
// e.g. switching a component to its goroutine executor before Run.
func (cb *Callback) Cancel() { cb.stopped = true }

// schedule pushes a wake onto the run queue, the callback analogue of
// Domain.ready on a parked proc. Called by WaitQueue/Future when the
// condition the callback subscribed to is established.
func (cb *Callback) schedule() {
	if cb.stopped || cb.queued {
		return
	}
	cb.queued = true
	cb.dom.runq.push(runnable{cb: cb})
}

// invoke runs a runq entry for the callback: a deferred arm draws its
// seq, a wake emits the blocked-interval trace slice (mirroring park's)
// and runs the handler.
func (d *Domain) invoke(cb *Callback) {
	cb.queued = false
	if cb.stopped {
		return
	}
	if delay := cb.pendingArm; delay > 0 {
		cb.pendingArm = 0
		cb.Arm(delay)
		return
	}
	if t := d.tracer; t != nil && cb.waitReason != "" {
		// The subscribed interval, named by its wait reason, becomes one
		// virtual-time slice on the callback's track — the same record a
		// parked proc's park emits on wake.
		t.Slice(cb.traceTID(t), "sim", cb.waitReason, cb.waitStart, d.now)
	}
	cb.waitReason = ""
	d.runCB(cb)
}

// fire implements inlineEvent: a popped timer runs the handler inline.
// The trace slice spans [armAt, now] under the name "sleep", exactly
// the slice a sleeping proc's park would have recorded.
func (cb *Callback) fire(d *Domain, armAt Time) {
	cb.armed--
	if cb.stopped {
		return
	}
	if t := d.tracer; t != nil {
		t.Slice(cb.traceTID(t), "sim", "sleep", armAt, d.now)
	}
	d.runCB(cb)
}

// runCB runs the handler with the same panic conversion runProc gives
// goroutine procs, and re-arms when the handler returns a delay.
func (d *Domain) runCB(cb *Callback) {
	defer func() {
		if r := recover(); r != nil {
			d.eng.noteFailure(d, fmt.Errorf("sim: callback %q panicked: %v\n%s",
				cb.name, r, debug.Stack()))
		}
	}()
	if next := cb.fn(d.now); next > 0 {
		cb.Arm(next)
	}
}

// traceTID lazily registers the callback's trace track, sharing the
// proc naming scheme so a converted component keeps its track.
func (cb *Callback) traceTID(t Tracer) int32 {
	if cb.tid == 0 {
		cb.tid = t.Track(cb.name)
	}
	return cb.tid
}
