package sim

import (
	"fmt"
	"strings"
	"testing"
)

// buildMesh wires nDom domains into a ring of ports (each domain sends to
// the next) plus a reply port back to domain 0, and starts a deterministic
// but irregular workload on each: every domain runs procs that sleep
// rand-derived durations, forward tokens around the ring, and append to a
// per-domain log. The merged log is the determinism witness: it must be
// byte-identical at any worker count.
func buildMesh(seed int64, nDom, workers int) (e *Engine, logs []*strings.Builder) {
	e = New(seed)
	e.SetWorkers(workers)
	doms := []*Domain{e.Dom()}
	for i := 1; i < nDom; i++ {
		doms = append(doms, e.NewDomain(fmt.Sprintf("d%d", i)))
	}
	logs = make([]*strings.Builder, nDom)
	ring := make([]*Port[int], nDom)
	for i := range doms {
		logs[i] = &strings.Builder{}
		ring[i] = NewPort[int](doms[i], doms[(i+1)%nDom], fmt.Sprintf("ring%d", i), 50*Microsecond)
	}
	for i, d := range doms {
		i, d := i, d
		lg := logs[i]
		// An irregular local load: sleeps drawn from the domain-scoped
		// rand stream, so any cross-domain leakage of randomness or
		// ordering shows up as a log diff.
		d.Go("load", func(p *Proc) {
			r := p.Rand()
			for k := 0; k < 40; k++ {
				p.Sleep(Time(r.Intn(900)+100) * Microsecond)
				fmt.Fprintf(lg, "load %d@%s\n", k, p.Now())
			}
		})
		// The ring forwarder: receive a token, stamp it, pass it on.
		out := ring[i]
		in := ring[(i+nDom-1)%nDom]
		d.Go("fwd", func(p *Proc) {
			for {
				tok := in.Recv(p)
				fmt.Fprintf(lg, "tok %d@%s\n", tok, p.Now())
				if tok >= 64 {
					if i == 0 {
						e.Stop()
					}
					continue
				}
				p.Sleep(Time(tok%5) * 10 * Microsecond)
				out.Send(p, tok+1)
			}
		})
	}
	doms[0].Go("kick", func(p *Proc) {
		p.Sleep(10 * Microsecond)
		ring[0].Send(p, 1)
	})
	return e, logs
}

func meshRun(t *testing.T, seed int64, nDom, workers int) string {
	t.Helper()
	e, logs := buildMesh(seed, nDom, workers)
	if err := e.Run(); err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	var b strings.Builder
	for i, lg := range logs {
		fmt.Fprintf(&b, "== domain %d (t=%s, procs=%d, timers=%d)\n",
			i, e.Domains()[i].Now(), e.Domains()[i].ProcsCreated(), e.Domains()[i].TimersScheduled())
		b.WriteString(lg.String())
	}
	return b.String()
}

// TestMultiDomainDeterminism is the kernel-level form of the byte-identical
// obligation: an irregular multi-domain workload must produce the same
// merged log — including per-domain clocks and timer counts — at worker
// counts 1, 2, and 8.
func TestMultiDomainDeterminism(t *testing.T) {
	for _, nDom := range []int{2, 5} {
		ref := meshRun(t, 42, nDom, 1)
		for _, workers := range []int{2, 8} {
			got := meshRun(t, 42, nDom, workers)
			if got != ref {
				t.Fatalf("nDom=%d: workers=%d diverged from workers=1:\n-- ref --\n%s\n-- got --\n%s",
					nDom, workers, ref, got)
			}
		}
	}
	if meshRun(t, 42, 3, 4) == meshRun(t, 43, 3, 4) {
		t.Fatal("different seeds produced identical logs — witness is not sensitive")
	}
}

// TestPortDelivery checks the port contract: a message sent at t arrives
// exactly at t+latency, in send order, and never before the receiver's
// clock reaches that time.
func TestPortDelivery(t *testing.T) {
	e := New(7)
	d1 := e.NewDomain("rx")
	pt := NewPort[Time](e, d1, "p", Millisecond)
	var got []Time
	var sentAt []Time
	e.Go("tx", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Sleep(Time(i+1) * 100 * Microsecond)
			sentAt = append(sentAt, p.Now())
			pt.Send(p, p.Now())
		}
	})
	d1.Go("rx", func(p *Proc) {
		for i := 0; i < 5; i++ {
			v := pt.Recv(p)
			if p.Now() != v+Millisecond {
				t.Errorf("msg sent at %s delivered at %s, want exactly +%s", v, p.Now(), Millisecond)
			}
			got = append(got, v)
		}
	})
	e.SetWorkers(4)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("received %d of 5 messages", len(got))
	}
	for i := range got {
		if got[i] != sentAt[i] {
			t.Fatalf("out-of-order delivery: got %v, sent %v", got, sentAt)
		}
	}
}

// TestLookaheadHorizon is the conservative-window safety property: the
// horizon must never admit a receiver-domain event that runs before a
// pending cross-domain message with an earlier delivery time. Observed
// from inside the simulation, that means every domain's sequence of event
// timestamps — local timers and port deliveries interleaved — is
// nondecreasing. The receiver ticks much faster than the port latency, so
// an unsafe horizon (one that let the receiver run past a pending
// delivery) would manifest as a delivery stamped earlier than the tick
// before it.
func TestLookaheadHorizon(t *testing.T) {
	e := New(9)
	d1 := e.NewDomain("rx")
	pt := NewPort[int](e, d1, "p", 300*Microsecond)
	var stamps []Time
	e.Go("tx", func(p *Proc) {
		r := p.Rand()
		for i := 0; i < 30; i++ {
			p.Sleep(Time(r.Intn(500)+1) * Microsecond)
			pt.Send(p, i)
		}
	})
	d1.Go("tick", func(p *Proc) {
		for !p.Engine().Stopping() {
			p.Sleep(20 * Microsecond)
			stamps = append(stamps, p.Now())
		}
	})
	d1.Go("rx", func(p *Proc) {
		for i := 0; i < 30; i++ {
			pt.Recv(p)
			stamps = append(stamps, p.Now())
		}
		e.Stop()
	})
	e.SetWorkers(8)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(stamps); i++ {
		if stamps[i] < stamps[i-1] {
			t.Fatalf("receiver-domain time went backwards: event %d at %s after event at %s — horizon admitted an event past a pending delivery",
				i, stamps[i], stamps[i-1])
		}
	}
}

// TestHorizonBound checks the window arithmetic directly: with a minimum
// port latency L, a window starting at global next-event time T must not
// execute any event at or beyond T+L. The probe domain records the gap
// between consecutive wakes of a long-sleeping proc in another domain.
func TestHorizonBound(t *testing.T) {
	e := New(3)
	d1 := e.NewDomain("a")
	d2 := e.NewDomain("b")
	NewPort[int](d1, d2, "bound", 100*Microsecond) // unused traffic-wise; sets lookahead
	// d1 next event at t=0 (runnable), d2's first timer at 10ms: the
	// first window is [0, 100us) and must not run the 10ms timer.
	var wokeAt Time
	windowSeen := false
	d1.Go("busy", func(p *Proc) {
		p.Sleep(50 * Microsecond) // inside the first window
		windowSeen = true
	})
	d2.Go("far", func(p *Proc) {
		p.Sleep(10 * Millisecond)
		wokeAt = p.Now()
		if !windowSeen {
			t.Error("10ms timer ran before the [0,100us) window completed")
		}
	})
	e.SetWorkers(2)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if wokeAt != 10*Millisecond {
		t.Fatalf("far timer woke at %s, want 10ms", wokeAt)
	}
}

// TestPortPanics locks in the construction-time invariants the
// conservative window relies on.
func TestPortPanics(t *testing.T) {
	e := New(1)
	d1 := e.NewDomain("x")
	expectPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	expectPanic("zero latency", func() { NewPort[int](e, d1, "z", 0) })
	expectPanic("same domain", func() { NewPort[int](d1, d1, "s", Millisecond) })
	e2 := New(2)
	expectPanic("cross engine", func() { NewPort[int](e, e2, "c", Millisecond) })
}

// TestStopLatchedAtBarrier: a Stop issued inside a window takes effect at
// a barrier, so the set of work completed after the stop is identical at
// any worker count.
func TestStopLatchedAtBarrier(t *testing.T) {
	run := func(workers int) string {
		e := New(11)
		d1 := e.NewDomain("other")
		NewPort[int](e, d1, "lat", 200*Microsecond)
		var lg strings.Builder
		e.Go("stopper", func(p *Proc) {
			p.Sleep(Millisecond)
			e.Stop()
		})
		d1.Go("worker", func(p *Proc) {
			for !p.Engine().Stopping() {
				p.Sleep(90 * Microsecond)
				fmt.Fprintf(&lg, "tick@%s\n", p.Now())
			}
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return lg.String()
	}
	ref := run(1)
	for _, w := range []int{2, 8} {
		if got := run(w); got != ref {
			t.Fatalf("stop point depends on workers=%d:\n-- ref --\n%s\n-- got --\n%s", w, ref, got)
		}
	}
}

// TestMultiDomainPanicPropagates: a panic in a non-default domain must
// surface from Run as a failure, at any worker count.
func TestMultiDomainPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		e := New(5)
		d1 := e.NewDomain("boom")
		NewPort[int](e, d1, "lat", Millisecond)
		d1.Go("bad", func(p *Proc) {
			p.Sleep(Millisecond)
			panic("kaboom")
		})
		e.Go("idle", func(p *Proc) {
			for i := 0; i < 100; i++ {
				p.Sleep(Millisecond)
			}
		})
		e.SetWorkers(workers)
		err := e.Run()
		if err == nil || !strings.Contains(err.Error(), "kaboom") {
			t.Fatalf("workers=%d: want kaboom failure, got %v", workers, err)
		}
	}
}

// TestMultiDomainQuiesce: with no runnable work anywhere, Run returns.
func TestMultiDomainQuiesce(t *testing.T) {
	e := New(1)
	d1 := e.NewDomain("q")
	pt := NewPort[int](e, d1, "lat", Millisecond)
	done := false
	d1.Go("recv-then-exit", func(p *Proc) {
		_ = pt.Recv(p)
		done = true
	})
	e.Go("send-once", func(p *Proc) {
		p.Sleep(Millisecond)
		pt.Send(p, 1)
	})
	e.SetWorkers(2)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("receiver never got the message before quiesce")
	}
}

// TestDomainRandIndependence: identical component names on different
// domains must get independent rand streams, while the default domain's
// streams stay identical to the engine-level derivation (golden
// stability).
func TestDomainRandIndependence(t *testing.T) {
	e := New(77)
	d1 := e.NewDomain("s1")
	d2 := e.NewDomain("s2")
	a := d1.DeriveRand("workload").Int63()
	b := d2.DeriveRand("workload").Int63()
	c := e.Dom().DeriveRand("workload").Int63()
	ref := e.DeriveRand("workload").Int63()
	if a == b {
		t.Fatal("distinct domains produced the same stream for one name")
	}
	if c != ref {
		t.Fatal("default-domain derivation diverged from engine derivation")
	}
}
