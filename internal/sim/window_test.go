package sim

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// randTopologyRun builds a randomized multi-domain engine — topology,
// latencies, workloads and message counts all drawn from metaSeed — and
// runs it to quiescence under the given window mode and worker count.
// It returns a witness string capturing every observable ordering fact:
// per-domain logs (message receipts interleaved with local timer work,
// in execution order), final clocks, and event counts. Construction
// randomness comes from metaSeed and in-simulation randomness from
// domain-scoped streams, so two calls with equal metaSeed build
// identical simulations regardless of mode or workers.
//
// Sleeps and latencies are multiples of 10us on purpose: equal-time
// collisions — two ports delivering at one instant, a delivery racing a
// local timer — are exactly where a window protocol could leak its
// barrier placement into the event order, so the workload manufactures
// lots of them.
func randTopologyRun(t *testing.T, metaSeed int64, mode WindowMode, workers int) (string, WindowStats) {
	t.Helper()
	meta := rand.New(rand.NewSource(metaSeed))
	e := New(metaSeed)
	e.SetWindowMode(mode)
	e.SetWorkers(workers)

	nDom := 2 + meta.Intn(4)
	doms := []*Domain{e.Dom()}
	for i := 1; i < nDom; i++ {
		doms = append(doms, e.NewDomain(fmt.Sprintf("d%d", i)))
	}
	logs := make([]*strings.Builder, nDom)
	for i := range logs {
		logs[i] = &strings.Builder{}
	}

	type edge struct {
		pt     *Port[int]
		from   int
		to     int
		tokens int
	}
	var edges []edge
	for i := 0; i < nDom; i++ {
		for j := 0; j < nDom; j++ {
			if i == j || meta.Float64() > 0.4 {
				continue
			}
			lat := Time(1+meta.Intn(200)) * 10 * Microsecond
			edges = append(edges, edge{
				pt:     NewPort[int](doms[i], doms[j], fmt.Sprintf("p%d-%d", i, j), lat),
				from:   i,
				to:     j,
				tokens: 5 + meta.Intn(16),
			})
		}
	}
	if len(edges) == 0 {
		edges = append(edges, edge{
			pt:     NewPort[int](doms[0], doms[1], "p0-1", 10*Microsecond),
			from:   0,
			to:     1,
			tokens: 8,
		})
	}

	for k, ed := range edges {
		k, ed := k, ed
		doms[ed.from].Go(fmt.Sprintf("tx%d", k), func(p *Proc) {
			r := p.Rand()
			for n := 0; n < ed.tokens; n++ {
				p.Sleep(Time(1+r.Intn(300)) * 10 * Microsecond)
				ed.pt.Send(p, k*1000+n)
			}
		})
		lg := logs[ed.to]
		if meta.Intn(2) == 0 {
			doms[ed.to].Go(fmt.Sprintf("rx%d", k), func(p *Proc) {
				for n := 0; n < ed.tokens; n++ {
					v := ed.pt.Recv(p)
					fmt.Fprintf(lg, "recv %d@%s\n", v, p.Now())
				}
			})
		} else {
			// Callback receiver: no goroutine — subscribed to the port's
			// inbox wakeups, it drains every ripe message inline and
			// re-subscribes until the edge's tokens have all arrived.
			got := 0
			var rcb *Callback
			rcb = NewCallback(doms[ed.to], fmt.Sprintf("rx%d", k), func(now Time) Time {
				for {
					v, ok := ed.pt.TryRecv()
					if !ok {
						break
					}
					fmt.Fprintf(lg, "recv %d@%s\n", v, now)
					got++
				}
				if got < ed.tokens {
					ed.pt.recvQ.Subscribe(rcb, "rx-cb")
				}
				return 0
			})
			ed.pt.recvQ.Subscribe(rcb, "rx-cb")
		}
	}
	// Local load on every domain: bounded, quiesces on its own. Its log
	// lines interleave with receipts in execution order, so a protocol
	// that reordered a delivery against a local timer would show here.
	for i, d := range doms {
		lg := logs[i]
		d.Go("load", func(p *Proc) {
			r := p.Rand()
			for n := 0; n < 50; n++ {
				p.Sleep(Time(1+r.Intn(200)) * 10 * Microsecond)
				fmt.Fprintf(lg, "load %d@%s\n", n, p.Now())
			}
		})
	}
	// Callback load: a goroutine-free re-arming ticker per domain on the
	// same 10us collision grid, so callback timers collide with proc
	// timers and port deliveries under both protocols. Its log lines must
	// interleave identically at any worker count and window mode.
	for i, d := range doms {
		lg := logs[i]
		period := Time(1+meta.Intn(150)) * 10 * Microsecond
		ticks := 20 + meta.Intn(30)
		n := 0
		cb := NewCallback(d, fmt.Sprintf("tick%d", i), func(now Time) Time {
			fmt.Fprintf(lg, "tick %d@%s\n", n, now)
			n++
			if n >= ticks {
				return 0
			}
			return period
		})
		cb.Arm(period)
	}

	if err := e.Run(); err != nil {
		t.Fatalf("mode=%v workers=%d: %v", mode, workers, err)
	}
	var b strings.Builder
	for i, lg := range logs {
		fmt.Fprintf(&b, "== domain %d (t=%s, timers=%d)\n",
			i, doms[i].Now(), doms[i].TimersScheduled())
		b.WriteString(lg.String())
	}
	return b.String(), e.WindowStats()
}

// TestWindowModeEquivalence is the cross-protocol property test: on
// randomized port topologies and latencies, adaptive windows must
// deliver the exact same (time, sequence) event order as fixed-latency
// lookahead windows — the witness includes every receipt time and its
// interleaving with local timers — at any worker count. It also checks
// the protocol-shape claim: adaptive windows are supersets of fixed
// windows, so adaptive never takes more barrier rounds.
func TestWindowModeEquivalence(t *testing.T) {
	for metaSeed := int64(1); metaSeed <= 12; metaSeed++ {
		ref, fixedStats := randTopologyRun(t, metaSeed, WindowFixed, 1)
		for _, workers := range []int{1, 4} {
			got, adStats := randTopologyRun(t, metaSeed, WindowAdaptive, workers)
			if got != ref {
				t.Fatalf("seed %d: adaptive(workers=%d) diverged from fixed:\n-- fixed --\n%s\n-- adaptive --\n%s",
					metaSeed, workers, ref, got)
			}
			if adStats.Rounds > fixedStats.Rounds {
				t.Fatalf("seed %d: adaptive took %d rounds, fixed %d — adaptive windows must be supersets",
					metaSeed, adStats.Rounds, fixedStats.Rounds)
			}
		}
		if got, _ := randTopologyRun(t, metaSeed, WindowFixed, 4); got != ref {
			t.Fatalf("seed %d: fixed(workers=4) diverged from fixed(workers=1)", metaSeed)
		}
	}
}

// TestAdaptiveFewerBarriers: the workload the adaptive protocol exists
// for — one busy domain grinding fine-grained local events, fed one-way
// by a mostly-asleep peer. The fixed protocol must re-barrier every
// min-latency step of the busy domain's progress; the adaptive one sees
// the sleeping sender cannot emit before its next wake + latency and
// grants the busy domain that whole stretch in one window. (The traffic
// must be one-way: a return port would let the busy domain's own next
// event bounce back as a potential instant reply, correctly shrinking
// reach to the cycle length.) Events must not change; only the round
// count may.
func TestAdaptiveFewerBarriers(t *testing.T) {
	run := func(mode WindowMode) (string, WindowStats) {
		e := New(5)
		e.SetWindowMode(mode)
		d1 := e.NewDomain("busy")
		req := NewPort[int](e, d1, "req", Millisecond)
		var log strings.Builder
		e.Go("client", func(p *Proc) {
			for i := 0; i < 5; i++ {
				p.Sleep(500 * Millisecond)
				req.Send(p, i)
			}
		})
		d1.Go("server", func(p *Proc) {
			for i := 0; i < 5; i++ {
				fmt.Fprintf(&log, "req %d@%s\n", req.Recv(p), p.Now())
			}
		})
		var work int
		d1.Go("grind", func(p *Proc) {
			for i := 0; i < 2600; i++ {
				p.Sleep(Millisecond)
				work++
			}
			fmt.Fprintf(&log, "grind done %d@%s\n", work, p.Now())
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return log.String(), e.WindowStats()
	}
	fixedLog, fixedStats := run(WindowFixed)
	adLog, adStats := run(WindowAdaptive)
	if adLog != fixedLog {
		t.Fatalf("logs diverged:\n-- fixed --\n%s\n-- adaptive --\n%s", fixedLog, adLog)
	}
	if adStats.FastForwards == 0 {
		t.Fatal("adaptive run recorded no idle fast-forwards")
	}
	// The grinder alone is ~2600 one-millisecond steps; fixed pays a
	// barrier per step, adaptive one per client wake plus slab refreshes.
	if adStats.Rounds*10 > fixedStats.Rounds {
		t.Fatalf("adaptive took %d rounds vs fixed %d — expected an order of magnitude fewer on an idle-sender workload",
			adStats.Rounds, fixedStats.Rounds)
	}
}

// TestRunForDeadline: RunFor's duration is a hard cap on event
// execution in a multi-domain engine — no event past the deadline runs,
// under either protocol, at any worker count. This is what makes the
// stop point a virtual-time fact rather than a window-placement fact.
func TestRunForDeadline(t *testing.T) {
	const deadline = 5 * Millisecond
	run := func(mode WindowMode, workers int) string {
		e := New(11)
		e.SetWindowMode(mode)
		e.SetWorkers(workers)
		d1 := e.NewDomain("ticker")
		NewPort[int](e, d1, "lookahead", 100*Microsecond)
		var log strings.Builder
		var last Time
		d1.Go("tick", func(p *Proc) {
			for i := 0; i < 1000; i++ {
				p.Sleep(100 * Microsecond)
				last = p.Now()
				fmt.Fprintf(&log, "tick %d@%s\n", i, p.Now())
			}
		})
		if err := e.RunFor(deadline); err != nil {
			t.Fatal(err)
		}
		if last > deadline {
			t.Fatalf("mode=%v workers=%d: event ran at %s, past the %s deadline", mode, workers, last, deadline)
		}
		return log.String()
	}
	ref := run(WindowFixed, 1)
	for _, mode := range []WindowMode{WindowFixed, WindowAdaptive} {
		for _, workers := range []int{1, 4} {
			if got := run(mode, workers); got != ref {
				t.Fatalf("mode=%v workers=%d: tick log diverged from fixed/serial:\n%s\nvs\n%s", mode, workers, got, ref)
			}
		}
	}
}

// fillPort stuffs n messages with the given delivery time straight into
// the sender buffer, standing in for Send on the barrier-path tests
// (which exercise flush/deliver, not the sender API).
func fillPort(pt *Port[int], n int, at Time) {
	for i := 0; i < n; i++ {
		pt.out = append(pt.out, portMsg[int]{at: at, v: i})
	}
}

// drainPort fires the port's armed delivery timer at its delivery time
// and empties the inbox, returning how many messages arrived.
func drainPort(pt *Port[int], at Time) int {
	d := pt.to
	if tm, ok := d.timers.pop(); ok {
		if tm.at > d.now {
			d.now = tm.at
		}
		tm.fire.fire(d, tm.armAt)
	}
	_ = at
	n := 0
	for {
		if _, ok := pt.TryRecv(); !ok {
			break
		}
		n++
	}
	return n
}

// TestBarrierPathAllocFree is the barrier-path twin of the sleep-path
// allocation gate: once the free lists are warm, a flush + deliver +
// drain cycle must not allocate — batches recycle, the inbox reuses its
// array, and the single armed timer reuses heap capacity.
func TestBarrierPathAllocFree(t *testing.T) {
	e := New(1)
	d1 := e.NewDomain("rx")
	pt := NewPort[int](e, d1, "p", Millisecond)
	var at Time
	cycle := func() {
		at += Millisecond
		fillPort(pt, 64, at)
		pt.flush()
		if n := drainPort(pt, at); n != 64 {
			t.Fatalf("delivered %d of 64", n)
		}
	}
	cycle() // warm the free lists and buffer capacities
	if avg := testing.AllocsPerRun(200, cycle); avg != 0 {
		t.Fatalf("barrier flush/deliver path allocates %.1f allocs/op, want 0", avg)
	}
}

// TestEOTScanAllocFree gates the other barrier cost: computing every
// domain's granted horizon must reuse the engine's scratch and never
// allocate, in either mode.
func TestEOTScanAllocFree(t *testing.T) {
	e := New(1)
	doms := []*Domain{e.Dom()}
	for i := 1; i < 8; i++ {
		doms = append(doms, e.NewDomain(fmt.Sprintf("d%d", i)))
	}
	for i := range doms {
		NewPort[int](doms[i], doms[(i+1)%len(doms)], fmt.Sprintf("ring%d", i), Time(i+1)*Millisecond)
		d := doms[i]
		d.seq++
		d.timers.push(timer{at: Time(i) * 100 * Microsecond, seq: d.seq, p: nil})
	}
	for _, mode := range []WindowMode{WindowAdaptive, WindowFixed} {
		e.windowMode = mode
		e.prepareWindows()
		if avg := testing.AllocsPerRun(200, func() {
			e.computeWindow()
		}); avg != 0 {
			t.Fatalf("mode=%v: EOT scan allocates %.1f allocs/op, want 0", mode, avg)
		}
	}
}

// TestWindowStatsDeterminism: barrier counters are part of the
// deterministic surface — they must match across worker counts (they
// feed the metrics registry, which the CI determinism gate diffs).
func TestWindowStatsDeterminism(t *testing.T) {
	_, ref := randTopologyRun(t, 77, WindowAdaptive, 1)
	_, got := randTopologyRun(t, 77, WindowAdaptive, 8)
	if ref != got {
		t.Fatalf("window stats diverged across workers: %+v vs %+v", ref, got)
	}
	if ref.Rounds == 0 {
		t.Fatal("expected at least one barrier round")
	}
}
