package sim

import "fmt"

// WaitQueue is a FIFO list of processes blocked on a condition. It is the
// building block for the other primitives. The usual pattern is:
//
//	for !condition {
//		q.Wait(p, "waiting for condition")
//	}
//
// Wakers call WakeOne or WakeAll after establishing the condition; woken
// processes re-check it, so spurious wakeups are harmless.
type WaitQueue struct {
	waiters procRing
}

// NewWaitQueue returns an empty queue. The host argument is kept for
// symmetry with the other constructors; a queue wakes each process onto
// that process's own domain, so it carries no engine reference itself.
func NewWaitQueue(h Host) *WaitQueue { return &WaitQueue{} }

// Wait blocks the calling process until it is woken. The reason string is
// surfaced by Engine.DumpWaiters for debugging stalled simulations; pass
// a static (preformatted) string — it is recorded on every park.
func (q *WaitQueue) Wait(p *Proc, reason string) {
	q.waiters.push(runnable{p: p})
	p.park(reason)
}

// Subscribe enqueues a callback as a waiter: the next WakeOne that
// reaches it schedules the callback's handler through the run queue —
// the same FIFO slot a parked proc would resume in, so mixing callback
// and goroutine waiters on one queue stays deterministic. A callback
// waits at most once per Subscribe (one-shot, like one Wait); the
// handler re-subscribes if it wants to keep listening. The reason
// string follows the Wait contract (static, surfaced by DumpWaiters,
// and the name of the blocked-interval trace slice emitted on wake).
func (q *WaitQueue) Subscribe(cb *Callback, reason string) {
	if cb.queued {
		panic("sim: WaitQueue.Subscribe on a queued callback")
	}
	cb.waitReason = reason
	cb.waitStart = cb.dom.now
	q.waiters.push(runnable{cb: cb})
}

// WakeOne makes the longest-waiting process runnable. It reports whether a
// process was woken.
func (q *WaitQueue) WakeOne() bool {
	for {
		r, ok := q.waiters.pop()
		if !ok {
			return false
		}
		if r.cb != nil {
			if r.cb.stopped {
				continue
			}
			r.cb.schedule()
			return true
		}
		if !r.p.done {
			r.p.dom.ready(r.p)
			return true
		}
	}
}

// WakeAll makes every waiting process runnable.
func (q *WaitQueue) WakeAll() {
	for q.WakeOne() {
	}
}

// Len returns the number of blocked processes.
func (q *WaitQueue) Len() int { return q.waiters.len() }

// Future is a one-shot completion carrying a value and an error. A process
// blocks on Wait until another process calls Complete. Completing twice
// panics; waiting after completion returns immediately.
type Future[T any] struct {
	done bool
	val  T
	err  error
	q    WaitQueue
	// subs holds OnDone completion callbacks; Complete schedules them
	// after waking blocked processes and recycles the backing array, so
	// a pooled future pays no allocation per round trip.
	subs []*Callback
}

// NewFuture returns an incomplete future bound to h's domain.
func NewFuture[T any](h Host) *Future[T] {
	return &Future[T]{}
}

// Complete resolves the future, wakes all waiters, then schedules every
// OnDone callback (in registration order, after the waiters' run-queue
// slots — the order a re-woken proc and a callback would interleave in
// anyway).
func (f *Future[T]) Complete(v T, err error) {
	if f.done {
		panic("sim: Future completed twice")
	}
	f.done = true
	f.val = v
	f.err = err
	f.q.WakeAll()
	if len(f.subs) > 0 {
		for i, cb := range f.subs {
			cb.schedule()
			f.subs[i] = nil
		}
		f.subs = f.subs[:0]
	}
}

// OnDone registers a completion callback: when the future completes,
// cb's handler is scheduled through the run queue with no parked waiter
// goroutine. On an already-completed future the handler is scheduled
// immediately. The registration is one-shot; the handler reads the
// result via Value.
func (f *Future[T]) OnDone(cb *Callback) {
	if f.done {
		cb.schedule()
		return
	}
	f.subs = append(f.subs, cb)
}

// Done reports whether the future has been completed.
func (f *Future[T]) Done() bool { return f.done }

// Value returns the completed future's value and error; it panics on an
// incomplete future (use Wait to block, or OnDone to be notified).
func (f *Future[T]) Value() (T, error) {
	if !f.done {
		panic("sim: Future.Value before completion")
	}
	return f.val, f.err
}

// Reset returns a completed future to the incomplete state so the holder
// can reuse it for another round trip instead of allocating a new one.
// Resetting while processes still wait on the future would strand them,
// so that is a panic.
func (f *Future[T]) Reset() {
	if f.q.Len() != 0 {
		panic("sim: Future reset with processes waiting")
	}
	var zero T
	f.done = false
	f.val = zero
	f.err = nil
	f.subs = f.subs[:0]
}

// Wait blocks until the future completes and returns its value and error.
func (f *Future[T]) Wait(p *Proc) (T, error) {
	for !f.done {
		f.q.Wait(p, "future")
	}
	return f.val, f.err
}

// Chan is a simulated channel: a FIFO of T with an optional capacity bound.
// Unlike native Go channels it participates in virtual time — senders and
// receivers block as sim processes. A capacity <= 0 means unbounded.
type Chan[T any] struct {
	buf    []T
	cap    int
	closed bool
	sendQ  WaitQueue
	recvQ  WaitQueue
	name   string
	// Wait reasons are preformatted here so blocking Send/Recv do not
	// build a string per park (see Proc.park).
	sendReason string
	recvReason string
}

// NewChan returns a channel with the given capacity (<= 0 for unbounded).
// Like every sync primitive here, a Chan is domain-local state: sharing
// one across domains is a data race — cross-domain traffic uses Ports.
func NewChan[T any](h Host, capacity int, name string) *Chan[T] {
	return &Chan[T]{
		cap: capacity, name: name,
		sendReason: "send " + name, recvReason: "recv " + name,
	}
}

// Send enqueues v, blocking while the channel is full. Sending on a closed
// channel panics, mirroring native channel semantics.
func (c *Chan[T]) Send(p *Proc, v T) {
	for c.cap > 0 && len(c.buf) >= c.cap && !c.closed {
		c.sendQ.Wait(p, c.sendReason)
	}
	if c.closed {
		panic(fmt.Sprintf("sim: send on closed channel %s", c.name))
	}
	c.buf = append(c.buf, v)
	c.recvQ.WakeOne()
}

// TrySend enqueues v without blocking; it reports whether the value was
// accepted (false if the channel is full or closed).
func (c *Chan[T]) TrySend(v T) bool {
	if c.closed || (c.cap > 0 && len(c.buf) >= c.cap) {
		return false
	}
	c.buf = append(c.buf, v)
	c.recvQ.WakeOne()
	return true
}

// Recv dequeues a value, blocking while the channel is empty. The second
// result is false when the channel is closed and drained.
func (c *Chan[T]) Recv(p *Proc) (T, bool) {
	for len(c.buf) == 0 && !c.closed {
		c.recvQ.Wait(p, c.recvReason)
	}
	if len(c.buf) == 0 {
		var zero T
		return zero, false
	}
	v := c.buf[0]
	c.buf = c.buf[1:]
	c.sendQ.WakeOne()
	return v, true
}

// TryRecv dequeues without blocking; ok is false if nothing was available.
func (c *Chan[T]) TryRecv() (v T, ok bool) {
	if len(c.buf) == 0 {
		return v, false
	}
	v = c.buf[0]
	c.buf = c.buf[1:]
	c.sendQ.WakeOne()
	return v, true
}

// Close marks the channel closed and wakes all blocked processes.
func (c *Chan[T]) Close() {
	if c.closed {
		return
	}
	c.closed = true
	c.sendQ.WakeAll()
	c.recvQ.WakeAll()
}

// Closed reports whether Close has been called.
func (c *Chan[T]) Closed() bool { return c.closed }

// Len returns the number of buffered values.
func (c *Chan[T]) Len() int { return len(c.buf) }

// Semaphore is a counting semaphore over virtual time.
type Semaphore struct {
	avail int
	q     WaitQueue
}

// NewSemaphore returns a semaphore with n initial permits.
func NewSemaphore(h Host, n int) *Semaphore {
	return &Semaphore{avail: n}
}

// Acquire takes a permit, blocking until one is available.
func (s *Semaphore) Acquire(p *Proc) {
	for s.avail <= 0 {
		s.q.Wait(p, "semaphore")
	}
	s.avail--
}

// Release returns a permit and wakes one waiter.
func (s *Semaphore) Release() {
	s.avail++
	s.q.WakeOne()
}

// WaitGroup tracks completion of a set of processes over virtual time.
type WaitGroup struct {
	n int
	q WaitQueue
}

// NewWaitGroup returns a wait group bound to h's domain.
func NewWaitGroup(h Host) *WaitGroup { return &WaitGroup{} }

// Add increments the counter by delta.
func (w *WaitGroup) Add(delta int) {
	w.n += delta
	if w.n < 0 {
		panic("sim: negative WaitGroup counter")
	}
	if w.n == 0 {
		w.q.WakeAll()
	}
}

// Done decrements the counter by one.
func (w *WaitGroup) Done() { w.Add(-1) }

// Wait blocks until the counter reaches zero.
func (w *WaitGroup) Wait(p *Proc) {
	for w.n > 0 {
		w.q.Wait(p, "waitgroup")
	}
}
