package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime/debug"
	"strings"
)

// Engine is a discrete-event scheduler. Processes (Proc) are goroutines
// that cooperate with the engine: exactly one process runs at a time, and
// the virtual clock advances only when every process is blocked.
//
// Engines are not safe for concurrent use from outside the simulation; the
// only goroutines that may touch an Engine are the one that calls Run and
// the processes the engine itself resumes (which never run concurrently).
type Engine struct {
	now      Time
	seq      uint64 // tiebreaker for deterministic ordering
	timers   timerHeap
	runq     procRing
	yield    chan struct{}
	cur      *Proc
	procs    []*Proc // all procs ever created, in creation order
	liveN    int
	running  bool
	stopping bool
	failure  error
	seed     int64
	nextPID  int
	tracer   Tracer // nil unless observability is on (see trace.go)
}

// ErrStopped is returned by Wait-style primitives when they are interrupted
// by engine shutdown. Domain code normally never sees it: shutdown unwinds
// processes with a private panic value instead.
var ErrStopped = errors.New("sim: engine stopped")

// New creates an engine whose randomness derives from seed. Two engines
// built with the same seed and driven by the same code produce identical
// event sequences.
func New(seed int64) *Engine {
	return &Engine{
		yield: make(chan struct{}),
		seed:  seed,
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Seed returns the seed the engine was created with.
func (e *Engine) Seed() int64 { return e.seed }

// DeriveRand returns a deterministic random source for the named component.
// The stream depends only on the engine seed and the name, so adding a new
// component does not perturb the randomness seen by existing ones.
func (e *Engine) DeriveRand(name string) *rand.Rand {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	h ^= uint64(e.seed)
	h *= 1099511628211
	return rand.New(rand.NewSource(int64(h)))
}

// procKilled is the panic value used to unwind processes at shutdown.
type procKilled struct{}

// Proc is a simulated process. Every Proc method must be called from the
// process's own goroutine while it is the running process.
type Proc struct {
	eng     *Engine
	name    string
	pid     int
	wake    chan struct{}
	done    bool
	started bool
	// Wait state is kept cheap to record: reasons are static strings and
	// sleeps store only the wake time; DumpWaiters formats on demand, so
	// the hot park/Sleep paths never build strings.
	waitReason string
	sleeping   bool
	sleepUntil Time
	rng        *rand.Rand // memoized by Rand
	tid        int32      // trace track id, assigned lazily (see trace.go)
}

// Engine returns the engine this process belongs to.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.eng.now }

// Name returns the process name given to Go.
func (p *Proc) Name() string { return p.name }

// Rand returns a deterministic random source scoped to this process. The
// source is created on first use and reused, so repeated calls continue
// one stream.
func (p *Proc) Rand() *rand.Rand {
	if p.rng == nil {
		p.rng = p.eng.DeriveRand(fmt.Sprintf("proc:%s#%d", p.name, p.pid))
	}
	return p.rng
}

// Go creates a process that will run fn. It may be called before Run to
// seed the simulation, or by a running process to spawn concurrent work.
// The new process starts after the caller next blocks.
func (e *Engine) Go(name string, fn func(*Proc)) *Proc {
	p := &Proc{
		eng:  e,
		name: name,
		pid:  e.nextPID,
		wake: make(chan struct{}, 1),
	}
	e.nextPID++
	e.procs = append(e.procs, p)
	if e.stopping {
		p.done = true
		return p
	}
	e.liveN++
	go func() {
		<-p.wake
		p.started = true
		// The completion handshake runs in a defer so it fires even when
		// the body exits via runtime.Goexit (e.g. t.Fatal inside a test
		// process) — otherwise the scheduler would block forever.
		defer func() {
			p.done = true
			e.liveN--
			e.yield <- struct{}{}
		}()
		if !e.stopping {
			runProc(p, fn)
		}
	}()
	e.ready(p)
	return p
}

func runProc(p *Proc, fn func(*Proc)) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(procKilled); ok {
				return
			}
			e := p.eng
			if e.failure == nil {
				e.failure = fmt.Errorf("sim: proc %q panicked: %v\n%s", p.name, r, debug.Stack())
			}
			e.stopping = true
		}
	}()
	fn(p)
}

// ready marks p runnable at the current time.
func (e *Engine) ready(p *Proc) {
	if p.done {
		return
	}
	e.runq.push(p)
}

// park blocks the calling process until it is made runnable again. The
// reason must be a preformatted (ideally static) string: it is recorded
// unconditionally, so building it must not allocate on the hot path.
func (p *Proc) park(reason string) {
	e := p.eng
	p.waitReason = reason
	var parkAt Time
	if e.tracer != nil {
		parkAt = e.now
	}
	e.yield <- struct{}{}
	<-p.wake
	if t := e.tracer; t != nil {
		// The parked interval, named by its wait reason, becomes one
		// virtual-time slice on the process's track. Reasons are static
		// strings (see above), so recording never formats.
		name := reason
		if name == "" {
			name = "sleep"
		}
		t.Slice(p.traceTID(t), "sim", name, parkAt, e.now)
	}
	p.waitReason = ""
	p.sleeping = false
	if e.stopping {
		panic(procKilled{})
	}
}

// Sleep suspends the process for d of virtual time. Non-positive durations
// yield the processor and resume at the current time after other runnable
// processes have had a turn.
func (p *Proc) Sleep(d Time) {
	e := p.eng
	if d <= 0 {
		e.ready(p)
		p.park("yield")
		return
	}
	e.seq++
	e.timers.push(timer{at: e.now + d, seq: e.seq, p: p})
	p.sleeping = true
	p.sleepUntil = e.now + d
	p.park("")
}

// Yield gives other runnable processes a turn without advancing time.
func (p *Proc) Yield() { p.Sleep(0) }

// Stop requests that the simulation end. It may be called from inside a
// process or (before Run returns) from the driving goroutine between runs.
// All processes are unwound; Run then returns.
func (e *Engine) Stop() { e.stopping = true }

// Stopping reports whether shutdown has been requested.
func (e *Engine) Stopping() bool { return e.stopping }

// Run executes the simulation until it quiesces (no runnable process and
// no pending timer), or until Stop is called. It returns the first process
// panic converted to an error, if any occurred.
func (e *Engine) Run() error {
	if e.running {
		return errors.New("sim: Run called reentrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	for !e.stopping {
		p, ok := e.runq.pop()
		if !ok {
			tm, ok := e.timers.pop()
			if !ok {
				break // quiescent: every live proc is waiting on a condition
			}
			if tm.at > e.now {
				e.now = tm.at
			}
			e.ready(tm.p)
			continue
		}
		e.resume(p)
	}
	e.shutdown()
	return e.failure
}

// RunFor runs the simulation for at most d of virtual time.
func (e *Engine) RunFor(d Time) error {
	e.Go("sim.stop-timer", func(p *Proc) {
		p.Sleep(d)
		e.Stop()
	})
	return e.Run()
}

func (e *Engine) resume(p *Proc) {
	if p.done {
		return
	}
	e.cur = p
	p.wake <- struct{}{}
	<-e.yield
	e.cur = nil
}

// shutdown unwinds every live process so no goroutines leak.
func (e *Engine) shutdown() {
	e.stopping = true
	e.runq = procRing{}
	e.timers = timerHeap{}
	for {
		resumed := false
		for _, p := range e.procs {
			if !p.done {
				e.resume(p)
				resumed = true
			}
		}
		if !resumed {
			break
		}
	}
}

// DumpWaiters returns a human-readable description of blocked processes,
// useful when a simulation quiesces unexpectedly.
func (e *Engine) DumpWaiters() string {
	var b strings.Builder
	for _, p := range e.procs {
		switch {
		case p.done:
		case p.sleeping:
			fmt.Fprintf(&b, "proc %q: sleep until %s\n", p.name, p.sleepUntil)
		case p.waitReason != "":
			fmt.Fprintf(&b, "proc %q: %s\n", p.name, p.waitReason)
		}
	}
	return b.String()
}

type timer struct {
	at  Time
	seq uint64
	p   *Proc
}

func (t timer) before(u timer) bool {
	if t.at != u.at {
		return t.at < u.at
	}
	return t.seq < u.seq
}

// timerHeap is a 4-ary min-heap of timer values ordered by (at, seq).
// Storing values directly (instead of container/heap's boxed interface)
// keeps Sleep allocation-free, and the wider fan-out halves the tree
// depth paid by sift-down on the pop-heavy event loop.
type timerHeap struct {
	a []timer
}

func (h *timerHeap) Len() int { return len(h.a) }

func (h *timerHeap) push(t timer) {
	h.a = append(h.a, t)
	i := len(h.a) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !h.a[i].before(h.a[parent]) {
			break
		}
		h.a[i], h.a[parent] = h.a[parent], h.a[i]
		i = parent
	}
}

func (h *timerHeap) pop() (timer, bool) {
	n := len(h.a)
	if n == 0 {
		return timer{}, false
	}
	top := h.a[0]
	last := h.a[n-1]
	h.a[n-1] = timer{} // drop the Proc reference
	h.a = h.a[:n-1]
	n--
	if n > 0 {
		// Sift last down from the root, moving smaller children up into
		// the hole until last fits.
		i := 0
		for {
			min := -1
			first := 4*i + 1
			end := first + 4
			if end > n {
				end = n
			}
			for c := first; c < end; c++ {
				if min < 0 || h.a[c].before(h.a[min]) {
					min = c
				}
			}
			if min < 0 || !h.a[min].before(last) {
				break
			}
			h.a[i] = h.a[min]
			i = min
		}
		h.a[i] = last
	}
	return top, true
}

// procRing is a FIFO run queue backed by a power-of-two ring buffer, so
// the scheduler's pop-front is O(1) without the slice-shift reallocation
// churn of runq = runq[1:] + append.
type procRing struct {
	buf  []*Proc
	head int
	n    int
}

func (r *procRing) len() int { return r.n }

func (r *procRing) push(p *Proc) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = p
	r.n++
}

func (r *procRing) pop() (*Proc, bool) {
	if r.n == 0 {
		return nil, false
	}
	p := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return p, true
}

func (r *procRing) grow() {
	size := len(r.buf) * 2
	if size == 0 {
		size = 16
	}
	buf := make([]*Proc, size)
	for i := 0; i < r.n; i++ {
		buf[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf = buf
	r.head = 0
}
