package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"
	"runtime/debug"
	"strings"
)

// Engine is a discrete-event scheduler. Processes (Proc) are goroutines
// that cooperate with the engine: exactly one process runs at a time, and
// the virtual clock advances only when every process is blocked.
//
// Engines are not safe for concurrent use from outside the simulation; the
// only goroutines that may touch an Engine are the one that calls Run and
// the processes the engine itself resumes (which never run concurrently).
type Engine struct {
	now      Time
	seq      uint64 // tiebreaker for deterministic ordering
	timers   timerHeap
	runq     []*Proc
	yield    chan struct{}
	cur      *Proc
	procs    []*Proc // all procs ever created, in creation order
	liveN    int
	running  bool
	stopping bool
	failure  error
	seed     int64
	nextPID  int
}

// ErrStopped is returned by Wait-style primitives when they are interrupted
// by engine shutdown. Domain code normally never sees it: shutdown unwinds
// processes with a private panic value instead.
var ErrStopped = errors.New("sim: engine stopped")

// New creates an engine whose randomness derives from seed. Two engines
// built with the same seed and driven by the same code produce identical
// event sequences.
func New(seed int64) *Engine {
	return &Engine{
		yield: make(chan struct{}),
		seed:  seed,
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Seed returns the seed the engine was created with.
func (e *Engine) Seed() int64 { return e.seed }

// DeriveRand returns a deterministic random source for the named component.
// The stream depends only on the engine seed and the name, so adding a new
// component does not perturb the randomness seen by existing ones.
func (e *Engine) DeriveRand(name string) *rand.Rand {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	h ^= uint64(e.seed)
	h *= 1099511628211
	return rand.New(rand.NewSource(int64(h)))
}

// procKilled is the panic value used to unwind processes at shutdown.
type procKilled struct{}

// Proc is a simulated process. Every Proc method must be called from the
// process's own goroutine while it is the running process.
type Proc struct {
	eng        *Engine
	name       string
	pid        int
	wake       chan struct{}
	done       bool
	started    bool
	waitReason string
}

// Engine returns the engine this process belongs to.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.eng.now }

// Name returns the process name given to Go.
func (p *Proc) Name() string { return p.name }

// Rand returns a deterministic random source scoped to this process.
func (p *Proc) Rand() *rand.Rand {
	return p.eng.DeriveRand(fmt.Sprintf("proc:%s#%d", p.name, p.pid))
}

// Go creates a process that will run fn. It may be called before Run to
// seed the simulation, or by a running process to spawn concurrent work.
// The new process starts after the caller next blocks.
func (e *Engine) Go(name string, fn func(*Proc)) *Proc {
	p := &Proc{
		eng:  e,
		name: name,
		pid:  e.nextPID,
		wake: make(chan struct{}, 1),
	}
	e.nextPID++
	e.procs = append(e.procs, p)
	if e.stopping {
		p.done = true
		return p
	}
	e.liveN++
	go func() {
		<-p.wake
		p.started = true
		// The completion handshake runs in a defer so it fires even when
		// the body exits via runtime.Goexit (e.g. t.Fatal inside a test
		// process) — otherwise the scheduler would block forever.
		defer func() {
			p.done = true
			e.liveN--
			e.yield <- struct{}{}
		}()
		if !e.stopping {
			runProc(p, fn)
		}
	}()
	e.ready(p)
	return p
}

func runProc(p *Proc, fn func(*Proc)) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(procKilled); ok {
				return
			}
			e := p.eng
			if e.failure == nil {
				e.failure = fmt.Errorf("sim: proc %q panicked: %v\n%s", p.name, r, debug.Stack())
			}
			e.stopping = true
		}
	}()
	fn(p)
}

// ready marks p runnable at the current time.
func (e *Engine) ready(p *Proc) {
	if p.done {
		return
	}
	e.runq = append(e.runq, p)
}

// park blocks the calling process until it is made runnable again.
func (p *Proc) park(reason string) {
	e := p.eng
	p.waitReason = reason
	e.yield <- struct{}{}
	<-p.wake
	p.waitReason = ""
	if e.stopping {
		panic(procKilled{})
	}
}

// Sleep suspends the process for d of virtual time. Non-positive durations
// yield the processor and resume at the current time after other runnable
// processes have had a turn.
func (p *Proc) Sleep(d Time) {
	e := p.eng
	if d <= 0 {
		e.ready(p)
		p.park("yield")
		return
	}
	e.seq++
	heap.Push(&e.timers, timer{at: e.now + d, seq: e.seq, p: p})
	p.park(fmt.Sprintf("sleep until %s", (e.now + d).String()))
}

// Yield gives other runnable processes a turn without advancing time.
func (p *Proc) Yield() { p.Sleep(0) }

// Stop requests that the simulation end. It may be called from inside a
// process or (before Run returns) from the driving goroutine between runs.
// All processes are unwound; Run then returns.
func (e *Engine) Stop() { e.stopping = true }

// Stopping reports whether shutdown has been requested.
func (e *Engine) Stopping() bool { return e.stopping }

// Run executes the simulation until it quiesces (no runnable process and
// no pending timer), or until Stop is called. It returns the first process
// panic converted to an error, if any occurred.
func (e *Engine) Run() error {
	if e.running {
		return errors.New("sim: Run called reentrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	for !e.stopping {
		if len(e.runq) == 0 {
			if e.timers.Len() == 0 {
				break // quiescent: every live proc is waiting on a condition
			}
			tm := heap.Pop(&e.timers).(timer)
			if tm.at > e.now {
				e.now = tm.at
			}
			e.ready(tm.p)
			continue
		}
		p := e.runq[0]
		e.runq = e.runq[1:]
		e.resume(p)
	}
	e.shutdown()
	return e.failure
}

// RunFor runs the simulation for at most d of virtual time.
func (e *Engine) RunFor(d Time) error {
	e.Go("sim.stop-timer", func(p *Proc) {
		p.Sleep(d)
		e.Stop()
	})
	return e.Run()
}

func (e *Engine) resume(p *Proc) {
	if p.done {
		return
	}
	e.cur = p
	p.wake <- struct{}{}
	<-e.yield
	e.cur = nil
}

// shutdown unwinds every live process so no goroutines leak.
func (e *Engine) shutdown() {
	e.stopping = true
	e.runq = nil
	e.timers = nil
	for {
		resumed := false
		for _, p := range e.procs {
			if !p.done {
				e.resume(p)
				resumed = true
			}
		}
		if !resumed {
			break
		}
	}
}

// DumpWaiters returns a human-readable description of blocked processes,
// useful when a simulation quiesces unexpectedly.
func (e *Engine) DumpWaiters() string {
	var b strings.Builder
	for _, p := range e.procs {
		if !p.done && p.waitReason != "" {
			fmt.Fprintf(&b, "proc %q: %s\n", p.name, p.waitReason)
		}
	}
	return b.String()
}

type timer struct {
	at  Time
	seq uint64
	p   *Proc
}

type timerHeap []timer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *timerHeap) Push(x any)   { *h = append(*h, x.(timer)) }
func (h *timerHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }
func (h timerHeap) peek() (timer, bool) {
	if len(h) == 0 {
		return timer{}, false
	}
	return h[0], true
}
