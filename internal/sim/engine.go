package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"
)

// Engine is a discrete-event scheduler. Processes (Proc) are goroutines
// that cooperate with the engine. Every process belongs to exactly one
// event Domain; within a domain exactly one process runs at a time and
// the domain's virtual clock advances only when every local process is
// blocked, so code confined to one domain needs no locking.
//
// An engine with a single domain (the default) behaves exactly like the
// classic global scheduler: one process in the whole simulation runs at
// a time. With multiple domains, Run executes domains concurrently on
// up to SetWorkers goroutines under a conservative time-window barrier
// (see runWindows); domains may interact only through Ports, and
// same-seed runs produce identical results at any worker count.
//
// Engines are not safe for concurrent use from outside the simulation:
// the only goroutines that may touch engine state are the one that
// calls Run, the engine's window workers, and the processes the engine
// itself resumes.
type Engine struct {
	seed    int64
	running bool
	// stopping is the latched shutdown flag every process observes. In a
	// single-domain engine Stop sets it immediately (the classic
	// semantics); in a multi-domain engine it is only written at window
	// barriers, while every domain worker is parked, so mid-window reads
	// are race-free and — crucially — identical at any worker count.
	stopping bool
	// stopReq records that Stop was called; the barrier latches it into
	// stopping. It is atomic because any domain's process may call Stop.
	stopReq atomic.Bool
	failure error
	workers int

	domains []*Domain
	d0      *Domain // the default domain

	ports []portFlusher
	// portFrom/portTo/portLat mirror ports as flat arrays (domain ids
	// and latencies) so the barrier's EOT scan walks dense memory
	// without touching the generic port values.
	portFrom []int32
	portTo   []int32
	portLat  []Time
	minLat   Time // smallest port latency: the conservative lookahead bound

	// Window-protocol state (see window.go). deadline is the RunFor
	// cutoff: events strictly after it never execute, which makes the
	// stop point independent of the window protocol. The scratch slices
	// are reused every barrier so the EOT scan never allocates.
	windowMode     WindowMode
	deadline       Time
	winStats       WindowStats
	nextScratch    []Time
	horizonScratch []Time
}

// maxTime is the "no event" sentinel for horizon arithmetic.
const maxTime = Time(1<<63 - 1)

// ErrStopped is returned by Wait-style primitives when they are interrupted
// by engine shutdown. Domain code normally never sees it: shutdown unwinds
// processes with a private panic value instead.
var ErrStopped = errors.New("sim: engine stopped")

// Host is a place processes can be created: either the Engine itself
// (its default domain) or a specific Domain. Components take a Host so
// the machine wiring can assign each of them to an event domain without
// the component knowing about partitioning.
type Host interface {
	// Now returns the host domain's current virtual time.
	Now() Time
	// Go creates a process in the host domain.
	Go(name string, fn func(*Proc)) *Proc
	// DeriveRand returns a deterministic random source for the named
	// component, independent for distinct names (and distinct domains).
	DeriveRand(name string) *rand.Rand
	// Engine returns the underlying engine.
	Engine() *Engine
	// Dom returns the concrete domain.
	Dom() *Domain
}

// New creates an engine whose randomness derives from seed. Two engines
// built with the same seed and driven by the same code produce identical
// event sequences.
func New(seed int64) *Engine {
	e := &Engine{seed: seed, workers: 1, deadline: maxTime}
	e.d0 = &Domain{id: 0, name: "main", eng: e, yield: make(chan struct{})}
	e.domains = []*Domain{e.d0}
	return e
}

// Now returns the default domain's current virtual time. During a
// multi-domain run, domain clocks advance independently within a
// lookahead window; process code should use Proc.Now (its own domain's
// clock).
func (e *Engine) Now() Time { return e.d0.now }

// Seed returns the seed the engine was created with.
func (e *Engine) Seed() int64 { return e.seed }

// Engine implements Host.
func (e *Engine) Engine() *Engine { return e }

// Dom returns the default domain.
func (e *Engine) Dom() *Domain { return e.d0 }

// Domains returns all domains in creation order (the default domain is
// always first).
func (e *Engine) Domains() []*Domain { return e.domains }

// SetWorkers sets how many OS goroutines Run may use to execute domains
// concurrently (the -dj knob). Values below 1 mean 1. The worker count
// never affects simulation results, only wall-clock time.
func (e *Engine) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	e.workers = n
}

// Workers returns the configured worker count.
func (e *Engine) Workers() int { return e.workers }

// NewDomain creates a new event domain. Domains must be created before
// Run. Components hosted on distinct domains may interact only through
// Ports; sharing mutable state across domains is a data race.
func (e *Engine) NewDomain(name string) *Domain {
	if e.running {
		panic("sim: NewDomain during Run")
	}
	d := &Domain{id: len(e.domains), name: name, eng: e, yield: make(chan struct{})}
	e.domains = append(e.domains, d)
	return d
}

// DeriveRand returns a deterministic random source for the named component.
// The stream depends only on the engine seed and the name, so adding a new
// component does not perturb the randomness seen by existing ones.
func (e *Engine) DeriveRand(name string) *rand.Rand {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	h ^= uint64(e.seed)
	h *= 1099511628211
	return rand.New(rand.NewSource(int64(h)))
}

// Go creates a process in the default domain. It may be called before Run
// to seed the simulation, or by a running process to spawn concurrent
// work. The new process starts after the caller next blocks.
func (e *Engine) Go(name string, fn func(*Proc)) *Proc { return e.d0.Go(name, fn) }

// Stop requests that the simulation end. It may be called from inside a
// process or (before Run returns) from the driving goroutine between runs.
// In a multi-domain run the request takes effect at the next window
// barrier — at most one lookahead window after the call — so the exact
// stop point is identical at any worker count.
func (e *Engine) Stop() {
	e.stopReq.Store(true)
	if !e.running || len(e.domains) == 1 {
		e.stopping = true
	}
}

// Stopping reports whether shutdown has been latched. Multi-domain runs
// latch Stop requests at window barriers, so polling loops observe the
// transition at a deterministic virtual time regardless of workers.
func (e *Engine) Stopping() bool { return e.stopping }

// Run executes the simulation until it quiesces (no runnable process, no
// pending timer, and no undelivered port message), or until Stop is
// called. It returns the first process panic converted to an error, if
// any occurred.
func (e *Engine) Run() error {
	if e.running {
		return errors.New("sim: Run called reentrantly")
	}
	e.running = true
	defer func() { e.running = false; e.deadline = maxTime }()
	if len(e.domains) == 1 {
		e.runSingle()
	} else {
		e.runWindows()
	}
	e.shutdown()
	return e.failure
}

// runSingle is the classic serial event loop over the default domain,
// preserved verbatim for single-domain engines: it is the hot path of
// every grid cell and must stay allocation-free per event.
func (e *Engine) runSingle() {
	d := e.d0
	for !e.stopping {
		r, ok := d.runq.pop()
		if !ok {
			tm, ok := d.timers.pop()
			if !ok {
				break // quiescent: every live proc is waiting on a condition
			}
			if tm.at > d.now {
				d.now = tm.at
			}
			if tm.fire != nil {
				tm.fire.fire(d, tm.armAt)
				continue
			}
			d.ready(tm.p)
			continue
		}
		if r.cb != nil {
			d.invoke(r.cb)
			continue
		}
		d.resume(r.p)
	}
}

// runDomains executes each active domain's window (every domain runs
// its events strictly below its own granted d.horizon — see window.go),
// fanning out across the worker budget. Domains are independent within
// a window, so the assignment of domains to workers cannot affect
// results.
func (e *Engine) runDomains(active []*Domain) {
	n := len(active)
	if n == 0 {
		return
	}
	workers := e.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for _, d := range active {
			d.runWindow(d.horizon)
		}
		return
	}
	var next atomic.Int32
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				d := active[i]
				func() {
					defer func() {
						if r := recover(); r != nil && d.failure == nil {
							d.failure = fmt.Errorf("sim: domain %q scheduler panicked: %v\n%s",
								d.name, r, debug.Stack())
						}
					}()
					d.runWindow(d.horizon)
				}()
			}
		}()
	}
	wg.Wait()
}

// RunFor runs the simulation for at most d of virtual time.
//
// A single-domain engine uses the classic stop-timer process: the run
// halts at the first event at or after the deadline. A multi-domain
// engine instead enforces the deadline at the barrier: every event at
// or before the deadline executes and no later event does, so the stop
// point is a virtual-time fact independent of the window protocol, the
// window mode, and the worker count. (A stop-timer process cannot give
// that guarantee there — its Stop latches at a barrier, and how far the
// *other* domains have advanced by then depends on where the protocol
// placed their horizons.) All clocks read the deadline afterwards.
func (e *Engine) RunFor(d Time) error {
	if len(e.domains) > 1 {
		if d < maxTime-e.d0.now {
			e.deadline = e.d0.now + d
		}
		return e.Run()
	}
	if d <= 0 {
		// A non-positive budget means "stop after the initial yield round";
		// only the goroutine form can express Sleep(0)'s double runq pass.
		e.Go("sim.stop-timer", func(p *Proc) {
			p.Sleep(d)
			e.Stop()
		})
		return e.Run()
	}
	// The stop timer needs no call stack, so it runs as a callback. The
	// deferred arm draws its seq exactly where the spawned proc's Sleep
	// used to, keeping existing simulations byte-identical.
	cb := NewCallback(e, "sim.stop-timer", func(Time) Time {
		e.Stop()
		return 0
	})
	cb.ArmDeferred(d)
	return e.Run()
}

// shutdown unwinds every live process so no goroutines leak.
func (e *Engine) shutdown() {
	e.stopping = true
	for _, d := range e.domains {
		d.runq = procRing{}
		d.timers = timerHeap{}
	}
	for {
		resumed := false
		for _, d := range e.domains {
			for _, p := range d.procs {
				if !p.done {
					d.resume(p)
					resumed = true
				}
			}
		}
		if !resumed {
			break
		}
	}
}

// noteFailure records a process panic. The per-domain slot keeps window
// execution deterministic (each domain aborts on its own first failure);
// the single-domain path also stops the engine immediately, preserving
// the classic semantics.
func (e *Engine) noteFailure(d *Domain, err error) {
	if d.failure == nil {
		d.failure = err
	}
	if len(e.domains) == 1 {
		if e.failure == nil {
			e.failure = err
		}
		e.stopping = true
	}
}

// DumpWaiters returns a human-readable description of blocked processes,
// useful when a simulation quiesces unexpectedly.
func (e *Engine) DumpWaiters() string {
	var b strings.Builder
	for _, d := range e.domains {
		for _, p := range d.procs {
			switch {
			case p.done:
			case p.sleeping:
				fmt.Fprintf(&b, "proc %q: sleep until %s\n", p.name, p.sleepUntil)
			case p.waitReason != "":
				fmt.Fprintf(&b, "proc %q: %s\n", p.name, p.waitReason)
			}
		}
		for _, cb := range d.cbs {
			switch {
			case cb.stopped:
			case cb.waitReason != "":
				fmt.Fprintf(&b, "callback %q: %s\n", cb.name, cb.waitReason)
			case cb.armed > 0:
				fmt.Fprintf(&b, "callback %q: armed ×%d\n", cb.name, cb.armed)
			}
		}
	}
	return b.String()
}

// procKilled is the panic value used to unwind processes at shutdown.
type procKilled struct{}

// Proc is a simulated process. Every Proc method must be called from the
// process's own goroutine while it is the running process of its domain.
type Proc struct {
	eng     *Engine
	dom     *Domain
	name    string
	pid     int
	wake    chan struct{}
	done    bool
	started bool
	// Wait state is kept cheap to record: reasons are static strings and
	// sleeps store only the wake time; DumpWaiters formats on demand, so
	// the hot park/Sleep paths never build strings.
	waitReason string
	sleeping   bool
	sleepUntil Time
	rng        *rand.Rand // memoized by Rand
	tid        int32      // trace track id, assigned lazily (see trace.go)
}

// Engine returns the engine this process belongs to.
func (p *Proc) Engine() *Engine { return p.eng }

// Dom returns the event domain this process belongs to.
func (p *Proc) Dom() *Domain { return p.dom }

// Now returns the process's domain's current virtual time.
func (p *Proc) Now() Time { return p.dom.now }

// Name returns the process name given to Go.
func (p *Proc) Name() string { return p.name }

// Rand returns a deterministic random source scoped to this process. The
// source is created on first use and reused, so repeated calls continue
// one stream. Streams are independent across domains: pids are
// domain-local, and non-default domains mix their name into the
// derivation.
func (p *Proc) Rand() *rand.Rand {
	if p.rng == nil {
		p.rng = p.dom.DeriveRand(fmt.Sprintf("proc:%s#%d", p.name, p.pid))
	}
	return p.rng
}

func runProc(p *Proc, fn func(*Proc)) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(procKilled); ok {
				return
			}
			p.eng.noteFailure(p.dom, fmt.Errorf("sim: proc %q panicked: %v\n%s",
				p.name, r, debug.Stack()))
		}
	}()
	fn(p)
}

// park blocks the calling process until it is made runnable again. The
// reason must be a preformatted (ideally static) string: it is recorded
// unconditionally, so building it must not allocate on the hot path.
func (p *Proc) park(reason string) {
	d := p.dom
	p.waitReason = reason
	var parkAt Time
	if d.tracer != nil {
		parkAt = d.now
	}
	d.yield <- struct{}{}
	<-p.wake
	if t := d.tracer; t != nil {
		// The parked interval, named by its wait reason, becomes one
		// virtual-time slice on the process's track. Reasons are static
		// strings (see above), so recording never formats.
		name := reason
		if name == "" {
			name = "sleep"
		}
		t.Slice(p.traceTID(t), "sim", name, parkAt, d.now)
	}
	p.waitReason = ""
	p.sleeping = false
	if p.eng.stopping {
		panic(procKilled{})
	}
}

// Sleep suspends the process for d of virtual time. Non-positive durations
// yield the processor and resume at the current time after other runnable
// processes have had a turn.
func (p *Proc) Sleep(t Time) {
	d := p.dom
	if t <= 0 {
		d.ready(p)
		p.park("yield")
		return
	}
	d.seq++
	d.timers.push(timer{at: d.now + t, seq: d.seq, p: p})
	p.sleeping = true
	p.sleepUntil = d.now + t
	p.park("")
}

// Yield gives other runnable processes a turn without advancing time.
func (p *Proc) Yield() { p.Sleep(0) }

// inlineEvent is a timer payload the scheduler runs inline on its own
// goroutine when the timer pops, with no process wake: cross-domain
// port deliveries (deliverRipe) and callback timers (Callback.fire).
// armAt is the virtual time the timer was armed; callbacks span their
// trace slice over [armAt, now], ports ignore it.
type inlineEvent interface {
	fire(d *Domain, armAt Time)
}

type timer struct {
	at  Time
	seq uint64
	p   *Proc
	// fire, when non-nil, marks an inline event instead of a process
	// wake: a cross-domain delivery (port.go) or a callback timer
	// (callback.go).
	fire  inlineEvent
	armAt Time
}

func (t timer) before(u timer) bool {
	if t.at != u.at {
		return t.at < u.at
	}
	return t.seq < u.seq
}

// timerHeap is a 4-ary min-heap of timer values ordered by (at, seq).
// Storing values directly (instead of container/heap's boxed interface)
// keeps Sleep allocation-free, and the wider fan-out halves the tree
// depth paid by sift-down on the pop-heavy event loop.
type timerHeap struct {
	a []timer
}

func (h *timerHeap) Len() int { return len(h.a) }

func (h *timerHeap) peek() (timer, bool) {
	if len(h.a) == 0 {
		return timer{}, false
	}
	return h.a[0], true
}

func (h *timerHeap) push(t timer) {
	h.a = append(h.a, t)
	i := len(h.a) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !h.a[i].before(h.a[parent]) {
			break
		}
		h.a[i], h.a[parent] = h.a[parent], h.a[i]
		i = parent
	}
}

func (h *timerHeap) pop() (timer, bool) {
	n := len(h.a)
	if n == 0 {
		return timer{}, false
	}
	top := h.a[0]
	last := h.a[n-1]
	h.a[n-1] = timer{} // drop the Proc reference
	h.a = h.a[:n-1]
	n--
	if n > 0 {
		// Sift last down from the root, moving smaller children up into
		// the hole until last fits.
		i := 0
		for {
			min := -1
			first := 4*i + 1
			end := first + 4
			if end > n {
				end = n
			}
			for c := first; c < end; c++ {
				if min < 0 || h.a[c].before(h.a[min]) {
					min = c
				}
			}
			if min < 0 || !h.a[min].before(last) {
				break
			}
			h.a[i] = h.a[min]
			i = min
		}
		h.a[i] = last
	}
	return top, true
}

// runnable is one run-queue (or wait-queue) entry: a goroutine proc to
// resume or a callback to invoke. Exactly one field is set. Queues hold
// both kinds in one FIFO so procs and callbacks interleave in the same
// deterministic order regardless of execution mode.
type runnable struct {
	p  *Proc
	cb *Callback
}

// procRing is a FIFO run queue backed by a power-of-two ring buffer, so
// the scheduler's pop-front is O(1) without the slice-shift reallocation
// churn of runq = runq[1:] + append.
type procRing struct {
	buf  []runnable
	head int
	n    int
}

func (r *procRing) len() int { return r.n }

func (r *procRing) push(v runnable) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = v
	r.n++
}

func (r *procRing) pop() (runnable, bool) {
	if r.n == 0 {
		return runnable{}, false
	}
	v := r.buf[r.head]
	r.buf[r.head] = runnable{}
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return v, true
}

func (r *procRing) grow() {
	size := len(r.buf) * 2
	if size == 0 {
		size = 16
	}
	buf := make([]runnable, size)
	for i := 0; i < r.n; i++ {
		buf[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf = buf
	r.head = 0
}
