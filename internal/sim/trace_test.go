package sim

import "testing"

// recordingTracer counts calls through the sim.Tracer interface.
type recordingTracer struct {
	tracks  int32
	slices  int
	instant int
}

func (r *recordingTracer) Track(string) int32 {
	r.tracks++
	return r.tracks
}
func (r *recordingTracer) Slice(int32, string, string, Time, Time) { r.slices++ }
func (r *recordingTracer) Instant(int32, string, string, Time)     { r.instant++ }

// TestTracerDisabledSleepAllocFree is the kernel-side obs alloc gate:
// with no tracer attached (the default), the park/Sleep path must stay
// allocation-free — the tracer hook may only add a nil-check branch. CI
// runs this as a regression gate (see .github/workflows/ci.yml).
func TestTracerDisabledSleepAllocFree(t *testing.T) {
	e := New(1)
	if e.Tracer() != nil {
		t.Fatal("engine must start with no tracer")
	}
	var avg float64
	e.Go("sleeper", func(p *Proc) {
		for i := 0; i < 64; i++ {
			p.Sleep(Microsecond)
		}
		avg = testing.AllocsPerRun(200, func() {
			p.Sleep(Microsecond)
		})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if avg != 0 {
		t.Errorf("tracer-disabled Sleep allocates %.1f allocs/op, want 0", avg)
	}
}

// TestTracerRecordsParks checks the enabled path: an attached tracer
// sees one slice per park (the sleep span) on a per-process track.
func TestTracerRecordsParks(t *testing.T) {
	e := New(1)
	tr := &recordingTracer{}
	e.SetTracer(tr)
	const sleeps = 5
	e.Go("worker", func(p *Proc) {
		for i := 0; i < sleeps; i++ {
			p.Sleep(Microsecond)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if tr.slices < sleeps {
		t.Errorf("tracer saw %d slices, want >= %d (one per sleep)", tr.slices, sleeps)
	}
	if tr.tracks != 1 {
		t.Errorf("tracer registered %d tracks, want 1 (per process name)", tr.tracks)
	}
}

// TestEngineCounters pins the kernel quantities the metrics registry
// absorbs: processes ever created and timers ever scheduled.
func TestEngineCounters(t *testing.T) {
	e := New(1)
	e.Go("a", func(p *Proc) { p.Sleep(Microsecond) })
	e.Go("b", func(p *Proc) { p.Sleep(Microsecond); p.Sleep(Microsecond) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.ProcsCreated() != 2 {
		t.Errorf("ProcsCreated = %d, want 2", e.ProcsCreated())
	}
	if e.TimersScheduled() < 3 {
		t.Errorf("TimersScheduled = %d, want >= 3", e.TimersScheduled())
	}
}
