package sim

// portFlusher is the engine-side view of a port: at every window barrier
// the engine, running serially, moves sender-buffered messages into the
// receiver's timer wheel. Iterating ports in creation order makes the
// merge canonical.
type portFlusher interface {
	flush()
}

// portDeliverer is the receiver-domain view: a popped delivery timer
// moves ripe messages into the inbox and wakes receivers.
type portDeliverer interface {
	deliverRipe(d *Domain)
}

type portMsg[T any] struct {
	at Time
	v  T
}

// Port is a one-way, timestamped channel between two domains — the only
// legal way for state to cross a domain boundary. A message sent at
// virtual time t is receivable at t+latency in the receiver's domain.
//
// The latency is not an implementation detail: it is the port's
// lookahead contribution. The engine's conservative window is bounded by
// the minimum latency over all ports, which is exactly why latency must
// be positive and fixed — a zero-latency port would collapse the window
// to nothing, and a variable one would break the sorted-delivery
// invariant the barrier merge relies on.
//
// Determinism: sends buffer on the sender's side in program order; the
// barrier (serial) assigns each message a receiver-local sequence number,
// walking ports in creation order. Delivery order is therefore a pure
// function of (virtual send time, port creation order, send order) and
// cannot depend on the worker count.
type Port[T any] struct {
	name    string
	from    *Domain
	to      *Domain
	latency Time

	// out is written only by the sending domain during a window and
	// drained only by the barrier; the window/barrier alternation is the
	// synchronization.
	out []portMsg[T]

	// pending holds flushed-but-not-ripe messages in delivery order.
	// Conservative windows guarantee every flush appends at times no
	// earlier than everything already present (send times only grow
	// across windows, latency is fixed), so ripeness is always a prefix.
	pending []portMsg[T]
	phead   int

	inbox      []T
	ihead      int
	recvQ      WaitQueue
	recvReason string
}

// NewPort creates a port carrying T from one domain to another with the
// given fixed latency. Both hosts must belong to the same engine, the
// domains must differ, and latency must be positive; ports must be
// created before Run.
func NewPort[T any](from, to Host, name string, latency Time) *Port[T] {
	fd, td := from.Dom(), to.Dom()
	e := fd.eng
	switch {
	case e != td.eng:
		panic("sim: NewPort across engines")
	case fd == td:
		panic("sim: NewPort within one domain (use Chan)")
	case latency <= 0:
		panic("sim: NewPort latency must be positive (it bounds the lookahead window)")
	case e.running:
		panic("sim: NewPort during Run")
	}
	p := &Port[T]{
		name: name, from: fd, to: td, latency: latency,
		recvReason: "port-recv " + name,
	}
	if e.minLat == 0 || latency < e.minLat {
		e.minLat = latency
	}
	e.ports = append(e.ports, p)
	return p
}

// Name returns the port's name.
func (pt *Port[T]) Name() string { return pt.name }

// Latency returns the port's fixed delivery latency.
func (pt *Port[T]) Latency() Time { return pt.latency }

// Send timestamps v at the caller's current time plus the port latency
// and buffers it for the next barrier. It never blocks: ports are
// unbounded, modeling an asynchronous link. The caller must run on the
// sending domain.
func (pt *Port[T]) Send(p *Proc, v T) {
	if p.dom != pt.from {
		panic("sim: Port.Send from wrong domain: " + p.name + " on " + pt.name)
	}
	pt.out = append(pt.out, portMsg[T]{at: p.dom.now + pt.latency, v: v})
}

// Recv blocks the calling process (which must run on the receiving
// domain) until a message ripens, then returns the oldest one.
func (pt *Port[T]) Recv(p *Proc) T {
	if p.dom != pt.to {
		panic("sim: Port.Recv from wrong domain: " + p.name + " on " + pt.name)
	}
	for pt.ihead >= len(pt.inbox) {
		pt.recvQ.Wait(p, pt.recvReason)
	}
	v := pt.inbox[pt.ihead]
	var zero T
	pt.inbox[pt.ihead] = zero
	pt.ihead++
	if pt.ihead == len(pt.inbox) {
		pt.inbox = pt.inbox[:0]
		pt.ihead = 0
	}
	return v
}

// TryRecv returns the oldest ripe message without blocking; ok is false
// when none has ripened yet.
func (pt *Port[T]) TryRecv() (v T, ok bool) {
	if pt.ihead >= len(pt.inbox) {
		return v, false
	}
	v = pt.inbox[pt.ihead]
	var zero T
	pt.inbox[pt.ihead] = zero
	pt.ihead++
	if pt.ihead == len(pt.inbox) {
		pt.inbox = pt.inbox[:0]
		pt.ihead = 0
	}
	return v, true
}

// Len returns the number of ripe, undelivered messages.
func (pt *Port[T]) Len() int { return len(pt.inbox) - pt.ihead }

// flush runs at the barrier, on the engine goroutine, with every domain
// parked. Each buffered message becomes a delivery timer in the
// receiving domain, sequenced by the receiver's own counter so the
// (time, seq) order is identical at any worker count.
func (pt *Port[T]) flush() {
	if len(pt.out) == 0 {
		return
	}
	to := pt.to
	for _, m := range pt.out {
		to.seq++
		to.timers.push(timer{at: m.at, seq: to.seq, port: pt})
		pt.pending = append(pt.pending, m)
	}
	pt.out = pt.out[:0]
}

// deliverRipe moves every pending message with at <= now into the inbox
// and wakes one receiver per message. Ripe messages are always a prefix
// of pending (see the type comment), so this is a linear scan that stops
// at the first unripe entry.
func (pt *Port[T]) deliverRipe(d *Domain) {
	for pt.phead < len(pt.pending) && pt.pending[pt.phead].at <= d.now {
		m := pt.pending[pt.phead]
		pt.pending[pt.phead] = portMsg[T]{}
		pt.phead++
		pt.inbox = append(pt.inbox, m.v)
		pt.recvQ.WakeOne()
	}
	if pt.phead == len(pt.pending) {
		pt.pending = pt.pending[:0]
		pt.phead = 0
	}
}
