package sim

// portFlusher is the engine-side view of a port: at every window barrier
// the engine, running serially, moves sender-buffered messages into the
// receiver's timer wheel. Iterating ports in creation order makes the
// merge canonical.
type portFlusher interface {
	flush()
}

// Ports implement inlineEvent (engine.go): a popped delivery timer
// moves ripe messages into the inbox and wakes receivers, inline on the
// receiving domain's scheduler goroutine.
func (pt *Port[T]) fire(d *Domain, _ Time) { pt.deliverRipe(d) }

type portMsg[T any] struct {
	at Time
	v  T
}

// Delivery timers carry a canonical sequence number instead of a
// receiver-local counter value: bit 63 marks a delivery, the next 23
// bits are the port's creation index, and the low 40 bits count
// messages delivered on that port. The encoding is a pure function of
// (port, message index), so the (time, seq) order of a delivery against
// every other timer is independent of *when* the barrier flushed it —
// the property that lets fixed and adaptive windows, which flush at
// different rounds, produce byte-identical simulations. At equal times,
// local timers (seq < 2^63) sort before deliveries, and deliveries sort
// by (port creation order, send order).
const (
	deliverySeqBit   = uint64(1) << 63
	deliveryPortBits = 23
	deliveryMsgBits  = 63 - deliveryPortBits
)

func deliverySeq(portIdx int, msg uint64) uint64 {
	return deliverySeqBit |
		uint64(portIdx)<<deliveryMsgBits |
		msg&(uint64(1)<<deliveryMsgBits-1)
}

// Port is a one-way, timestamped channel between two domains — the only
// legal way for state to cross a domain boundary. A message sent at
// virtual time t is receivable at t+latency in the receiver's domain.
//
// The latency is not an implementation detail: it is the port's
// lookahead contribution. The engine's conservative window is bounded by
// the earliest time a sender could emit plus its port's latency, which
// is exactly why latency must be positive and fixed — a zero-latency
// port would collapse the window to nothing, and a variable one would
// break the sorted-delivery invariant the barrier merge relies on.
//
// Determinism: sends buffer on the sender's side in program order; the
// barrier (serial) hands each buffered batch to the receiver and arms
// one delivery timer per port at the head delivery time. Timers carry
// the canonical delivery sequence (see deliverySeq), so delivery order
// is a pure function of (virtual send time, port creation order, send
// order) and cannot depend on the worker count or the window protocol.
type Port[T any] struct {
	name    string
	from    *Domain
	to      *Domain
	latency Time
	idx     int // creation index in Engine.ports: the canonical tiebreak

	// out is written only by the sending domain during a window and
	// drained only by the barrier; the window/barrier alternation is the
	// synchronization.
	out []portMsg[T]

	// batches is a FIFO of flushed-but-not-ripe batches in delivery
	// order; batches[bhead] is the oldest and phead indexes into it.
	// Conservative windows guarantee every flush appends at times no
	// earlier than everything already pending (send times only grow
	// across a domain's windows, latency is fixed), so ripeness is
	// always a prefix. Consumed batch arrays recycle through free so
	// the steady-state barrier path never allocates.
	batches [][]portMsg[T]
	bhead   int
	phead   int
	free    [][]portMsg[T]

	// delivered counts messages handed to the inbox; the head pending
	// message's index is delivered, which deliverySeq turns into the
	// canonical timer sequence. armed says a delivery timer for the
	// current head is already in the receiver's heap — one per port at
	// a time, re-armed as the head moves.
	delivered uint64
	armed     bool

	inbox      []T
	ihead      int
	recvQ      WaitQueue
	recvReason string
}

// NewPort creates a port carrying T from one domain to another with the
// given fixed latency. Both hosts must belong to the same engine, the
// domains must differ, and latency must be positive; ports must be
// created before Run.
func NewPort[T any](from, to Host, name string, latency Time) *Port[T] {
	fd, td := from.Dom(), to.Dom()
	e := fd.eng
	switch {
	case e != td.eng:
		panic("sim: NewPort across engines")
	case fd == td:
		panic("sim: NewPort within one domain (use Chan)")
	case latency <= 0:
		panic("sim: NewPort latency must be positive (it bounds the lookahead window)")
	case e.running:
		panic("sim: NewPort during Run")
	case len(e.ports) >= 1<<deliveryPortBits:
		panic("sim: too many ports for the canonical delivery sequence encoding")
	}
	p := &Port[T]{
		name: name, from: fd, to: td, latency: latency,
		idx:        len(e.ports),
		recvReason: "port-recv " + name,
	}
	if e.minLat == 0 || latency < e.minLat {
		e.minLat = latency
	}
	e.ports = append(e.ports, p)
	e.portFrom = append(e.portFrom, int32(fd.id))
	e.portTo = append(e.portTo, int32(td.id))
	e.portLat = append(e.portLat, latency)
	return p
}

// Name returns the port's name.
func (pt *Port[T]) Name() string { return pt.name }

// Latency returns the port's fixed delivery latency.
func (pt *Port[T]) Latency() Time { return pt.latency }

// Send timestamps v at the caller's current time plus the port latency
// and buffers it for the next barrier. It never blocks: ports are
// unbounded, modeling an asynchronous link. The caller must run on the
// sending domain.
func (pt *Port[T]) Send(p *Proc, v T) {
	if p.dom != pt.from {
		panic("sim: Port.Send from wrong domain: " + p.name + " on " + pt.name)
	}
	pt.out = append(pt.out, portMsg[T]{at: p.dom.now + pt.latency, v: v})
}

// Recv blocks the calling process (which must run on the receiving
// domain) until a message ripens, then returns the oldest one.
func (pt *Port[T]) Recv(p *Proc) T {
	if p.dom != pt.to {
		panic("sim: Port.Recv from wrong domain: " + p.name + " on " + pt.name)
	}
	for pt.ihead >= len(pt.inbox) {
		pt.recvQ.Wait(p, pt.recvReason)
	}
	v := pt.inbox[pt.ihead]
	var zero T
	pt.inbox[pt.ihead] = zero
	pt.ihead++
	if pt.ihead == len(pt.inbox) {
		pt.inbox = pt.inbox[:0]
		pt.ihead = 0
	}
	return v
}

// TryRecv returns the oldest ripe message without blocking; ok is false
// when none has ripened yet.
func (pt *Port[T]) TryRecv() (v T, ok bool) {
	if pt.ihead >= len(pt.inbox) {
		return v, false
	}
	v = pt.inbox[pt.ihead]
	var zero T
	pt.inbox[pt.ihead] = zero
	pt.ihead++
	if pt.ihead == len(pt.inbox) {
		pt.inbox = pt.inbox[:0]
		pt.ihead = 0
	}
	return v, true
}

// Len returns the number of ripe, undelivered messages.
func (pt *Port[T]) Len() int { return len(pt.inbox) - pt.ihead }

// flush runs at the barrier, on the engine goroutine, with every domain
// parked. The whole sender buffer moves into the pending FIFO as one
// batch (no per-message work), the sender gets a recycled array back,
// and a single delivery timer is armed at the head delivery time.
func (pt *Port[T]) flush() {
	if len(pt.out) == 0 {
		return
	}
	pt.to.deliveries += uint64(len(pt.out))
	pt.batches = append(pt.batches, pt.out)
	if n := len(pt.free); n > 0 {
		pt.out = pt.free[n-1]
		pt.free[n-1] = nil
		pt.free = pt.free[:n-1]
	} else {
		pt.out = nil
	}
	pt.arm()
}

// arm pushes the head pending message's delivery timer into the
// receiver's heap, unless one is already in flight. The timer's
// sequence is canonical (deliverySeq), so arming earlier or later —
// fixed vs adaptive windows flush at different barriers — cannot change
// where the delivery sorts.
func (pt *Port[T]) arm() {
	if pt.armed {
		return
	}
	head := pt.batches[pt.bhead][pt.phead]
	pt.to.timers.push(timer{at: head.at, seq: deliverySeq(pt.idx, pt.delivered), fire: pt})
	pt.armed = true
}

// deliverRipe moves every pending message with at <= now into the inbox
// and wakes one receiver per message. Ripe messages are always a prefix
// of the pending FIFO (see the batches comment), so this walks batches
// in order, recycling each consumed array, and re-arms the timer at the
// new head when unripe messages remain.
func (pt *Port[T]) deliverRipe(d *Domain) {
	pt.armed = false
	for pt.bhead < len(pt.batches) {
		b := pt.batches[pt.bhead]
		for pt.phead < len(b) && b[pt.phead].at <= d.now {
			pt.inbox = append(pt.inbox, b[pt.phead].v)
			b[pt.phead] = portMsg[T]{}
			pt.phead++
			pt.delivered++
			pt.recvQ.WakeOne()
		}
		if pt.phead < len(b) {
			break // head batch has unripe messages left
		}
		pt.batches[pt.bhead] = nil
		pt.free = append(pt.free, b[:0])
		pt.bhead++
		pt.phead = 0
	}
	if pt.bhead == len(pt.batches) {
		pt.batches = pt.batches[:0]
		pt.bhead = 0
	} else {
		pt.arm()
	}
}
