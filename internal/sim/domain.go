package sim

import "math/rand"

// Domain is an event domain: a shard of the simulation with its own
// virtual clock, run queue, timer heap, and process table. Within a
// domain the classic cooperative discipline holds — exactly one process
// runs at a time — so all state confined to one domain is data-race
// free without locks. Distinct domains may run concurrently during a
// lookahead window and must interact only through Ports.
//
// A Domain is a Host: components constructed against a Domain live on
// that domain. The Engine's own Host methods delegate to its default
// domain, so single-domain code never mentions Domain at all.
type Domain struct {
	id   int
	name string
	eng  *Engine

	now Time
	// seq is the local-timer tiebreaker for deterministic ordering:
	// Sleep timers take increasing values, so equal-time local timers
	// fire in schedule order. Cross-domain delivery timers carry a
	// disjoint canonical sequence space instead (bit 63 set — see
	// port.go), so at equal times local timers sort before deliveries
	// no matter when a barrier flushed them.
	seq uint64
	// deliveries counts cross-domain messages flushed into this domain,
	// for the TimersScheduled accounting (deliveries no longer consume
	// seq values).
	deliveries uint64
	// horizon is the granted execution bound for the current barrier
	// round; written serially at barriers, read by runWindow (see
	// window.go).
	horizon Time
	timers  timerHeap
	runq    procRing
	yield   chan struct{}
	cur     *Proc
	procs   []*Proc // all procs ever created on this domain, in creation order
	liveN   int
	nextPID int
	// cbs lists every callback registered on this domain, in creation
	// order. Callback ids come from nextCBID, a counter disjoint from
	// nextPID: creating a callback never shifts the pid-derived random
	// streams of goroutine procs.
	cbs      []*Callback
	nextCBID int
	failure  error
	tracer   Tracer // nil unless observability is on (see trace.go)
}

// ID returns the domain's index in Engine.Domains (the default domain
// is 0).
func (d *Domain) ID() int { return d.id }

// Name returns the name given to NewDomain ("main" for the default
// domain).
func (d *Domain) Name() string { return d.name }

// Now returns the domain's current virtual time. During a window,
// sibling domains' clocks may differ by up to the lookahead bound.
func (d *Domain) Now() Time { return d.now }

// Engine returns the engine this domain belongs to.
func (d *Domain) Engine() *Engine { return d.eng }

// Dom implements Host.
func (d *Domain) Dom() *Domain { return d }

// SetTracer attaches a tracer to this domain. Each domain needs its own
// tracer value: domains record slices concurrently during a window, so
// sharing one buffer would race. Must be called before Run.
func (d *Domain) SetTracer(t Tracer) { d.tracer = t }

// Tracer returns the domain's tracer (nil when tracing is off).
func (d *Domain) Tracer() Tracer { return d.tracer }

// DeriveRand returns a deterministic random source for the named
// component on this domain. The default domain uses the engine-level
// derivation unchanged (so existing single-domain streams are stable);
// other domains mix in their name, making streams independent across
// domains even for identical component names.
func (d *Domain) DeriveRand(name string) *rand.Rand {
	if d.id == 0 {
		return d.eng.DeriveRand(name)
	}
	return d.eng.DeriveRand(name + "@" + d.name)
}

// Go creates a process on this domain that will run fn. It may be called
// before Run to seed the simulation, or by a running process of this
// domain to spawn concurrent work; spawning onto a *different* running
// domain is a race and must go through a Port instead. The new process
// starts after the caller next blocks.
func (d *Domain) Go(name string, fn func(*Proc)) *Proc {
	e := d.eng
	p := &Proc{
		eng:  e,
		dom:  d,
		name: name,
		pid:  d.nextPID,
		wake: make(chan struct{}, 1),
	}
	d.nextPID++
	d.procs = append(d.procs, p)
	if e.stopping {
		p.done = true
		return p
	}
	d.liveN++
	go func() {
		<-p.wake
		p.started = true
		// The completion handshake runs in a defer so it fires even when
		// the body exits via runtime.Goexit (e.g. t.Fatal inside a test
		// process) — otherwise the scheduler would block forever.
		defer func() {
			p.done = true
			d.liveN--
			d.yield <- struct{}{}
		}()
		if !e.stopping {
			runProc(p, fn)
		}
	}()
	d.ready(p)
	return p
}

// ready marks p runnable at the domain's current time.
func (d *Domain) ready(p *Proc) {
	if p.done {
		return
	}
	d.runq.push(runnable{p: p})
}

func (d *Domain) resume(p *Proc) {
	if p.done {
		return
	}
	d.cur = p
	p.wake <- struct{}{}
	<-d.yield
	d.cur = nil
}

// nextEvent returns the virtual time of the domain's earliest pending
// event: now if a process is runnable, the earliest timer otherwise, and
// maxTime when the domain is idle. Pending cross-domain deliveries are
// visible here because flush materializes them as timers before the
// horizon is computed.
func (d *Domain) nextEvent() Time {
	if d.runq.len() > 0 {
		return d.now
	}
	if tm, ok := d.timers.peek(); ok {
		return tm.at
	}
	return maxTime
}

// runWindow executes the domain's events strictly below horizon. It is
// the per-domain body of the conservative time-window barrier: no event
// at or past the horizon may run, because a message from another domain
// could still arrive there.
func (d *Domain) runWindow(horizon Time) {
	for d.failure == nil {
		r, ok := d.runq.pop()
		if !ok {
			tm, ok := d.timers.peek()
			if !ok || tm.at >= horizon {
				return
			}
			d.timers.pop()
			if tm.at > d.now {
				d.now = tm.at
			}
			if tm.fire != nil {
				tm.fire.fire(d, tm.armAt)
				continue
			}
			d.ready(tm.p)
			continue
		}
		if r.cb != nil {
			d.invoke(r.cb)
			continue
		}
		d.resume(r.p)
	}
}

// Go spawns a process on the calling process's own domain — the safe
// default for component code, which may be hosted on any domain and must
// never spawn onto a different (possibly concurrently running) one.
func (p *Proc) Go(name string, fn func(*Proc)) *Proc { return p.dom.Go(name, fn) }

// ProcsCreated returns how many processes were ever created on this
// domain.
func (d *Domain) ProcsCreated() int { return len(d.procs) }

// CallbacksCreated returns how many callbacks were ever registered on
// this domain.
func (d *Domain) CallbacksCreated() int { return len(d.cbs) }

// TimersScheduled returns how many timed events were ever scheduled on
// this domain (sleeps plus cross-domain message deliveries).
func (d *Domain) TimersScheduled() uint64 { return d.seq + d.deliveries }
