package sim

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"
)

func TestTimeConversions(t *testing.T) {
	if got := FromDuration(3 * time.Millisecond); got != 3*Millisecond {
		t.Errorf("FromDuration = %v, want %v", got, 3*Millisecond)
	}
	if got := (2 * Second).Duration(); got != 2*time.Second {
		t.Errorf("Duration = %v, want 2s", got)
	}
	if got := (1500 * Millisecond).Seconds(); got != 1.5 {
		t.Errorf("Seconds = %v, want 1.5", got)
	}
	if got := (3 * Millisecond).Milliseconds(); got != 3.0 {
		t.Errorf("Milliseconds = %v, want 3", got)
	}
	if got := Second.Scale(0.25); got != 250*Millisecond {
		t.Errorf("Scale = %v, want 250ms", got)
	}
	if got := (90 * Second).String(); got != "1m30s" {
		t.Errorf("String = %q, want 1m30s", got)
	}
}

func TestSleepAdvancesClock(t *testing.T) {
	e := New(1)
	var at Time
	e.Go("sleeper", func(p *Proc) {
		p.Sleep(5 * Millisecond)
		at = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 5*Millisecond {
		t.Errorf("woke at %v, want 5ms", at)
	}
	if e.Now() != 5*Millisecond {
		t.Errorf("engine now %v, want 5ms", e.Now())
	}
}

func TestDeterministicInterleaving(t *testing.T) {
	run := func() []string {
		e := New(7)
		var log []string
		for i := 0; i < 4; i++ {
			i := i
			e.Go(fmt.Sprintf("p%d", i), func(p *Proc) {
				for j := 0; j < 3; j++ {
					p.Sleep(Time(i+1) * Millisecond)
					log = append(log, fmt.Sprintf("%s@%v", p.Name(), p.Now()))
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return log
	}
	a, b := run(), run()
	if len(a) != 12 {
		t.Fatalf("got %d events, want 12", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestSameTimeFIFO(t *testing.T) {
	e := New(1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.Go(fmt.Sprintf("p%d", i), func(p *Proc) {
			p.Sleep(Millisecond) // all wake at the same instant
			order = append(order, i)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want ascending", order)
		}
	}
}

func TestYieldDoesNotAdvanceTime(t *testing.T) {
	e := New(1)
	e.Go("y", func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Yield()
		}
		if p.Now() != 0 {
			t.Errorf("time advanced to %v across yields", p.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRunForStopsAtDeadline(t *testing.T) {
	e := New(1)
	ticks := 0
	e.Go("ticker", func(p *Proc) {
		for {
			p.Sleep(Second)
			ticks++
		}
	})
	if err := e.RunFor(10*Second + Millisecond); err != nil {
		t.Fatal(err)
	}
	if ticks != 10 {
		t.Errorf("ticks = %d, want 10", ticks)
	}
	if e.Now() != 10*Second+Millisecond {
		t.Errorf("now = %v, want 10.001s", e.Now())
	}
}

func TestProcPanicSurfacesAsError(t *testing.T) {
	e := New(1)
	e.Go("bomb", func(p *Proc) {
		p.Sleep(Millisecond)
		panic("boom")
	})
	err := e.Run()
	if err == nil {
		t.Fatal("want error from panicking proc")
	}
}

func TestSpawnFromProc(t *testing.T) {
	e := New(1)
	var childRan bool
	e.Go("parent", func(p *Proc) {
		p.Engine().Go("child", func(c *Proc) {
			c.Sleep(Millisecond)
			childRan = true
		})
		p.Sleep(2 * Millisecond)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !childRan {
		t.Error("child did not run")
	}
}

func TestFuture(t *testing.T) {
	e := New(1)
	f := NewFuture[int](e)
	var got int
	e.Go("waiter", func(p *Proc) {
		v, err := f.Wait(p)
		if err != nil {
			t.Errorf("future err: %v", err)
		}
		got = v
		if p.Now() != 3*Millisecond {
			t.Errorf("woke at %v, want 3ms", p.Now())
		}
	})
	e.Go("completer", func(p *Proc) {
		p.Sleep(3 * Millisecond)
		f.Complete(42, nil)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Errorf("got %d, want 42", got)
	}
	if !f.Done() {
		t.Error("future should be done")
	}
}

func TestFutureWaitAfterComplete(t *testing.T) {
	e := New(1)
	f := NewFuture[string](e)
	f.Complete("ok", nil)
	e.Go("late", func(p *Proc) {
		v, _ := f.Wait(p)
		if v != "ok" {
			t.Errorf("got %q", v)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestChanBounded(t *testing.T) {
	e := New(1)
	c := NewChan[int](e, 2, "test")
	var recvd []int
	e.Go("producer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			c.Send(p, i)
		}
		c.Close()
	})
	e.Go("consumer", func(p *Proc) {
		for {
			v, ok := c.Recv(p)
			if !ok {
				return
			}
			recvd = append(recvd, v)
			p.Sleep(Millisecond)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(recvd) != 5 {
		t.Fatalf("received %v, want 5 values", recvd)
	}
	for i, v := range recvd {
		if v != i {
			t.Fatalf("out of order: %v", recvd)
		}
	}
}

func TestChanCloseWakesReceivers(t *testing.T) {
	e := New(1)
	c := NewChan[int](e, 0, "test")
	okSeen := true
	e.Go("consumer", func(p *Proc) {
		_, ok := c.Recv(p)
		okSeen = ok
	})
	e.Go("closer", func(p *Proc) {
		p.Sleep(Millisecond)
		c.Close()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if okSeen {
		t.Error("Recv on closed+empty chan should report !ok")
	}
}

func TestChanTryOps(t *testing.T) {
	e := New(1)
	c := NewChan[int](e, 1, "t")
	if _, ok := c.TryRecv(); ok {
		t.Error("TryRecv on empty should fail")
	}
	if !c.TrySend(1) {
		t.Error("TrySend should succeed")
	}
	if c.TrySend(2) {
		t.Error("TrySend on full should fail")
	}
	if v, ok := c.TryRecv(); !ok || v != 1 {
		t.Errorf("TryRecv = %d,%v", v, ok)
	}
	c.Close()
	if c.TrySend(3) {
		t.Error("TrySend on closed should fail")
	}
}

func TestSemaphoreLimitsConcurrency(t *testing.T) {
	e := New(1)
	s := NewSemaphore(e, 2)
	active, maxActive := 0, 0
	for i := 0; i < 6; i++ {
		e.Go(fmt.Sprintf("w%d", i), func(p *Proc) {
			s.Acquire(p)
			active++
			if active > maxActive {
				maxActive = active
			}
			p.Sleep(Millisecond)
			active--
			s.Release()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if maxActive != 2 {
		t.Errorf("maxActive = %d, want 2", maxActive)
	}
}

func TestWaitGroup(t *testing.T) {
	e := New(1)
	wg := NewWaitGroup(e)
	doneAt := Time(-1)
	for i := 1; i <= 3; i++ {
		i := i
		wg.Add(1)
		e.Go(fmt.Sprintf("w%d", i), func(p *Proc) {
			p.Sleep(Time(i) * Millisecond)
			wg.Done()
		})
	}
	e.Go("waiter", func(p *Proc) {
		wg.Wait(p)
		doneAt = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if doneAt != 3*Millisecond {
		t.Errorf("waiter done at %v, want 3ms", doneAt)
	}
}

func TestWaitQueueFIFO(t *testing.T) {
	e := New(1)
	q := NewWaitQueue(e)
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		e.Go(fmt.Sprintf("w%d", i), func(p *Proc) {
			p.Sleep(Time(i+1) * Microsecond) // deterministic arrival order
			q.Wait(p, "test")
			order = append(order, i)
		})
	}
	e.Go("waker", func(p *Proc) {
		p.Sleep(Millisecond)
		for q.Len() > 0 {
			q.WakeOne()
			p.Yield()
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want FIFO", order)
		}
	}
}

func TestDeriveRandStable(t *testing.T) {
	a := New(99).DeriveRand("dev")
	b := New(99).DeriveRand("dev")
	c := New(99).DeriveRand("other")
	for i := 0; i < 10; i++ {
		av, bv := a.Int63(), b.Int63()
		if av != bv {
			t.Fatal("same name+seed should give same stream")
		}
		if av == c.Int63() {
			// A single collision is possible but all ten matching is not;
			// just make sure the streams are not identical.
			continue
		}
		return
	}
	t.Error("different names produced identical streams")
}

func TestShutdownUnwindsBlockedProcs(t *testing.T) {
	e := New(1)
	q := NewWaitQueue(e)
	e.Go("stuck", func(p *Proc) {
		q.Wait(p, "forever")
		t.Error("stuck proc should never resume normally")
	})
	e.Go("stopper", func(p *Proc) {
		p.Sleep(Millisecond)
		p.Engine().Stop()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// All procs must be done after Run returns.
	for _, p := range e.d0.procs {
		if !p.done {
			t.Errorf("proc %q still live after Run", p.name)
		}
	}
}

func TestQuiescentRunReturns(t *testing.T) {
	e := New(1)
	q := NewWaitQueue(e)
	e.Go("daemon", func(p *Proc) {
		q.Wait(p, "never woken")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.DumpWaiters() != "" {
		// After shutdown all waiters are unwound.
		t.Errorf("waiters remain: %s", e.DumpWaiters())
	}
}

func TestStopTwiceIsSafe(t *testing.T) {
	e := New(1)
	e.Go("p", func(p *Proc) {
		e.Stop()
		e.Stop()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !e.Stopping() {
		t.Error("engine should report stopping")
	}
}

func TestTimerHeapOrdering(t *testing.T) {
	// Push timers in a scrambled order and check they pop sorted by
	// (at, seq) — the invariant the 4-ary heap must preserve.
	var h timerHeap
	rng := New(42).DeriveRand("heap-test")
	type key struct {
		at  Time
		seq uint64
	}
	var want []key
	for i := 0; i < 2000; i++ {
		k := key{at: Time(rng.Intn(50)), seq: uint64(i)}
		want = append(want, k)
		h.push(timer{at: k.at, seq: k.seq})
		// Interleave pops so the heap shrinks and regrows.
		if rng.Intn(4) == 0 && h.Len() > 0 {
			continue
		}
	}
	var got []key
	for {
		tm, ok := h.pop()
		if !ok {
			break
		}
		got = append(got, key{tm.at, tm.seq})
	}
	if len(got) != len(want) {
		t.Fatalf("popped %d timers, pushed %d", len(got), len(want))
	}
	for i := 1; i < len(got); i++ {
		a, b := got[i-1], got[i]
		if a.at > b.at || (a.at == b.at && a.seq > b.seq) {
			t.Fatalf("heap order violated at %d: %v before %v", i, a, b)
		}
	}
}

func TestProcRingFIFO(t *testing.T) {
	var r procRing
	mk := func(i int) runnable { return runnable{p: &Proc{pid: i}} }
	// Wrap the ring several times with mixed push/pop.
	next, expect := 0, 0
	rng := New(7).DeriveRand("ring-test")
	for step := 0; step < 10000; step++ {
		if rng.Intn(2) == 0 {
			r.push(mk(next))
			next++
		} else if p, ok := r.pop(); ok {
			if p.p.pid != expect {
				t.Fatalf("pop %d, want %d", p.p.pid, expect)
			}
			expect++
		}
	}
	for {
		p, ok := r.pop()
		if !ok {
			break
		}
		if p.p.pid != expect {
			t.Fatalf("drain pop %d, want %d", p.p.pid, expect)
		}
		expect++
	}
	if expect != next {
		t.Fatalf("drained %d procs, pushed %d", expect, next)
	}
}

func TestDumpWaitersShowsSleepers(t *testing.T) {
	e := New(1)
	e.Go("sleeper", func(p *Proc) {
		p.Sleep(5 * Millisecond)
	})
	e.Go("checker", func(p *Proc) {
		p.Yield() // let the sleeper park first
		dump := e.DumpWaiters()
		if !strings.Contains(dump, `"sleeper"`) || !strings.Contains(dump, "sleep until 5ms") {
			t.Errorf("DumpWaiters = %q, want sleeper at 5ms", dump)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestProcRandMemoized(t *testing.T) {
	e := New(3)
	e.Go("r", func(p *Proc) {
		a := p.Rand()
		if p.Rand() != a {
			t.Error("Rand() should return the same source on repeated calls")
		}
		// The memoized stream starts where the per-call derivation did:
		// first value matches a fresh DeriveRand of the same key.
		want := e.DeriveRand(fmt.Sprintf("proc:%s#%d", p.name, p.pid)).Int63()
		if got := a.Int63(); got != want {
			t.Errorf("first Rand value = %d, want %d", got, want)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestGoexitInProcDoesNotWedgeScheduler(t *testing.T) {
	// t.Fatal inside a simulated process exits the goroutine via
	// runtime.Goexit; the engine must still receive the completion
	// handshake instead of blocking forever.
	e := New(1)
	e.Go("fatal-ish", func(p *Proc) {
		p.Sleep(Millisecond)
		runtime.Goexit()
	})
	done := make(chan error, 1)
	go func() { done <- e.Run() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("engine wedged after Goexit in proc")
	}
}
