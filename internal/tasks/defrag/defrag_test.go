package defrag

import (
	"testing"

	"duet/internal/cowfs"
	"duet/internal/machine"
	"duet/internal/sim"
	"duet/internal/storage"
)

func newMachine(t *testing.T) (*machine.Machine, []*cowfs.Inode, cowfs.Ino) {
	t.Helper()
	m, err := machine.New(machine.Config{Seed: 1, DeviceBlocks: 1 << 16, CachePages: 4096})
	if err != nil {
		t.Fatal(err)
	}
	spec := machine.DefaultPopulateSpec("/data", 8192)
	spec.FragmentedFrac = 0.3 // plenty of defrag work
	files, err := m.Populate(spec)
	if err != nil {
		t.Fatal(err)
	}
	root, err := m.FS.Lookup("/data")
	if err != nil {
		t.Fatal(err)
	}
	return m, files, root.Ino
}

func run(t *testing.T, m *machine.Machine, fn func(p *sim.Proc)) {
	t.Helper()
	m.Eng.Go("test", func(p *sim.Proc) {
		// Stop via defer so a t.Fatal inside fn still ends the run.
		defer m.Eng.Stop()
		fn(p)
	})
	if err := m.Eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBaselineDefragsAll(t *testing.T) {
	m, _, root := newMachine(t)
	before := len(m.FS.FragmentedFiles(root))
	if before == 0 {
		t.Fatal("setup produced no fragmented files")
	}
	d := New(m.FS, root, DefaultConfig())
	run(t, m, func(p *sim.Proc) {
		if err := d.Run(p); err != nil {
			t.Fatal(err)
		}
		m.FS.Sync(p)
	})
	if !d.Report.Completed {
		t.Error("not completed")
	}
	if after := len(m.FS.FragmentedFiles(root)); after != 0 {
		t.Errorf("%d files still fragmented (was %d)", after, before)
	}
	if d.Report.Saved != 0 {
		t.Errorf("baseline saved = %d", d.Report.Saved)
	}
	if d.Report.ReadBlocks != d.Report.WorkTotal {
		t.Errorf("ReadBlocks = %d, want %d", d.Report.ReadBlocks, d.Report.WorkTotal)
	}
}

func TestOpportunisticPrioritizesCachedFiles(t *testing.T) {
	m, _, root := newMachine(t)
	targets := m.FS.FragmentedFiles(root)
	if len(targets) < 4 {
		t.Fatal("need more fragmented files")
	}
	d := NewOpportunisticVerbose(m.FS, root, DefaultConfig(), m)
	// Warm the LAST fragmented target (by inode order) so priority-based
	// processing must pick it first.
	warm := targets[len(targets)-1]
	run(t, m, func(p *sim.Proc) {
		if err := m.FS.ReadFile(p, warm.Ino, storage.ClassNormal, "workload"); err != nil {
			t.Fatal(err)
		}
		if err := d.Run(p); err != nil {
			t.Fatal(err)
		}
		m.FS.Sync(p)
	})
	if !d.Report.Completed {
		t.Error("not completed")
	}
	if len(d.order) == 0 || d.order[0] != uint64(warm.Ino) {
		t.Errorf("first processed = %v, want warm file %d", firstOf(d.order), warm.Ino)
	}
	if d.Report.Saved < warm.SizePg {
		t.Errorf("Saved = %d, want >= %d (warm file read-free)", d.Report.Saved, warm.SizePg)
	}
}

func firstOf(v []uint64) interface{} {
	if len(v) == 0 {
		return "none"
	}
	return v[0]
}

// NewOpportunisticVerbose wraps the defragmenter to record processing
// order for tests.
func NewOpportunisticVerbose(fs *cowfs.FS, root cowfs.Ino, cfg Config, m *machine.Machine) *verboseDefrag {
	d := NewOpportunistic(fs, root, cfg, m.Duet, m.Adapter)
	return &verboseDefrag{Defrag: d}
}

type verboseDefrag struct {
	*Defrag
	order []uint64
}

func (v *verboseDefrag) Run(p *sim.Proc) error {
	// Re-implement Run around defragOne to capture ordering: simplest is
	// to hook the FS writeback tag... instead run the standard Run and
	// derive order from generation numbers afterwards.
	if err := v.Defrag.Run(p); err != nil {
		return err
	}
	// Recover processing order by extent generation (each defrag bumps
	// the fs generation, so later-processed files have higher gen).
	files := v.FS.FilesUnder(v.Root)
	type fg struct {
		ino uint64
		gen uint64
	}
	var gens []fg
	for _, f := range files {
		if len(f.Extents) > 0 && wasTarget(v.Defrag, uint64(f.Ino)) {
			gens = append(gens, fg{uint64(f.Ino), f.Extents[0].Gen})
		}
	}
	for i := 0; i < len(gens); i++ {
		for j := i + 1; j < len(gens); j++ {
			if gens[j].gen < gens[i].gen {
				gens[i], gens[j] = gens[j], gens[i]
			}
		}
	}
	for _, g := range gens {
		v.order = append(v.order, g.ino)
	}
	return nil
}

func wasTarget(d *Defrag, ino uint64) bool {
	_, ok := d.targets[ino]
	return ok
}

func TestOpportunisticCompletesAllTargets(t *testing.T) {
	m, _, root := newMachine(t)
	d := NewOpportunistic(m.FS, root, DefaultConfig(), m.Duet, m.Adapter)
	run(t, m, func(p *sim.Proc) {
		// Background workload generating events during the run.
		files := m.FS.FilesUnder(root)
		m.Eng.Go("workload", func(wp *sim.Proc) {
			rng := wp.Rand()
			for i := 0; i < 50; i++ {
				f := files[rng.Intn(len(files))]
				if err := m.FS.ReadFile(wp, f.Ino, storage.ClassNormal, "workload"); err != nil {
					return
				}
				wp.Sleep(5 * sim.Millisecond)
			}
		})
		if err := d.Run(p); err != nil {
			t.Fatal(err)
		}
		m.FS.Sync(p)
	})
	if !d.Report.Completed {
		t.Error("not completed")
	}
	if after := len(m.FS.FragmentedFiles(root)); after != 0 {
		t.Errorf("%d files still fragmented", after)
	}
	if d.Report.WorkDone != d.Report.WorkTotal {
		t.Errorf("WorkDone = %d / %d", d.Report.WorkDone, d.Report.WorkTotal)
	}
}

func TestDirtyPagesCountAsWriteSavings(t *testing.T) {
	m, _, root := newMachine(t)
	targets := m.FS.FragmentedFiles(root)
	f := targets[0]
	d := NewOpportunistic(m.FS, root, DefaultConfig(), m.Duet, m.Adapter)
	run(t, m, func(p *sim.Proc) {
		// Dirty part of a fragmented file: those pages would be written
		// back anyway, so the defragmenter counts them as savings.
		if err := m.FS.Write(p, f.Ino, 0, 4); err != nil {
			t.Fatal(err)
		}
		if err := d.Run(p); err != nil {
			t.Fatal(err)
		}
	})
	if d.PagesAlreadyDirty < 4 {
		t.Errorf("PagesAlreadyDirty = %d, want >= 4", d.PagesAlreadyDirty)
	}
}
