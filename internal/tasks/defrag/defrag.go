// Package defrag implements the file defragmentation task of §5.3: it
// rewrites fragmented files into contiguous extents, processing files in
// inode-number order.
//
// The opportunistic defragmenter is a file task registered for Exists
// notifications. It keeps a priority queue of fragmented files ordered by
// the fraction of their pages currently in memory and processes the
// best-cached candidates out of order, exactly as Algorithm 1 sketches.
// The I/O saved is the pages found in memory (no read needed) plus pages
// the workload had already dirtied (their writeback would happen anyway).
package defrag

import (
	"errors"
	"fmt"

	"duet/internal/core"
	"duet/internal/cowfs"
	"duet/internal/duetlib"
	"duet/internal/sim"
	"duet/internal/storage"
	"duet/internal/tasks"
)

// Owner labels the defragmenter's device I/O.
const Owner = "defrag"

// Config tunes the defragmenter.
type Config struct {
	// Threshold is the extent count above which a file is defragmented.
	Threshold int
	// Class is the I/O priority.
	Class storage.Class
	// FIFOQueue disables the cached-fraction priority: any candidate with
	// cached pages is processed in event order instead. Exists for the
	// priority-policy ablation; the paper's policy (most-cached-first) is
	// the default.
	FIFOQueue bool
}

// DefaultConfig returns the standard settings.
func DefaultConfig() Config {
	return Config{Threshold: cowfs.FragmentationThreshold, Class: storage.ClassIdle}
}

// Defrag defragments the files under one directory.
type Defrag struct {
	FS   *cowfs.FS
	Root cowfs.Ino
	Cfg  Config

	Duet    *core.Duet
	Adapter *core.CowAdapter

	Report tasks.Report
	// PagesWritten is the relocation writeback the task caused (all pages
	// of every defragmented file).
	PagesWritten int64
	// PagesAlreadyDirty counts write savings (§6.2).
	PagesAlreadyDirty int64

	session *core.Session
	tracker *duetlib.FileTracker
	pq      *duetlib.PrioQueue
	targets map[uint64]*cowfs.Inode
}

// New creates a baseline defragmenter.
func New(fs *cowfs.FS, root cowfs.Ino, cfg Config) *Defrag {
	if cfg.Threshold <= 0 {
		cfg.Threshold = cowfs.FragmentationThreshold
	}
	return &Defrag{FS: fs, Root: root, Cfg: cfg, Report: tasks.Report{Name: "defrag"}}
}

// NewOpportunistic creates a Duet-enabled defragmenter.
func NewOpportunistic(fs *cowfs.FS, root cowfs.Ino, cfg Config, d *core.Duet, ad *core.CowAdapter) *Defrag {
	df := New(fs, root, cfg)
	df.Duet, df.Adapter = d, ad
	df.Report.Opportunistic = true
	return df
}

// Run defragments every file that exceeds the threshold at start time.
func (df *Defrag) Run(p *sim.Proc) error {
	df.Report.Start = p.Now()
	files := df.FS.FilesUnder(df.Root)
	df.targets = make(map[uint64]*cowfs.Inode)
	var order []*cowfs.Inode
	for _, f := range files {
		if len(f.Extents) > df.Cfg.Threshold {
			df.targets[uint64(f.Ino)] = f
			order = append(order, f)
			df.Report.WorkTotal += f.SizePg
		}
	}

	if df.Duet != nil {
		sess, err := df.Duet.RegisterFile(df.Adapter, uint64(df.Root), core.StExists)
		if err != nil {
			return fmt.Errorf("defrag: %w", err)
		}
		df.session = sess
		defer func() { _ = sess.Close() }()
		df.tracker = duetlib.NewFileTracker()
		df.pq = duetlib.NewPrioQueue()
	}

	for _, f := range order {
		if p.Engine().Stopping() {
			return nil
		}
		// Opportunistic pass first: drain the queue of well-cached files.
		df.handleQueued(p)
		if df.session != nil && df.session.CheckDone(uint64(f.Ino)) {
			continue
		}
		if err := df.defragOne(p, f); err != nil {
			return err
		}
		if df.session != nil {
			df.session.SetDone(uint64(f.Ino))
		}
	}
	df.Report.Completed = true
	for _, f := range order {
		if df.FS.FragmentedExtents(f.Ino) > df.Cfg.Threshold {
			df.Report.Completed = false
		}
	}
	df.Report.End = p.Now()
	return nil
}

// prio orders candidates by the fraction of their pages in memory (§5.3);
// non-targets are excluded by marking them done when first seen.
func (df *Defrag) prio(ino uint64, t *duetlib.FileTracker) float64 {
	f, isTarget := df.targets[ino]
	if !isTarget {
		df.session.SetDone(ino)
		return 0
	}
	cached := t.CachedPages(ino)
	if cached == 0 || f.SizePg == 0 {
		return 0
	}
	if df.Cfg.FIFOQueue {
		return 1 // constant priority: effectively event order
	}
	return float64(cached) / float64(f.SizePg)
}

func (df *Defrag) handleQueued(p *sim.Proc) {
	if df.session == nil {
		return
	}
	duetlib.HandleQueued(df.session, df.tracker, df.pq, df.prio, func(ino uint64) bool {
		f := df.targets[ino]
		if f == nil {
			return true
		}
		if err := df.defragOne(p, f); err != nil {
			return false
		}
		df.session.SetDone(ino)
		return !p.Engine().Stopping()
	})
}

func (df *Defrag) defragOne(p *sim.Proc, f *cowfs.Inode) error {
	res, err := df.FS.DefragFile(p, f.Ino, df.Cfg.Class, Owner)
	if errors.Is(err, cowfs.ErrNotFound) {
		// The workload deleted the file while it was queued — "a
		// defragmentation task in a copy-on-write file system can simply
		// ignore an overwritten file that it was planning to defragment"
		// (§3.1). Its work disappears from the list.
		df.Report.WorkTotal -= f.SizePg
		delete(df.targets, uint64(f.Ino))
		return nil
	}
	if err != nil {
		return fmt.Errorf("defrag: inode %d: %w", f.Ino, err)
	}
	df.Report.WorkDone += res.PagesTotal
	df.Report.ReadBlocks += res.PagesRead
	df.Report.Saved += (res.PagesTotal - res.PagesRead) + res.AlreadyDirty
	df.PagesWritten += res.PagesTotal
	df.PagesAlreadyDirty += res.AlreadyDirty
	return nil
}
