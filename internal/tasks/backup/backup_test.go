package backup

import (
	"testing"

	"duet/internal/cowfs"
	"duet/internal/machine"
	"duet/internal/sim"
	"duet/internal/storage"
)

func newMachine(t *testing.T) (*machine.Machine, []*cowfs.Inode) {
	t.Helper()
	m, err := machine.New(machine.Config{Seed: 1, DeviceBlocks: 1 << 16, CachePages: 4096})
	if err != nil {
		t.Fatal(err)
	}
	files, err := m.Populate(machine.DefaultPopulateSpec("/data", 8192))
	if err != nil {
		t.Fatal(err)
	}
	return m, files
}

func run(t *testing.T, m *machine.Machine, fn func(p *sim.Proc)) {
	t.Helper()
	m.Eng.Go("test", func(p *sim.Proc) {
		// Stop via defer so a t.Fatal inside fn still ends the run.
		defer m.Eng.Stop()
		fn(p)
	})
	if err := m.Eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBaselineBackupCopiesSnapshot(t *testing.T) {
	m, _ := newMachine(t)
	var b *Backup
	run(t, m, func(p *sim.Proc) {
		snap, err := m.FS.CreateSnapshot(p, "/data", "/snap")
		if err != nil {
			t.Fatal(err)
		}
		b = New(m.FS, snap, DefaultConfig())
		if err := b.Run(p); err != nil {
			t.Fatal(err)
		}
	})
	r := b.Report
	if !r.Completed || r.WorkDone != r.WorkTotal {
		t.Errorf("completed=%v done=%d/%d", r.Completed, r.WorkDone, r.WorkTotal)
	}
	if sink := b.Out.(*CountingSink); sink.Pages != r.WorkTotal {
		t.Errorf("sink pages = %d, want %d", sink.Pages, r.WorkTotal)
	}
	if r.Saved != 0 {
		t.Errorf("baseline saved = %d", r.Saved)
	}
	if r.ReadBlocks != r.WorkTotal {
		t.Errorf("ReadBlocks = %d, want %d (cold cache)", r.ReadBlocks, r.WorkTotal)
	}
}

func TestOpportunisticBackupUsesWorkloadReads(t *testing.T) {
	m, files := newMachine(t)
	var b *Backup
	var warmed int64
	run(t, m, func(p *sim.Proc) {
		snap, err := m.FS.CreateSnapshot(p, "/data", "/snap")
		if err != nil {
			t.Fatal(err)
		}
		b = NewOpportunistic(m.FS, snap, DefaultConfig(), m.Duet, m.Adapter)
		// The workload reads live files whose blocks are shared with the
		// snapshot; run the backup concurrently.
		m.Eng.Go("workload", func(wp *sim.Proc) {
			for i, f := range files {
				if i%3 != 0 {
					continue
				}
				if err := m.FS.ReadFile(wp, f.Ino, storage.ClassNormal, "workload"); err != nil {
					return
				}
				warmed += f.SizePg
				wp.Sleep(2 * sim.Millisecond)
			}
		})
		if err := b.Run(p); err != nil {
			t.Fatal(err)
		}
	})
	r := b.Report
	if !r.Completed || r.WorkDone < r.WorkTotal {
		t.Errorf("completed=%v done=%d/%d", r.Completed, r.WorkDone, r.WorkTotal)
	}
	if r.Saved == 0 {
		t.Fatal("no savings from overlapping workload reads")
	}
	if r.ReadBlocks+r.Saved != r.WorkTotal {
		t.Errorf("reads %d + saved %d != total %d", r.ReadBlocks, r.Saved, r.WorkTotal)
	}
	// Every block reaches the sink exactly once.
	if sink := b.Out.(*CountingSink); sink.Pages != r.WorkTotal {
		t.Errorf("sink pages = %d, want %d", sink.Pages, r.WorkTotal)
	}
}

func TestBackupIgnoresModifiedBlocks(t *testing.T) {
	m, files := newMachine(t)
	var b *Backup
	run(t, m, func(p *sim.Proc) {
		snap, err := m.FS.CreateSnapshot(p, "/data", "/snap")
		if err != nil {
			t.Fatal(err)
		}
		b = NewOpportunistic(m.FS, snap, DefaultConfig(), m.Duet, m.Adapter)
		// Overwrite a file: its new blocks are NOT shared with the
		// snapshot, so the write events must not produce savings; the
		// snapshot's original data is still backed up in full.
		f := files[0]
		if err := m.FS.Write(p, f.Ino, 0, f.SizePg); err != nil {
			t.Fatal(err)
		}
		if err := b.Run(p); err != nil {
			t.Fatal(err)
		}
	})
	r := b.Report
	if !r.Completed || r.WorkDone < r.WorkTotal {
		t.Errorf("completed=%v done=%d/%d", r.Completed, r.WorkDone, r.WorkTotal)
	}
	if r.Saved != 0 {
		t.Errorf("saved = %d; COW-broken blocks must not count", r.Saved)
	}
}

func TestBackupSavedBlocksMatchSnapshotContent(t *testing.T) {
	// A recording sink verifies each page is sent exactly once.
	m, files := newMachine(t)
	rec := &recordingSink{seen: map[uint64]int{}}
	run(t, m, func(p *sim.Proc) {
		snap, err := m.FS.CreateSnapshot(p, "/data", "/snap")
		if err != nil {
			t.Fatal(err)
		}
		b := NewOpportunistic(m.FS, snap, DefaultConfig(), m.Duet, m.Adapter)
		b.Out = rec
		if err := m.FS.ReadFile(p, files[1].Ino, storage.ClassNormal, "workload"); err != nil {
			t.Fatal(err)
		}
		if err := b.Run(p); err != nil {
			t.Fatal(err)
		}
		if rec.total != b.Report.WorkTotal {
			t.Errorf("sink total = %d, want %d", rec.total, b.Report.WorkTotal)
		}
	})
}

type recordingSink struct {
	seen  map[uint64]int
	total int64
}

func (r *recordingSink) Send(ino uint64, pages int) {
	r.seen[ino] += pages
	r.total += int64(pages)
}
