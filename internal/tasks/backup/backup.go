// Package backup implements the snapshot-based backup tool of §5.2.
//
// The tool backs up a read-only snapshot of a directory: it processes
// files in inode-number order and reads each file's snapshot blocks in
// 64 KiB chunks, sending the data to backup storage (a byte-counting
// sink; the paper measures I/O on the source device).
//
// The opportunistic version is a block task registered for Exists state
// notifications. Copy-on-write sharing means a foreground read of an
// unmodified live page brings the snapshot's block into memory; the task
// copies it to a private buffer out of order — after locking the page,
// checking it is clean, and confirming via back-references (here: block
// identity between live file and snapshot) that it still belongs to the
// snapshot — and marks the block done.
package backup

import (
	"fmt"

	"duet/internal/bitmap"
	"duet/internal/core"
	"duet/internal/cowfs"
	"duet/internal/pagecache"
	"duet/internal/sim"
	"duet/internal/storage"
	"duet/internal/tasks"
)

// Owner labels the backup tool's device I/O.
const Owner = "backup"

// Config tunes the backup tool.
type Config struct {
	// ChunkPages is the read granularity (16 pages = the paper's 64 KiB).
	ChunkPages int
	// Class is the I/O priority.
	Class storage.Class
}

// DefaultConfig returns the paper's settings.
func DefaultConfig() Config { return Config{ChunkPages: 16, Class: storage.ClassIdle} }

// Sink receives backed-up data. The default sink only counts.
type Sink interface {
	// Send delivers n pages of one file to backup storage.
	Send(ino uint64, pages int)
}

// CountingSink tallies what was sent.
type CountingSink struct {
	Pages int64
}

// Send implements Sink.
func (c *CountingSink) Send(_ uint64, pages int) { c.Pages += int64(pages) }

// Backup backs up one snapshot.
type Backup struct {
	FS   *cowfs.FS
	Snap *cowfs.Snapshot
	Cfg  Config
	Out  Sink

	Duet    *core.Duet
	Adapter *core.CowAdapter

	Report tasks.Report

	session    *core.Session
	snapBlocks *bitmap.Sparse // blocks the snapshot references
	fetch      []core.Item
}

// New creates a baseline backup of the snapshot.
func New(fs *cowfs.FS, snap *cowfs.Snapshot, cfg Config) *Backup {
	if cfg.ChunkPages <= 0 {
		cfg.ChunkPages = 16
	}
	return &Backup{FS: fs, Snap: snap, Cfg: cfg, Out: &CountingSink{}, Report: tasks.Report{Name: "backup"}}
}

// NewOpportunistic creates a Duet-enabled backup.
func NewOpportunistic(fs *cowfs.FS, snap *cowfs.Snapshot, cfg Config, d *core.Duet, ad *core.CowAdapter) *Backup {
	b := New(fs, snap, cfg)
	b.Duet, b.Adapter = d, ad
	b.Report.Opportunistic = true
	return b
}

// Run backs up every file of the snapshot.
func (b *Backup) Run(p *sim.Proc) error {
	b.Report.Start = p.Now()
	files := b.FS.FilesUnder(b.Snap.Root)
	b.Report.WorkTotal = b.Snap.Blocks
	b.fetch = make([]core.Item, 512)

	if b.Duet != nil {
		// Record the snapshot's block set so events can be matched.
		b.snapBlocks = bitmap.New()
		for _, f := range files {
			for _, e := range f.Extents {
				b.snapBlocks.SetRange(uint64(e.Phys), uint64(e.Phys+e.Len))
			}
		}
		sess, err := b.Duet.RegisterBlock(b.Adapter, core.StExists)
		if err != nil {
			return fmt.Errorf("backup: %w", err)
		}
		b.session = sess
		defer func() { _ = sess.Close() }()
		// Harvest continuously so cached blocks are copied even while the
		// sequential pass is starved waiting for idle-priority I/O.
		stop := false
		defer func() { stop = true }()
		p.Go("backup-harvester", func(hp *sim.Proc) {
			for !stop && !hp.Engine().Stopping() {
				hp.Sleep(20 * sim.Millisecond)
				b.harvest()
			}
		})
	}

	readsBefore := b.FS.Disk().Stats().Owner(Owner).BlocksRead
	for _, f := range files {
		if p.Engine().Stopping() {
			break
		}
		if err := b.backupFile(p, f); err != nil {
			return err
		}
		// Keep the report current so interrupted runs still carry their
		// I/O and timing.
		b.Report.ReadBlocks = b.FS.Disk().Stats().Owner(Owner).BlocksRead - readsBefore
		b.Report.End = p.Now()
	}
	b.Report.ReadBlocks = b.FS.Disk().Stats().Owner(Owner).BlocksRead - readsBefore
	b.Report.Completed = b.Report.WorkDone >= b.Report.WorkTotal
	b.Report.End = p.Now()
	return nil
}

// harvest drains Exists notifications and opportunistically copies cached
// snapshot blocks.
func (b *Backup) harvest() {
	if b.session == nil {
		return
	}
	for {
		n := b.session.FetchInto(b.fetch)
		if n == 0 {
			return
		}
		for _, it := range b.fetch[:n] {
			if !it.Flags.Has(core.StExists) {
				continue
			}
			blk := it.ID
			if !b.snapBlocks.Test(blk) || b.session.CheckDone(blk) {
				continue
			}
			// "Lock the page, check that it is not dirty, copy it to a
			// private buffer" (§5.2). A dirty page maps to a fresh COW
			// block, so a clean check suffices; verify against the cache
			// because the hint may be stale.
			pg, cached := b.FS.Cache().Peek(pagecache.PageKey{FS: b.FS.ID(), Ino: it.PageIno, Index: it.PageIdx})
			if !cached || pg.Dirty {
				continue
			}
			// Back-reference check: the page must still map to this
			// snapshot-owned block.
			if cur, ok := b.Adapter.Fibmap(it.PageIno, it.PageIdx); !ok || uint64(cur) != blk {
				continue
			}
			b.Out.Send(it.PageIno, 1)
			b.session.SetDone(blk)
			b.Report.Saved++
			b.Report.WorkDone++
		}
	}
}

// backupFile reads the file's snapshot blocks chunk by chunk, skipping
// blocks already copied opportunistically.
func (b *Backup) backupFile(p *sim.Proc, f *cowfs.Inode) error {
	chunk := int64(b.Cfg.ChunkPages)
	for off := int64(0); off < f.SizePg; off += chunk {
		if p.Engine().Stopping() {
			return nil
		}
		b.harvest()
		end := off + chunk
		if end > f.SizePg {
			end = f.SizePg
		}
		// Collect the pages still needing I/O. Each run's blocks are
		// claimed in the done bitmap before the read so the concurrent
		// harvester never copies them a second time.
		runStart := int64(-1)
		flush := func(runEnd int64) error {
			if runStart < 0 {
				return nil
			}
			if b.session != nil {
				for idx := runStart; idx < runEnd; idx++ {
					if blk, ok := b.FS.Fibmap(f.Ino, idx); ok {
						b.session.SetDone(uint64(blk))
					}
				}
			}
			if err := b.FS.Read(p, f.Ino, runStart, runEnd-runStart, b.Cfg.Class, Owner); err != nil {
				return fmt.Errorf("backup: inode %d: %w", f.Ino, err)
			}
			b.Out.Send(uint64(f.Ino), int(runEnd-runStart))
			b.Report.WorkDone += runEnd - runStart
			runStart = -1
			return nil
		}
		for idx := off; idx < end; idx++ {
			blk, ok := b.FS.Fibmap(f.Ino, idx)
			todo := ok && (b.session == nil || !b.session.CheckDone(uint64(blk)))
			if todo {
				if runStart < 0 {
					runStart = idx
				}
				continue
			}
			if err := flush(idx); err != nil {
				return err
			}
		}
		if err := flush(end); err != nil {
			return err
		}
	}
	return nil
}
