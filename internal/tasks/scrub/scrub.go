// Package scrub implements the filesystem scrubber of §5.1: a background
// pass that reads every allocated block and verifies it against its
// stored checksum, protecting against silent data corruption.
//
// The baseline scrubber reads all allocated blocks sequentially (by
// physical position, the "Btrfs extent key" order of Table 3). The
// opportunistic scrubber additionally registers with Duet for
// Added ∨ Dirtied page events: a page brought into memory was verified by
// the filesystem's read path, so its block is marked scrubbed; a dirtied
// page's block is unmarked because the new checksum must be re-verified.
package scrub

import (
	"errors"
	"fmt"

	"duet/internal/bitmap"
	"duet/internal/core"
	"duet/internal/cowfs"
	"duet/internal/sim"
	"duet/internal/storage"
	"duet/internal/tasks"
)

// Owner labels the scrubber's device I/O.
const Owner = "scrub"

// Config tunes the scrubber.
type Config struct {
	// ChunkBlocks is the sequential read granularity (default 64 blocks
	// = 256 KiB). Larger chunks read faster when the device is idle but
	// stall foreground arrivals for the whole request; 256 KiB keeps the
	// workload-latency impact small (§6.1.3).
	ChunkBlocks int
	// Class is the I/O priority (maintenance default: idle).
	Class storage.Class
	// Repair fixes detected corruption in place.
	Repair bool
	// MaxQueue, when positive, overrides the Duet session's bounded
	// fetch queue (the robustness experiments shrink it to force the
	// degraded-mode fallback; zero keeps core.DefaultMaxItems).
	MaxQueue int
}

// DefaultConfig returns the standard scrubber settings.
func DefaultConfig() Config {
	return Config{ChunkBlocks: 64, Class: storage.ClassIdle, Repair: true}
}

// Scrubber scans one cowfs filesystem.
type Scrubber struct {
	FS  *cowfs.FS
	Cfg Config
	// Duet and Adapter enable opportunistic mode when both are non-nil.
	Duet    *core.Duet
	Adapter *core.CowAdapter

	Report tasks.Report

	session *core.Session
	cursor  int64
	fetch   []core.Item
	// eventDone tracks blocks marked scrubbed on event evidence alone (no
	// device read by us). When the session turns lossy those marks are the
	// ones that can no longer be trusted: the degraded-mode fallback
	// unmarks them inside the suspect range so the sequential scan
	// re-covers them.
	eventDone *bitmap.Sparse
}

// New creates a baseline scrubber.
func New(fs *cowfs.FS, cfg Config) *Scrubber {
	if cfg.ChunkBlocks <= 0 {
		cfg.ChunkBlocks = 64
	}
	return &Scrubber{FS: fs, Cfg: cfg, Report: tasks.Report{Name: "scrub"}}
}

// NewOpportunistic creates a Duet-enabled scrubber.
func NewOpportunistic(fs *cowfs.FS, cfg Config, d *core.Duet, ad *core.CowAdapter) *Scrubber {
	s := New(fs, cfg)
	s.Duet, s.Adapter = d, ad
	s.Report.Opportunistic = true
	return s
}

// Run performs one full scrub pass. It returns early with an error only
// on unexpected failures; detected corruptions are counted (and repaired
// if configured).
func (s *Scrubber) Run(p *sim.Proc) error {
	s.Report.Start = p.Now()
	s.Report.WorkTotal = s.FS.AllocatedBlocks()
	s.fetch = make([]core.Item, 512)

	if s.Duet != nil {
		sess, err := s.Duet.RegisterBlock(s.Adapter, core.EvtAdded|core.EvtDirtied)
		if err != nil {
			return fmt.Errorf("scrub: %w", err)
		}
		s.session = sess
		if s.Cfg.MaxQueue > 0 {
			sess.MaxItems = s.Cfg.MaxQueue
		}
		s.eventDone = bitmap.New()
		defer func() { _ = sess.Close() }()
		// Harvest continuously: even while the scan is starved waiting
		// for idle-priority I/O, workload events keep marking blocks
		// scrubbed (the paper's tasks fetch many times per second, §6.4).
		stop := false
		defer func() { stop = true }()
		p.Go("scrub-harvester", func(hp *sim.Proc) {
			for !stop && !hp.Engine().Stopping() {
				hp.Sleep(20 * sim.Millisecond)
				s.harvest()
			}
		})
	}

	nb := s.FS.Disk().Blocks()
	chunk := int64(s.Cfg.ChunkBlocks)
	readsBefore := s.FS.Disk().Stats().Owner(Owner).BlocksRead
	for s.cursor = 0; s.cursor < nb; s.cursor += chunk {
		if p.Engine().Stopping() {
			break
		}
		s.harvest()
		end := s.cursor + chunk
		if end > nb {
			end = nb
		}
		if err := s.scrubChunk(p, s.cursor, end); err != nil {
			return err
		}
		// Keep the report current so interrupted runs still carry their
		// I/O and timing.
		s.Report.ReadBlocks = s.FS.Disk().Stats().Owner(Owner).BlocksRead - readsBefore
		s.Report.End = p.Now()
	}
	s.Report.ReadBlocks = s.FS.Disk().Stats().Owner(Owner).BlocksRead - readsBefore
	s.Report.Completed = s.cursor >= nb
	s.Report.End = p.Now()
	return nil
}

// harvest drains Duet events: freshly cached pages were verified on read
// (mark scrubbed), dirtied pages need re-verification (unmark, if not
// already passed by the sequential scan).
func (s *Scrubber) harvest() {
	if s.session == nil {
		return
	}
	if lo, hi, ok := s.session.TakeDegradedRange(); ok {
		s.degradedFallback(lo, hi)
	}
	for {
		n := s.session.FetchInto(s.fetch)
		if n == 0 {
			return
		}
		// Only blocks strictly ahead of the current chunk matter: the
		// scan has already claimed everything at or below it.
		ahead := s.cursor + int64(s.Cfg.ChunkBlocks)
		for _, it := range s.fetch[:n] {
			blk := it.ID
			if it.Flags.Has(core.EvtDirtied) {
				// Re-verify only if the scan has not passed it yet;
				// otherwise the next scrub cycle picks it up (§6.2).
				if int64(blk) >= ahead {
					s.session.UnsetDone(blk)
					s.eventDone.Unset(blk)
				}
				continue
			}
			if it.Flags.Has(core.EvtAdded) {
				// Verified by the filesystem read path.
				if int64(blk) >= ahead && !s.session.CheckDone(blk) {
					s.session.SetDone(blk)
					s.eventDone.Set(blk)
					s.Report.Saved++
					s.Report.WorkDone++
				}
			}
		}
	}
}

// degradedFallback compensates for a lossy session: event-based done
// marks inside the suspect range [lo, hi] are no longer trustworthy
// (a Dirtied notification for them may have been dropped), so they are
// returned to the sequential scan. Blocks the scan already claimed keep
// their marks — the scan read them itself — and, as with late dirtying,
// the next scrub cycle covers anything behind the cursor.
func (s *Scrubber) degradedFallback(lo, hi uint64) {
	s.Report.Degraded++
	if nb := uint64(s.FS.Disk().Blocks()); hi >= nb {
		hi = nb - 1
	}
	if ahead := uint64(s.cursor + int64(s.Cfg.ChunkBlocks)); lo < ahead {
		lo = ahead
	}
	for b, ok := s.eventDone.NextSet(lo); ok && b <= hi; b, ok = s.eventDone.NextSet(b + 1) {
		s.eventDone.Unset(b)
		s.session.UnsetDone(b)
		s.Report.Saved--
		s.Report.WorkDone--
		s.Report.RescanBlocks++
	}
}

// scrubChunk verifies the allocated, not-yet-done blocks in [lo, hi),
// coalescing them into large sequential reads. Each run is claimed in the
// done bitmap before its read is issued so the concurrent harvester never
// double-counts it.
func (s *Scrubber) scrubChunk(p *sim.Proc, lo, hi int64) error {
	runStart := int64(-1)
	flush := func(end int64) error {
		if runStart < 0 {
			return nil
		}
		if s.session != nil {
			for b := runStart; b < end; b++ {
				s.session.SetDone(uint64(b))
			}
		}
		err := s.FS.VerifyRange(p, runStart, int(end-runStart), s.Cfg.Class, Owner)
		if err != nil {
			if !errors.Is(err, cowfs.ErrCorruption) && !errors.Is(err, storage.ErrBadBlock) {
				return err
			}
			if err2 := s.rescueRun(p, runStart, end); err2 != nil {
				return err2
			}
		}
		s.Report.WorkDone += end - runStart
		runStart = -1
		return nil
	}
	for b := lo; b < hi; b++ {
		todo := s.FS.Allocated(b) && (s.session == nil || !s.session.CheckDone(uint64(b)))
		if todo {
			if runStart < 0 {
				runStart = b
			}
			continue
		}
		if err := flush(b); err != nil {
			return err
		}
	}
	return flush(hi)
}

// rescueRun re-verifies a failed run block by block, repairing (or just
// counting) the corrupted ones. Both silent corruption (checksum
// mismatch) and latent sector errors (unreadable blocks) land here.
func (s *Scrubber) rescueRun(p *sim.Proc, lo, hi int64) error {
	for b := lo; b < hi; b++ {
		if !s.FS.Allocated(b) {
			continue
		}
		_, err := s.FS.VerifyBlock(p, b, s.Cfg.Class, Owner)
		if err == nil {
			continue
		}
		if !errors.Is(err, cowfs.ErrCorruption) && !errors.Is(err, storage.ErrBadBlock) {
			return err
		}
		s.Report.Errors++
		if s.Cfg.Repair {
			if err := s.FS.RepairBlock(p, b, s.Cfg.Class, Owner); err != nil {
				return fmt.Errorf("scrub: repair block %d: %w", b, err)
			}
		}
	}
	return nil
}
