package scrub

import (
	"testing"

	"duet/internal/cowfs"
	"duet/internal/machine"
	"duet/internal/sim"
	"duet/internal/storage"
)

func newMachine(t *testing.T) *machine.Machine {
	t.Helper()
	m, err := machine.New(machine.Config{
		Seed:         1,
		DeviceBlocks: 1 << 16,
		CachePages:   4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Populate(machine.DefaultPopulateSpec("/data", 8192)); err != nil {
		t.Fatal(err)
	}
	return m
}

func run(t *testing.T, m *machine.Machine, fn func(p *sim.Proc)) {
	t.Helper()
	m.Eng.Go("test", func(p *sim.Proc) {
		// Stop via defer so a t.Fatal inside fn still ends the run.
		defer m.Eng.Stop()
		fn(p)
	})
	if err := m.Eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBaselineScrubsEverything(t *testing.T) {
	m := newMachine(t)
	s := New(m.FS, DefaultConfig())
	run(t, m, func(p *sim.Proc) {
		if err := s.Run(p); err != nil {
			t.Fatal(err)
		}
	})
	r := s.Report
	if !r.Completed {
		t.Error("not completed")
	}
	if r.WorkTotal != m.FS.AllocatedBlocks() {
		t.Errorf("WorkTotal = %d, want %d", r.WorkTotal, m.FS.AllocatedBlocks())
	}
	if r.WorkDone != r.WorkTotal {
		t.Errorf("WorkDone = %d / %d", r.WorkDone, r.WorkTotal)
	}
	if r.Saved != 0 {
		t.Errorf("baseline Saved = %d", r.Saved)
	}
	if r.ReadBlocks < r.WorkTotal {
		t.Errorf("ReadBlocks = %d < allocated %d", r.ReadBlocks, r.WorkTotal)
	}
	if r.Errors != 0 {
		t.Errorf("Errors = %d", r.Errors)
	}
}

func TestOpportunisticSavesCachedBlocks(t *testing.T) {
	m := newMachine(t)
	files := m.FS.FilesUnder(mustLookup(t, m, "/data"))
	s := NewOpportunistic(m.FS, DefaultConfig(), m.Duet, m.Adapter)
	var warmed int64
	run(t, m, func(p *sim.Proc) {
		// Warm a quarter of the files, then scrub. The foreground reads
		// verified those blocks, so the scrubber can skip them.
		for i, f := range files {
			if i%4 != 0 {
				continue
			}
			if err := m.FS.ReadFile(p, f.Ino, storage.ClassNormal, "workload"); err != nil {
				t.Fatal(err)
			}
			warmed += f.SizePg
		}
		if err := s.Run(p); err != nil {
			t.Fatal(err)
		}
	})
	r := s.Report
	if !r.Completed || r.WorkDone != r.WorkTotal {
		t.Errorf("completed=%v done=%d/%d", r.Completed, r.WorkDone, r.WorkTotal)
	}
	if r.Saved == 0 {
		t.Fatal("no savings despite warm cache")
	}
	// Savings should be close to the warmed page count (some pages may
	// have been evicted before the registration scan).
	if r.Saved < warmed/2 {
		t.Errorf("Saved = %d, want near %d", r.Saved, warmed)
	}
	if r.ReadBlocks+r.Saved < r.WorkTotal {
		t.Errorf("reads %d + saved %d < total %d", r.ReadBlocks, r.Saved, r.WorkTotal)
	}
	if r.ReadBlocks >= r.WorkTotal {
		t.Errorf("ReadBlocks = %d, expected savings to reduce I/O below %d", r.ReadBlocks, r.WorkTotal)
	}
}

func TestOpportunisticColdEqualsBaseline(t *testing.T) {
	mb := newMachine(t)
	sb := New(mb.FS, DefaultConfig())
	run(t, mb, func(p *sim.Proc) {
		if err := sb.Run(p); err != nil {
			t.Fatal(err)
		}
	})
	mo := newMachine(t)
	so := NewOpportunistic(mo.FS, DefaultConfig(), mo.Duet, mo.Adapter)
	run(t, mo, func(p *sim.Proc) {
		if err := so.Run(p); err != nil {
			t.Fatal(err)
		}
	})
	if so.Report.Saved != 0 {
		t.Errorf("cold-cache Duet run saved %d", so.Report.Saved)
	}
	if so.Report.ReadBlocks != sb.Report.ReadBlocks {
		t.Errorf("cold Duet reads %d != baseline %d", so.Report.ReadBlocks, sb.Report.ReadBlocks)
	}
}

func TestScrubFindsAndRepairsCorruption(t *testing.T) {
	m := newMachine(t)
	files := m.FS.FilesUnder(mustLookup(t, m, "/data"))
	f := files[3]
	blk, ok := m.FS.Fibmap(f.Ino, 0)
	if !ok {
		t.Fatal("fibmap failed")
	}
	m.FS.CorruptBlock(blk)
	s := New(m.FS, DefaultConfig())
	run(t, m, func(p *sim.Proc) {
		if err := s.Run(p); err != nil {
			t.Fatal(err)
		}
		// After repair the file reads cleanly.
		if err := m.FS.ReadFile(p, f.Ino, storage.ClassNormal, "check"); err != nil {
			t.Errorf("read after repair: %v", err)
		}
	})
	if s.Report.Errors != 1 {
		t.Errorf("Errors = %d, want 1", s.Report.Errors)
	}
}

func TestScrubFindsLatentSectorError(t *testing.T) {
	m := newMachine(t)
	files := m.FS.FilesUnder(mustLookup(t, m, "/data"))
	blk, _ := m.FS.Fibmap(files[0].Ino, 1)
	m.Disk.InjectBadBlock(blk)
	s := New(m.FS, DefaultConfig())
	run(t, m, func(p *sim.Proc) {
		if err := s.Run(p); err != nil {
			t.Fatal(err)
		}
	})
	if s.Report.Errors != 1 {
		t.Errorf("Errors = %d, want 1", s.Report.Errors)
	}
	if !s.Report.Completed {
		t.Error("scrub should survive a bad block")
	}
}

func TestDirtiedBlocksRescrubbed(t *testing.T) {
	m := newMachine(t)
	files := m.FS.FilesUnder(mustLookup(t, m, "/data"))
	s := NewOpportunistic(m.FS, DefaultConfig(), m.Duet, m.Adapter)
	run(t, m, func(p *sim.Proc) {
		// Concurrent writer keeps dirtying a file while the scrubber runs.
		m.Eng.Go("writer", func(wp *sim.Proc) {
			for i := 0; i < 20; i++ {
				if err := m.FS.Write(wp, files[0].Ino, 0, 2); err != nil {
					return
				}
				wp.Sleep(10 * sim.Millisecond)
			}
		})
		if err := s.Run(p); err != nil {
			t.Fatal(err)
		}
	})
	if !s.Report.Completed {
		t.Error("scrub did not complete")
	}
}

func mustLookup(t *testing.T, m *machine.Machine, path string) cowfs.Ino {
	t.Helper()
	i, err := m.FS.Lookup(path)
	if err != nil {
		t.Fatal(err)
	}
	return i.Ino
}
