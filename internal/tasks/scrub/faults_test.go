package scrub

import (
	"testing"

	"duet/internal/faults"
	"duet/internal/sim"
	"duet/internal/storage"
)

// End-to-end ErrBadBlock path: a latent sector error materializes from a
// deterministic fault plan, the scrubber detects it as an unreadable
// block, repairs it in place from the intact logical copy, and the file
// reads back cleanly with no residual bad blocks on the device.
func TestFaultPlanBadBlockEndToEnd(t *testing.T) {
	m := newMachine(t)
	files := m.FS.FilesUnder(mustLookup(t, m, "/data"))
	f := files[5]
	blk, ok := m.FS.Fibmap(f.Ino, 0)
	if !ok {
		t.Fatal("fibmap failed")
	}
	m.AttachFaults(faults.Plan{
		Seed:         7,
		LatentErrors: []faults.LatentError{{Block: blk, At: sim.Millisecond}},
	})
	s := New(m.FS, DefaultConfig())
	run(t, m, func(p *sim.Proc) {
		p.Sleep(2 * sim.Millisecond) // pass the latent error's onset
		if err := s.Run(p); err != nil {
			t.Fatal(err)
		}
		// Repaired: the whole file reads without error.
		if err := m.FS.ReadFile(p, f.Ino, storage.ClassNormal, "check"); err != nil {
			t.Errorf("read after repair: %v", err)
		}
	})
	if s.Report.Errors != 1 {
		t.Errorf("Errors = %d, want 1", s.Report.Errors)
	}
	if !s.Report.Completed {
		t.Error("scrub did not complete")
	}
	if bad := m.Disk.BadBlocks(); len(bad) != 0 {
		t.Errorf("bad blocks remain after repair: %v", bad)
	}
	if err := m.FS.CheckBlock(blk); err != nil {
		t.Errorf("repaired block fails checksum: %v", err)
	}
}

// A degraded Duet session must not cost correctness: with a tiny fetch
// queue under a concurrent write workload, the scrubber falls back to
// re-scanning the suspect range and still completes a full pass.
func TestDegradedSessionFallbackRescans(t *testing.T) {
	m := newMachine(t)
	files := m.FS.FilesUnder(mustLookup(t, m, "/data"))
	cfg := DefaultConfig()
	cfg.MaxQueue = 8
	s := NewOpportunistic(m.FS, cfg, m.Duet, m.Adapter)
	run(t, m, func(p *sim.Proc) {
		m.Eng.Go("reader", func(rp *sim.Proc) {
			for i := 0; i < 40 && !rp.Engine().Stopping(); i++ {
				f := files[i%len(files)]
				if err := m.FS.ReadFile(rp, f.Ino, storage.ClassNormal, "w"); err != nil {
					return
				}
				rp.Sleep(5 * sim.Millisecond)
			}
		})
		if err := s.Run(p); err != nil {
			t.Fatal(err)
		}
	})
	if !s.Report.Completed {
		t.Error("scrub did not complete")
	}
	if s.Report.Degraded == 0 {
		t.Error("queue of 8 under a read storm never overflowed; degraded path untested")
	}
	if s.Report.WorkDone < s.Report.WorkTotal {
		t.Errorf("WorkDone %d < WorkTotal %d despite completion", s.Report.WorkDone, s.Report.WorkTotal)
	}
}
