// Package avscan implements an anti-virus style scanner, the other
// maintenance task the paper's introduction motivates ("anti-virus scans
// in virtual machines cause I/O storms", §1). It is not one of the five
// tasks the paper modified, but it fits the opportunistic work model
// directly: scanning a file means reading all of it and matching
// signatures, the scan order is irrelevant, and a file that is already in
// memory can be scanned for free.
//
// The baseline scans files in inode-number order. The opportunistic
// scanner is a file task subscribed to Exists notifications that
// prioritizes files with the most pages in memory (Algorithm 1), and
// unmarks files that are modified before the pass reaches them.
package avscan

import (
	"errors"
	"fmt"

	"duet/internal/core"
	"duet/internal/cowfs"
	"duet/internal/duetlib"
	"duet/internal/sim"
	"duet/internal/storage"
	"duet/internal/tasks"
)

// Owner labels the scanner's device I/O.
const Owner = "avscan"

// Config tunes the scanner.
type Config struct {
	// Class is the I/O priority (idle, like the other maintenance tasks).
	Class storage.Class
	// SignatureCost is simulated CPU time per scanned page (signature
	// matching is compute-heavy; default 5µs/page).
	SignatureCost sim.Time
}

// DefaultConfig returns standard settings.
func DefaultConfig() Config {
	return Config{Class: storage.ClassIdle, SignatureCost: 5 * sim.Microsecond}
}

// Scanner scans every file under a directory.
type Scanner struct {
	FS   *cowfs.FS
	Root cowfs.Ino
	Cfg  Config

	Duet    *core.Duet
	Adapter *core.CowAdapter

	// Infected marks inodes whose content should trigger a detection
	// (failure injection for tests; a real scanner matches content).
	Infected map[uint64]bool

	Report tasks.Report
	// Detections lists the infected inodes found.
	Detections []uint64

	session *core.Session
	tracker *duetlib.FileTracker
	pq      *duetlib.PrioQueue
	sizes   map[uint64]int64
}

// New creates a baseline scanner.
func New(fs *cowfs.FS, root cowfs.Ino, cfg Config) *Scanner {
	if cfg.SignatureCost <= 0 {
		cfg.SignatureCost = 5 * sim.Microsecond
	}
	return &Scanner{FS: fs, Root: root, Cfg: cfg, Report: tasks.Report{Name: "avscan"}}
}

// NewOpportunistic creates a Duet-enabled scanner.
func NewOpportunistic(fs *cowfs.FS, root cowfs.Ino, cfg Config, d *core.Duet, ad *core.CowAdapter) *Scanner {
	s := New(fs, root, cfg)
	s.Duet, s.Adapter = d, ad
	s.Report.Opportunistic = true
	return s
}

// Run scans every file that exists when the pass starts. Files modified
// after being scanned are left for the next pass, as with scrubbing.
func (s *Scanner) Run(p *sim.Proc) error {
	s.Report.Start = p.Now()
	files := s.FS.FilesUnder(s.Root)
	s.sizes = make(map[uint64]int64, len(files))
	for _, f := range files {
		s.sizes[uint64(f.Ino)] = f.SizePg
		s.Report.WorkTotal += f.SizePg
	}

	if s.Duet != nil {
		sess, err := s.Duet.RegisterFile(s.Adapter, uint64(s.Root), core.StExists)
		if err != nil {
			return fmt.Errorf("avscan: %w", err)
		}
		s.session = sess
		defer func() { _ = sess.Close() }()
		s.tracker = duetlib.NewFileTracker()
		s.pq = duetlib.NewPrioQueue()
	}

	readsBefore := s.FS.Disk().Stats().Owner(Owner).BlocksRead
	for _, f := range files {
		if p.Engine().Stopping() {
			break
		}
		s.handleQueued(p)
		if s.session != nil && s.session.CheckDone(uint64(f.Ino)) {
			continue
		}
		if err := s.scanOne(p, f.Ino); err != nil {
			return err
		}
		if s.session != nil {
			s.session.SetDone(uint64(f.Ino))
		}
		s.Report.ReadBlocks = s.FS.Disk().Stats().Owner(Owner).BlocksRead - readsBefore
		s.Report.End = p.Now()
	}
	s.Report.ReadBlocks = s.FS.Disk().Stats().Owner(Owner).BlocksRead - readsBefore
	s.Report.Completed = s.Report.WorkDone >= s.Report.WorkTotal
	s.Report.End = p.Now()
	return nil
}

// prio orders candidates by cached pages; unknown files (created after
// the pass started) are excluded by marking them done.
func (s *Scanner) prio(ino uint64, t *duetlib.FileTracker) float64 {
	if _, known := s.sizes[ino]; !known {
		s.session.SetDone(ino)
		return 0
	}
	return float64(t.CachedPages(ino))
}

func (s *Scanner) handleQueued(p *sim.Proc) {
	if s.session == nil {
		return
	}
	duetlib.HandleQueued(s.session, s.tracker, s.pq, s.prio, func(ino uint64) bool {
		if _, known := s.sizes[ino]; !known {
			return true
		}
		if err := s.scanOne(p, cowfs.Ino(ino)); err != nil {
			return true // vanished or transient: the normal pass re-checks
		}
		s.session.SetDone(ino)
		return !p.Engine().Stopping()
	})
}

// scanOne reads the whole file (cache hits are free) and "matches
// signatures" at the configured CPU cost per page.
func (s *Scanner) scanOne(p *sim.Proc, ino cowfs.Ino) error {
	size := s.sizes[uint64(ino)]
	missed, err := s.FS.ReadCount(p, ino, 0, size, s.Cfg.Class, Owner)
	if errors.Is(err, cowfs.ErrNotFound) {
		// Deleted before the pass reached it: its work disappears.
		s.Report.WorkTotal -= size
		delete(s.sizes, uint64(ino))
		return nil
	}
	if err != nil {
		return fmt.Errorf("avscan: inode %d: %w", ino, err)
	}
	if size > 0 {
		p.Sleep(s.Cfg.SignatureCost * sim.Time(size))
	}
	s.Report.WorkDone += size
	s.Report.Saved += size - missed
	if s.Infected[uint64(ino)] {
		s.Detections = append(s.Detections, uint64(ino))
		s.Report.Errors++
	}
	return nil
}
