package avscan

import (
	"testing"

	"duet/internal/cowfs"
	"duet/internal/machine"
	"duet/internal/sim"
	"duet/internal/storage"
)

func newMachine(t *testing.T) (*machine.Machine, []*cowfs.Inode, cowfs.Ino) {
	t.Helper()
	m, err := machine.New(machine.Config{Seed: 1, DeviceBlocks: 1 << 16, CachePages: 4096})
	if err != nil {
		t.Fatal(err)
	}
	files, err := m.Populate(machine.DefaultPopulateSpec("/data", 8192))
	if err != nil {
		t.Fatal(err)
	}
	root, err := m.FS.Lookup("/data")
	if err != nil {
		t.Fatal(err)
	}
	return m, files, root.Ino
}

func run(t *testing.T, m *machine.Machine, fn func(p *sim.Proc)) {
	t.Helper()
	m.Eng.Go("test", func(p *sim.Proc) {
		// Stop via defer so a t.Fatal inside fn still ends the run.
		defer m.Eng.Stop()
		fn(p)
	})
	if err := m.Eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBaselineScansEverything(t *testing.T) {
	m, _, root := newMachine(t)
	s := New(m.FS, root, DefaultConfig())
	run(t, m, func(p *sim.Proc) {
		if err := s.Run(p); err != nil {
			t.Fatal(err)
		}
	})
	r := s.Report
	if !r.Completed || r.WorkDone != r.WorkTotal {
		t.Errorf("completed=%v done=%d/%d", r.Completed, r.WorkDone, r.WorkTotal)
	}
	if r.Saved != 0 {
		t.Errorf("cold baseline saved = %d", r.Saved)
	}
	if r.ReadBlocks != r.WorkTotal {
		t.Errorf("ReadBlocks = %d, want %d", r.ReadBlocks, r.WorkTotal)
	}
}

func TestOpportunisticSavesWarmFiles(t *testing.T) {
	m, files, root := newMachine(t)
	s := NewOpportunistic(m.FS, root, DefaultConfig(), m.Duet, m.Adapter)
	var warmed int64
	run(t, m, func(p *sim.Proc) {
		for i, f := range files {
			if i%4 != 0 {
				continue
			}
			if err := m.FS.ReadFile(p, f.Ino, storage.ClassNormal, "w"); err != nil {
				t.Fatal(err)
			}
			warmed += f.SizePg
		}
		if err := s.Run(p); err != nil {
			t.Fatal(err)
		}
	})
	r := s.Report
	if !r.Completed {
		t.Error("not completed")
	}
	if r.Saved < warmed/2 {
		t.Errorf("Saved = %d, want near %d", r.Saved, warmed)
	}
	if r.ReadBlocks+r.Saved != r.WorkTotal {
		t.Errorf("reads %d + saved %d != total %d", r.ReadBlocks, r.Saved, r.WorkTotal)
	}
}

func TestDetectsInfectedFiles(t *testing.T) {
	m, files, root := newMachine(t)
	s := NewOpportunistic(m.FS, root, DefaultConfig(), m.Duet, m.Adapter)
	s.Infected = map[uint64]bool{
		uint64(files[2].Ino): true,
		uint64(files[7].Ino): true,
	}
	run(t, m, func(p *sim.Proc) {
		// Warm one infected file so it is found opportunistically.
		if err := m.FS.ReadFile(p, files[7].Ino, storage.ClassNormal, "w"); err != nil {
			t.Fatal(err)
		}
		if err := s.Run(p); err != nil {
			t.Fatal(err)
		}
	})
	if len(s.Detections) != 2 {
		t.Fatalf("detections = %v", s.Detections)
	}
	// The warm infected file must be detected first (processed out of
	// order).
	if s.Detections[0] != uint64(files[7].Ino) {
		t.Errorf("first detection = %d, want warm file %d", s.Detections[0], files[7].Ino)
	}
}

func TestScannerSurvivesDeletions(t *testing.T) {
	m, files, root := newMachine(t)
	s := NewOpportunistic(m.FS, root, DefaultConfig(), m.Duet, m.Adapter)
	run(t, m, func(p *sim.Proc) {
		// Delete files while the scan runs.
		m.Eng.Go("churn", func(wp *sim.Proc) {
			for i := 0; i < 10; i++ {
				path, err := m.FS.PathOf(files[i*3].Ino)
				if err == nil {
					_ = m.FS.Delete(path)
				}
				wp.Sleep(2 * sim.Millisecond)
			}
		})
		if err := s.Run(p); err != nil {
			t.Fatal(err)
		}
	})
	if !s.Report.Completed {
		t.Errorf("scan should complete despite deletions: %d/%d",
			s.Report.WorkDone, s.Report.WorkTotal)
	}
}

func TestSignatureCostConsumesTime(t *testing.T) {
	m, _, root := newMachine(t)
	cfg := DefaultConfig()
	cfg.SignatureCost = sim.Millisecond // exaggerated
	s := New(m.FS, root, cfg)
	var elapsed sim.Time
	run(t, m, func(p *sim.Proc) {
		start := p.Now()
		if err := s.Run(p); err != nil {
			t.Fatal(err)
		}
		elapsed = p.Now() - start
	})
	if elapsed < sim.Time(s.Report.WorkTotal)*sim.Millisecond {
		t.Errorf("elapsed %v < signature time for %d pages", elapsed, s.Report.WorkTotal)
	}
}
