// Package gcduet wires Duet into the F2fs-style garbage collector (§5.4).
//
// The opportunistic collector registers a block task for Exists ∨ Flushed
// notifications and maintains a per-segment count of cached valid blocks.
// Its victim cost function becomes valid − cached/2: cached blocks save
// the read half of the move, and reads and writes are weighed equally, as
// the paper does. Flushed notifications relocate a block to a new
// segment, so the counters of both the old and the new segment are
// adjusted. The done primitives are not used — a segment can always
// become dirty again, so the notion of completed work does not apply.
package gcduet

import (
	"fmt"

	"duet/internal/core"
	"duet/internal/lfs"
	"duet/internal/pagecache"
	"duet/internal/sim"
)

// Owner labels the opportunistic collector's I/O.
const Owner = "gc"

// Tracker maintains the Duet-derived per-segment cache-residency counts.
type Tracker struct {
	fs      *lfs.FS
	session *core.Session
	// cachedBySeg[s] counts valid blocks of segment s believed cached.
	cachedBySeg []int
	// lastSeg remembers which segment each page was last counted under,
	// so Flushed relocations move the count between segments.
	lastSeg map[pageID]int
	fetch   []core.Item
	eng     sim.Host
	// EventsApplied counts processed notifications.
	EventsApplied int64
}

type pageID struct {
	ino uint64
	idx uint64
}

// Attach registers the Duet session and returns the tracker. Close the
// returned session via Detach.
func Attach(e sim.Host, d *core.Duet, ad *core.LFSAdapter, fs *lfs.FS) (*Tracker, error) {
	sess, err := d.RegisterBlock(ad, core.StExists|core.EvtFlushed)
	if err != nil {
		return nil, fmt.Errorf("gcduet: %w", err)
	}
	return &Tracker{
		fs:          fs,
		session:     sess,
		cachedBySeg: make([]int, fs.Segments()),
		lastSeg:     make(map[pageID]int),
		fetch:       make([]core.Item, 512),
		eng:         e,
	}, nil
}

// Detach closes the Duet session.
func (t *Tracker) Detach() error { return t.session.Close() }

// CachedBySeg returns the tracked count for a segment.
func (t *Tracker) CachedBySeg(si int) int { return t.cachedBySeg[si] }

// harvest drains pending notifications. The cost function calls it per
// candidate; an empty fetch is O(1), so that is cheap.
func (t *Tracker) harvest() {
	for {
		n := t.session.FetchInto(t.fetch)
		if n == 0 {
			return
		}
		for _, it := range t.fetch[:n] {
			t.EventsApplied++
			id := pageID{it.PageIno, it.PageIdx}
			seg := t.fs.SegOf(int64(it.ID))
			if old, counted := t.lastSeg[id]; counted && old != seg {
				// Flushed to a new segment: adjust both (§5.4).
				t.cachedBySeg[old]--
				delete(t.lastSeg, id)
			}
			// An item carries the Exists bit only when existence changed;
			// a pure Flushed event means the page is (usually) still
			// cached. The collector runs in the kernel, so it confirms
			// against the page cache, as the real F2fs code would.
			exists := it.Flags.Has(core.StExists)
			if !exists && it.Flags.Has(core.EvtFlushed) {
				exists = t.fs.Cache().Contains(pagecache.PageKey{
					FS: t.fs.ID(), Ino: it.PageIno, Index: it.PageIdx,
				})
			}
			if exists {
				if _, counted := t.lastSeg[id]; !counted {
					t.lastSeg[id] = seg
					t.cachedBySeg[seg]++
				}
			} else {
				if old, counted := t.lastSeg[id]; counted {
					t.cachedBySeg[old]--
					delete(t.lastSeg, id)
				}
			}
		}
	}
}

// Cost is the opportunistic victim cost: valid − cached/2, excluding
// nothing (a negative value would exclude; cached can only reduce cost).
func (t *Tracker) Cost(fs *lfs.FS, segIdx int) float64 {
	t.harvest()
	seg := fs.Segment(segIdx)
	cached := t.cachedBySeg[segIdx]
	if cached > seg.Valid {
		cached = seg.Valid // counters are hints; clamp to the truth
	}
	c := float64(seg.Valid) - float64(cached)/2
	if c < 0 {
		c = 0
	}
	return c
}

// StartGC launches the lfs cleaner with the opportunistic cost function.
func StartGC(e sim.Host, d *core.Duet, ad *core.LFSAdapter, fs *lfs.FS, cfg lfs.GCConfig) (*lfs.GC, *Tracker, error) {
	tr, err := Attach(e, d, ad, fs)
	if err != nil {
		return nil, nil, err
	}
	cfg.Cost = tr.Cost
	cfg.Owner = Owner
	return fs.StartGC(cfg), tr, nil
}
