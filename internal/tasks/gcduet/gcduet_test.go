package gcduet

import (
	"testing"

	"duet/internal/lfs"
	"duet/internal/machine"
	"duet/internal/sim"
	"duet/internal/storage"
)

const (
	segBlocks = 16
	segs      = 32
)

func newMachine(t *testing.T) *machine.LFSMachine {
	t.Helper()
	m, err := machine.NewLFS(
		machine.Config{Seed: 1, DeviceBlocks: segBlocks * segs, CachePages: 256, Device: machine.SSD},
		lfs.Config{SegBlocks: segBlocks, ReservedSegs: 2},
	)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func run(t *testing.T, m *machine.LFSMachine, fn func(p *sim.Proc)) {
	t.Helper()
	m.Eng.Go("test", func(p *sim.Proc) {
		// Stop via defer so a t.Fatal inside fn still ends the run.
		defer m.Eng.Stop()
		fn(p)
	})
	if err := m.Eng.Run(); err != nil {
		t.Fatal(err)
	}
}

// fill writes three files, each filling exactly one segment, and flushes.
func fill(t *testing.T, m *machine.LFSMachine, p *sim.Proc, n int) []*lfs.Inode {
	t.Helper()
	var files []*lfs.Inode
	for i := 0; i < n; i++ {
		f, err := m.FS.Create(string(rune('a' + i)))
		if err != nil {
			t.Fatal(err)
		}
		if err := m.FS.Write(p, f.Ino, 0, segBlocks); err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	m.FS.Sync(p)
	return files
}

// dropCache evicts all files' pages so trackers start cold.
func dropCache(m *machine.LFSMachine, files []*lfs.Inode) {
	for _, f := range files {
		m.Cache.RemoveFile(m.FS.ID(), uint64(f.Ino))
	}
}

func TestTrackerCountsCachedBlocks(t *testing.T) {
	m := newMachine(t)
	run(t, m, func(p *sim.Proc) {
		files := fill(t, m, p, 2)
		dropCache(m, files)
		tr, err := Attach(m.Eng, m.Duet, m.Adapter, m.FS)
		if err != nil {
			t.Fatal(err)
		}
		defer tr.Detach()
		// Read half of file 0 (segment 0): its blocks become cached.
		if err := m.FS.Read(p, files[0].Ino, 0, segBlocks/2, storage.ClassNormal, "w"); err != nil {
			t.Fatal(err)
		}
		tr.harvest()
		if got := tr.CachedBySeg(0); got != segBlocks/2 {
			t.Errorf("CachedBySeg(0) = %d, want %d", got, segBlocks/2)
		}
		if got := tr.CachedBySeg(1); got != 0 {
			t.Errorf("CachedBySeg(1) = %d, want 0", got)
		}
		// Evict everything: counts drop.
		m.Cache.RemoveFile(m.FS.ID(), uint64(files[0].Ino))
		tr.harvest()
		if got := tr.CachedBySeg(0); got != 0 {
			t.Errorf("after eviction CachedBySeg(0) = %d", got)
		}
	})
}

func TestTrackerFollowsFlushRelocation(t *testing.T) {
	m := newMachine(t)
	run(t, m, func(p *sim.Proc) {
		files := fill(t, m, p, 2)
		dropCache(m, files)
		tr, err := Attach(m.Eng, m.Duet, m.Adapter, m.FS)
		if err != nil {
			t.Fatal(err)
		}
		defer tr.Detach()
		// Cache file 0's first 4 blocks, then rewrite them: writeback
		// relocates the blocks to the log head (a new segment).
		if err := m.FS.Read(p, files[0].Ino, 0, 4, storage.ClassNormal, "w"); err != nil {
			t.Fatal(err)
		}
		tr.harvest()
		if tr.CachedBySeg(0) != 4 {
			t.Fatalf("pre: CachedBySeg(0) = %d", tr.CachedBySeg(0))
		}
		if err := m.FS.Write(p, files[0].Ino, 0, 4); err != nil {
			t.Fatal(err)
		}
		m.FS.Sync(p)
		tr.harvest()
		newBlk, _ := m.FS.Fibmap(files[0].Ino, 0)
		newSeg := m.FS.SegOf(newBlk)
		if newSeg == 0 {
			t.Fatal("rewrite did not relocate")
		}
		if got := tr.CachedBySeg(0); got != 0 {
			t.Errorf("old segment count = %d, want 0 after relocation", got)
		}
		if got := tr.CachedBySeg(newSeg); got != 4 {
			t.Errorf("new segment count = %d, want 4", got)
		}
	})
}

func TestDuetCostPrefersCachedSegment(t *testing.T) {
	m := newMachine(t)
	run(t, m, func(p *sim.Proc) {
		files := fill(t, m, p, 3)
		// Make segments 0 and 1 equally sparse (half valid each).
		if err := m.FS.Write(p, files[0].Ino, 0, segBlocks/2); err != nil {
			t.Fatal(err)
		}
		if err := m.FS.Write(p, files[1].Ino, 0, segBlocks/2); err != nil {
			t.Fatal(err)
		}
		m.FS.Sync(p)
		dropCache(m, files)
		tr, err := Attach(m.Eng, m.Duet, m.Adapter, m.FS)
		if err != nil {
			t.Fatal(err)
		}
		defer tr.Detach()
		// Cache segment 1's remaining valid blocks.
		if err := m.FS.Read(p, files[1].Ino, segBlocks/2, segBlocks/2, storage.ClassNormal, "w"); err != nil {
			t.Fatal(err)
		}
		c0 := tr.Cost(m.FS, 0)
		c1 := tr.Cost(m.FS, 1)
		if c1 >= c0 {
			t.Errorf("cost(cached seg 1)=%v should be < cost(seg 0)=%v", c1, c0)
		}
		// valid - cached/2 = 8 - 8/2 = 4 for segment 1; 8 for segment 0.
		if c0 != 8 || c1 != 4 {
			t.Errorf("costs = %v, %v; want 8, 4", c0, c1)
		}
	})
}

func TestOpportunisticGCPicksCachedVictim(t *testing.T) {
	m := newMachine(t)
	run(t, m, func(p *sim.Proc) {
		files := fill(t, m, p, 3)
		if err := m.FS.Write(p, files[0].Ino, 0, segBlocks/2); err != nil {
			t.Fatal(err)
		}
		if err := m.FS.Write(p, files[1].Ino, 0, segBlocks/2); err != nil {
			t.Fatal(err)
		}
		m.FS.Sync(p)
		dropCache(m, files)
		gc, tr, err := StartGC(m.Eng, m.Duet, m.Adapter, m.FS, lfs.GCConfig{
			Interval:  50 * sim.Millisecond,
			IdleAfter: 5 * sim.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer tr.Detach()
		// Segment 1's survivors are cached; it should be cleaned first
		// and need no reads.
		if err := m.FS.Read(p, files[1].Ino, segBlocks/2, segBlocks/2, storage.ClassNormal, "w"); err != nil {
			t.Fatal(err)
		}
		p.Sleep(2 * sim.Second)
		if len(gc.Records) == 0 {
			t.Fatal("GC never ran")
		}
		first := gc.Records[0]
		if first.SegIdx != 1 {
			t.Errorf("first victim = %d, want 1 (cached)", first.SegIdx)
		}
		if first.BlocksRead != 0 || first.BlocksCached != segBlocks/2 {
			t.Errorf("read=%d cached=%d", first.BlocksRead, first.BlocksCached)
		}
	})
}

func TestCostClampsStaleCounters(t *testing.T) {
	m := newMachine(t)
	run(t, m, func(p *sim.Proc) {
		files := fill(t, m, p, 1)
		dropCache(m, files)
		tr, err := Attach(m.Eng, m.Duet, m.Adapter, m.FS)
		if err != nil {
			t.Fatal(err)
		}
		defer tr.Detach()
		if err := m.FS.ReadFile(p, files[0].Ino, storage.ClassNormal, "w"); err != nil {
			t.Fatal(err)
		}
		tr.harvest()
		// Invalidate most of the segment without the tracker noticing
		// (deletion drops pages — events pending — but force staleness by
		// writing the counter check before harvest).
		tr.cachedBySeg[0] = 1000 // corrupt the hint deliberately
		c := tr.Cost(m.FS, 0)
		if c < 0 {
			t.Errorf("cost = %v, must clamp at 0", c)
		}
	})
}
