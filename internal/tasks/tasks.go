// Package tasks holds the shared reporting types for the maintenance
// tasks of the paper's §5 (scrubbing, backup, defragmentation, garbage
// collection, rsync). Each task lives in its own subpackage and comes in
// two flavours: the baseline behaviour of the original tool and the
// Duet-enabled opportunistic version.
package tasks

import "duet/internal/sim"

// Report summarises one maintenance task run. Work units are pages
// (blocks) unless noted.
type Report struct {
	// Name identifies the task ("scrub", "backup", ...).
	Name string
	// Opportunistic is true for Duet-enabled runs.
	Opportunistic bool
	// WorkTotal is the work the task had to do (e.g. allocated blocks for
	// the scrubber, snapshot blocks for backup).
	WorkTotal int64
	// WorkDone is how much was completed before the run ended.
	WorkDone int64
	// Saved counts work units satisfied without maintenance device I/O —
	// blocks skipped because the workload or another task had already
	// brought them into memory.
	Saved int64
	// ReadBlocks / WrittenBlocks count the device I/O the task issued
	// itself (writeback attributed to the task included where tagged).
	ReadBlocks    int64
	WrittenBlocks int64
	// Errors counts recoverable errors (e.g. corruptions found and fixed).
	Errors int64
	// Degraded counts times the task's Duet session overflowed and the
	// task fell back to re-scanning a range it had trusted events for.
	Degraded int64
	// RescanBlocks counts work units returned to the scan queue by those
	// degraded-mode fallbacks.
	RescanBlocks int64
	// Completed reports whether the task finished its full work list.
	Completed bool
	// Start and End bound the run in virtual time (End is the completion
	// or interruption instant).
	Start, End sim.Time
}

// Fraction returns WorkDone/WorkTotal in [0,1].
func (r Report) Fraction() float64 {
	if r.WorkTotal == 0 {
		return 1
	}
	f := float64(r.WorkDone) / float64(r.WorkTotal)
	if f > 1 {
		return 1
	}
	return f
}

// SavedFraction returns Saved/WorkTotal in [0,1].
func (r Report) SavedFraction() float64 {
	if r.WorkTotal == 0 {
		return 0
	}
	return float64(r.Saved) / float64(r.WorkTotal)
}

// Duration returns the task's runtime.
func (r Report) Duration() sim.Time { return r.End - r.Start }
