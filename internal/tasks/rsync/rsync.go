// Package rsync models the rsync application of §5.5 synchronising a
// source directory to an (initially empty) destination directory on
// another device.
//
// As in real rsync, three processes cooperate over pipes: the *sender*
// traverses the source hierarchy depth-first and ships file metadata; the
// *receiver* passes it to the *generator*, which checks the destination
// and requests the data it is missing (everything, for an empty
// destination — no checksumming needed, as the paper's experiment notes);
// the sender then reads the file in 32 KiB chunks and streams it to the
// receiver, which writes the destination file.
//
// The opportunistic sender registers a file task for Exists notifications
// and transfers files with the most pages in memory out of order,
// ensuring each file's metadata is sent exactly once (§5.5). Rsync runs
// at normal I/O priority, unlike the in-kernel tasks.
package rsync

import (
	"errors"
	"fmt"

	"duet/internal/core"
	"duet/internal/cowfs"
	"duet/internal/duetlib"
	"duet/internal/sim"
	"duet/internal/storage"
	"duet/internal/tasks"
)

// Owner labels rsync's device I/O on the source; the destination side
// writes as OwnerDst.
const (
	Owner    = "rsync"
	OwnerDst = "rsync-dst"
)

// Config tunes the transfer.
type Config struct {
	// ChunkPages is the data chunk size (8 pages = rsync's 32 KiB).
	ChunkPages int
	// Class is the I/O priority (normal: rsync is a regular application).
	Class storage.Class
	// PipeDepth is the buffering between the three processes, in
	// messages.
	PipeDepth int
}

// DefaultConfig returns the paper's settings.
func DefaultConfig() Config {
	return Config{ChunkPages: 8, Class: storage.ClassNormal, PipeDepth: 16}
}

// Rsync synchronises SrcRoot (on Src) into DstDir (on Dst).
type Rsync struct {
	Src     *cowfs.FS
	SrcRoot cowfs.Ino
	Dst     *cowfs.FS
	DstDir  string
	Cfg     Config

	Duet    *core.Duet
	Adapter *core.CowAdapter

	Report tasks.Report
	// FilesSent counts transferred files.
	FilesSent int64

	session *core.Session
	tracker *duetlib.FileTracker
	pq      *duetlib.PrioQueue
	byIno   map[uint64]*cowfs.Inode
}

// New creates a baseline rsync.
func New(src *cowfs.FS, srcRoot cowfs.Ino, dst *cowfs.FS, dstDir string, cfg Config) *Rsync {
	if cfg.ChunkPages <= 0 {
		cfg.ChunkPages = 8
	}
	if cfg.PipeDepth <= 0 {
		cfg.PipeDepth = 16
	}
	return &Rsync{Src: src, SrcRoot: srcRoot, Dst: dst, DstDir: dstDir, Cfg: cfg,
		Report: tasks.Report{Name: "rsync"}}
}

// NewOpportunistic creates a Duet-enabled rsync.
func NewOpportunistic(src *cowfs.FS, srcRoot cowfs.Ino, dst *cowfs.FS, dstDir string, cfg Config, d *core.Duet, ad *core.CowAdapter) *Rsync {
	r := New(src, srcRoot, dst, dstDir, cfg)
	r.Duet, r.Adapter = d, ad
	r.Report.Opportunistic = true
	return r
}

// Pipe messages.
type fileMeta struct {
	ino    uint64
	rel    string
	sizePg int64
}

type dataMsg struct {
	meta  fileMeta
	off   int64
	pages int64
	last  bool
}

// Run performs the synchronisation, spawning the generator and receiver
// processes; the calling process acts as the sender. It returns when the
// destination is fully written.
func (r *Rsync) Run(p *sim.Proc) error {
	r.Report.Start = p.Now()
	e := p.Engine()

	files := r.dfsFiles()
	r.byIno = make(map[uint64]*cowfs.Inode, len(files))
	for _, f := range files {
		r.byIno[uint64(f.Ino)] = f
		r.Report.WorkTotal += f.SizePg
	}

	if r.Duet != nil {
		sess, err := r.Duet.RegisterFile(r.Adapter, uint64(r.SrcRoot), core.StExists)
		if err != nil {
			return fmt.Errorf("rsync: %w", err)
		}
		r.session = sess
		defer func() { _ = sess.Close() }()
		r.tracker = duetlib.NewFileTracker()
		r.pq = duetlib.NewPrioQueue()
	}

	metaCh := sim.NewChan[fileMeta](e, r.Cfg.PipeDepth, "rsync-meta")
	reqCh := sim.NewChan[fileMeta](e, r.Cfg.PipeDepth, "rsync-req")
	dataCh := sim.NewChan[dataMsg](e, r.Cfg.PipeDepth, "rsync-data")
	recvDone := sim.NewFuture[error](e)

	// Generator: receives metadata (via the receiver), checks the
	// destination, requests missing data.
	e.Go("rsync-generator", func(gp *sim.Proc) {
		for {
			m, ok := metaCh.Recv(gp)
			if !ok {
				reqCh.Close()
				return
			}
			// Destination is empty: everything is requested in full.
			reqCh.Send(gp, m)
		}
	})

	// Receiver: writes requested data into the destination tree. On
	// error it keeps draining the pipe so the sender never wedges.
	e.Go("rsync-receiver", func(rp *sim.Proc) {
		created := map[uint64]cowfs.Ino{}
		fail := func(err error) {
			recvDone.Complete(err, nil)
			for {
				if _, ok := dataCh.Recv(rp); !ok {
					return
				}
			}
		}
		for {
			d, ok := dataCh.Recv(rp)
			if !ok {
				recvDone.Complete(nil, nil)
				return
			}
			dstIno, exists := created[d.meta.ino]
			if !exists {
				path := r.DstDir + "/" + d.meta.rel
				if _, err := r.Dst.MkdirAll(parentOf(path)); err != nil {
					fail(err)
					return
				}
				f, err := r.Dst.Create(path)
				if err != nil {
					fail(err)
					return
				}
				dstIno = f.Ino
				created[d.meta.ino] = dstIno
			}
			if d.pages > 0 {
				if err := r.Dst.Write(rp, dstIno, d.off, d.pages); err != nil {
					fail(err)
					return
				}
			}
		}
	})

	// Sender: interleave the normal DFS order with opportunistic
	// transfers of well-cached files.
	sent := make(map[uint64]bool, len(files))
	sendFile := func(f *cowfs.Inode, rel string) error {
		if sent[uint64(f.Ino)] {
			return nil
		}
		sent[uint64(f.Ino)] = true
		m := fileMeta{ino: uint64(f.Ino), rel: rel, sizePg: f.SizePg}
		metaCh.Send(p, m)
		if _, ok := reqCh.Recv(p); !ok {
			return fmt.Errorf("rsync: request pipe closed early")
		}
		var missed int64
		if f.SizePg == 0 {
			dataCh.Send(p, dataMsg{meta: m, last: true})
		}
		for off := int64(0); off < f.SizePg; off += int64(r.Cfg.ChunkPages) {
			n := int64(r.Cfg.ChunkPages)
			if off+n > f.SizePg {
				n = f.SizePg - off
			}
			miss, err := r.Src.ReadCount(p, f.Ino, off, n, r.Cfg.Class, Owner)
			if errors.Is(err, cowfs.ErrNotFound) {
				// Deleted mid-transfer (e.g. a rotated log): rsync skips it
				// with a "file has vanished" warning in real life.
				dataCh.Send(p, dataMsg{meta: m, off: off, pages: 0, last: true})
				r.Report.WorkTotal -= f.SizePg - off
				r.Report.WorkDone += off
				r.FilesSent++
				if r.session != nil {
					r.session.SetDone(uint64(f.Ino))
				}
				return nil
			}
			if err != nil {
				return fmt.Errorf("rsync: read %s: %w", rel, err)
			}
			missed += miss
			dataCh.Send(p, dataMsg{meta: m, off: off, pages: n, last: off+n >= f.SizePg})
		}
		r.Report.WorkDone += f.SizePg
		r.Report.ReadBlocks += missed
		r.Report.Saved += f.SizePg - missed
		r.FilesSent++
		if r.session != nil {
			r.session.SetDone(uint64(f.Ino))
		}
		return nil
	}

	prio := func(ino uint64, t *duetlib.FileTracker) float64 {
		if _, ok := r.byIno[ino]; !ok {
			r.session.SetDone(ino)
			return 0
		}
		if sent[ino] {
			return 0
		}
		// Most pages in memory first (§5.5).
		return float64(t.CachedPages(ino))
	}

	var senderErr error
	for _, f := range files {
		if e.Stopping() {
			break
		}
		// Opportunistic pass.
		if r.session != nil {
			duetlib.HandleQueued(r.session, r.tracker, r.pq, prio, func(ino uint64) bool {
				cf := r.byIno[ino]
				if cf == nil || sent[ino] {
					return true
				}
				// duet_get_path doubles as the truth check for the hints
				// (§3.2): failure means the file is no longer cached, so
				// back out of the opportunistic transfer — the normal DFS
				// pass will reach it anyway.
				rel, err := r.session.GetPath(ino)
				if err != nil {
					return true
				}
				if err := sendFile(cf, rel); err != nil {
					senderErr = err
					return false
				}
				return !e.Stopping()
			})
			if senderErr != nil {
				break
			}
		}
		if sent[uint64(f.Ino)] {
			continue
		}
		rel, ok := r.Src.Within(f.Ino, r.SrcRoot)
		if !ok {
			continue
		}
		if err := sendFile(f, rel); err != nil {
			senderErr = err
			break
		}
	}
	metaCh.Close()
	dataCh.Close()
	if recvErr, _ := recvDone.Wait(p); recvErr != nil {
		return fmt.Errorf("rsync receiver: %w", recvErr)
	}
	if senderErr != nil {
		return senderErr
	}
	r.Report.Completed = int(r.FilesSent) == len(files)
	r.Report.End = p.Now()
	return nil
}

// dfsFiles lists the source files in depth-first traversal order
// (Table 3's processing order for rsync).
func (r *Rsync) dfsFiles() []*cowfs.Inode {
	root, ok := r.Src.Inode(r.SrcRoot)
	if !ok || !root.Dir {
		return nil
	}
	var out []*cowfs.Inode
	var walk func(d *cowfs.Inode)
	walk = func(d *cowfs.Inode) {
		for _, c := range r.Src.ChildrenSorted(d) {
			if c.Dir {
				walk(c)
			} else {
				out = append(out, c)
			}
		}
	}
	walk(root)
	return out
}

func parentOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[:i]
		}
	}
	return "/"
}
