package rsync

import (
	"testing"

	"duet/internal/cowfs"
	"duet/internal/machine"
	"duet/internal/sim"
	"duet/internal/storage"
)

func newMachines(t *testing.T) (*machine.Machine, *cowfs.FS, []*cowfs.Inode, cowfs.Ino) {
	t.Helper()
	m, err := machine.New(machine.Config{Seed: 1, DeviceBlocks: 1 << 16, CachePages: 4096})
	if err != nil {
		t.Fatal(err)
	}
	files, err := m.Populate(machine.DefaultPopulateSpec("/data", 4096))
	if err != nil {
		t.Fatal(err)
	}
	dst, _, err := m.AddCowFS("sdb", 1<<16, machine.HDD)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dst.MkdirAll("/backup"); err != nil {
		t.Fatal(err)
	}
	root, err := m.FS.Lookup("/data")
	if err != nil {
		t.Fatal(err)
	}
	return m, dst, files, root.Ino
}

func run(t *testing.T, m *machine.Machine, fn func(p *sim.Proc)) {
	t.Helper()
	m.Eng.Go("test", func(p *sim.Proc) {
		// Stop via defer so a t.Fatal inside fn still ends the run.
		defer m.Eng.Stop()
		fn(p)
	})
	if err := m.Eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func verifyCopy(t *testing.T, m *machine.Machine, dst *cowfs.FS, files []*cowfs.Inode, root cowfs.Ino) {
	t.Helper()
	for _, f := range files {
		rel, ok := m.FS.Within(f.Ino, root)
		if !ok {
			t.Fatalf("source file %d escaped", f.Ino)
		}
		df, err := dst.Lookup("/backup/" + rel)
		if err != nil {
			t.Fatalf("missing %s: %v", rel, err)
		}
		if df.SizePg != f.SizePg {
			t.Errorf("%s: size %d != %d", rel, df.SizePg, f.SizePg)
		}
	}
}

func TestBaselineFullCopy(t *testing.T) {
	m, dst, files, root := newMachines(t)
	r := New(m.FS, root, dst, "/backup", DefaultConfig())
	run(t, m, func(p *sim.Proc) {
		if err := r.Run(p); err != nil {
			t.Fatal(err)
		}
		dst.Sync(p)
	})
	if !r.Report.Completed {
		t.Error("not completed")
	}
	if int(r.FilesSent) != len(files) {
		t.Errorf("FilesSent = %d, want %d", r.FilesSent, len(files))
	}
	verifyCopy(t, m, dst, files, root)
	if r.Report.Saved != 0 {
		t.Errorf("cold baseline saved = %d", r.Report.Saved)
	}
	// Destination received every page.
	if w := dst.Stats().WritesPages; w != r.Report.WorkTotal {
		t.Errorf("dst writes = %d, want %d", w, r.Report.WorkTotal)
	}
}

func TestOpportunisticSavesWarmReads(t *testing.T) {
	m, dst, files, root := newMachines(t)
	r := NewOpportunistic(m.FS, root, dst, "/backup", DefaultConfig(), m.Duet, m.Adapter)
	var warmed int64
	run(t, m, func(p *sim.Proc) {
		for i, f := range files {
			if i%5 != 0 {
				continue
			}
			if err := m.FS.ReadFile(p, f.Ino, storage.ClassNormal, "workload"); err != nil {
				t.Fatal(err)
			}
			warmed += f.SizePg
		}
		if err := r.Run(p); err != nil {
			t.Fatal(err)
		}
		dst.Sync(p)
	})
	if !r.Report.Completed || int(r.FilesSent) != len(files) {
		t.Fatalf("completed=%v sent=%d/%d", r.Report.Completed, r.FilesSent, len(files))
	}
	verifyCopy(t, m, dst, files, root)
	if r.Report.Saved < warmed/2 {
		t.Errorf("Saved = %d, want near %d", r.Report.Saved, warmed)
	}
	if r.Report.ReadBlocks+r.Report.Saved != r.Report.WorkTotal {
		t.Errorf("reads %d + saved %d != total %d", r.Report.ReadBlocks, r.Report.Saved, r.Report.WorkTotal)
	}
}

func TestOpportunisticSendsEachFileOnce(t *testing.T) {
	m, dst, files, root := newMachines(t)
	r := NewOpportunistic(m.FS, root, dst, "/backup", DefaultConfig(), m.Duet, m.Adapter)
	run(t, m, func(p *sim.Proc) {
		// Concurrent reader keeps generating events for already-queued
		// files during the transfer.
		m.Eng.Go("workload", func(wp *sim.Proc) {
			rng := wp.Rand()
			for i := 0; i < 100; i++ {
				f := files[rng.Intn(len(files))]
				if err := m.FS.ReadFile(wp, f.Ino, storage.ClassNormal, "workload"); err != nil {
					return
				}
				wp.Sleep(3 * sim.Millisecond)
			}
		})
		if err := r.Run(p); err != nil {
			t.Fatal(err)
		}
		dst.Sync(p)
	})
	if int(r.FilesSent) != len(files) {
		t.Errorf("FilesSent = %d, want exactly %d (metadata sent once)", r.FilesSent, len(files))
	}
	verifyCopy(t, m, dst, files, root)
}

func TestOpportunisticOutsavesBaselineWithWorkload(t *testing.T) {
	// With a read workload on the source, the Duet rsync grabs files
	// while they are cached and must save more I/O than the incidental
	// cache hits the baseline gets, without materially slowing down (the
	// Figure 4 mechanism; the full speedup curve is an experiment, not a
	// unit test).
	elapsed := func(duet bool) (sim.Time, int64) {
		m, dst, files, root := newMachines(t)
		var r *Rsync
		if duet {
			r = NewOpportunistic(m.FS, root, dst, "/backup", DefaultConfig(), m.Duet, m.Adapter)
		} else {
			r = New(m.FS, root, dst, "/backup", DefaultConfig())
		}
		run(t, m, func(p *sim.Proc) {
			m.Eng.Go("workload", func(wp *sim.Proc) {
				rng := wp.Rand()
				for {
					f := files[rng.Intn(len(files))]
					if err := m.FS.ReadFile(wp, f.Ino, storage.ClassNormal, "workload"); err != nil {
						return
					}
					wp.Sleep(time5ms())
				}
			})
			if err := r.Run(p); err != nil {
				t.Fatal(err)
			}
		})
		return r.Report.Duration(), r.Report.Saved
	}
	base, savedBase := elapsed(false)
	duet, savedDuet := elapsed(true)
	if savedDuet <= savedBase {
		t.Errorf("duet saved %d <= baseline incidental %d", savedDuet, savedBase)
	}
	if duet > base+base/5 {
		t.Errorf("duet rsync much slower: %v vs %v", duet, base)
	}
}

func time5ms() sim.Time { return 5 * sim.Millisecond }
