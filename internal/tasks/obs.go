package tasks

import "duet/internal/obs"

// ObserveRun records one finished task run with the observability
// subsystem: a virtual-time slice spanning the run on a per-task track
// (opportunistic variants get their own "-duet" track so baseline and
// Duet runs are visually distinct in Perfetto), plus per-task counters
// summing the Report fields. Callers invoke it once per Report, in the
// order runs completed; with o nil it does nothing, so drivers call it
// unconditionally.
func ObserveRun(o *obs.Obs, r Report) {
	if o == nil {
		return
	}
	name := r.Name
	if r.Opportunistic {
		name = r.Name + "-duet"
	}
	if t := o.Trace; t != nil {
		tid := t.Track("task:" + name)
		t.SliceArg(tid, "task", name, r.Start, r.End, "done", r.WorkDone)
	}
	if m := o.Metrics; m != nil {
		p := "task." + name + "."
		m.Counter(p + "runs").Inc()
		m.Counter(p + "work_done").Add(r.WorkDone)
		m.Counter(p + "saved").Add(r.Saved)
		m.Counter(p + "read_blocks").Add(r.ReadBlocks)
		m.Counter(p + "written_blocks").Add(r.WrittenBlocks)
		m.Counter(p + "errors").Add(r.Errors)
		m.Counter(p + "degraded").Add(r.Degraded)
		m.Counter(p + "rescan_blocks").Add(r.RescanBlocks)
	}
}
