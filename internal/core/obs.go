package core

import (
	"duet/internal/obs"
	"duet/internal/sim"
)

// Observability (internal/obs). Duet's page-event hot path stays
// unprobed except for one nil check: with observability on, each
// successful enqueue feeds a session queue-depth histogram, and the
// moment a session turns lossy (the degraded-mode transition of §4.3)
// is marked with an instant event — the single most useful signal when
// tuning MaxItems. Cumulative Stats are absorbed by PublishMetrics.

// duetObs holds the pre-resolved instruments; nil on d.obs disables
// everything.
type duetObs struct {
	eng    sim.Host
	tr     *obs.Tracer
	tid    int32
	qdepth *obs.Histogram // session fetch-queue depth after enqueue
}

// qdepthBounds buckets session queue depths; the top buckets matter
// because MaxItems defaults are in the hundreds.
var qdepthBounds = []int64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

// EnableObs attaches observability to the framework. Call once at
// machine assembly, before the simulation runs.
func (d *Duet) EnableObs(e sim.Host, o *obs.Obs) {
	if o == nil || (o.Trace == nil && o.Metrics == nil) {
		return
	}
	st := &duetObs{eng: e, tr: o.Trace}
	if o.Trace != nil {
		st.tid = o.Trace.Track("duet")
	}
	if o.Metrics != nil {
		st.qdepth = o.Metrics.Histogram("duet.session_qdepth", qdepthBounds)
	}
	d.obs = st
}

// observeEnqueue records the session's queue depth after an item landed.
func (d *Duet) observeEnqueue(s *Session) {
	d.obs.qdepth.Observe(int64(s.QueueLen()))
}

// observeDegraded marks the session's clean-to-lossy transition.
func (d *Duet) observeDegraded() {
	st := d.obs
	if st.tr != nil {
		st.tr.Instant(st.tid, "duet", "degraded", st.eng.Now())
	}
}

// PublishMetrics absorbs the framework's cumulative counters into the
// registry under "duet.*". Safe to call repeatedly; values are absolute
// so re-absorption cannot double-count. The MeasureCPU wall-clock
// accumulators (HookNanos, FetchNanos) are deliberately excluded: the
// registry must be a pure function of the simulation's inputs, and real
// CPU time is not — fig9 reports those on stderr instead.
func (d *Duet) PublishMetrics(r *obs.Registry) {
	if r == nil {
		return
	}
	s := &d.stats
	r.SetCounter("duet.hook_calls", s.HookCalls)
	r.SetCounter("duet.fetch_calls", s.FetchCalls)
	r.SetCounter("duet.items_fetched", s.ItemsFetched)
	r.SetCounter("duet.events_dropped", s.EventsDropped)
	r.SetCounter("duet.degraded_sessions", s.DegradedSessions)
	r.SetCounter("duet.desc_allocs", s.DescAllocs)
	r.SetCounter("duet.desc_frees", s.DescFrees)
	r.Gauge("duet.cur_descs").SetMax(s.CurDescs)
	r.Gauge("duet.peak_descs").SetMax(s.PeakDescs)
}
