// Package core implements Duet, the storage maintenance framework of the
// paper: it hooks into the page cache (internal/pagecache), tracks
// page-level events in merged item descriptors, and exposes the paper's
// API (Table 1) to maintenance tasks — register/deregister, fetch,
// check/set/unset-done, and get-path.
//
// Terminology follows the paper: a *block task* registers against a
// device and receives items keyed by block number; a *file task*
// registers against a directory and receives items keyed by inode number
// and file offset. Tasks may subscribe to event notifications (a page was
// Added/Removed/Dirtied/Flushed) or state notifications (the page's
// existence or modification state changed since the last fetch, with
// intervening reversals cancelling out — Table 2).
package core

import "strings"

// Mask selects the notification types a session subscribes to, and is
// also the type of the per-item flag word returned by Fetch (six bits:
// four events and two states, as in §3.2).
type Mask uint8

// Notification bits.
const (
	// EvtAdded fires when a page is added to the page cache.
	EvtAdded Mask = 1 << iota
	// EvtRemoved fires when a page is removed from the page cache.
	EvtRemoved
	// EvtDirtied fires when a page's dirty bit is set.
	EvtDirtied
	// EvtFlushed fires when a page's dirty bit is cleared (writeback).
	EvtFlushed
	// StExists notifies when a page's presence in the cache has changed
	// since the last fetch; in returned flags the bit reflects the
	// current state (set = the page exists).
	StExists
	// StModified notifies when a page's modification state has changed
	// since the last fetch; in returned flags the bit reflects the
	// current state (set = the page is dirty).
	StModified
)

// EventBits selects all event notifications.
const EventBits = EvtAdded | EvtRemoved | EvtDirtied | EvtFlushed

// StateBits selects all state notifications.
const StateBits = StExists | StModified

// String renders the mask, e.g. "Added|Dirtied".
func (m Mask) String() string {
	if m == 0 {
		return "none"
	}
	names := []struct {
		bit  Mask
		name string
	}{
		{EvtAdded, "Added"}, {EvtRemoved, "Removed"},
		{EvtDirtied, "Dirtied"}, {EvtFlushed, "Flushed"},
		{StExists, "Exists"}, {StModified, "Modified"},
	}
	var parts []string
	for _, n := range names {
		if m&n.bit != 0 {
			parts = append(parts, n.name)
		}
	}
	return strings.Join(parts, "|")
}

// Has reports whether all bits in q are set.
func (m Mask) Has(q Mask) bool { return m&q == q }
